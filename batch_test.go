package bipartite

import (
	"fmt"
	"sync"
	"testing"
)

// batchReference computes the documented reference response of a request:
// the one-shot call at Workers: 1.
func batchReference(t *testing.T, req Request, opt Options) *Matching {
	t.Helper()
	opt.Workers = 1
	opt.Pool = nil
	if req.Seed != 0 {
		opt.Seed = req.Seed
	}
	switch req.Op {
	case OpOneSided:
		res, err := req.Graph.OneSidedMatch(&opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.Matching
	case OpKarpSipser:
		seed := opt.Seed
		if seed == 0 {
			seed = 1
		}
		mt, _ := req.Graph.KarpSipser(seed)
		return mt
	default:
		res, err := req.Graph.TwoSidedMatch(&opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.Matching
	}
}

func batchWorkload() ([]Request, []*Graph) {
	graphs := []*Graph{
		RandomER(700, 700, 4, 31),
		FullyIndecomposable(500, 2, 7),
		RandomER(300, 420, 3, 5),
	}
	var reqs []Request
	for s := uint64(1); s <= 12; s++ {
		reqs = append(reqs,
			Request{Graph: graphs[s%3], Op: OpTwoSided, Seed: s},
			Request{Graph: graphs[(s+1)%3], Op: OpOneSided, Seed: s},
			Request{Graph: graphs[(s+2)%3], Op: OpKarpSipser, Seed: s},
		)
	}
	reqs = append(reqs, Request{Graph: graphs[0], Op: OpTwoSided}) // seed 0 → Options.Seed
	return reqs, graphs
}

// TestMatchBatchDeterministicAndCorrect runs a mixed workload through
// MatchBatch at several pool widths and checks every response equals the
// documented reference (the one-shot call at one worker) — batching, slot
// assignment and pool width must not leak into results.
func TestMatchBatchDeterministicAndCorrect(t *testing.T) {
	reqs, _ := batchWorkload()
	base := Options{ScalingIterations: 5, Seed: 3}
	want := make([]*Matching, len(reqs))
	for i, req := range reqs {
		want[i] = batchReference(t, req, base)
	}
	for _, width := range []int{1, 4} {
		pool := NewPool(width)
		opt := base
		opt.Pool = pool
		out := MatchBatch(reqs, &opt)
		if len(out) != len(reqs) {
			t.Fatalf("width %d: %d responses for %d requests", width, len(out), len(reqs))
		}
		for i, resp := range out {
			if resp.Err != nil {
				t.Fatalf("width %d req %d: %v", width, i, resp.Err)
			}
			cmpMates(t, fmt.Sprintf("width %d req %d", width, i), resp.Matching, want[i])
			if err := reqs[i].Graph.ValidateMatching(resp.Matching); err != nil {
				t.Fatalf("width %d req %d: %v", width, i, err)
			}
		}
		pool.Close()
	}
}

// TestMatchBatchFreshGraphs serves graphs whose lazy transpose and sprank
// caches have never been touched, from several pool slots at once — the
// regression case for the unsynchronized g.at initialization (the other
// batch tests mask it by computing one-shot references, which build the
// transpose, before batching). Run under -race.
func TestMatchBatchFreshGraphs(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	fresh := []*Graph{
		RandomER(900, 900, 4, 101),
		RandomER(900, 900, 4, 102),
	}
	var reqs []Request
	for s := uint64(1); s <= 16; s++ {
		reqs = append(reqs, Request{Graph: fresh[s%2], Op: OpTwoSided, Seed: s})
	}
	out := MatchBatch(reqs, &Options{ScalingIterations: 5, Pool: pool})
	for i, resp := range out {
		if resp.Err != nil {
			t.Fatalf("req %d: %v", i, resp.Err)
		}
		if err := reqs[i].Graph.ValidateMatching(resp.Matching); err != nil {
			t.Fatalf("req %d: %v", i, err)
		}
	}
	// The responses for equal (graph, seed) must agree with a post-hoc
	// one-shot reference.
	ref, err := fresh[1].TwoSidedMatch(&Options{ScalingIterations: 5, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cmpMates(t, "fresh graph req 0", out[0].Matching, ref.Matching)
}

// TestMatchBatchNilGraph: a nil-graph request fails cleanly without
// affecting its neighbors.
func TestMatchBatchNilGraph(t *testing.T) {
	g := RandomER(200, 200, 3, 1)
	out := MatchBatch([]Request{
		{Graph: g, Seed: 1},
		{Graph: nil, Seed: 2},
		{Graph: g, Seed: 3},
	}, nil)
	if out[1].Err == nil {
		t.Fatal("nil graph accepted")
	}
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("healthy requests failed: %v %v", out[0].Err, out[2].Err)
	}
	if out[0].Matching == nil || out[2].Matching == nil {
		t.Fatal("healthy requests returned no matching")
	}
}

// TestMatchBatchEmpty: no requests, no responses, no work.
func TestMatchBatchEmpty(t *testing.T) {
	if out := MatchBatch(nil, nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d responses", len(out))
	}
}

// TestMatchBatchConcurrentCalls runs several MatchBatch calls at once on
// one shared pool (each call is its own engine; the pool and the recycled
// loop runtime are the shared state the race detector probes) and checks
// the results stay deterministic.
func TestMatchBatchConcurrentCalls(t *testing.T) {
	reqs, _ := batchWorkload()
	base := Options{ScalingIterations: 5, Seed: 3}
	want := make([]*Matching, len(reqs))
	for i, req := range reqs {
		want[i] = batchReference(t, req, base)
	}
	pool := NewPool(4)
	defer pool.Close()
	opt := base
	opt.Pool = pool

	const callers = 4
	var wg sync.WaitGroup
	outs := make([][]Response, callers)
	for c := 0; c < callers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[c] = MatchBatch(reqs, &opt)
		}()
	}
	wg.Wait()
	for c, out := range outs {
		for i, resp := range out {
			if resp.Err != nil {
				t.Fatalf("caller %d req %d: %v", c, i, resp.Err)
			}
			cmpMates(t, fmt.Sprintf("caller %d req %d", c, i), resp.Matching, want[i])
		}
	}
}

// TestServerConcurrentSubmitters hammers one Server from many goroutines
// (the -race coverage of the serving path) and checks every response is
// the deterministic reference result, whatever batches formed.
func TestServerConcurrentSubmitters(t *testing.T) {
	reqs, _ := batchWorkload()
	base := Options{ScalingIterations: 5, Seed: 3}
	want := make([]*Matching, len(reqs))
	for i, req := range reqs {
		want[i] = batchReference(t, req, base)
	}

	pool := NewPool(4)
	defer pool.Close()
	opt := base
	opt.Pool = pool
	srv := NewServer(&opt, 16)
	defer srv.Close()

	const submitters = 8
	var wg sync.WaitGroup
	errs := make(chan error, submitters*len(reqs))
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, req := range reqs {
				resp := srv.Match(req)
				if resp.Err != nil {
					errs <- fmt.Errorf("req %d: %w", i, resp.Err)
					return
				}
				if resp.Matching.Size != want[i].Size {
					errs <- fmt.Errorf("req %d: size %d want %d", i, resp.Matching.Size, want[i].Size)
					return
				}
				for r := range want[i].RowMate {
					if resp.Matching.RowMate[r] != want[i].RowMate[r] {
						errs <- fmt.Errorf("req %d: RowMate[%d] differs", i, r)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := srv.Stats()
	if st.Requests != int64(submitters*len(reqs)) {
		t.Fatalf("stats: %d requests, want %d", st.Requests, submitters*len(reqs))
	}
	if st.Batches < 1 || st.Batches > st.Requests {
		t.Fatalf("stats: implausible batch count %d for %d requests", st.Batches, st.Requests)
	}
}

// TestServerCloseIdempotent: Close twice is fine, and a server with no
// traffic shuts down cleanly.
func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer(nil, 0)
	srv.Close()
	srv.Close()
}
