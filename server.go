package bipartite

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/watchdog"
)

// ErrOverloaded reports a request rejected at admission because the
// server's bounded queue was full. It is the back-pressure signal:
// callers shed load, retry with backoff, or surface 503s — they never
// block behind an unbounded backlog. A rejected request consumed no
// kernel work and holds no server resources.
var ErrOverloaded = errors.New("bipartite: server overloaded (admission queue full)")

// ErrServerClosed reports a request submitted after Close.
var ErrServerClosed = errors.New("bipartite: server closed")

// Server is a long-lived batching front end for matching requests, the
// serving-loop shape of MatchBatch: callers submit requests from any
// number of goroutines, a collector drains the queue into batches, and
// each batch executes as one pool-wide parallel region on per-slot Matcher
// arenas that stay warm across batches. Under load, many requests ride one
// dispatch and reuse hot workspaces (and the per-graph shared scaling for
// repeated graphs), so the per-request overhead approaches the cost of the
// kernels themselves; an idle server serves a lone request with one
// dispatch of latency and no batching delay — the collector never waits
// for a batch to fill.
//
// Admission is bounded: at most Queue requests wait at any moment, and a
// submission that finds the queue full fails fast with ErrOverloaded
// instead of blocking. Per-request deadlines ride on Request.Ctx — an
// expired context is answered without running kernels, and one that
// expires mid-run aborts them at the next cooperative checkpoint.
//
// Responses are as deterministic as MatchBatch's: a function of
// (Graph, Spec, Options) only — ensemble provenance included — however
// requests are interleaved or batched.
//
// A server with ServerConfig.Watchdog enabled additionally protects
// itself: a sampler of the process's own CPU and RSS drives a shedding
// ladder that first degrades Specs (dropping exact refinement and capping
// ensembles — every answer still carries the paper's heuristic quality
// bound), then sheds PriorityLow and finally everything below
// PriorityHigh, each rejection typed and carrying a Retry-After hint.
// Degraded responses stamp what was given up into Response.Degraded, so
// determinism weakens only in an observable way: responses become a
// function of (Graph, Spec, Options, shedding level), and the level rode
// along with the answer. Per-client rate limits (RatePerClient) and the
// queue-aware would-miss check extend the same admission ladder.
type Server struct {
	engine   *batchEngine
	maxBatch int
	jobs     chan serverJob

	// wd is the self-protection watchdog (nil when WatchdogConfig is not
	// Enabled); limiter is the per-client token bucket (nil when
	// RatePerClient is 0). Both nil = exactly the pre-protection server.
	wd      *watchdog.Watchdog
	limiter *watchdog.RateLimiter

	wg sync.WaitGroup
	// mu gates the jobs channel's lifecycle: submitters hold the read
	// side across their (non-blocking) send, Close flips closed under the
	// write side before closing the channel — so a send can never race
	// the close, by construction rather than by caller discipline.
	mu        sync.RWMutex
	closed    bool
	closeOnce sync.Once

	requests    atomic.Int64
	batches     atomic.Int64
	rejected    atomic.Int64
	shed        atomic.Int64
	wouldMiss   atomic.Int64
	rateLimited atomic.Int64

	// testHookBatch, when non-nil, runs on the collector goroutine before
	// each batch executes — the test seam that stalls the collector to
	// fill the admission queue deterministically.
	testHookBatch func(batch int)
}

type serverJob struct {
	req Request
	out chan Response
}

// ServerConfig sizes a Server's batching and admission behaviour.
type ServerConfig struct {
	// MaxBatch bounds how many queued requests one batch may drain;
	// <= 0 means 256.
	MaxBatch int
	// Queue is the admission queue depth: the maximum number of requests
	// waiting to be drained into a batch. Submissions beyond it fail with
	// ErrOverloaded. <= 0 means 4×MaxBatch.
	Queue int
	// Watchdog enables the self-protection layer: when Enabled, a sampler
	// of the process's own CPU and RSS drives priority shedding and Spec
	// degradation (see WatchdogConfig). The zero value keeps protection
	// off — the server behaves exactly as before.
	Watchdog WatchdogConfig
	// RatePerClient, when > 0, enables per-client token-bucket admission:
	// each distinct Request.Client earns this many tokens per second.
	// Requests with an empty Client bypass the limiter.
	RatePerClient float64
	// RateBurst is the per-client bucket ceiling; <= 0 means
	// max(2×RatePerClient, 1).
	RateBurst int
}

// NewServer starts a serving loop with the given options (nil follows the
// one-shot defaults). maxBatch bounds how many queued requests one batch
// may drain; <= 0 means 256. The admission queue defaults to 4×maxBatch;
// use NewServerConfig to size it explicitly.
func NewServer(opt *Options, maxBatch int) *Server {
	return NewServerConfig(opt, ServerConfig{MaxBatch: maxBatch})
}

// NewServerConfig starts a serving loop with explicit batch and admission
// sizing; see ServerConfig.
func NewServerConfig(opt *Options, cfg ServerConfig) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 4 * cfg.MaxBatch
	}
	s := &Server{
		engine:   newBatchEngine(opt),
		maxBatch: cfg.MaxBatch,
		jobs:     make(chan serverJob, cfg.Queue),
	}
	if cfg.Watchdog.Enabled() {
		s.wd = cfg.Watchdog.build()
		s.engine.shed = s.wd.Level
		s.wd.Start()
	}
	if cfg.RatePerClient > 0 {
		s.limiter = watchdog.NewRateLimiter(cfg.RatePerClient, cfg.RateBurst, cfg.Watchdog.Now)
	}
	s.wg.Add(1)
	go s.loop()
	return s
}

// Match submits one request and blocks until its response is ready (or
// the request's context expires, whichever comes first). If the admission
// queue is full the request is rejected immediately with ErrOverloaded.
// Safe for concurrent use, including with Close: a submission that races
// or follows Close fails with ErrServerClosed.
func (s *Server) Match(req Request) Response {
	out := make(chan Response, 1)
	if resp, admitted := s.submit(req, out); !admitted {
		return resp
	}
	if req.Ctx != nil {
		// The buffered out channel lets the collector reply to an
		// abandoned request without blocking; the early return only
		// abandons the wait, never the slot.
		select {
		case resp := <-out:
			return resp
		case <-req.Ctx.Done():
			return Response{Err: req.Ctx.Err()}
		}
	}
	return <-out
}

// submit tries to enqueue one request. When it fails, the returned
// Response carries the admission error and nothing was enqueued. The
// admission ladder runs cheapest-first and strictest-first: expired
// context, closed server, watchdog priority shedding, per-client rate
// limit, the queue-aware would-miss check, and finally the bounded queue
// itself. Every rejection is typed (ErrShed / ErrRateLimited /
// ErrWouldMiss / ErrOverloaded) and — where a wait helps — carries a
// Retry-After hint for the HTTP layer. The read lock is held only across
// the closed check and a non-blocking send, so it never delays other
// submitters and cannot deadlock against Close.
func (s *Server) submit(req Request, out chan Response) (Response, bool) {
	if req.Ctx != nil {
		if err := req.Ctx.Err(); err != nil {
			return Response{Err: err}, false
		}
	}
	if s.wd != nil {
		lvl := s.wd.Level()
		if (lvl >= watchdog.Shedding && req.Priority <= PriorityLow) ||
			(lvl >= watchdog.Critical && req.Priority < PriorityHigh) {
			s.shed.Add(1)
			return Response{Err: &ShedError{Level: ShedLevel(lvl), RetryAfter: s.wd.RecoveryHint()}}, false
		}
	}
	if req.Client != "" && s.limiter != nil {
		if ok, retry := s.limiter.Allow(req.Client); !ok {
			s.rateLimited.Add(1)
			return Response{Err: &RateLimitError{Client: req.Client, RetryAfter: retry}}, false
		}
	}
	if err := s.wouldMissDeadline(req); err != nil {
		s.wouldMiss.Add(1)
		return Response{Err: err}, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return Response{Err: ErrServerClosed}, false
	}
	select {
	case s.jobs <- serverJob{req: req, out: out}:
		return Response{}, true
	default:
		s.rejected.Add(1)
		return Response{Err: ErrOverloaded}, false
	}
}

// wouldMissDeadline is the queue-aware admission check: when the request
// carries a deadline and the service-time history predicts the answer
// cannot arrive before it — estimated queue wait plus the class's EWMA
// service time exceeds the remaining budget — the request is rejected now
// with a *WouldMissError, instead of burning kernel work on an answer the
// caller will have abandoned. With no history (cold server, unknown
// class before any completion) it admits: there is nothing defensible to
// reject on. nil means admit.
func (s *Server) wouldMissDeadline(req Request) error {
	if req.Ctx == nil || req.Graph == nil {
		return nil
	}
	dl, ok := req.Ctx.Deadline()
	if !ok {
		return nil
	}
	est, ok := s.engine.svc.estimate(req.Graph, req.effectiveSpec())
	if !ok {
		return nil
	}
	// Queue wait: the backlog ahead of this request drains at roughly one
	// global-mean service time per pool slot.
	var wait time.Duration
	if gm := s.engine.svc.globalMean(); gm > 0 {
		wait = gm * time.Duration(len(s.jobs)) / time.Duration(s.engine.width)
	}
	remaining := time.Until(dl)
	if total := wait + est; remaining < total {
		return &WouldMissError{Estimated: total, Remaining: remaining, RetryAfter: wait}
	}
	return nil
}

// MatchBatch submits many requests at once and blocks until all admitted
// responses are ready, returned in request order. The requests enter the
// shared queue together, so under low contention they execute as one
// batch on the warm arenas. Requests that do not fit the admission queue
// are answered ErrOverloaded in place — size the queue at least as large
// as the biggest burst one caller submits. Safe for concurrent use,
// including with Close, like Match.
func (s *Server) MatchBatch(reqs []Request) []Response {
	jobs := make([]serverJob, len(reqs))
	out := make([]Response, len(reqs))
	for i, req := range reqs {
		jobs[i] = serverJob{req: req, out: make(chan Response, 1)}
		if resp, admitted := s.submit(req, jobs[i].out); !admitted {
			jobs[i].out = nil
			out[i] = resp
		}
	}
	for i := range jobs {
		if jobs[i].out != nil {
			out[i] = <-jobs[i].out
		}
	}
	return out
}

// DropGraph evicts the server's cached per-graph scaling for g, so the
// graph's next request recomputes it. Callers that own a graph registry in
// front of the Server (cmd/matchserve's LRU registry, for instance) call
// this when they evict a graph, tying the scale cache's lifetime to the
// registry's instead of leaving the two to drift apart — without it, the
// engine would keep a dead graph's scaling alive until its own LRU cap
// pushed it out. Safe for concurrent use with Match/MatchBatch/Close;
// requests already holding the scaling finish with it unperturbed.
func (s *Server) DropGraph(g *Graph) { s.engine.dropGraph(g) }

// Close drains the queue, stops the collector and waits for it to finish.
// Requests admitted before the close are still served. Idempotent, and
// safe to call while Match/MatchBatch are in flight — racing submissions
// fail with ErrServerClosed.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		// Taking the write lock waits out every in-flight send, and every
		// later submitter sees closed — only then is the channel closed.
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		close(s.jobs)
		s.wg.Wait()
		if s.wd != nil {
			s.wd.Stop()
		}
	})
}

// ServerStats is a snapshot of the server's batching and admission
// behaviour.
type ServerStats struct {
	// Requests is the number of requests served.
	Requests int64
	// Batches is the number of pool-wide regions they were served in;
	// Requests/Batches is the mean batch size, the dispatch amortization
	// factor.
	Batches int64
	// Rejected is the number of submissions refused with ErrOverloaded at
	// admission. A growing Rejected under steady traffic means the queue
	// (or the pool behind it) is undersized for the offered load.
	Rejected int64
	// Shed is the number of submissions refused by the watchdog's priority
	// shedding (ErrShed).
	Shed int64
	// WouldMiss is the number of submissions refused because their
	// deadline could not be met (ErrWouldMiss).
	WouldMiss int64
	// RateLimited is the number of submissions refused by the per-client
	// token bucket (ErrRateLimited).
	RateLimited int64
	// Degraded is the number of requests served with a downgraded Spec
	// (Response.Degraded non-empty): answered, but with the heuristic
	// quality bound instead of the full Spec's guarantee.
	Degraded int64
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Requests:    s.requests.Load(),
		Batches:     s.batches.Load(),
		Rejected:    s.rejected.Load(),
		Shed:        s.shed.Load(),
		WouldMiss:   s.wouldMiss.Load(),
		RateLimited: s.rateLimited.Load(),
		Degraded:    s.engine.degraded.Load(),
	}
}

// Health returns a snapshot of the watchdog's state: shedding level and
// the latest CPU/RSS samples. Zero-valued (Level ShedNominal) when no
// watchdog is configured — an unprotected server always reports nominal.
func (s *Server) Health() ServerHealth {
	if s.wd == nil {
		return ServerHealth{}
	}
	h := s.wd.Health()
	return ServerHealth{
		Level:       ShedLevel(h.Level),
		CPU:         h.CPU,
		RSSBytes:    h.RSS,
		Utilization: h.Utilization,
	}
}

// loop is the collector: receive one job, opportunistically drain more up
// to maxBatch without waiting, execute the batch, write the responses back
// to the per-job channels. The modelled receiver→worker→writer pipeline
// collapses into one goroutine because the worker stage is itself a
// parallel region — the pool provides the fan-out.
func (s *Server) loop() {
	defer s.wg.Done()
	jobs := make([]serverJob, 0, s.maxBatch)
	reqs := make([]Request, 0, s.maxBatch)
	out := make([]Response, s.maxBatch)
	for {
		j, ok := <-s.jobs
		if !ok {
			return
		}
		jobs = append(jobs[:0], j)
	drain:
		for len(jobs) < s.maxBatch {
			select {
			case j2, ok2 := <-s.jobs:
				if !ok2 {
					break drain
				}
				jobs = append(jobs, j2)
			default:
				break drain
			}
		}
		if s.testHookBatch != nil {
			s.testHookBatch(len(jobs))
		}
		reqs = reqs[:0]
		for _, bj := range jobs {
			reqs = append(reqs, bj.req)
		}
		batch := out[:len(jobs)]
		s.engine.run(reqs, batch)
		// Count before replying: a caller that has its response in hand
		// must see itself in Stats().
		s.requests.Add(int64(len(jobs)))
		s.batches.Add(1)
		for k, bj := range jobs {
			bj.out <- batch[k]
		}
	}
}
