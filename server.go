package bipartite

import (
	"sync"
	"sync/atomic"
)

// Server is a long-lived batching front end for matching requests, the
// serving-loop shape of MatchBatch: callers submit requests from any
// number of goroutines, a collector drains the queue into batches, and
// each batch executes as one pool-wide parallel region on per-slot Matcher
// arenas that stay warm across batches. Under load, many requests ride one
// dispatch and reuse hot workspaces (and cached scalings for repeated
// graphs), so the per-request overhead approaches the cost of the kernels
// themselves; an idle server serves a lone request with one dispatch of
// latency and no batching delay — the collector never waits for a batch to
// fill.
//
// Responses are as deterministic as MatchBatch's: a function of
// (Graph, Op, Seed, Options) only, however requests are interleaved or
// batched.
type Server struct {
	engine   *batchEngine
	maxBatch int
	jobs     chan serverJob

	wg        sync.WaitGroup
	closeOnce sync.Once

	requests atomic.Int64
	batches  atomic.Int64
}

type serverJob struct {
	req Request
	out chan Response
}

// NewServer starts a serving loop with the given options (nil follows the
// one-shot defaults). maxBatch bounds how many queued requests one batch
// may drain; <= 0 means 256.
func NewServer(opt *Options, maxBatch int) *Server {
	if maxBatch <= 0 {
		maxBatch = 256
	}
	s := &Server{
		engine:   newBatchEngine(opt),
		maxBatch: maxBatch,
		jobs:     make(chan serverJob, maxBatch),
	}
	s.wg.Add(1)
	go s.loop()
	return s
}

// Match submits one request and blocks until its response is ready. Safe
// for concurrent use. Match must not be called after (or concurrently
// with) Close.
func (s *Server) Match(req Request) Response {
	out := make(chan Response, 1)
	s.jobs <- serverJob{req: req, out: out}
	return <-out
}

// MatchBatch submits many requests at once and blocks until all responses
// are ready, returned in request order. The requests enter the shared
// queue together, so under low contention they execute as one batch on
// the warm arenas. Safe for concurrent use; the same Close caveat as
// Match applies.
func (s *Server) MatchBatch(reqs []Request) []Response {
	jobs := make([]serverJob, len(reqs))
	for i, req := range reqs {
		jobs[i] = serverJob{req: req, out: make(chan Response, 1)}
		s.jobs <- jobs[i]
	}
	out := make([]Response, len(reqs))
	for i := range jobs {
		out[i] = <-jobs[i].out
	}
	return out
}

// Close drains the queue, stops the collector and waits for it to finish.
// Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.jobs)
		s.wg.Wait()
	})
}

// ServerStats is a snapshot of the server's batching behaviour.
type ServerStats struct {
	// Requests is the number of requests served.
	Requests int64
	// Batches is the number of pool-wide regions they were served in;
	// Requests/Batches is the mean batch size, the dispatch amortization
	// factor.
	Batches int64
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{Requests: s.requests.Load(), Batches: s.batches.Load()}
}

// loop is the collector: receive one job, opportunistically drain more up
// to maxBatch without waiting, execute the batch, write the responses back
// to the per-job channels. The modelled receiver→worker→writer pipeline
// collapses into one goroutine because the worker stage is itself a
// parallel region — the pool provides the fan-out.
func (s *Server) loop() {
	defer s.wg.Done()
	jobs := make([]serverJob, 0, s.maxBatch)
	reqs := make([]Request, 0, s.maxBatch)
	out := make([]Response, s.maxBatch)
	for {
		j, ok := <-s.jobs
		if !ok {
			return
		}
		jobs = append(jobs[:0], j)
	drain:
		for len(jobs) < s.maxBatch {
			select {
			case j2, ok2 := <-s.jobs:
				if !ok2 {
					break drain
				}
				jobs = append(jobs, j2)
			default:
				break drain
			}
		}
		reqs = reqs[:0]
		for _, bj := range jobs {
			reqs = append(reqs, bj.req)
		}
		batch := out[:len(jobs)]
		s.engine.run(reqs, batch)
		// Count before replying: a caller that has its response in hand
		// must see itself in Stats().
		s.requests.Add(int64(len(jobs)))
		s.batches.Add(1)
		for k, bj := range jobs {
			bj.out <- batch[k]
		}
	}
}
