package bipartite

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrOverloaded reports a request rejected at admission because the
// server's bounded queue was full. It is the back-pressure signal:
// callers shed load, retry with backoff, or surface 503s — they never
// block behind an unbounded backlog. A rejected request consumed no
// kernel work and holds no server resources.
var ErrOverloaded = errors.New("bipartite: server overloaded (admission queue full)")

// ErrServerClosed reports a request submitted after Close.
var ErrServerClosed = errors.New("bipartite: server closed")

// Server is a long-lived batching front end for matching requests, the
// serving-loop shape of MatchBatch: callers submit requests from any
// number of goroutines, a collector drains the queue into batches, and
// each batch executes as one pool-wide parallel region on per-slot Matcher
// arenas that stay warm across batches. Under load, many requests ride one
// dispatch and reuse hot workspaces (and the per-graph shared scaling for
// repeated graphs), so the per-request overhead approaches the cost of the
// kernels themselves; an idle server serves a lone request with one
// dispatch of latency and no batching delay — the collector never waits
// for a batch to fill.
//
// Admission is bounded: at most Queue requests wait at any moment, and a
// submission that finds the queue full fails fast with ErrOverloaded
// instead of blocking. Per-request deadlines ride on Request.Ctx — an
// expired context is answered without running kernels, and one that
// expires mid-run aborts them at the next cooperative checkpoint.
//
// Responses are as deterministic as MatchBatch's: a function of
// (Graph, Spec, Options) only — ensemble provenance included — however
// requests are interleaved or batched.
type Server struct {
	engine   *batchEngine
	maxBatch int
	jobs     chan serverJob

	wg sync.WaitGroup
	// mu gates the jobs channel's lifecycle: submitters hold the read
	// side across their (non-blocking) send, Close flips closed under the
	// write side before closing the channel — so a send can never race
	// the close, by construction rather than by caller discipline.
	mu        sync.RWMutex
	closed    bool
	closeOnce sync.Once

	requests atomic.Int64
	batches  atomic.Int64
	rejected atomic.Int64

	// testHookBatch, when non-nil, runs on the collector goroutine before
	// each batch executes — the test seam that stalls the collector to
	// fill the admission queue deterministically.
	testHookBatch func(batch int)
}

type serverJob struct {
	req Request
	out chan Response
}

// ServerConfig sizes a Server's batching and admission behaviour.
type ServerConfig struct {
	// MaxBatch bounds how many queued requests one batch may drain;
	// <= 0 means 256.
	MaxBatch int
	// Queue is the admission queue depth: the maximum number of requests
	// waiting to be drained into a batch. Submissions beyond it fail with
	// ErrOverloaded. <= 0 means 4×MaxBatch.
	Queue int
}

// NewServer starts a serving loop with the given options (nil follows the
// one-shot defaults). maxBatch bounds how many queued requests one batch
// may drain; <= 0 means 256. The admission queue defaults to 4×maxBatch;
// use NewServerConfig to size it explicitly.
func NewServer(opt *Options, maxBatch int) *Server {
	return NewServerConfig(opt, ServerConfig{MaxBatch: maxBatch})
}

// NewServerConfig starts a serving loop with explicit batch and admission
// sizing; see ServerConfig.
func NewServerConfig(opt *Options, cfg ServerConfig) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 4 * cfg.MaxBatch
	}
	s := &Server{
		engine:   newBatchEngine(opt),
		maxBatch: cfg.MaxBatch,
		jobs:     make(chan serverJob, cfg.Queue),
	}
	s.wg.Add(1)
	go s.loop()
	return s
}

// Match submits one request and blocks until its response is ready (or
// the request's context expires, whichever comes first). If the admission
// queue is full the request is rejected immediately with ErrOverloaded.
// Safe for concurrent use, including with Close: a submission that races
// or follows Close fails with ErrServerClosed.
func (s *Server) Match(req Request) Response {
	out := make(chan Response, 1)
	if resp, admitted := s.submit(req, out); !admitted {
		return resp
	}
	if req.Ctx != nil {
		// The buffered out channel lets the collector reply to an
		// abandoned request without blocking; the early return only
		// abandons the wait, never the slot.
		select {
		case resp := <-out:
			return resp
		case <-req.Ctx.Done():
			return Response{Err: req.Ctx.Err()}
		}
	}
	return <-out
}

// submit tries to enqueue one request. When it fails, the returned
// Response carries the admission error and nothing was enqueued. The read
// lock is held only across the closed check and a non-blocking send, so
// it never delays other submitters and cannot deadlock against Close.
func (s *Server) submit(req Request, out chan Response) (Response, bool) {
	if req.Ctx != nil {
		if err := req.Ctx.Err(); err != nil {
			return Response{Err: err}, false
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return Response{Err: ErrServerClosed}, false
	}
	select {
	case s.jobs <- serverJob{req: req, out: out}:
		return Response{}, true
	default:
		s.rejected.Add(1)
		return Response{Err: ErrOverloaded}, false
	}
}

// MatchBatch submits many requests at once and blocks until all admitted
// responses are ready, returned in request order. The requests enter the
// shared queue together, so under low contention they execute as one
// batch on the warm arenas. Requests that do not fit the admission queue
// are answered ErrOverloaded in place — size the queue at least as large
// as the biggest burst one caller submits. Safe for concurrent use,
// including with Close, like Match.
func (s *Server) MatchBatch(reqs []Request) []Response {
	jobs := make([]serverJob, len(reqs))
	out := make([]Response, len(reqs))
	for i, req := range reqs {
		jobs[i] = serverJob{req: req, out: make(chan Response, 1)}
		if resp, admitted := s.submit(req, jobs[i].out); !admitted {
			jobs[i].out = nil
			out[i] = resp
		}
	}
	for i := range jobs {
		if jobs[i].out != nil {
			out[i] = <-jobs[i].out
		}
	}
	return out
}

// DropGraph evicts the server's cached per-graph scaling for g, so the
// graph's next request recomputes it. Callers that own a graph registry in
// front of the Server (cmd/matchserve's LRU registry, for instance) call
// this when they evict a graph, tying the scale cache's lifetime to the
// registry's instead of leaving the two to drift apart — without it, the
// engine would keep a dead graph's scaling alive until its own LRU cap
// pushed it out. Safe for concurrent use with Match/MatchBatch/Close;
// requests already holding the scaling finish with it unperturbed.
func (s *Server) DropGraph(g *Graph) { s.engine.dropGraph(g) }

// Close drains the queue, stops the collector and waits for it to finish.
// Requests admitted before the close are still served. Idempotent, and
// safe to call while Match/MatchBatch are in flight — racing submissions
// fail with ErrServerClosed.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		// Taking the write lock waits out every in-flight send, and every
		// later submitter sees closed — only then is the channel closed.
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		close(s.jobs)
		s.wg.Wait()
	})
}

// ServerStats is a snapshot of the server's batching and admission
// behaviour.
type ServerStats struct {
	// Requests is the number of requests served.
	Requests int64
	// Batches is the number of pool-wide regions they were served in;
	// Requests/Batches is the mean batch size, the dispatch amortization
	// factor.
	Batches int64
	// Rejected is the number of submissions refused with ErrOverloaded at
	// admission. A growing Rejected under steady traffic means the queue
	// (or the pool behind it) is undersized for the offered load.
	Rejected int64
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Requests: s.requests.Load(),
		Batches:  s.batches.Load(),
		Rejected: s.rejected.Load(),
	}
}

// loop is the collector: receive one job, opportunistically drain more up
// to maxBatch without waiting, execute the batch, write the responses back
// to the per-job channels. The modelled receiver→worker→writer pipeline
// collapses into one goroutine because the worker stage is itself a
// parallel region — the pool provides the fan-out.
func (s *Server) loop() {
	defer s.wg.Done()
	jobs := make([]serverJob, 0, s.maxBatch)
	reqs := make([]Request, 0, s.maxBatch)
	out := make([]Response, s.maxBatch)
	for {
		j, ok := <-s.jobs
		if !ok {
			return
		}
		jobs = append(jobs[:0], j)
	drain:
		for len(jobs) < s.maxBatch {
			select {
			case j2, ok2 := <-s.jobs:
				if !ok2 {
					break drain
				}
				jobs = append(jobs, j2)
			default:
				break drain
			}
		}
		if s.testHookBatch != nil {
			s.testHookBatch(len(jobs))
		}
		reqs = reqs[:0]
		for _, bj := range jobs {
			reqs = append(reqs, bj.req)
		}
		batch := out[:len(jobs)]
		s.engine.run(reqs, batch)
		// Count before replying: a caller that has its response in hand
		// must see itself in Stats().
		s.requests.Add(int64(len(jobs)))
		s.batches.Add(1)
		for k, bj := range jobs {
			bj.out <- batch[k]
		}
	}
}
