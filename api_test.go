package bipartite

import (
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestQuickstartFlow(t *testing.T) {
	g := RandomER(5000, 5000, 4, 42)
	res, err := g.TwoSidedMatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ValidateMatching(res.Matching); err != nil {
		t.Fatal(err)
	}
	if q := g.Quality(res.Matching); q < 0.85 {
		t.Fatalf("two-sided quality %v below expectations", q)
	}
	one, err := g.OneSidedMatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ValidateMatching(one.Matching); err != nil {
		t.Fatal(err)
	}
	if q := g.Quality(one.Matching); q < 0.632 {
		t.Fatalf("one-sided quality %v below guarantee", q)
	}
}

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(2, 2, []int{0, 1, 2}, []int32{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewGraph(2, 2, []int{0, 1}, []int32{0}); err == nil {
		t.Fatal("bad ptr accepted")
	}
	// Unsorted rows get sorted.
	g, err := NewGraph(1, 3, []int{0, 3}, []int32{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	nb := g.Neighbors(0)
	if nb[0] != 0 || nb[1] != 1 || nb[2] != 2 {
		t.Fatalf("rows not sorted: %v", nb)
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(2, 2, [][2]int{{0, 0}, {1, 1}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 2 {
		t.Fatalf("edges %d want 2 after dedupe", g.Edges())
	}
	if !g.HasEdge(0, 0) || g.HasEdge(0, 1) {
		t.Fatal("edge membership wrong")
	}
	if _, err := FromEdges(2, 2, [][2]int{{5, 0}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestAccessors(t *testing.T) {
	g := Grid2D(10, 12)
	if g.Rows() != 120 || g.Cols() != 120 {
		t.Fatal("dims")
	}
	if g.Degree(0) != 3 {
		t.Fatal("degree")
	}
	if g.AvgDegree() <= 0 || g.DegreeVariance() < 0 {
		t.Fatal("stats")
	}
	rows, cols, ptr, idx := g.CSR()
	if rows != 120 || cols != 120 || len(ptr) != 121 || len(idx) != g.Edges() {
		t.Fatal("CSR accessor wrong")
	}
}

func TestSprankCached(t *testing.T) {
	g := RandomER(300, 300, 2, 7)
	s1 := g.Sprank()
	s2 := g.Sprank()
	if s1 != s2 {
		t.Fatal("sprank changed between calls")
	}
	max := g.MaximumMatching()
	if max.Size != s1 {
		t.Fatal("MaximumMatching size != Sprank")
	}
	if err := g.ValidateMatching(max); err != nil {
		t.Fatal(err)
	}
}

func TestJumpStartReducesWork(t *testing.T) {
	g := FullyIndecomposable(3000, 2, 5)
	res, err := g.TwoSidedMatch(&Options{ScalingIterations: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	full, freeCold := g.MaximumMatchingFrom(nil)
	warm, freeWarm := g.MaximumMatchingFrom(res.Matching)
	if full.Size != warm.Size {
		t.Fatalf("warm-start result %d != cold %d", warm.Size, full.Size)
	}
	if freeWarm >= freeCold {
		t.Fatalf("jump-start should reduce free rows: warm %d cold %d", freeWarm, freeCold)
	}
	if err := g.ValidateMatching(warm); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o *Options
	v := o.normalized()
	if v.ScalingIterations != 5 || v.Seed == 0 {
		t.Fatalf("nil options normalized to %+v", v)
	}
	v = (&Options{ScalingIterations: -1}).normalized()
	if v.ScalingIterations != 5 {
		t.Fatal("negative iterations should default")
	}
	v = (&Options{ScalingIterations: 0}).normalized()
	if v.ScalingIterations != 0 {
		t.Fatal("explicit zero iterations must be honored")
	}
}

func TestScaleDirect(t *testing.T) {
	g := FullyIndecomposable(500, 2, 9)
	sc, err := g.Scale(&Options{ScalingIterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Iterations != 20 || len(sc.History) != 21 {
		t.Fatalf("iters %d history %d", sc.Iterations, len(sc.History))
	}
	if sc.Error >= sc.History[0] {
		t.Fatal("scaling error did not decrease")
	}
	ruiz, err := g.Scale(&Options{ScalingIterations: 20, UseRuiz: true})
	if err != nil {
		t.Fatal(err)
	}
	if ruiz.Error <= 0 && sc.Error <= 0 {
		t.Fatal("degenerate errors")
	}
}

func TestKarpSipserBaseline(t *testing.T) {
	g := HardForKarpSipser(320, 16)
	mt, st := g.KarpSipser(1)
	if err := g.ValidateMatching(mt); err != nil {
		t.Fatal(err)
	}
	if st.Phase1Matches != 0 {
		t.Fatal("bad case should have empty phase 1")
	}
	if g.Quality(mt) > 0.95 {
		t.Fatalf("KS quality %v suspiciously high on k=16 bad case", g.Quality(mt))
	}
	res, err := g.TwoSidedMatch(&Options{ScalingIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if g.Quality(res.Matching) < g.Quality(mt) {
		t.Fatal("TwoSided should beat KS on the bad case")
	}
}

func TestCheapBaselines(t *testing.T) {
	g := RandomER(1000, 1000, 3, 11)
	sp := g.Sprank()
	e := g.CheapRandomEdge(3)
	v := g.CheapRandomVertex(3)
	if err := g.ValidateMatching(e); err != nil {
		t.Fatal(err)
	}
	if err := g.ValidateMatching(v); err != nil {
		t.Fatal(err)
	}
	if 2*e.Size < sp || 2*v.Size < sp {
		t.Fatal("cheap heuristics below half guarantee")
	}
}

func TestDulmageMendelsohnAPI(t *testing.T) {
	g := RandomER(200, 260, 2, 13)
	c := g.DulmageMendelsohn()
	if c.HR+c.SR+c.VR != 200 || c.HC+c.SC+c.VC != 260 {
		t.Fatal("DM part sizes inconsistent")
	}
}

func TestMatrixMarketRoundTripAPI(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.mtx")
	g := RandomER(100, 80, 3, 17)
	if err := g.WriteMatrixMarket(path); err != nil {
		t.Fatal(err)
	}
	h, err := ReadMatrixMarket(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rows() != 100 || h.Cols() != 80 || h.Edges() != g.Edges() {
		t.Fatal("round trip changed graph")
	}
}

func TestValidateMatchingRejectsCorrupt(t *testing.T) {
	g := RandomER(50, 50, 3, 19)
	mt := g.MaximumMatching()
	good := *mt
	if err := g.ValidateMatching(&good); err != nil {
		t.Fatal(err)
	}
	// Corrupt: size lies.
	bad := *mt
	bad.Size++
	if err := g.ValidateMatching(&bad); err == nil {
		t.Fatal("size corruption accepted")
	}
	// Corrupt: break mutual consistency.
	bad2 := *mt
	bad2.RowMate = append([]int32(nil), mt.RowMate...)
	for i, j := range bad2.RowMate {
		if j != Unmatched {
			bad2.RowMate[i] = Unmatched
			break
		}
	}
	if err := g.ValidateMatching(&bad2); err == nil {
		t.Fatal("inconsistent mates accepted")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	g := RandomER(2000, 2000, 4, 23)
	a, err := g.TwoSidedMatch(&Options{Seed: 9, ScalingIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.TwoSidedMatch(&Options{Seed: 9, ScalingIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Matching.Size != b.Matching.Size {
		t.Fatalf("same seed gave sizes %d and %d", a.Matching.Size, b.Matching.Size)
	}
	// One-sided: the set of chosen columns (hence the size) is
	// deterministic; the winning row for a contended column is not (the
	// paper's last-write-wins semantics).
	one1, _ := g.OneSidedMatch(&Options{Seed: 9})
	one2, _ := g.OneSidedMatch(&Options{Seed: 9})
	if one1.Matching.Size != one2.Matching.Size {
		t.Fatalf("one-sided size not deterministic: %d vs %d",
			one1.Matching.Size, one2.Matching.Size)
	}
	for j := range one1.Matching.ColMate {
		if (one1.Matching.ColMate[j] == Unmatched) != (one2.Matching.ColMate[j] == Unmatched) {
			t.Fatal("one-sided chosen-column set not deterministic")
		}
	}
}

func TestGeneratorsViaAPI(t *testing.T) {
	gens := map[string]*Graph{
		"complete": Complete(50),
		"hardks":   HardForKarpSipser(64, 4),
		"grid2d":   Grid2D(8, 8),
		"grid3d":   Grid3D(4, 4, 4, false),
		"road":     RoadNetwork(1000, 2.2, 1),
		"powerlaw": PowerLaw(500, 2, 1.5, 100, 1),
		"banded":   Banded(100, 0, -1, 1),
		"fi":       FullyIndecomposable(100, 2, 1),
		"saddle":   SaddlePoint(100, 30, 2, 1),
		"er":       RandomER(100, 100, 3, 1),
	}
	for name, g := range gens {
		if g.Rows() <= 0 || g.Edges() <= 0 {
			t.Errorf("%s: degenerate graph", name)
		}
		mt := g.MaximumMatching()
		if err := g.ValidateMatching(mt); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestHeuristicsQualityProperty(t *testing.T) {
	f := func(seed uint64, d uint8) bool {
		g := RandomER(400, 400, float64(d%4)+2, seed)
		res, err := g.TwoSidedMatch(&Options{ScalingIterations: 5, Seed: seed + 1})
		if err != nil {
			return false
		}
		if g.ValidateMatching(res.Matching) != nil {
			return false
		}
		// Sparse ER around d=2..5: two-sided stays comfortably above 0.8.
		return g.Quality(res.Matching) > 0.8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
