package bipartite

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/cheap"
	"repro/internal/exact"
	"repro/internal/ks"
	"repro/internal/par"
)

// Algorithm selects the matching heuristic a Spec runs. The zero value is
// AlgTwoSided, the paper's flagship heuristic.
type Algorithm int

const (
	// AlgTwoSided runs the TwoSidedMatch heuristic (Algorithm 3): both
	// sides sample one neighbor from the scaled matrix and the 1-out graph
	// is matched exactly; conjectured quality ≥ 2(1−ρ) ≈ 0.866.
	AlgTwoSided Algorithm = iota
	// AlgOneSided runs the OneSidedMatch heuristic (Algorithm 2):
	// scaling-weighted column choice per row; guaranteed ≥ 1−1/e ≈ 0.632.
	AlgOneSided
	// AlgKarpSipser runs the classic sequential Karp–Sipser baseline.
	AlgKarpSipser
	// AlgKarpSipserParallel runs the multithreaded Karp–Sipser baseline
	// (no quality guarantee; newly arising degree-one vertices are missed).
	AlgKarpSipserParallel
	// AlgCheapEdge runs the §2.1 random-edge-visit 1/2-approximation.
	AlgCheapEdge
	// AlgCheapVertex runs the §2.1 random-vertex-random-neighbor
	// 1/2-approximation.
	AlgCheapVertex
	// AlgAuction runs the ε-scaling auction for maximum-weight matching:
	// the one objective-aware algorithm, guaranteeing matched weight ≥
	// (1−ε)·optimal with ε from Spec.Epsilon. On pattern (unweighted)
	// graphs every edge counts 1.0, so the guarantee degrades gracefully
	// to a (1−ε)-approximate maximum-cardinality matching. See the
	// "Weighted matching" section of the package documentation.
	AlgAuction

	algCount // sentinel; keep last
)

// String returns the wire name of the algorithm, as accepted by
// ParseAlgorithm and cmd/matchserve.
func (a Algorithm) String() string {
	switch a {
	case AlgTwoSided:
		return "twosided"
	case AlgOneSided:
		return "onesided"
	case AlgKarpSipser:
		return "karpsipser"
	case AlgKarpSipserParallel:
		return "karpsipser-parallel"
	case AlgCheapEdge:
		return "cheap-edge"
	case AlgCheapVertex:
		return "cheap-vertex"
	case AlgAuction:
		return "auction"
	default:
		return "unknown"
	}
}

// ParseAlgorithm converts a wire name back into an Algorithm. The empty
// string means AlgTwoSided, the default.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "twosided", "":
		return AlgTwoSided, nil
	case "onesided":
		return AlgOneSided, nil
	case "karpsipser":
		return AlgKarpSipser, nil
	case "karpsipser-parallel", "ksp":
		return AlgKarpSipserParallel, nil
	case "cheap-edge":
		return AlgCheapEdge, nil
	case "cheap-vertex":
		return AlgCheapVertex, nil
	case "auction":
		return AlgAuction, nil
	default:
		return 0, fmt.Errorf("bipartite: unknown algorithm %q", s)
	}
}

// scales reports whether the algorithm runs the matrix-scaling stage
// before sampling (and therefore benefits from a Matcher's cached — or a
// batch engine's shared — scaling).
func (a Algorithm) scales() bool { return a == AlgTwoSided || a == AlgOneSided }

// Refinement selects the post-processing applied to the heuristic
// matching a Spec produced. The zero value is RefineNone.
type Refinement int

const (
	// RefineNone returns the heuristic matching as is.
	RefineNone Refinement = iota
	// RefineExact augments the heuristic matching to maximum cardinality
	// with Hopcroft–Karp — the paper's central application (§4, Table 3):
	// the heuristic is a jump-start, the exact solver only pays for the
	// rows the heuristic left free. A refined single run always satisfies
	// size == Sprank(); inside an ensemble, refinement proceeds
	// incrementally between candidates and a Spec.Target may stop it early
	// (size ≥ ⌈Target·SprankUpperBound()⌉), otherwise it too finishes at
	// size == Sprank().
	RefineExact
	// RefinePushRelabel augments with the push-relabel / auction scheme
	// instead (the algorithm family of the GPU and multicore
	// maximum-transversal codes the paper cites) — the second augmentation
	// family under the same Spec, with exactly RefineExact's contract. The
	// two produce matchings of identical (maximum) size but generally
	// different mates.
	RefinePushRelabel
	// RefineGraft augments with the parallel multi-source BFS +
	// tree-grafting engine (the MS-BFS-Graft family of Azad et al.): all
	// exposed rows grow alternating forests together across the session's
	// pool, and a deterministic reconciliation commits the discovered
	// augmenting paths in fixed row order — so the refined matching is
	// bit-identical at every pool width, including the sequential width 1.
	// Same size-== -sprank contract as RefineExact; it is the engine
	// RefineExact auto-selects on large instances, and the one to request
	// explicitly when refinement dominates end-to-end time.
	RefineGraft

	refineCount // sentinel; keep last
)

// graftAutoEdges is the edge count at which RefineExact auto-selects the
// parallel graft engine: below it the sequential Hopcroft–Karp tail is
// cheaper than any fan-out, above it refinement dominates end-to-end time
// and the graft engine's pool-wide search wins. A variable so the
// threshold tests don't need multi-million-edge instances.
var graftAutoEdges = 2 << 20

// String returns the wire name of the refinement.
func (r Refinement) String() string {
	switch r {
	case RefineNone:
		return "none"
	case RefineExact:
		return "exact"
	case RefinePushRelabel:
		return "pushrelabel"
	case RefineGraft:
		return "graft"
	default:
		return "unknown"
	}
}

// ParseRefinement converts a wire name back into a Refinement. The empty
// string means RefineNone.
func ParseRefinement(s string) (Refinement, error) {
	switch s {
	case "none", "":
		return RefineNone, nil
	case "exact":
		return RefineExact, nil
	case "pushrelabel", "push-relabel":
		return RefinePushRelabel, nil
	case "graft", "msbfs-graft":
		return RefineGraft, nil
	default:
		return 0, fmt.Errorf("bipartite: unknown refinement %q", s)
	}
}

// Spec is a declarative matching request — the one request type every
// execution surface understands: Matcher.Run executes it on a session,
// Graph.Match one-shot, the batch layer and Server run it per Request, and
// cmd/matchserve accepts its fields on the wire. The zero value is a
// single TwoSided run with the session's default seed, which makes every
// legacy entry point expressible as a Spec (and since this redesign they
// are implemented exactly that way).
type Spec struct {
	// Algorithm selects the heuristic. Zero value: AlgTwoSided.
	Algorithm Algorithm

	// Seed is the base RNG seed; 0 means the Options' seed. Ensemble
	// candidate c runs with seed Seed+c.
	Seed uint64

	// Ensemble, when > 1, runs a best-of-K ensemble: K candidates with
	// seeds Seed..Seed+K-1 share one scaling and the largest matching
	// wins, ties broken toward the smallest seed. On a session whose pool
	// is wider than one worker the candidates fan out across the pool
	// (each runs at width 1 on its own arena) unless Sequential is set;
	// either way the candidates are consumed in seed order, so the winner
	// — and, at Workers: 1 (or on the parallel path, at any width), the
	// full matching — is deterministic. 0 or 1 means a single run.
	Ensemble int

	// Refine post-processes the winning heuristic matching; see
	// RefineExact and RefinePushRelabel. Inside an ensemble the
	// refinement is ensemble-aware: it advances incrementally as
	// candidates arrive (warm-started from the best candidate so far) and
	// the ensemble stops early once the refined size reaches the Target
	// or structural sprank bound.
	Refine Refinement

	// Target, when > 0, stops the ensemble early: the sweep halts as soon
	// as the best size so far — the refined size when Refine is set, the
	// heuristic best otherwise — reaches ⌈Target · SprankUpperBound()⌉.
	// With Refine set it also bounds the final refinement pass, so the
	// returned matching may stop short of maximum once the target is met.
	// Must lie in (0, 1]. Ignored for single runs.
	Target float64

	// Sequential, when true, forces an ensemble's candidates to run one
	// after another on the session's own arena (at the session's full
	// parallel width) instead of fanning out across the pool — the
	// pre-fan-out behaviour, useful for benchmarking the two schedules
	// against each other. Single runs ignore it.
	Sequential bool

	// SeedOffset and SeedCount, when SeedCount > 0, restrict an ensemble
	// to the sub-range of its seed interval [Seed+SeedOffset,
	// Seed+SeedOffset+SeedCount): the run consumes exactly those
	// candidates and reports the sub-range's strict-improvement winner
	// with its absolute seed. This is the cluster fan-out primitive — a
	// best-of-K Spec split into disjoint sub-ranges across replicas
	// reduces (largest size — or, for AlgAuction, heaviest weight — wins,
	// ties toward the smallest winner seed) to exactly the single-process
	// sweep's winner, mates and provenance, because each candidate is a
	// pure function of (Graph, Algorithm, seed) and the full-range winner
	// rule is associative over sub-range winners. A sub-range requires
	// Ensemble > 1, SeedOffset+SeedCount <= Ensemble and — except under
	// AlgAuction, whose ensembles never stop early — Refine: RefineNone
	// and Target: 0: the early-stopping sweeps consume seeds serially, so
	// no split could reproduce them. Both zero (the zero value) means the
	// full range.
	SeedOffset int
	SeedCount  int

	// Epsilon is the relative approximation slack of AlgAuction: the
	// matched weight is guaranteed ≥ (1−ε)·optimal. Must lie in (0, 1);
	// 0 means the default (DefaultEpsilon). Only valid with AlgAuction.
	Epsilon float64
}

// DefaultEpsilon is the auction slack used when Spec.Epsilon is zero:
// matched weight within 5% of optimal, a practical sweet spot between
// bidding rounds and quality.
const DefaultEpsilon = 0.05

// errSpec tags Spec validation failures; matchserve maps them to 400s.
var errSpec = errors.New("bipartite: invalid spec")

// Validate checks the Spec's fields; the engine rejects invalid specs
// before touching any kernel, and cmd/matchserve turns the errors into
// precise HTTP 400s.
func (s Spec) Validate() error {
	if s.Algorithm < 0 || s.Algorithm >= algCount {
		return fmt.Errorf("%w: unknown algorithm %d", errSpec, int(s.Algorithm))
	}
	if s.Refine < 0 || s.Refine >= refineCount {
		return fmt.Errorf("%w: unknown refinement %d", errSpec, int(s.Refine))
	}
	if s.Ensemble < 0 {
		return fmt.Errorf("%w: negative ensemble size %d", errSpec, s.Ensemble)
	}
	if s.Target != 0 && !(s.Target > 0 && s.Target <= 1) {
		return fmt.Errorf("%w: target %v outside (0, 1]", errSpec, s.Target)
	}
	if s.Epsilon != 0 {
		if s.Algorithm != AlgAuction {
			return fmt.Errorf("%w: epsilon requires algorithm auction", errSpec)
		}
		if !(s.Epsilon > 0 && s.Epsilon < 1) {
			return fmt.Errorf("%w: epsilon %v outside (0, 1)", errSpec, s.Epsilon)
		}
	}
	if s.Algorithm == AlgAuction {
		if s.Refine != RefineNone {
			return fmt.Errorf("%w: auction does not support refinement (its objective is weight, the refiners' is cardinality)", errSpec)
		}
		if s.Target != 0 {
			return fmt.Errorf("%w: auction does not support a cardinality target", errSpec)
		}
	}
	if s.SeedOffset != 0 || s.SeedCount != 0 {
		if s.SeedOffset < 0 {
			return fmt.Errorf("%w: negative seed offset %d", errSpec, s.SeedOffset)
		}
		if s.SeedCount <= 0 {
			return fmt.Errorf("%w: seed sub-range needs a positive seed count, got %d", errSpec, s.SeedCount)
		}
		if s.Ensemble <= 1 {
			return fmt.Errorf("%w: seed sub-range requires an ensemble (best_of > 1)", errSpec)
		}
		if s.SeedOffset+s.SeedCount > s.Ensemble {
			return fmt.Errorf("%w: seed sub-range [%d, %d) exceeds the ensemble's %d seeds",
				errSpec, s.SeedOffset, s.SeedOffset+s.SeedCount, s.Ensemble)
		}
		if s.Refine != RefineNone || s.Target != 0 {
			return fmt.Errorf("%w: seed sub-range requires refine none and no target (early-stopping sweeps consume seeds serially, so a split cannot reproduce them)", errSpec)
		}
	}
	return nil
}

// Run executes one declarative matching request on the session — the
// single engine behind every other entry point: the legacy one-shot and
// session calls (OneSidedMatch, TwoSidedMatch, KarpSipser*, Cheap*), the
// batch layer, Server and cmd/matchserve all delegate here, so Run is the
// only code path that dispatches matching kernels.
//
// Single runs (Ensemble <= 1, Refine: None) are bit-identical to the
// legacy entry points at the same options and seed, and reuse the cached
// scaling and workspaces like any session call.
//
// Ensembles consume their K candidates strictly in seed order over one
// shared scaling. On a session whose pool is wider than one worker (and
// with Spec.Sequential unset) the candidates fan out across the pool —
// one width-1 run per candidate on per-worker shape-keyed arenas — and the
// consumption order still makes the winner (size-then-seed) bit-identical
// to the sequential sweep; because every candidate runs at width 1, the
// parallel path's full matchings are deterministic at any pool width,
// matching the sequential sweep at Workers: 1. MatchResult reports the
// winner's provenance (WinnerSeed, Candidates, HeuristicSize) and, for
// AlgKarpSipser, the winner's phase statistics.
//
// Refinement completes the winner toward maximum cardinality with
// Hopcroft–Karp (RefineExact), push-relabel (RefinePushRelabel) or the
// parallel MS-BFS-Graft engine (RefineGraft; RefineExact auto-selects it
// on instances with at least graftAutoEdges nonzeros, and
// MatchResult.RefinedWith reports the engine that actually ran). For
// single runs the refined matching always satisfies size == Sprank().
// Inside an ensemble the refinement is ensemble-aware: it advances one
// bounded unit per consumed candidate, warm-starting from the best
// heuristic so far, and the ensemble stops the moment the refined size
// reaches the Target or structural sprank bound — jump-start workloads
// stop paying for candidates they no longer need. Refined matchings live
// on the session's refinement workspace — like unrefined results they
// alias the session and are overwritten by its next Run (the batch layer
// hands callers owned copies).
//
// Cancellation (the batch layer's per-request deadlines) is honored
// between and inside candidate runs at the kernels' usual checkpoints,
// and inside graft refinement between frontier chunks; the sequential
// refiners are not interruptible — they are bounded warm-start work — so
// a deadline expiring mid-refinement is reported right after them.
func (m *Matcher) Run(spec Spec) (*MatchResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Algorithm == AlgAuction {
		return m.runAuction(spec)
	}
	var sc *Scaling
	if spec.Algorithm.scales() {
		var err error
		if sc, err = m.Scale(); err != nil {
			return nil, err
		}
	}
	base := m.seed(spec.Seed)
	if spec.Ensemble <= 1 {
		return m.runSingle(spec, base, sc)
	}
	return m.runEnsemble(spec, base, sc)
}

// runSingle executes a non-ensemble Spec: one candidate, optionally
// refined to maximum cardinality.
func (m *Matcher) runSingle(spec Spec, seed uint64, sc *Scaling) (*MatchResult, error) {
	best, err := m.runOnce(spec.Algorithm, seed)
	if err != nil {
		return nil, err
	}
	heuristic := best.Size
	ref := m.resolveRefine(spec.Refine)
	switch ref {
	case RefineExact:
		best = exact.NewHKRefinerWs(m.g.a, best, m.refineWs()).Run()
	case RefinePushRelabel:
		best = exact.NewPRRefinerWs(m.g.a, best, m.refineWs()).Run()
	case RefineGraft:
		gr := exact.NewGraftRefinerWs(m.g.a, best, m.refineWs())
		gr.SetTranspose(m.g.transpose())
		gr.SetParallel(m.refineWidth())
		gr.SetCancel(m.cancel)
		best = gr.Run()
		if m.cancel != nil && m.cancel() {
			return nil, ErrCanceled
		}
	}
	m.result = MatchResult{
		Matching:      best,
		Scaling:       sc,
		Candidates:    1,
		WinnerSeed:    seed,
		HeuristicSize: heuristic,
		Refined:       ref != RefineNone,
		RefinedWith:   ref,
	}
	if spec.Algorithm == AlgKarpSipser {
		m.result.KSStats = &m.ksStats
	}
	return &m.result, nil
}

// runEnsemble executes a best-of-K Spec: the candidates run sequentially
// on the session arena or fan out across the pool, and either way their
// results are consumed strictly in seed order by one ensembleRun state
// machine — which is what makes the two schedules agree bit for bit.
// A seed sub-range (SeedCount > 0) consumes only the candidates
// [SeedOffset, SeedOffset+SeedCount) of the interval; the winner seed it
// reports stays absolute, so a cluster router can reduce disjoint
// sub-range winners with the full sweep's own size-then-smallest-seed
// rule. Validation has already rejected sub-ranges combined with the
// early-stopping Refine/Target machinery.
func (m *Matcher) runEnsemble(spec Spec, base uint64, sc *Scaling) (*MatchResult, error) {
	k := spec.Ensemble
	if spec.SeedCount > 0 {
		base += uint64(spec.SeedOffset)
		k = spec.SeedCount
	}
	e := ensembleRun{m: m, spec: spec, base: base, k: k, ref: m.resolveRefine(spec.Refine)}
	if spec.Refine != RefineNone || spec.Target > 0 {
		e.ub = m.g.SprankUpperBound()
		if spec.Target > 0 {
			bound := int(math.Ceil(spec.Target * float64(e.ub)))
			if spec.Refine == RefineNone {
				e.targetH = bound
			} else {
				e.targetR = bound
			}
		}
	}
	pool, width := m.ensembleWidth(e.k)
	if spec.Sequential || width <= 1 {
		e.runSequential()
	} else {
		e.runParallel(pool, width, sc)
	}
	if e.err != nil {
		return nil, e.err
	}

	final := &m.best
	if e.ref != RefineNone {
		if !e.hitTarget {
			// The completion loop runs outside any pool region, so a graft
			// refiner — kept at width 1 while candidates held the pool — can
			// fan its remaining phases out across the session pool now.
			// Bit-identity at every width is the engine's contract, so this
			// re-widening cannot change the result.
			if gr, ok := e.refiner.(graftSpecRefiner); ok {
				gr.r.SetParallel(m.refineWidth())
			}
			// Complete the refinement — up to the target when one is set,
			// to the maximum otherwise (the RefineExact guarantee). A size
			// already at the structural bound is provably maximum, so the
			// loop never pays a fruitless final sweep for it.
			for e.refiner.Size() < e.ub && (e.targetR == 0 || e.refiner.Size() < e.targetR) && e.refiner.Advance() {
			}
		}
		final = e.refiner.Result()
	}
	if spec.Algorithm == AlgKarpSipser {
		m.ksStats = m.bestKS // report the winner's phase stats, not the last candidate's
	}
	m.result = MatchResult{
		Matching:      final,
		Scaling:       sc,
		Candidates:    e.consumed,
		WinnerSeed:    e.winner,
		HeuristicSize: e.heuristic,
		Refined:       e.ref != RefineNone,
		RefinedWith:   e.ref,
	}
	if spec.Algorithm == AlgKarpSipser {
		m.result.KSStats = &m.ksStats
	}
	return &m.result, nil
}

// ensembleWidth resolves the pool and fan-out width of an ensemble run:
// the session's pool (or the process default), its width capped by
// Options.Workers and the candidate count. Width 1 means the candidates
// run sequentially on the session arena.
func (m *Matcher) ensembleWidth(k int) (*par.Pool, int) {
	pool := m.opt.Pool.inner()
	if pool == nil {
		pool = par.Default()
	}
	width := pool.Workers(m.opt.Workers)
	if width > pool.Width() {
		width = pool.Width()
	}
	if width > k {
		width = k
	}
	return pool, width
}

// candResult is one ensemble candidate's outcome, as handed to the
// consumption state machine: the matching (aliasing the producing arena on
// the sequential path, an owned copy on the parallel path), the
// Karp–Sipser phase statistics when that kernel ran, and the kernel error.
type candResult struct {
	mt   *Matching
	st   KarpSipserStats
	err  error
	done bool
}

// ensembleRun is the consumption state of one best-of-K ensemble. Both
// execution schedules feed it the same way — candidate results enter
// consume strictly in seed order — so every decision it takes (strict
// improvement, refinement advances, early stops) is a deterministic
// function of the candidate results alone, never of completion order or
// pool width. On the parallel path the state is guarded by mu, and stop
// doubles as the lock-free cancellation hook that keeps unneeded
// candidates from starting.
type ensembleRun struct {
	m    *Matcher
	spec Spec
	base uint64
	k    int
	ref  Refinement // spec.Refine after auto-selection (resolveRefine)

	ub      int // structural sprank upper bound (refine or target runs)
	targetH int // heuristic early-stop bound (Refine: None)
	targetR int // refined early-stop bound (Refine set)

	mu        sync.Mutex
	stop      atomic.Bool
	frontier  int
	consumed  int
	err       error
	bestSet   bool
	bestSize  int
	winner    uint64
	heuristic int
	hitTarget bool
	refiner   specRefiner
	refDone   bool
}

// consume folds the next candidate (in seed order) into the ensemble
// state: strict-improvement winner tracking, one incremental refinement
// advance, and the early-stop decisions.
//
// The reported winner is the candidate the returned matching derives
// from. Without refinement that is the strict-improvement best (ties keep
// the earliest seed, which makes the winner deterministic — sizes are
// deterministic at any width, so the comparison sequence is too). With
// refinement it is the refiner's current warm start: a later candidate
// that improves the heuristic best but can no longer beat the refined
// size contributes nothing to the final matching, so it must not claim
// WinnerSeed/HeuristicSize — the wire contract is that
// size − heuristic_size is exactly the work the refinement added.
func (e *ensembleRun) consume(res candResult) {
	c := e.frontier
	e.frontier++
	if res.err != nil {
		e.err = res.err
		e.stop.Store(true)
		return
	}
	e.consumed++
	m := e.m
	improved := !e.bestSet || res.mt.Size > e.bestSize
	if improved {
		e.bestSet = true
		e.bestSize = res.mt.Size
	}
	if e.ref == RefineNone {
		if improved {
			m.copyBest(res.mt)
			e.winner = e.base + uint64(c)
			e.heuristic = res.mt.Size
			if e.spec.Algorithm == AlgKarpSipser {
				m.bestKS = res.st
			}
		}
		if e.targetH > 0 && e.bestSize >= e.targetH {
			e.hitTarget = true
			e.stop.Store(true)
		}
		return
	}
	// Ensemble-aware refinement: keep one incremental refiner warm-started
	// from the best heuristic so far (restarted when a candidate strictly
	// beats the refined size, at which point that candidate becomes the
	// provenance anchor), advance it one bounded unit per candidate, and
	// stop the ensemble the moment the refined size proves the target or
	// the structural bound — or the refiner reports the matching maximum,
	// after which further candidates cannot improve the final size.
	if e.refiner == nil || (improved && e.bestSize > e.refiner.Size()) {
		e.refiner = m.newSpecRefiner(e.ref, res.mt)
		e.refDone = false
		e.winner = e.base + uint64(c)
		e.heuristic = res.mt.Size
		if e.spec.Algorithm == AlgKarpSipser {
			m.bestKS = res.st
		}
	}
	if !e.refDone && !e.refiner.Advance() {
		e.refDone = true
	}
	size := e.refiner.Size()
	switch {
	case e.targetR > 0 && size >= e.targetR:
		e.hitTarget = true
		e.stop.Store(true)
	case e.refDone || size >= e.ub:
		e.stop.Store(true)
	}
}

// runSequential drives the candidates one after another on the session's
// own arena, at the session's full parallel width — the pre-fan-out
// schedule, and the one batch slots (width 1) always use.
func (e *ensembleRun) runSequential() {
	m := e.m
	for c := 0; c < e.k && !e.stop.Load(); c++ {
		mt, err := m.runOnce(e.spec.Algorithm, e.base+uint64(c))
		e.consume(candResult{mt: mt, st: m.ksStats, err: err})
	}
}

// runParallel fans the candidates out across the pool: each worker slot
// owns a shape-keyed width-1 arena (the batch engine's recycling), claims
// candidates off a dynamic schedule, and hands owned copies of the results
// to the seed-ordered consumption loop. Candidates past a stop decision
// never start (the claim loop polls stop); candidates already in flight
// when the ensemble stops finish and are discarded unread, which is what
// keeps the outcome independent of completion order.
func (e *ensembleRun) runParallel(pool *par.Pool, width int, sc *Scaling) {
	m := e.m
	m.growEnsembleSlots(width)
	opt := m.opt
	opt.Workers = 1
	opt.Pool = nil // width-1 arenas run inline; no pool needed
	results := make([]candResult, e.k)
	pool.ForCancel(e.k, width, par.Dynamic, 1, e.stop.Load, func(w, lo, hi int) {
		for c := lo; c < hi; c++ {
			child := m.ensSlots[w].get(m.g, opt)
			child.setCancel(m.cancel)
			if sc != nil {
				child.installScaling(sc)
			}
			mt, err := child.runOnce(e.spec.Algorithm, e.base+uint64(c))
			res := candResult{err: err, done: true}
			if err == nil {
				// Own the result: the arena's buffers are overwritten by
				// the worker's next candidate, and consumption may happen
				// on another worker's goroutine.
				res.mt = cloneMatching(mt)
				res.st = child.ksStats
			}
			e.mu.Lock()
			results[c] = res
			for e.frontier < e.k && !e.stop.Load() && results[e.frontier].done {
				e.consume(results[e.frontier])
			}
			e.mu.Unlock()
		}
	})
}

// specRefiner is the incremental engine behind ensemble-aware refinement:
// Advance performs one bounded unit of augmentation work (a Hopcroft–Karp
// phase, a push-relabel bid budget) and reports whether the matching may
// still be improvable; Result exposes the refined matching, which is valid
// between advances and whose size is monotone.
type specRefiner interface {
	Advance() bool
	Size() int
	Result() *Matching
}

type hkSpecRefiner struct{ *exact.HKRefiner }

func (r hkSpecRefiner) Advance() bool     { return r.Phase() }
func (r hkSpecRefiner) Result() *Matching { return r.Matching() }

type prSpecRefiner struct {
	r      *exact.PRRefiner
	budget int
}

func (r prSpecRefiner) Advance() bool     { return r.r.Step(r.budget) }
func (r prSpecRefiner) Size() int         { return r.r.Size() }
func (r prSpecRefiner) Result() *Matching { return r.r.Matching() }

type graftSpecRefiner struct{ r *exact.GraftRefiner }

func (g graftSpecRefiner) Advance() bool     { return g.r.Phase() }
func (g graftSpecRefiner) Size() int         { return g.r.Size() }
func (g graftSpecRefiner) Result() *Matching { return g.r.Matching() }

// resolveRefine maps the requested refinement to the engine that runs:
// RefineExact auto-selects the parallel graft engine once the instance is
// large enough (graftAutoEdges nonzeros) that refinement dominates
// end-to-end time. Both engines share the size == sprank contract, so the
// substitution only changes which maximum matching comes back — and
// MatchResult.RefinedWith records which engine it was.
func (m *Matcher) resolveRefine(ref Refinement) Refinement {
	if ref == RefineExact && len(m.g.a.Idx) >= graftAutoEdges {
		return RefineGraft
	}
	return ref
}

// newSpecRefiner builds the incremental refiner of the given (resolved)
// family on the session's refinement workspace, warm-started from a copy of
// init. The push-relabel advance budget is one bid per row — roughly one
// sweep of work per unit, the granularity a Hopcroft–Karp phase has
// naturally. A graft refiner built here starts at width 1: consume runs
// inside the parallel schedule's pool region, where nested pool dispatch
// would deadlock; runEnsemble re-widens it for the completion loop, which
// the engine's any-width bit-identity makes safe.
func (m *Matcher) newSpecRefiner(ref Refinement, init *Matching) specRefiner {
	a, ws := m.g.a, m.refineWs()
	switch ref {
	case RefinePushRelabel:
		budget := a.RowsN
		if budget < 1 {
			budget = 1
		}
		return prSpecRefiner{r: exact.NewPRRefinerWs(a, init, ws), budget: budget}
	case RefineGraft:
		gr := exact.NewGraftRefinerWs(a, init, ws)
		gr.SetTranspose(m.g.transpose())
		return graftSpecRefiner{r: gr}
	default:
		return hkSpecRefiner{exact.NewHKRefinerWs(a, init, ws)}
	}
}

// runOnce dispatches a single candidate run of the given algorithm. The
// returned matching aliases the session workspaces (except the cheap
// baselines, which allocate). A nil kernel result means the cancellation
// hook fired.
func (m *Matcher) runOnce(alg Algorithm, seed uint64) (*Matching, error) {
	switch alg {
	case AlgOneSided:
		mt, _ := m.session().OneSidedMatching(seed)
		if mt == nil {
			return nil, ErrCanceled
		}
		return mt, nil
	case AlgKarpSipser:
		if m.ksWs == nil {
			m.ksWs = &ks.Workspace{}
		}
		mt, st := ks.RunWsCancel(m.g.a, m.g.transpose(), seed, m.ksWs, m.cancel)
		m.ksStats = st
		if mt == nil {
			return nil, ErrCanceled
		}
		return mt, nil
	case AlgKarpSipserParallel:
		if m.ksApprox == nil {
			m.ksApprox = ks.NewApproxSession(m.g.a, m.g.transpose(), m.opt.Workers, m.opt.Pool.inner())
		}
		return m.ksApprox.Run(seed), nil
	case AlgCheapEdge:
		return cheap.RandomEdge(m.g.a, seed), nil
	case AlgCheapVertex:
		return cheap.RandomVertex(m.g.a, seed), nil
	default: // AlgTwoSided
		res := m.session().TwoSided(seed)
		if res == nil {
			return nil, ErrCanceled
		}
		return res.Matching, nil
	}
}

// copyBest retains mt as the ensemble's best candidate so far in the
// session-owned winner buffer (the next candidate overwrites the kernel
// workspaces mt points into).
func (m *Matcher) copyBest(mt *Matching) {
	m.best.RowMate = append(m.best.RowMate[:0], mt.RowMate...)
	m.best.ColMate = append(m.best.ColMate[:0], mt.ColMate...)
	m.best.Size = mt.Size
}

// Match executes one declarative matching request on a throwaway session —
// the one-shot form of Matcher.Run. Callers that run several Specs on the
// same graph create a Matcher and call Run directly, which reuses the
// scaling and the workspaces across calls.
func (g *Graph) Match(spec Spec, opt *Options) (*MatchResult, error) {
	return g.NewMatcher(opt).Run(spec)
}
