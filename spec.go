package bipartite

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cheap"
	"repro/internal/exact"
	"repro/internal/ks"
)

// Algorithm selects the matching heuristic a Spec runs. The zero value is
// AlgTwoSided, the paper's flagship heuristic.
type Algorithm int

const (
	// AlgTwoSided runs the TwoSidedMatch heuristic (Algorithm 3): both
	// sides sample one neighbor from the scaled matrix and the 1-out graph
	// is matched exactly; conjectured quality ≥ 2(1−ρ) ≈ 0.866.
	AlgTwoSided Algorithm = iota
	// AlgOneSided runs the OneSidedMatch heuristic (Algorithm 2):
	// scaling-weighted column choice per row; guaranteed ≥ 1−1/e ≈ 0.632.
	AlgOneSided
	// AlgKarpSipser runs the classic sequential Karp–Sipser baseline.
	AlgKarpSipser
	// AlgKarpSipserParallel runs the multithreaded Karp–Sipser baseline
	// (no quality guarantee; newly arising degree-one vertices are missed).
	AlgKarpSipserParallel
	// AlgCheapEdge runs the §2.1 random-edge-visit 1/2-approximation.
	AlgCheapEdge
	// AlgCheapVertex runs the §2.1 random-vertex-random-neighbor
	// 1/2-approximation.
	AlgCheapVertex

	algCount // sentinel; keep last
)

// String returns the wire name of the algorithm, as accepted by
// ParseAlgorithm and cmd/matchserve.
func (a Algorithm) String() string {
	switch a {
	case AlgTwoSided:
		return "twosided"
	case AlgOneSided:
		return "onesided"
	case AlgKarpSipser:
		return "karpsipser"
	case AlgKarpSipserParallel:
		return "karpsipser-parallel"
	case AlgCheapEdge:
		return "cheap-edge"
	case AlgCheapVertex:
		return "cheap-vertex"
	default:
		return "unknown"
	}
}

// ParseAlgorithm converts a wire name back into an Algorithm. The empty
// string means AlgTwoSided, the default.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "twosided", "":
		return AlgTwoSided, nil
	case "onesided":
		return AlgOneSided, nil
	case "karpsipser":
		return AlgKarpSipser, nil
	case "karpsipser-parallel", "ksp":
		return AlgKarpSipserParallel, nil
	case "cheap-edge":
		return AlgCheapEdge, nil
	case "cheap-vertex":
		return AlgCheapVertex, nil
	default:
		return 0, fmt.Errorf("bipartite: unknown algorithm %q", s)
	}
}

// scales reports whether the algorithm runs the matrix-scaling stage
// before sampling (and therefore benefits from a Matcher's cached — or a
// batch engine's shared — scaling).
func (a Algorithm) scales() bool { return a == AlgTwoSided || a == AlgOneSided }

// Refinement selects the post-processing applied to the heuristic
// matching a Spec produced. The zero value is RefineNone.
type Refinement int

const (
	// RefineNone returns the heuristic matching as is.
	RefineNone Refinement = iota
	// RefineExact augments the heuristic matching to maximum cardinality
	// with Hopcroft–Karp — the paper's central application (§4, Table 3):
	// the heuristic is a jump-start, the exact solver only pays for the
	// rows the heuristic left free. The refined result always satisfies
	// size == Sprank().
	RefineExact

	refineCount // sentinel; keep last
)

// String returns the wire name of the refinement.
func (r Refinement) String() string {
	switch r {
	case RefineNone:
		return "none"
	case RefineExact:
		return "exact"
	default:
		return "unknown"
	}
}

// ParseRefinement converts a wire name back into a Refinement. The empty
// string means RefineNone.
func ParseRefinement(s string) (Refinement, error) {
	switch s {
	case "none", "":
		return RefineNone, nil
	case "exact":
		return RefineExact, nil
	default:
		return 0, fmt.Errorf("bipartite: unknown refinement %q", s)
	}
}

// Spec is a declarative matching request — the one request type every
// execution surface understands: Matcher.Run executes it on a session,
// Graph.Match one-shot, the batch layer and Server run it per Request, and
// cmd/matchserve accepts its fields on the wire. The zero value is a
// single TwoSided run with the session's default seed, which makes every
// legacy entry point expressible as a Spec (and since this redesign they
// are implemented exactly that way).
type Spec struct {
	// Algorithm selects the heuristic. Zero value: AlgTwoSided.
	Algorithm Algorithm

	// Seed is the base RNG seed; 0 means the Options' seed. Ensemble
	// candidate c runs with seed Seed+c.
	Seed uint64

	// Ensemble, when > 1, runs a best-of-K ensemble: K candidates with
	// seeds Seed..Seed+K-1 share one scaling (and one workspace arena) and
	// the largest matching wins, ties broken toward the smallest seed —
	// the winner is deterministic wherever candidate sizes are
	// (everywhere at Workers: 1; the scaled heuristics at any width —
	// only AlgKarpSipserParallel's size is scheduling-dependent above one
	// worker). 0 or 1 means a single run.
	Ensemble int

	// Refine post-processes the winning heuristic matching; see
	// RefineExact.
	Refine Refinement

	// Target, when > 0, stops the ensemble early: after any candidate the
	// ensemble halts as soon as the best size so far reaches
	// ⌈Target · SprankUpperBound()⌉. Must lie in (0, 1]. Ignored for
	// single runs.
	Target float64
}

// errSpec tags Spec validation failures; matchserve maps them to 400s.
var errSpec = errors.New("bipartite: invalid spec")

// Validate checks the Spec's fields; the engine rejects invalid specs
// before touching any kernel, and cmd/matchserve turns the errors into
// precise HTTP 400s.
func (s Spec) Validate() error {
	if s.Algorithm < 0 || s.Algorithm >= algCount {
		return fmt.Errorf("%w: unknown algorithm %d", errSpec, int(s.Algorithm))
	}
	if s.Refine < 0 || s.Refine >= refineCount {
		return fmt.Errorf("%w: unknown refinement %d", errSpec, int(s.Refine))
	}
	if s.Ensemble < 0 {
		return fmt.Errorf("%w: negative ensemble size %d", errSpec, s.Ensemble)
	}
	if s.Target != 0 && !(s.Target > 0 && s.Target <= 1) {
		return fmt.Errorf("%w: target %v outside (0, 1]", errSpec, s.Target)
	}
	return nil
}

// Run executes one declarative matching request on the session — the
// single engine behind every other entry point: the legacy one-shot and
// session calls (OneSidedMatch, TwoSidedMatch, KarpSipser*, Cheap*), the
// batch layer, Server and cmd/matchserve all delegate here, so Run is the
// only code path that dispatches matching kernels.
//
// Single runs (Ensemble <= 1, Refine: None) are bit-identical to the
// legacy entry points at the same options and seed, and reuse the cached
// scaling and workspaces like any session call. Ensembles run their K
// candidates sequentially on the same arena — one scaling, near-zero
// allocations beyond the winner copy — and report the deterministic winner
// in MatchResult.WinnerSeed. RefineExact completes the winner to maximum
// cardinality with Hopcroft–Karp; the refined matching is freshly
// allocated (it does not alias the session), while unrefined results
// follow the usual Matcher aliasing contract.
//
// Cancellation (the batch layer's per-request deadlines) is honored
// between and inside candidate runs at the kernels' usual checkpoints;
// like the shared scaling, the refinement stage itself is not
// interruptible — it is bounded warm-start work — so a deadline expiring
// mid-refinement is reported right after it.
func (m *Matcher) Run(spec Spec) (*MatchResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var sc *Scaling
	if spec.Algorithm.scales() {
		var err error
		if sc, err = m.Scale(); err != nil {
			return nil, err
		}
	}
	k := spec.Ensemble
	if k < 1 {
		k = 1
	}
	base := m.seed(spec.Seed)
	target := 0
	if k > 1 && spec.Target > 0 {
		target = int(math.Ceil(spec.Target * float64(m.g.SprankUpperBound())))
	}

	var best *Matching
	winner := base
	ran := 0
	for c := 0; c < k; c++ {
		seed := base + uint64(c)
		mt, err := m.runOnce(spec.Algorithm, seed)
		if err != nil {
			return nil, err
		}
		ran++
		if k == 1 {
			best = mt
			break
		}
		// Strict improvement only: ties keep the earliest seed, which
		// makes the winner deterministic (sizes are deterministic at any
		// width, so the comparison sequence is too).
		if best == nil || mt.Size > best.Size {
			m.copyBest(mt)
			best = &m.best
			winner = seed
			if spec.Algorithm == AlgKarpSipser {
				m.bestKS = m.ksStats
			}
		}
		if target > 0 && best.Size >= target {
			break
		}
	}
	if k > 1 && spec.Algorithm == AlgKarpSipser {
		m.ksStats = m.bestKS // report the winner's phase stats, not the last candidate's
	}

	heuristic := best.Size
	if spec.Refine == RefineExact {
		best = exact.HopcroftKarp(m.g.a, best)
	}
	m.result = MatchResult{
		Matching:      best,
		Scaling:       sc,
		Candidates:    ran,
		WinnerSeed:    winner,
		HeuristicSize: heuristic,
	}
	if spec.Algorithm == AlgKarpSipser {
		m.result.KSStats = &m.ksStats
	}
	return &m.result, nil
}

// runOnce dispatches a single candidate run of the given algorithm. The
// returned matching aliases the session workspaces (except the cheap
// baselines, which allocate). A nil kernel result means the cancellation
// hook fired.
func (m *Matcher) runOnce(alg Algorithm, seed uint64) (*Matching, error) {
	switch alg {
	case AlgOneSided:
		mt, _ := m.session().OneSidedMatching(seed)
		if mt == nil {
			return nil, ErrCanceled
		}
		return mt, nil
	case AlgKarpSipser:
		if m.ksWs == nil {
			m.ksWs = &ks.Workspace{}
		}
		mt, st := ks.RunWsCancel(m.g.a, m.g.transpose(), seed, m.ksWs, m.cancel)
		m.ksStats = st
		if mt == nil {
			return nil, ErrCanceled
		}
		return mt, nil
	case AlgKarpSipserParallel:
		if m.ksApprox == nil {
			m.ksApprox = ks.NewApproxSession(m.g.a, m.g.transpose(), m.opt.Workers, m.opt.Pool.inner())
		}
		return m.ksApprox.Run(seed), nil
	case AlgCheapEdge:
		return cheap.RandomEdge(m.g.a, seed), nil
	case AlgCheapVertex:
		return cheap.RandomVertex(m.g.a, seed), nil
	default: // AlgTwoSided
		res := m.session().TwoSided(seed)
		if res == nil {
			return nil, ErrCanceled
		}
		return res.Matching, nil
	}
}

// copyBest retains mt as the ensemble's best candidate so far in the
// session-owned winner buffer (the next candidate overwrites the kernel
// workspaces mt points into).
func (m *Matcher) copyBest(mt *Matching) {
	m.best.RowMate = append(m.best.RowMate[:0], mt.RowMate...)
	m.best.ColMate = append(m.best.ColMate[:0], mt.ColMate...)
	m.best.Size = mt.Size
}

// Match executes one declarative matching request on a throwaway session —
// the one-shot form of Matcher.Run. Callers that run several Specs on the
// same graph create a Matcher and call Run directly, which reuses the
// scaling and the workspaces across calls.
func (g *Graph) Match(spec Spec, opt *Options) (*MatchResult, error) {
	return g.NewMatcher(opt).Run(spec)
}
