package bipartite

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/gen"
)

// This file is the differential mutation-fuzz oracle — the correctness
// centerpiece of the dynamic-session work. A seeded trace generator
// drives random mutation batches over the adversarial generator
// families and cross-checks, after every batch:
//
//	(a) matching-validity invariants (mates consistent, every matched
//	    pair an edge of the mutated graph, size correct),
//	(b) the exact session's maintained size against a fresh sprank
//	    oracle computed on the mutated snapshot,
//	(c) bit-identity of the maintained matchings across pool widths
//	    1/2/4 (the determinism contract under -race), and
//	(d) the session's edge bookkeeping against a map-based mirror.
//
// The heuristic quality bounds under mutation — the statistical
// counterpart of (b) for Refine: None sessions — are gated separately
// by TestDynFuzzHeuristicQuality.

// dynFuzzBatches returns the per-family batch count: the acceptance
// criterion is ≥ 200 seeded batches per generator family; -short keeps
// the inner-loop suites fast.
func dynFuzzBatches() int {
	if testing.Short() {
		return 50
	}
	return 200
}

// dynFuzzFamilies spans the adversarial generator families: structural
// rank deficiency (augmenting paths must route around a deficient
// column space), the long-thin-path worst case of augmentation depth,
// power-law degree skew, a structured mesh, and Erdős–Rényi.
func dynFuzzFamilies() []struct {
	name string
	g    *Graph
} {
	return []struct {
		name string
		g    *Graph
	}{
		{"rankdeficient", newGraph(gen.RankDeficient(80, 12, 3.0, 5))},
		{"longthinpath", newGraph(gen.LongThinPath(90))},
		{"skeweddegree", newGraph(gen.SkewedDegree(96, 80, 3.0, 1.5, 9))},
		{"grid2d", Grid2D(9, 9)},
		{"er", RandomER(85, 75, 3.0, 17)},
	}
}

// dynMirror tracks the expected edge set of a trace — the trivial
// reference implementation the sessions are differenced against.
type dynMirror struct {
	set  map[[2]int]bool
	list [][2]int
}

func newDynMirror(g *Graph) *dynMirror {
	m := &dynMirror{set: make(map[[2]int]bool)}
	for i := 0; i < g.Rows(); i++ {
		for _, j := range g.Neighbors(i) {
			e := [2]int{i, int(j)}
			m.set[e] = true
			m.list = append(m.list, e)
		}
	}
	return m
}

// apply folds one batch into the mirror with the session's semantics:
// deletes first, then inserts, no-ops skipped.
func (m *dynMirror) apply(inserts, deletes [][2]int) (ins, del int) {
	for _, e := range deletes {
		if m.set[e] {
			delete(m.set, e)
			del++
		}
	}
	for _, e := range inserts {
		if !m.set[e] {
			m.set[e] = true
			ins++
		}
	}
	// Rebuild the sampling list lazily only when it drifted too far; a
	// simple full rebuild keeps the generator honest and is cheap at
	// fuzz sizes.
	m.list = m.list[:0]
	for e := range m.set {
		m.list = append(m.list, e)
	}
	return ins, del
}

// dynFuzzBatch generates one mutation batch: deletions sampled from the
// live edge set (plus a probable miss), insertions sampled uniformly
// from the vertex grid (duplicates and present edges included on
// purpose), and every eighth batch deliberately neutral.
func dynFuzzBatch(rng *rand.Rand, m *dynMirror, rows, cols, batch int) (inserts, deletes [][2]int) {
	if batch%8 == 7 {
		// Neutral batch: delete an absent edge, re-insert a present one.
		if len(m.list) > 0 {
			e := m.list[rng.Intn(len(m.list))]
			inserts = append(inserts, e)
		}
		deletes = append(deletes, [2]int{rng.Intn(rows), cols - 1})
		if m.set[deletes[0]] {
			deletes = nil
		}
		return inserts, deletes
	}
	for k, kn := 0, rng.Intn(4); k < kn && len(m.list) > 0; k++ {
		deletes = append(deletes, m.list[rng.Intn(len(m.list))])
	}
	if rng.Intn(3) == 0 { // probable miss
		deletes = append(deletes, [2]int{rng.Intn(rows), rng.Intn(cols)})
	}
	for k, kn := 0, rng.Intn(4); k < kn; k++ {
		e := [2]int{rng.Intn(rows), rng.Intn(cols)}
		inserts = append(inserts, e)
		if rng.Intn(4) == 0 { // duplicate inside the batch
			inserts = append(inserts, e)
		}
	}
	return inserts, deletes
}

// TestDynFuzzDifferential is the oracle suite: per family, exact and
// heuristic sessions at pool widths 1/2/4 absorb the same seeded trace;
// after every batch the cross-width results must agree bit for bit, the
// maintained matchings must validate against the mutated snapshots, the
// edge bookkeeping must match the mirror, and the exact sessions'
// maintained size must equal a fresh sprank oracle.
func TestDynFuzzDifferential(t *testing.T) {
	widths := []int{1, 2, 4}
	for fi, family := range dynFuzzFamilies() {
		family := family
		seed := uint64(1000*fi + 1)
		t.Run(family.name, func(t *testing.T) {
			t.Parallel()
			g := family.g
			var exacts, heurs []*DynSession
			for _, w := range widths {
				pool := NewPool(w)
				defer pool.Close()
				opt := &Options{Seed: 7, Workers: w, Pool: pool}
				se, err := g.NewDynSession(Spec{Algorithm: AlgTwoSided, Refine: RefineExact}, opt)
				if err != nil {
					t.Fatal(err)
				}
				sh, err := g.NewDynSession(Spec{Algorithm: AlgTwoSided}, opt)
				if err != nil {
					t.Fatal(err)
				}
				exacts = append(exacts, se)
				heurs = append(heurs, sh)
			}
			rng := rand.New(rand.NewSource(int64(seed)))
			mirror := newDynMirror(g)
			rows, cols := g.Rows(), g.Cols()
			for b := 0; b < dynFuzzBatches(); b++ {
				inserts, deletes := dynFuzzBatch(rng, mirror, rows, cols, b)
				wantIns, wantDel := mirror.apply(inserts, deletes)
				ref, err := exacts[0].Apply(inserts, deletes)
				if err != nil {
					t.Fatalf("batch %d: %v", b, err)
				}
				refH, err := heurs[0].Apply(inserts, deletes)
				if err != nil {
					t.Fatalf("batch %d (heuristic): %v", b, err)
				}
				if ref.Inserted != wantIns || ref.Deleted != wantDel {
					t.Fatalf("batch %d: applied (%d,%d), mirror (%d,%d)",
						b, ref.Inserted, ref.Deleted, wantIns, wantDel)
				}
				for w := 1; w < len(widths); w++ {
					res, err := exacts[w].Apply(inserts, deletes)
					if err != nil {
						t.Fatalf("batch %d width %d: %v", b, widths[w], err)
					}
					if *res != *ref {
						t.Fatalf("batch %d: width-%d result %+v, width-1 %+v", b, widths[w], *res, *ref)
					}
					cmpMates(t, fmt.Sprintf("batch %d exact width %d", b, widths[w]),
						exacts[w].Matching(), exacts[0].Matching())
					resH, err := heurs[w].Apply(inserts, deletes)
					if err != nil {
						t.Fatalf("batch %d width %d (heuristic): %v", b, widths[w], err)
					}
					if *resH != *refH {
						t.Fatalf("batch %d: heuristic width-%d result %+v, width-1 %+v", b, widths[w], *resH, *refH)
					}
					cmpMates(t, fmt.Sprintf("batch %d heuristic width %d", b, widths[w]),
						heurs[w].Matching(), heurs[0].Matching())
				}
				if exacts[0].Edges() != len(mirror.set) {
					t.Fatalf("batch %d: session holds %d edges, mirror %d", b, exacts[0].Edges(), len(mirror.set))
				}
				snap := exacts[0].Snapshot()
				if err := snap.ValidateMatching(exacts[0].Matching()); err != nil {
					t.Fatalf("batch %d: exact matching invalid: %v", b, err)
				}
				if err := heurs[0].Snapshot().ValidateMatching(heurs[0].Matching()); err != nil {
					t.Fatalf("batch %d: heuristic matching invalid: %v", b, err)
				}
				if want := snap.Sprank(); ref.MaintainedSize != want {
					t.Fatalf("batch %d: maintained exact size %d, fresh sprank %d", b, ref.MaintainedSize, want)
				}
				if heurs[0].Size() > exacts[0].Size() {
					t.Fatalf("batch %d: heuristic size %d exceeds maximum %d", b, heurs[0].Size(), exacts[0].Size())
				}
			}
		})
	}
}

// TestDynFuzzHeuristicQuality is oracle check (c): heuristic-only
// sessions must still meet the paper's quality bounds on the mutated
// graph. The bounds are statistical (means over seeds, like the static
// quality gates), so the check averages end-of-trace quality over a
// seed sweep on total-support families and compares against the static
// thresholds with mutation slack: the mutated instances are small, and
// targeted repair is allowed to trail a fresh heuristic run only
// marginally.
func TestDynFuzzHeuristicQuality(t *testing.T) {
	seeds := 12
	batches := 40
	if testing.Short() {
		seeds, batches = 6, 25
	}
	families := []struct {
		name string
		make func(seed uint64) *Graph
	}{
		{"fullyindecomposable", func(seed uint64) *Graph { return FullyIndecomposable(300, 2, seed) }},
		{"er", func(seed uint64) *Graph { return RandomER(300, 300, 5, seed) }},
		{"grid2d", func(seed uint64) *Graph { return Grid2D(17, 17) }},
	}
	specs := []struct {
		name      string
		spec      Spec
		threshold float64
	}{
		{"twosided", Spec{Algorithm: AlgTwoSided}, 0.86 * (1 - 0.03)},
		{"onesided", Spec{Algorithm: AlgOneSided}, OneSidedGuarantee(1) - 0.03},
	}
	for _, sp := range specs {
		sp := sp
		t.Run(sp.name, func(t *testing.T) {
			t.Parallel()
			for _, fam := range families {
				qsum := 0.0
				for s := 1; s <= seeds; s++ {
					g := fam.make(uint64(s))
					sess, err := g.NewDynSession(sp.spec, &Options{Seed: uint64(s)})
					if err != nil {
						t.Fatal(err)
					}
					rng := rand.New(rand.NewSource(int64(900*s + 7)))
					mirror := newDynMirror(g)
					for b := 0; b < batches; b++ {
						inserts, deletes := dynFuzzBatch(rng, mirror, g.Rows(), g.Cols(), b)
						mirror.apply(inserts, deletes)
						if _, err := sess.Apply(inserts, deletes); err != nil {
							t.Fatal(err)
						}
					}
					snap := sess.Snapshot()
					if err := snap.ValidateMatching(sess.Matching()); err != nil {
						t.Fatal(err)
					}
					qsum += snap.Quality(sess.Matching())
				}
				mean := qsum / float64(seeds)
				t.Logf("%s %s: mean maintained quality %.4f over %d seeds × %d batches (threshold %.4f)",
					sp.name, fam.name, mean, seeds, batches, sp.threshold)
				if mean < sp.threshold {
					t.Errorf("%s on mutated %s: mean maintained quality %.4f below %.4f",
						sp.name, fam.name, mean, sp.threshold)
				}
			}
		})
	}
}
