package bipartite

import (
	"testing"
)

// The quality-guarantee suite: statistical tests asserting the paper's
// bounds on seeded random and structured graphs. OneSidedMatch guarantees
// an expected cardinality of at least (1−1/e)·sprank on matrices with
// total support (§3.3), and TwoSidedMatch is conjectured (and
// experimentally confirmed, Tables 1–2) to reach 2(1−ρ) ≈ 0.866·sprank.
// The assertions run on the mean over qualitySeeds seeds with a small
// slack: the guarantees are on expectations, and the slack covers both
// finite-n effects (the complete graph sits exactly at the bound only as
// n→∞) and the sampling error of the mean. The tight case — Complete,
// where OneSided's expectation is n(1−(1−1/n)^n) → (1−1/e)·n exactly —
// keeps the thresholds honest: a regression that cost even one percent of
// quality there would trip the suite.

// qualitySeeds returns the seed count: 20 in -short mode (the CI gate the
// acceptance criteria name), more otherwise for extra statistical power.
func qualitySeeds() int {
	if testing.Short() {
		return 20
	}
	return 40
}

// qualityGraphs are full-sprank instances spanning the paper's workload
// families: a fully indecomposable random matrix (total support by
// construction, §4.1.1), the complete bipartite graph (the tight case of
// Conjecture 1), a structured mesh, and a seeded Erdős–Rényi matrix.
func qualityGraphs() []struct {
	name string
	g    *Graph
} {
	return []struct {
		name string
		g    *Graph
	}{
		{"fullyindecomposable-1500", FullyIndecomposable(1500, 2, 7)},
		{"complete-400", Complete(400)},
		{"grid2d-40x40", Grid2D(40, 40)},
		{"er-2000-deg6", RandomER(2000, 2000, 6, 11)},
	}
}

// meanQuality runs op over the seed range on one warm Matcher and returns
// mean(size)/sprank along with the worst single seed.
func meanQuality(t *testing.T, g *Graph, op Op, seeds int) (mean, worst float64) {
	t.Helper()
	sprank := g.Sprank()
	m := g.NewMatcher(&Options{ScalingIterations: 5})
	sum, worstSize := 0, g.Rows()+1
	for s := 1; s <= seeds; s++ {
		var size int
		switch op {
		case OpOneSided:
			res, err := m.OneSided(uint64(s))
			if err != nil {
				t.Fatalf("OneSided seed %d: %v", s, err)
			}
			size = res.Matching.Size
		case OpTwoSided:
			res, err := m.TwoSided(uint64(s))
			if err != nil {
				t.Fatalf("TwoSided seed %d: %v", s, err)
			}
			size = res.Matching.Size
		default:
			mt, _ := m.KarpSipser(uint64(s))
			size = mt.Size
		}
		sum += size
		if size < worstSize {
			worstSize = size
		}
	}
	return float64(sum) / float64(seeds) / float64(sprank), float64(worstSize) / float64(sprank)
}

// TestQualityOneSidedGuarantee: mean OneSided cardinality over the seed
// sweep must reach the paper's (1−1/e)·sprank bound, within 2% slack for
// finite n and sampling error.
func TestQualityOneSidedGuarantee(t *testing.T) {
	seeds := qualitySeeds()
	bound := OneSidedGuarantee(1) // 1 − 1/e ≈ 0.6321
	threshold := bound - 0.02
	for _, tc := range qualityGraphs() {
		t.Run(tc.name, func(t *testing.T) {
			mean, worst := meanQuality(t, tc.g, OpOneSided, seeds)
			t.Logf("onesided %s: mean %.4f worst %.4f (bound %.4f, %d seeds)",
				tc.name, mean, worst, bound, seeds)
			if mean < threshold {
				t.Errorf("mean quality %.4f below %.4f (= (1-1/e) - slack) on %s",
					mean, threshold, tc.name)
			}
		})
	}
}

// TestQualityTwoSidedConjecture: mean TwoSided cardinality must reach the
// conjectured 2(1−ρ) ≈ 0.866·sprank, within slack — the complete graph is
// the asymptotically tight case and sits just below the limit at finite n
// (measured ≈ 0.863 at n = 400).
func TestQualityTwoSidedConjecture(t *testing.T) {
	seeds := qualitySeeds()
	bound := TwoSidedConjecture() // ≈ 0.8661
	threshold := 0.86 * (1 - 0.012)
	for _, tc := range qualityGraphs() {
		t.Run(tc.name, func(t *testing.T) {
			mean, worst := meanQuality(t, tc.g, OpTwoSided, seeds)
			t.Logf("twosided %s: mean %.4f worst %.4f (conjecture %.4f, %d seeds)",
				tc.name, mean, worst, bound, seeds)
			if mean < threshold {
				t.Errorf("mean quality %.4f below %.4f (= 0.86 - slack) on %s",
					mean, threshold, tc.name)
			}
		})
	}
}

// TestQualityKarpSipserExactOnDegreeTwoFamilies: on graphs whose vertices
// all have degree ≤ 2 Karp–Sipser is exact — the degree-one rule unravels
// paths optimally, and after any random pick a cycle degenerates into a
// path — so every seed must produce a maximum matching. This pins the
// degree-one propagation: a Karp–Sipser that forgot to re-enqueue newly
// arising degree-one vertices would drop edges on every one of these.
func TestQualityKarpSipserExactOnDegreeTwoFamilies(t *testing.T) {
	seeds := qualitySeeds()
	cycle := func(n int) *Graph {
		edges := make([][2]int, 0, 2*n)
		for i := 0; i < n; i++ {
			edges = append(edges, [2]int{i, i}, [2]int{i, (i + 1) % n})
		}
		g, err := FromEdges(n, n, edges)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	families := []struct {
		name string
		g    *Graph
	}{
		{"diagonal-500", Banded(500, 0)},          // degree 1 everywhere
		{"path-500", Banded(500, 0, 1)},           // chain: one endpoint of degree 1
		{"cycle-500", cycle(500)},                 // degree 2 everywhere
		{"cycle-501", cycle(501)},                 // odd cycle length (still perfect)
		{"two-diagonals-400", Banded(400, -1, 1)}, // union of two chains
	}
	for _, tc := range families {
		t.Run(tc.name, func(t *testing.T) {
			sprank := tc.g.Sprank()
			for s := 1; s <= seeds; s++ {
				mt, _ := tc.g.KarpSipser(uint64(s))
				if err := tc.g.ValidateMatching(mt); err != nil {
					t.Fatalf("seed %d: %v", s, err)
				}
				if mt.Size != sprank {
					t.Fatalf("seed %d: Karp–Sipser found %d, maximum is %d — not exact on %s",
						s, mt.Size, sprank, tc.name)
				}
			}
		})
	}
}

// TestQualityServedResponsesMatchGuarantee closes the loop with the
// serving stack: the same quality statistics hold for responses produced
// by the batching Server (shared scaling, warm arenas), not just direct
// Matcher calls — the serving path must not cost quality.
func TestQualityServedResponsesMatchGuarantee(t *testing.T) {
	seeds := qualitySeeds()
	g := FullyIndecomposable(1200, 2, 3)
	sprank := g.Sprank()
	srv := NewServer(&Options{ScalingIterations: 5}, 64)
	defer srv.Close()
	reqs := make([]Request, seeds)
	for s := range reqs {
		reqs[s] = Request{Graph: g, Op: OpTwoSided, Seed: uint64(s + 1)}
	}
	sum := 0
	for i, resp := range srv.MatchBatch(reqs) {
		if resp.Err != nil {
			t.Fatalf("request %d: %v", i, resp.Err)
		}
		sum += resp.Matching.Size
	}
	mean := float64(sum) / float64(seeds) / float64(sprank)
	t.Logf("served twosided: mean %.4f over %d seeds", mean, seeds)
	if mean < 0.85 {
		t.Fatalf("served mean quality %.4f below 0.85", mean)
	}
}
