package bipartite

import (
	"fmt"
	"math"

	"repro/internal/auction"
	"repro/internal/par"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// This file is the weighted-matching surface of the package: weighted
// graph construction, the weight accessors with their pattern-graph
// fallback, and the Matcher's AlgAuction execution path (single runs and
// best-of-K ensembles over bidding seeds sharing one price warm-start).

// NewWeightedGraph builds a graph from raw CSR components plus a parallel
// value array: val[p] is the weight of the p-th stored edge and must have
// one entry per edge. Weights must be strictly positive and finite for
// the auction's (1−ε) guarantee; they are validated here rather than at
// match time so a bad instance fails fast.
func NewWeightedGraph(rows, cols int, ptr []int, idx []int32, val []float64) (*Graph, error) {
	if val == nil {
		return NewGraph(rows, cols, ptr, idx)
	}
	a, err := sparse.New(rows, cols, ptr, idx, val)
	if err != nil {
		return nil, err
	}
	if !a.HasSortedRows() {
		a.SortRows()
	}
	if _, err := auction.Validate(a); err != nil {
		return nil, err
	}
	return newGraph(a), nil
}

// FromWeightedEdges builds a weighted graph from an edge list with one
// weight per edge; duplicate edges are merged keeping the last weight.
func FromWeightedEdges(rows, cols int, edges [][2]int, weights []float64) (*Graph, error) {
	if len(weights) != len(edges) {
		return nil, fmt.Errorf("bipartite: %d weights for %d edges", len(weights), len(edges))
	}
	coords := make([]sparse.Coord, len(edges))
	for k, e := range edges {
		if e[0] < 0 || e[0] >= rows || e[1] < 0 || e[1] >= cols {
			return nil, fmt.Errorf("bipartite: edge (%d,%d) outside %dx%d", e[0], e[1], rows, cols)
		}
		coords[k] = sparse.Coord{I: int32(e[0]), J: int32(e[1]), V: weights[k]}
	}
	a, err := sparse.FromCOO(rows, cols, coords, true)
	if err != nil {
		return nil, err
	}
	if _, err := auction.Validate(a); err != nil {
		return nil, err
	}
	return newGraph(a), nil
}

// Weighted reports whether the graph carries edge weights. Pattern
// graphs still work with AlgAuction — every edge counts 1.0, making the
// matched weight equal the cardinality.
func (g *Graph) Weighted() bool { return g.a.Val != nil }

// Weights returns the edge weights in CSR edge order (aligned with the
// idx array of CSR()), or nil for a pattern graph. The slice is the
// graph's own storage: treat it as read-only, like the CSR components.
func (g *Graph) Weights() []float64 { return g.a.Val }

// MatchedWeight sums the weights of the matched edges of mt: the
// objective AlgAuction maximizes. On a pattern graph every edge counts
// 1.0, so the result equals mt.Size.
func (g *Graph) MatchedWeight(mt *Matching) float64 {
	if g.a.Val == nil {
		return float64(mt.Size)
	}
	return auction.MatchedWeight(g.a, mt)
}

// WeightDist selects a synthetic edge-weight distribution for
// RandomWeights.
type WeightDist int

const (
	// WeightUniform draws weights uniformly from (0, 1].
	WeightUniform WeightDist = iota
	// WeightSkewed draws heavy-tailed Pareto(1, 1.5) weights: most edges
	// near 1, a few dominating the objective — the adversarial regime for
	// auction price dynamics.
	WeightSkewed
)

// ParseWeightDist converts a flag name into a WeightDist. The empty
// string means WeightUniform.
func ParseWeightDist(s string) (WeightDist, error) {
	switch s {
	case "uniform", "":
		return WeightUniform, nil
	case "skew", "skewed":
		return WeightSkewed, nil
	default:
		return 0, fmt.Errorf("bipartite: unknown weight distribution %q", s)
	}
}

// RandomWeights returns a new graph sharing this graph's pattern with
// seeded synthetic edge weights drawn from dist. Each edge's weight comes
// from its own indexed RNG stream, so the assignment is deterministic in
// (seed, edge position) regardless of how the pattern was built.
func (g *Graph) RandomWeights(dist WeightDist, seed uint64) *Graph {
	a := g.a
	val := make([]float64, len(a.Idx))
	base := xrand.Base(seed)
	var rng xrand.SplitMix64
	for p := range val {
		rng.SetIndexed(base, p)
		u := 1 - rng.Float64() // uniform in (0, 1]
		if dist == WeightSkewed {
			// Pareto(1, 1.5) by inversion; u is bounded away from 0 by the
			// 53-bit mantissa, so the draw stays finite.
			val[p] = 1 / math.Cbrt(u*u)
		} else {
			val[p] = u
		}
	}
	b := &sparse.CSR{RowsN: a.RowsN, ColsN: a.ColsN, Ptr: a.Ptr, Idx: a.Idx, Val: val}
	return newGraph(b)
}

// aucWorkspace returns the session's auction workspace, creating it on
// first use.
func (m *Matcher) aucWorkspace() *auction.Workspace {
	if m.aucWs == nil {
		m.aucWs = &auction.Workspace{}
	}
	return m.aucWs
}

// runAuction executes an AlgAuction Spec: the ε-scaling auction on the
// bound graph, as a single run or a best-of-K ensemble over bidding
// seeds. Ensembles share one deterministic warm-start — Prepare's coarse
// scaling phases and final-phase normalization run once — and each
// candidate finishes from a clone of it with its own seed; the winner is
// the heaviest matching, ties broken toward the smallest seed. Candidates
// fan out across the session pool (each at width 1) unless
// Spec.Sequential is set; every candidate always runs, so the winner is
// bit-identical at any pool width.
func (m *Matcher) runAuction(spec Spec) (*MatchResult, error) {
	eps := spec.Epsilon
	if eps == 0 {
		eps = DefaultEpsilon
	}
	a, at := m.g.a, m.g.transpose()
	base := m.seed(spec.Seed)
	pool, width := m.refineWidth()
	ws := m.aucWorkspace()
	if m.cancel != nil && m.cancel() {
		return nil, ErrCanceled
	}

	popt := auction.Options{Epsilon: eps, Workers: width, Pool: pool}
	k := spec.Ensemble
	if k < 1 {
		k = 1
	}
	// A seed sub-range restricts the ensemble to candidates
	// [SeedOffset, SeedOffset+SeedCount) of the interval — the cluster
	// fan-out primitive. The warm start is a pure function of the graph
	// (Prepare is seed-free), so every replica's slice finishes from the
	// identical prices and the heaviest-weight/smallest-seed reduction
	// across slices equals the single-process sweep.
	if spec.SeedCount > 0 {
		base += uint64(spec.SeedOffset)
		k = spec.SeedCount
	}
	st, epsAbs, err := auction.Prepare(a, at, popt, ws)
	if err != nil {
		return nil, err
	}
	if k == 1 && spec.Ensemble <= 1 {
		res, err := auction.Finish(a, at, popt, base, epsAbs, st, ws)
		if err != nil {
			return nil, err
		}
		return m.auctionResult(res, base, 1, eps), nil
	}

	// Ensemble: candidates finish independently from clones of the shared
	// warm state, each serially (width 1) on its own workspace, so the
	// per-candidate results are pure functions of (warm state, seed).
	copt := auction.Options{Epsilon: eps, Workers: 1}
	results := make([]auction.Result, k)
	errs := make([]error, k)
	if spec.Sequential || width <= 1 {
		for c := 0; c < k; c++ {
			if m.cancel != nil && m.cancel() {
				return nil, ErrCanceled
			}
			cw := &auction.Workspace{}
			results[c], errs[c] = auction.Finish(a, at, copt, base+uint64(c), epsAbs, st.Clone(), cw)
		}
	} else {
		cancel := m.cancel
		if cancel == nil {
			cancel = func() bool { return false }
		}
		pool.ForCancel(k, width, par.Dynamic, 1, cancel, func(_, lo, hi int) {
			cw := &auction.Workspace{}
			for c := lo; c < hi; c++ {
				results[c], errs[c] = auction.Finish(a, at, copt, base+uint64(c), epsAbs, st.Clone(), cw)
			}
		})
		if m.cancel != nil && m.cancel() {
			return nil, ErrCanceled
		}
	}
	best := -1
	for c := 0; c < k; c++ {
		if errs[c] != nil {
			return nil, errs[c]
		}
		if best < 0 || results[c].Weight > results[best].Weight {
			best = c
		}
	}
	return m.auctionResult(results[best], base+uint64(best), k, eps), nil
}

// auctionResult fills the session result header from one finished
// auction.
func (m *Matcher) auctionResult(res auction.Result, winner uint64, consumed int, eps float64) *MatchResult {
	m.result = MatchResult{
		Matching:      res.Matching,
		Candidates:    consumed,
		WinnerSeed:    winner,
		HeuristicSize: res.Matching.Size,
		MatchedWeight: res.Weight,
		Epsilon:       eps,
		Rounds:        res.Rounds,
		DualBound:     res.DualBound,
	}
	return &m.result
}

// OptimalMatchedWeight computes the exact maximum matched weight by a
// dense O(N³) Hungarian solve — the oracle behind the auction's quality
// gates. Practical only for small instances (N ≤ 2048); larger graphs
// return an error. For a cheap certified bound on any size, compare
// MatchedWeight against the auction's (1−ε) contract instead.
func (g *Graph) OptimalMatchedWeight() (float64, *Matching, error) {
	return auction.Oracle(g.a)
}
