// Benchmarks regenerating the kernels behind every table and figure of the
// paper's evaluation. Each benchmark is named after the experiment it
// backs (see DESIGN.md §5); the full reports are produced by
// cmd/matchbench, these benchmarks measure the kernels with testing.B and
// record quality via b.ReportMetric where it is the point of the table.
//
// Run with: go test -bench=. -benchmem
package bipartite

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/cheap"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/ks"
	"repro/internal/par"
	"repro/internal/scale"
	"repro/internal/sparse"
)

func coreOpts(workers int) core.Options {
	return core.Options{Workers: workers, Policy: par.Dynamic, KSPolicy: par.Guided, Seed: 1}
}

func mustScale(b *testing.B, a, at *sparse.CSR, iters, workers int) *scale.Result {
	b.Helper()
	res, err := scale.SinkhornKnopp(a, at, scale.Options{MaxIters: iters, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// --- §4.1.1 quality study ---------------------------------------------------

func BenchmarkQualityFI(b *testing.B) {
	a := gen.FullyIndecomposable(20000, 2, 1)
	at := a.Transpose()
	res := mustScale(b, a, at, 10, 0)
	for _, side := range []string{"OneSided", "TwoSided"} {
		b.Run(side, func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				o := coreOpts(0)
				o.Seed = uint64(i) + 1
				if side == "OneSided" {
					_, size = core.OneSided(a, res.DR, res.DC, o)
				} else {
					size = core.TwoSided(a, at, res.DR, res.DC, o).Matching.Size
				}
			}
			b.ReportMetric(float64(size)/float64(a.RowsN), "quality")
		})
	}
}

// --- Table 1 -----------------------------------------------------------------

func BenchmarkTable1(b *testing.B) {
	a := gen.BadKS(3200, 32)
	at := a.Transpose()
	b.Run("KarpSipserBaseline", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			mt, _ := ks.Run(a, at, uint64(i)+1)
			size = mt.Size
		}
		b.ReportMetric(float64(size)/3200.0, "quality")
	})
	res := mustScale(b, a, at, 10, 0)
	b.Run("TwoSidedScaled10", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			o := coreOpts(0)
			o.Seed = uint64(i) + 1
			size = core.TwoSided(a, at, res.DR, res.DC, o).Matching.Size
		}
		b.ReportMetric(float64(size)/3200.0, "quality")
	})
}

// --- Table 2 -----------------------------------------------------------------

func BenchmarkTable2(b *testing.B) {
	for _, d := range []int{2, 5} {
		a := gen.ERAvgDeg(50000, 50000, float64(d), uint64(d))
		at := a.Transpose()
		sp := exact.HopcroftKarp(a, nil).Size
		res := mustScale(b, a, at, 5, 0)
		b.Run(fmt.Sprintf("OneSided/d=%d", d), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				o := coreOpts(0)
				o.Seed = uint64(i) + 1
				_, size = core.OneSided(a, res.DR, res.DC, o)
			}
			b.ReportMetric(float64(size)/float64(sp), "quality")
		})
		b.Run(fmt.Sprintf("TwoSided/d=%d", d), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				o := coreOpts(0)
				o.Seed = uint64(i) + 1
				size = core.TwoSided(a, at, res.DR, res.DC, o).Matching.Size
			}
			b.ReportMetric(float64(size)/float64(sp), "quality")
		})
	}
}

// --- Table 3 -----------------------------------------------------------------

// BenchmarkTable3 measures the four sequential kernels on every catalog
// instance (tiny scale so the whole suite stays fast; cmd/matchbench -exp
// table3 runs the full-size version).
func BenchmarkTable3(b *testing.B) {
	for _, inst := range bench.Catalog("tiny") {
		a := inst.Build()
		at := a.Transpose()
		res := mustScale(b, a, at, 1, 1)
		g := func() *core.ChoiceGraph {
			r := core.SampleRowChoices(a, res.DR, res.DC, coreOpts(1))
			c := core.SampleColChoices(at, res.DR, res.DC, coreOpts(1))
			return core.NewChoiceGraph(a.RowsN, a.ColsN, r, c)
		}()
		b.Run("ScaleSK/"+inst.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustScale(b, a, at, 1, 1)
			}
		})
		b.Run("OneSided/"+inst.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := mustScale(b, a, at, 1, 1)
				core.OneSided(a, r.DR, r.DC, coreOpts(1))
			}
		})
		b.Run("KarpSipserMT/"+inst.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.KarpSipserMT(g, coreOpts(1))
			}
		})
		b.Run("TwoSided/"+inst.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := mustScale(b, a, at, 1, 1)
				core.TwoSided(a, at, r.DR, r.DC, coreOpts(1))
			}
		})
	}
}

// --- Figures 3a/3b: thread sweeps for ScaleSK and OneSidedMatch -------------

func fig34Instance() (*sparse.CSR, *sparse.CSR) {
	a := gen.ERAvgDeg(400000, 400000, 8, 3)
	return a, a.Transpose()
}

func BenchmarkFig3aScaleSK(b *testing.B) {
	a, at := fig34Instance()
	for _, w := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("threads=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustScale(b, a, at, 1, w)
			}
		})
	}
}

func BenchmarkFig3bOneSided(b *testing.B) {
	a, at := fig34Instance()
	res := mustScale(b, a, at, 1, 0)
	for _, w := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("threads=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.OneSided(a, res.DR, res.DC, coreOpts(w))
			}
		})
	}
}

// --- Figures 4a/4b: thread sweeps for KarpSipserMT and TwoSidedMatch --------

func BenchmarkFig4aKarpSipserMT(b *testing.B) {
	a, at := fig34Instance()
	res := mustScale(b, a, at, 1, 0)
	r := core.SampleRowChoices(a, res.DR, res.DC, coreOpts(0))
	c := core.SampleColChoices(at, res.DR, res.DC, coreOpts(0))
	g := core.NewChoiceGraph(a.RowsN, a.ColsN, r, c)
	for _, w := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("threads=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.KarpSipserMT(g, coreOpts(w))
			}
		})
	}
}

func BenchmarkFig4bTwoSided(b *testing.B) {
	a, at := fig34Instance()
	res := mustScale(b, a, at, 1, 0)
	for _, w := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("threads=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.TwoSided(a, at, res.DR, res.DC, coreOpts(w))
			}
		})
	}
}

// --- Figure 5: quality vs scaling iterations ---------------------------------

func BenchmarkFig5Quality(b *testing.B) {
	a := gen.ERAvgDeg(100000, 100000, 4, 7)
	at := a.Transpose()
	sp := exact.HopcroftKarp(a, nil).Size
	for _, iters := range []int{0, 1, 5} {
		res := mustScale(b, a, at, iters, 0)
		b.Run(fmt.Sprintf("TwoSided/iters=%d", iters), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				o := coreOpts(0)
				o.Seed = uint64(i) + 1
				size = core.TwoSided(a, at, res.DR, res.DC, o).Matching.Size
			}
			b.ReportMetric(float64(size)/float64(sp), "quality")
		})
	}
}

// --- Conjecture 1 -------------------------------------------------------------

func BenchmarkConjecture(b *testing.B) {
	a := gen.Full(4000)
	at := a.Transpose()
	res := mustScale(b, a, at, 1, 0)
	var size int
	for i := 0; i < b.N; i++ {
		o := coreOpts(0)
		o.Seed = uint64(i) + 1
		size = core.TwoSided(a, at, res.DR, res.DC, o).Matching.Size
	}
	b.ReportMetric(float64(size)/4000.0, "quality")
	b.ReportMetric(bench.ConjectureTarget(), "target")
}

// --- Ablations ----------------------------------------------------------------

func BenchmarkAblationScaling(b *testing.B) {
	a := gen.FullyIndecomposable(100000, 3, 1)
	at := a.Transpose()
	b.Run("SinkhornKnopp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustScale(b, a, at, 5, 0)
		}
	})
	b.Run("Ruiz", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := scale.Ruiz(a, at, scale.Options{MaxIters: 5}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationSkewAwareScaling(b *testing.B) {
	// The §2.2 remark: split heavy rows across threads. Compare on a
	// matrix with one full row (the BadKS family has full rows/columns;
	// n=6400 keeps the dense R1×C1 block at ~10M entries).
	a := gen.BadKS(6400, 4)
	at := a.Transpose()
	b.Run("standard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustScale(b, a, at, 2, 0)
		}
	})
	b.Run("skew-aware", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := scale.SinkhornKnoppSkewAware(a, at, scale.Options{MaxIters: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationKSVariants(b *testing.B) {
	a := gen.ERAvgDeg(100000, 100000, 3, 5)
	at := a.Transpose()
	b.Run("ExactSequentialKS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ks.Run(a, at, uint64(i)+1)
		}
	})
	b.Run("ParallelApproxKS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ks.RunApprox(a, at, uint64(i)+1, 0)
		}
	})
}

func BenchmarkAblationSchedule(b *testing.B) {
	a := gen.PowerLaw(60000, 15, 1.35, 30000, 1)
	at := a.Transpose()
	res := mustScale(b, a, at, 1, 0)
	for _, pol := range []par.Policy{par.Static, par.Dynamic, par.Guided} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.OneSided(a, res.DR, res.DC, core.Options{
					Policy: pol, KSPolicy: pol, Seed: 1})
			}
		})
	}
}

// --- Supporting algorithms (baselines used across experiments) ---------------

func BenchmarkExactSolvers(b *testing.B) {
	a := gen.ERAvgDeg(100000, 100000, 4, 9)
	b.Run("HopcroftKarp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exact.HopcroftKarp(a, nil)
		}
	})
	b.Run("MC21", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exact.MC21(a, nil)
		}
	})
	at := a.Transpose()
	res := mustScale(b, a, at, 5, 0)
	b.Run("MC21WarmStarted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o := coreOpts(0)
			two := core.TwoSided(a, at, res.DR, res.DC, o)
			exact.MC21(a, two.Matching)
		}
	})
}

// --- Extensions (paper future work / ref [31]) -------------------------------

func BenchmarkExtensionUndirected(b *testing.B) {
	g := RandomUndirected(200000, 6, 7)
	var size int
	for i := 0; i < b.N; i++ {
		res := g.Match(&Options{ScalingIterations: 3, Seed: uint64(i) + 1})
		size = res.Size
	}
	b.ReportMetric(2*float64(size)/float64(g.Vertices()), "matched-frac")
}

func BenchmarkExtensionWalkupKOut(b *testing.B) {
	for _, k := range []int{1, 2} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				a := gen.KOut(8000, k, uint64(i)+1)
				frac = float64(exact.Sprank(a)) / 8000.0
			}
			b.ReportMetric(frac, "sprank-frac")
		})
	}
}

func BenchmarkBaselineHeuristics(b *testing.B) {
	a := gen.ERAvgDeg(100000, 100000, 4, 9)
	at := a.Transpose()
	b.Run("ClassicKarpSipser", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ks.Run(a, at, uint64(i)+1)
		}
	})
	b.Run("CheapRandomEdge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cheap.RandomEdge(a, uint64(i)+1)
		}
	})
	b.Run("CheapRandomVertex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cheap.RandomVertex(a, uint64(i)+1)
		}
	})
}
