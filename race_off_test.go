//go:build !race

package bipartite

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
