package bipartite

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dyngraph"
)

// ErrInvalidMutation reports a mutation batch that names an out-of-range
// vertex; the batch is rejected whole — no prefix of it is applied —
// and cmd/matchserve maps the error to HTTP 400.
var ErrInvalidMutation = errors.New("bipartite: invalid mutation")

// dynTouchUpIters is how many restricted Sinkhorn–Knopp iterations a
// dirty batch's scaling touch-up runs: the row/col sweeps are applied
// only to the rows and columns the batch touched, on the warm vectors.
// Two iterations propagate a local edit to its immediate neighborhood,
// which is what keeps sampling quality near the fresh scaling without
// paying full sweeps per batch.
const dynTouchUpIters = 2

// DynSession is a mutable graph session that maintains its matching
// incrementally under batched edge mutations — the online form of a
// Matcher. Where a Matcher binds an immutable Graph and answers
// repeated matching requests, a DynSession absorbs Apply(inserts,
// deletes) batches and repairs the matching it holds instead of
// recomputing it:
//
//   - A deleted matched edge un-matches its pair and the repair
//     re-augments from the freed endpoints.
//   - An inserted edge triggers augmentation only when it touches an
//     exposed vertex — an insertion between two matched vertices cannot
//     grow the matching (exact sessions still verify maximality).
//   - Exact sessions (Spec.Refine set) complete the repair with
//     warm-started Hopcroft–Karp phases over the mutable adjacency, so
//     the maintained size equals the mutated graph's sprank after every
//     batch. Heuristic sessions (Refine: None) stop at the targeted
//     repair and keep the heuristic's quality profile.
//   - The Sinkhorn–Knopp scaling stays warm: each dirty batch runs a few
//     touch-up iterations restricted to the rows/columns it touched
//     (DynResult.Rescaled reports when that happened).
//
// Determinism contract: a DynSession executes every internal kernel at
// parallel width 1 — repair is inherently small sequential work per
// batch — so the maintained matching is a pure function of (initial
// graph, Spec, Options.Seed, mutation trace), bit-identical whatever
// pool or worker count the Options carry. The differential fuzz suite
// gates this at pool widths 1/2/4.
//
// A DynSession is not safe for concurrent use; the serving layer
// serializes PATCH batches per graph. Results returned by Matching
// alias the session and are valid until the next Apply.
type DynSession struct {
	spec Spec
	opt  Options // normalized; internal kernels run at width 1

	exact bool // Spec.Refine != RefineNone: maintain size == sprank

	dg  *dyngraph.Graph
	rep *dyngraph.Repairer
	mt  *Matching

	// Warm scaling vectors (nil/false when the Spec's algorithm does not
	// scale); touched up on dirty rows/cols per batch.
	dr, dc []float64
	scaled bool

	// snap is the cached immutable snapshot of the current adjacency;
	// nil when stale. Matching-neutral batches (nothing applied) keep
	// the previous snapshot pointer, which is what lets serving layers
	// key shared-scaling caches on snapshot identity.
	snap *Graph

	// Scratch for batch repair (reused across Apply calls).
	seedRows, seedCols []int32
	dirtyRows          []int32
	dirtyCols          []int32
	dirtyRowMark       []bool
	dirtyColMark       []bool

	stats DynStats
}

// DynStats accumulates a session's lifetime counters.
type DynStats struct {
	// Batches is the number of Apply calls, including no-op batches.
	Batches int
	// Inserted and Deleted count mutations actually applied (duplicate
	// inserts and absent deletes are skipped, not counted).
	Inserted, Deleted int
	// Freed counts matched pairs broken by deletions.
	Freed int
	// Augments counts augmenting paths applied during repair.
	Augments int
	// Rescales counts scaling touch-up runs (at most one per dirty batch).
	Rescales int
}

// DynResult is the outcome of one Apply batch — the repair provenance
// cmd/matchserve puts on the wire.
type DynResult struct {
	// Inserted and Deleted are the mutations actually applied: inserts
	// of present edges and deletes of absent edges are no-ops.
	Inserted, Deleted int
	// Freed is the number of matched pairs the deletions broke.
	Freed int
	// Augments is the number of augmenting paths the repair applied.
	Augments int
	// Rescaled reports whether the scaling touch-up ran (a scaling
	// session with at least one applied mutation).
	Rescaled bool
	// MaintainedSize is the matching cardinality after repair. For exact
	// sessions it equals the mutated graph's sprank.
	MaintainedSize int
}

// NewDynSession opens a dynamic session on g: the Spec is run once (at
// parallel width 1) to establish the initial matching — refined Specs
// start from a maximum matching and stay exact under mutation — and the
// graph is copied into the session's mutable adjacency. opt follows the
// usual defaulting rules; pool and worker settings are ignored (see the
// determinism contract). g itself is the session's initial Snapshot and
// is never mutated.
func (g *Graph) NewDynSession(spec Spec, opt *Options) (*DynSession, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	v := opt.normalized()
	v.Workers = 1
	v.Pool = nil
	res, err := g.Match(spec, &v)
	if err != nil {
		return nil, err
	}
	s := &DynSession{
		spec:         spec,
		opt:          v,
		exact:        spec.Refine != RefineNone,
		dg:           dyngraph.FromCSR(g.a),
		mt:           cloneMatching(res.Matching),
		snap:         g,
		dirtyRowMark: make([]bool, g.Rows()),
		dirtyColMark: make([]bool, g.Cols()),
	}
	s.rep = dyngraph.NewRepairer(s.dg)
	if sc := res.Scaling; sc != nil && len(sc.DR) == g.Rows() && len(sc.DC) == g.Cols() {
		s.dr = append([]float64(nil), sc.DR...)
		s.dc = append([]float64(nil), sc.DC...)
		s.scaled = true
	}
	return s, nil
}

// Dyn opens a dynamic session on the Matcher's graph under the
// Matcher's options; see Graph.NewDynSession. The Matcher itself is not
// retained — the session owns an independent mutable copy.
func (m *Matcher) Dyn(spec Spec) (*DynSession, error) {
	return m.g.NewDynSession(spec, &m.opt)
}

// Rows returns the session's row-vertex count (fixed at creation;
// vertex arrival/departure is expressed as its edge set).
func (s *DynSession) Rows() int { return s.dg.Rows() }

// Cols returns the session's column-vertex count.
func (s *DynSession) Cols() int { return s.dg.Cols() }

// Edges returns the current edge count.
func (s *DynSession) Edges() int { return s.dg.Edges() }

// Size returns the maintained matching's cardinality.
func (s *DynSession) Size() int { return s.mt.Size }

// Exact reports whether the session maintains an exact maximum matching
// (the Spec carried a refinement) or the heuristic's quality profile.
func (s *DynSession) Exact() bool { return s.exact }

// Matching returns the maintained matching. It aliases the session —
// valid until the next Apply; callers that retain it must copy.
func (s *DynSession) Matching() *Matching { return s.mt }

// Stats returns the session's lifetime counters.
func (s *DynSession) Stats() DynStats { return s.stats }

// HasEdge reports whether edge (i, j) is currently present.
func (s *DynSession) HasEdge(i, j int) bool {
	return i >= 0 && i < s.dg.Rows() && j >= 0 && j < s.dg.Cols() && s.dg.Has(i, j)
}

// Snapshot returns an immutable Graph of the current adjacency, for the
// one-shot/serving paths (oracle checks, registered-graph matching).
// The snapshot is cached: it is rebuilt (O(rows+edges)) only after a
// batch that actually changed the graph, so matching-neutral batches
// return the identical *Graph — serving layers use that pointer
// identity to decide whether shared-scaling caches keyed on the old
// snapshot must be invalidated.
func (s *DynSession) Snapshot() *Graph {
	if s.snap == nil {
		s.snap = newGraph(s.dg.CSR())
	}
	return s.snap
}

// Apply absorbs one mutation batch: deletions first, then insertions,
// then matching repair, then the scaling touch-up. The batch is
// validated whole before any mutation is applied — an out-of-range
// vertex rejects it with ErrInvalidMutation and the session is
// unchanged. Duplicate edges inside the batch and mutations that do not
// change the graph (inserting a present edge, deleting an absent one)
// are no-ops, reported through the applied counts.
func (s *DynSession) Apply(inserts, deletes [][2]int) (*DynResult, error) {
	n, m := s.dg.Rows(), s.dg.Cols()
	for _, e := range deletes {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= m {
			return nil, fmt.Errorf("%w: delete (%d,%d) outside %dx%d", ErrInvalidMutation, e[0], e[1], n, m)
		}
	}
	for _, e := range inserts {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= m {
			return nil, fmt.Errorf("%w: insert (%d,%d) outside %dx%d", ErrInvalidMutation, e[0], e[1], n, m)
		}
	}
	var res DynResult
	s.seedRows = s.seedRows[:0]
	s.seedCols = s.seedCols[:0]
	s.dirtyRows = s.dirtyRows[:0]
	s.dirtyCols = s.dirtyCols[:0]

	for _, e := range deletes {
		i, j := e[0], e[1]
		if !s.dg.Delete(i, j) {
			continue
		}
		res.Deleted++
		s.markDirty(i, j)
		if s.mt.RowMate[i] == int32(j) {
			s.mt.RowMate[i] = Unmatched
			s.mt.ColMate[j] = Unmatched
			s.mt.Size--
			res.Freed++
			s.seedRows = append(s.seedRows, int32(i))
			s.seedCols = append(s.seedCols, int32(j))
		}
	}
	for _, e := range inserts {
		i, j := e[0], e[1]
		if !s.dg.Insert(i, j) {
			continue
		}
		res.Inserted++
		s.markDirty(i, j)
		// Augmentation can only start from an exposed endpoint; an edge
		// between two matched vertices changes nothing for the repair
		// (exact sessions re-verify maximality below regardless).
		if s.mt.RowMate[i] == Unmatched {
			s.seedRows = append(s.seedRows, int32(i))
		} else if s.mt.ColMate[j] == Unmatched {
			s.seedCols = append(s.seedCols, int32(j))
		}
	}

	if s.exact {
		res.Augments = s.rep.Complete(s.mt)
	} else {
		res.Augments = s.repairTargeted()
	}

	changed := res.Inserted+res.Deleted > 0
	if changed {
		s.snap = nil
		if s.scaled {
			s.touchUpScaling()
			res.Rescaled = true
			s.stats.Rescales++
		}
	}
	for _, i := range s.dirtyRows {
		s.dirtyRowMark[i] = false
	}
	for _, j := range s.dirtyCols {
		s.dirtyColMark[j] = false
	}
	res.MaintainedSize = s.mt.Size
	s.stats.Batches++
	s.stats.Inserted += res.Inserted
	s.stats.Deleted += res.Deleted
	s.stats.Freed += res.Freed
	s.stats.Augments += res.Augments
	return &res, nil
}

func (s *DynSession) markDirty(i, j int) {
	if !s.dirtyRowMark[i] {
		s.dirtyRowMark[i] = true
		s.dirtyRows = append(s.dirtyRows, int32(i))
	}
	if !s.dirtyColMark[j] {
		s.dirtyColMark[j] = true
		s.dirtyCols = append(s.dirtyCols, int32(j))
	}
}

// repairTargeted is the heuristic session's repair: one augmenting DFS
// from each endpoint the batch freed or exposed, rows first then
// columns, each side in ascending vertex order (duplicates skipped) —
// a fixed order, so the repair is deterministic for a given trace. An
// endpoint re-matched by an earlier augmentation is skipped by the
// engine's exposure check.
func (s *DynSession) repairTargeted() int {
	sortUnique(&s.seedRows)
	sortUnique(&s.seedCols)
	augments := 0
	for _, i := range s.seedRows {
		if s.rep.AugmentRow(s.mt, i) {
			augments++
		}
	}
	for _, j := range s.seedCols {
		if s.rep.AugmentCol(s.mt, j) {
			augments++
		}
	}
	return augments
}

// touchUpScaling runs dynTouchUpIters restricted Sinkhorn–Knopp
// iterations on the warm vectors: the usual row sweep (dr_i ←
// 1/Σ_j dc_j over row i) followed by the column sweep (dc_j ←
// 1/Σ_i dr_i over column j), each applied only to the batch's dirty
// rows/columns. Vertices whose degree dropped to zero keep their last
// scale — their row/column no longer contributes to sampling at all.
func (s *DynSession) touchUpScaling() {
	for it := 0; it < dynTouchUpIters; it++ {
		for _, i := range s.dirtyRows {
			sum := 0.0
			for _, j := range s.dg.RowAdj(int(i)) {
				sum += s.dc[j]
			}
			if sum > 0 {
				s.dr[i] = 1 / sum
			}
		}
		for _, j := range s.dirtyCols {
			sum := 0.0
			for _, i := range s.dg.ColAdj(int(j)) {
				sum += s.dr[i]
			}
			if sum > 0 {
				s.dc[j] = 1 / sum
			}
		}
	}
}

// ScalingVectors exposes the session's warm scaling (nil slices and
// false when the Spec's algorithm does not scale). The slices alias the
// session; do not modify.
func (s *DynSession) ScalingVectors() (dr, dc []float64, ok bool) {
	if !s.scaled {
		return nil, nil, false
	}
	return s.dr, s.dc, true
}

func sortUnique(v *[]int32) {
	x := *v
	if len(x) < 2 {
		return
	}
	sort.Slice(x, func(a, b int) bool { return x[a] < x[b] })
	out := x[:1]
	for _, e := range x[1:] {
		if e != out[len(out)-1] {
			out = append(out, e)
		}
	}
	*v = out
}
