package bipartite

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/auction"
	"repro/internal/dyngraph"
	"repro/internal/sparse"
)

// ErrInvalidMutation reports a mutation batch that names an out-of-range
// vertex; the batch is rejected whole — no prefix of it is applied —
// and cmd/matchserve maps the error to HTTP 400.
var ErrInvalidMutation = errors.New("bipartite: invalid mutation")

// dynTouchUpIters is how many restricted Sinkhorn–Knopp iterations a
// dirty batch's scaling touch-up runs: the row/col sweeps are applied
// only to the rows and columns the batch touched, on the warm vectors.
// Two iterations propagate a local edit to its immediate neighborhood,
// which is what keeps sampling quality near the fresh scaling without
// paying full sweeps per batch.
const dynTouchUpIters = 2

// DynSession is a mutable graph session that maintains its matching
// incrementally under batched edge mutations — the online form of a
// Matcher. Where a Matcher binds an immutable Graph and answers
// repeated matching requests, a DynSession absorbs Apply(inserts,
// deletes) batches and repairs the matching it holds instead of
// recomputing it:
//
//   - A deleted matched edge un-matches its pair and the repair
//     re-augments from the freed endpoints.
//   - An inserted edge triggers augmentation only when it touches an
//     exposed vertex — an insertion between two matched vertices cannot
//     grow the matching (exact sessions still verify maximality).
//   - Exact sessions (Spec.Refine set) complete the repair with
//     warm-started Hopcroft–Karp phases over the mutable adjacency, so
//     the maintained size equals the mutated graph's sprank after every
//     batch. Heuristic sessions (Refine: None) stop at the targeted
//     repair and keep the heuristic's quality profile.
//   - The Sinkhorn–Knopp scaling stays warm: each dirty batch runs a few
//     touch-up iterations restricted to the rows/columns it touched
//     (DynResult.Rescaled reports when that happened).
//
// Determinism contract: a DynSession executes every internal kernel at
// parallel width 1 — repair is inherently small sequential work per
// batch — so the maintained matching is a pure function of (initial
// graph, Spec, Options.Seed, mutation trace), bit-identical whatever
// pool or worker count the Options carry. The differential fuzz suite
// gates this at pool widths 1/2/4.
//
// A DynSession is not safe for concurrent use; the serving layer
// serializes PATCH batches per graph. Results returned by Matching
// alias the session and are valid until the next Apply.
type DynSession struct {
	spec Spec
	opt  Options // normalized; internal kernels run at width 1

	exact bool // Spec.Refine != RefineNone: maintain size == sprank

	dg  *dyngraph.Graph
	rep *dyngraph.Repairer
	mt  *Matching

	// Warm scaling vectors (nil/false when the Spec's algorithm does not
	// scale); touched up on dirty rows/cols per batch.
	dr, dc []float64
	scaled bool

	// snap is the cached immutable snapshot of the current adjacency;
	// nil when stale. Matching-neutral batches (nothing applied) keep
	// the previous snapshot pointer, which is what lets serving layers
	// key shared-scaling caches on snapshot identity.
	snap *Graph

	// Scratch for batch repair (reused across Apply calls).
	seedRows, seedCols []int32
	dirtyRows          []int32
	dirtyCols          []int32
	dirtyRowMark       []bool
	dirtyColMark       []bool

	// Auction-session state (Spec.Algorithm == AlgAuction): the repair
	// re-auctions freed endpoints against the maintained price vector at
	// the session's creation-time absolute slack, so the weight guarantee
	// weight ≥ opt − |M|·aucEpsAbs tracks the mutated graph.
	auction   bool
	weighted  bool               // emit weighted snapshots (creation graph or ApplyWeighted)
	wmap      map[int64]float64  // edge weights keyed int64(i)<<32 | j
	aucSt     *auction.State     // maintained prices + matching (mt aliases it)
	aucWs     *auction.Workspace // reusable repair scratch
	aucOpt    auction.Options
	aucEpsAbs float64 // creation-time absolute slack
	aucWeight float64 // maintained matched weight after the last repair

	stats DynStats
}

// DynStats accumulates a session's lifetime counters.
type DynStats struct {
	// Batches is the number of Apply calls, including no-op batches.
	Batches int
	// Inserted and Deleted count mutations actually applied (duplicate
	// inserts and absent deletes are skipped, not counted).
	Inserted, Deleted int
	// Freed counts matched pairs broken by deletions.
	Freed int
	// Augments counts augmenting paths applied during repair.
	Augments int
	// Rescales counts scaling touch-up runs (at most one per dirty batch).
	Rescales int
}

// DynResult is the outcome of one Apply batch — the repair provenance
// cmd/matchserve puts on the wire.
type DynResult struct {
	// Inserted and Deleted are the mutations actually applied: inserts
	// of present edges and deletes of absent edges are no-ops.
	Inserted, Deleted int
	// Freed is the number of matched pairs the deletions broke.
	Freed int
	// Augments is the number of augmenting paths the repair applied.
	Augments int
	// Rescaled reports whether the scaling touch-up ran (a scaling
	// session with at least one applied mutation).
	Rescaled bool
	// MaintainedSize is the matching cardinality after repair. For exact
	// sessions it equals the mutated graph's sprank.
	MaintainedSize int
	// MaintainedWeight is the matched weight after repair, for auction
	// sessions (1.0 per edge when the session's graph is unweighted);
	// 0 for cardinality sessions.
	MaintainedWeight float64
}

// NewDynSession opens a dynamic session on g: the Spec is run once (at
// parallel width 1) to establish the initial matching — refined Specs
// start from a maximum matching and stay exact under mutation — and the
// graph is copied into the session's mutable adjacency. opt follows the
// usual defaulting rules; pool and worker settings are ignored (see the
// determinism contract). g itself is the session's initial Snapshot and
// is never mutated.
func (g *Graph) NewDynSession(spec Spec, opt *Options) (*DynSession, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	v := opt.normalized()
	v.Workers = 1
	v.Pool = nil
	if spec.Algorithm == AlgAuction {
		return g.newDynAuction(spec, v)
	}
	res, err := g.Match(spec, &v)
	if err != nil {
		return nil, err
	}
	s := &DynSession{
		spec:         spec,
		opt:          v,
		exact:        spec.Refine != RefineNone,
		dg:           dyngraph.FromCSR(g.a),
		mt:           cloneMatching(res.Matching),
		snap:         g,
		dirtyRowMark: make([]bool, g.Rows()),
		dirtyColMark: make([]bool, g.Cols()),
	}
	s.rep = dyngraph.NewRepairer(s.dg)
	if sc := res.Scaling; sc != nil && len(sc.DR) == g.Rows() && len(sc.DC) == g.Cols() {
		s.dr = append([]float64(nil), sc.DR...)
		s.dc = append([]float64(nil), sc.DC...)
		s.scaled = true
	}
	return s, nil
}

// newDynAuction opens an auction (weighted) dynamic session: the initial
// auction runs here directly — rather than through Graph.Match — so the
// session retains the price vector the repairs warm-start from. The
// absolute slack ε_abs is fixed from the creation graph; the maintained
// weight guarantee weight ≥ opt − |M|·ε_abs is relative to that slack
// (mutations that raise Wmax dilute the relative (1−ε) reading, never
// the absolute one).
func (g *Graph) newDynAuction(spec Spec, v Options) (*DynSession, error) {
	eps := spec.Epsilon
	if eps == 0 {
		eps = DefaultEpsilon
	}
	aopt := auction.Options{Epsilon: eps, Workers: 1}
	ws := &auction.Workspace{}
	st, epsAbs, err := auction.Prepare(g.a, g.transpose(), aopt, ws)
	if err != nil {
		return nil, err
	}
	seed := spec.Seed
	if seed == 0 {
		seed = v.Seed
	}
	res, err := auction.Finish(g.a, g.transpose(), aopt, seed, epsAbs, st, ws)
	if err != nil {
		return nil, err
	}
	s := &DynSession{
		spec:         spec,
		opt:          v,
		dg:           dyngraph.FromCSR(g.a),
		mt:           res.Matching, // aliases aucSt's mate arrays: Apply's unmatch writes maintain both
		snap:         g,
		dirtyRowMark: make([]bool, g.Rows()),
		dirtyColMark: make([]bool, g.Cols()),
		auction:      true,
		weighted:     g.Weighted(),
		wmap:         make(map[int64]float64, g.Edges()),
		aucSt:        st,
		aucWs:        ws,
		aucOpt:       aopt,
		aucEpsAbs:    epsAbs,
		aucWeight:    res.Weight,
	}
	a := g.a
	for i := 0; i < a.RowsN; i++ {
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			w := 1.0
			if a.Val != nil {
				w = a.Val[p]
			}
			s.wmap[edgeKey(i, int(a.Idx[p]))] = w
		}
	}
	s.rep = dyngraph.NewRepairer(s.dg)
	return s, nil
}

func edgeKey(i, j int) int64 { return int64(i)<<32 | int64(j) }

// Dyn opens a dynamic session on the Matcher's graph under the
// Matcher's options; see Graph.NewDynSession. The Matcher itself is not
// retained — the session owns an independent mutable copy.
func (m *Matcher) Dyn(spec Spec) (*DynSession, error) {
	return m.g.NewDynSession(spec, &m.opt)
}

// Rows returns the session's row-vertex count (fixed at creation;
// vertex arrival/departure is expressed as its edge set).
func (s *DynSession) Rows() int { return s.dg.Rows() }

// Cols returns the session's column-vertex count.
func (s *DynSession) Cols() int { return s.dg.Cols() }

// Edges returns the current edge count.
func (s *DynSession) Edges() int { return s.dg.Edges() }

// Size returns the maintained matching's cardinality.
func (s *DynSession) Size() int { return s.mt.Size }

// Exact reports whether the session maintains an exact maximum matching
// (the Spec carried a refinement) or the heuristic's quality profile.
func (s *DynSession) Exact() bool { return s.exact }

// Auction reports whether the session maintains a weighted auction
// matching (the Spec asked for AlgAuction); see MaintainedWeight and
// ApplyWeighted.
func (s *DynSession) Auction() bool { return s.auction }

// Matching returns the maintained matching. It aliases the session —
// valid until the next Apply; callers that retain it must copy.
func (s *DynSession) Matching() *Matching { return s.mt }

// Stats returns the session's lifetime counters.
func (s *DynSession) Stats() DynStats { return s.stats }

// HasEdge reports whether edge (i, j) is currently present.
func (s *DynSession) HasEdge(i, j int) bool {
	return i >= 0 && i < s.dg.Rows() && j >= 0 && j < s.dg.Cols() && s.dg.Has(i, j)
}

// Snapshot returns an immutable Graph of the current adjacency, for the
// one-shot/serving paths (oracle checks, registered-graph matching).
// The snapshot is cached: it is rebuilt (O(rows+edges)) only after a
// batch that actually changed the graph, so matching-neutral batches
// return the identical *Graph — serving layers use that pointer
// identity to decide whether shared-scaling caches keyed on the old
// snapshot must be invalidated.
func (s *DynSession) Snapshot() *Graph {
	if s.snap == nil {
		a := s.dg.CSR()
		if s.auction && s.weighted {
			s.fillWeights(a)
		}
		s.snap = newGraph(a)
	}
	return s.snap
}

// fillWeights materializes the session's weight map as a's parallel
// value array (CSR edge order).
func (s *DynSession) fillWeights(a *sparse.CSR) {
	val := make([]float64, len(a.Idx))
	for i := 0; i < a.RowsN; i++ {
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			val[p] = s.wmap[edgeKey(i, int(a.Idx[p]))]
		}
	}
	a.Val = val
}

// MaintainedWeight returns the maintained matched weight of an auction
// session (0 for cardinality sessions).
func (s *DynSession) MaintainedWeight() float64 { return s.aucWeight }

// aucRepair rebuilds the mutated adjacency as a weighted CSR and runs
// the auction repair against the maintained prices: normalization
// (ε-CS re-check plus the unmatched-column price reset and its cascade)
// followed by a bidding phase for the unassigned rows at the session's
// creation-time slack. The per-batch tie-break seed advances with the
// batch counter so the trace stays a pure function of (graph, Spec,
// Options.Seed, mutations).
func (s *DynSession) aucRepair() error {
	a := s.dg.CSR()
	if s.weighted {
		s.fillWeights(a)
	}
	at := a.Transpose()
	seed := s.spec.Seed
	if seed == 0 {
		seed = s.opt.Seed
	}
	seed += uint64(s.stats.Batches) + 1
	res, err := auction.Repair(a, at, s.aucOpt, seed, s.aucEpsAbs, s.aucSt, s.aucWs)
	if err != nil {
		return err
	}
	s.mt = res.Matching // fresh header over the maintained state arrays
	s.aucWeight = res.Weight
	return nil
}

// Apply absorbs one mutation batch: deletions first, then insertions,
// then matching repair, then the scaling touch-up. The batch is
// validated whole before any mutation is applied — an out-of-range
// vertex rejects it with ErrInvalidMutation and the session is
// unchanged. Duplicate edges inside the batch and mutations that do not
// change the graph (inserting a present edge, deleting an absent one)
// are no-ops, reported through the applied counts.
//
// On auction sessions, inserted edges get weight 1.0; use ApplyWeighted
// to insert edges with explicit weights.
func (s *DynSession) Apply(inserts, deletes [][2]int) (*DynResult, error) {
	return s.apply(inserts, nil, deletes)
}

// WeightedEdge is one weighted insertion for ApplyWeighted.
type WeightedEdge struct {
	Row, Col int
	Weight   float64
}

// ApplyWeighted is Apply for auction sessions with explicit insertion
// weights: inserting an edge already present updates its weight (counted
// as applied when the weight actually changes). Weights must be strictly
// positive and finite. The repair re-auctions against the maintained
// prices at the session's creation-time slack, so after every batch the
// maintained weight satisfies weight ≥ opt − |M|·ε_abs on the mutated
// graph. Returns an error on cardinality (non-auction) sessions.
func (s *DynSession) ApplyWeighted(inserts []WeightedEdge, deletes [][2]int) (*DynResult, error) {
	if !s.auction {
		return nil, fmt.Errorf("%w: ApplyWeighted requires an auction session", ErrInvalidMutation)
	}
	ins := make([][2]int, len(inserts))
	weights := make([]float64, len(inserts))
	for k, e := range inserts {
		if !(e.Weight > 0) || math.IsInf(e.Weight, 1) {
			return nil, fmt.Errorf("%w: insert (%d,%d) weight %v not positive finite", ErrInvalidMutation, e.Row, e.Col, e.Weight)
		}
		ins[k] = [2]int{e.Row, e.Col}
		weights[k] = e.Weight
	}
	return s.apply(ins, weights, deletes)
}

// apply is the shared batch body; weights is nil for Apply (auction
// sessions then insert weight 1.0) and parallel to inserts for
// ApplyWeighted.
func (s *DynSession) apply(inserts [][2]int, weights []float64, deletes [][2]int) (*DynResult, error) {
	n, m := s.dg.Rows(), s.dg.Cols()
	for _, e := range deletes {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= m {
			return nil, fmt.Errorf("%w: delete (%d,%d) outside %dx%d", ErrInvalidMutation, e[0], e[1], n, m)
		}
	}
	for _, e := range inserts {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= m {
			return nil, fmt.Errorf("%w: insert (%d,%d) outside %dx%d", ErrInvalidMutation, e[0], e[1], n, m)
		}
	}
	var res DynResult
	s.seedRows = s.seedRows[:0]
	s.seedCols = s.seedCols[:0]
	s.dirtyRows = s.dirtyRows[:0]
	s.dirtyCols = s.dirtyCols[:0]

	for _, e := range deletes {
		i, j := e[0], e[1]
		if !s.dg.Delete(i, j) {
			continue
		}
		res.Deleted++
		if s.auction {
			delete(s.wmap, edgeKey(i, j))
		}
		s.markDirty(i, j)
		if s.mt.RowMate[i] == int32(j) {
			s.mt.RowMate[i] = Unmatched
			s.mt.ColMate[j] = Unmatched
			s.mt.Size--
			res.Freed++
			s.seedRows = append(s.seedRows, int32(i))
			s.seedCols = append(s.seedCols, int32(j))
		}
	}
	for k, e := range inserts {
		i, j := e[0], e[1]
		w := 1.0
		if weights != nil {
			w = weights[k]
		}
		if !s.dg.Insert(i, j) {
			// Present edge: a weighted insert may still change its weight,
			// which is a real mutation for an auction session.
			if s.auction && weights != nil && s.wmap[edgeKey(i, j)] != w {
				s.wmap[edgeKey(i, j)] = w
				res.Inserted++
				s.markDirty(i, j)
				if w != 1 {
					s.weighted = true
				}
			}
			continue
		}
		res.Inserted++
		if s.auction {
			s.wmap[edgeKey(i, j)] = w
			if w != 1 {
				s.weighted = true
			}
		}
		s.markDirty(i, j)
		// Augmentation can only start from an exposed endpoint; an edge
		// between two matched vertices changes nothing for the repair
		// (exact sessions re-verify maximality below regardless).
		if s.mt.RowMate[i] == Unmatched {
			s.seedRows = append(s.seedRows, int32(i))
		} else if s.mt.ColMate[j] == Unmatched {
			s.seedCols = append(s.seedCols, int32(j))
		}
	}

	changed := res.Inserted+res.Deleted > 0
	switch {
	case s.auction:
		// Re-auction only when the graph changed: the repair normalizes
		// the maintained prices (reset/cascade over freed and unmatched
		// columns) and runs a bidding phase for the unassigned rows at
		// the creation-time slack. A no-op batch keeps state as is.
		if changed {
			if err := s.aucRepair(); err != nil {
				return nil, err
			}
		}
		res.MaintainedWeight = s.aucWeight
	case s.exact:
		res.Augments = s.rep.Complete(s.mt)
	default:
		res.Augments = s.repairTargeted()
	}

	if changed {
		s.snap = nil
		if s.scaled {
			s.touchUpScaling()
			res.Rescaled = true
			s.stats.Rescales++
		}
	}
	for _, i := range s.dirtyRows {
		s.dirtyRowMark[i] = false
	}
	for _, j := range s.dirtyCols {
		s.dirtyColMark[j] = false
	}
	res.MaintainedSize = s.mt.Size
	s.stats.Batches++
	s.stats.Inserted += res.Inserted
	s.stats.Deleted += res.Deleted
	s.stats.Freed += res.Freed
	s.stats.Augments += res.Augments
	return &res, nil
}

func (s *DynSession) markDirty(i, j int) {
	if !s.dirtyRowMark[i] {
		s.dirtyRowMark[i] = true
		s.dirtyRows = append(s.dirtyRows, int32(i))
	}
	if !s.dirtyColMark[j] {
		s.dirtyColMark[j] = true
		s.dirtyCols = append(s.dirtyCols, int32(j))
	}
}

// repairTargeted is the heuristic session's repair: one augmenting DFS
// from each endpoint the batch freed or exposed, rows first then
// columns, each side in ascending vertex order (duplicates skipped) —
// a fixed order, so the repair is deterministic for a given trace. An
// endpoint re-matched by an earlier augmentation is skipped by the
// engine's exposure check.
func (s *DynSession) repairTargeted() int {
	sortUnique(&s.seedRows)
	sortUnique(&s.seedCols)
	augments := 0
	for _, i := range s.seedRows {
		if s.rep.AugmentRow(s.mt, i) {
			augments++
		}
	}
	for _, j := range s.seedCols {
		if s.rep.AugmentCol(s.mt, j) {
			augments++
		}
	}
	return augments
}

// touchUpScaling runs dynTouchUpIters restricted Sinkhorn–Knopp
// iterations on the warm vectors: the usual row sweep (dr_i ←
// 1/Σ_j dc_j over row i) followed by the column sweep (dc_j ←
// 1/Σ_i dr_i over column j), each applied only to the batch's dirty
// rows/columns. Vertices whose degree dropped to zero keep their last
// scale — their row/column no longer contributes to sampling at all.
func (s *DynSession) touchUpScaling() {
	for it := 0; it < dynTouchUpIters; it++ {
		for _, i := range s.dirtyRows {
			sum := 0.0
			for _, j := range s.dg.RowAdj(int(i)) {
				sum += s.dc[j]
			}
			if sum > 0 {
				s.dr[i] = 1 / sum
			}
		}
		for _, j := range s.dirtyCols {
			sum := 0.0
			for _, i := range s.dg.ColAdj(int(j)) {
				sum += s.dr[i]
			}
			if sum > 0 {
				s.dc[j] = 1 / sum
			}
		}
	}
}

// ScalingVectors exposes the session's warm scaling (nil slices and
// false when the Spec's algorithm does not scale). The slices alias the
// session; do not modify.
func (s *DynSession) ScalingVectors() (dr, dc []float64, ok bool) {
	if !s.scaled {
		return nil, nil, false
	}
	return s.dr, s.dc, true
}

func sortUnique(v *[]int32) {
	x := *v
	if len(x) < 2 {
		return
	}
	sort.Slice(x, func(a, b int) bool { return x[a] < x[b] })
	out := x[:1]
	for _, e := range x[1:] {
		if e != out[len(out)-1] {
			out = append(out, e)
		}
	}
	*v = out
}
