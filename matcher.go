package bipartite

import (
	"errors"

	"repro/internal/auction"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/ks"
	"repro/internal/par"
	"repro/internal/scale"
)

// ErrCanceled reports a matching call that was aborted by its cancellation
// hook before producing a result — in the serving stack, a request whose
// context deadline expired mid-kernel. The batch layer translates it back
// into the request context's own error.
var ErrCanceled = errors.New("bipartite: matching canceled")

// Matcher is a reusable matching session bound to one graph. It caches the
// transpose and the scaling of the bound graph and owns preallocated
// workspaces for every pipeline stage — scaling vectors and sums, row and
// column choice buffers, the 1-out choice graph, the Karp–Sipser match and
// degree arrays — so repeated OneSided / TwoSided / Scale / KarpSipser
// calls perform near-zero allocations (a reused TwoSided call stays within
// two allocations at one worker) and reproduce the one-shot API exactly:
// the one-shot functions are in fact thin wrappers over a throwaway
// Matcher, so the session introduces no drift anywhere the pipeline is
// deterministic (see the package-level determinism contract — everything
// at Workers: 1; choices, scalings and sizes at any width).
//
// The scaling of a graph is seed-independent, so it is computed once per
// binding and shared by every subsequent call — the second and later calls
// on the same graph skip the scaling stage entirely, which is where most
// of the session's speedup on small instances comes from.
//
// Aliasing contract: results returned by a Matcher point into its
// workspaces and are valid only until the next call on the same Matcher
// (or Reset). Callers that retain results across calls copy them first.
// A Matcher is not safe for concurrent use; for concurrent serving run one
// Matcher per worker slot (see MatchBatch and Server, which do exactly
// that) or one-shot calls, which are safe because each builds its own.
type Matcher struct {
	g   *Graph
	opt Options // normalized

	sess     *core.Session
	scaleWs  *scale.Workspace
	ksWs     *ks.Workspace     // lazily created by KarpSipser
	ksApprox *ks.ApproxSession // lazily created by KarpSipserParallel
	refWs    *exact.Workspace  // lazily created by refining Specs

	sc      *Scaling // cached scaling of the bound graph; nil until computed
	scErr   error
	scaling Scaling     // backing storage for sc on the workspace path
	result  MatchResult // reused result header

	// best is the session-owned winner buffer of ensemble runs (Spec with
	// Ensemble > 1): candidates alias the kernel workspaces, so the best
	// one so far is copied here before the next candidate overwrites them.
	best Matching
	// ksStats holds the phase statistics of the latest Karp–Sipser run
	// (the winner's, for ensembles); bestKS tracks the leader mid-ensemble.
	ksStats, bestKS KarpSipserStats

	// ensSlots are the per-worker child arenas of parallel ensembles: when
	// Run fans a best-of-K Spec out across the pool, worker w draws a
	// width-1 Matcher for the bound graph from ensSlots[w] — the same
	// shape-keyed recycling the batch engine's slots use, so a session that
	// Resets across a stream of same-shaped graphs keeps its ensemble
	// arenas warm too. Each slot is touched only by the worker that owns
	// it for the duration of a parallel region.
	ensSlots []arenaCache

	// aucWs holds the auction engine's scratch buffers (bid slots, queues,
	// the cascade worklist) plus the price vector of the latest run;
	// lazily created by AlgAuction Specs and reused across runs like the
	// sampling workspaces.
	aucWs *auction.Workspace

	// cancel is the cooperative cancellation hook threaded through every
	// kernel stage; see setCancel.
	cancel func() bool
}

// NewMatcher creates a matching session on g. opt follows the same
// defaulting rules as the one-shot calls; opt.Seed is the default seed for
// calls that pass seed 0. The session pins its pool and parallel width at
// construction. The sampling workspaces (and the graph transpose) are
// built lazily on the first call that needs them, so a Matcher used only
// for the cheap baselines never pays for either.
func (g *Graph) NewMatcher(opt *Options) *Matcher {
	return &Matcher{g: g, opt: opt.normalized(), scaleWs: &scale.Workspace{}}
}

// session returns the sampling-kernel session, building it on first use:
// the pending cancellation hook and any already-cached scaling are
// installed into the fresh session so lazy construction is invisible to
// the callers.
func (m *Matcher) session() *core.Session {
	if m.sess == nil {
		m.sess = core.NewSession(m.g.a, m.g.transpose(), m.opt.coreOptions(nil))
		m.sess.SetCancel(m.cancel)
		if m.sc != nil {
			m.sess.SetScaling(m.sc.DR, m.sc.DC, m.sc.RowSums, m.sc.ColSums)
		}
	}
	return m.sess
}

// Reset rebinds the session to a different graph, reusing every workspace
// that is large enough (binding a stream of same-shaped graphs is
// allocation-free apart from the new graph's own scaling sweeps). The
// cached scaling is discarded and recomputed on the next call that needs
// it. Results from before the Reset are invalidated.
func (m *Matcher) Reset(g *Graph) {
	m.g = g
	if m.sess != nil {
		m.sess.Rebind(g.a, g.transpose())
	}
	if m.ksApprox != nil {
		m.ksApprox.Rebind(g.a, g.transpose())
	}
	m.sc, m.scErr = nil, nil
}

// Graph returns the graph the session is currently bound to.
func (m *Matcher) Graph() *Graph { return m.g }

// setCancel installs (or clears, with nil) the session's cooperative
// cancellation hook; the scaling, sampling and Karp–Sipser stages all poll
// it at chunk granularity. The hook must be cheap, concurrency-safe and
// monotone (once true, always true — a context's Err is). A canceled call
// returns ErrCanceled (or a nil matching from KarpSipser) and leaves the
// session reusable; the batch engine arms this per request from the
// request's context.
func (m *Matcher) setCancel(cancel func() bool) {
	m.cancel = cancel
	if m.sess != nil {
		m.sess.SetCancel(cancel)
	}
}

// installScaling hands the session a precomputed scaling of the bound
// graph — the shared per-graph once-cell of the batch engine — so the slot
// skips its own Sinkhorn–Knopp run entirely. The scaling must be that of
// the bound graph under the session's options; sc's slices are retained.
func (m *Matcher) installScaling(sc *Scaling) {
	if m.sc == sc {
		return
	}
	m.sc, m.scErr = sc, nil
	if m.sess != nil {
		m.sess.SetScaling(sc.DR, sc.DC, sc.RowSums, sc.ColSums)
	}
}

// refineWs returns the session's refinement workspace, building it on
// first use: the Hopcroft–Karp, push-relabel and graft refiners all run on
// it, so a session issuing repeated refining Specs (the ensemble+refine
// serving pattern) reuses one set of refinement buffers and stays
// allocation-free in steady state. One refiner is live on it at a time —
// exactly the Spec engine's shape, which never interleaves two refiners.
func (m *Matcher) refineWs() *exact.Workspace {
	if m.refWs == nil {
		m.refWs = &exact.Workspace{}
	}
	return m.refWs
}

// refineWidth resolves the pool and width a graft refinement fans out
// across: the session's pool at the session's parallel width — the
// ensemble fan-out width without its candidate-count cap, since graft
// phases parallelize over the frontier, not over candidates.
func (m *Matcher) refineWidth() (*par.Pool, int) {
	pool := m.opt.Pool.inner()
	if pool == nil {
		pool = par.Default()
	}
	width := pool.Workers(m.opt.Workers)
	if width > pool.Width() {
		width = pool.Width()
	}
	return pool, width
}

// growEnsembleSlots sizes the per-worker arena caches of parallel
// ensembles before a fan-out region starts (workers must never grow the
// slice concurrently). Existing slots keep their warm arenas.
func (m *Matcher) growEnsembleSlots(width int) {
	for len(m.ensSlots) < width {
		m.ensSlots = append(m.ensSlots, arenaCache{})
	}
}

// seed resolves a per-call seed: 0 means the session's Options.Seed.
func (m *Matcher) seed(s uint64) uint64 {
	if s == 0 {
		return m.opt.Seed
	}
	return s
}

// Scale returns the scaling of the bound graph, computing it on first use
// and serving it from the session cache afterwards. The result aliases the
// session workspace (see the Matcher aliasing contract).
func (m *Matcher) Scale() (*Scaling, error) {
	if m.sc != nil || m.scErr != nil {
		return m.sc, m.scErr
	}
	res, err := m.g.scaleRaw(m.opt, m.scaleWs, m.cancel)
	if err != nil {
		if errors.Is(err, scale.ErrCanceled) {
			// Cancellation is a property of the call, not the graph: do
			// not poison the cache — the next (uncanceled) call rescales.
			return nil, ErrCanceled
		}
		m.scErr = err
		return nil, err
	}
	m.scaling = Scaling{DR: res.DR, DC: res.DC, Iterations: res.Iters, Error: res.Err,
		History: res.History, RowSums: res.RSum, ColSums: res.CSum}
	m.sc = &m.scaling
	if m.sess != nil {
		m.sess.SetScaling(res.DR, res.DC, res.RSum, res.CSum)
	}
	return m.sc, nil
}

// OneSided runs the OneSidedMatch heuristic with the given seed (0 means
// Options.Seed) on the bound graph — a compatibility wrapper over
// Run(Spec{Algorithm: AlgOneSided}), bit-identical to the one-shot
// OneSidedMatch under the same options and seed.
func (m *Matcher) OneSided(seed uint64) (*MatchResult, error) {
	return m.Run(Spec{Algorithm: AlgOneSided, Seed: seed})
}

// TwoSided runs the TwoSidedMatch heuristic with the given seed (0 means
// Options.Seed) on the bound graph — a compatibility wrapper over
// Run(Spec{Algorithm: AlgTwoSided}), bit-identical to the one-shot
// TwoSidedMatch under the same options and seed.
func (m *Matcher) TwoSided(seed uint64) (*MatchResult, error) {
	return m.Run(Spec{Algorithm: AlgTwoSided, Seed: seed})
}

// KarpSipser runs the classic sequential Karp–Sipser heuristic with the
// given seed (0 means Options.Seed), reusing the session's queue and
// live-edge buffers across calls — a compatibility wrapper over
// Run(Spec{Algorithm: AlgKarpSipser}). A canceled session call returns a
// nil matching with the statistics accumulated so far.
func (m *Matcher) KarpSipser(seed uint64) (*Matching, KarpSipserStats) {
	res, err := m.Run(Spec{Algorithm: AlgKarpSipser, Seed: seed})
	if err != nil {
		return nil, m.ksStats
	}
	return res.Matching, *res.KSStats
}

// KarpSipserParallel runs the multithreaded Karp–Sipser baseline with the
// given seed (0 means Options.Seed) on the session's pool and width,
// reusing the session's matching buffers across calls — a compatibility
// wrapper over Run(Spec{Algorithm: AlgKarpSipserParallel}).
func (m *Matcher) KarpSipserParallel(seed uint64) *Matching {
	res, err := m.Run(Spec{Algorithm: AlgKarpSipserParallel, Seed: seed})
	if err != nil {
		return nil
	}
	return res.Matching
}
