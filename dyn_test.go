package bipartite

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestDynSessionExactMaintained: an exact session's maintained size
// equals the mutated graph's sprank after every batch, and the
// maintained matching validates against the snapshot.
func TestDynSessionExactMaintained(t *testing.T) {
	g := RandomER(80, 70, 3, 11)
	s, err := g.NewDynSession(Spec{Refine: RefineExact}, &Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Exact() {
		t.Fatal("refined session must report Exact")
	}
	if s.Size() != g.Sprank() {
		t.Fatalf("initial size %d, want sprank %d", s.Size(), g.Sprank())
	}
	if s.Snapshot() != g {
		t.Fatal("initial snapshot must be the source graph itself")
	}
	batches := [][2][][2]int{ // {inserts, deletes}
		{{{0, 1}, {1, 0}, {5, 60}}, {{0, 0}}},
		{nil, {{5, 60}, {1, 0}}},
		{{{79, 69}, {40, 40}, {40, 41}}, nil},
	}
	for bi, b := range batches {
		res, err := s.Apply(b[0], b[1])
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		snap := s.Snapshot()
		if err := snap.ValidateMatching(s.Matching()); err != nil {
			t.Fatalf("batch %d: maintained matching invalid: %v", bi, err)
		}
		if want := snap.Sprank(); res.MaintainedSize != want {
			t.Fatalf("batch %d: maintained size %d, want sprank %d", bi, res.MaintainedSize, want)
		}
	}
	st := s.Stats()
	if st.Batches != len(batches) {
		t.Fatalf("stats: %d batches, want %d", st.Batches, len(batches))
	}
}

// TestDynSessionNeutralBatch: mutations that do not change the graph
// (re-inserting present edges, deleting absent ones, empty batches)
// keep the snapshot pointer, skip the rescale and repair nothing.
func TestDynSessionNeutralBatch(t *testing.T) {
	g := Grid2D(8, 8)
	s, err := g.NewDynSession(Spec{Refine: RefineExact}, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap0 := s.Snapshot()
	// An existing edge and an absent edge, both no-ops.
	res, err := s.Apply([][2]int{{0, 0}}, [][2]int{{0, 63}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 0 || res.Deleted != 0 || res.Augments != 0 || res.Rescaled {
		t.Fatalf("neutral batch reported work: %+v", res)
	}
	if s.Snapshot() != snap0 {
		t.Fatal("neutral batch must keep the snapshot pointer")
	}
	if res, err = s.Apply(nil, nil); err != nil || res.Rescaled || res.MaintainedSize != s.Size() {
		t.Fatalf("empty batch: res %+v err %v", res, err)
	}
	// A real mutation invalidates the snapshot and touches up the scaling.
	res, err = s.Apply(nil, [][2]int{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 1 || !res.Rescaled {
		t.Fatalf("dirty batch: %+v, want Deleted 1 Rescaled true", res)
	}
	if s.Snapshot() == snap0 {
		t.Fatal("dirty batch must produce a fresh snapshot")
	}
}

// TestDynSessionHeuristicRepair: heuristic sessions augment only from
// endpoints a batch exposed, and their maintained matching stays valid.
func TestDynSessionHeuristicRepair(t *testing.T) {
	g := RandomER(60, 60, 3, 7)
	s, err := g.NewDynSession(Spec{Algorithm: AlgTwoSided}, &Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Exact() {
		t.Fatal("unrefined session must not report Exact")
	}
	mt := s.Matching()
	// Find a matched edge to delete: repair must re-augment when possible,
	// and the matching must stay valid either way.
	var di, dj int = -1, -1
	for i, j := range mt.RowMate {
		if j != Unmatched {
			di, dj = i, int(j)
			break
		}
	}
	if di < 0 {
		t.Fatal("initial matching empty")
	}
	res, err := s.Apply(nil, [][2]int{{di, dj}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Freed != 1 {
		t.Fatalf("freed %d, want 1", res.Freed)
	}
	if err := s.Snapshot().ValidateMatching(s.Matching()); err != nil {
		t.Fatal(err)
	}
	// An insert between two matched vertices must not augment; an insert
	// touching an exposed vertex may.
	mt = s.Matching()
	mi, mj := -1, -1
	for i, j := range mt.RowMate {
		if j != Unmatched && !s.HasEdge(i, (int(j)+1)%s.Cols()) && mt.ColMate[(int(j)+1)%s.Cols()] != Unmatched {
			mi, mj = i, (int(j)+1)%s.Cols()
			break
		}
	}
	if mi >= 0 {
		res, err = s.Apply([][2]int{{mi, mj}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Augments != 0 {
			t.Fatalf("insert between matched vertices augmented %d times", res.Augments)
		}
	}
	if err := s.Snapshot().ValidateMatching(s.Matching()); err != nil {
		t.Fatal(err)
	}
}

// TestDynSessionInvalidMutation: an out-of-range mutation rejects the
// whole batch — no prefix applied, session unchanged.
func TestDynSessionInvalidMutation(t *testing.T) {
	g := Grid2D(6, 6)
	s, err := g.NewDynSession(Spec{Refine: RefineExact}, nil)
	if err != nil {
		t.Fatal(err)
	}
	edges0, size0, snap0 := s.Edges(), s.Size(), s.Snapshot()
	for _, bad := range [][2][][2]int{
		{{{0, 0}, {0, 36}}, nil}, // insert out of range (after a valid one)
		{nil, {{0, 0}, {-1, 0}}}, // delete out of range
		{{{36, 0}}, {{0, 0}}},    // insert row out of range
	} {
		if _, err := s.Apply(bad[0], bad[1]); !errors.Is(err, ErrInvalidMutation) {
			t.Fatalf("bad batch %v: err %v, want ErrInvalidMutation", bad, err)
		}
		if s.Edges() != edges0 || s.Size() != size0 || s.Snapshot() != snap0 {
			t.Fatal("rejected batch mutated the session")
		}
	}
}

// TestDynSessionMatcherDyn: the Matcher entry point opens an equivalent
// session under the Matcher's options.
func TestDynSessionMatcherDyn(t *testing.T) {
	g := RandomER(50, 50, 3, 3)
	m := g.NewMatcher(&Options{Seed: 9})
	s1, err := m.Dyn(Spec{Refine: RefineExact})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := g.NewDynSession(Spec{Refine: RefineExact}, &Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	batch := [][2]int{{1, 2}, {2, 3}, {49, 0}}
	if _, err := s1.Apply(batch, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Apply(batch, nil); err != nil {
		t.Fatal(err)
	}
	cmpMates(t, "Matcher.Dyn vs NewDynSession", s1.Matching(), s2.Matching())
}

// TestDynScaleInvalidationOncePerDirtyBatch is the shared-scaling
// coherence gate for mutable graphs: after a dirty batch the serving
// layer drops the old snapshot's cell and the next match of the new
// snapshot rescales exactly once; further matches share it.
func TestDynScaleInvalidationOncePerDirtyBatch(t *testing.T) {
	g := RandomER(300, 300, 4, 21)
	s, err := g.NewDynSession(Spec{Refine: RefineExact}, &Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	scales := countScaleRuns(t)
	srv := NewServer(&Options{ScalingIterations: 5}, 16)
	defer srv.Close()

	if resp := srv.Match(Request{Graph: s.Snapshot(), Seed: 1}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if n := scales.Load(); n != 1 {
		t.Fatalf("cold graph: %d scaling runs, want 1", n)
	}

	// Dirty batch: snapshot identity changes; the serving layer evicts the
	// old cell and the next match rescales exactly once.
	old := s.Snapshot()
	if _, err := s.Apply([][2]int{{0, 299}, {299, 0}}, [][2]int{{0, int(s.Matching().RowMate[0])}}); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap == old {
		t.Fatal("dirty batch kept the snapshot pointer")
	}
	srv.DropGraph(old)
	for k := 0; k < 4; k++ {
		if resp := srv.Match(Request{Graph: snap, Seed: uint64(k + 1)}); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	if n := scales.Load(); n != 2 {
		t.Fatalf("after dirty batch: %d scaling runs, want exactly 2 (one per dirty batch)", n)
	}

	// Matching-neutral batch: same snapshot pointer, nothing to drop, the
	// warm cell keeps serving — zero additional rescales.
	if _, err := s.Apply([][2]int{{0, 299}}, [][2]int{{1, 299}}); err != nil { // both no-ops
		t.Fatal(err)
	}
	if s.Snapshot() != snap {
		t.Fatal("neutral batch changed the snapshot pointer")
	}
	for k := 0; k < 3; k++ {
		if resp := srv.Match(Request{Graph: s.Snapshot(), Seed: uint64(10 + k)}); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	if n := scales.Load(); n != 2 {
		t.Fatalf("after neutral batch: %d scaling runs, want still 2", n)
	}
}

// TestDynScaleColdCancelRetryMutated extends the PR 6 retryable-cell
// gate to mutated graphs: a deadline expiring while the fresh snapshot's
// cold scaling computes fails that request only — the snapshot's next
// request rescales once and succeeds.
func TestDynScaleColdCancelRetryMutated(t *testing.T) {
	g := RandomER(2000, 2000, 4, 13)
	s, err := g.NewDynSession(Spec{Algorithm: AlgOneSided}, &Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply([][2]int{{0, 1999}, {1999, 0}, {7, 7}}, nil); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap == g {
		t.Fatal("mutation kept the snapshot pointer")
	}

	var runs atomic.Int64
	hook := func() {
		// Stall the first scaling run past the request's deadline, so the
		// cancellation hook has fired by the kernel's first checkpoint.
		if runs.Add(1) == 1 {
			time.Sleep(30 * time.Millisecond)
		}
	}
	scaleRunHook.Store(&hook)
	t.Cleanup(func() { scaleRunHook.Store(nil) })

	srv := NewServer(&Options{ScalingIterations: 5, Workers: 1}, 8)
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	resp := srv.Match(Request{Graph: snap, Seed: 1, Ctx: ctx})
	if !errors.Is(resp.Err, context.DeadlineExceeded) {
		t.Fatalf("cold mutated snapshot with 1ms deadline: %v, want context.DeadlineExceeded", resp.Err)
	}
	resp = srv.Match(Request{Graph: snap, Seed: 1})
	if resp.Err != nil {
		t.Fatalf("retry after canceled scaling on mutated graph: %v, want served", resp.Err)
	}
	if n := runs.Load(); n != 2 {
		t.Fatalf("%d scaling runs, want 2 (one aborted + one fresh)", n)
	}
	if resp = srv.Match(Request{Graph: snap, Seed: 2}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if n := runs.Load(); n != 2 {
		t.Fatalf("%d scaling runs after warm request, want still 2", n)
	}
}
