// Roadnetwork: matching on a road-network-like graph (the europe_osm /
// road_usa workload class of Table 3), with a thread sweep demonstrating
// the shared-memory scalability of both heuristics.
//
//	go run ./examples/roadnetwork
package main

import (
	"fmt"
	"time"

	bipartite "repro"
)

func main() {
	// Thinned-grid road network: ~1M vertices, average degree ≈ 2.3,
	// slightly rank-deficient like real road graphs.
	fmt.Println("building road network ...")
	g := bipartite.RoadNetwork(1000000, 2.3, 11)
	fmt.Printf("graph: %d vertices, %d edges, avg degree %.2f\n",
		g.Rows(), g.Edges(), g.AvgDegree())

	sprank := g.Sprank()
	fmt.Printf("sprank: %d (%.1f%% of n — road networks are deficient)\n\n",
		sprank, 100*float64(sprank)/float64(g.Rows()))

	fmt.Printf("%8s %12s %12s %10s %10s\n", "threads", "one-sided", "two-sided", "q(one)", "q(two)")
	var base1, base2 time.Duration
	for _, w := range []int{1, 2, 4, 8, 16} {
		opt := &bipartite.Options{ScalingIterations: 1, Workers: w, Seed: 5}
		start := time.Now()
		one, err := g.OneSidedMatch(opt)
		if err != nil {
			panic(err)
		}
		t1 := time.Since(start)
		start = time.Now()
		two, err := g.TwoSidedMatch(opt)
		if err != nil {
			panic(err)
		}
		t2 := time.Since(start)
		if w == 1 {
			base1, base2 = t1, t2
		}
		fmt.Printf("%8d %9v x%.1f %9v x%.1f %10.4f %10.4f\n",
			w,
			t1.Round(time.Millisecond), float64(base1)/float64(t1),
			t2.Round(time.Millisecond), float64(base2)/float64(t2),
			float64(one.Matching.Size)/float64(sprank),
			float64(two.Matching.Size)/float64(sprank))
	}
}
