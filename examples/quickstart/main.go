// Quickstart: generate a sparse random bipartite graph, run both
// heuristics, and compare against the exact maximum matching.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	bipartite "repro"
)

func main() {
	// A 200k x 200k Erdős–Rényi graph with average degree 4 — the §4.1.3
	// workload class.
	fmt.Println("building graph ...")
	g := bipartite.RandomER(200000, 200000, 4, 42)
	fmt.Printf("graph: %d + %d vertices, %d edges\n", g.Rows(), g.Cols(), g.Edges())

	// OneSidedMatch: zero-synchronization heuristic, >= 0.632 guarantee.
	start := time.Now()
	one, err := g.OneSidedMatch(&bipartite.Options{ScalingIterations: 5, Seed: 1})
	if err != nil {
		panic(err)
	}
	tOne := time.Since(start)

	// TwoSidedMatch: 1-out sampling + exact parallel Karp-Sipser, ≈0.866.
	start = time.Now()
	two, err := g.TwoSidedMatch(&bipartite.Options{ScalingIterations: 5, Seed: 1})
	if err != nil {
		panic(err)
	}
	tTwo := time.Since(start)

	// Exact maximum for reference.
	start = time.Now()
	sprank := g.Sprank()
	tExact := time.Since(start)

	fmt.Printf("\n%-14s %10s %10s %8s\n", "algorithm", "matched", "quality", "time")
	fmt.Printf("%-14s %10d %10.4f %8v\n", "OneSided", one.Matching.Size,
		float64(one.Matching.Size)/float64(sprank), tOne.Round(time.Millisecond))
	fmt.Printf("%-14s %10d %10.4f %8v\n", "TwoSided", two.Matching.Size,
		float64(two.Matching.Size)/float64(sprank), tTwo.Round(time.Millisecond))
	fmt.Printf("%-14s %10d %10.4f %8v\n", "HopcroftKarp", sprank, 1.0,
		tExact.Round(time.Millisecond))

	if err := g.ValidateMatching(two.Matching); err != nil {
		panic(err)
	}
	fmt.Println("\nmatchings validated ✓")
}
