// Undirected: the paper's announced extension to general graphs. Each
// vertex samples one neighbor from a symmetric doubly stochastic scaling;
// the sampled 1-out graph is a pseudoforest (every component has at most
// one cycle), so Karp–Sipser matches it exactly — including odd cycles,
// which do not exist in the bipartite case.
//
//	go run ./examples/undirected
package main

import (
	"fmt"

	bipartite "repro"
)

func main() {
	fmt.Println("1-out matching on general graphs (paper's future-work extension)")
	fmt.Printf("\n%12s %10s %10s %12s %14s\n",
		"graph", "vertices", "edges", "matched", "frac of max")

	// Random sparse graph.
	g := bipartite.RandomUndirected(500000, 6, 7)
	res := g.Match(&bipartite.Options{ScalingIterations: 5, Seed: 1})
	if err := g.Validate(res.Mate); err != nil {
		panic(err)
	}
	// On ER(d=6) nearly all vertices are matchable; report the matched
	// vertex fraction as a proxy for quality.
	fmt.Printf("%12s %10d %10d %12d %14.3f\n", "ER d=6",
		g.Vertices(), g.Edges(), res.Size, 2*float64(res.Size)/float64(g.Vertices()))

	// Ring graph (one even cycle: has a perfect matching).
	n := 400000
	edges := make([][2]int, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]int{i, (i + 1) % n}
	}
	ring, err := bipartite.NewUndirected(n, edges)
	if err != nil {
		panic(err)
	}
	res = ring.Match(&bipartite.Options{ScalingIterations: 2, Seed: 3})
	if err := ring.Validate(res.Mate); err != nil {
		panic(err)
	}
	fmt.Printf("%12s %10d %10d %12d %14.3f\n", "ring",
		ring.Vertices(), ring.Edges(), res.Size, 2*float64(res.Size)/float64(n))

	// Triangular-ish graph with many odd cycles.
	tri := make([][2]int, 0, 3*n/2)
	for i := 0; i+2 < n; i += 2 {
		tri = append(tri, [2]int{i, i + 1}, [2]int{i + 1, i + 2}, [2]int{i, i + 2})
	}
	trig, err := bipartite.NewUndirected(n, tri)
	if err != nil {
		panic(err)
	}
	res = trig.Match(&bipartite.Options{ScalingIterations: 2, Seed: 3})
	if err := trig.Validate(res.Mate); err != nil {
		panic(err)
	}
	fmt.Printf("%12s %10d %10d %12d %14.3f\n", "triangles",
		trig.Vertices(), trig.Edges(), res.Size, 2*float64(res.Size)/float64(n))

	fmt.Println("\nall matchings validated ✓ (odd cycles handled by the cycle-walking phase)")
}
