// Deficient: heuristics and scaling on matrices WITHOUT perfect matchings
// (the paper's §3.3). The Dulmage–Mendelsohn decomposition splits the
// matrix into horizontal/square/vertical parts; Sinkhorn–Knopp scaling
// drives the entries that cannot belong to any maximum matching (the "*"
// blocks) toward zero, which is why the heuristics keep working on
// deficient and rectangular inputs.
//
//	go run ./examples/deficient
package main

import (
	"fmt"

	bipartite "repro"
)

func main() {
	// A rectangular, rank-deficient random graph: 50k x 60k, avg degree 3.
	g := bipartite.RandomER(50000, 60000, 3, 3)
	fmt.Printf("graph: %d x %d, %d edges\n", g.Rows(), g.Cols(), g.Edges())

	sprank := g.Sprank()
	fmt.Printf("sprank: %d (deficiency: %d rows cannot be matched)\n\n",
		sprank, g.Rows()-sprank)

	// Dulmage–Mendelsohn: the square part S has a perfect matching; H has
	// extra columns; V extra rows.
	c := g.DulmageMendelsohn()
	fmt.Printf("Dulmage-Mendelsohn coarse decomposition:\n")
	fmt.Printf("  H (horizontal): %7d rows x %7d cols\n", c.HR, c.HC)
	fmt.Printf("  S (square):     %7d rows x %7d cols\n", c.SR, c.SC)
	fmt.Printf("  V (vertical):   %7d rows x %7d cols\n", c.VR, c.VC)
	_, blocks := g.FineDecomposition(c)
	fmt.Printf("  fine blocks in S: %d\n\n", blocks)

	// Quality vs scaling iterations: the paper's observation is that a
	// handful of iterations suffice even without total support.
	fmt.Printf("%6s %12s %12s %14s\n", "iters", "one-sided", "two-sided", "scaling error")
	for _, iters := range []int{0, 1, 5, 10} {
		opt := &bipartite.Options{ScalingIterations: iters, Seed: 9}
		one, err := g.OneSidedMatch(opt)
		if err != nil {
			panic(err)
		}
		two, err := g.TwoSidedMatch(opt)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%6d %12.4f %12.4f %14.4g\n", iters,
			float64(one.Matching.Size)/float64(sprank),
			float64(two.Matching.Size)/float64(sprank),
			two.Scaling.Error)
	}
	fmt.Println("\n(compare with Table 2: quality climbs with iterations, and the")
	fmt.Println(" two-sided heuristic stays near its 0.866 conjecture even here)")
}
