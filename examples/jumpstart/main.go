// Jumpstart: the use case that motivates cheap matching heuristics in the
// paper's introduction — initializing an exact maximum-matching solver.
// A good warm start removes most augmenting-path searches.
//
//	go run ./examples/jumpstart
package main

import (
	"fmt"
	"time"

	bipartite "repro"
)

func run(g *bipartite.Graph, name string, warm *bipartite.Matching) {
	start := time.Now()
	mt, freeRows := g.MaximumMatchingFrom(warm)
	elapsed := time.Since(start)
	fmt.Printf("%-22s searches=%8d  matched=%8d  time=%8v\n",
		name, freeRows, mt.Size, elapsed.Round(time.Millisecond))
}

func main() {
	// A mesh-like instance: augmenting paths get long, so warm starts pay.
	g := bipartite.Grid3D(60, 60, 60, false)
	fmt.Printf("graph: %d vertices per side, %d edges\n\n", g.Rows(), g.Edges())

	// Cold exact solve: every row needs an augmenting-path search.
	run(g, "cold MC21", nil)

	// Warm starts of increasing quality.
	cheap := g.CheapRandomVertex(7)
	run(g, "cheap-vertex + MC21", cheap)

	ksMt, _ := g.KarpSipser(7)
	run(g, "karp-sipser + MC21", ksMt)

	one, err := g.OneSidedMatch(&bipartite.Options{ScalingIterations: 5, Seed: 7})
	if err != nil {
		panic(err)
	}
	run(g, "one-sided + MC21", one.Matching)

	two, err := g.TwoSidedMatch(&bipartite.Options{ScalingIterations: 5, Seed: 7})
	if err != nil {
		panic(err)
	}
	run(g, "two-sided + MC21", two.Matching)

	// The declarative form of the whole pipeline: one Spec asks for a
	// best-of-4 TwoSided ensemble (one shared scaling) refined to maximum
	// cardinality — heuristic jump-start and exact augmentation in a
	// single request, the same request type the batch layer and
	// cmd/matchserve execute.
	start := time.Now()
	res, err := g.Match(bipartite.Spec{
		Algorithm: bipartite.AlgTwoSided,
		Seed:      7,
		Ensemble:  4,
		Refine:    bipartite.RefineExact,
	}, &bipartite.Options{ScalingIterations: 5})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nSpec{TwoSided, Ensemble: 4, Refine: Exact}:\n")
	fmt.Printf("  winner seed %d of %d candidates, heuristic %d -> exact %d, time %v\n",
		res.WinnerSeed, res.Candidates, res.HeuristicSize, res.Matching.Size,
		time.Since(start).Round(time.Millisecond))
}
