// Serving flow: the same many-small-requests workload served three ways —
// one-shot calls, a reused Matcher session, and the batching Server — to
// show when each tier pays off.
//
//	go run ./examples/server
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	bipartite "repro"
)

const (
	requests = 400
	rows     = 20000
)

func main() {
	// A small instance: the regime where per-call setup (scaling, buffer
	// allocation, dispatch) rivals the kernels themselves.
	g := bipartite.RandomER(rows, rows, 4, 42)
	fmt.Printf("instance: %d + %d vertices, %d edges; %d requests\n\n",
		g.Rows(), g.Cols(), g.Edges(), requests)
	opt := &bipartite.Options{ScalingIterations: 5}

	// Tier 1: one-shot calls. Every request rescales the graph and
	// reallocates every workspace.
	start := time.Now()
	size := 0
	for seed := uint64(1); seed <= requests; seed++ {
		o := *opt
		o.Seed = seed
		res, err := g.TwoSidedMatch(&o)
		if err != nil {
			panic(err)
		}
		size = res.Matching.Size
	}
	report("one-shot", start, size)

	// Tier 2: a Matcher session. The scaling is computed once and every
	// workspace is resident, so each request is just the sampling and
	// Karp-Sipser kernels.
	m := g.NewMatcher(opt)
	start = time.Now()
	for seed := uint64(1); seed <= requests; seed++ {
		res, err := m.TwoSided(seed)
		if err != nil {
			panic(err)
		}
		size = res.Matching.Size
	}
	report("matcher", start, size)

	// Tier 3: the batching Server under concurrent load. Requests from
	// many submitters ride shared pool-wide batches on warm per-slot
	// arenas (one shared scaling per graph); each response is still
	// deterministic per (graph, op, seed). The admission queue is bounded:
	// were the submitters to outrun it, the overflow would fail fast with
	// bipartite.ErrOverloaded instead of queueing without bound, and
	// Request.Ctx would let each call carry a deadline.
	srv := bipartite.NewServerConfig(opt, bipartite.ServerConfig{MaxBatch: 64, Queue: 512})
	defer srv.Close()
	const submitters = 8
	start = time.Now()
	var wg sync.WaitGroup
	var lastSize atomic.Int64
	for s := 0; s < submitters; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := s; k < requests; k += submitters {
				resp := srv.Match(bipartite.Request{Graph: g, Op: bipartite.OpTwoSided, Seed: uint64(k + 1)})
				if resp.Err != nil {
					panic(resp.Err)
				}
				if k == requests-1 {
					lastSize.Store(int64(resp.Matching.Size))
				}
			}
		}()
	}
	wg.Wait()
	report("server", start, int(lastSize.Load()))
	st := srv.Stats()
	fmt.Printf("\nserver batching: %d requests in %d batches (mean %.1f/batch, %d rejected)\n",
		st.Requests, st.Batches, float64(st.Requests)/float64(st.Batches), st.Rejected)
}

func report(name string, start time.Time, size int) {
	elapsed := time.Since(start)
	fmt.Printf("%-9s %8.0f req/s   (%v total, last size %d)\n",
		name, requests/elapsed.Seconds(), elapsed.Round(time.Millisecond), size)
}
