package bipartite

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countScaleRuns installs the scaling counter hook for the duration of the
// test and returns the counter. Tests using it must not run in parallel
// with each other (the hook is process-global); none of this package's
// tests call t.Parallel, so plain use is safe.
func countScaleRuns(t *testing.T) *atomic.Int64 {
	t.Helper()
	var n atomic.Int64
	hook := func() { n.Add(1) }
	scaleRunHook.Store(&hook)
	t.Cleanup(func() { scaleRunHook.Store(nil) })
	return &n
}

// TestServerSharedScalingOncePerGraph is the acceptance gate for the
// per-graph scaling once-cell: a warm batch of N requests on one
// registered graph performs exactly ONE scaling run, however many slots
// serve it and however the collector batches it — where the pre-cell
// engine performed one per slot.
func TestServerSharedScalingOncePerGraph(t *testing.T) {
	g := RandomER(1200, 1200, 4, 77)
	// Reference first, outside the counter's scope.
	ref, err := g.TwoSidedMatch(&Options{ScalingIterations: 5, Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	pool := NewPool(4)
	defer pool.Close()
	scales := countScaleRuns(t)
	srv := NewServer(&Options{ScalingIterations: 5, Pool: pool}, 64)
	defer srv.Close()

	const submitters, perSubmitter = 8, 8
	var wg sync.WaitGroup
	errs := make(chan error, submitters)
	for s := 0; s < submitters; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perSubmitter; k++ {
				op := OpTwoSided
				if k%2 == 1 {
					op = OpOneSided
				}
				resp := srv.Match(Request{Graph: g, Op: op, Seed: uint64(s*perSubmitter + k + 1)})
				if resp.Err != nil {
					errs <- fmt.Errorf("submitter %d req %d: %w", s, k, resp.Err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := scales.Load(); n != 1 {
		t.Fatalf("served %d requests with %d scaling runs, want exactly 1",
			submitters*perSubmitter, n)
	}
	// The shared scaling must not perturb results: one more request
	// reproduces the one-shot width-1 reference bit for bit.
	resp := srv.Match(Request{Graph: g, Op: OpTwoSided, Seed: 9})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	cmpMates(t, "post-warmup determinism", resp.Matching, ref.Matching)
}

// TestMatchBatchSharedScalingPerGraph: the one-shot batch entry point
// shares scalings too — one run per distinct graph, not per (slot, graph).
func TestMatchBatchSharedScalingPerGraph(t *testing.T) {
	g1 := RandomER(900, 900, 4, 5)
	g2 := FullyIndecomposable(700, 2, 6)
	pool := NewPool(4)
	defer pool.Close()
	scales := countScaleRuns(t)
	var reqs []Request
	for s := uint64(1); s <= 24; s++ {
		reqs = append(reqs,
			Request{Graph: g1, Op: OpTwoSided, Seed: s},
			Request{Graph: g2, Op: OpOneSided, Seed: s},
			Request{Graph: g1, Op: OpKarpSipser, Seed: s}, // no scaling needed
		)
	}
	for i, resp := range MatchBatch(reqs, &Options{ScalingIterations: 5, Pool: pool}) {
		if resp.Err != nil {
			t.Fatalf("req %d: %v", i, resp.Err)
		}
	}
	if n := scales.Load(); n != 2 {
		t.Fatalf("%d scaling runs for 2 distinct scaled graphs, want 2", n)
	}
}

// TestServerOverloadedWhenQueueFull fills the bounded admission queue
// deterministically (the collector is stalled via the batch test hook) and
// checks the overflow submission fails fast with ErrOverloaded, stalled
// requests still complete, and no goroutine leaks — Match allocates no
// goroutine, so rejected and served requests alike leave none behind.
func TestServerOverloadedWhenQueueFull(t *testing.T) {
	g := RandomER(300, 300, 3, 1)
	baseline := runtime.NumGoroutine()

	srv := NewServerConfig(&Options{ScalingIterations: 2, Workers: 1},
		ServerConfig{MaxBatch: 1, Queue: 1})
	release := make(chan struct{})
	entered := make(chan int, 8)
	srv.testHookBatch = func(n int) {
		entered <- n
		<-release
	}

	// First request: admitted, drained into a batch, stalled in the hook.
	first := make(chan Response, 1)
	go func() { first <- srv.Match(Request{Graph: g, Seed: 1}) }()
	<-entered

	// Second request: admitted, fills the queue (depth 1).
	second := make(chan Response, 1)
	go func() { second <- srv.Match(Request{Graph: g, Seed: 2}) }()
	waitFor(t, "queue to fill", func() bool { return len(srv.jobs) == 1 })

	// Third request: the queue is full — rejected immediately, from the
	// submitting goroutine, with no kernel work and no new goroutine.
	start := time.Now()
	resp := srv.Match(Request{Graph: g, Seed: 3})
	if !errors.Is(resp.Err, ErrOverloaded) {
		t.Fatalf("overflow submission returned %v, want ErrOverloaded", resp.Err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("rejection took %v, want immediate", elapsed)
	}

	// Release the collector: the two admitted requests complete normally.
	close(release)
	for i, ch := range []chan Response{first, second} {
		select {
		case r := <-ch:
			if r.Err != nil {
				t.Fatalf("admitted request %d failed: %v", i, r.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("admitted request %d never completed", i)
		}
	}
	st := srv.Stats()
	if st.Rejected != 1 {
		t.Fatalf("stats: %d rejected, want 1", st.Rejected)
	}
	if st.Requests != 2 {
		t.Fatalf("stats: %d served, want 2", st.Requests)
	}
	srv.Close()

	// goleak-style count: everything the server and its callers spawned
	// must be gone (the collector exits in Close; Match spawns nothing).
	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline
	})
}

// waitFor polls cond (it should become true within milliseconds) and
// fails the test after a generous timeout.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerExpiredContextSkipsKernels: a request whose context is already
// done is answered with the context's error before any kernel (scaling
// included) runs.
func TestServerExpiredContextSkipsKernels(t *testing.T) {
	g := RandomER(2000, 2000, 4, 3)
	scales := countScaleRuns(t)
	srv := NewServer(&Options{ScalingIterations: 5, Workers: 1}, 16)
	defer srv.Close()

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	resp := srv.Match(Request{Graph: g, Op: OpTwoSided, Seed: 1, Ctx: canceled})
	if !errors.Is(resp.Err, context.Canceled) {
		t.Fatalf("canceled request returned %v, want context.Canceled", resp.Err)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel2()
	resp = srv.Match(Request{Graph: g, Op: OpTwoSided, Seed: 1, Ctx: expired})
	if !errors.Is(resp.Err, context.DeadlineExceeded) {
		t.Fatalf("expired request returned %v, want context.DeadlineExceeded", resp.Err)
	}

	if n := scales.Load(); n != 0 {
		t.Fatalf("%d scaling runs for dead-on-arrival requests, want 0", n)
	}
}

// TestMatchBatchExpiredContextInBatch: expiry is honored inside the
// engine, per request — dead requests answer with their context error,
// live neighbors in the same batch are unaffected.
func TestMatchBatchExpiredContextInBatch(t *testing.T) {
	g := RandomER(800, 800, 4, 3)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	out := MatchBatch([]Request{
		{Graph: g, Seed: 1},
		{Graph: g, Seed: 2, Ctx: canceled},
		{Graph: g, Seed: 3, Ctx: context.Background()},
	}, &Options{ScalingIterations: 5})
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("live requests failed: %v %v", out[0].Err, out[2].Err)
	}
	if !errors.Is(out[1].Err, context.Canceled) {
		t.Fatalf("dead request returned %v, want context.Canceled", out[1].Err)
	}
	if out[1].Matching != nil {
		t.Fatal("dead request produced a matching")
	}
}

// TestMatcherCancelMidRun arms the session cancellation hook so it fires
// after a few checkpoint polls — mid-pipeline, deterministically — and
// checks every op aborts with ErrCanceled (nil matching for KarpSipser)
// and that the session serves correct results again afterwards.
func TestMatcherCancelMidRun(t *testing.T) {
	g := RandomER(3000, 3000, 4, 21)
	want, err := g.TwoSidedMatch(&Options{ScalingIterations: 5, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	m := g.NewMatcher(&Options{ScalingIterations: 5, Workers: 1})
	var polls atomic.Int64
	fireAfter := func(n int64) func() bool {
		polls.Store(0)
		return func() bool { return polls.Add(1) > n }
	}

	m.setCancel(fireAfter(3))
	if _, err := m.TwoSided(5); !errors.Is(err, ErrCanceled) {
		t.Fatalf("TwoSided under mid-run cancel: %v, want ErrCanceled", err)
	}
	m.setCancel(fireAfter(2))
	if _, err := m.OneSided(5); !errors.Is(err, ErrCanceled) {
		t.Fatalf("OneSided under mid-run cancel: %v, want ErrCanceled", err)
	}
	m.setCancel(fireAfter(1))
	if mt, _ := m.KarpSipser(5); mt != nil {
		t.Fatal("KarpSipser under cancel returned a matching, want nil")
	}

	// Cancellation must not poison the session: cleared hook, correct
	// (reference-identical) result.
	m.setCancel(nil)
	res, err := m.TwoSided(5)
	if err != nil {
		t.Fatal(err)
	}
	cmpMates(t, "post-cancel reuse", res.Matching, want.Matching)
}

// TestServerCancelWhileQueued: a caller whose context dies while its
// request waits in the queue gets its context error promptly; the server
// is not wedged for later callers.
func TestServerCancelWhileQueued(t *testing.T) {
	g := RandomER(300, 300, 3, 1)
	srv := NewServerConfig(&Options{ScalingIterations: 2, Workers: 1},
		ServerConfig{MaxBatch: 1, Queue: 2})
	release := make(chan struct{})
	entered := make(chan int, 8)
	srv.testHookBatch = func(n int) {
		entered <- n
		select {
		case <-release:
		case <-time.After(10 * time.Second):
		}
	}
	first := make(chan Response, 1)
	go func() { first <- srv.Match(Request{Graph: g, Seed: 1}) }()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan Response, 1)
	go func() { queued <- srv.Match(Request{Graph: g, Seed: 2, Ctx: ctx}) }()
	waitFor(t, "queue to fill", func() bool { return len(srv.jobs) == 1 })
	cancel()
	select {
	case r := <-queued:
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("queued-then-canceled request returned %v, want context.Canceled", r.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled caller still blocked after 5s")
	}

	close(release)
	if r := <-first; r.Err != nil {
		t.Fatal(r.Err)
	}
	srv.Close()
}

// TestServerClosedRejects: submissions after Close fail with
// ErrServerClosed instead of panicking on the closed queue. (Close
// concurrent with Match remains documented as disallowed; this covers the
// sequential after-Close case.)
func TestServerClosedRejects(t *testing.T) {
	srv := NewServer(nil, 4)
	srv.Close()
	resp := srv.Match(Request{Graph: RandomER(50, 50, 2, 1), Seed: 1})
	if !errors.Is(resp.Err, ErrServerClosed) {
		t.Fatalf("post-Close Match returned %v, want ErrServerClosed", resp.Err)
	}
}

// TestServerCloseConcurrentWithMatch hammers Match from several
// goroutines while Close lands mid-traffic: submissions racing the close
// must resolve to ErrServerClosed (never a send-on-closed-channel panic),
// and responses admitted before the close complete normally — this is the
// shutdown path cmd/matchserve takes when its listener dies.
func TestServerCloseConcurrentWithMatch(t *testing.T) {
	g := RandomER(400, 400, 3, 1)
	for round := 0; round < 4; round++ {
		srv := NewServer(&Options{ScalingIterations: 2, Workers: 1}, 8)
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for s := 0; s < 4; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for seed := uint64(1); ; seed++ {
					resp := srv.Match(Request{Graph: g, Seed: seed})
					switch {
					case resp.Err == nil, errors.Is(resp.Err, ErrOverloaded):
					case errors.Is(resp.Err, ErrServerClosed):
						return
					default:
						t.Errorf("unexpected error during shutdown race: %v", resp.Err)
						return
					}
					select {
					case <-stop:
						// The server closed but this goroutine kept
						// winning the race; stop anyway.
						return
					default:
					}
				}
			}()
		}
		time.Sleep(2 * time.Millisecond)
		srv.Close()
		close(stop)
		wg.Wait()
	}
}

// TestMatchBatchHeterogeneousShapes routes graphs of several distinct
// shapes — more than slotArenaCap — through a width-1 pool, forcing the
// slot's shape-keyed arena cache to recycle, and checks every response
// still equals its width-1 one-shot reference.
func TestMatchBatchHeterogeneousShapes(t *testing.T) {
	shapes := []*Graph{
		RandomER(300, 300, 3, 1),
		RandomER(450, 200, 3, 2),
		RandomER(200, 450, 3, 3),
		FullyIndecomposable(350, 2, 4),
		RandomER(512, 512, 4, 5),
		Grid2D(20, 25),
	}
	base := Options{ScalingIterations: 5, Seed: 3}
	var reqs []Request
	for round := 0; round < 3; round++ {
		for i, g := range shapes {
			reqs = append(reqs, Request{Graph: g, Op: OpTwoSided, Seed: uint64(round*len(shapes) + i + 1)})
		}
	}
	want := make([]*Matching, len(reqs))
	for i, req := range reqs {
		want[i] = batchReference(t, req, base)
	}
	pool := NewPool(1)
	defer pool.Close()
	opt := base
	opt.Pool = pool
	for i, resp := range MatchBatch(reqs, &opt) {
		if resp.Err != nil {
			t.Fatalf("req %d: %v", i, resp.Err)
		}
		cmpMates(t, fmt.Sprintf("heterogeneous req %d", i), resp.Matching, want[i])
	}
}

// TestServerMatchBatchPartialOverload: a burst larger than the admission
// queue gets per-slot ErrOverloaded responses for the overflow while the
// admitted prefix is served.
func TestServerMatchBatchPartialOverload(t *testing.T) {
	g := RandomER(200, 200, 3, 1)
	srv := NewServerConfig(&Options{ScalingIterations: 2, Workers: 1},
		ServerConfig{MaxBatch: 4, Queue: 4})
	defer srv.Close()
	release := make(chan struct{})
	entered := make(chan int, 64)
	srv.testHookBatch = func(n int) {
		entered <- n
		select {
		case <-release:
		case <-time.After(10 * time.Second):
		}
	}
	// Stall the collector on a first request so the burst below meets a
	// full, static queue.
	first := make(chan Response, 1)
	go func() { first <- srv.Match(Request{Graph: g, Seed: 99}) }()
	<-entered

	burst := make([]Request, 10)
	for i := range burst {
		burst[i] = Request{Graph: g, Seed: uint64(i + 1)}
	}
	done := make(chan []Response, 1)
	go func() { done <- srv.MatchBatch(burst) }()
	waitFor(t, "queue to fill", func() bool { return len(srv.jobs) == 4 })
	close(release)

	out := <-done
	served, overloaded := 0, 0
	for i, resp := range out {
		switch {
		case resp.Err == nil:
			served++
		case errors.Is(resp.Err, ErrOverloaded):
			overloaded++
		default:
			t.Fatalf("req %d: unexpected error %v", i, resp.Err)
		}
	}
	if served != 4 || overloaded != 6 {
		t.Fatalf("served %d / overloaded %d, want 4 / 6", served, overloaded)
	}
	if r := <-first; r.Err != nil {
		t.Fatal(r.Err)
	}
}
