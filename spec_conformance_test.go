package bipartite

import (
	"errors"
	"fmt"
	"testing"
)

// The Spec conformance suite: the declarative engine (Matcher.Run) is the
// only code path that dispatches matching kernels, and every legacy entry
// point is a thin wrapper over it. These tests pin (a) bit-identity of the
// wrappers against their Spec equivalents at fixed seeds, (b) the
// RefineExact guarantee |M| == Sprank on the quality-suite families,
// (c) the one-scaling-per-ensemble economy and deterministic winners, and
// (d) the Op→Spec shim of the batch layer plus scale-cache eviction.

// specConformanceGraphs are small instances spanning structure classes:
// random with total support, complete (dense), mesh, and rank-deficient.
func specConformanceGraphs() []struct {
	name string
	g    *Graph
} {
	return []struct {
		name string
		g    *Graph
	}{
		{"er-600", RandomER(600, 600, 4, 3)},
		{"fullyind-500", FullyIndecomposable(500, 2, 5)},
		{"road-800", RoadNetwork(800, 2.5, 9)}, // slightly rank-deficient
	}
}

// TestSpecLegacyWrappersBitIdentical gates the api_redesign acceptance
// criterion: every legacy entry point returns exactly what its Spec
// equivalent returns at a fixed seed — same mates, same sizes, same
// scaling vectors, same Karp–Sipser phase statistics. Workers: 1 keeps
// the comparison bitwise (the package determinism contract).
func TestSpecLegacyWrappersBitIdentical(t *testing.T) {
	for _, tc := range specConformanceGraphs() {
		g := tc.g
		for _, seed := range []uint64{1, 7, 42} {
			opt := &Options{ScalingIterations: 5, Workers: 1, Seed: seed}

			want, err := g.TwoSidedMatch(opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := g.Match(Spec{Algorithm: AlgTwoSided, Seed: seed}, &Options{ScalingIterations: 5, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			cmpMates(t, tc.name+" twosided", got.Matching, want.Matching)
			cmpScalings(t, tc.name+" twosided scaling", got.Scaling, want.Scaling)
			if got.Candidates != 1 || got.WinnerSeed != seed || got.HeuristicSize != got.Matching.Size {
				t.Fatalf("%s twosided: provenance (%d, %d, %d) want (1, %d, %d)", tc.name,
					got.Candidates, got.WinnerSeed, got.HeuristicSize, seed, got.Matching.Size)
			}

			wantOne, err := g.OneSidedMatch(opt)
			if err != nil {
				t.Fatal(err)
			}
			gotOne, err := g.Match(Spec{Algorithm: AlgOneSided, Seed: seed}, &Options{ScalingIterations: 5, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			cmpMates(t, tc.name+" onesided", gotOne.Matching, wantOne.Matching)

			wantKS, wantSt := g.KarpSipser(seed)
			resKS, err := g.Match(Spec{Algorithm: AlgKarpSipser, Seed: seed}, nil)
			if err != nil {
				t.Fatal(err)
			}
			cmpMates(t, tc.name+" karpsipser", resKS.Matching, wantKS)
			if resKS.KSStats == nil || *resKS.KSStats != wantSt {
				t.Fatalf("%s karpsipser stats %+v want %+v", tc.name, resKS.KSStats, wantSt)
			}
			if resKS.Scaling != nil {
				t.Fatalf("%s karpsipser: unexpected scaling in result", tc.name)
			}

			wantKSP := g.KarpSipserParallel(seed, 1)
			gotKSP, err := g.Match(Spec{Algorithm: AlgKarpSipserParallel, Seed: seed}, &Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			cmpMates(t, tc.name+" karpsipser-parallel", gotKSP.Matching, wantKSP)

			wantCE := g.CheapRandomEdge(seed)
			gotCE, err := g.Match(Spec{Algorithm: AlgCheapEdge, Seed: seed}, nil)
			if err != nil {
				t.Fatal(err)
			}
			cmpMates(t, tc.name+" cheap-edge", gotCE.Matching, wantCE)

			wantCV := g.CheapRandomVertex(seed)
			gotCV, err := g.Match(Spec{Algorithm: AlgCheapVertex, Seed: seed}, nil)
			if err != nil {
				t.Fatal(err)
			}
			cmpMates(t, tc.name+" cheap-vertex", gotCV.Matching, wantCV)
		}
	}
}

// TestSpecRefineExactReachesSprank is the jump-start acceptance gate:
// Refine: Exact completes any heuristic matching to maximum cardinality
// (|M| == Sprank) on the quality-suite families — including a
// rank-deficient instance, where no heuristic alone can reach the bound.
func TestSpecRefineExactReachesSprank(t *testing.T) {
	families := qualityGraphs()
	families = append(families, struct {
		name string
		g    *Graph
	}{"road-1000", RoadNetwork(1000, 2.5, 4)})
	for _, tc := range families {
		sprank := tc.g.Sprank()
		for _, ref := range []Refinement{RefineExact, RefinePushRelabel} {
			for _, alg := range []Algorithm{AlgTwoSided, AlgOneSided, AlgKarpSipser, AlgCheapVertex} {
				res, err := tc.g.Match(Spec{Algorithm: alg, Seed: 3, Refine: ref}, &Options{ScalingIterations: 5})
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", tc.name, alg, ref, err)
				}
				if res.Matching.Size != sprank {
					t.Fatalf("%s/%s/%s: refined size %d want sprank %d", tc.name, alg, ref, res.Matching.Size, sprank)
				}
				if err := tc.g.ValidateMatching(res.Matching); err != nil {
					t.Fatalf("%s/%s/%s: %v", tc.name, alg, ref, err)
				}
				if !tc.g.CertifyMaximum(res.Matching) {
					t.Fatalf("%s/%s/%s: refined matching fails the König certificate", tc.name, alg, ref)
				}
				if res.HeuristicSize > res.Matching.Size {
					t.Fatalf("%s/%s/%s: heuristic size %d exceeds refined size %d",
						tc.name, alg, ref, res.HeuristicSize, res.Matching.Size)
				}
				if !res.Refined {
					t.Fatalf("%s/%s/%s: Refined flag not set", tc.name, alg, ref)
				}
			}
		}
	}
}

// TestSpecEnsembleSingleScalingDeterministicWinner gates the ensemble
// acceptance criteria: a best-of-8 ensemble on a warm Matcher performs
// exactly one scaling run (the counter hook proves it), its winner is
// deterministic, and the best-of size dominates every individual
// candidate.
func TestSpecEnsembleSingleScalingDeterministicWinner(t *testing.T) {
	g := RandomER(1000, 1000, 3, 17)
	scales := countScaleRuns(t)

	run := func() *MatchResult {
		m := g.NewMatcher(&Options{ScalingIterations: 5, Workers: 1})
		res, err := m.Run(Spec{Algorithm: AlgTwoSided, Seed: 1, Ensemble: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run()
	if n := scales.Load(); n != 1 {
		t.Fatalf("best-of-8 on a cold matcher: %d scaling runs, want exactly 1", n)
	}
	if first.Candidates != 8 {
		t.Fatalf("Candidates = %d, want 8 (no target set)", first.Candidates)
	}

	// The winner dominates each individual candidate and carries its seed.
	m := g.NewMatcher(&Options{ScalingIterations: 5, Workers: 1})
	bestSize, bestSeed := -1, uint64(0)
	for s := uint64(1); s <= 8; s++ {
		res, err := m.TwoSided(s)
		if err != nil {
			t.Fatal(err)
		}
		if res.Matching.Size > bestSize {
			bestSize, bestSeed = res.Matching.Size, s
		}
	}
	if first.Matching.Size != bestSize || first.WinnerSeed != bestSeed {
		t.Fatalf("ensemble winner (size %d, seed %d) want (size %d, seed %d)",
			first.Matching.Size, first.WinnerSeed, bestSize, bestSeed)
	}
	if n := scales.Load(); n != 2 { // the candidate loop's own matcher scaled once
		t.Fatalf("after individual candidates: %d scaling runs, want 2", n)
	}
	// A second cold ensemble scales once more, and the winner reproduces
	// bit for bit.
	second := run()
	if n := scales.Load(); n != 3 {
		t.Fatalf("two cold ensembles + candidate sweep: %d scaling runs, want 3", n)
	}
	cmpMates(t, "deterministic ensemble winner", second.Matching, first.Matching)
	if second.WinnerSeed != first.WinnerSeed {
		t.Fatalf("winner seed drifted: %d then %d", first.WinnerSeed, second.WinnerSeed)
	}

	// Warm-matcher follow-up ensemble on the same session: still no
	// rescale.
	mm := g.NewMatcher(&Options{ScalingIterations: 5, Workers: 1})
	if _, err := mm.TwoSided(1); err != nil { // warm the scaling
		t.Fatal(err)
	}
	before := scales.Load()
	if _, err := mm.Run(Spec{Ensemble: 8, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	if n := scales.Load(); n != before {
		t.Fatalf("warm ensemble rescaled: %d -> %d runs", before, n)
	}
}

// TestSpecEnsembleTargetEarlyStop: a modest Target stops the sweep after
// the first candidate that satisfies it (TwoSided clears 0.5·sprank-bound
// in one shot), while Target: 1 on a graph the heuristic cannot saturate
// runs the whole ensemble.
func TestSpecEnsembleTargetEarlyStop(t *testing.T) {
	g := RandomER(1000, 1000, 4, 23)
	res, err := g.Match(Spec{Ensemble: 8, Seed: 1, Target: 0.5}, &Options{ScalingIterations: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates != 1 {
		t.Fatalf("target 0.5: ran %d candidates, want 1", res.Candidates)
	}
	if res.Matching.Size < g.SprankUpperBound()/2 {
		t.Fatalf("early-stopped size %d below the target it claimed to meet", res.Matching.Size)
	}

	hard := HardForKarpSipser(300, 6) // KS quality degrades here by design
	resHard, err := hard.Match(Spec{Algorithm: AlgKarpSipser, Ensemble: 4, Seed: 1, Target: 1.0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resHard.Candidates != 4 && resHard.Matching.Size != hard.SprankUpperBound() {
		t.Fatalf("target 1.0: stopped after %d candidates at size %d < upper bound %d",
			resHard.Candidates, resHard.Matching.Size, hard.SprankUpperBound())
	}
}

// TestSpecValidate: malformed specs fail fast with precise errors — from
// Run, from Graph.Match and from the batch layer — before any kernel runs.
func TestSpecValidate(t *testing.T) {
	g := Complete(16)
	bad := []Spec{
		{Algorithm: Algorithm(99)},
		{Algorithm: -1},
		{Refine: Refinement(7)},
		{Ensemble: -2},
		{Target: 1.5},
		{Target: -0.25},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Fatalf("spec %d (%+v): Validate accepted it", i, spec)
		}
		if _, err := g.Match(spec, nil); err == nil {
			t.Fatalf("spec %d (%+v): Match accepted it", i, spec)
		}
		resp := MatchBatch([]Request{{Graph: g, Spec: spec}}, nil)
		if resp[0].Err == nil {
			t.Fatalf("spec %d (%+v): batch accepted it", i, spec)
		}
	}
	// Valid specs round-trip their wire names.
	for _, alg := range []Algorithm{AlgTwoSided, AlgOneSided, AlgKarpSipser, AlgKarpSipserParallel, AlgCheapEdge, AlgCheapVertex} {
		back, err := ParseAlgorithm(alg.String())
		if err != nil || back != alg {
			t.Fatalf("algorithm %v does not round-trip: %v %v", alg, back, err)
		}
	}
	for _, ref := range []Refinement{RefineNone, RefineExact, RefinePushRelabel, RefineGraft} {
		back, err := ParseRefinement(ref.String())
		if err != nil || back != ref {
			t.Fatalf("refinement %v does not round-trip: %v %v", ref, back, err)
		}
	}
}

// TestSpecBatchOpShim: the deprecated Request.Op/Seed fields resolve to
// the same responses as their Spec equivalents, and an explicit
// Spec.Algorithm wins over a stale Op.
func TestSpecBatchOpShim(t *testing.T) {
	g := RandomER(700, 700, 4, 31)
	ops := []Op{OpTwoSided, OpOneSided, OpKarpSipser}
	legacy := make([]Request, 0, 3*len(ops))
	speced := make([]Request, 0, 3*len(ops))
	for _, op := range ops {
		for s := uint64(1); s <= 3; s++ {
			legacy = append(legacy, Request{Graph: g, Op: op, Seed: s})
			speced = append(speced, Request{Graph: g, Spec: Spec{Algorithm: op.Algorithm(), Seed: s}})
		}
	}
	opt := &Options{ScalingIterations: 5}
	outLegacy := MatchBatch(legacy, opt)
	outSpec := MatchBatch(speced, opt)
	for i := range outLegacy {
		if outLegacy[i].Err != nil || outSpec[i].Err != nil {
			t.Fatalf("req %d: errs %v / %v", i, outLegacy[i].Err, outSpec[i].Err)
		}
		cmpMates(t, "op shim", outSpec[i].Matching, outLegacy[i].Matching)
	}
	// Precedence: a set Spec.Algorithm silences Op entirely.
	mixed := MatchBatch([]Request{{Graph: g, Op: OpKarpSipser, Spec: Spec{Algorithm: AlgOneSided, Seed: 2}}}, opt)
	pure := MatchBatch([]Request{{Graph: g, Spec: Spec{Algorithm: AlgOneSided, Seed: 2}}}, opt)
	if mixed[0].Err != nil || pure[0].Err != nil {
		t.Fatal(mixed[0].Err, pure[0].Err)
	}
	cmpMates(t, "spec wins over op", mixed[0].Matching, pure[0].Matching)
}

// TestSpecBatchEnsembleRefine: full specs ride the batch layer — a
// best-of-4 refined request comes back maximum, and ensembles still share
// the per-graph scaling cell (1 run per graph however many candidates).
func TestSpecBatchEnsembleRefine(t *testing.T) {
	g := RandomER(800, 800, 4, 41)
	sprank := g.Sprank()
	scales := countScaleRuns(t)
	reqs := []Request{
		{Graph: g, Spec: Spec{Algorithm: AlgTwoSided, Seed: 1, Ensemble: 4, Refine: RefineExact}},
		{Graph: g, Spec: Spec{Algorithm: AlgTwoSided, Seed: 5, Ensemble: 4}},
		{Graph: g, Spec: Spec{Algorithm: AlgOneSided, Seed: 9, Refine: RefineExact}},
	}
	out := MatchBatch(reqs, &Options{ScalingIterations: 5})
	for i, resp := range out {
		if resp.Err != nil {
			t.Fatalf("req %d: %v", i, resp.Err)
		}
		if err := g.ValidateMatching(resp.Matching); err != nil {
			t.Fatalf("req %d: %v", i, err)
		}
	}
	if out[0].Matching.Size != sprank || out[2].Matching.Size != sprank {
		t.Fatalf("refined sizes (%d, %d) want sprank %d", out[0].Matching.Size, out[2].Matching.Size, sprank)
	}
	if n := scales.Load(); n != 1 {
		t.Fatalf("batched ensembles: %d scaling runs for one graph, want 1", n)
	}
	// The Response carries the engine's provenance: refined requests are
	// flagged, ensemble winners report their seed and candidate count, and
	// unrefined responses have HeuristicSize == Matching.Size.
	if !out[0].Refined || !out[2].Refined || out[1].Refined {
		t.Fatalf("Refined flags (%v, %v, %v) want (true, false, true)",
			out[0].Refined, out[1].Refined, out[2].Refined)
	}
	if out[1].WinnerSeed < 5 || out[1].WinnerSeed > 8 || out[1].Candidates < 1 || out[1].Candidates > 4 {
		t.Fatalf("ensemble response provenance: winner seed %d, candidates %d", out[1].WinnerSeed, out[1].Candidates)
	}
	if out[1].HeuristicSize != out[1].Matching.Size {
		t.Fatalf("unrefined response: heuristic size %d != matching size %d",
			out[1].HeuristicSize, out[1].Matching.Size)
	}
	if out[2].Candidates != 1 || out[2].WinnerSeed != 9 || out[2].HeuristicSize > out[2].Matching.Size {
		t.Fatalf("refined single response provenance: (%d, %d, %d)",
			out[2].Candidates, out[2].WinnerSeed, out[2].HeuristicSize)
	}
}

// TestSpecServerDropGraph gates the registry→engine eviction callback:
// dropping a graph's cached scaling forces the next request of that graph
// to rescale, while requests of untouched graphs stay warm.
func TestSpecServerDropGraph(t *testing.T) {
	g := RandomER(600, 600, 4, 51)
	scales := countScaleRuns(t)
	srv := NewServer(&Options{ScalingIterations: 5}, 16)
	defer srv.Close()

	for s := uint64(1); s <= 3; s++ {
		if resp := srv.Match(Request{Graph: g, Spec: Spec{Seed: s}}); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	if n := scales.Load(); n != 1 {
		t.Fatalf("warm server: %d scaling runs, want 1", n)
	}
	srv.DropGraph(g)
	if resp := srv.Match(Request{Graph: g, Spec: Spec{Seed: 4}}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if n := scales.Load(); n != 2 {
		t.Fatalf("after DropGraph: %d scaling runs, want 2 (one recompute)", n)
	}
	// Dropping an unknown graph is a no-op, not a panic.
	srv.DropGraph(Complete(4))
}

// TestSpecErrorsAreTagged: spec validation failures unwrap to a stable
// sentinel-free shape the HTTP layer can rely on (they are not ErrCanceled
// or context errors).
func TestSpecErrorsAreTagged(t *testing.T) {
	_, err := Complete(8).Match(Spec{Target: 3}, nil)
	if err == nil {
		t.Fatal("invalid target accepted")
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatalf("validation error aliases ErrCanceled: %v", err)
	}
}

// TestSpecEnsembleParallelBitIdentical gates this PR's acceptance
// criterion: the parallel ensemble path (candidates fanned out across the
// pool, one width-1 arena per worker) returns a bit-identical result to
// the sequential path at any pool width — same mates, same winner seed,
// same candidate count, same heuristic size, same Karp–Sipser phase
// statistics — across algorithms, refinements and early-stop targets. The
// sequential reference runs at Workers: 1, which is the width the parallel
// path's candidates run at by construction.
func TestSpecEnsembleParallelBitIdentical(t *testing.T) {
	g := RandomER(900, 900, 4, 13)
	specs := []Spec{
		{Algorithm: AlgTwoSided, Seed: 1, Ensemble: 8},
		{Algorithm: AlgTwoSided, Seed: 3, Ensemble: 8, Target: 0.9},
		{Algorithm: AlgTwoSided, Seed: 5, Ensemble: 6, Refine: RefineExact},
		{Algorithm: AlgOneSided, Seed: 2, Ensemble: 8, Refine: RefinePushRelabel},
		{Algorithm: AlgOneSided, Seed: 6, Ensemble: 6, Refine: RefineGraft},
		{Algorithm: AlgOneSided, Seed: 4, Ensemble: 8, Refine: RefineExact, Target: 0.97},
		{Algorithm: AlgKarpSipser, Seed: 1, Ensemble: 5},
		{Algorithm: AlgKarpSipserParallel, Seed: 7, Ensemble: 4},
		{Algorithm: AlgCheapVertex, Seed: 9, Ensemble: 8, Target: 0.6},
	}
	for _, spec := range specs {
		seq := spec
		seq.Sequential = true
		want, err := g.NewMatcher(&Options{ScalingIterations: 5, Workers: 1}).Run(seq)
		if err != nil {
			t.Fatalf("%+v sequential: %v", spec, err)
		}
		wantMt := cloneMatching(want.Matching)
		for _, width := range []int{2, 3, 8} {
			pool := NewPool(width)
			m := g.NewMatcher(&Options{ScalingIterations: 5, Pool: pool})
			got, err := m.Run(spec)
			if err != nil {
				t.Fatalf("%+v width %d: %v", spec, width, err)
			}
			cmpMates(t, fmt.Sprintf("%v/%v width %d", spec.Algorithm, spec.Refine, width), got.Matching, wantMt)
			if got.WinnerSeed != want.WinnerSeed || got.Candidates != want.Candidates ||
				got.HeuristicSize != want.HeuristicSize || got.Refined != want.Refined {
				t.Fatalf("%+v width %d: provenance (%d, %d, %d, %v) want (%d, %d, %d, %v)", spec, width,
					got.WinnerSeed, got.Candidates, got.HeuristicSize, got.Refined,
					want.WinnerSeed, want.Candidates, want.HeuristicSize, want.Refined)
			}
			if spec.Algorithm == AlgKarpSipser && *got.KSStats != *want.KSStats {
				t.Fatalf("%+v width %d: KS stats %+v want %+v", spec, width, *got.KSStats, *want.KSStats)
			}
			pool.Close()
		}
	}
}

// TestSpecEnsembleParallelWinnerStats gates the winner-stats satellite: on
// the parallel path, MatchResult reflects the *winner's* Karp–Sipser phase
// statistics (not the last candidate's, not a mixture), and a parallel
// TwoSided ensemble on a cold session still performs exactly one scaling
// run — the candidates share the session's cached scaling via their
// per-worker arenas.
func TestSpecEnsembleParallelWinnerStats(t *testing.T) {
	g := HardForKarpSipser(300, 5) // KS sizes spread out by seed here
	const k = 6

	// The expected winner, computed the slow way from individual runs.
	bestSize, bestSeed := -1, uint64(0)
	var wantStats KarpSipserStats
	for s := uint64(1); s <= k; s++ {
		mt, st := g.KarpSipser(s)
		if mt.Size > bestSize {
			bestSize, bestSeed, wantStats = mt.Size, s, st
		}
	}

	pool := NewPool(4)
	defer pool.Close()
	res, err := g.NewMatcher(&Options{Pool: pool}).Run(Spec{Algorithm: AlgKarpSipser, Seed: 1, Ensemble: k})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matching.Size != bestSize || res.WinnerSeed != bestSeed {
		t.Fatalf("parallel KS ensemble winner (size %d, seed %d) want (size %d, seed %d)",
			res.Matching.Size, res.WinnerSeed, bestSize, bestSeed)
	}
	if res.KSStats == nil || *res.KSStats != wantStats {
		t.Fatalf("parallel KS ensemble stats %+v want winner's %+v", res.KSStats, wantStats)
	}

	// Scaling economy on the parallel path: one cold best-of-8 TwoSided
	// ensemble = exactly one scaling run, shared by every worker arena.
	g2 := RandomER(800, 800, 4, 77)
	scales := countScaleRuns(t)
	res2, err := g2.NewMatcher(&Options{ScalingIterations: 5, Pool: pool}).Run(Spec{Seed: 1, Ensemble: 8})
	if err != nil {
		t.Fatal(err)
	}
	if n := scales.Load(); n != 1 {
		t.Fatalf("parallel best-of-8 on a cold matcher: %d scaling runs, want exactly 1", n)
	}
	if res2.Scaling == nil {
		t.Fatal("parallel ensemble result carries no scaling")
	}
	if res2.Candidates != 8 {
		t.Fatalf("Candidates = %d, want 8 (no target set)", res2.Candidates)
	}
}

// TestSpecEnsembleRefineIncremental pins the ensemble-aware refinement
// semantics: on a graph with total support (sprank == its structural upper
// bound) the incremental refinement saturates the bound and stops the
// ensemble before all K candidates run; on a rank-deficient graph the
// refiner proves maximality below the bound and stops too — in both cases
// the final matching is maximum, keeping the RefineExact contract.
func TestSpecEnsembleRefineIncremental(t *testing.T) {
	for _, ref := range []Refinement{RefineExact, RefinePushRelabel} {
		full := FullyIndecomposable(600, 2, 7) // sprank == 600 == upper bound
		res, err := full.Match(Spec{Seed: 1, Ensemble: 8, Refine: ref},
			&Options{ScalingIterations: 5, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Matching.Size != full.Sprank() {
			t.Fatalf("%v: refined size %d want sprank %d", ref, res.Matching.Size, full.Sprank())
		}
		if res.Candidates >= 8 {
			t.Fatalf("%v: refinement saturated the structural bound but all %d candidates ran", ref, res.Candidates)
		}
		if err := full.ValidateMatching(res.Matching); err != nil {
			t.Fatal(err)
		}
		// Provenance anchor: the reported winner is the candidate the
		// refinement warm-started from, so replaying its seed as a single
		// unrefined run must reproduce HeuristicSize exactly.
		replay, err := full.Match(Spec{Seed: res.WinnerSeed},
			&Options{ScalingIterations: 5, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if replay.Matching.Size != res.HeuristicSize {
			t.Fatalf("%v: winner seed %d replays to size %d, but HeuristicSize is %d",
				ref, res.WinnerSeed, replay.Matching.Size, res.HeuristicSize)
		}

		deficient := RoadNetwork(900, 2.5, 4) // sprank < upper bound
		res, err = deficient.Match(Spec{Seed: 1, Ensemble: 8, Refine: ref},
			&Options{ScalingIterations: 5, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Matching.Size != deficient.Sprank() {
			t.Fatalf("%v deficient: refined size %d want sprank %d", ref, res.Matching.Size, deficient.Sprank())
		}
		if !deficient.CertifyMaximum(res.Matching) {
			t.Fatalf("%v deficient: refined matching fails the König certificate", ref)
		}
	}

	// A Target under the refined path bounds the refinement itself: the
	// returned matching clears ⌈Target·UB⌉ but the sweep stops right there.
	g := RandomER(1000, 1000, 4, 23)
	res, err := g.Match(Spec{Seed: 1, Ensemble: 8, Refine: RefineExact, Target: 0.5},
		&Options{ScalingIterations: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := (g.SprankUpperBound() + 1) / 2
	if res.Matching.Size < want {
		t.Fatalf("refined target run: size %d below target bound %d", res.Matching.Size, want)
	}
	if res.Candidates != 1 {
		t.Fatalf("refined target 0.5: ran %d candidates, want 1", res.Candidates)
	}
	if err := g.ValidateMatching(res.Matching); err != nil {
		t.Fatal(err)
	}
}
