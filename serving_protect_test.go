package bipartite

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/watchdog"
)

// This file is the self-protection layer's fault-injection suite: fake
// CPU readers and a fake clock drive the watchdog through scripted load
// histories (no actual CPU is burned, no actual memory grown), so every
// shed/degrade/recover transition is deterministic. All tests are named
// TestProtect* so the CI chaos job can select exactly this suite.

// fakeLoad scripts a process load history for a Server's watchdog: each
// tick advances the fake clock one sampling interval and accrues busy
// fraction of total CPU capacity. The watchdog interval is set huge so
// the background loop never samples on its own — every transition comes
// from an explicit tick.
type fakeLoad struct {
	mu    sync.Mutex
	now   time.Time
	cpu   time.Duration
	busy  float64
	iv    time.Duration
	cores int
}

func newFakeLoad() *fakeLoad {
	return &fakeLoad{now: time.Unix(1000, 0), iv: time.Hour, cores: runtime.NumCPU()}
}

// config returns a WatchdogConfig wired to the fake readers and clock.
func (f *fakeLoad) config(cpuLimit float64) WatchdogConfig {
	return WatchdogConfig{
		CPULimit: cpuLimit,
		Interval: f.iv,
		ReadCPU: func() (time.Duration, error) {
			f.mu.Lock()
			defer f.mu.Unlock()
			return f.cpu, nil
		},
		Now: func() time.Time {
			f.mu.Lock()
			defer f.mu.Unlock()
			return f.now
		},
	}
}

func (f *fakeLoad) setBusy(b float64) {
	f.mu.Lock()
	f.busy = b
	f.mu.Unlock()
}

// tick advances one sampling period at the current load and steps the
// server's watchdog.
func (f *fakeLoad) tick(srv *Server) {
	f.mu.Lock()
	f.now = f.now.Add(f.iv)
	f.cpu += time.Duration(f.busy * float64(f.cores) * float64(f.iv))
	f.mu.Unlock()
	srv.wd.Tick()
}

// heat ticks until the watchdog reports the wanted level (the first tick
// only establishes the CPU baseline).
func (f *fakeLoad) heat(t *testing.T, srv *Server, busy float64, want ShedLevel) {
	t.Helper()
	f.setBusy(busy)
	for i := 0; i < 4; i++ {
		f.tick(srv)
		if srv.Health().Level == want {
			return
		}
	}
	t.Fatalf("level %v after heating at busy=%v, want %v", srv.Health().Level, busy, want)
}

// TestProtectShedThenRecover is the tentpole's acceptance gate: under
// injected overload the server sheds normal-priority work with a typed,
// Retry-After-carrying error while still serving high priority
// (degraded), and once the load clears it decays back to nominal and
// serves everything at full quality again — leaving no goroutines behind.
func TestProtectShedThenRecover(t *testing.T) {
	g := RandomER(300, 300, 3, 1)
	baseline := runtime.NumGoroutine()

	f := newFakeLoad()
	srv := NewServerConfig(&Options{ScalingIterations: 2, Workers: 1},
		ServerConfig{MaxBatch: 8, Watchdog: f.config(0.5)})

	// Nominal: full service, no degradation marker.
	resp := srv.Match(Request{Graph: g, Seed: 1, Spec: Spec{Refine: RefineExact}})
	if resp.Err != nil || resp.Degraded != "" {
		t.Fatalf("nominal request: err=%v degraded=%q, want served undegraded", resp.Err, resp.Degraded)
	}

	// Overload: busy 0.7 of capacity against a 0.5 limit = utilization 1.4
	// — Critical in one post-baseline sample.
	f.heat(t, srv, 0.7, ShedCritical)
	h := srv.Health()
	if h.CPU < 0.69 || h.CPU > 0.71 || h.Utilization < 1.39 || h.Utilization > 1.41 {
		t.Fatalf("health cpu=%v util=%v, want ~0.70 / ~1.40", h.CPU, h.Utilization)
	}

	// Normal and low priority are shed with the typed error.
	for _, prio := range []Priority{PriorityNormal, PriorityLow} {
		resp = srv.Match(Request{Graph: g, Seed: 2, Priority: prio})
		if !errors.Is(resp.Err, ErrShed) {
			t.Fatalf("priority %v under critical: %v, want ErrShed", prio, resp.Err)
		}
		var shed *ShedError
		if !errors.As(resp.Err, &shed) {
			t.Fatalf("shed error is %T, want *ShedError", resp.Err)
		}
		if shed.Level != ShedCritical {
			t.Fatalf("shed at level %v, want critical", shed.Level)
		}
		if want := srv.wd.RecoveryHint(); shed.RetryAfter != want {
			t.Fatalf("shed Retry-After %v, want the recovery hint %v", shed.RetryAfter, want)
		}
	}

	// High priority is still served — degraded, not refused: the exact
	// refinement is dropped and the marker says so.
	resp = srv.Match(Request{Graph: g, Seed: 3, Priority: PriorityHigh, Spec: Spec{Refine: RefineExact}})
	if resp.Err != nil {
		t.Fatalf("high priority under critical: %v, want served", resp.Err)
	}
	if resp.Degraded != "refine:exact->none" {
		t.Fatalf("degraded marker %q, want refine:exact->none", resp.Degraded)
	}
	if resp.Refined {
		t.Fatal("degraded response claims a refinement stage ran")
	}
	if resp.Matching == nil || resp.Matching.Size == 0 {
		t.Fatal("degraded response has no matching")
	}

	// Load clears: three one-level decays at Settle=3 calm samples each.
	f.setBusy(0.05)
	for i := 0; i < 9; i++ {
		f.tick(srv)
	}
	if lvl := srv.Health().Level; lvl != ShedNominal {
		t.Fatalf("level after 9 calm samples: %v, want nominal", lvl)
	}
	resp = srv.Match(Request{Graph: g, Seed: 4, Spec: Spec{Refine: RefineExact}})
	if resp.Err != nil || resp.Degraded != "" || !resp.Refined {
		t.Fatalf("post-recovery request: err=%v degraded=%q refined=%v, want full service",
			resp.Err, resp.Degraded, resp.Refined)
	}

	st := srv.Stats()
	if st.Shed != 2 {
		t.Fatalf("stats: %d shed, want 2", st.Shed)
	}
	if st.Degraded != 1 {
		t.Fatalf("stats: %d degraded, want 1", st.Degraded)
	}

	srv.Close()
	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline
	})
}

// TestProtectPriorityShedOrder pins the admission ladder's order: at
// Shedding only low priority is refused; at Critical everything below
// high is.
func TestProtectPriorityShedOrder(t *testing.T) {
	g := RandomER(200, 200, 3, 1)
	f := newFakeLoad()
	srv := NewServerConfig(&Options{ScalingIterations: 2, Workers: 1},
		ServerConfig{Watchdog: f.config(0.5)})
	defer srv.Close()

	// busy 0.6 / limit 0.5 = utilization 1.2 — Shedding, not Critical.
	f.heat(t, srv, 0.6, ShedShedding)
	if resp := srv.Match(Request{Graph: g, Seed: 1, Priority: PriorityLow}); !errors.Is(resp.Err, ErrShed) {
		t.Fatalf("low at shedding: %v, want ErrShed", resp.Err)
	}
	if resp := srv.Match(Request{Graph: g, Seed: 1}); resp.Err != nil {
		t.Fatalf("normal at shedding: %v, want served", resp.Err)
	}

	// busy 0.7 = utilization 1.4 — Critical.
	f.heat(t, srv, 0.7, ShedCritical)
	if resp := srv.Match(Request{Graph: g, Seed: 2}); !errors.Is(resp.Err, ErrShed) {
		t.Fatalf("normal at critical: %v, want ErrShed", resp.Err)
	}
	if resp := srv.Match(Request{Graph: g, Seed: 2, Priority: PriorityHigh}); resp.Err != nil {
		t.Fatalf("high at critical: %v, want served", resp.Err)
	}
}

// TestProtectDegradedQualityBound: degraded answers still satisfy the
// paper's heuristic quality bound, and the provenance marker records the
// full downgrade. On a degree-1 (diagonal) graph every heuristic finds
// the perfect matching, so the bound check is exact and deterministic.
func TestProtectDegradedQualityBound(t *testing.T) {
	const n = 500
	edges := make([][2]int, n)
	for i := range edges {
		edges[i] = [2]int{i, i}
	}
	g, err := FromEdges(n, n, edges)
	if err != nil {
		t.Fatal(err)
	}

	f := newFakeLoad()
	srv := NewServerConfig(&Options{ScalingIterations: 2, Workers: 1},
		ServerConfig{Watchdog: f.config(0.5)})
	defer srv.Close()
	// busy 0.52 / limit 0.5 = utilization 1.04 — Degraded: everything is
	// served, everything expensive is downgraded.
	f.heat(t, srv, 0.52, ShedDegraded)

	resp := srv.Match(Request{Graph: g, Seed: 7,
		Spec: Spec{Refine: RefineExact, Ensemble: 8}})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if want := "refine:exact->none,best_of:8->2"; resp.Degraded != want {
		t.Fatalf("degraded marker %q, want %q", resp.Degraded, want)
	}
	if resp.Matching.Size != n {
		t.Fatalf("degraded matching size %d, want %d (perfect on a diagonal graph)", resp.Matching.Size, n)
	}
	if resp.Refined {
		t.Fatal("refinement reported despite being degraded away")
	}
	if resp.Candidates > 2 {
		t.Fatalf("%d candidates ran, want <= 2 (capped ensemble)", resp.Candidates)
	}
}

// TestProtectDegradeSpecLadder unit-tests the pure downgrade mapping.
func TestProtectDegradeSpecLadder(t *testing.T) {
	full := Spec{Refine: RefineExact, Ensemble: 8, Target: 0.9}
	cases := []struct {
		lvl      watchdog.Level
		in       Spec
		wantMark string
		wantK    int
	}{
		{watchdog.Nominal, full, "", 8},
		{watchdog.Degraded, full, "refine:exact->none,best_of:8->2", 2},
		{watchdog.Shedding, full, "refine:exact->none,best_of:8->1,target:dropped", 1},
		{watchdog.Critical, full, "refine:exact->none,best_of:8->1,target:dropped", 1},
		{watchdog.Critical, Spec{}, "", 0},
		{watchdog.Degraded, Spec{Ensemble: 2}, "", 2},
	}
	for _, c := range cases {
		got, mark := degradeSpec(c.in, c.lvl)
		if mark != c.wantMark {
			t.Errorf("degradeSpec(%+v, %v) marker %q, want %q", c.in, c.lvl, mark, c.wantMark)
		}
		if got.Ensemble != c.wantK {
			t.Errorf("degradeSpec(%+v, %v) ensemble %d, want %d", c.in, c.lvl, got.Ensemble, c.wantK)
		}
		if c.lvl >= watchdog.Degraded && got.Refine != RefineNone {
			t.Errorf("degradeSpec(%+v, %v) kept refinement %v", c.in, c.lvl, got.Refine)
		}
	}
}

// TestProtectWouldMissDeadline: once service-time history exists, a
// request whose deadline is smaller than the estimated time to an answer
// is rejected at admission with the typed error — before any kernel or
// queue slot is spent on it. Requests with feasible (or no) deadlines are
// unaffected.
func TestProtectWouldMissDeadline(t *testing.T) {
	g := RandomER(300, 300, 3, 1)
	srv := NewServer(&Options{ScalingIterations: 2, Workers: 1}, 8)
	defer srv.Close()

	// Cold server: no history, nothing defensible to reject on — even a
	// tight deadline is admitted (and may then time out mid-run, which is
	// the 504 path, not the 429 path).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if resp := srv.Match(Request{Graph: g, Seed: 1, Ctx: ctx}); resp.Err != nil {
		t.Fatalf("cold-server request: %v, want served", resp.Err)
	}

	// Teach the estimator this class costs ~200ms (directly: the EWMA is
	// the unit under test, not the kernel's actual speed).
	for i := 0; i < 5; i++ {
		srv.engine.svc.record(g, Spec{}, 200*time.Millisecond)
	}

	tight, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	resp := srv.Match(Request{Graph: g, Seed: 2, Ctx: tight})
	if !errors.Is(resp.Err, ErrWouldMiss) {
		t.Fatalf("doomed deadline: %v, want ErrWouldMiss", resp.Err)
	}
	var miss *WouldMissError
	if !errors.As(resp.Err, &miss) {
		t.Fatalf("would-miss error is %T, want *WouldMissError", resp.Err)
	}
	if miss.Estimated < 100*time.Millisecond {
		t.Fatalf("estimated %v, want >= 100ms (the taught class cost)", miss.Estimated)
	}
	if miss.Remaining > 10*time.Millisecond {
		t.Fatalf("remaining %v, want <= the 10ms budget", miss.Remaining)
	}

	// A feasible deadline on the same class is admitted and served.
	roomy, cancel3 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel3()
	if resp := srv.Match(Request{Graph: g, Seed: 3, Ctx: roomy}); resp.Err != nil {
		t.Fatalf("feasible deadline: %v, want served", resp.Err)
	}
	// No deadline: never would-miss rejected.
	if resp := srv.Match(Request{Graph: g, Seed: 4}); resp.Err != nil {
		t.Fatalf("no deadline: %v, want served", resp.Err)
	}
	if st := srv.Stats(); st.WouldMiss != 1 {
		t.Fatalf("stats: %d would-miss, want 1", st.WouldMiss)
	}
}

// TestProtectRateLimited: the per-client token bucket rejects the
// over-budget client with a Retry-After while other clients — and
// anonymous requests — pass.
func TestProtectRateLimited(t *testing.T) {
	g := RandomER(200, 200, 3, 1)
	clock := time.Unix(0, 0)
	var mu sync.Mutex
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	srv := NewServerConfig(&Options{ScalingIterations: 2, Workers: 1},
		ServerConfig{RatePerClient: 1, RateBurst: 1, Watchdog: WatchdogConfig{Now: now}})
	defer srv.Close()

	if resp := srv.Match(Request{Graph: g, Seed: 1, Client: "alice"}); resp.Err != nil {
		t.Fatalf("first alice request: %v, want served", resp.Err)
	}
	resp := srv.Match(Request{Graph: g, Seed: 2, Client: "alice"})
	if !errors.Is(resp.Err, ErrRateLimited) {
		t.Fatalf("second alice request: %v, want ErrRateLimited", resp.Err)
	}
	var rl *RateLimitError
	if !errors.As(resp.Err, &rl) || rl.Client != "alice" || rl.RetryAfter <= 0 {
		t.Fatalf("rate-limit error %#v, want *RateLimitError{Client: alice, RetryAfter > 0}", resp.Err)
	}
	if resp := srv.Match(Request{Graph: g, Seed: 3, Client: "bob"}); resp.Err != nil {
		t.Fatalf("bob is limited by alice's bucket: %v", resp.Err)
	}
	for i := 0; i < 3; i++ {
		if resp := srv.Match(Request{Graph: g, Seed: uint64(4 + i)}); resp.Err != nil {
			t.Fatalf("anonymous request %d hit the limiter: %v", i, resp.Err)
		}
	}
	// After the advertised wait, alice is served again.
	mu.Lock()
	clock = clock.Add(rl.RetryAfter)
	mu.Unlock()
	if resp := srv.Match(Request{Graph: g, Seed: 9, Client: "alice"}); resp.Err != nil {
		t.Fatalf("alice after waiting Retry-After: %v, want served", resp.Err)
	}
	if st := srv.Stats(); st.RateLimited != 1 {
		t.Fatalf("stats: %d rate-limited, want 1", st.RateLimited)
	}
}

// TestProtectColdScalingCancelRetry is the retryable-cell gate: a 1ms-
// class deadline expiring while a cold graph's shared scaling computes
// must fail that request only — the next request of the graph recomputes
// the scaling (exactly one fresh run) and succeeds, where the old
// once-cell stayed poisoned with the aborted run forever.
func TestProtectColdScalingCancelRetry(t *testing.T) {
	g := RandomER(2000, 2000, 4, 9)
	var runs atomic.Int64
	hook := func() {
		// Stall the first scaling run past the request's deadline, so the
		// cancellation hook has fired by the kernel's first checkpoint.
		if runs.Add(1) == 1 {
			time.Sleep(30 * time.Millisecond)
		}
	}
	scaleRunHook.Store(&hook)
	t.Cleanup(func() { scaleRunHook.Store(nil) })

	srv := NewServer(&Options{ScalingIterations: 5, Workers: 1}, 8)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	resp := srv.Match(Request{Graph: g, Op: OpTwoSided, Seed: 1, Ctx: ctx})
	if !errors.Is(resp.Err, context.DeadlineExceeded) {
		t.Fatalf("cold request with 1ms deadline: %v, want context.DeadlineExceeded", resp.Err)
	}

	// Retry without a deadline: the cell must not be poisoned — the
	// scaling reruns (exactly once) and the request succeeds.
	resp = srv.Match(Request{Graph: g, Op: OpTwoSided, Seed: 1})
	if resp.Err != nil {
		t.Fatalf("retry after canceled scaling: %v, want served", resp.Err)
	}
	if n := runs.Load(); n != 2 {
		t.Fatalf("%d scaling runs, want 2 (one aborted + one fresh)", n)
	}
	// The fresh run latched: further requests share it.
	if resp = srv.Match(Request{Graph: g, Op: OpOneSided, Seed: 2}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if n := runs.Load(); n != 2 {
		t.Fatalf("%d scaling runs after warm request, want still 2", n)
	}
}

// TestProtectErrorUnwrap pins the typed errors to their sentinels — the
// contract statusOf in cmd/matchserve maps HTTP codes through.
func TestProtectErrorUnwrap(t *testing.T) {
	if !errors.Is(&ShedError{Level: ShedCritical}, ErrShed) {
		t.Error("*ShedError does not unwrap to ErrShed")
	}
	if !errors.Is(&WouldMissError{}, ErrWouldMiss) {
		t.Error("*WouldMissError does not unwrap to ErrWouldMiss")
	}
	if !errors.Is(&RateLimitError{Client: "c"}, ErrRateLimited) {
		t.Error("*RateLimitError does not unwrap to ErrRateLimited")
	}
	for _, p := range []Priority{PriorityLow, PriorityNormal, PriorityHigh} {
		back, err := ParsePriority(p.String())
		if err != nil || back != p {
			t.Errorf("ParsePriority(%q) = %v, %v; want %v", p.String(), back, err, p)
		}
	}
	if _, err := ParsePriority("urgent"); err == nil {
		t.Error("unknown priority accepted")
	}
}
