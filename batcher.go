package bipartite

import (
	"sync"

	"repro/internal/watchdog"
)

// BatcherConfig configures a Batcher. The zero value is a plain batching
// engine with no self-protection — exactly the package-level MatchBatch,
// minus the per-call engine construction.
type BatcherConfig struct {
	// Watchdog enables self-protection: when its Enabled() reports true a
	// resource watchdog samples the process and the Batcher applies the
	// Server's admission rules (shed by priority) and quality ladder
	// (degrade Specs) to every batch. The zero value disables it.
	Watchdog WatchdogConfig
}

// Batcher is the watchdog-protected form of MatchBatch for callers that
// batch without a Server: it keeps one engine (and so the per-graph
// shared-scaling cache and the per-slot arenas) warm across calls, and —
// when a watchdog is configured — sheds and degrades exactly like a
// Server's admission stage. Package-level MatchBatch has no admission
// stage at all (it documents Priority as ignored); a Batcher is the way
// to get the self-protection contract without paying for the Server's
// queueing collector.
//
// MatchBatch calls are serialized internally (the engine's parallel
// region must not overlap itself), so a Batcher is safe for concurrent
// use; concurrent callers simply queue on the mutex.
type Batcher struct {
	mu     sync.Mutex
	engine *batchEngine
	wd     *watchdog.Watchdog

	shed      int64 // requests answered ErrShed in place (guarded by mu)
	served    int64 // requests handed to the engine (guarded by mu)
	closeOnce sync.Once
}

// NewBatcher builds a Batcher over opt (interpreted exactly as by
// MatchBatch) and starts the configured watchdog, if any. Close releases
// it.
func NewBatcher(opt *Options, cfg BatcherConfig) *Batcher {
	b := &Batcher{engine: newBatchEngine(opt)}
	if cfg.Watchdog.Enabled() {
		b.wd = cfg.Watchdog.build()
		b.engine.shed = b.wd.Level
		b.wd.Start()
	}
	return b
}

// MatchBatch executes the batch like the package-level MatchBatch, after
// one admission pass: when the watchdog reports the process hot, requests
// are shed in place by priority with the Server's exact rules — at
// Shedding and above PriorityLow work is refused, at Critical everything
// below PriorityHigh — and the shed responses carry the typed ShedError
// (errors.Is(err, ErrShed)) with a recovery hint. Admitted requests may
// still be degraded by the engine's quality ladder; the response's
// Degraded field records what ran. Without a watchdog every request is
// admitted and Priority is ignored, like MatchBatch.
//
// The returned slice maps one-to-one onto reqs.
func (b *Batcher) MatchBatch(reqs []Request) []Response {
	out := make([]Response, len(reqs))
	run := reqs
	var lvl watchdog.Level
	if b.wd != nil {
		lvl = b.wd.Level()
	}
	if lvl >= watchdog.Shedding {
		kept := make([]Request, 0, len(reqs))
		idx := make([]int, 0, len(reqs))
		for i, req := range reqs {
			if (lvl >= watchdog.Shedding && req.Priority <= PriorityLow) ||
				(lvl >= watchdog.Critical && req.Priority < PriorityHigh) {
				out[i] = Response{Err: &ShedError{Level: ShedLevel(lvl), RetryAfter: b.wd.RecoveryHint()}}
				continue
			}
			kept = append(kept, req)
			idx = append(idx, i)
		}
		if len(kept) < len(reqs) {
			sub := make([]Response, len(kept))
			b.mu.Lock()
			b.shed += int64(len(reqs) - len(kept))
			b.served += int64(len(kept))
			b.engine.run(kept, sub)
			b.mu.Unlock()
			for k, i := range idx {
				out[i] = sub[k]
			}
			return out
		}
	}
	b.mu.Lock()
	b.served += int64(len(run))
	b.engine.run(run, out)
	b.mu.Unlock()
	return out
}

// DropGraph evicts the cached per-graph scaling for g, exactly like
// Server.DropGraph — callers swapping mutated DynSession snapshots in
// front of a Batcher call this on the stale snapshot.
func (b *Batcher) DropGraph(g *Graph) { b.engine.dropGraph(g) }

// Health reports the watchdog's view of the process; the zero value when
// no watchdog is configured.
func (b *Batcher) Health() ServerHealth {
	if b.wd == nil {
		return ServerHealth{}
	}
	h := b.wd.Health()
	return ServerHealth{
		Level:       ShedLevel(h.Level),
		CPU:         h.CPU,
		RSSBytes:    h.RSS,
		Utilization: h.Utilization,
	}
}

// BatcherStats counts a Batcher's admission outcomes.
type BatcherStats struct {
	Served   int64 // requests handed to the engine
	Shed     int64 // requests refused in place with ErrShed
	Degraded int64 // requests the engine ran with a downgraded Spec
}

// Stats returns a snapshot of the admission counters.
func (b *Batcher) Stats() BatcherStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BatcherStats{Served: b.served, Shed: b.shed, Degraded: b.engine.degraded.Load()}
}

// Close stops the watchdog's sampling loop. The engine itself holds no
// goroutines, so a closed Batcher can still serve batches — but the shed
// level is frozen at its last observed value, so callers should stop
// submitting after Close. Idempotent.
func (b *Batcher) Close() {
	b.closeOnce.Do(func() {
		if b.wd != nil {
			b.wd.Stop()
		}
	})
}
