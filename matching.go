package bipartite

import (
	"math"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/scale"
)

// Options configures the randomized heuristics. The zero value (or a nil
// pointer) means: 5 Sinkhorn–Knopp scaling iterations, all CPUs, seed 1,
// the paper's scheduling policies.
type Options struct {
	// ScalingIterations is the number of Sinkhorn–Knopp iterations run
	// before sampling. 0 means uniform (unscaled) sampling, as in the
	// "0 iterations" columns of Tables 1–2. Negative means the default
	// of 5, which suffices for the guarantees on almost all instances
	// (paper §4.1).
	ScalingIterations int
	// Workers is the parallel width; <= 0 uses all CPUs.
	Workers int
	// Seed makes runs reproducible; 0 is replaced by 1.
	Seed uint64
	// UseRuiz switches the scaling method from Sinkhorn–Knopp to Ruiz
	// equilibration (the §2.2 alternative; converges more slowly).
	UseRuiz bool
	// SkewAware splits rows/columns with enormous degree across all
	// workers during scaling (the §2.2 load-balance remark); results are
	// numerically equal up to round-off reassociation.
	SkewAware bool
	// Pool, when non-nil, is the worker pool every parallel stage of the
	// call dispatches to — scaling sweeps, sampling and both Karp–Sipser
	// phases reuse its resident workers. Nil uses the process-wide
	// default pool. Servers that pin matching work to a subset of cores
	// create one Pool at startup and pass it on every call.
	Pool *Pool
	// AliasSampling switches the sampling kernels' per-row neighbor draw
	// from the O(deg) prefix walk to O(1) alias-method tables, built once
	// per bound graph in O(nnz) on first use and reused across runs —
	// profitable for sessions that resample the same graph many times
	// (ensembles, servers). Opt-in because the alias draw consumes the
	// per-vertex RNG stream differently, so seeded results differ from
	// (while being distributed identically to) the default kernels'.
	AliasSampling bool
}

// Pool is a handle to a persistent set of parallel workers that matching
// calls can share; see Options.Pool. It wraps the internal loop runtime's
// pool so one warm worker set serves any number of Scale / OneSidedMatch /
// TwoSidedMatch / KarpSipserParallel calls, concurrently if desired.
type Pool struct {
	p *par.Pool
}

// NewPool creates a pool of the given parallel width (resident workers
// plus the calling goroutine); width <= 0 means GOMAXPROCS. Close it when
// done.
func NewPool(width int) *Pool {
	return &Pool{p: par.NewPool(width)}
}

// Width reports the pool's parallel width.
func (p *Pool) Width() int { return p.p.Width() }

// Close releases the pool's resident workers. It must not be called while
// calls using the pool are in flight; it is idempotent.
func (p *Pool) Close() { p.p.Close() }

func (p *Pool) inner() *par.Pool {
	if p == nil {
		return nil
	}
	return p.p
}

func (o *Options) normalized() Options {
	var v Options
	if o != nil {
		v = *o
	}
	if v.ScalingIterations < 0 {
		v.ScalingIterations = 5
	}
	if o == nil {
		v.ScalingIterations = 5
	}
	if v.Seed == 0 {
		v.Seed = 1
	}
	return v
}

func (v Options) coreOptions(sc *Scaling) core.Options {
	o := core.Options{
		Workers:  v.Workers,
		Policy:   par.Dynamic,
		Chunk:    par.DefaultChunk,
		KSPolicy: par.Guided,
		Seed:     v.Seed,
		Pool:     v.Pool.inner(),
		Alias:    v.AliasSampling,
	}
	if sc != nil {
		o.RowTotals = sc.RowSums
		o.ColTotals = sc.ColSums
	}
	return o
}

// Scaling is the result of a matrix scaling run: s_ij = DR[i]·DC[j] for
// each edge (i, j) of the pattern.
type Scaling struct {
	DR, DC []float64
	// Iterations actually performed.
	Iterations int
	// Error is max_j |colsum_j - 1| after the last iteration.
	Error float64
	// History holds the error before each iteration (History[0] is the
	// unscaled error).
	History []float64
	// RowSums and ColSums are the raw scaled row/column sums of the final
	// vectors (the sampling denominators of Algorithms 2 and 3), exported
	// by the fused Sinkhorn–Knopp sweeps. They may be nil (Ruiz,
	// skew-aware and tolerance-checked runs); the sampling stage then
	// computes totals on the fly.
	RowSums, ColSums []float64
}

// scaleRunHook, when set, is called at the start of every scaling run —
// the test seam that counts how many Sinkhorn–Knopp (or Ruiz) executions a
// serving workload actually performs (the shared per-graph scaling
// guarantee is asserted through it). Loaded atomically because batch slots
// scale from pool workers.
var scaleRunHook atomic.Pointer[func()]

// scaleRaw runs the configured scaling method on g, drawing buffers from
// ws when non-nil and the method supports it (the fused Sinkhorn–Knopp
// path; Ruiz and skew-aware runs always allocate). cancel, when non-nil,
// is the cooperative cancellation hook polled between sweeps; a canceled
// run fails with scale.ErrCanceled.
func (g *Graph) scaleRaw(v Options, ws *scale.Workspace, cancel func() bool) (*scale.Result, error) {
	if hook := scaleRunHook.Load(); hook != nil {
		(*hook)()
	}
	sopt := scale.Options{
		MaxIters: v.ScalingIterations,
		Workers:  v.Workers,
		Policy:   par.Dynamic,
		Pool:     v.Pool.inner(),
		Ws:       ws,
		Cancel:   cancel,
	}
	switch {
	case v.UseRuiz:
		return scale.Ruiz(g.a, g.transpose(), sopt)
	case v.SkewAware:
		return scale.SinkhornKnoppSkewAware(g.a, g.transpose(), sopt)
	default:
		return scale.SinkhornKnopp(g.a, g.transpose(), sopt)
	}
}

// Scale runs the configured scaling method and returns the scaling
// vectors. Most callers use OneSidedMatch / TwoSidedMatch directly, which
// scale internally; Scale is exposed for scaling-only workflows and the
// experiments.
func (g *Graph) Scale(opt *Options) (*Scaling, error) {
	res, err := g.scaleRaw(opt.normalized(), nil, nil)
	if err != nil {
		return nil, err
	}
	return &Scaling{DR: res.DR, DC: res.DC, Iterations: res.Iters, Error: res.Err,
		History: res.History, RowSums: res.RSum, ColSums: res.CSum}, nil
}

// MatchResult is the outcome of a heuristic matching run executed by the
// Spec engine (Matcher.Run and everything delegating to it).
type MatchResult struct {
	// Matching is the computed matching (always valid).
	Matching *Matching
	// Scaling reports the scaling stage that preceded sampling; nil for
	// algorithms that do not scale (Karp–Sipser and the cheap baselines).
	Scaling *Scaling
	// KSStats reports the Karp–Sipser phase statistics when Algorithm was
	// AlgKarpSipser (the winner's, for ensembles); nil otherwise.
	KSStats *KarpSipserStats
	// Candidates is the number of ensemble members actually consumed — 1
	// for single runs, possibly fewer than Spec.Ensemble when Spec.Target
	// or the ensemble-aware refinement stopped the sweep early.
	Candidates int
	// WinnerSeed is the seed of the candidate that produced Matching: the
	// largest heuristic candidate for unrefined ensembles, the candidate
	// the incremental refinement warm-started from for refined ones (a
	// late candidate that can no longer beat the refined size is not the
	// winner), and the resolved base seed for single runs.
	WinnerSeed uint64
	// HeuristicSize is the winning candidate's cardinality before
	// refinement; with Refine: None it equals Matching.Size, and the gap
	// Matching.Size − HeuristicSize is the work the exact solver added.
	HeuristicSize int
	// Refined reports whether a refinement stage ran (Spec.Refine was not
	// RefineNone); it is the wire-level provenance bit cmd/matchserve
	// surfaces as "refined".
	Refined bool
	// RefinedWith is the refinement engine that actually ran — it differs
	// from Spec.Refine when RefineExact auto-selected the parallel graft
	// engine on a large instance. RefineNone when no refinement ran;
	// cmd/matchserve surfaces it as "refined_with".
	RefinedWith Refinement
	// Degraded, when non-empty, records the self-protection downgrades a
	// serving layer applied to the Spec before this run (see
	// Response.Degraded for the marker grammar). Direct Matcher.Run and
	// Graph.Match calls execute exactly the Spec given and always leave it
	// empty.
	Degraded string
	// MatchedWeight is the total weight of Matching when Algorithm was
	// AlgAuction (1.0 per edge on pattern graphs, so it equals Size
	// there); 0 for the cardinality algorithms. The auction guarantees
	// MatchedWeight ≥ (1−Epsilon)·optimal.
	MatchedWeight float64
	// Epsilon is the resolved approximation slack the auction ran with
	// (Spec.Epsilon, or DefaultEpsilon when that was zero); 0 for the
	// cardinality algorithms.
	Epsilon float64
	// Rounds is the total number of auction bidding rounds (the winner's,
	// for ensembles); 0 for the cardinality algorithms.
	Rounds int
	// DualBound is the auction's LP-dual certificate Σp + Σr: an upper
	// bound on the optimal matched weight valid for the returned prices,
	// so MatchedWeight/DualBound is a certified quality ratio without an
	// exact solve (it is ≥ 1−Epsilon by the termination invariants, and
	// typically much closer to 1). 0 for the cardinality algorithms.
	DualBound float64
}

// OneSidedMatch runs the OneSidedMatch heuristic (Algorithm 2):
// Sinkhorn–Knopp scaling followed by one random column choice per row,
// with last-write-wins conflict semantics. Guaranteed expected quality
// ≥ 1 − 1/e ≈ 0.632 on matrices with total support.
//
// It is a compatibility wrapper over Graph.Match with
// Spec{Algorithm: AlgOneSided}; callers that match the same graph
// repeatedly (ensembles, servers) create a Matcher and reuse it.
func (g *Graph) OneSidedMatch(opt *Options) (*MatchResult, error) {
	return g.Match(Spec{Algorithm: AlgOneSided}, opt)
}

// TwoSidedMatch runs the TwoSidedMatch heuristic (Algorithm 3): both
// sides sample one neighbor each, and the specialized parallel
// Karp–Sipser kernel (Algorithm 4) matches the sampled 1-out graph
// exactly. Conjectured quality ≥ 2(1 − ρ) ≈ 0.866 on matrices with total
// support.
//
// It is a compatibility wrapper over Graph.Match with
// Spec{Algorithm: AlgTwoSided}; callers that match the same graph
// repeatedly (ensembles, servers) create a Matcher and reuse it.
func (g *Graph) TwoSidedMatch(opt *Options) (*MatchResult, error) {
	return g.Match(Spec{Algorithm: AlgTwoSided}, opt)
}

// KarpSipser runs the classic sequential Karp–Sipser heuristic (the
// Table 1 baseline) and reports its phase statistics. A compatibility
// wrapper over the Spec engine (Spec{Algorithm: AlgKarpSipser}).
func (g *Graph) KarpSipser(seed uint64) (*Matching, KarpSipserStats) {
	return g.NewMatcher(&Options{Seed: seed}).KarpSipser(0)
}

// KarpSipserParallel runs an Azad-et-al-style multithreaded Karp–Sipser
// on the full graph (the paper's reference [4]): fast and lock-free but
// without a quality guarantee, since newly arising degree-one vertices are
// not tracked. Provided as the parallel baseline that TwoSidedMatch's
// exact-on-1-out kernel is designed to improve upon.
func (g *Graph) KarpSipserParallel(seed uint64, workers int) *Matching {
	return g.KarpSipserParallelPool(seed, workers, nil)
}

// KarpSipserParallelPool is KarpSipserParallel running on a caller-owned
// worker pool (nil means the default pool). A compatibility wrapper over
// the Spec engine (Spec{Algorithm: AlgKarpSipserParallel}).
func (g *Graph) KarpSipserParallelPool(seed uint64, workers int, pool *Pool) *Matching {
	m := g.NewMatcher(&Options{Seed: seed, Workers: workers, Pool: pool})
	return m.KarpSipserParallel(0)
}

// CheapRandomEdge runs the §2.1 random-edge-visit 1/2-approximation.
// A compatibility wrapper over the Spec engine (AlgCheapEdge).
func (g *Graph) CheapRandomEdge(seed uint64) *Matching {
	res, err := g.Match(Spec{Algorithm: AlgCheapEdge, Seed: seed}, nil)
	if err != nil { // unreachable: the spec is valid and the path cannot cancel
		panic(err)
	}
	return res.Matching
}

// CheapRandomVertex runs the §2.1 random-vertex-random-neighbor
// 1/2-approximation. A compatibility wrapper over the Spec engine
// (AlgCheapVertex).
func (g *Graph) CheapRandomVertex(seed uint64) *Matching {
	res, err := g.Match(Spec{Algorithm: AlgCheapVertex, Seed: seed}, nil)
	if err != nil { // unreachable: the spec is valid and the path cannot cancel
		panic(err)
	}
	return res.Matching
}

// OneSidedGuarantee returns the OneSidedMatch approximation bound implied
// by an imperfect scaling: if every column sum of the scaled matrix is at
// least alpha, the expected matching size is at least n·(1 − e^{−alpha})
// (§3.3; alpha = 1 recovers the 1 − 1/e ≈ 0.632 bound, alpha = 0.92 gives
// ≈ 0.6015). Use 1 − scalingError as a conservative alpha.
func OneSidedGuarantee(alpha float64) float64 {
	if alpha < 0 {
		alpha = 0
	}
	return 1 - math.Exp(-alpha)
}

// TwoSidedConjecture returns the conjectured TwoSidedMatch ratio
// 2(1 − ρ) ≈ 0.866 where ρ is the unique root of x·eˣ = 1 (Conjecture 1).
func TwoSidedConjecture() float64 {
	x := 0.5
	for i := 0; i < 60; i++ {
		f := x*math.Exp(x) - 1
		x -= f / (math.Exp(x) * (1 + x))
	}
	return 2 * (1 - x)
}
