package bipartite

import (
	"fmt"
	"testing"
)

// The graft conformance suite: RefineGraft rides the Spec engine with
// exactly RefineExact's contract (size == sprank, König-certified) plus
// the engine's own guarantee — the refined matching is bit-identical at
// every pool width. These tests pin both through the public API, and the
// auto-selection that upgrades RefineExact to the graft engine on large
// instances.

// TestSpecRefineGraftReachesSprank mirrors TestSpecRefineExactReachesSprank
// for the graft engine: it completes any heuristic matching to maximum
// cardinality on the quality-suite families, and the result reports the
// engine that ran.
func TestSpecRefineGraftReachesSprank(t *testing.T) {
	families := qualityGraphs()
	families = append(families, struct {
		name string
		g    *Graph
	}{"road-1000", RoadNetwork(1000, 2.5, 4)})
	for _, tc := range families {
		sprank := tc.g.Sprank()
		for _, alg := range []Algorithm{AlgTwoSided, AlgKarpSipser, AlgCheapVertex} {
			res, err := tc.g.Match(Spec{Algorithm: alg, Seed: 3, Refine: RefineGraft}, &Options{ScalingIterations: 5})
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, alg, err)
			}
			if res.Matching.Size != sprank {
				t.Fatalf("%s/%s: graft-refined size %d want sprank %d", tc.name, alg, res.Matching.Size, sprank)
			}
			if err := tc.g.ValidateMatching(res.Matching); err != nil {
				t.Fatalf("%s/%s: %v", tc.name, alg, err)
			}
			if !tc.g.CertifyMaximum(res.Matching) {
				t.Fatalf("%s/%s: graft-refined matching fails the König certificate", tc.name, alg)
			}
			if !res.Refined || res.RefinedWith != RefineGraft {
				t.Fatalf("%s/%s: provenance (Refined %v, RefinedWith %v) want (true, graft)",
					tc.name, alg, res.Refined, res.RefinedWith)
			}
		}
	}
}

// TestSpecRefineGraftAutoSelect pins the size-based engine selection:
// Refine: exact runs Hopcroft–Karp below the graftAutoEdges threshold and
// the graft engine at or above it, RefinedWith reporting the engine that
// actually ran either way — and the two engines return the same (maximum)
// size, so the substitution is invisible except in provenance.
func TestSpecRefineGraftAutoSelect(t *testing.T) {
	g := RandomER(800, 800, 4, 19)
	sprank := g.Sprank()
	run := func() *MatchResult {
		res, err := g.Match(Spec{Seed: 1, Refine: RefineExact}, &Options{ScalingIterations: 5, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Matching.Size != sprank {
			t.Fatalf("refined size %d want sprank %d", res.Matching.Size, sprank)
		}
		return res
	}

	small := run() // well below the production threshold
	if small.RefinedWith != RefineExact {
		t.Fatalf("below threshold: RefinedWith %v want exact", small.RefinedWith)
	}

	defer func(old int) { graftAutoEdges = old }(graftAutoEdges)
	graftAutoEdges = 1 // every instance is now "large"
	large := run()
	if large.RefinedWith != RefineGraft {
		t.Fatalf("above threshold: RefinedWith %v want graft", large.RefinedWith)
	}
	if !large.Refined {
		t.Fatal("auto-selected graft run lost the Refined flag")
	}

	// The auto-selection also applies inside ensembles.
	res, err := g.Match(Spec{Seed: 1, Ensemble: 4, Refine: RefineExact}, &Options{ScalingIterations: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.RefinedWith != RefineGraft || res.Matching.Size != sprank {
		t.Fatalf("ensemble auto-select: (RefinedWith %v, size %d) want (graft, %d)",
			res.RefinedWith, res.Matching.Size, sprank)
	}
}

// TestSpecGraftBitIdenticalAcrossWidths gates the tentpole acceptance
// criterion through the public API: a graft-refined Spec returns the same
// matching — mates, not just size — at Workers: 1 and at every pool width,
// for single runs and for ensembles on both schedules.
func TestSpecGraftBitIdenticalAcrossWidths(t *testing.T) {
	graphs := []struct {
		name string
		g    *Graph
	}{
		{"er-900", RandomER(900, 900, 4, 13)},
		{"road-800", RoadNetwork(800, 2.5, 9)}, // rank-deficient
	}
	specs := []Spec{
		{Algorithm: AlgTwoSided, Seed: 1, Refine: RefineGraft},
		{Algorithm: AlgCheapVertex, Seed: 2, Refine: RefineGraft},
		{Algorithm: AlgTwoSided, Seed: 3, Ensemble: 6, Refine: RefineGraft},
		{Algorithm: AlgKarpSipser, Seed: 4, Ensemble: 4, Refine: RefineGraft},
	}
	for _, tc := range graphs {
		for _, spec := range specs {
			seq := spec
			seq.Sequential = true
			want, err := tc.g.NewMatcher(&Options{ScalingIterations: 5, Workers: 1}).Run(seq)
			if err != nil {
				t.Fatalf("%s %+v sequential: %v", tc.name, spec, err)
			}
			wantMt := cloneMatching(want.Matching)
			for _, width := range []int{2, 4} {
				pool := NewPool(width)
				got, err := tc.g.NewMatcher(&Options{ScalingIterations: 5, Pool: pool}).Run(spec)
				if err != nil {
					t.Fatalf("%s %+v width %d: %v", tc.name, spec, width, err)
				}
				cmpMates(t, fmt.Sprintf("%s graft width %d", tc.name, width), got.Matching, wantMt)
				if got.WinnerSeed != want.WinnerSeed || got.Candidates != want.Candidates ||
					got.HeuristicSize != want.HeuristicSize || got.RefinedWith != RefineGraft {
					t.Fatalf("%s %+v width %d: provenance (%d, %d, %d, %v) want (%d, %d, %d, graft)",
						tc.name, spec, width, got.WinnerSeed, got.Candidates, got.HeuristicSize, got.RefinedWith,
						want.WinnerSeed, want.Candidates, want.HeuristicSize)
				}
				pool.Close()
			}
		}
	}
}

// TestSpecGraftEnsembleIncremental mirrors the ensemble-aware refinement
// gates for the graft engine: the incremental refiner saturates the
// structural bound early on a total-support graph, proves maximality below
// it on a rank-deficient one, and a Target bounds the refinement.
func TestSpecGraftEnsembleIncremental(t *testing.T) {
	full := FullyIndecomposable(600, 2, 7)
	res, err := full.Match(Spec{Seed: 1, Ensemble: 8, Refine: RefineGraft},
		&Options{ScalingIterations: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matching.Size != full.Sprank() {
		t.Fatalf("refined size %d want sprank %d", res.Matching.Size, full.Sprank())
	}
	if res.Candidates >= 8 {
		t.Fatalf("refinement saturated the structural bound but all %d candidates ran", res.Candidates)
	}
	replay, err := full.Match(Spec{Seed: res.WinnerSeed}, &Options{ScalingIterations: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if replay.Matching.Size != res.HeuristicSize {
		t.Fatalf("winner seed %d replays to size %d, but HeuristicSize is %d",
			res.WinnerSeed, replay.Matching.Size, res.HeuristicSize)
	}

	deficient := RoadNetwork(900, 2.5, 4)
	res, err = deficient.Match(Spec{Seed: 1, Ensemble: 8, Refine: RefineGraft},
		&Options{ScalingIterations: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matching.Size != deficient.Sprank() {
		t.Fatalf("deficient: refined size %d want sprank %d", res.Matching.Size, deficient.Sprank())
	}
	if !deficient.CertifyMaximum(res.Matching) {
		t.Fatal("deficient: graft-refined matching fails the König certificate")
	}

	g := RandomER(1000, 1000, 4, 23)
	res, err = g.Match(Spec{Seed: 1, Ensemble: 8, Refine: RefineGraft, Target: 0.5},
		&Options{ScalingIterations: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := (g.SprankUpperBound() + 1) / 2; res.Matching.Size < want {
		t.Fatalf("refined target run: size %d below target bound %d", res.Matching.Size, want)
	}
	if res.Candidates != 1 {
		t.Fatalf("refined target 0.5: ran %d candidates, want 1", res.Candidates)
	}
	if err := g.ValidateMatching(res.Matching); err != nil {
		t.Fatal(err)
	}
}
