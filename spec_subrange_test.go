package bipartite

import (
	"strings"
	"testing"

	"repro/internal/watchdog"
)

// This file pins the cluster fan-out primitive at the library level: a
// best-of-K Spec split into disjoint seed sub-ranges across fresh
// Matchers, reduced with the router's rule (largest size — heaviest
// weight for auction — wins, ties toward the smallest winner seed), must
// reproduce the single-process sweep bit for bit. cmd/matchrouter's e2e
// suite re-checks the same identity over HTTP; this is the engine-level
// gate it rests on.

// reduceSubRanges applies the router's associative reduction over
// sub-range results delivered in seed order: strict improvement on the
// objective, ties keep the earlier (smaller-seed) winner.
func reduceSubRanges(results []*MatchResult, weighted bool) *MatchResult {
	best := results[0]
	for _, r := range results[1:] {
		if weighted {
			if r.MatchedWeight > best.MatchedWeight {
				best = r
			}
		} else if r.Matching.Size > best.Matching.Size {
			best = r
		}
	}
	return best
}

func sameMates(t *testing.T, label string, a, b *Matching) {
	t.Helper()
	if a.Size != b.Size {
		t.Fatalf("%s: size %d vs %d", label, a.Size, b.Size)
	}
	for i := range a.RowMate {
		if a.RowMate[i] != b.RowMate[i] {
			t.Fatalf("%s: row %d mate %d vs %d", label, i, a.RowMate[i], b.RowMate[i])
		}
	}
	for j := range a.ColMate {
		if a.ColMate[j] != b.ColMate[j] {
			t.Fatalf("%s: col %d mate %d vs %d", label, j, a.ColMate[j], b.ColMate[j])
		}
	}
}

// TestSeedSubRangeBitIdentity: best-of-32 fanned out as 4 disjoint
// sub-ranges of 8 on fresh Matchers (one per "replica") and reduced must
// return the same winner seed, mates, sizes and total candidate count as
// the single-process sweep, for every cardinality heuristic family.
func TestSeedSubRangeBitIdentity(t *testing.T) {
	g := RandomER(400, 380, 4, 11)
	const K, parts = 32, 4
	for _, alg := range []Algorithm{AlgTwoSided, AlgOneSided, AlgKarpSipser, AlgCheapVertex} {
		spec := Spec{Algorithm: alg, Seed: 100, Ensemble: K}
		full, err := g.NewMatcher(nil).Run(spec)
		if err != nil {
			t.Fatalf("%v full sweep: %v", alg, err)
		}

		results := make([]*MatchResult, parts)
		candidates := 0
		for p := 0; p < parts; p++ {
			sub := spec
			sub.SeedOffset = p * (K / parts)
			sub.SeedCount = K / parts
			// A fresh Matcher per sub-range: each replica computes its own
			// scaling, which Sinkhorn–Knopp makes a pure function of the graph.
			r, err := g.NewMatcher(nil).Run(sub)
			if err != nil {
				t.Fatalf("%v sub-range %d: %v", alg, p, err)
			}
			candidates += r.Candidates
			results[p] = r
		}
		if candidates != K {
			t.Fatalf("%v: sub-ranges ran %d candidates, want %d", alg, candidates, K)
		}
		best := reduceSubRanges(results, false)
		if best.WinnerSeed != full.WinnerSeed {
			t.Fatalf("%v: reduced winner seed %d, want %d", alg, best.WinnerSeed, full.WinnerSeed)
		}
		if best.HeuristicSize != full.HeuristicSize {
			t.Fatalf("%v: reduced heuristic size %d, want %d", alg, best.HeuristicSize, full.HeuristicSize)
		}
		sameMates(t, alg.String(), best.Matching, full.Matching)
	}
}

// TestSeedSubRangeAuction: the same fan-out identity for the weighted
// objective — sub-range auction ensembles share the seed-free warm start
// (Prepare is a pure function of the graph), so the heaviest-weight /
// smallest-seed reduction over slices equals the single-process sweep.
func TestSeedSubRangeAuction(t *testing.T) {
	g := RandomER(120, 110, 5, 3).RandomWeights(WeightSkewed, 9)
	const K, parts = 32, 4
	spec := Spec{Algorithm: AlgAuction, Seed: 40, Ensemble: K, Epsilon: 0.1}
	full, err := g.NewMatcher(nil).Run(spec)
	if err != nil {
		t.Fatalf("full sweep: %v", err)
	}

	results := make([]*MatchResult, parts)
	candidates := 0
	for p := 0; p < parts; p++ {
		sub := spec
		sub.SeedOffset = p * (K / parts)
		sub.SeedCount = K / parts
		r, err := g.NewMatcher(nil).Run(sub)
		if err != nil {
			t.Fatalf("sub-range %d: %v", p, err)
		}
		candidates += r.Candidates
		results[p] = r
	}
	if candidates != K {
		t.Fatalf("sub-ranges ran %d candidates, want %d", candidates, K)
	}
	best := reduceSubRanges(results, true)
	if best.WinnerSeed != full.WinnerSeed {
		t.Fatalf("reduced winner seed %d, want %d", best.WinnerSeed, full.WinnerSeed)
	}
	if best.MatchedWeight != full.MatchedWeight {
		t.Fatalf("reduced weight %v, want %v", best.MatchedWeight, full.MatchedWeight)
	}
	sameMates(t, "auction", best.Matching, full.Matching)

	// A width-1 sub-range must still go through the ensemble clone path:
	// its result is the corresponding candidate of the full sweep, not a
	// differently-warm-started single run.
	one := spec
	one.SeedOffset, one.SeedCount = 0, 1
	r1, err := g.NewMatcher(nil).Run(one)
	if err != nil {
		t.Fatal(err)
	}
	if r1.WinnerSeed != spec.Seed {
		t.Fatalf("count-1 sub-range winner seed %d, want %d", r1.WinnerSeed, spec.Seed)
	}
	if r1.Candidates != 1 {
		t.Fatalf("count-1 sub-range ran %d candidates, want 1", r1.Candidates)
	}
}

// TestSeedSubRangeSequentialParity: the sub-range winner is schedule
// independent — Sequential and pooled fan-out agree, as do different
// worker widths.
func TestSeedSubRangeSequentialParity(t *testing.T) {
	g := RandomER(300, 300, 4, 5)
	sub := Spec{Algorithm: AlgTwoSided, Seed: 7, Ensemble: 16, SeedOffset: 4, SeedCount: 8}
	seq := sub
	seq.Sequential = true
	a, err := g.Match(sub, &Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Match(seq, &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.WinnerSeed != b.WinnerSeed || a.Candidates != b.Candidates {
		t.Fatalf("schedules disagree: winner %d/%d candidates %d/%d",
			a.WinnerSeed, b.WinnerSeed, a.Candidates, b.Candidates)
	}
	sameMates(t, "parity", a.Matching, b.Matching)
}

// TestSeedSubRangeValidate is the error table for the sub-range rules.
func TestSeedSubRangeValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error, "" for valid
	}{
		{"full-range-zero-value", Spec{Ensemble: 8}, ""},
		{"valid-slice", Spec{Ensemble: 8, SeedOffset: 4, SeedCount: 4}, ""},
		{"valid-auction-slice", Spec{Algorithm: AlgAuction, Ensemble: 8, SeedCount: 2}, ""},
		{"negative-offset", Spec{Ensemble: 8, SeedOffset: -1, SeedCount: 2}, "negative seed offset"},
		{"offset-without-count", Spec{Ensemble: 8, SeedOffset: 2}, "positive seed count"},
		{"negative-count", Spec{Ensemble: 8, SeedCount: -2}, "positive seed count"},
		{"no-ensemble", Spec{SeedCount: 2}, "requires an ensemble"},
		{"single-run", Spec{Ensemble: 1, SeedCount: 1}, "requires an ensemble"},
		{"overflows-interval", Spec{Ensemble: 8, SeedOffset: 6, SeedCount: 4}, "exceeds the ensemble"},
		{"refine-split", Spec{Ensemble: 8, SeedCount: 4, Refine: RefineExact}, "refine none"},
		{"target-split", Spec{Ensemble: 8, SeedCount: 4, Target: 0.9}, "refine none"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}
}

// TestSeedSubRangeDegrade: the overload ladder caps the slice's count —
// not the full interval's Ensemble — so a degraded sub-range spec stays
// valid and the marker records what was dropped.
func TestSeedSubRangeDegrade(t *testing.T) {
	in := Spec{Ensemble: 32, SeedOffset: 24, SeedCount: 8}
	got, mark := degradeSpec(in, watchdog.Degraded)
	if mark != "seed_count:8->2" {
		t.Fatalf("marker %q, want %q", mark, "seed_count:8->2")
	}
	if got.Ensemble != 32 || got.SeedOffset != 24 || got.SeedCount != 2 {
		t.Fatalf("degraded spec %+v, want ensemble 32 offset 24 count 2", got)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("degraded sub-range spec invalid: %v", err)
	}
	if _, mark := degradeSpec(Spec{Ensemble: 32, SeedCount: 2}, watchdog.Degraded); mark != "" {
		t.Fatalf("count already under cap degraded anyway: %q", mark)
	}
	got, _ = degradeSpec(in, watchdog.Shedding)
	if got.SeedCount != 1 {
		t.Fatalf("shedding cap %d, want 1", got.SeedCount)
	}
}
