package bipartite

import (
	"math"
	"testing"
)

func TestUndirectedAPI(t *testing.T) {
	g := RandomUndirected(20000, 5, 3)
	if g.Vertices() != 20000 || g.Edges() == 0 {
		t.Fatal("accessor sanity")
	}
	res := g.Match(&Options{ScalingIterations: 3, Seed: 2})
	if err := g.Validate(res.Mate); err != nil {
		t.Fatal(err)
	}
	if frac := 2 * float64(res.Size) / float64(g.Vertices()); frac < 0.7 {
		t.Fatalf("matched fraction %v too low", frac)
	}
	if res.ScalingError < 0 {
		t.Fatal("negative scaling error")
	}
}

func TestNewUndirectedValidation(t *testing.T) {
	g, err := NewUndirected(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 2 {
		t.Fatalf("edges %d want 2", g.Edges())
	}
	res := g.Match(nil)
	if err := g.Validate(res.Mate); err != nil {
		t.Fatal(err)
	}
	if res.Size != 1 {
		t.Fatalf("path P3 matches %d edges want 1", res.Size)
	}
}

func TestPushRelabelAPI(t *testing.T) {
	g := RandomER(2000, 2000, 3, 7)
	pr := g.MaximumMatchingPushRelabel(nil)
	if err := g.ValidateMatching(pr); err != nil {
		t.Fatal(err)
	}
	if pr.Size != g.Sprank() {
		t.Fatalf("push-relabel %d != sprank %d", pr.Size, g.Sprank())
	}
	// Warm-started from a heuristic: same size, fewer free rows to fix.
	two, err := g.TwoSidedMatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	warm := g.MaximumMatchingPushRelabel(two.Matching)
	if warm.Size != pr.Size {
		t.Fatalf("warm push-relabel %d != cold %d", warm.Size, pr.Size)
	}
}

func TestKarpSipserParallelAPI(t *testing.T) {
	g := RandomER(10000, 10000, 3, 9)
	mt := g.KarpSipserParallel(3, 8)
	if err := g.ValidateMatching(mt); err != nil {
		t.Fatal(err)
	}
	if 2*mt.Size < g.Sprank() {
		t.Fatal("below half guarantee")
	}
}

func TestSkewAwareScalingOption(t *testing.T) {
	g := PowerLaw(5000, 10, 1.5, 2000, 3)
	std, err := g.Scale(&Options{ScalingIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	skew, err := g.Scale(&Options{ScalingIterations: 5, SkewAware: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range std.DR {
		if rel := math.Abs(std.DR[i]-skew.DR[i]) / std.DR[i]; rel > 1e-9 {
			t.Fatalf("dr[%d] diverges: %v", i, rel)
		}
	}
}

func TestGuaranteeHelpers(t *testing.T) {
	if math.Abs(OneSidedGuarantee(1)-(1-1/math.E)) > 1e-12 {
		t.Fatal("alpha=1 should give 1-1/e")
	}
	// The paper's §3.3 example: alpha = 0.92 -> ≈ 0.6015.
	if v := OneSidedGuarantee(0.92); math.Abs(v-0.6015) > 0.0005 {
		t.Fatalf("alpha=0.92 gives %v want ≈0.6015", v)
	}
	if OneSidedGuarantee(-5) != 0 {
		t.Fatal("negative alpha should clamp to 0")
	}
	if math.Abs(TwoSidedConjecture()-0.8656) > 0.001 {
		t.Fatalf("conjecture constant %v", TwoSidedConjecture())
	}
	// Guarantee is monotone in alpha.
	if OneSidedGuarantee(0.5) >= OneSidedGuarantee(0.9) {
		t.Fatal("guarantee not monotone")
	}
}

func TestCertificateAPI(t *testing.T) {
	g := RandomER(5000, 6000, 3, 21)
	mt := g.MaximumMatching()
	if !g.CertifyMaximum(mt) {
		t.Fatal("maximum matching failed certification")
	}
	rows, cols, size := g.MinimumVertexCover(mt)
	if size != mt.Size {
		t.Fatalf("König violated: cover %d matching %d", size, mt.Size)
	}
	covered := 0
	for i := range rows {
		if rows[i] {
			covered++
		}
	}
	for j := range cols {
		if cols[j] {
			covered++
		}
	}
	if covered != size {
		t.Fatal("cover size miscounted")
	}
	// A heuristic matching must NOT certify unless it happens to be max.
	two, err := g.TwoSidedMatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if two.Matching.Size < mt.Size && g.CertifyMaximum(two.Matching) {
		t.Fatal("non-maximum heuristic matching certified")
	}
}

func TestHeuristicHierarchyOnHardInstance(t *testing.T) {
	// The paper's headline comparison on one instance: cheap < KS-family
	// < TwoSided on the adversarial family, with exact on top.
	g := HardForKarpSipser(640, 16)
	sp := g.Sprank()
	cheapQ := float64(g.CheapRandomEdge(1).Size) / float64(sp)
	ksMt, _ := g.KarpSipser(1)
	ksQ := float64(ksMt.Size) / float64(sp)
	ksParQ := float64(g.KarpSipserParallel(1, 8).Size) / float64(sp)
	two, err := g.TwoSidedMatch(&Options{ScalingIterations: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	twoQ := g.Quality(two.Matching)
	if twoQ <= ksQ || twoQ <= cheapQ || twoQ <= ksParQ {
		t.Fatalf("hierarchy violated: cheap=%.3f ks=%.3f kspar=%.3f two=%.3f",
			cheapQ, ksQ, ksParQ, twoQ)
	}
	if twoQ < 0.97 {
		t.Fatalf("two-sided only %.3f on the bad case with 10 iterations", twoQ)
	}
}
