// Command matchrouter is the cluster front end: a thin HTTP router that
// serves one matchserve-shaped wire surface over a fleet of matchserve
// replicas, sharding the graph registry across them on a bounded-load
// consistent-hash ring. Registered graphs live on their ring owner;
// /match, /match/batch and PATCH traffic routes by graph id; membership
// follows the replicas' /healthz probes, and a membership change
// rebalances only the keys whose arc changed hands — the owners migrate
// the affected graphs over lazily, on first use.
//
// The router retries retryable rejections (503 admission back-pressure
// and shedding, 429 rate/deadline admission) with exponential backoff
// plus jitter, honoring each response's Retry-After; it hedges slow
// single matches against a second replica holding the graph after a
// p99-derived delay; and it fans best-of-K ensembles out across the
// fleet as disjoint seed sub-ranges, reducing the sub-range winners to
// the exact single-process result. See internal/cluster for the
// semantics and cmd/matchrouter/README.md for the wire tables.
//
// Usage:
//
//	matchrouter -addr :8470 -replicas http://h1:8480,http://h2:8480 \
//	            -probe 2s -maxbody 8388608 -retries 4 -hedge 0 -fanout 0
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/cluster"
)

func main() {
	var (
		addr     = flag.String("addr", ":8470", "listen address")
		replicas = flag.String("replicas", "", "comma-separated replica base URLs (required)")
		probe    = flag.Duration("probe", 2*time.Second, "health probe interval (0 = no active probing)")
		maxBody  = flag.Int64("maxbody", 8<<20, "max request body bytes (0 = unlimited)")
		retries  = flag.Int("retries", 0, "max retries per request (0 = default 4)")
		hedge    = flag.Duration("hedge", 0, "hedge delay for single matches (0 = adaptive p99, negative = off)")
		fanout   = flag.Int("fanout", 0, "max replicas per ensemble fan-out (0 = all healthy)")
		vnodes   = flag.Int("vnodes", 0, "virtual nodes per replica (0 = default 64)")
		factor   = flag.Float64("loadfactor", 0, "bounded-load factor (0 = default 1.25)")
	)
	flag.Parse()

	urls := strings.Split(*replicas, ",")
	clean := urls[:0]
	for _, u := range urls {
		if u = strings.TrimSpace(u); u != "" {
			clean = append(clean, u)
		}
	}
	if len(clean) == 0 {
		log.Fatal("matchrouter: -replicas is required (comma-separated matchserve base URLs)")
	}

	c := cluster.New(clean, cluster.Options{
		VNodes:     *vnodes,
		LoadFactor: *factor,
		MaxRetries: *retries,
		HedgeDelay: *hedge,
		FanOut:     *fanout,
	})
	c.Probe(context.Background()) // reconcile membership before serving
	if *probe > 0 {
		go func() {
			t := time.NewTicker(*probe)
			defer t.Stop()
			for range t.C {
				ctx, cancel := context.WithTimeout(context.Background(), *probe)
				c.Probe(ctx)
				cancel()
			}
		}()
	}

	rt := cluster.NewRouter(c, *maxBody)
	log.Printf("matchrouter listening on %s (replicas=%d probe=%v maxbody=%d hedge=%v fanout=%d)",
		*addr, len(clean), *probe, *maxBody, *hedge, *fanout)
	log.Fatal(http.ListenAndServe(*addr, cluster.NewRouterMux(rt)))
}
