package main

import (
	"fmt"
	"time"

	bipartite "repro"
	"repro/internal/bench"
)

// weighted benchmarks the ε-scaling auction tier: matched-weight
// maximization on uniform and heavy-tailed weight assignments, single
// runs at two slacks plus a best-of-K bidding-seed ensemble. ns_op is
// ns per full auction solve; quality is the certified ratio
// weight/DualBound — the LP-dual certificate the engine returns, an
// upper bound on the optimum, so the column is a sound lower bound on
// weight/optimal at any instance size (the (1−ε) contract guarantees it
// ≥ 1−ε; it is typically far closer to 1). speedup is each mode's
// throughput relative to the default single run on the same instance.
func weighted(cfg bench.Config) []bench.PerfRecord {
	cfg = cfg.Defaults()
	n := 4000
	switch cfg.Scale {
	case "tiny":
		n = 1000
	case "paper":
		n = 20000
	}
	instances := []struct {
		name string
		g    *bipartite.Graph
	}{
		{"er-wuniform", bipartite.RandomER(n, n, 5, cfg.Seed).RandomWeights(bipartite.WeightUniform, cfg.Seed)},
		{"er-wskew", bipartite.RandomER(n, n, 5, cfg.Seed).RandomWeights(bipartite.WeightSkewed, cfg.Seed+1)},
		{"pl-wskew", bipartite.PowerLaw(n, 2, 1.8, n/20, cfg.Seed+2).RandomWeights(bipartite.WeightSkewed, cfg.Seed+3)},
	}
	modes := []struct {
		name string
		spec bipartite.Spec
	}{
		{"weighted/auction", bipartite.Spec{Algorithm: bipartite.AlgAuction, Epsilon: 0.05}},
		{"weighted/auction-coarse", bipartite.Spec{Algorithm: bipartite.AlgAuction, Epsilon: 0.5}},
		{"weighted/auction-best4", bipartite.Spec{Algorithm: bipartite.AlgAuction, Epsilon: 0.05, Ensemble: 4}},
	}
	opt := &bipartite.Options{Workers: 1, Seed: cfg.Seed}

	var records []bench.PerfRecord
	tbl := &bench.Table{
		Title:   "weighted: ε-scaling auction, matched weight within (1−ε) of optimal",
		Headers: []string{"instance", "edges", "mode", "us/solve", "weight", "quality", "rounds", "speedup"},
	}
	for _, inst := range instances {
		var baseNs int64
		for _, mode := range modes {
			var res *bipartite.MatchResult
			best := bench.TimeBest(3, func() {
				r, err := inst.g.Match(mode.spec, opt)
				if err != nil {
					panic(err)
				}
				res = r
			})
			quality := res.MatchedWeight / res.DualBound
			speedup := 1.0
			if mode.name == "weighted/auction" {
				baseNs = best.Nanoseconds()
			} else if baseNs > 0 {
				speedup = float64(baseNs) / float64(best.Nanoseconds())
			}
			records = append(records, bench.PerfRecord{
				Instance:  inst.name,
				Edges:     inst.g.Edges(),
				Heuristic: mode.name,
				Workers:   1,
				NsOp:      best.Nanoseconds(),
				Quality:   quality,
				Speedup:   speedup,
			})
			tbl.AddRow(inst.name, fmt.Sprintf("%d", inst.g.Edges()), mode.name,
				fmt.Sprintf("%.0f", float64(best)/float64(time.Microsecond)),
				fmt.Sprintf("%.1f", res.MatchedWeight),
				fmt.Sprintf("%.4f", quality),
				fmt.Sprintf("%d", res.Rounds),
				fmt.Sprintf("%.2f", speedup))
		}
	}
	tbl.Write(cfg.Out)
	return records
}
