package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	bipartite "repro"
	"repro/internal/bench"
)

// serveInstances are the request-serving workloads: small instances, where
// per-request setup (scaling, allocation, dispatch) rivals the kernels —
// exactly the regime the Matcher/batch layers target.
func serveInstances(scale string) []struct {
	name string
	g    *bipartite.Graph
} {
	n := 10000
	switch scale {
	case "tiny":
		n = 2000
	case "paper":
		n = 50000
	}
	return []struct {
		name string
		g    *bipartite.Graph
	}{
		{"er-small", bipartite.RandomER(n, n, 4, 7)},
		{"pl-small", bipartite.PowerLaw(n, 2, 1.8, n/20, 9)},
	}
}

// serve measures per-request throughput of the TwoSided heuristic served
// six ways — one-shot calls, a reused Matcher session, sequential and
// candidate-parallel best-of-8 ensembles, MatchBatch, and the long-lived
// Server under concurrent submitters (admission control and shared
// per-graph scaling included) — and returns perf-style records (ns_op is
// ns per request; speedup is versus the one-shot tier, except
// ensemble8par's, which is versus ensemble8).
func serve(cfg bench.Config) []bench.PerfRecord {
	cfg = cfg.Defaults()
	requests := 60 * cfg.Runs // 600 at the default 10 runs
	opt := &bipartite.Options{ScalingIterations: 5, Seed: cfg.Seed}

	var records []bench.PerfRecord
	tbl := &bench.Table{
		Title:   "serve: per-request throughput, one-shot vs matcher vs batched",
		Headers: []string{"instance", "edges", "mode", "workers", "us/req", "req/s", "speedup"},
	}
	for _, inst := range serveInstances(cfg.Scale) {
		g := inst.g
		g.Sprank() // warm the cache so Quality inside the timed runs is free
		var quality float64

		oneshot := func() {
			for k := 0; k < requests; k++ {
				o := *opt
				o.Seed = cfg.Seed + uint64(k)
				res, err := g.TwoSidedMatch(&o)
				if err != nil {
					panic(err)
				}
				quality = g.Quality(res.Matching)
			}
		}
		matcher := func() {
			m := g.NewMatcher(opt)
			for k := 0; k < requests; k++ {
				res, err := m.TwoSided(cfg.Seed + uint64(k))
				if err != nil {
					panic(err)
				}
				quality = g.Quality(res.Matching)
			}
		}
		// The ensemble tiers run the same number of TwoSided candidates as
		// the other tiers, but grouped into best-of-8 Specs on one warm
		// session — the jump-start-ensemble shape: one scaling, K kernels
		// per returned (best) matching. ensemble8 keeps the candidates
		// sequential on one arena; ensemble8par fans them out across the
		// pool (one width-1 arena per worker), the candidate-parallel
		// schedule whose speedup over ensemble8 this experiment records.
		ensembleSpec := func(k int, sequential bool) bipartite.Spec {
			return bipartite.Spec{
				Algorithm:  bipartite.AlgTwoSided,
				Seed:       cfg.Seed + uint64(8*k),
				Ensemble:   8,
				Sequential: sequential,
			}
		}
		ensemble := func() {
			m := g.NewMatcher(opt)
			for k := 0; k < requests/8; k++ {
				res, err := m.Run(ensembleSpec(k, true))
				if err != nil {
					panic(err)
				}
				quality = g.Quality(res.Matching)
			}
		}
		ensemblePar := func() {
			m := g.NewMatcher(opt)
			for k := 0; k < requests/8; k++ {
				res, err := m.Run(ensembleSpec(k, false))
				if err != nil {
					panic(err)
				}
				quality = g.Quality(res.Matching)
			}
		}
		reqs := make([]bipartite.Request, requests)
		for k := range reqs {
			reqs[k] = bipartite.Request{Graph: g, Spec: bipartite.Spec{Seed: cfg.Seed + uint64(k)}}
		}
		batched := func() {
			out := bipartite.MatchBatch(reqs, opt)
			quality = g.Quality(out[len(out)-1].Matching)
		}
		// The Server tier measures the full serving loop: bounded
		// admission, collector batching, warm arenas and the shared
		// per-graph scaling, hammered by concurrent submitters the way an
		// HTTP front end would.
		server := func() {
			srv := bipartite.NewServerConfig(opt,
				bipartite.ServerConfig{MaxBatch: 256, Queue: requests})
			const submitters = 8
			var wg sync.WaitGroup
			for s := 0; s < submitters; s++ {
				s := s
				wg.Add(1)
				go func() {
					defer wg.Done()
					for k := s; k < requests; k += submitters {
						resp := srv.Match(reqs[k])
						if resp.Err != nil {
							panic(resp.Err)
						}
						if k == requests-1 {
							quality = g.Quality(resp.Matching)
						}
					}
				}()
			}
			wg.Wait()
			srv.Close()
		}

		poolWidth := runtime.GOMAXPROCS(0)

		var anchor, ensembleSeq time.Duration
		for _, mode := range []struct {
			name    string
			workers int
			run     func()
		}{
			{"serve/oneshot", poolWidth, oneshot},
			{"serve/matcher", poolWidth, matcher},
			{"serve/ensemble8", poolWidth, ensemble},
			{"serve/ensemble8par", poolWidth, ensemblePar},
			{"serve/batch", poolWidth, batched},
			{"serve/server", poolWidth, server},
		} {
			best := bench.TimeBest(3, mode.run)
			switch mode.name {
			case "serve/oneshot":
				anchor = best
			case "serve/ensemble8":
				ensembleSeq = best
			}
			perReq := best / time.Duration(requests)
			// Speedups are versus the one-shot tier — except ensemble8par,
			// whose speedup is versus the sequential ensemble8 tier: that
			// ratio is the candidate-parallel fan-out's win, the number this
			// experiment exists to track.
			speedup := float64(anchor) / float64(best)
			if mode.name == "serve/ensemble8par" {
				speedup = float64(ensembleSeq) / float64(best)
			}
			records = append(records, bench.PerfRecord{
				Instance:  inst.name,
				Edges:     g.Edges(),
				Heuristic: mode.name,
				Workers:   mode.workers,
				NsOp:      perReq.Nanoseconds(),
				Quality:   quality,
				Speedup:   speedup,
			})
			tbl.AddRow(inst.name, fmt.Sprintf("%d", g.Edges()), mode.name,
				fmt.Sprintf("%d", mode.workers),
				fmt.Sprintf("%.1f", float64(perReq.Microseconds())),
				fmt.Sprintf("%.0f", float64(requests)/best.Seconds()),
				fmt.Sprintf("%.2f", speedup))
		}
	}
	tbl.Write(cfg.Out)
	return records
}

// poolSweep (the -pool flag) measures the candidate-parallel best-of-8
// ensemble at each requested pool width against the sequential baseline,
// isolating the fan-out schedule's scaling curve: where the curve
// flattens is the width past which extra ensemble workers only burn
// cores. Each width gets its own dedicated Pool (built and closed around
// the timed runs), so the sweep reflects resident-worker fan-out, not
// the process-default pool at whatever width it happens to have.
func poolSweep(cfg bench.Config, widths []int) []bench.PerfRecord {
	cfg = cfg.Defaults()
	requests := 60 * cfg.Runs
	var records []bench.PerfRecord
	tbl := &bench.Table{
		Title:   "serve: best-of-8 ensemble fan-out vs pool width (-pool)",
		Headers: []string{"instance", "edges", "mode", "workers", "us/req", "req/s", "speedup"},
	}
	for _, inst := range serveInstances(cfg.Scale) {
		g := inst.g
		g.Sprank() // warm the cache so Quality inside the timed runs is free
		var quality float64

		ensembles := func(opt *bipartite.Options, sequential bool) func() {
			return func() {
				m := g.NewMatcher(opt)
				for k := 0; k < requests/8; k++ {
					res, err := m.Run(bipartite.Spec{
						Algorithm:  bipartite.AlgTwoSided,
						Seed:       cfg.Seed + uint64(8*k),
						Ensemble:   8,
						Sequential: sequential,
					})
					if err != nil {
						panic(err)
					}
					quality = g.Quality(res.Matching)
				}
			}
		}
		var anchor time.Duration
		emit := func(name string, workers int, best time.Duration) {
			perReq := best / time.Duration(requests)
			speedup := float64(anchor) / float64(best)
			records = append(records, bench.PerfRecord{
				Instance:  inst.name,
				Edges:     g.Edges(),
				Heuristic: name,
				Workers:   workers,
				NsOp:      perReq.Nanoseconds(),
				Quality:   quality,
				Speedup:   speedup,
			})
			tbl.AddRow(inst.name, fmt.Sprintf("%d", g.Edges()), name,
				fmt.Sprintf("%d", workers),
				fmt.Sprintf("%.1f", float64(perReq.Microseconds())),
				fmt.Sprintf("%.0f", float64(requests)/best.Seconds()),
				fmt.Sprintf("%.2f", speedup))
		}

		opt := &bipartite.Options{ScalingIterations: 5, Seed: cfg.Seed}
		anchor = bench.TimeBest(3, ensembles(opt, true))
		emit("serve/ensemble8/seq", 1, anchor)
		for _, w := range widths {
			pool := bipartite.NewPool(w)
			wopt := &bipartite.Options{ScalingIterations: 5, Seed: cfg.Seed, Pool: pool}
			best := bench.TimeBest(3, ensembles(wopt, false))
			pool.Close()
			emit(fmt.Sprintf("serve/ensemble8/pool%d", w), w, best)
		}
	}
	tbl.Write(cfg.Out)
	return records
}
