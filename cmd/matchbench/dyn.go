package main

import (
	"fmt"
	"math/rand"
	"time"

	bipartite "repro"
	"repro/internal/bench"
)

// dynInstances are the mutation workloads: mid-sized instances where a
// full recompute per batch is clearly measurable against incremental
// maintenance, but small enough that the full tier sweep stays fast.
func dynInstances(scale string) []struct {
	name string
	g    *bipartite.Graph
} {
	n := 5000
	switch scale {
	case "tiny":
		n = 1000
	case "paper":
		n = 20000
	}
	return []struct {
		name string
		g    *bipartite.Graph
	}{
		{"er-dyn", bipartite.RandomER(n, n, 4, 7)},
		{"pl-dyn", bipartite.PowerLaw(n, 2, 1.8, n/20, 9)},
	}
}

// dynBatch is one pre-generated mutation batch.
type dynBatch struct {
	ins, del [][2]int
}

// dynTrace pre-generates a deterministic mutation trace outside the timed
// region: per batch, a few deletions sampled from the live edge set and a
// few uniform insertions, mirrored so every tier replays the identical
// trace.
func dynTrace(g *bipartite.Graph, batches, perBatch int, seed uint64) []dynBatch {
	rng := rand.New(rand.NewSource(int64(seed)))
	live := make([][2]int, 0, g.Edges())
	set := make(map[[2]int]bool, g.Edges())
	for i := 0; i < g.Rows(); i++ {
		for _, j := range g.Neighbors(i) {
			e := [2]int{i, int(j)}
			live = append(live, e)
			set[e] = true
		}
	}
	trace := make([]dynBatch, batches)
	for b := range trace {
		var t dynBatch
		for k := 0; k < perBatch/2; k++ {
			e := live[rng.Intn(len(live))]
			t.del = append(t.del, e)
			delete(set, e)
		}
		for k := 0; k < perBatch-perBatch/2; k++ {
			e := [2]int{rng.Intn(g.Rows()), rng.Intn(g.Cols())}
			t.ins = append(t.ins, e)
			set[e] = true
		}
		// Rebuild the sampling list; correctness only needs it to cover the
		// live set, and a full rebuild keeps the generator trivially right.
		live = live[:0]
		for e := range set {
			live = append(live, e)
		}
		trace[b] = t
	}
	return trace
}

// dyn measures batched mutation throughput two ways per spec tier:
// maintained (one DynSession absorbs the whole trace, repairing
// incrementally) versus recompute (the mutated snapshot is re-solved from
// scratch after every batch — the baseline any system without incremental
// maintenance pays). ns_op is ns per mutation batch; speedup is
// maintained-vs-recompute within the same spec tier, the number this
// experiment exists to track.
func dyn(cfg bench.Config) []bench.PerfRecord {
	cfg = cfg.Defaults()
	batches := 15 * cfg.Runs // 150 at the default 10 runs
	const perBatch = 6
	opt := &bipartite.Options{ScalingIterations: 5, Seed: cfg.Seed}

	var records []bench.PerfRecord
	tbl := &bench.Table{
		Title:   "dyn: batched mutations, incremental maintenance vs recompute-per-batch",
		Headers: []string{"instance", "edges", "mode", "batch/s", "us/batch", "quality", "speedup"},
	}
	for _, inst := range dynInstances(cfg.Scale) {
		g := inst.g
		trace := dynTrace(g, batches, perBatch, cfg.Seed)

		specs := []struct {
			name string
			spec bipartite.Spec
		}{
			{"exact", bipartite.Spec{Algorithm: bipartite.AlgTwoSided, Refine: bipartite.RefineExact}},
			{"heur", bipartite.Spec{Algorithm: bipartite.AlgTwoSided}},
		}
		for _, sp := range specs {
			var quality float64
			maintained := func() {
				sess, err := g.NewDynSession(sp.spec, opt)
				if err != nil {
					panic(err)
				}
				for _, t := range trace {
					if _, err := sess.Apply(t.ins, t.del); err != nil {
						panic(err)
					}
				}
				quality = sess.Snapshot().Quality(sess.Matching())
			}
			recompute := func() {
				// The graph still mutates through a (heuristic, cheapest)
				// session — some mutable representation is always needed — but
				// every batch is answered by a from-scratch solve of the
				// mutated snapshot.
				sess, err := g.NewDynSession(bipartite.Spec{Algorithm: bipartite.AlgTwoSided}, opt)
				if err != nil {
					panic(err)
				}
				for _, t := range trace {
					if _, err := sess.Apply(t.ins, t.del); err != nil {
						panic(err)
					}
					snap := sess.Snapshot()
					res, err := snap.Match(sp.spec, opt)
					if err != nil {
						panic(err)
					}
					quality = snap.Quality(res.Matching)
				}
			}

			recomputeBest := bench.TimeBest(3, recompute)
			emitDyn(tbl, &records, inst.name, g.Edges(), "dyn/recompute-"+sp.name,
				batches, recomputeBest, quality, 1.0)
			maintainedBest := bench.TimeBest(3, maintained)
			emitDyn(tbl, &records, inst.name, g.Edges(), "dyn/maintained-"+sp.name,
				batches, maintainedBest, quality, float64(recomputeBest)/float64(maintainedBest))
		}
	}
	tbl.Write(cfg.Out)
	return records
}

func emitDyn(tbl *bench.Table, records *[]bench.PerfRecord, inst string, edges int,
	mode string, batches int, best time.Duration, quality, speedup float64) {
	perBatch := best / time.Duration(batches)
	*records = append(*records, bench.PerfRecord{
		Instance:  inst,
		Edges:     edges,
		Heuristic: mode,
		Workers:   1,
		NsOp:      perBatch.Nanoseconds(),
		Quality:   quality,
		Speedup:   speedup,
	})
	tbl.AddRow(inst, fmt.Sprintf("%d", edges), mode,
		fmt.Sprintf("%.0f", float64(batches)/best.Seconds()),
		fmt.Sprintf("%.1f", float64(perBatch.Microseconds())),
		fmt.Sprintf("%.4f", quality),
		fmt.Sprintf("%.2f", speedup))
}
