// Command matchbench regenerates every table and figure of the paper's
// evaluation section on synthetic analog workloads.
//
// Usage:
//
//	matchbench -exp all                         # everything (minutes)
//	matchbench -exp table1,table2               # specific experiments
//	matchbench -exp fig3,fig4 -threads 1,2,4,8  # custom thread sweep
//	matchbench -exp table3 -scale paper         # paper-sized instances
//
// Experiments: qualityfi, table1, table2, table3, fig3, fig4, fig5,
// conjecture, ablation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiments: qualityfi,table1,table2,table3,fig3,fig4,fig5,conjecture,ablation,extension")
		scale   = flag.String("scale", "small", "instance scale: tiny | small | paper")
		runs    = flag.Int("runs", 10, "randomized repetitions for min-quality tables")
		seed    = flag.Uint64("seed", 1, "base RNG seed")
		threads = flag.String("threads", "1,2,4,8,16", "thread sweep for speedup experiments")
	)
	flag.Parse()

	var tl []int
	for _, tok := range strings.Split(*threads, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "matchbench: bad -threads element %q\n", tok)
			os.Exit(2)
		}
		tl = append(tl, v)
	}
	cfg := bench.Config{
		Scale:   *scale,
		Threads: tl,
		Runs:    *runs,
		Seed:    *seed,
		Out:     os.Stdout,
	}.Defaults()

	want := map[string]bool{}
	for _, tok := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(tok))] = true
	}
	all := want["all"]
	ran := 0
	run := func(name string, f func()) {
		if !all && !want[name] {
			return
		}
		ran++
		start := time.Now()
		fmt.Printf("\n### %s (scale=%s)\n", name, cfg.Scale)
		f()
		fmt.Printf("### %s done in %v\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("qualityfi", func() { bench.QualityFI(cfg, nil) })
	run("table1", func() { bench.Table1(cfg, 0) })
	run("table2", func() { bench.Table2(cfg, table2N(cfg.Scale)) })
	run("table3", func() { bench.Table3(cfg) })
	run("fig3", func() { bench.Fig3(cfg) })
	run("fig4", func() { bench.Fig4(cfg) })
	run("fig5", func() { bench.Fig5(cfg) })
	run("conjecture", func() { bench.Conjecture(cfg, nil) })
	run("ablation", func() {
		bench.AblationScaling(cfg, 0)
		bench.AblationSchedule(cfg, 0)
		bench.AblationKSVariants(cfg, 0)
	})
	run("extension", func() {
		bench.Walkup(cfg, nil)
		bench.Undirected(cfg, 0)
	})

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "matchbench: no experiment matched %q\n", *exp)
		os.Exit(2)
	}
}

func table2N(scale string) int {
	switch scale {
	case "tiny":
		return 5000
	case "paper":
		return 100000 // the paper's size
	default:
		return 50000
	}
}
