// Command matchbench regenerates every table and figure of the paper's
// evaluation section on synthetic analog workloads.
//
// Usage:
//
//	matchbench -exp all                         # everything (minutes)
//	matchbench -exp table1,table2               # specific experiments
//	matchbench -exp fig3,fig4 -threads 1,2,4,8  # custom thread sweep
//	matchbench -exp table3 -scale paper         # paper-sized instances
//	matchbench -exp serve -pool 1,2,4,8         # ensemble fan-out width sweep
//	matchbench -exp cluster                     # sharded fleet vs direct replica
//
// Experiments: qualityfi, table1, table2, table3, fig3, fig4, fig5,
// conjecture, ablation, extension, perf, refine, serve, dyn, weighted,
// cluster.
//
// refine measures the exact-refinement engines (Hopcroft-Karp,
// push-relabel, and the parallel MS-BFS-Graft engine at 1/2/4 workers)
// completing one shared cheap warm start on adversarial instances.
//
// The perf, refine and serve experiments additionally write their records to a
// machine-readable JSON file (-json, default BENCH_matchbench.json) so
// the performance trajectory can be tracked across commits, and any run
// can capture a CPU profile with -cpuprofile. serve measures per-request
// throughput of one-shot calls vs a reused Matcher session vs MatchBatch
// on small instances (the dispatch-bound serving regime). dyn measures
// batched-mutation throughput of dynamic sessions: incrementally
// maintained matchings vs a from-scratch recompute after every batch.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() { os.Exit(run()) }

// run holds main's body so error exits unwind the deferred CPU-profile
// stop and file close instead of truncating the profile via os.Exit.
func run() int {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiments: qualityfi,table1,table2,table3,fig3,fig4,fig5,conjecture,ablation,extension,perf,refine,serve,dyn,weighted,cluster")
		scale   = flag.String("scale", "small", "instance scale: tiny | small | paper")
		runs    = flag.Int("runs", 10, "randomized repetitions for min-quality tables")
		seed    = flag.Uint64("seed", 1, "base RNG seed")
		threads = flag.String("threads", "1,2,4,8,16", "thread sweep for speedup experiments")
		pool    = flag.String("pool", "", "comma-separated pool widths: sweep the serve experiment's candidate-parallel ensemble fan-out across these widths (empty disables)")
		jsonOut = flag.String("json", "BENCH_matchbench.json", "write perf records to this JSON file (empty disables)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "matchbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "matchbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	var tl []int
	for _, tok := range strings.Split(*threads, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "matchbench: bad -threads element %q\n", tok)
			return 2
		}
		tl = append(tl, v)
	}
	var poolWidths []int
	if *pool != "" {
		for _, tok := range strings.Split(*pool, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "matchbench: bad -pool element %q\n", tok)
				return 2
			}
			poolWidths = append(poolWidths, v)
		}
	}
	cfg := bench.Config{
		Scale:   *scale,
		Threads: tl,
		Runs:    *runs,
		Seed:    *seed,
		Out:     os.Stdout,
	}.Defaults()

	want := map[string]bool{}
	for _, tok := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(tok))] = true
	}
	all := want["all"]
	ran := 0
	failed := 0
	runExp := func(name string, f func()) {
		if !all && !want[name] {
			return
		}
		ran++
		start := time.Now()
		fmt.Printf("\n### %s (scale=%s)\n", name, cfg.Scale)
		f()
		fmt.Printf("### %s done in %v\n", name, time.Since(start).Round(time.Millisecond))
	}

	runExp("qualityfi", func() { bench.QualityFI(cfg, nil) })
	runExp("table1", func() { bench.Table1(cfg, 0) })
	runExp("table2", func() { bench.Table2(cfg, table2N(cfg.Scale)) })
	runExp("table3", func() { bench.Table3(cfg) })
	runExp("fig3", func() { bench.Fig3(cfg) })
	runExp("fig4", func() { bench.Fig4(cfg) })
	runExp("fig5", func() { bench.Fig5(cfg) })
	runExp("conjecture", func() { bench.Conjecture(cfg, nil) })
	runExp("ablation", func() {
		bench.AblationScaling(cfg, 0)
		bench.AblationSchedule(cfg, 0)
		bench.AblationKSVariants(cfg, 0)
	})
	runExp("extension", func() {
		bench.Walkup(cfg, nil)
		bench.Undirected(cfg, 0)
	})
	var records []bench.PerfRecord
	runExp("perf", func() { records = append(records, bench.Perf(cfg)...) })
	runExp("refine", func() { records = append(records, bench.Refine(cfg)...) })
	runExp("serve", func() {
		records = append(records, serve(cfg)...)
		if len(poolWidths) > 0 {
			records = append(records, poolSweep(cfg, poolWidths)...)
		}
	})
	runExp("dyn", func() { records = append(records, dyn(cfg)...) })
	runExp("weighted", func() { records = append(records, weighted(cfg)...) })
	runExp("cluster", func() { records = append(records, clusterBench(cfg)...) })

	if len(records) > 0 && *jsonOut != "" {
		blob, err := json.MarshalIndent(struct {
			Schema  string             `json:"schema"`
			Scale   string             `json:"scale"`
			Seed    uint64             `json:"seed"`
			Records []bench.PerfRecord `json:"records"`
		}{"matchbench/perf/v1", cfg.Scale, cfg.Seed, records}, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "matchbench: -json: %v\n", err)
			failed = 1
		} else {
			blob = append(blob, '\n')
			if err := os.WriteFile(*jsonOut, blob, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "matchbench: -json: %v\n", err)
				failed = 1
			} else {
				fmt.Printf("%d bench records written to %s\n", len(records), *jsonOut)
			}
		}
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "matchbench: no experiment matched %q\n", *exp)
		return 2
	}
	return failed
}

func table2N(scale string) int {
	switch scale {
	case "tiny":
		return 5000
	case "paper":
		return 100000 // the paper's size
	default:
		return 50000
	}
}
