package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	bipartite "repro"
	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/servehttp"
)

// clusterN sizes the cluster tier's instance per scale. The regime is the
// same as serve: small graphs where dispatch (here: HTTP + routing)
// rivals the kernels.
func clusterN(scale string) int {
	switch scale {
	case "tiny":
		return 2000
	case "paper":
		return 20000
	default:
		return 6000
	}
}

// miniFleet is a bench-local fleet of in-process matchserve replicas,
// each at Workers: 1 — the one-core-per-replica model under which the
// fan-out split's win is the thing being measured rather than the
// process-local pool's.
type miniFleet struct {
	servers  []*httptest.Server
	handlers []*servehttp.Handler
	pools    []*bipartite.Pool
	urls     []string
}

func bootFleet(n int, seed uint64) *miniFleet {
	f := &miniFleet{}
	for i := 0; i < n; i++ {
		// Each replica gets its own width-1 pool: real replicas are separate
		// processes, so sharing the process-default pool across the
		// in-process stand-ins would serialize exactly the parallelism the
		// fan-out tier measures.
		pool := bipartite.NewPool(1)
		srv := bipartite.NewServerConfig(
			&bipartite.Options{ScalingIterations: 5, Workers: 1, Seed: seed, Pool: pool},
			bipartite.ServerConfig{MaxBatch: 64})
		h := servehttp.NewHandler(srv, servehttp.Config{MaxGraphs: 16, MaxBody: 64 << 20})
		ts := httptest.NewServer(servehttp.NewMux(h))
		f.servers = append(f.servers, ts)
		f.handlers = append(f.handlers, h)
		f.pools = append(f.pools, pool)
		f.urls = append(f.urls, ts.URL)
	}
	return f
}

func (f *miniFleet) close() {
	for i, ts := range f.servers {
		ts.Close()
		f.handlers[i].Close()
		f.pools[i].Close()
	}
}

// postMatch sends one wire match request and returns the decoded size.
func postMatch(url string, mr cluster.MatchRequest) int {
	body, err := json.Marshal(&mr)
	if err != nil {
		panic(err)
	}
	resp, err := http.Post(url+"/match", "application/json", bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var out cluster.MatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		panic(err)
	}
	if resp.StatusCode != http.StatusOK || out.Error != "" {
		panic(fmt.Sprintf("cluster bench: match status %d error %q", resp.StatusCode, out.Error))
	}
	return out.Size
}

func registerOn(url string, gs cluster.GraphSpec) string {
	body, err := json.Marshal(&gs)
	if err != nil {
		panic(err)
	}
	resp, err := http.Post(url+"/graph", "application/json", bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var reply struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		panic(err)
	}
	if resp.StatusCode != http.StatusOK || reply.ID == "" {
		panic(fmt.Sprintf("cluster bench: register status %d error %q", resp.StatusCode, reply.Error))
	}
	return reply.ID
}

// clusterBench measures cluster-scale serving end to end over real wire
// hops: routed single matches through the consistent-hash router over 3
// replicas versus the same requests straight at one replica, and a
// best-of-32 ensemble fanned out across 4 replicas as seed sub-ranges
// versus the full 32-candidate sweep on one replica. ns_op is ns per
// request (per best-of-32 request for the ensemble tiers); routed's
// speedup is versus direct, fan4's versus the single-replica sweep.
func clusterBench(cfg bench.Config) []bench.PerfRecord {
	cfg = cfg.Defaults()
	n := clusterN(cfg.Scale)
	g := bipartite.RandomER(n, n, 4, 7)
	rows, _, ptr, idx := g.CSR()
	edges := make([][2]int, 0, ptr[rows])
	for i := 0; i < rows; i++ {
		for p := ptr[i]; p < ptr[i+1]; p++ {
			edges = append(edges, [2]int{i, int(idx[p])})
		}
	}
	gs := cluster.GraphSpec{Rows: n, Cols: n, Edges: edges}
	requests := 30 * cfg.Runs // 300 at the default 10 runs
	ensRequests := requests / 32
	if ensRequests < 1 {
		ensRequests = 1
	}
	sprank := g.Sprank()
	var lastSize int

	// Direct tier: one replica, no router in the path.
	single := bootFleet(1, cfg.Seed)
	defer single.close()
	directID := registerOn(single.urls[0], gs)
	direct := func() {
		for k := 0; k < requests; k++ {
			lastSize = postMatch(single.urls[0], cluster.MatchRequest{
				Graph: directID, Algorithm: "twosided", Seed: cfg.Seed + uint64(k)})
		}
	}
	bestof32 := func() {
		for k := 0; k < ensRequests; k++ {
			lastSize = postMatch(single.urls[0], cluster.MatchRequest{
				Graph: directID, Algorithm: "twosided", Seed: cfg.Seed + uint64(32*k), BestOf: 32})
		}
	}

	// Routed tier: 3 replicas behind the router.
	routedFleet := bootFleet(3, cfg.Seed)
	defer routedFleet.close()
	router3 := httptest.NewServer(cluster.NewRouterMux(cluster.NewRouter(
		cluster.New(routedFleet.urls, cluster.Options{HedgeDelay: -1}), 0)))
	defer router3.Close()
	routedID := registerOn(router3.URL, gs)
	routed := func() {
		for k := 0; k < requests; k++ {
			lastSize = postMatch(router3.URL, cluster.MatchRequest{
				Graph: routedID, Algorithm: "twosided", Seed: cfg.Seed + uint64(k)})
		}
	}

	// Fan-out tier: best-of-32 split 4 ways across 4 replicas.
	fanFleet := bootFleet(4, cfg.Seed)
	defer fanFleet.close()
	router4 := httptest.NewServer(cluster.NewRouterMux(cluster.NewRouter(
		cluster.New(fanFleet.urls, cluster.Options{HedgeDelay: -1, FanOut: 4}), 0)))
	defer router4.Close()
	fanID := registerOn(router4.URL, gs)
	fan4 := func() {
		for k := 0; k < ensRequests; k++ {
			lastSize = postMatch(router4.URL, cluster.MatchRequest{
				Graph: fanID, Algorithm: "twosided", Seed: cfg.Seed + uint64(32*k), BestOf: 32})
		}
	}

	var records []bench.PerfRecord
	tbl := &bench.Table{
		Title:   "cluster: routed fleet vs direct replica, fan-out vs full sweep",
		Headers: []string{"instance", "edges", "mode", "replicas", "us/req", "req/s", "speedup"},
	}
	inst := fmt.Sprintf("er-cluster-%s", cfg.Scale)
	var directBest, sweepBest time.Duration
	for _, mode := range []struct {
		name     string
		replicas int
		reqs     int
		run      func()
	}{
		{"cluster/direct", 1, requests, direct},
		{"cluster/routed3", 3, requests, routed},
		{"cluster/bestof32", 1, ensRequests, bestof32},
		{"cluster/bestof32/fan4", 4, ensRequests, fan4},
	} {
		best := bench.TimeBest(3, mode.run)
		switch mode.name {
		case "cluster/direct":
			directBest = best
		case "cluster/bestof32":
			sweepBest = best
		}
		perReq := best / time.Duration(mode.reqs)
		// Routed pays the extra hop for fleet capacity; fan4 buys the
		// sweep's latency down with replica parallelism. Each is compared
		// to its own single-replica shape.
		speedup := float64(directBest) / float64(best)
		if mode.name == "cluster/bestof32" || mode.name == "cluster/bestof32/fan4" {
			speedup = float64(sweepBest) / float64(best)
		}
		records = append(records, bench.PerfRecord{
			Instance:  inst,
			Edges:     g.Edges(),
			Heuristic: mode.name,
			Workers:   mode.replicas,
			NsOp:      perReq.Nanoseconds(),
			Quality:   float64(lastSize) / float64(sprank),
			Speedup:   speedup,
		})
		tbl.AddRow(inst, fmt.Sprintf("%d", g.Edges()), mode.name,
			fmt.Sprintf("%d", mode.replicas),
			fmt.Sprintf("%.1f", float64(perReq.Microseconds())),
			fmt.Sprintf("%.0f", float64(mode.reqs)/best.Seconds()),
			fmt.Sprintf("%.2f", speedup))
	}
	tbl.Write(cfg.Out)
	return records
}
