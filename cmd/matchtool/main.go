// Command matchtool computes a bipartite matching of a Matrix Market file
// with any of the library's algorithms and reports size, quality and time.
//
// Usage:
//
//	matchtool -in graph.mtx -alg twosided -iters 5
//	matchtool -in graph.mtx -alg twosided -refine exact   # heuristic jump-start + Hopcroft-Karp
//	matchtool -in graph.mtx -alg cheap-edge -refine pushrelabel  # auction-family refinement
//	matchtool -in graph.mtx -alg twosided -refine graft   # parallel MS-BFS-Graft refinement
//	matchtool -in graph.mtx -alg twosided -best-of 8      # best-of-8 seed ensemble, one scaling,
//	                                                      # candidates fanned out across the pool
//	matchtool -in graph.mtx -best-of 8 -sequential        # same ensemble, candidates in series
//	matchtool -in graph.mtx -alg auction -epsilon 0.05    # weighted: matched weight
//	                                                      # within (1-eps) of optimal
//	matchtool -in graph.mtx -alg hk                       # exact maximum
//	matchtool -in graph.mtx -alg ks -seed 7
//	matchtool dyn -in graph.mtx -trace mutations.txt      # replay a mutation trace on a
//	                                                      # dynamic session (see dyn.go)
//
// Algorithms: onesided, twosided, ks (classic Karp-Sipser), ksp
// (multithreaded Karp-Sipser), cheap-edge, cheap-vertex, auction (the
// weighted ε-scaling auction; reads the MatrixMarket values as edge
// weights, pattern files weigh every edge 1.0) — all served by the
// declarative Spec engine and composable with
// -refine/-best-of/-target/-sequential (the auction takes -best-of but
// rejects -refine/-target: its objective is weight, not cardinality) —
// plus the direct exact solvers hk (Hopcroft-Karp) and mc21.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	bipartite "repro"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "dyn" {
		runDyn(os.Args[2:])
		return
	}
	var (
		in      = flag.String("in", "", "input MatrixMarket file (required)")
		alg     = flag.String("alg", "twosided", "algorithm: onesided|twosided|ks|ksp|cheap-edge|cheap-vertex|auction|hk|mc21")
		iters   = flag.Int("iters", 5, "Sinkhorn-Knopp scaling iterations (one/two-sided)")
		workers = flag.Int("workers", 0, "worker count; 0 = all CPUs")
		seed    = flag.Uint64("seed", 1, "RNG seed")
		refine  = flag.String("refine", "none", "refinement: none|exact|pushrelabel|graft (augment the heuristic matching to maximum cardinality; exact auto-selects graft on large instances)")
		bestOf  = flag.Int("best-of", 1, "ensemble size: run seeds seed..seed+K-1 on one shared scaling and keep the largest matching")
		target  = flag.Float64("target", 0, "ensemble early-stop: halt once size reaches target*sprank-upper-bound, in (0,1]")
		seq     = flag.Bool("sequential", false, "run ensemble candidates sequentially on one arena instead of fanning out across the pool")
		epsilon = flag.Float64("epsilon", 0, "auction approximation slack in (0,1): matched weight >= (1-eps)*optimal; 0 = library default (-alg auction only)")
		quality = flag.Bool("quality", false, "also compute sprank and report quality (costs an exact run)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "matchtool: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	g, err := bipartite.ReadMatrixMarket(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "matchtool: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("graph: %d rows, %d cols, %d edges, avg degree %.2f\n",
		g.Rows(), g.Cols(), g.Edges(), g.AvgDegree())

	opt := &bipartite.Options{ScalingIterations: *iters, Workers: *workers, Seed: *seed}
	var mt *bipartite.Matching
	start := time.Now()
	switch *alg {
	case "hk", "mc21":
		// Direct exact solvers: no spec fields apply.
		if *refine != "none" || *bestOf > 1 || *target != 0 || *seq {
			fmt.Fprintf(os.Stderr, "matchtool: -refine/-best-of/-target/-sequential do not apply to %s (already exact)\n", *alg)
			os.Exit(2)
		}
		if *alg == "hk" {
			mt = g.MaximumMatching()
		} else {
			mt, _ = g.MaximumMatchingFrom(nil)
		}
	default:
		algorithm, err := bipartite.ParseAlgorithm(canonicalAlg(*alg))
		if err != nil {
			fmt.Fprintf(os.Stderr, "matchtool: unknown algorithm %q\n", *alg)
			os.Exit(2)
		}
		refinement, err := bipartite.ParseRefinement(*refine)
		if err != nil {
			fail(err)
		}
		spec := bipartite.Spec{
			Algorithm:  algorithm,
			Refine:     refinement,
			Ensemble:   *bestOf,
			Target:     *target,
			Sequential: *seq,
			Epsilon:    *epsilon,
		}
		res, err := g.Match(spec, opt)
		fail(err)
		mt = res.Matching
		if res.Scaling != nil {
			fmt.Printf("scaling error after %d iters: %.4g\n", res.Scaling.Iterations, res.Scaling.Error)
		}
		if res.KSStats != nil {
			fmt.Printf("karp-sipser stats: %+v\n", *res.KSStats)
		}
		if spec.Ensemble > 1 {
			schedule := "parallel"
			if spec.Sequential {
				schedule = "sequential"
			}
			fmt.Printf("ensemble (%s): %d candidates run, winner seed %d (size %d)\n",
				schedule, res.Candidates, res.WinnerSeed, res.HeuristicSize)
		}
		if res.Refined {
			fmt.Printf("refinement (%s): heuristic %d -> %d (+%d augmenting rows)\n",
				res.RefinedWith, res.HeuristicSize, mt.Size, mt.Size-res.HeuristicSize)
		}
		if algorithm == bipartite.AlgAuction {
			fmt.Printf("auction: matched weight %.6g (>= %.6g of optimal, eps %.3g), %d bidding rounds\n",
				res.MatchedWeight, 1-res.Epsilon, res.Epsilon, res.Rounds)
		}
	}
	elapsed := time.Since(start)

	if err := g.ValidateMatching(mt); err != nil {
		fmt.Fprintf(os.Stderr, "matchtool: INVALID MATCHING: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("algorithm: %s\nmatched: %d\ntime: %v\n", *alg, mt.Size, elapsed)
	if *quality {
		sp := g.Sprank()
		fmt.Printf("sprank: %d\nquality: %.4f\n", sp, float64(mt.Size)/float64(sp))
	}
}

// canonicalAlg maps matchtool's historic short names onto the wire names
// ParseAlgorithm understands.
func canonicalAlg(s string) string {
	switch s {
	case "ks":
		return "karpsipser"
	case "ksp":
		return "karpsipser-parallel"
	}
	return s
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "matchtool: %v\n", err)
		os.Exit(1)
	}
}
