// Command matchtool computes a bipartite matching of a Matrix Market file
// with any of the library's algorithms and reports size, quality and time.
//
// Usage:
//
//	matchtool -in graph.mtx -alg twosided -iters 5
//	matchtool -in graph.mtx -alg hk                 # exact maximum
//	matchtool -in graph.mtx -alg ks -seed 7
//
// Algorithms: onesided, twosided, ks (classic Karp-Sipser), hk
// (Hopcroft-Karp), mc21, cheap-edge, cheap-vertex.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	bipartite "repro"
)

func main() {
	var (
		in      = flag.String("in", "", "input MatrixMarket file (required)")
		alg     = flag.String("alg", "twosided", "algorithm: onesided|twosided|ks|hk|mc21|cheap-edge|cheap-vertex")
		iters   = flag.Int("iters", 5, "Sinkhorn-Knopp scaling iterations (one/two-sided)")
		workers = flag.Int("workers", 0, "worker count; 0 = all CPUs")
		seed    = flag.Uint64("seed", 1, "RNG seed")
		quality = flag.Bool("quality", false, "also compute sprank and report quality (costs an exact run)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "matchtool: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	g, err := bipartite.ReadMatrixMarket(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "matchtool: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("graph: %d rows, %d cols, %d edges, avg degree %.2f\n",
		g.Rows(), g.Cols(), g.Edges(), g.AvgDegree())

	opt := &bipartite.Options{ScalingIterations: *iters, Workers: *workers, Seed: *seed}
	var mt *bipartite.Matching
	start := time.Now()
	switch *alg {
	case "onesided":
		res, err := g.OneSidedMatch(opt)
		fail(err)
		mt = res.Matching
		fmt.Printf("scaling error after %d iters: %.4g\n", res.Scaling.Iterations, res.Scaling.Error)
	case "twosided":
		res, err := g.TwoSidedMatch(opt)
		fail(err)
		mt = res.Matching
		fmt.Printf("scaling error after %d iters: %.4g\n", res.Scaling.Iterations, res.Scaling.Error)
	case "ks":
		var st bipartite.KarpSipserStats
		mt, st = g.KarpSipser(*seed)
		fmt.Printf("karp-sipser stats: %+v\n", st)
	case "hk":
		mt = g.MaximumMatching()
	case "mc21":
		m, _ := g.MaximumMatchingFrom(nil)
		mt = m
	case "cheap-edge":
		mt = g.CheapRandomEdge(*seed)
	case "cheap-vertex":
		mt = g.CheapRandomVertex(*seed)
	default:
		fmt.Fprintf(os.Stderr, "matchtool: unknown algorithm %q\n", *alg)
		os.Exit(2)
	}
	elapsed := time.Since(start)

	if err := g.ValidateMatching(mt); err != nil {
		fmt.Fprintf(os.Stderr, "matchtool: INVALID MATCHING: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("algorithm: %s\nmatched: %d\ntime: %v\n", *alg, mt.Size, elapsed)
	if *quality {
		sp := g.Sprank()
		fmt.Printf("sprank: %d\nquality: %.4f\n", sp, float64(mt.Size)/float64(sp))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "matchtool: %v\n", err)
		os.Exit(1)
	}
}
