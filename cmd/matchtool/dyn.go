package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	bipartite "repro"
)

// runDyn is the `matchtool dyn` subcommand: it opens a dynamic session on
// a Matrix Market graph and replays a mutation trace against it, batch by
// batch, reporting the incremental-maintenance provenance after each one.
//
// Usage:
//
//	matchtool dyn -in graph.mtx -trace mutations.txt
//	matchtool dyn -in graph.mtx -trace - -refine none -quality
//
// The trace is line-oriented:
//
//   - i j    stage an edge insertion
//   - i j    stage an edge deletion
//     commit   apply the staged batch (deletes before inserts, atomically)
//     # ...    comment; blank lines are skipped
//
// A trailing partial batch at EOF is committed implicitly. "-trace -"
// reads the trace from stdin, so a driver can stream mutations into a
// long-lived session.
func runDyn(args []string) {
	fs := flag.NewFlagSet("matchtool dyn", flag.ExitOnError)
	var (
		in      = fs.String("in", "", "input MatrixMarket file (required)")
		trace   = fs.String("trace", "", "mutation trace file (required); '-' reads stdin")
		alg     = fs.String("alg", "twosided", "algorithm: onesided|twosided|ks|ksp|cheap-edge|cheap-vertex")
		refine  = fs.String("refine", "exact", "refinement: none keeps a heuristic session (targeted repair only); anything else maintains the exact maximum")
		iters   = fs.Int("iters", 5, "Sinkhorn-Knopp scaling iterations")
		seed    = fs.Uint64("seed", 1, "RNG seed")
		quality = fs.Bool("quality", false, "report sprank and quality after the trace (costs an exact run)")
	)
	fs.Parse(args)
	if *in == "" || *trace == "" {
		fmt.Fprintln(os.Stderr, "matchtool dyn: -in and -trace are required")
		fs.Usage()
		os.Exit(2)
	}
	g, err := bipartite.ReadMatrixMarket(*in)
	fail(err)
	algorithm, err := bipartite.ParseAlgorithm(canonicalAlg(*alg))
	fail(err)
	refinement, err := bipartite.ParseRefinement(*refine)
	fail(err)

	var src io.Reader = os.Stdin
	if *trace != "-" {
		f, err := os.Open(*trace)
		fail(err)
		defer f.Close()
		src = f
	}

	opt := &bipartite.Options{ScalingIterations: *iters, Seed: *seed}
	start := time.Now()
	sess, err := g.NewDynSession(bipartite.Spec{Algorithm: algorithm, Refine: refinement}, opt)
	fail(err)
	fmt.Printf("session: %d rows, %d cols, %d edges, initial size %d (%s)\n",
		sess.Rows(), sess.Cols(), sess.Edges(), sess.Size(), sessionKind(refinement))

	var inserts, deletes [][2]int
	batch := 0
	commit := func() {
		if len(inserts) == 0 && len(deletes) == 0 {
			return
		}
		batch++
		res, err := sess.Apply(inserts, deletes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "matchtool dyn: batch %d: %v\n", batch, err)
			os.Exit(1)
		}
		fmt.Printf("batch %d: +%d -%d freed %d augments %d rescaled %v size %d\n",
			batch, res.Inserted, res.Deleted, res.Freed, res.Augments, res.Rescaled, res.MaintainedSize)
		inserts, deletes = inserts[:0], deletes[:0]
	}

	sc := bufio.NewScanner(src)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		switch {
		case text == "" || strings.HasPrefix(text, "#"):
		case text == "commit":
			commit()
		default:
			fields := strings.Fields(text)
			if len(fields) != 3 || (fields[0] != "+" && fields[0] != "-") {
				fmt.Fprintf(os.Stderr, "matchtool dyn: %s:%d: want '+ i j', '- i j' or 'commit', got %q\n", *trace, line, text)
				os.Exit(2)
			}
			i, erri := strconv.Atoi(fields[1])
			j, errj := strconv.Atoi(fields[2])
			if erri != nil || errj != nil {
				fmt.Fprintf(os.Stderr, "matchtool dyn: %s:%d: bad endpoints in %q\n", *trace, line, text)
				os.Exit(2)
			}
			if fields[0] == "+" {
				inserts = append(inserts, [2]int{i, j})
			} else {
				deletes = append(deletes, [2]int{i, j})
			}
		}
	}
	fail(sc.Err())
	commit() // trailing partial batch
	elapsed := time.Since(start)

	snap := sess.Snapshot()
	if err := snap.ValidateMatching(sess.Matching()); err != nil {
		fmt.Fprintf(os.Stderr, "matchtool dyn: INVALID MAINTAINED MATCHING: %v\n", err)
		os.Exit(1)
	}
	st := sess.Stats()
	fmt.Printf("trace: %d batches, +%d -%d edges, %d freed, %d augments, %d rescales\n",
		st.Batches, st.Inserted, st.Deleted, st.Freed, st.Augments, st.Rescales)
	fmt.Printf("final: %d edges, size %d, time %v\n", sess.Edges(), sess.Size(), elapsed)
	if *quality {
		sp := snap.Sprank()
		fmt.Printf("sprank: %d\nquality: %.4f\n", sp, float64(sess.Size())/float64(sp))
	}
}

func sessionKind(r bipartite.Refinement) string {
	if r == bipartite.RefineNone {
		return "heuristic, targeted repair"
	}
	return "exact, maintained maximum"
}
