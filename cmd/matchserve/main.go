// Command matchserve is an HTTP/JSON matching service on top of the
// library's batching Server: a receiver→worker→writer loop where the
// receiver is the HTTP layer, the worker is the pool-wide batch engine
// with its per-slot Matcher arenas, and the writer streams the decoded
// matchings back as JSON. Concurrent requests are drained into shared
// batches, so the service amortizes dispatch and workspace setup exactly
// like the in-process API.
//
// The service is production-shaped: request bodies are size-capped
// (-maxbody, HTTP 413 beyond it), every matching request carries the HTTP
// request's context plus an optional deadline (-timeout or a per-request
// "timeout_ms", HTTP 504 when it expires), a full admission queue answers
// 503 instead of queueing without bound, the graph registry evicts its
// least recently used entry once -maxgraphs is reached, and per-op latency
// histograms are exported on /metrics.
//
// The service also protects itself. A watchdog samples the process's own
// CPU and RSS (-cpulimit, -rsslimit, -wdinterval) and drives a shedding
// ladder: under mild pressure every admitted request runs a downgraded
// Spec (exact refinement dropped, ensembles capped — the response then
// carries a "degraded" provenance field and still satisfies the paper's
// heuristic quality bound); under heavier pressure "priority":"low"
// requests are shed with 503, then everything below "priority":"high".
// Per-client token buckets (-rate, -burst, keyed by the X-Client header
// or the remote host) answer greedy clients 429, and a queue-aware
// admission check rejects requests whose deadline the backlog has already
// doomed with 429 instead of burning kernels on them. Every 429/503
// carries a Retry-After header with the admission layer's estimate of
// when retrying can succeed.
//
// Endpoints:
//
//	POST /graph        register a graph: {"rows":R,"cols":C,"edges":[[i,j],...]}
//	                   optionally weighted with "weights":[w,...] (one
//	                   strictly positive finite weight per edge)
//	                   → {"id":"g1","rows":R,"cols":C,"edges":E}
//	                   (registering past -maxgraphs evicts the least
//	                   recently used graph)
//	DELETE /graph/{id} evict a registered graph explicitly (this also drops
//	                   the engine's cached scaling of the graph)
//	PATCH /graph/{id}  mutate a registered graph in place:
//	                   {"insert":[[i,j],...],"delete":[[i,j],...]}
//	                   → {"id":"g1","rows":R,"cols":C,"edges":E,
//	                      "inserted":I,"deleted":D,"freed":F,
//	                      "augments":A,"rescaled":true,
//	                      "maintained_size":S}
//	                   (the matching is maintained incrementally by an
//	                   exact dynamic session, so "maintained_size" is the
//	                   mutated graph's structural rank; deletes apply
//	                   before inserts, the batch is atomic — an
//	                   out-of-range endpoint 400s with nothing applied —
//	                   and later /match requests run on the mutated graph,
//	                   the stale cached scaling dropped coherently; on a
//	                   weighted graph the session is an ε-scaling auction
//	                   instead, inserts may carry "weights":[w,...] — one
//	                   per inserted edge, a weight on a present edge
//	                   updates it — and the reply adds
//	                   "maintained_weight":W, the re-auctioned matched
//	                   weight on the mutated graph)
//	POST /match        match once: {"graph":"g1","algorithm":"twosided",
//	                   "seed":7,"refine":"exact","best_of":8,"target":0.95,
//	                   "sequential":false,"timeout_ms":50,"priority":"low"}
//	                   or with an inline graph:
//	                   {"rows":..,"cols":..,"edges":..,"algorithm":..}
//	                   → {"size":S,"rows":R,"cols":C,"row_mate":[...],
//	                      "winner_seed":9,"candidates_run":3,
//	                      "heuristic_size":H,"refined":true,
//	                      "refined_with":"graft",
//	                      "degraded":"refine:exact->none","ms":1.2}
//	                   ("degraded" appears only on responses the watchdog
//	                   downgraded; the X-Client header names the caller
//	                   for per-client rate limiting)
//	POST /match/batch  {"requests":[<match request>, ...]}
//	                   → {"responses":[<match response | error>, ...],"ms":batchMs}
//	                   (request and response envelopes may be gzip-encoded:
//	                   send Content-Encoding: gzip and/or Accept-Encoding: gzip)
//	GET  /healthz      → {"status":"ok"}
//	GET  /stats        → {"requests":N,"batches":B,"rejected":J,"shed":S,
//	                      "would_miss":W,"rate_limited":L,"degraded":D,
//	                      "graphs":G,"evictions":E}
//	GET  /metrics      → {"ops":{"twosided":{"count":N,"p50_ms":..,"p99_ms":..},..},
//	                      "watchdog":{"level":"nominal","cpu":..,
//	                      "rss_bytes":..,"utilization":..},
//	                      "requests":N,"batches":B,"rejected":J,...}
//	                   with ?format=prom (or an Accept header asking for
//	                   text/plain / OpenMetrics), the same counters,
//	                   gauges and histograms in Prometheus text format
//
// Match requests carry the library's declarative Spec on the wire:
// "algorithm" selects the heuristic (twosided, onesided, karpsipser,
// karpsipser-parallel, cheap-edge, cheap-vertex, auction; "op" survives
// as a deprecated alias), "refine" augments the heuristic matching toward
// maximum cardinality ("exact" = Hopcroft–Karp jump-start, "pushrelabel" =
// the push-relabel/auction family), "best_of":K runs a best-of-K seed
// ensemble on one shared scaling, "target" stops the ensemble early at the
// given quality fraction, and "sequential":true forces the ensemble's
// candidates onto one arena (inside the batch engine's width-1 slots the
// candidates run sequentially either way; a standalone Matcher fans them
// out across the pool). Invalid specs are answered with precise 400s
// before any kernel runs.
//
// "algorithm":"auction" is the weighted objective: the ε-scaling auction
// maximizes the matched weight, guaranteed ≥ (1−ε)·optimal with
// "epsilon" (0 = the library default of 0.05; must lie in (0,1) and is
// only valid with auction, which also rejects "refine" and "target" —
// its objective is weight, theirs cardinality). On a pattern graph every
// edge weighs 1.0, so the auction degenerates to cardinality. Successful
// auction responses extend the provenance with "matched_weight" (the
// weight of the returned matching), "epsilon" (the resolved slack behind
// its guarantee) and "rounds" (bidding rounds run); "best_of" ensembles
// share one deterministic price warm-start and finish each candidate
// from its own bidding seed, heaviest matching wins.
//
// Every successful match response carries the engine's provenance:
// "winner_seed" (the ensemble seed that produced the matching),
// "candidates_run" (how many candidates were consumed — a target or the
// ensemble-aware refinement may stop the sweep before best_of),
// "heuristic_size" (the winner's cardinality before refinement),
// "refined" (whether a refinement stage ran) and "refined_with" (the
// engine that ran — reports the auto-selection outcome when the request
// asked for "exact"). size − heuristic_size is exactly the work the
// exact solver added on top of the jump-start.
//
// Registering a graph once and matching it by id is the warm path: the
// server computes one scaling per graph (shared by every batch slot), so a
// seed-sweep workload pays the scaling sweeps once and the sampling
// kernels per request. Evicting a graph — explicitly or via the LRU cap —
// also drops that cached scaling through Server.DropGraph, so the registry
// and the engine scale-cache share one lifetime.
//
// Usage:
//
//	matchserve -addr :8480 -batch 256 -queue 1024 -workers 0 -iters 5 \
//	           -maxgraphs 1024 -maxbody 8388608 -timeout 0 \
//	           -cpulimit -1 -rsslimit 0 -wdinterval 1s -rate 0 -burst 0
//
// -cpulimit defaults to -1 (automatic): 0.85 of the cgroup v2 CPU quota
// when one throttles the process, 0.85 of the whole machine otherwise.
//
// The handler itself lives in the importable internal/servehttp package,
// so the cluster integration suite and cmd/matchrouter's tests can boot
// replicas in-process; this command is the flags-and-listener shell
// around it.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	bipartite "repro"
	"repro/internal/servehttp"
)

func main() {
	var (
		addr      = flag.String("addr", ":8480", "listen address")
		batch     = flag.Int("batch", 256, "max requests drained into one batch")
		queue     = flag.Int("queue", 0, "admission queue depth (0 = 4x batch)")
		workers   = flag.Int("workers", 0, "parallel width (0 = all CPUs)")
		iters     = flag.Int("iters", 5, "Sinkhorn-Knopp scaling iterations")
		maxGraphs = flag.Int("maxgraphs", 1024, "max registered graphs before LRU eviction (0 = unlimited)")
		maxBody   = flag.Int64("maxbody", 8<<20, "max request body bytes (0 = unlimited)")
		timeout   = flag.Duration("timeout", 0, "default per-request deadline (0 = none)")

		cpuLimit   = flag.Float64("cpulimit", -1, "watchdog CPU limit as a fraction of all cores (0 = CPU dimension off; negative = auto: 0.85 of the cgroup v2 CPU quota when one throttles the process, of the whole machine otherwise)")
		rssLimit   = flag.Int64("rsslimit", 0, "watchdog RSS limit in bytes (0 = RSS dimension off)")
		wdInterval = flag.Duration("wdinterval", time.Second, "watchdog sampling interval")
		rate       = flag.Float64("rate", 0, "per-client admission rate in requests/s (0 = unlimited)")
		burst      = flag.Int("burst", 0, "per-client burst ceiling (0 = 2x rate)")
	)
	flag.Parse()

	cpu := *cpuLimit
	if cpu < 0 {
		cpu = bipartite.AutoCPULimit(0.85)
	}
	opt := &bipartite.Options{ScalingIterations: *iters, Workers: *workers}
	srv := bipartite.NewServerConfig(opt, bipartite.ServerConfig{
		MaxBatch: *batch,
		Queue:    *queue,
		Watchdog: bipartite.WatchdogConfig{
			CPULimit: cpu,
			RSSLimit: uint64(max(*rssLimit, 0)),
			Interval: *wdInterval,
		},
		RatePerClient: *rate,
		RateBurst:     *burst,
	})
	h := servehttp.NewHandler(srv, servehttp.Config{
		MaxGraphs: *maxGraphs,
		MaxBody:   *maxBody,
		Timeout:   *timeout,
	})

	log.Printf("matchserve listening on %s (batch=%d queue=%d workers=%d iters=%d maxgraphs=%d maxbody=%d timeout=%v cpulimit=%g rsslimit=%d rate=%g)",
		*addr, *batch, *queue, *workers, *iters, *maxGraphs, *maxBody, *timeout, cpu, *rssLimit, *rate)
	// log.Fatal would os.Exit past any deferred Close; shut the batching
	// server down explicitly once the listener fails.
	err := http.ListenAndServe(*addr, servehttp.NewMux(h))
	h.Close()
	log.Fatal(err)
}
