// Command matchserve is an HTTP/JSON matching service on top of the
// library's batching Server: a receiver→worker→writer loop where the
// receiver is the HTTP layer, the worker is the pool-wide batch engine
// with its per-slot Matcher arenas, and the writer streams the decoded
// matchings back as JSON. Concurrent requests are drained into shared
// batches, so the service amortizes dispatch and workspace setup exactly
// like the in-process API.
//
// Endpoints:
//
//	POST /graph        register a graph: {"rows":R,"cols":C,"edges":[[i,j],...]}
//	                   → {"id":"g1","rows":R,"cols":C,"edges":E}
//	DELETE /graph/{id} evict a registered graph (the registry is capped by
//	                   -maxgraphs; registration past the cap is rejected)
//	POST /match        match once: {"graph":"g1","op":"twosided","seed":7}
//	                   or with an inline graph: {"rows":..,"cols":..,"edges":..,"op":..}
//	                   → {"size":S,"rows":R,"cols":C,"row_mate":[...],"ms":1.2}
//	POST /match/batch  {"requests":[<match request>, ...]}
//	                   → {"responses":[<match response | error>, ...],"ms":batchMs}
//	GET  /healthz      → {"status":"ok"}
//	GET  /stats        → {"requests":N,"batches":B,"graphs":G}
//
// Registering a graph once and matching it by id is the warm path: every
// arena that has served the graph keeps its scaling cached, so a
// seed-sweep workload pays the scaling sweeps once per slot and the
// sampling kernels per request.
//
// Usage:
//
//	matchserve -addr :8480 -batch 256 -workers 0 -iters 5 -maxgraphs 1024
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	bipartite "repro"
)

func main() {
	var (
		addr      = flag.String("addr", ":8480", "listen address")
		batch     = flag.Int("batch", 256, "max requests drained into one batch")
		workers   = flag.Int("workers", 0, "parallel width (0 = all CPUs)")
		iters     = flag.Int("iters", 5, "Sinkhorn-Knopp scaling iterations")
		maxGraphs = flag.Int("maxgraphs", 1024, "max registered graphs (0 = unlimited)")
	)
	flag.Parse()

	opt := &bipartite.Options{ScalingIterations: *iters, Workers: *workers}
	h := newHandler(bipartite.NewServer(opt, *batch), *maxGraphs)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /graph", h.handleGraph)
	mux.HandleFunc("DELETE /graph/{id}", h.handleGraphDelete)
	mux.HandleFunc("POST /match", h.handleMatch)
	mux.HandleFunc("POST /match/batch", h.handleBatch)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /stats", h.handleStats)

	log.Printf("matchserve listening on %s (batch=%d workers=%d iters=%d)",
		*addr, *batch, *workers, *iters)
	// log.Fatal would os.Exit past any deferred Close; shut the batching
	// server down explicitly once the listener fails.
	err := http.ListenAndServe(*addr, mux)
	h.srv.Close()
	log.Fatal(err)
}

// handler owns the matching server and the graph registry.
type handler struct {
	srv *bipartite.Server

	mu        sync.RWMutex
	graphs    map[string]*bipartite.Graph
	maxGraphs int
	nextID    atomic.Int64
}

func newHandler(srv *bipartite.Server, maxGraphs int) *handler {
	return &handler{srv: srv, graphs: make(map[string]*bipartite.Graph), maxGraphs: maxGraphs}
}

// graphSpec is an inline graph definition.
type graphSpec struct {
	Rows  int      `json:"rows"`
	Cols  int      `json:"cols"`
	Edges [][2]int `json:"edges"`
}

func (s *graphSpec) build() (*bipartite.Graph, error) {
	if s.Rows <= 0 || s.Cols <= 0 {
		return nil, fmt.Errorf("rows and cols must be positive, got %dx%d", s.Rows, s.Cols)
	}
	return bipartite.FromEdges(s.Rows, s.Cols, s.Edges)
}

// matchRequest is one /match body: a registered graph id or an inline
// graph, plus heuristic and seed.
type matchRequest struct {
	graphSpec
	GraphID string `json:"graph"`
	Op      string `json:"op"`
	Seed    uint64 `json:"seed"`
}

// matchResponse is the writer-side shape of one served matching.
type matchResponse struct {
	Size    int     `json:"size"`
	Rows    int     `json:"rows"`
	Cols    int     `json:"cols"`
	RowMate []int32 `json:"row_mate"`
	// Ms is the wall-clock of a single /match; batch responses omit it
	// and report one batch-wide "ms" in the envelope instead (the
	// requests ran concurrently, so no per-request wall-clock exists).
	Ms    float64 `json:"ms,omitempty"`
	Error string  `json:"error,omitempty"`
}

// resolve turns a wire request into a library request.
func (h *handler) resolve(mr *matchRequest) (bipartite.Request, error) {
	op, err := bipartite.ParseOp(mr.Op)
	if err != nil {
		return bipartite.Request{}, err
	}
	var g *bipartite.Graph
	if mr.GraphID != "" {
		h.mu.RLock()
		g = h.graphs[mr.GraphID]
		h.mu.RUnlock()
		if g == nil {
			return bipartite.Request{}, fmt.Errorf("unknown graph %q", mr.GraphID)
		}
	} else {
		if g, err = mr.build(); err != nil {
			return bipartite.Request{}, err
		}
	}
	return bipartite.Request{Graph: g, Op: op, Seed: mr.Seed}, nil
}

func (h *handler) handleGraph(w http.ResponseWriter, r *http.Request) {
	var spec graphSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	g, err := spec.build()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id := "g" + strconv.FormatInt(h.nextID.Add(1), 10)
	h.mu.Lock()
	if h.maxGraphs > 0 && len(h.graphs) >= h.maxGraphs {
		h.mu.Unlock()
		writeError(w, http.StatusInsufficientStorage,
			fmt.Errorf("graph registry full (%d); DELETE /graph/{id} to free slots", h.maxGraphs))
		return
	}
	h.graphs[id] = g
	h.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"id": id, "rows": g.Rows(), "cols": g.Cols(), "edges": g.Edges(),
	})
}

func (h *handler) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	h.mu.Lock()
	_, ok := h.graphs[id]
	delete(h.graphs, id)
	h.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown graph %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (h *handler) handleMatch(w http.ResponseWriter, r *http.Request) {
	var mr matchRequest
	if err := json.NewDecoder(r.Body).Decode(&mr); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req, err := h.resolve(&mr)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	resp := h.srv.Match(req)
	writeJSON(w, http.StatusOK, toWire(resp, time.Since(start)))
}

func (h *handler) handleBatch(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Requests []matchRequest `json:"requests"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	reqs := make([]bipartite.Request, len(body.Requests))
	// Per-request resolution errors are reported in-band so one bad entry
	// does not fail the batch; its slot is served as a nil graph and the
	// response swapped for the resolution error afterwards.
	resolveErrs := make([]error, len(body.Requests))
	for i := range body.Requests {
		reqs[i], resolveErrs[i] = h.resolve(&body.Requests[i])
	}
	start := time.Now()
	resps := h.srv.MatchBatch(reqs)
	elapsed := time.Since(start)
	out := make([]matchResponse, len(resps))
	for i, resp := range resps {
		if resolveErrs[i] != nil {
			resp = bipartite.Response{Err: resolveErrs[i]}
		}
		out[i] = toWire(resp, 0)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"responses": out,
		"ms":        float64(elapsed.Microseconds()) / 1000,
	})
}

func (h *handler) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := h.srv.Stats()
	h.mu.RLock()
	graphs := len(h.graphs)
	h.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"requests": st.Requests, "batches": st.Batches, "graphs": graphs,
	})
}

func toWire(resp bipartite.Response, d time.Duration) matchResponse {
	if resp.Err != nil {
		return matchResponse{Error: resp.Err.Error()}
	}
	return matchResponse{
		Size:    resp.Matching.Size,
		Rows:    len(resp.Matching.RowMate),
		Cols:    len(resp.Matching.ColMate),
		RowMate: resp.Matching.RowMate,
		Ms:      float64(d.Microseconds()) / 1000,
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("matchserve: write: %v", err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
