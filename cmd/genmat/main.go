// Command genmat writes synthetic benchmark matrices in Matrix Market
// format, covering every workload family used by the experiments.
//
// Usage:
//
//	genmat -kind er -n 100000 -deg 4 -out er.mtx
//	genmat -kind badks -n 3200 -k 32 -out hard.mtx
//	genmat -kind grid3 -side 60 -out mesh.mtx
//	genmat -kind er -n 5000 -deg 6 -weights skew -out wer.mtx
//
// Kinds: er, rect, full, badks, grid2, mesh2, grid3, grid3d27, road,
// powerlaw, band, fi, kkt.
//
// -weights attaches seeded synthetic edge weights to any family
// ("uniform" draws from (0,1], "skew" heavy-tailed Pareto(1,1.5)); the
// file is then written as a real-valued MatrixMarket matrix, ready for
// matchtool -alg auction. -wseed seeds the weight draw independently of
// the pattern seed so one pattern can carry many weight assignments.
package main

import (
	"flag"
	"fmt"
	"os"

	bipartite "repro"
)

func main() {
	var (
		kind    = flag.String("kind", "er", "matrix family")
		out     = flag.String("out", "", "output .mtx path (required)")
		n       = flag.Int("n", 10000, "primary dimension")
		m       = flag.Int("m", 0, "secondary dimension (rect); defaults to n")
		deg     = flag.Float64("deg", 4, "average degree (er/rect/road)")
		k       = flag.Int("k", 8, "k parameter (badks)")
		side    = flag.Int("side", 50, "grid side (grid2/mesh2/grid3/grid3d27)")
		seed    = flag.Uint64("seed", 1, "RNG seed")
		weights = flag.String("weights", "", "edge weight distribution: uniform|skew (empty = pattern only)")
		wseed   = flag.Uint64("wseed", 0, "weight RNG seed; 0 = -seed")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "genmat: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	if *m == 0 {
		*m = *n
	}
	var g *bipartite.Graph
	switch *kind {
	case "er":
		g = bipartite.RandomER(*n, *n, *deg, *seed)
	case "rect":
		g = bipartite.RandomER(*n, *m, *deg, *seed)
	case "full":
		g = bipartite.Complete(*n)
	case "badks":
		g = bipartite.HardForKarpSipser(*n, *k)
	case "grid2":
		g = bipartite.Grid2D(*side, *side)
	case "mesh2":
		g = bipartite.Grid2D(*side, *side) // 5-point; see also the library's Mesh2D analog
	case "grid3":
		g = bipartite.Grid3D(*side, *side, *side, false)
	case "grid3d27":
		g = bipartite.Grid3D(*side, *side, *side, true)
	case "road":
		g = bipartite.RoadNetwork(*n, *deg, *seed)
	case "powerlaw":
		g = bipartite.PowerLaw(*n, 2, 1.5, *n, *seed)
	case "band":
		g = bipartite.Banded(*n, 0, -1, 1)
	case "fi":
		g = bipartite.FullyIndecomposable(*n, 2, *seed)
	case "kkt":
		g = bipartite.SaddlePoint(*n, *n/4, 2, *seed)
	default:
		fmt.Fprintf(os.Stderr, "genmat: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if *weights != "" {
		dist, err := bipartite.ParseWeightDist(*weights)
		if err != nil {
			fmt.Fprintf(os.Stderr, "genmat: %v\n", err)
			os.Exit(2)
		}
		ws := *wseed
		if ws == 0 {
			ws = *seed
		}
		g = g.RandomWeights(dist, ws)
	}
	if err := g.WriteMatrixMarket(*out); err != nil {
		fmt.Fprintf(os.Stderr, "genmat: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d x %d, %d edges\n", *out, g.Rows(), g.Cols(), g.Edges())
}
