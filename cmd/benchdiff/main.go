// Command benchdiff compares a fresh matchbench perf JSON file against a
// baseline and fails when the new run regressed: any record whose ns_op
// grew beyond the tolerated ratio of its baseline fails the diff. It is
// the CI perf-regression gate — a PR runs `matchbench -exp perf -scale
// tiny` and diffs the fresh records against the baseline.
//
// The baseline comes from two sources, layered:
//
//   - With -history DIR, the primary baseline is the per-key *median*
//     ns_op over the perf JSONs in DIR — the rolling window of recent
//     green CI runs on the same runner class. A median over same-class
//     runs absorbs runner noise far better than any single file, so the
//     -tolerance applied to it can be much tighter than a committed-file
//     gate could afford.
//   - Keys absent from the history (a cold cache, or a brand-new
//     experiment tier) fall back to the committed -old file under the
//     looser -fallback-tolerance, because the committed numbers may come
//     from different hardware.
//
// Without -history, every record diffs against -old at
// -fallback-tolerance — the original committed-file behaviour.
//
// -save (with -history) appends the fresh file to the history after a
// clean diff and prunes it to the -keep most recent files; CI runs it
// only on green, so the window holds green runs by construction.
//
// Records are matched by (instance, heuristic, workers); records present
// in only one side are reported and skipped, so a baseline that carries
// more experiments than the fresh run (for example the serve tiers) still
// diffs cleanly against a perf-only run.
//
// Usage:
//
//	benchdiff -old BENCH_matchbench.json -new fresh.json -tolerance 1.6
//	benchdiff -history .bench-history -new fresh.json -tolerance 1.5 -save
//
// Exit status: 0 clean, 1 regression found, 2 usage or input error
// (unreadable file, wrong schema, or no overlapping records).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

// perfRecord mirrors bench.PerfRecord's JSON shape; benchdiff decodes it
// independently so it can diff files produced by any commit.
type perfRecord struct {
	Instance  string  `json:"instance"`
	Heuristic string  `json:"heuristic"`
	Workers   int     `json:"workers"`
	NsOp      int64   `json:"ns_op"`
	Quality   float64 `json:"quality"`
}

// benchFile is the envelope cmd/matchbench writes.
type benchFile struct {
	Schema  string       `json:"schema"`
	Scale   string       `json:"scale"`
	Records []perfRecord `json:"records"`
}

const wantSchema = "matchbench/perf/v1"

func readBench(path string) (*benchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != wantSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, wantSchema)
	}
	return &f, nil
}

func key(r perfRecord) string {
	return fmt.Sprintf("%s|%s|%d", r.Instance, r.Heuristic, r.Workers)
}

// baseRec is one baseline entry: the ns_op to diff against and whether it
// is a rolling median (tight tolerance) or a committed-file fallback
// (loose tolerance).
type baseRec struct {
	ns     int64
	median bool
}

// diffLine is one compared record pair.
type diffLine struct {
	key        string
	oldNs      int64
	newNs      int64
	ratio      float64
	median     bool
	regression bool
}

// loadHistory reads every *.json perf file in dir and collects per-key
// ns_op samples. Unreadable or wrong-schema files are skipped with a
// warning rather than failing the gate — a corrupt cache entry must not
// block every future PR. The returned names list the files that parsed,
// sorted (oldest first by the run-NNNN naming convention saveHistory
// uses).
func loadHistory(dir string) (map[string][]int64, []string) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(paths) == 0 {
		return nil, nil
	}
	sort.Strings(paths)
	hist := make(map[string][]int64)
	var names []string
	for _, p := range paths {
		f, err := readBench(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: skipping history file: %v\n", err)
			continue
		}
		names = append(names, p)
		for _, r := range f.Records {
			hist[key(r)] = append(hist[key(r)], r.NsOp)
		}
	}
	return hist, names
}

// median returns the middle sample (mean of the middle two on even
// counts); samples is sorted in place.
func median(samples []int64) int64 {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	n := len(samples)
	if n%2 == 1 {
		return samples[n/2]
	}
	return (samples[n/2-1] + samples[n/2]) / 2
}

// buildBaseline layers the rolling-median history over the committed
// file: history medians win, committed records fill keys the window has
// not seen yet. Either source may be nil.
func buildBaseline(hist map[string][]int64, oldF *benchFile) map[string]baseRec {
	base := make(map[string]baseRec)
	if oldF != nil {
		for _, r := range oldF.Records {
			base[key(r)] = baseRec{ns: r.NsOp}
		}
	}
	for k, samples := range hist {
		base[k] = baseRec{ns: median(samples), median: true}
	}
	return base
}

// diffBase matches fresh records against the baseline and flags every new
// ns_op beyond its tolerance — the tight one for rolling-median entries,
// the loose fallback for committed-file entries. Ratios below 1 are
// improvements; they never fail the diff.
func diffBase(base map[string]baseRec, newF *benchFile, tolerance, fallbackTolerance float64) (lines []diffLine, onlyOld, onlyNew []string) {
	seen := make(map[string]bool, len(newF.Records))
	for _, r := range newF.Records {
		k := key(r)
		seen[k] = true
		b, ok := base[k]
		if !ok {
			onlyNew = append(onlyNew, k)
			continue
		}
		tol := fallbackTolerance
		if b.median {
			tol = tolerance
		}
		ratio := float64(r.NsOp) / float64(b.ns)
		lines = append(lines, diffLine{
			key:        k,
			oldNs:      b.ns,
			newNs:      r.NsOp,
			ratio:      ratio,
			median:     b.median,
			regression: ratio > tol,
		})
	}
	for k := range base {
		if !seen[k] {
			onlyOld = append(onlyOld, k)
		}
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].key < lines[j].key })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return lines, onlyOld, onlyNew
}

// diff is the single-baseline form (no history): every record diffs
// against oldF at one tolerance.
func diff(oldF, newF *benchFile, tolerance float64) (lines []diffLine, onlyOld, onlyNew []string) {
	return diffBase(buildBaseline(nil, oldF), newF, tolerance, tolerance)
}

// saveHistory appends newPath's contents to dir as the next run-NNNN.json
// and prunes the oldest files beyond keep.
func saveHistory(dir, newPath string, keep int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	existing, err := filepath.Glob(filepath.Join(dir, "run-*.json"))
	if err != nil {
		return err
	}
	sort.Strings(existing)
	next := 1
	if n := len(existing); n > 0 {
		var last int
		if _, err := fmt.Sscanf(filepath.Base(existing[n-1]), "run-%d.json", &last); err == nil {
			next = last + 1
		}
	}
	blob, err := os.ReadFile(newPath)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("run-%06d.json", next)), blob, 0o644); err != nil {
		return err
	}
	existing = append(existing, filepath.Join(dir, fmt.Sprintf("run-%06d.json", next)))
	for len(existing) > keep {
		if err := os.Remove(existing[0]); err != nil {
			return err
		}
		existing = existing[1:]
	}
	return nil
}

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		oldPath    = fs.String("old", "BENCH_matchbench.json", "committed-fallback perf JSON; with -history it only covers keys the window has not seen")
		newPath    = fs.String("new", "", "fresh perf JSON to compare (required)")
		tolerance  = fs.Float64("tolerance", 1.5, "max tolerated ns_op ratio against a rolling-median baseline (and against -old when no -history is given)")
		historyDir = fs.String("history", "", "directory of recent green-run perf JSONs; their per-key median ns_op becomes the primary baseline")
		fallback   = fs.Float64("fallback-tolerance", 2.0, "tolerance for keys diffed against -old instead of the history median (committed numbers may come from different hardware)")
		save       = fs.Bool("save", false, "after a clean diff, append -new to -history and prune to -keep files")
		keep       = fs.Int("keep", 5, "history files retained by -save")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *newPath == "" || *tolerance <= 0 || *fallback <= 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required and tolerances must be positive")
		fs.Usage()
		return 2
	}
	if *save && *historyDir == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -save needs -history")
		fs.Usage()
		return 2
	}
	if *keep < 1 {
		fmt.Fprintln(os.Stderr, "benchdiff: -keep must be at least 1")
		fs.Usage()
		return 2
	}

	var hist map[string][]int64
	var histFiles []string
	if *historyDir != "" {
		hist, histFiles = loadHistory(*historyDir)
	}
	// Without a history window the committed file is the whole baseline and
	// must be readable; with one it is only the fallback layer, so a
	// missing file just narrows coverage to the window.
	oldF, err := readBench(*oldPath)
	if err != nil {
		if len(hist) == 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "benchdiff: no committed fallback: %v\n", err)
		oldF = nil
	}
	newF, err := readBench(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}

	// Tolerance selection: with a populated history window, median keys get
	// the tight -tolerance and committed-fallback keys the loose
	// -fallback-tolerance. A cold cache (-history given but empty) loosens
	// everything to the fallback — the committed numbers may come from
	// different hardware. Without -history at all, -tolerance governs the
	// whole diff, exactly the original single-baseline behaviour.
	tol, fb := *tolerance, *fallback
	if *historyDir == "" {
		fb = *tolerance
	} else if len(hist) == 0 {
		tol = *fallback
	}
	lines, onlyOld, onlyNew := diffBase(buildBaseline(hist, oldF), newF, tol, fb)
	if len(lines) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no overlapping records between the baseline and %s\n", *newPath)
		return 2
	}

	regressions := 0
	fmt.Fprintf(out, "benchdiff: %d records compared (tolerance %.2fx median / %.2fx fallback, %d history files)\n",
		len(lines), tol, fb, len(histFiles))
	fmt.Fprintf(out, "%-44s %12s %12s %8s %s\n", "record", "base ns_op", "new ns_op", "ratio", "base")
	for _, l := range lines {
		src := "old"
		if l.median {
			src = "median"
		}
		mark := ""
		if l.regression {
			mark = "  << REGRESSION"
			regressions++
		}
		fmt.Fprintf(out, "%-44s %12d %12d %7.2fx %-6s%s\n", l.key, l.oldNs, l.newNs, l.ratio, src, mark)
	}
	for _, k := range onlyOld {
		fmt.Fprintf(out, "only in baseline (skipped): %s\n", k)
	}
	for _, k := range onlyNew {
		fmt.Fprintf(out, "only in fresh run (skipped): %s\n", k)
	}
	// Name every weakly gated key: with a history window requested, a key
	// diffed against the committed file at the loose fallback tolerance
	// (cold cache, pruned window, brand-new tier) would otherwise be
	// indistinguishable in the logs from one held to the tight median
	// gate.
	if *historyDir != "" {
		var weak []string
		for _, l := range lines {
			if !l.median {
				weak = append(weak, l.key)
			}
		}
		if len(weak) > 0 {
			fmt.Fprintf(out, "benchdiff: %d of %d key(s) weakly gated at the %.2fx committed-file fallback (history window: %d file(s)):\n",
				len(weak), len(lines), fb, len(histFiles))
			for _, k := range weak {
				fmt.Fprintf(out, "  weakly gated: %s\n", k)
			}
		}
	}
	if regressions > 0 {
		fmt.Fprintf(out, "benchdiff: %d regression(s)\n", regressions)
		return 1
	}
	fmt.Fprintln(out, "benchdiff: no regressions")
	if *save {
		if err := saveHistory(*historyDir, *newPath, *keep); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: -save: %v\n", err)
			return 2
		}
		fmt.Fprintf(out, "benchdiff: saved %s into %s (keep %d)\n", *newPath, *historyDir, *keep)
	}
	return 0
}
