// Command benchdiff compares two matchbench perf JSON files
// (BENCH_matchbench.json) and fails when the new run regressed: any record
// whose ns_op grew beyond the tolerated ratio of its baseline fails the
// diff. It is the CI perf-regression gate — a PR runs
// `matchbench -exp perf -scale tiny` and diffs the fresh records against
// the committed baseline.
//
// Records are matched by (instance, heuristic, workers); records present
// in only one file are reported and skipped, so a baseline that carries
// more experiments than the fresh run (for example the serve tiers) still
// diffs cleanly against a perf-only run.
//
// Wall-clock numbers only travel between comparable machines: the
// committed baseline should be refreshed from the CI artifact of a green
// run (same runner class), not from a developer laptop, and the tolerance
// exists to absorb the residual runner-to-runner noise.
//
// Usage:
//
//	benchdiff -old BENCH_matchbench.json -new fresh.json -tolerance 1.6
//
// Exit status: 0 clean, 1 regression found, 2 usage or input error
// (unreadable file, wrong schema, or no overlapping records).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

// perfRecord mirrors bench.PerfRecord's JSON shape; benchdiff decodes it
// independently so it can diff files produced by any commit.
type perfRecord struct {
	Instance  string  `json:"instance"`
	Heuristic string  `json:"heuristic"`
	Workers   int     `json:"workers"`
	NsOp      int64   `json:"ns_op"`
	Quality   float64 `json:"quality"`
}

// benchFile is the envelope cmd/matchbench writes.
type benchFile struct {
	Schema  string       `json:"schema"`
	Scale   string       `json:"scale"`
	Records []perfRecord `json:"records"`
}

const wantSchema = "matchbench/perf/v1"

func readBench(path string) (*benchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != wantSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, wantSchema)
	}
	return &f, nil
}

func key(r perfRecord) string {
	return fmt.Sprintf("%s|%s|%d", r.Instance, r.Heuristic, r.Workers)
}

// diffLine is one compared record pair.
type diffLine struct {
	key        string
	oldNs      int64
	newNs      int64
	ratio      float64
	regression bool
}

// diff matches records by key and flags every new ns_op beyond
// tolerance × its baseline. Ratios below 1 are improvements; they never
// fail the diff.
func diff(oldF, newF *benchFile, tolerance float64) (lines []diffLine, onlyOld, onlyNew []string) {
	base := make(map[string]perfRecord, len(oldF.Records))
	for _, r := range oldF.Records {
		base[key(r)] = r
	}
	seen := make(map[string]bool, len(newF.Records))
	for _, r := range newF.Records {
		k := key(r)
		seen[k] = true
		b, ok := base[k]
		if !ok {
			onlyNew = append(onlyNew, k)
			continue
		}
		ratio := float64(r.NsOp) / float64(b.NsOp)
		lines = append(lines, diffLine{
			key:        k,
			oldNs:      b.NsOp,
			newNs:      r.NsOp,
			ratio:      ratio,
			regression: ratio > tolerance,
		})
	}
	for _, r := range oldF.Records {
		if k := key(r); !seen[k] {
			onlyOld = append(onlyOld, k)
		}
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].key < lines[j].key })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return lines, onlyOld, onlyNew
}

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		oldPath   = fs.String("old", "BENCH_matchbench.json", "baseline perf JSON (the committed file)")
		newPath   = fs.String("new", "", "fresh perf JSON to compare (required)")
		tolerance = fs.Float64("tolerance", 1.5, "max tolerated ns_op ratio new/old before a record counts as a regression")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *newPath == "" || *tolerance <= 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required and -tolerance must be positive")
		fs.Usage()
		return 2
	}
	oldF, err := readBench(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}
	newF, err := readBench(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}

	lines, onlyOld, onlyNew := diff(oldF, newF, *tolerance)
	if len(lines) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no overlapping records between %s and %s\n", *oldPath, *newPath)
		return 2
	}

	regressions := 0
	fmt.Fprintf(out, "benchdiff: %d records compared (tolerance %.2fx)\n", len(lines), *tolerance)
	fmt.Fprintf(out, "%-44s %12s %12s %8s\n", "record", "old ns_op", "new ns_op", "ratio")
	for _, l := range lines {
		mark := ""
		if l.regression {
			mark = "  << REGRESSION"
			regressions++
		}
		fmt.Fprintf(out, "%-44s %12d %12d %7.2fx%s\n", l.key, l.oldNs, l.newNs, l.ratio, mark)
	}
	for _, k := range onlyOld {
		fmt.Fprintf(out, "only in baseline (skipped): %s\n", k)
	}
	for _, k := range onlyNew {
		fmt.Fprintf(out, "only in fresh run (skipped): %s\n", k)
	}
	if regressions > 0 {
		fmt.Fprintf(out, "benchdiff: %d regression(s) beyond %.2fx\n", regressions, *tolerance)
		return 1
	}
	fmt.Fprintln(out, "benchdiff: no regressions")
	return 0
}
