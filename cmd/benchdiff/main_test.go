package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name, scale string, records string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	blob := `{"schema":"matchbench/perf/v1","scale":"` + scale + `","seed":1,"records":[` + records + `]}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func rec(instance, heuristic string, workers int, nsOp int64) string {
	return `{"instance":"` + instance + `","heuristic":"` + heuristic + `","workers":` +
		itoa(workers) + `,"ns_op":` + itoa64(nsOp) + `,"quality":0.9,"speedup_vs_1":1}`
}

func itoa(v int) string { return itoa64(int64(v)) }
func itoa64(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// TestDiffFlagsRegressions: a record beyond tolerance is flagged, one
// within it is not, improvements never fail, and one-sided records are
// skipped rather than failing the diff.
func TestDiffFlagsRegressions(t *testing.T) {
	oldF := &benchFile{Schema: wantSchema, Records: []perfRecord{
		{Instance: "er", Heuristic: "twosided", Workers: 1, NsOp: 1000},
		{Instance: "er", Heuristic: "twosided", Workers: 2, NsOp: 600},
		{Instance: "er", Heuristic: "onesided", Workers: 1, NsOp: 800},
		{Instance: "mesh", Heuristic: "serve/batch", Workers: 1, NsOp: 500}, // baseline-only
	}}
	newF := &benchFile{Schema: wantSchema, Records: []perfRecord{
		{Instance: "er", Heuristic: "twosided", Workers: 1, NsOp: 1700}, // 1.7x: regression at 1.5
		{Instance: "er", Heuristic: "twosided", Workers: 2, NsOp: 700},  // 1.17x: fine
		{Instance: "er", Heuristic: "onesided", Workers: 1, NsOp: 400},  // improvement
		{Instance: "new", Heuristic: "twosided", Workers: 1, NsOp: 100}, // fresh-only
	}}
	lines, onlyOld, onlyNew := diff(oldF, newF, 1.5)
	if len(lines) != 3 {
		t.Fatalf("compared %d records, want 3", len(lines))
	}
	regressions := 0
	for _, l := range lines {
		if l.regression {
			regressions++
			if l.key != "er|twosided|1" {
				t.Fatalf("unexpected regression %q", l.key)
			}
		}
	}
	if regressions != 1 {
		t.Fatalf("%d regressions, want 1", regressions)
	}
	if len(onlyOld) != 1 || onlyOld[0] != "mesh|serve/batch|1" {
		t.Fatalf("baseline-only records %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "new|twosided|1" {
		t.Fatalf("fresh-only records %v", onlyNew)
	}
}

// TestRunExitCodes drives the CLI end to end over temp files: clean diff
// exits 0, regression exits 1, missing/garbage/disjoint inputs exit 2.
func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", "tiny",
		rec("er", "twosided", 1, 1000)+","+rec("er", "onesided", 1, 800))
	same := writeBench(t, dir, "same.json", "tiny",
		rec("er", "twosided", 1, 1100)+","+rec("er", "onesided", 1, 790))
	worse := writeBench(t, dir, "worse.json", "tiny",
		rec("er", "twosided", 1, 5000)+","+rec("er", "onesided", 1, 790))
	disjoint := writeBench(t, dir, "disjoint.json", "tiny", rec("other", "twosided", 1, 10))
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	badSchema := filepath.Join(dir, "schema.json")
	if err := os.WriteFile(badSchema, []byte(`{"schema":"other/v9","records":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean", []string{"-old", base, "-new", same, "-tolerance", "1.5"}, 0},
		{"regression", []string{"-old", base, "-new", worse, "-tolerance", "1.5"}, 1},
		{"regression tolerated", []string{"-old", base, "-new", worse, "-tolerance", "10"}, 0},
		{"missing -new", []string{"-old", base}, 2},
		{"unreadable new", []string{"-old", base, "-new", filepath.Join(dir, "nope.json")}, 2},
		{"garbage json", []string{"-old", base, "-new", garbage}, 2},
		{"wrong schema", []string{"-old", badSchema, "-new", same}, 2},
		{"no overlap", []string{"-old", base, "-new", disjoint}, 2},
		{"bad tolerance", []string{"-old", base, "-new", same, "-tolerance", "-1"}, 2},
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	for _, tc := range cases {
		if got := run(tc.args, devnull); got != tc.want {
			t.Fatalf("%s: exit %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestMedianBaseline: history medians beat the committed file, outlier
// runs in the window don't poison the gate, and committed records only
// cover keys the window lacks.
func TestMedianBaseline(t *testing.T) {
	hist := map[string][]int64{
		"er|twosided|1": {1000, 5000, 1100}, // median 1100: the 5000 outlier is ignored
		"er|onesided|1": {800, 900},         // even count: median 850
	}
	oldF := &benchFile{Schema: wantSchema, Records: []perfRecord{
		{Instance: "er", Heuristic: "twosided", Workers: 1, NsOp: 9999}, // shadowed by history
		{Instance: "er", Heuristic: "cheap", Workers: 1, NsOp: 700},     // fallback-only key
	}}
	base := buildBaseline(hist, oldF)
	if b := base["er|twosided|1"]; b.ns != 1100 || !b.median {
		t.Fatalf("er|twosided|1 baseline %+v, want median 1100", b)
	}
	if b := base["er|onesided|1"]; b.ns != 850 || !b.median {
		t.Fatalf("er|onesided|1 baseline %+v, want median 850", b)
	}
	if b := base["er|cheap|1"]; b.ns != 700 || b.median {
		t.Fatalf("er|cheap|1 baseline %+v, want committed 700", b)
	}

	// Per-source tolerances: 1.5x vs the median fails a 2000ns run
	// (ratio 1.82), while the same ratio against a fallback key passes
	// under the 2.0x fallback tolerance.
	newF := &benchFile{Schema: wantSchema, Records: []perfRecord{
		{Instance: "er", Heuristic: "twosided", Workers: 1, NsOp: 2000},
		{Instance: "er", Heuristic: "cheap", Workers: 1, NsOp: 1300}, // 1.86x vs 700
	}}
	lines, _, _ := diffBase(base, newF, 1.5, 2.0)
	got := map[string]bool{}
	for _, l := range lines {
		got[l.key] = l.regression
	}
	if !got["er|twosided|1"] {
		t.Fatal("1.82x vs median must regress at 1.5x")
	}
	if got["er|cheap|1"] {
		t.Fatal("1.86x vs committed fallback must pass at 2.0x")
	}
}

// TestRunWithHistory drives the CLI end to end with a history window:
// the median gate fires, -save appends green runs and prunes to -keep,
// and a corrupt history file is skipped instead of failing the gate.
func TestRunWithHistory(t *testing.T) {
	dir := t.TempDir()
	histDir := filepath.Join(dir, "hist")
	if err := os.MkdirAll(histDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeBench(t, histDir, "run-000001.json", "tiny", rec("er", "twosided", 1, 1000))
	writeBench(t, histDir, "run-000002.json", "tiny", rec("er", "twosided", 1, 1050))
	writeBench(t, histDir, "run-000003.json", "tiny", rec("er", "twosided", 1, 1100))
	if err := os.WriteFile(filepath.Join(histDir, "run-000000.json"), []byte("corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	base := writeBench(t, dir, "base.json", "tiny", rec("er", "twosided", 1, 9999))

	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	// 1400 vs median 1050 is 1.33x: clean at 1.5, and -save appends it.
	ok := writeBench(t, dir, "ok.json", "tiny", rec("er", "twosided", 1, 1400))
	if got := run([]string{"-old", base, "-history", histDir, "-new", ok, "-tolerance", "1.5", "-save", "-keep", "3"}, devnull); got != 0 {
		t.Fatalf("clean history diff: exit %d, want 0", got)
	}
	files, _ := filepath.Glob(filepath.Join(histDir, "run-*.json"))
	if len(files) != 3 {
		t.Fatalf("history holds %d run files after save, want 3 (pruned to -keep, corrupt oldest evicted first)", len(files))
	}
	for _, f := range files {
		if filepath.Base(f) == "run-000000.json" || filepath.Base(f) == "run-000001.json" {
			t.Fatalf("stale history file %s survived the prune", f)
		}
	}

	// 2000 vs the new median (1100) is 1.82x: regression at 1.5 even
	// though the committed 9999 baseline would have passed it — the
	// rolling median is the binding gate.
	bad := writeBench(t, dir, "bad.json", "tiny", rec("er", "twosided", 1, 2000))
	if got := run([]string{"-old", base, "-history", histDir, "-new", bad, "-tolerance", "1.5"}, devnull); got != 1 {
		t.Fatalf("median regression: exit %d, want 1", got)
	}

	// An empty history falls back to the committed file at the loose
	// fallback tolerance: 2000 vs 9999 is an improvement, exit 0.
	empty := filepath.Join(dir, "empty-hist")
	if got := run([]string{"-old", base, "-history", empty, "-new", bad, "-tolerance", "1.5"}, devnull); got != 0 {
		t.Fatalf("cold-cache fallback: exit %d, want 0", got)
	}

	// -save without -history is a usage error.
	if got := run([]string{"-old", base, "-new", bad, "-save"}, devnull); got != 2 {
		t.Fatalf("-save without -history: exit %d, want 2", got)
	}
}

// TestRunPrintsWeaklyGatedKeys: with a history window in play, every key
// that fell back to the committed-file tolerance is named in the output —
// both the partial case (one key missing from the window) and the cold
// case (empty window loosens every key).
func TestRunPrintsWeaklyGatedKeys(t *testing.T) {
	dir := t.TempDir()
	histDir := filepath.Join(dir, "hist")
	if err := os.MkdirAll(histDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeBench(t, histDir, "run-000001.json", "tiny", rec("er", "twosided", 1, 1000))
	base := writeBench(t, dir, "base.json", "tiny",
		rec("er", "twosided", 1, 1000)+","+rec("er", "cluster/direct", 1, 700))
	fresh := writeBench(t, dir, "fresh.json", "tiny",
		rec("er", "twosided", 1, 1100)+","+rec("er", "cluster/direct", 1, 900))

	capture := func(args []string) (int, string) {
		t.Helper()
		outPath := filepath.Join(dir, "out.txt")
		f, err := os.Create(outPath)
		if err != nil {
			t.Fatal(err)
		}
		code := run(args, f)
		f.Close()
		blob, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatal(err)
		}
		return code, string(blob)
	}

	// Partial window: twosided has a median, cluster/direct falls back and
	// must be called out by name.
	code, got := capture([]string{"-old", base, "-history", histDir, "-new", fresh, "-tolerance", "1.5"})
	if code != 0 {
		t.Fatalf("partial window: exit %d, want 0\n%s", code, got)
	}
	if !strings.Contains(got, "weakly gated: er|cluster/direct|1") {
		t.Fatalf("fallback key not named:\n%s", got)
	}
	if strings.Contains(got, "weakly gated: er|twosided|1") {
		t.Fatalf("median-gated key wrongly listed as weak:\n%s", got)
	}
	if !strings.Contains(got, "1 of 2 key(s) weakly gated") {
		t.Fatalf("weak-gate summary missing:\n%s", got)
	}

	// Cold window: every key is weakly gated and listed.
	code, got = capture([]string{"-old", base, "-history", filepath.Join(dir, "no-hist"), "-new", fresh, "-tolerance", "1.5"})
	if code != 0 {
		t.Fatalf("cold window: exit %d, want 0\n%s", code, got)
	}
	for _, k := range []string{"er|twosided|1", "er|cluster/direct|1"} {
		if !strings.Contains(got, "weakly gated: "+k) {
			t.Fatalf("cold window must list %s as weakly gated:\n%s", k, got)
		}
	}

	// No -history at all: the single-baseline mode has no weak/strong
	// distinction, so the report stays silent.
	code, got = capture([]string{"-old", base, "-new", fresh, "-tolerance", "1.5"})
	if code != 0 {
		t.Fatalf("no history: exit %d, want 0\n%s", code, got)
	}
	if strings.Contains(got, "weakly gated") {
		t.Fatalf("single-baseline mode must not report weak gating:\n%s", got)
	}
}
