package bipartite

import (
	"math"
	"testing"
)

// weightedFamilies builds the three instance families the auction quality
// gates sweep: uniform weights, heavy-tailed skewed weights, and a
// rank-deficient pattern (more rows than columns) where no perfect
// matching exists.
func weightedFamilies(t *testing.T, seed uint64) map[string]*Graph {
	t.Helper()
	er := RandomER(60, 55, 6, seed)
	rd := RandomER(80, 30, 4, seed+100)
	return map[string]*Graph{
		"uniform":        er.RandomWeights(WeightUniform, seed),
		"skewed":         er.RandomWeights(WeightSkewed, seed),
		"rank-deficient": rd.RandomWeights(WeightUniform, seed+1),
	}
}

// TestAuctionMatchQuality is the public end-to-end quality sweep: for
// every family, epsilon and seed, Graph.Match with AlgAuction must return
// a valid matching whose weight meets the documented (1−ε)·optimal
// contract against the exact Hungarian oracle.
func TestAuctionMatchQuality(t *testing.T) {
	for name, g := range weightedFamilies(t, 7) {
		opt, _, err := g.OptimalMatchedWeight()
		if err != nil {
			t.Fatalf("%s: oracle: %v", name, err)
		}
		for _, eps := range []float64{0.5, 0.1, 0.02} {
			for seed := uint64(1); seed <= 4; seed++ {
				res, err := g.Match(Spec{Algorithm: AlgAuction, Epsilon: eps, Seed: seed}, &Options{Workers: 1})
				if err != nil {
					t.Fatalf("%s eps=%g seed=%d: %v", name, eps, seed, err)
				}
				if err := g.ValidateMatching(res.Matching); err != nil {
					t.Fatalf("%s eps=%g seed=%d: invalid matching: %v", name, eps, seed, err)
				}
				w := g.MatchedWeight(res.Matching)
				if math.Abs(w-res.MatchedWeight) > 1e-9*(1+w) {
					t.Fatalf("%s: MatchedWeight %v disagrees with recompute %v", name, res.MatchedWeight, w)
				}
				if res.Epsilon != eps {
					t.Fatalf("%s: provenance Epsilon = %v, want %v", name, res.Epsilon, eps)
				}
				if res.Rounds <= 0 {
					t.Fatalf("%s: provenance Rounds = %d, want > 0", name, res.Rounds)
				}
				if w < (1-eps)*opt-1e-9 {
					t.Fatalf("%s eps=%g seed=%d: weight %v < (1-eps)*opt = %v",
						name, eps, seed, w, (1-eps)*opt)
				}
			}
		}
	}
}

// TestAuctionDefaultEpsilon: Epsilon 0 resolves to DefaultEpsilon and the
// provenance records the resolved value.
func TestAuctionDefaultEpsilon(t *testing.T) {
	g := RandomER(40, 40, 5, 3).RandomWeights(WeightUniform, 3)
	res, err := g.Match(Spec{Algorithm: AlgAuction}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epsilon != DefaultEpsilon {
		t.Fatalf("Epsilon = %v, want DefaultEpsilon = %v", res.Epsilon, DefaultEpsilon)
	}
	opt, _, err := g.OptimalMatchedWeight()
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchedWeight < (1-DefaultEpsilon)*opt-1e-9 {
		t.Fatalf("weight %v below default-epsilon bound %v", res.MatchedWeight, (1-DefaultEpsilon)*opt)
	}
}

// TestAuctionEnsembleDeterminismWidths pins the ensemble contract:
// best-of-K over bidding seeds returns a bit-identical winner (weight,
// seed, row mates) at pool widths 1, 2 and 4.
func TestAuctionEnsembleDeterminismWidths(t *testing.T) {
	for _, dist := range []WeightDist{WeightUniform, WeightSkewed} {
		g := RandomER(900, 850, 5, 11).RandomWeights(dist, 19)
		var refWeight float64
		var refSeed uint64
		var refMates []int32
		for _, w := range []int{1, 2, 4} {
			pool := NewPool(w)
			res, err := g.Match(
				Spec{Algorithm: AlgAuction, Epsilon: 0.1, Seed: 5, Ensemble: 6},
				&Options{Workers: w, Pool: pool},
			)
			if err != nil {
				pool.Close()
				t.Fatalf("dist=%d width=%d: %v", dist, w, err)
			}
			if res.Candidates != 6 {
				t.Fatalf("dist=%d width=%d: consumed %d candidates, want 6", dist, w, res.Candidates)
			}
			mates := append([]int32(nil), res.Matching.RowMate...)
			pool.Close()
			if w == 1 {
				refWeight, refSeed, refMates = res.MatchedWeight, res.WinnerSeed, mates
				continue
			}
			if res.MatchedWeight != refWeight {
				t.Fatalf("dist=%d width=%d: weight %v != width-1 weight %v", dist, w, res.MatchedWeight, refWeight)
			}
			if res.WinnerSeed != refSeed {
				t.Fatalf("dist=%d width=%d: winner seed %d != %d", dist, w, res.WinnerSeed, refSeed)
			}
			for i := range refMates {
				if mates[i] != refMates[i] {
					t.Fatalf("dist=%d width=%d: RowMate[%d] differs from width 1", dist, w, i)
				}
			}
		}
	}
}

// TestAuctionEnsembleImproves: the best-of-K winner is never lighter than
// the single run with the same base seed, and the winner seed lies inside
// the swept range.
func TestAuctionEnsembleImproves(t *testing.T) {
	g := RandomER(300, 300, 4, 2).RandomWeights(WeightSkewed, 5)
	single, err := g.Match(Spec{Algorithm: AlgAuction, Epsilon: 0.3, Seed: 9}, &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ens, err := g.Match(Spec{Algorithm: AlgAuction, Epsilon: 0.3, Seed: 9, Ensemble: 8}, &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ens.MatchedWeight < single.MatchedWeight {
		t.Fatalf("ensemble weight %v < single-run weight %v", ens.MatchedWeight, single.MatchedWeight)
	}
	if ens.WinnerSeed < 9 || ens.WinnerSeed > 9+7 {
		t.Fatalf("winner seed %d outside swept range [9, 16]", ens.WinnerSeed)
	}
}

// TestAuctionPatternGraph: AlgAuction on an unweighted graph maximizes
// cardinality (every edge weighs 1.0) and reports weight == size.
func TestAuctionPatternGraph(t *testing.T) {
	g := Complete(32)
	res, err := g.Match(Spec{Algorithm: AlgAuction, Epsilon: 0.01}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matching.Size != 32 {
		t.Fatalf("pattern auction matched %d of 32", res.Matching.Size)
	}
	if res.MatchedWeight != float64(res.Matching.Size) {
		t.Fatalf("pattern MatchedWeight %v != size %d", res.MatchedWeight, res.Matching.Size)
	}
	if g.MatchedWeight(res.Matching) != float64(res.Matching.Size) {
		t.Fatal("Graph.MatchedWeight pattern fallback broken")
	}
}

// TestAuctionSpecValidation: the Spec layer rejects the documented
// invalid combinations before any kernel runs.
func TestAuctionSpecValidation(t *testing.T) {
	g := RandomER(10, 10, 3, 1)
	bad := []Spec{
		{Algorithm: AlgAuction, Epsilon: 1},
		{Algorithm: AlgAuction, Epsilon: -0.5},
		{Algorithm: AlgAuction, Refine: RefineExact},
		{Algorithm: AlgAuction, Target: 0.9, Ensemble: 2},
		{Algorithm: AlgTwoSided, Epsilon: 0.1},
	}
	for i, spec := range bad {
		if _, err := g.Match(spec, nil); err == nil {
			t.Fatalf("spec %d (%+v) accepted; want validation error", i, spec)
		}
	}
}

// TestAuctionWeightedConstructors exercises the public weighted builders
// and their validation: weight/edge length mismatch, non-positive and
// non-finite weights, and the nil-val pattern fallback.
func TestAuctionWeightedConstructors(t *testing.T) {
	edges := [][2]int{{0, 0}, {0, 1}, {1, 0}}
	g, err := FromWeightedEdges(2, 2, edges, []float64{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() || len(g.Weights()) != 3 {
		t.Fatalf("Weighted=%v Weights len=%d", g.Weighted(), len(g.Weights()))
	}
	res, err := g.Match(Spec{Algorithm: AlgAuction, Epsilon: 0.01}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal picks (0,0)+... no: (0,0)=2 blocks (1,0); best is (0,1)=1 + (1,0)=1
	// vs (0,0)=2 alone → 2 either way; auction must reach weight ≥ 2·0.99.
	if res.MatchedWeight < 2*0.99 {
		t.Fatalf("tiny instance weight %v < 1.98", res.MatchedWeight)
	}

	if _, err := FromWeightedEdges(2, 2, edges, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	for _, w := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := FromWeightedEdges(2, 2, edges, []float64{1, 1, w}); err == nil {
			t.Fatalf("weight %v accepted", w)
		}
	}
	p, err := NewWeightedGraph(2, 2, []int{0, 1, 2}, []int32{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Weighted() {
		t.Fatal("nil val built a weighted graph")
	}
}

// TestAuctionDynSession drives the dynamic-session auction mode through
// the public API: weighted creation, ApplyWeighted mutations,
// MaintainedWeight provenance and the creation-time quality bound on the
// mutated graph.
func TestAuctionDynSession(t *testing.T) {
	g := RandomER(50, 50, 5, 13).RandomWeights(WeightUniform, 13)
	const eps = 0.1
	s, err := g.NewDynSession(Spec{Algorithm: AlgAuction, Epsilon: eps, Seed: 3}, &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	opt0, _, err := g.OptimalMatchedWeight()
	if err != nil {
		t.Fatal(err)
	}
	if w := s.MaintainedWeight(); w < (1-eps)*opt0-1e-9 {
		t.Fatalf("initial maintained weight %v < bound %v", w, (1-eps)*opt0)
	}

	// Delete some matched edges and insert heavy replacements.
	var deletes [][2]int
	mt := s.Matching()
	for i := 0; i < len(mt.RowMate) && len(deletes) < 6; i++ {
		if j := mt.RowMate[i]; j >= 0 {
			deletes = append(deletes, [2]int{i, int(j)})
		}
	}
	inserts := []WeightedEdge{
		{Row: 0, Col: 49, Weight: 3},
		{Row: 1, Col: 48, Weight: 2.5},
		{Row: 49, Col: 0, Weight: 4},
	}
	res, err := s.ApplyWeighted(inserts, deletes)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaintainedWeight != s.MaintainedWeight() {
		t.Fatalf("DynResult.MaintainedWeight %v != session %v", res.MaintainedWeight, s.MaintainedWeight())
	}
	snap := s.Snapshot()
	if !snap.Weighted() {
		t.Fatal("snapshot of weighted session lost its weights")
	}
	if err := snap.ValidateMatching(s.Matching()); err != nil {
		t.Fatalf("maintained matching invalid after mutations: %v", err)
	}
	got := snap.MatchedWeight(s.Matching())
	if math.Abs(got-s.MaintainedWeight()) > 1e-9*(1+got) {
		t.Fatalf("maintained weight %v disagrees with snapshot recompute %v", s.MaintainedWeight(), got)
	}
	// Repair runs at the creation-time absolute slack; check the matched
	// weight against the mutated graph's oracle with that additive bound.
	optNow, _, err := snap.OptimalMatchedWeight()
	if err != nil {
		t.Fatal(err)
	}
	if got < (1-eps)*optNow-1e-9 {
		t.Fatalf("post-mutation weight %v < (1-eps)*opt = %v", got, (1-eps)*optNow)
	}

	// Weight update of a present edge counts as a mutation and re-repairs.
	batches := s.Stats().Batches
	if _, err := s.ApplyWeighted([]WeightedEdge{{Row: 0, Col: 49, Weight: 5}}, nil); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Batches != batches+1 {
		t.Fatal("weight update batch not recorded")
	}
	// ApplyWeighted on a non-auction session is rejected.
	p, err := RandomER(10, 10, 3, 1).NewDynSession(Spec{}, &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ApplyWeighted(inserts, nil); err == nil {
		t.Fatal("ApplyWeighted accepted on a cardinality session")
	}
}

// TestAuctionDynDeterminismWidths: the maintained auction matching is
// bit-identical across pool widths after the same mutation trace.
func TestAuctionDynDeterminismWidths(t *testing.T) {
	base := RandomER(400, 380, 5, 21).RandomWeights(WeightSkewed, 8)
	trace := func(s *DynSession) {
		for b := 0; b < 3; b++ {
			var ins []WeightedEdge
			var del [][2]int
			for k := 0; k < 10; k++ {
				ins = append(ins, WeightedEdge{Row: (b*37 + k*13) % 400, Col: (b*11 + k*29) % 380, Weight: 1 + float64(k)/3})
			}
			mt := s.Matching()
			for i := b * 5; i < len(mt.RowMate) && len(del) < 5; i++ {
				if j := mt.RowMate[i]; j >= 0 {
					del = append(del, [2]int{i, int(j)})
				}
			}
			if _, err := s.ApplyWeighted(ins, del); err != nil {
				t.Fatal(err)
			}
		}
	}
	var refW float64
	var refMates []int32
	for _, w := range []int{1, 2, 4} {
		pool := NewPool(w)
		s, err := base.NewDynSession(Spec{Algorithm: AlgAuction, Epsilon: 0.1, Seed: 4}, &Options{Workers: w, Pool: pool})
		if err != nil {
			pool.Close()
			t.Fatal(err)
		}
		trace(s)
		mates := append([]int32(nil), s.Matching().RowMate...)
		weight := s.MaintainedWeight()
		pool.Close()
		if w == 1 {
			refW, refMates = weight, mates
			continue
		}
		if weight != refW {
			t.Fatalf("width %d: maintained weight %v != width-1 %v", w, weight, refW)
		}
		for i := range refMates {
			if mates[i] != refMates[i] {
				t.Fatalf("width %d: RowMate[%d] differs from width 1", w, i)
			}
		}
	}
}

// TestAuctionMatchBatch: AlgAuction specs flow through the batch layer
// with weighted provenance on the Response.
func TestAuctionMatchBatch(t *testing.T) {
	g1 := RandomER(40, 40, 4, 1).RandomWeights(WeightUniform, 2)
	g2 := RandomER(30, 35, 4, 2).RandomWeights(WeightSkewed, 3)
	reqs := []Request{
		{Graph: g1, Spec: Spec{Algorithm: AlgAuction, Epsilon: 0.1}},
		{Graph: g2, Spec: Spec{Algorithm: AlgAuction, Epsilon: 0.2, Ensemble: 3}},
		{Graph: g1, Spec: Spec{}},
	}
	resps := MatchBatch(reqs, &Options{Workers: 2})
	for i, r := range resps[:2] {
		if r.Err != nil {
			t.Fatalf("response %d: %v", i, r.Err)
		}
		if r.MatchedWeight <= 0 || r.Rounds <= 0 {
			t.Fatalf("response %d: missing auction provenance: weight=%v rounds=%d", i, r.MatchedWeight, r.Rounds)
		}
		if r.Epsilon == 0 {
			t.Fatalf("response %d: epsilon not propagated", i)
		}
	}
	if resps[2].Err != nil {
		t.Fatalf("cardinality response: %v", resps[2].Err)
	}
	if resps[2].MatchedWeight != 0 {
		t.Fatalf("cardinality response has MatchedWeight %v", resps[2].MatchedWeight)
	}
}

// TestAuctionAliasSampling: the alias-sampling opt-in composes with the
// weighted subsystem — a Matcher with AliasSampling still runs the
// cardinality heuristics correctly on a weighted graph's pattern.
func TestAuctionAliasSampling(t *testing.T) {
	g := RandomER(500, 500, 5, 9).RandomWeights(WeightUniform, 9)
	m := g.NewMatcher(&Options{Workers: 2, AliasSampling: true})
	res, err := m.TwoSided(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ValidateMatching(res.Matching); err != nil {
		t.Fatal(err)
	}
	base, err := g.TwoSidedMatch(&Options{Workers: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := base.Matching.Size*95/100, base.Matching.Size*105/100
	if res.Matching.Size < lo || res.Matching.Size > hi {
		t.Fatalf("alias size %d outside ±5%% of default %d", res.Matching.Size, base.Matching.Size)
	}
	// And the auction itself is untouched by the sampling knob.
	ares, err := m.Graph().Match(Spec{Algorithm: AlgAuction, Epsilon: 0.1}, &Options{Workers: 2, AliasSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ValidateMatching(ares.Matching); err != nil {
		t.Fatal(err)
	}
}

// TestAuctionMatrixMarketRoundTrip: weighted graphs survive a
// MatrixMarket write/read cycle with weights (and therefore auction
// results) intact.
func TestAuctionMatrixMarketRoundTrip(t *testing.T) {
	g := RandomER(30, 30, 4, 5).RandomWeights(WeightSkewed, 6)
	path := t.TempDir() + "/w.mtx"
	if err := g.WriteMatrixMarket(path); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadMatrixMarket(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Weighted() {
		t.Fatal("round-trip lost the weights")
	}
	a, err := g.Match(Spec{Algorithm: AlgAuction, Epsilon: 0.1, Seed: 2}, &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := rt.Match(Spec{Algorithm: AlgAuction, Epsilon: 0.1, Seed: 2}, &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.MatchedWeight != b.MatchedWeight {
		t.Fatalf("round-trip weight %v != original %v", b.MatchedWeight, a.MatchedWeight)
	}
	for i := range a.Matching.RowMate {
		if a.Matching.RowMate[i] != b.Matching.RowMate[i] {
			t.Fatalf("round-trip RowMate[%d] differs", i)
		}
	}
}
