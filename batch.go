package bipartite

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/par"
	"repro/internal/scale"
	"repro/internal/watchdog"
)

// Op selects the heuristic a batched matching request runs.
//
// Deprecated: Op predates the declarative Spec type and survives as a
// compatibility shim — set Request.Spec instead, which additionally
// carries refinement, ensembles and early-stop targets. An Op is honored
// only when Request.Spec.Algorithm is unset (zero).
type Op int

const (
	// OpTwoSided runs the TwoSidedMatch heuristic (the default).
	OpTwoSided Op = iota
	// OpOneSided runs the OneSidedMatch heuristic.
	OpOneSided
	// OpKarpSipser runs the classic sequential Karp–Sipser baseline.
	OpKarpSipser
)

// String returns the wire name of the operation, as accepted by
// cmd/matchserve.
func (op Op) String() string {
	switch op {
	case OpTwoSided:
		return "twosided"
	case OpOneSided:
		return "onesided"
	case OpKarpSipser:
		return "karpsipser"
	default:
		return "unknown"
	}
}

// Algorithm converts the deprecated Op into its Spec equivalent.
func (op Op) Algorithm() Algorithm {
	switch op {
	case OpOneSided:
		return AlgOneSided
	case OpKarpSipser:
		return AlgKarpSipser
	default:
		return AlgTwoSided
	}
}

// ParseOp converts a wire name back into an Op.
//
// Deprecated: use ParseAlgorithm, which also understands the algorithms
// Op never covered.
func ParseOp(s string) (Op, error) {
	switch s {
	case "twosided", "":
		return OpTwoSided, nil
	case "onesided":
		return OpOneSided, nil
	case "karpsipser":
		return OpKarpSipser, nil
	default:
		return 0, errors.New("bipartite: unknown op " + s)
	}
}

// Request is one matching request of a batch: which graph to match, under
// which declarative Spec (the same request type Matcher.Run, Graph.Match
// and the cmd/matchserve wire format execute).
type Request struct {
	Graph *Graph
	// Spec is the declarative matching request: algorithm, seed (0 means
	// the batch Options' seed), best-of-K ensemble, refinement, target.
	Spec Spec
	// Op is the deprecated pre-Spec algorithm selector, honored only when
	// Spec.Algorithm is unset (zero, AlgTwoSided).
	//
	// Deprecated: set Spec.Algorithm.
	Op Op
	// Seed is the deprecated pre-Spec seed field, used when Spec.Seed is 0.
	//
	// Deprecated: set Spec.Seed.
	Seed uint64
	// Ctx, when non-nil, carries the request's deadline and cancellation:
	// an already-expired context is answered with its error before any
	// kernel runs, and a context that expires mid-run aborts the scaling,
	// sampling and Karp–Sipser kernels at their next cooperative
	// checkpoint (chunk granularity) — the response then carries
	// ctx.Err(). A deadline expiring while this request computes a cold
	// graph's shared scaling aborts that scaling too, and the shared cell
	// stays retryable: the graph's next request recomputes it (see the
	// package serving contract). A nil Ctx never cancels, exactly the
	// pre-deadline behaviour.
	Ctx context.Context
	// Priority ranks the request for admission when a Server's watchdog
	// reports the process hot: PriorityLow is shed first, PriorityHigh
	// last. The zero value is PriorityNormal. Ignored by MatchBatch,
	// which has no admission stage.
	Priority Priority
	// Client identifies the submitter for the Server's per-client rate
	// limiting; the empty string bypasses the limiter (callers that want
	// fairness must name their clients — cmd/matchserve uses the X-Client
	// header, falling back to the connection's remote address).
	Client string
}

// effectiveSpec resolves the request's Spec, folding the deprecated Op and
// Seed fields in: Op is consulted only when Spec.Algorithm is unset, and
// Seed only when Spec.Seed is 0 — so legacy requests behave exactly as
// before the Spec redesign and Spec-carrying requests win outright.
func (r *Request) effectiveSpec() Spec {
	s := r.Spec
	if s.Algorithm == AlgTwoSided && r.Op != OpTwoSided {
		s.Algorithm = r.Op.Algorithm()
	}
	if s.Seed == 0 {
		s.Seed = r.Seed
	}
	return s
}

// Response is the outcome of one batched request. The Matching is owned
// by the caller (copied out of the serving workspaces), so it stays valid
// after the next batch. The provenance fields mirror MatchResult's: how
// the Spec's ensemble unfolded and what refinement added — cmd/matchserve
// forwards them onto the wire.
type Response struct {
	Matching *Matching
	// WinnerSeed is the seed of the candidate that produced Matching
	// (for refined ensembles, the refinement's warm-start candidate); for
	// single runs, the resolved base seed.
	WinnerSeed uint64
	// Candidates is the number of ensemble members actually consumed — 1
	// for single runs, possibly fewer than Spec.Ensemble when a target or
	// the refinement stopped the sweep early.
	Candidates int
	// HeuristicSize is the winning candidate's cardinality before
	// refinement.
	HeuristicSize int
	// Refined reports whether a refinement stage ran (Spec.Refine was not
	// RefineNone).
	Refined bool
	// RefinedWith is the refinement engine that actually ran (RefineExact
	// auto-selects the graft engine on large instances); RefineNone when no
	// refinement ran.
	RefinedWith Refinement
	// Degraded, when non-empty, records the self-protection downgrades
	// the engine applied before running the Spec (e.g.
	// "refine:exact->none,best_of:8->2"): the response was computed under
	// load shedding and carries the heuristic's quality bound instead of
	// whatever the full Spec guaranteed. Empty means the Spec ran exactly
	// as requested.
	Degraded string
	// MatchedWeight, Epsilon and Rounds are the AlgAuction provenance
	// (see the MatchResult fields of the same names); zero for the
	// cardinality algorithms.
	MatchedWeight float64
	Epsilon       float64
	Rounds        int
	Err           error
}

// ErrNilGraph reports a batched request without a graph.
var ErrNilGraph = errors.New("bipartite: request has nil Graph")

// MatchBatch executes many matching requests as one pool-wide parallel
// region: a single dispatch hands the request queue to the pool's worker
// slots, and each slot serves requests sequentially on its own resident
// Matcher arena. The per-request parallel width is one, so every response
// is deterministic — a function of (Graph, Spec, opt) only, identical
// to the one-shot call with Workers: 1 regardless of batch composition,
// pool width or scheduling. Requests that share a *Graph share one
// scaling across all slots (a per-graph once-cell; the scaling is
// bit-identical at any width, so sharing does not perturb responses),
// which is where batching wins big on many-seeds-per-graph workloads.
// Per-request deadlines ride on Request.Ctx.
//
// opt configures scaling and the pool exactly as for one-shot calls;
// opt.Workers caps the number of slots (<= 0 means the pool width).
// The returned slice maps one-to-one onto reqs.
//
// For a long-lived serving loop that keeps its arenas warm across batches,
// use Server instead.
func MatchBatch(reqs []Request, opt *Options) []Response {
	out := make([]Response, len(reqs))
	newBatchEngine(opt).run(reqs, out)
	return out
}

// engineScaleCap bounds the engine's per-graph scaling cache: beyond it
// the least recently used entry is evicted (and recomputed if that graph
// ever returns). It exists so a long-lived Server fed a stream of
// never-repeating inline graphs cannot grow the cache without bound.
const engineScaleCap = 256

// slotArenaCap bounds how many shape-keyed Matcher arenas one slot
// retains; the least recently used arena is recycled when heterogeneous
// traffic brings more shapes than that.
const slotArenaCap = 4

// scaleCell is the per-graph scaling cell: the first slot that needs
// graph g's scaling computes it, every other slot blocks on the cell's
// mutex and shares the result — W batch slots pay one scaling per graph
// instead of W. Unlike a sync.Once, the cell is *retryable*: a compute
// aborted by the triggering request's deadline leaves done unset, so the
// graph's next request simply computes the scaling itself instead of
// inheriting a poisoned cell forever (the pre-PR-6 behaviour was worse
// still — the scaling was uncancellable, so a 1ms deadline on a cold
// 10M-edge graph pinned a slot for the whole run).
type scaleCell struct {
	mu   sync.Mutex
	done bool
	sc   *Scaling
	err  error
	last uint64 // LRU tick; guarded by the engine mutex
}

// slotArena is one shape-keyed entry of an arena cache.
type slotArena struct {
	rows, cols int
	last       uint64 // cache-local LRU tick
	m          *Matcher
}

// arenaCache is a shape-keyed cache of width-1 Matcher arenas with LRU
// recycling, shared by the batch engine's slots and a Matcher's parallel
// ensemble workers: a stream of same-shaped graphs rebinds one arena
// allocation-free, while heterogeneous traffic keeps up to slotArenaCap
// differently-sized arenas warm instead of thrashing one arena's buffers
// between shapes. A cache is touched only by the worker slot that owns it,
// so it needs no locking.
type arenaCache struct {
	tick   uint64
	arenas []*slotArena
}

// get returns the cache's Matcher for graph g under opt (the slot's
// width-1 options), building, rebinding or recycling an arena as the
// shape mix demands.
func (s *arenaCache) get(g *Graph, opt Options) *Matcher {
	s.tick++
	var lru *slotArena
	for _, a := range s.arenas {
		if a.rows == g.Rows() && a.cols == g.Cols() {
			a.last = s.tick
			if a.m.Graph() != g {
				a.m.Reset(g)
			}
			return a.m
		}
		if lru == nil || a.last < lru.last {
			lru = a
		}
	}
	m := g.NewMatcher(&opt)
	entry := &slotArena{rows: g.Rows(), cols: g.Cols(), last: s.tick, m: m}
	if len(s.arenas) < slotArenaCap {
		s.arenas = append(s.arenas, entry)
	} else {
		*lru = *entry
	}
	return m
}

// batchEngine is the shared executor of MatchBatch and Server: per-slot
// shape-keyed Matcher arenas, a per-graph shared scaling cache, plus the
// one prebuilt pool-wide body that drains a request queue. An engine's run
// calls must not overlap; Server guarantees that with its single collector
// goroutine.
type batchEngine struct {
	opt     Options // normalized; per-slot matchers run width-1
	slotOpt Options // opt with Workers: 1, Pool: nil — what the arenas run
	pool    *par.Pool
	width   int
	slots   []arenaCache

	// scales is the shared per-graph scaling cache (LRU-bounded); tick is
	// its recency clock. Guarded by mu — slots from every pool worker take
	// it for map lookups only, never across a scaling run.
	mu     sync.Mutex
	tick   uint64
	scales map[*Graph]*scaleCell

	// shed, when non-nil, reports the owning Server's watchdog level before
	// each request runs; serve downgrades the Spec per the degradation
	// ladder (degradeSpec) and stamps the marker into the response. nil —
	// every MatchBatch engine and every Server without a watchdog — means
	// full service, bit-for-bit the pre-watchdog behaviour.
	shed func() watchdog.Level
	// svc, when non-nil, accumulates per-class service-time EWMAs for the
	// Server's would-miss admission check.
	svc      *svcStats
	degraded atomic.Int64

	next atomic.Int64
	reqs []Request
	out  []Response
	body func(w int)
}

func newBatchEngine(opt *Options) *batchEngine {
	v := opt.normalized()
	e := &batchEngine{opt: v, scales: make(map[*Graph]*scaleCell), svc: newSvcStats()}
	e.slotOpt = v
	e.slotOpt.Workers = 1
	e.slotOpt.Pool = nil // width-1 sessions run inline; no pool needed
	e.pool = v.Pool.inner()
	if e.pool == nil {
		e.pool = par.Default()
	}
	e.width = e.pool.Workers(v.Workers)
	if e.width > e.pool.Width() {
		e.width = e.pool.Width()
	}
	e.slots = make([]arenaCache, e.width)
	e.body = func(w int) {
		for {
			i := int(e.next.Add(1)) - 1
			if i >= len(e.reqs) {
				return
			}
			e.serve(w, i)
		}
	}
	return e
}

// sharedScaling returns graph g's scaling under the engine options,
// computing it once per graph (however many slots ask, from however many
// batches) and serving every later request from the cell. The scaling is
// seed-independent and — per the package determinism contract —
// bit-identical at every parallel width, so sharing one run preserves
// each response bit for bit.
//
// cancel, when non-nil, is the triggering request's cancellation hook:
// the compute aborts at the scaling kernel's next sweep boundary once it
// fires, the request fails with ErrCanceled, and the cell stays
// *retryable* — the graph's next request computes the scaling itself
// (exactly one fresh run, not one per parked waiter: the waiters
// re-check done under the cell lock). Only a completed run — success or
// a real kernel error — latches the cell.
func (e *batchEngine) sharedScaling(g *Graph, cancel func() bool) (*Scaling, error) {
	e.mu.Lock()
	c := e.scales[g]
	if c == nil {
		if len(e.scales) >= engineScaleCap {
			var victim *Graph
			oldest := uint64(math.MaxUint64)
			for vg, vc := range e.scales {
				if vc.last < oldest {
					oldest, victim = vc.last, vg
				}
			}
			delete(e.scales, victim)
		}
		c = &scaleCell{}
		e.scales[g] = c
	}
	e.tick++
	c.last = e.tick
	e.mu.Unlock()
	// The compute runs outside the engine lock: concurrent slots wanting
	// the same graph park on the cell's mutex, slots wanting other graphs
	// proceed. It runs inline at width 1, never dispatching to the pool: a
	// nested region here could steal back a queued batch-slot task that
	// blocks on this very cell (the pool's steal-back waits make blocking
	// under the cell reentrancy-unsafe), and width 1 is also exactly the
	// width the per-slot arenas used to scale at, so responses stay
	// bit-for-bit. A parked waiter is not cancellable while it waits — the
	// computing slot's own deadline bounds that wait, and a canceled
	// computer hands the cell to the waiter, which then runs under its own
	// cancel hook.
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return c.sc, c.err
	}
	res, err := g.scaleRaw(e.slotOpt, nil, cancel)
	if err != nil {
		if errors.Is(err, scale.ErrCanceled) {
			// The triggering request's deadline fired mid-scaling. That is
			// the request's failure, not the graph's: leave done unset so
			// the next request retries instead of inheriting a poisoned
			// cell.
			return nil, ErrCanceled
		}
		c.done, c.err = true, err
		return nil, err
	}
	c.done = true
	c.sc = &Scaling{DR: res.DR, DC: res.DC, Iterations: res.Iters, Error: res.Err,
		History: res.History, RowSums: res.RSum, ColSums: res.CSum}
	return c.sc, nil
}

// dropGraph evicts graph g's cached scaling (if any) and its service-time
// classes. A slot that already holds the cell keeps using it — eviction
// only makes the next request of the graph recompute — so the call is
// safe at any moment.
func (e *batchEngine) dropGraph(g *Graph) {
	e.mu.Lock()
	delete(e.scales, g)
	e.mu.Unlock()
	if e.svc != nil {
		e.svc.dropGraph(g)
	}
}

// arena returns slot w's Matcher for graph g from the slot's shape-keyed
// cache; see arenaCache.
func (e *batchEngine) arena(w int, g *Graph) *Matcher {
	return e.slots[w].get(g, e.slotOpt)
}

// run executes reqs into out (same length) as one pool-wide region.
func (e *batchEngine) run(reqs []Request, out []Response) {
	if len(reqs) == 0 {
		return
	}
	e.reqs, e.out = reqs, out
	e.next.Store(0)
	width := e.width
	if width > len(reqs) {
		width = len(reqs)
	}
	e.pool.Do(width, e.body)
	e.reqs, e.out = nil, nil
}

// serve runs request i on slot w's arena: the effective Spec is resolved
// and validated first, downgraded per the watchdog's shedding level (the
// degradation ladder trades the sprank guarantee for the heuristic bound
// before any work is refused), an expired context is answered before any
// kernel runs, a live one is armed as the arena's cancellation hook, the
// scaling comes from the shared per-graph cell, and the Spec engine does
// the rest. Completed requests feed the service-time EWMAs behind the
// Server's would-miss admission check.
func (e *batchEngine) serve(w, i int) {
	req := e.reqs[i]
	if req.Graph == nil {
		e.out[i] = Response{Err: ErrNilGraph}
		return
	}
	spec := req.effectiveSpec()
	if err := spec.Validate(); err != nil {
		e.out[i] = Response{Err: err}
		return
	}
	var degraded string
	if e.shed != nil {
		if lvl := e.shed(); lvl >= watchdog.Degraded {
			spec, degraded = degradeSpec(spec, lvl)
			if degraded != "" {
				e.degraded.Add(1)
			}
		}
	}
	ctx := req.Ctx
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			e.out[i] = Response{Err: err}
			return
		}
	}
	start := time.Now()
	a := e.arena(w, req.Graph)
	var cancel func() bool
	if ctx != nil {
		cancel = func() bool { return ctx.Err() != nil }
		a.setCancel(cancel)
		defer a.setCancel(nil)
	}
	var err error
	if spec.Algorithm.scales() {
		var sc *Scaling
		if sc, err = e.sharedScaling(req.Graph, cancel); err != nil {
			if ctx != nil {
				if cerr := ctx.Err(); cerr != nil {
					err = cerr
				}
			}
			e.out[i] = Response{Err: err}
			return
		}
		a.installScaling(sc)
	}
	res, err := a.Run(spec)
	if ctx != nil {
		// A context that expired mid-run trumps whatever the kernels
		// managed to produce: the caller's deadline has passed and the
		// sentinel errors above all trace back to it.
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
		}
	}
	if err != nil {
		e.out[i] = Response{Err: err}
		return
	}
	// The EWMA records the Spec that actually ran (the degraded one, when
	// shedding): it estimates what the engine will spend, not what callers
	// ask for.
	if e.svc != nil {
		e.svc.record(req.Graph, spec, time.Since(start))
	}
	res.Degraded = degraded
	// Copy out of the arena: the response must survive the slot's next
	// request. The provenance rides along so the serving layers can put
	// it on the wire.
	e.out[i] = Response{
		Matching:      cloneMatching(res.Matching),
		WinnerSeed:    res.WinnerSeed,
		Candidates:    res.Candidates,
		HeuristicSize: res.HeuristicSize,
		Refined:       res.Refined,
		RefinedWith:   res.RefinedWith,
		Degraded:      degraded,
		MatchedWeight: res.MatchedWeight,
		Epsilon:       res.Epsilon,
		Rounds:        res.Rounds,
	}
}

func cloneMatching(mt *Matching) *Matching {
	return &Matching{
		RowMate: append([]int32(nil), mt.RowMate...),
		ColMate: append([]int32(nil), mt.ColMate...),
		Size:    mt.Size,
	}
}
