package bipartite

import (
	"errors"
	"sync/atomic"

	"repro/internal/par"
)

// Op selects the heuristic a batched matching request runs.
type Op int

const (
	// OpTwoSided runs the TwoSidedMatch heuristic (the default).
	OpTwoSided Op = iota
	// OpOneSided runs the OneSidedMatch heuristic.
	OpOneSided
	// OpKarpSipser runs the classic sequential Karp–Sipser baseline.
	OpKarpSipser
)

// String returns the wire name of the operation, as accepted by
// cmd/matchserve.
func (op Op) String() string {
	switch op {
	case OpTwoSided:
		return "twosided"
	case OpOneSided:
		return "onesided"
	case OpKarpSipser:
		return "karpsipser"
	default:
		return "unknown"
	}
}

// ParseOp converts a wire name back into an Op.
func ParseOp(s string) (Op, error) {
	switch s {
	case "twosided", "":
		return OpTwoSided, nil
	case "onesided":
		return OpOneSided, nil
	case "karpsipser":
		return OpKarpSipser, nil
	default:
		return 0, errors.New("bipartite: unknown op " + s)
	}
}

// Request is one matching request of a batch: which graph to match, with
// which heuristic, under which seed (0 means the batch Options' seed).
type Request struct {
	Graph *Graph
	Op    Op
	Seed  uint64
}

// Response is the outcome of one batched request. The Matching is owned
// by the caller (copied out of the serving workspaces), so it stays valid
// after the next batch.
type Response struct {
	Matching *Matching
	Err      error
}

// ErrNilGraph reports a batched request without a graph.
var ErrNilGraph = errors.New("bipartite: request has nil Graph")

// MatchBatch executes many matching requests as one pool-wide parallel
// region: a single dispatch hands the request queue to the pool's worker
// slots, and each slot serves requests sequentially on its own resident
// Matcher arena. The per-request parallel width is one, so every response
// is deterministic — a function of (Graph, Op, Seed, opt) only, identical
// to the one-shot call with Workers: 1 regardless of batch composition,
// pool width or scheduling. Requests that share a *Graph also share its
// cached scaling within a slot, which is where batching wins big on
// many-seeds-per-graph workloads.
//
// opt configures scaling and the pool exactly as for one-shot calls;
// opt.Workers caps the number of slots (<= 0 means the pool width).
// The returned slice maps one-to-one onto reqs.
//
// For a long-lived serving loop that keeps its arenas warm across batches,
// use Server instead.
func MatchBatch(reqs []Request, opt *Options) []Response {
	out := make([]Response, len(reqs))
	newBatchEngine(opt).run(reqs, out)
	return out
}

// batchEngine is the shared executor of MatchBatch and Server: a fixed
// set of per-slot Matcher arenas plus the one prebuilt pool-wide body that
// drains a request queue. An engine's run calls must not overlap; Server
// guarantees that with its single collector goroutine.
type batchEngine struct {
	opt    Options // normalized; per-slot matchers run width-1
	pool   *par.Pool
	width  int
	arenas []*Matcher

	next atomic.Int64
	reqs []Request
	out  []Response
	body func(w int)
}

func newBatchEngine(opt *Options) *batchEngine {
	v := opt.normalized()
	e := &batchEngine{opt: v}
	e.pool = v.Pool.inner()
	if e.pool == nil {
		e.pool = par.Default()
	}
	e.width = e.pool.Workers(v.Workers)
	if e.width > e.pool.Width() {
		e.width = e.pool.Width()
	}
	e.arenas = make([]*Matcher, e.width)
	e.body = func(w int) {
		for {
			i := int(e.next.Add(1)) - 1
			if i >= len(e.reqs) {
				return
			}
			e.serve(w, i)
		}
	}
	return e
}

// run executes reqs into out (same length) as one pool-wide region.
func (e *batchEngine) run(reqs []Request, out []Response) {
	if len(reqs) == 0 {
		return
	}
	e.reqs, e.out = reqs, out
	e.next.Store(0)
	width := e.width
	if width > len(reqs) {
		width = len(reqs)
	}
	e.pool.Do(width, e.body)
	e.reqs, e.out = nil, nil
}

// serve runs request i on slot w's arena.
func (e *batchEngine) serve(w, i int) {
	req := e.reqs[i]
	if req.Graph == nil {
		e.out[i] = Response{Err: ErrNilGraph}
		return
	}
	a := e.arenas[w]
	if a == nil {
		slotOpt := e.opt
		slotOpt.Workers = 1
		slotOpt.Pool = nil // width-1 sessions run inline; no pool needed
		a = req.Graph.NewMatcher(&slotOpt)
		e.arenas[w] = a
	} else if a.Graph() != req.Graph {
		a.Reset(req.Graph)
	}
	var mt *Matching
	var err error
	switch req.Op {
	case OpOneSided:
		var res *MatchResult
		res, err = a.OneSided(req.Seed)
		if err == nil {
			mt = res.Matching
		}
	case OpKarpSipser:
		mt, _ = a.KarpSipser(req.Seed)
	default: // OpTwoSided
		var res *MatchResult
		res, err = a.TwoSided(req.Seed)
		if err == nil {
			mt = res.Matching
		}
	}
	if err != nil {
		e.out[i] = Response{Err: err}
		return
	}
	// Copy out of the arena: the response must survive the slot's next
	// request.
	e.out[i] = Response{Matching: cloneMatching(mt)}
}

func cloneMatching(mt *Matching) *Matching {
	return &Matching{
		RowMate: append([]int32(nil), mt.RowMate...),
		ColMate: append([]int32(nil), mt.ColMate...),
		Size:    mt.Size,
	}
}
