package bipartite

import (
	"repro/internal/par"
	"repro/internal/sparse"
	"repro/internal/undirected"
	"repro/internal/xrand"
)

// UndirectedGraph is a general (non-bipartite) graph on which the 1-out
// matching heuristic runs — the extension announced in the paper's
// conclusion. Construct with NewUndirected or RandomUndirected.
type UndirectedGraph struct {
	g *undirected.Graph
}

// NewUndirected builds an undirected graph from a symmetric edge list
// (each undirected edge may be given once; both directions are stored).
func NewUndirected(n int, edges [][2]int) (*UndirectedGraph, error) {
	coords := make([]sparse.Coord, 0, 2*len(edges))
	for _, e := range edges {
		coords = append(coords,
			sparse.Coord{I: int32(e[0]), J: int32(e[1])},
			sparse.Coord{I: int32(e[1]), J: int32(e[0])})
	}
	a, err := sparse.FromCOO(n, n, coords, false)
	if err != nil {
		return nil, err
	}
	g, err := undirected.New(a)
	if err != nil {
		return nil, err
	}
	return &UndirectedGraph{g: g}, nil
}

// RandomUndirected returns a symmetric Erdős–Rényi graph with the given
// average degree (self loops excluded).
func RandomUndirected(n int, avgDeg float64, seed uint64) *UndirectedGraph {
	rng := xrand.New(seed)
	m := int(avgDeg * float64(n) / 2)
	coords := make([]sparse.Coord, 0, 2*m)
	for k := 0; k < m; k++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		coords = append(coords, sparse.Coord{I: u, J: v}, sparse.Coord{I: v, J: u})
	}
	a, err := sparse.FromCOO(n, n, coords, false)
	if err != nil {
		panic("bipartite: RandomUndirected generated invalid matrix: " + err.Error())
	}
	g, err := undirected.New(a)
	if err != nil {
		panic("bipartite: RandomUndirected not symmetric: " + err.Error())
	}
	return &UndirectedGraph{g: g}
}

// Vertices returns the number of vertices.
func (u *UndirectedGraph) Vertices() int { return u.g.N() }

// Edges returns the number of undirected edges.
func (u *UndirectedGraph) Edges() int { return u.g.A.NNZ() / 2 }

// UndirectedResult is the outcome of UndirectedGraph.Match.
type UndirectedResult struct {
	// Mate[v] is the partner of vertex v, or Unmatched.
	Mate []int32
	// Size is the number of matched edges.
	Size int
	// ScalingError is the symmetric-scaling residual.
	ScalingError float64
}

// Match runs the undirected 1-out heuristic: symmetric doubly stochastic
// scaling, one sampled neighbor per vertex, and an exact Karp–Sipser pass
// over the sampled pseudoforest (odd cycles handled).
func (u *UndirectedGraph) Match(opt *Options) *UndirectedResult {
	v := opt.normalized()
	res := u.g.Match(v.ScalingIterations, undirected.Options{
		Workers: v.Workers, Policy: par.Dynamic, Seed: v.Seed})
	return &UndirectedResult{Mate: res.Match, Size: res.Size, ScalingError: res.ScaleErr}
}

// ValidateUndirected checks mate consistency against the graph.
func (u *UndirectedGraph) Validate(mate []int32) error { return u.g.Validate(mate) }
