package watchdog

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock is a settable clock for limiter tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }

func TestRateLimitBurstThenRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	l := NewRateLimiter(2, 3, clk.now) // 2 tokens/s, burst 3
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("alice"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := l.Allow("alice")
	if ok {
		t.Fatal("4th request within burst window admitted")
	}
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retry-after %v, want (0, 500ms] at 2 tokens/s", retry)
	}
	// Another client is unaffected — buckets are per client.
	if ok, _ := l.Allow("bob"); !ok {
		t.Fatal("independent client denied")
	}
	// After the advertised wait, exactly one token has accrued.
	clk.t = clk.t.Add(retry)
	if ok, _ := l.Allow("alice"); !ok {
		t.Fatal("request denied after waiting the advertised retry-after")
	}
	if ok, _ := l.Allow("alice"); ok {
		t.Fatal("second request admitted without waiting again")
	}
	// Tokens cap at the burst, however long the client is idle.
	clk.t = clk.t.Add(time.Hour)
	granted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := l.Allow("alice"); ok {
			granted++
		}
	}
	if granted != 3 {
		t.Fatalf("after long idle: %d granted, want burst=3", granted)
	}
}

func TestRateLimitDisabled(t *testing.T) {
	var nilL *RateLimiter
	if ok, _ := nilL.Allow("x"); !ok {
		t.Fatal("nil limiter denied")
	}
	l := NewRateLimiter(0, 0, nil)
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("x"); !ok {
			t.Fatal("zero-rate limiter denied")
		}
	}
}

func TestRateLimitDefaultBurst(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	l := NewRateLimiter(5, 0, clk.now) // default burst = 2·rate = 10
	granted := 0
	for i := 0; i < 20; i++ {
		if ok, _ := l.Allow("c"); ok {
			granted++
		}
	}
	if granted != 10 {
		t.Fatalf("default burst granted %d, want 10", granted)
	}
}

func TestRateLimitClientEviction(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	l := NewRateLimiter(1, 1, clk.now)
	for i := 0; i < clientCap; i++ {
		clk.t = clk.t.Add(time.Millisecond) // distinct recency stamps
		l.Allow(fmt.Sprintf("client-%d", i))
	}
	if got := l.Clients(); got != clientCap {
		t.Fatalf("%d buckets, want %d", got, clientCap)
	}
	// One more client evicts the oldest instead of growing.
	clk.t = clk.t.Add(time.Millisecond)
	l.Allow("newcomer")
	if got := l.Clients(); got != clientCap {
		t.Fatalf("%d buckets after eviction, want %d", got, clientCap)
	}
	// The evicted (oldest) client starts over with a fresh bucket: its
	// request is admitted even though its old bucket was empty.
	if ok, _ := l.Allow("client-0"); !ok {
		t.Fatal("evicted client's fresh bucket denied")
	}
}

func TestRateLimitConcurrent(t *testing.T) {
	l := NewRateLimiter(1e6, 1e6, nil)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		w := w
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				l.Allow(fmt.Sprintf("w%d", w%3))
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}
