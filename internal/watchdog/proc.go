package watchdog

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// userHZ is the kernel's clock-tick unit for the utime/stime fields of
// /proc/self/stat. USER_HZ has been fixed at 100 on every Linux ABI the
// Go toolchain targets (the kernel exposes jiffies to userspace scaled to
// this constant regardless of CONFIG_HZ), so reading it via sysconf/cgo
// buys nothing.
const userHZ = 100

// ProcCPU is the default CPU reader: the process's cumulative user+system
// CPU time from /proc/self/stat. On platforms without procfs it returns
// an error and the watchdog holds its last reading (see Tick).
func ProcCPU() (time.Duration, error) {
	raw, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return 0, err
	}
	return parseProcStatCPU(string(raw))
}

// parseProcStatCPU extracts utime+stime from a /proc/<pid>/stat line. The
// comm field (2nd) may contain spaces and parentheses, so fields are
// located relative to the *last* ')' — the only robust anchor.
func parseProcStatCPU(stat string) (time.Duration, error) {
	close := strings.LastIndexByte(stat, ')')
	if close < 0 {
		return 0, fmt.Errorf("watchdog: malformed /proc stat line")
	}
	fields := strings.Fields(stat[close+1:])
	// After ')': state(0) ppid(1) pgrp(2) session(3) tty(4) tpgid(5)
	// flags(6) minflt(7) cminflt(8) majflt(9) cmajflt(10) utime(11)
	// stime(12).
	if len(fields) < 13 {
		return 0, fmt.Errorf("watchdog: /proc stat has %d fields after comm, want >= 13", len(fields))
	}
	utime, err := strconv.ParseUint(fields[11], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("watchdog: utime: %w", err)
	}
	stime, err := strconv.ParseUint(fields[12], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("watchdog: stime: %w", err)
	}
	ticks := utime + stime
	return time.Duration(ticks) * time.Second / userHZ, nil
}

// ProcRSS is the default RSS reader: the resident set size from
// /proc/self/statm (second field, in pages).
func ProcRSS() (uint64, error) {
	raw, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0, err
	}
	return parseProcStatmRSS(string(raw), uint64(os.Getpagesize()))
}

// parseProcStatmRSS extracts the resident page count from a statm line
// and scales it to bytes.
func parseProcStatmRSS(statm string, pageSize uint64) (uint64, error) {
	fields := strings.Fields(statm)
	if len(fields) < 2 {
		return 0, fmt.Errorf("watchdog: /proc statm has %d fields, want >= 2", len(fields))
	}
	pages, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("watchdog: statm rss: %w", err)
	}
	return pages * pageSize, nil
}
