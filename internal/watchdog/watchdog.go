// Package watchdog is the serving stack's self-protection core: it
// samples the process's own CPU and resident set size, folds them into a
// utilization score against configured limits, and drives a hysteresis
// shedding controller whose level the serving layers consult on every
// admission and execution decision.
//
// The design splits mechanism from policy. This package only answers "how
// hot is the process right now" as a four-step ladder —
//
//	Nominal  → full service
//	Degraded → serve everything, but cheaper (the caller downgrades work)
//	Shedding → reject low-priority work, degrade the rest
//	Critical → reject all but high-priority work
//
// — while the serving layers decide what each step means for a request
// (which Spec fields to drop, which priorities to shed, which HTTP status
// to answer). Levels rise immediately when a sample crosses a threshold
// (an overloaded process must react within one sample period) and decay
// one step at a time only after Settle consecutive calm samples
// (hysteresis: a single quiet sample between two spikes must not bounce
// the service back to full price, which would re-trigger the overload).
//
// Every input is injectable — CPU reader, RSS reader, clock — so fault
// injection tests drive the controller through arbitrary load histories
// deterministically, without consuming actual CPU or memory.
package watchdog

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Level is the shedding ladder's current step. Levels order: comparisons
// like lvl >= Shedding express "at least this hot".
type Level int32

const (
	// Nominal is full service: no shedding, no degradation.
	Nominal Level = iota
	// Degraded keeps serving every admitted request but signals the
	// engine to downgrade expensive work (drop exact refinement, cap
	// ensembles) — the paper's heuristic quality bounds still hold, so
	// this step trades optimality, never correctness.
	Degraded
	// Shedding additionally rejects low-priority work at admission.
	Shedding
	// Critical rejects everything below high priority.
	Critical
)

// String returns the level's wire name.
func (l Level) String() string {
	switch l {
	case Nominal:
		return "nominal"
	case Degraded:
		return "degraded"
	case Shedding:
		return "shedding"
	case Critical:
		return "critical"
	default:
		return "unknown"
	}
}

// Utilization thresholds at which each level is entered, as fractions of
// the configured limit: crossing 100% of a limit degrades, 115% sheds low
// priority, 130% is critical. A level decays one step after Settle
// consecutive samples below its entry threshold minus the hysteresis
// margin.
const (
	enterDegraded = 1.00
	enterShedding = 1.15
	enterCritical = 1.30
	hysteresis    = 0.10
)

// enterThreshold returns the utilization at which lvl is entered.
func enterThreshold(lvl Level) float64 {
	switch lvl {
	case Critical:
		return enterCritical
	case Shedding:
		return enterShedding
	default:
		return enterDegraded
	}
}

// levelFor maps a utilization score to the level it calls for.
func levelFor(util float64) Level {
	switch {
	case util >= enterCritical:
		return Critical
	case util >= enterShedding:
		return Shedding
	case util >= enterDegraded:
		return Degraded
	default:
		return Nominal
	}
}

// Config tunes a Watchdog. The zero value is not useful — at least one of
// CPULimit and RSSLimit must be set for the watchdog to ever leave
// Nominal.
type Config struct {
	// CPULimit is the tolerated CPU use as a fraction of total capacity
	// (Cores full cores = 1.0). 0 disables CPU-based shedding.
	CPULimit float64
	// RSSLimit is the tolerated resident set size in bytes. 0 disables
	// RSS-based shedding.
	RSSLimit uint64
	// Interval is the sampling period of Start's background loop;
	// <= 0 means 1s.
	Interval time.Duration
	// Settle is how many consecutive calm samples a level decay requires;
	// <= 0 means 3. Together with Interval it bounds how fast the service
	// returns to full price after an overload clears (and is the basis of
	// the Retry-After hint shed responses carry).
	Settle int
	// Cores normalizes the CPU fraction; <= 0 means runtime.NumCPU().
	Cores int

	// ReadCPU returns the process's cumulative CPU time (user+system).
	// nil means the /proc/self/stat reader. The test seam of fault
	// injection: a fake reader replays any load history.
	ReadCPU func() (time.Duration, error)
	// ReadRSS returns the process's resident set size in bytes; nil means
	// the /proc/self/statm reader.
	ReadRSS func() (uint64, error)
	// Now is the clock; nil means time.Now. Injected by tests together
	// with the readers so CPU fractions are exact.
	Now func() time.Time
}

// withDefaults fills unset Config fields.
func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Settle <= 0 {
		c.Settle = 3
	}
	if c.Cores <= 0 {
		c.Cores = runtime.NumCPU()
	}
	if c.ReadCPU == nil {
		c.ReadCPU = ProcCPU
	}
	if c.ReadRSS == nil {
		c.ReadRSS = ProcRSS
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Health is a snapshot of the watchdog's published state.
type Health struct {
	// Level is the current shedding level.
	Level Level
	// CPU is the latest CPU sample as a fraction of total capacity
	// (1.0 = all Cores busy), 0 until two samples exist.
	CPU float64
	// RSS is the latest resident set size in bytes.
	RSS uint64
	// Utilization is the shedding score: the maximum of CPU/CPULimit and
	// RSS/RSSLimit over the enabled dimensions. The level thresholds
	// (1.00 / 1.15 / 1.30) apply to this number.
	Utilization float64
	// Raises and Drops count level transitions (one per step).
	Raises, Drops uint64
	// Samples counts controller steps; SampleErrs counts reader failures
	// (a failed dimension is skipped for that step, never fabricated).
	Samples, SampleErrs uint64
}

// Watchdog samples process health and maintains the shedding level.
// Level and Health are safe to call from any goroutine at any rate; the
// controller itself steps from one goroutine at a time (Start's loop, or
// a test calling Tick directly).
type Watchdog struct {
	cfg Config

	mu       sync.Mutex // guards the sampler state below
	started  bool
	haveBase bool
	baseCPU  time.Duration
	baseAt   time.Time
	calm     int

	level   metrics.Gauge // current Level, published for lock-free reads
	cpu     metrics.Gauge
	rss     metrics.Gauge
	util    metrics.Gauge
	raises  metrics.Counter
	drops   metrics.Counter
	samples metrics.Counter
	errs    metrics.Counter

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// New builds a Watchdog from cfg (see Config for defaulting). The
// controller starts at Nominal; nothing samples until Start or Tick.
func New(cfg Config) *Watchdog {
	return &Watchdog{
		cfg:  cfg.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Enabled reports whether any limit is configured — a watchdog with no
// limits never leaves Nominal, so callers skip constructing one.
func (c Config) Enabled() bool { return c.CPULimit > 0 || c.RSSLimit > 0 }

// Interval returns the effective sampling period.
func (w *Watchdog) Interval() time.Duration { return w.cfg.Interval }

// Settle returns the effective calm-sample count a level decay requires.
func (w *Watchdog) Settle() int { return w.cfg.Settle }

// RecoveryHint is the minimum time a full level decay takes once pressure
// clears — the Retry-After a shed response advertises: retrying sooner
// than one settle window is guaranteed to find the server still hot.
func (w *Watchdog) RecoveryHint() time.Duration {
	return w.cfg.Interval * time.Duration(w.cfg.Settle)
}

// Start launches the background sampling loop. Stop terminates it; a
// watchdog driven manually via Tick (tests) never needs Start.
func (w *Watchdog) Start() {
	w.mu.Lock()
	if w.started {
		w.mu.Unlock()
		return
	}
	w.started = true
	w.mu.Unlock()
	go func() {
		defer close(w.done)
		ticker := time.NewTicker(w.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				w.Tick()
			case <-w.stop:
				return
			}
		}
	}()
}

// Stop terminates the background loop and waits for it to exit.
// Idempotent; safe without Start.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	w.mu.Lock()
	started := w.started
	w.mu.Unlock()
	if started {
		<-w.done
	}
}

// Level returns the current shedding level. Lock-free: admission checks
// sit on every request's hot path.
func (w *Watchdog) Level() Level { return Level(w.level.Get()) }

// Health returns a snapshot of the published state.
func (w *Watchdog) Health() Health {
	return Health{
		Level:       Level(w.level.Get()),
		CPU:         w.cpu.Get(),
		RSS:         uint64(w.rss.Get()),
		Utilization: w.util.Get(),
		Raises:      w.raises.Get(),
		Drops:       w.drops.Get(),
		Samples:     w.samples.Get(),
		SampleErrs:  w.errs.Get(),
	}
}

// Tick performs one controller step: sample CPU and RSS, fold them into
// the utilization score, and move the level. Exported so fault-injection
// tests drive the controller deterministically; Start's loop calls it on
// the sampling interval.
func (w *Watchdog) Tick() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.samples.Inc()

	util := 0.0
	if w.cfg.CPULimit > 0 {
		if frac, ok := w.sampleCPU(); ok {
			w.cpu.Set(frac)
			if u := frac / w.cfg.CPULimit; u > util {
				util = u
			}
		} else if u := w.cpu.Get() / w.cfg.CPULimit; u > util {
			// Reader failure or first sample: hold the last good reading
			// rather than fabricating calm — a hot process whose reader
			// hiccups must not be declared healthy by omission.
			util = u
		}
	}
	if w.cfg.RSSLimit > 0 {
		if rss, err := w.cfg.ReadRSS(); err == nil {
			w.rss.Set(float64(rss))
			if u := float64(rss) / float64(w.cfg.RSSLimit); u > util {
				util = u
			}
		} else {
			w.errs.Inc()
			if u := w.rss.Get() / float64(w.cfg.RSSLimit); u > util {
				util = u
			}
		}
	}
	w.util.Set(util)
	w.step(util)
}

// sampleCPU reads the cumulative CPU time and converts the delta since
// the previous sample into a fraction of total capacity. The first
// successful read only establishes the baseline (no fraction exists yet).
func (w *Watchdog) sampleCPU() (float64, bool) {
	cpu, err := w.cfg.ReadCPU()
	if err != nil {
		w.errs.Inc()
		return 0, false
	}
	now := w.cfg.Now()
	if !w.haveBase {
		w.haveBase = true
		w.baseCPU, w.baseAt = cpu, now
		return 0, false
	}
	wall := now.Sub(w.baseAt)
	dcpu := cpu - w.baseCPU
	w.baseCPU, w.baseAt = cpu, now
	if wall <= 0 {
		return 0, false
	}
	frac := float64(dcpu) / float64(wall) / float64(w.cfg.Cores)
	if frac < 0 {
		frac = 0
	}
	return frac, true
}

// step moves the level for one utilization sample: rise immediately to
// whatever the sample calls for, decay one step only after Settle
// consecutive samples below the current level's exit threshold.
func (w *Watchdog) step(util float64) {
	cur := Level(w.level.Get())
	target := levelFor(util)
	switch {
	case target > cur:
		w.raises.Add(uint64(target - cur))
		w.level.Set(float64(target))
		w.calm = 0
	case target < cur && util < enterThreshold(cur)-hysteresis:
		w.calm++
		if w.calm >= w.cfg.Settle {
			w.drops.Inc()
			w.level.Set(float64(cur - 1))
			w.calm = 0
		}
	default:
		w.calm = 0
	}
}
