package watchdog

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// cpuMaxPath is the cgroup v2 CPU quota file of the process's own cgroup.
// Containers (and systemd slices with CPUQuota=) mount the unified
// hierarchy at /sys/fs/cgroup and bind the process's controllers at the
// root of its namespace, so the relative path resolves to the limit that
// actually throttles this process.
const cpuMaxPath = "/sys/fs/cgroup/cpu.max"

// CPUQuota returns the effective CPU quota of the process in cores, read
// from the cgroup v2 cpu.max file: 2.0 means the kernel throttles the
// process at two full cores regardless of how many the machine has. The
// second result is false when no quota applies — no cgroup v2 hierarchy
// (cgroup v1 hosts, non-Linux), or an explicit "max" (unlimited) quota.
func CPUQuota() (float64, bool) {
	raw, err := os.ReadFile(cpuMaxPath)
	if err != nil {
		return 0, false
	}
	q, ok, err := parseCPUMax(string(raw))
	if err != nil {
		return 0, false
	}
	return q, ok
}

// parseCPUMax parses a cgroup v2 cpu.max payload: "$MAX $PERIOD\n" where
// MAX is a quota in microseconds per period or the literal "max"
// (unlimited). The quota in cores is MAX/PERIOD. Pure parse — the seam the
// unit tests drive with fabricated payloads.
func parseCPUMax(s string) (float64, bool, error) {
	fields := strings.Fields(s)
	if len(fields) < 1 || len(fields) > 2 {
		return 0, false, fmt.Errorf("watchdog: cpu.max has %d fields, want 1 or 2", len(fields))
	}
	if fields[0] == "max" {
		return 0, false, nil
	}
	quota, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("watchdog: cpu.max quota: %w", err)
	}
	period := uint64(100000) // the kernel default when the field is absent
	if len(fields) == 2 {
		if period, err = strconv.ParseUint(fields[1], 10, 64); err != nil {
			return 0, false, fmt.Errorf("watchdog: cpu.max period: %w", err)
		}
	}
	if quota == 0 || period == 0 {
		return 0, false, fmt.Errorf("watchdog: cpu.max quota %d / period %d", quota, period)
	}
	return float64(quota) / float64(period), true, nil
}

// AutoCPULimit derives a watchdog CPU limit from the environment: the
// cgroup v2 quota when one throttles the process, the full machine
// otherwise, scaled by headroom (the fraction of the budget the service
// may spend before the shedding ladder engages; 0.85 is the serving
// default) and normalized to Config.CPULimit's unit — a fraction of all
// cores. A container quotaed at 2 cores on a 16-core host with headroom
// 0.85 gets 2/16·0.85 ≈ 0.106: the watchdog then degrades as the process
// approaches its *throttle* point, not the (unreachable) machine capacity.
func AutoCPULimit(headroom float64) float64 {
	return autoCPULimit(headroom, CPUQuota, runtime.NumCPU())
}

// autoCPULimit is AutoCPULimit with the quota reader and core count
// injected for the unit tests.
func autoCPULimit(headroom float64, quota func() (float64, bool), cores int) float64 {
	if headroom <= 0 || headroom > 1 {
		headroom = 0.85
	}
	if cores < 1 {
		cores = 1
	}
	budget := float64(cores)
	if q, ok := quota(); ok && q < budget {
		budget = q
	}
	return headroom * budget / float64(cores)
}
