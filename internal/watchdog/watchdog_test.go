package watchdog

import (
	"errors"
	"testing"
	"time"
)

// rig is the fault-injection harness: a watchdog with a fake clock and
// fake CPU/RSS readers. Each Tick advances the clock one interval, so a
// test scripts a load history by setting cpuBusy (fraction of capacity
// consumed since the previous tick) and rss before each step.
type rig struct {
	w       *Watchdog
	now     time.Time
	cpuTime time.Duration
	cpuBusy float64 // capacity fraction to burn per tick
	rss     uint64
	cpuErr  error
	rssErr  error
	cores   int
}

func newRig(cfg Config) *rig {
	r := &rig{now: time.Unix(1000, 0), cores: 4}
	if cfg.Cores > 0 {
		r.cores = cfg.Cores
	}
	cfg.Cores = r.cores
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	cfg.ReadCPU = func() (time.Duration, error) {
		if r.cpuErr != nil {
			return 0, r.cpuErr
		}
		return r.cpuTime, nil
	}
	cfg.ReadRSS = func() (uint64, error) {
		if r.rssErr != nil {
			return 0, r.rssErr
		}
		return r.rss, nil
	}
	cfg.Now = func() time.Time { return r.now }
	r.w = New(cfg)
	return r
}

// tick advances one sampling period with the rig's current load.
func (r *rig) tick() {
	r.now = r.now.Add(r.w.Interval())
	r.cpuTime += time.Duration(r.cpuBusy * float64(r.cores) * float64(r.w.Interval()))
	r.w.Tick()
}

func TestWatchdogCPUFraction(t *testing.T) {
	r := newRig(Config{CPULimit: 0.8, Settle: 3})
	r.cpuBusy = 0.4
	r.tick() // baseline only: no fraction yet
	if got := r.w.Health().CPU; got != 0 {
		t.Fatalf("CPU after first sample = %v, want 0 (baseline)", got)
	}
	r.tick()
	h := r.w.Health()
	if h.CPU < 0.39 || h.CPU > 0.41 {
		t.Fatalf("CPU fraction %v, want ~0.40", h.CPU)
	}
	// utilization = cpu/limit = 0.4/0.8 = 0.5 → Nominal
	if h.Utilization < 0.49 || h.Utilization > 0.51 {
		t.Fatalf("utilization %v, want ~0.5", h.Utilization)
	}
	if h.Level != Nominal {
		t.Fatalf("level %v, want nominal", h.Level)
	}
}

func TestWatchdogLevelsRiseImmediately(t *testing.T) {
	r := newRig(Config{CPULimit: 0.5, Settle: 3})
	r.tick() // baseline
	steps := []struct {
		busy float64
		want Level
	}{
		{0.4, Nominal},   // util 0.8
		{0.52, Degraded}, // util 1.04
		{0.60, Shedding}, // util 1.20
		{0.70, Critical}, // util 1.40
	}
	for _, s := range steps {
		r.cpuBusy = s.busy
		r.tick()
		if got := r.w.Level(); got != s.want {
			t.Fatalf("busy %v: level %v, want %v", s.busy, got, s.want)
		}
	}
	// A spike from calm jumps multiple levels in one sample.
	r2 := newRig(Config{CPULimit: 0.5, Settle: 3})
	r2.tick()
	r2.cpuBusy = 0.9 // util 1.8
	r2.tick()
	if got := r2.w.Level(); got != Critical {
		t.Fatalf("spike: level %v, want critical in one step", got)
	}
	if raises := r2.w.Health().Raises; raises != 3 {
		t.Fatalf("spike: %d raises recorded, want 3 (one per step)", raises)
	}
}

func TestWatchdogHysteresisAndSettle(t *testing.T) {
	r := newRig(Config{CPULimit: 0.5, Settle: 3})
	r.tick()
	r.cpuBusy = 0.7 // util 1.4 → Critical
	r.tick()
	if r.w.Level() != Critical {
		t.Fatalf("setup: level %v, want critical", r.w.Level())
	}
	// Utilization just below the entry threshold but inside the
	// hysteresis band: must NOT decay, however long it persists.
	r.cpuBusy = 0.5 * (enterCritical - hysteresis/2) // util 1.25
	for i := 0; i < 10; i++ {
		r.tick()
	}
	if r.w.Level() != Critical {
		t.Fatalf("inside hysteresis band: level %v, want critical", r.w.Level())
	}
	// Calm below the band: decays exactly one level per Settle samples.
	r.cpuBusy = 0.1 // util 0.2
	for step, want := range []Level{Critical, Critical, Critical, Shedding, Shedding, Shedding} {
		if got := r.w.Level(); got != want {
			t.Fatalf("calm step %d: level %v, want %v", step, got, want)
		}
		r.tick()
	}
	// One spike mid-recovery resets the calm counter.
	r.cpuBusy = 0.52 // util 1.04 → Degraded entry, so stays Degraded, calm reset
	r.tick()
	r.cpuBusy = 0.1
	r.tick()
	r.tick()
	if r.w.Level() != Degraded {
		t.Fatalf("2 calm samples after spike: level %v, want still degraded", r.w.Level())
	}
	r.tick()
	if r.w.Level() != Nominal {
		t.Fatalf("3rd calm sample: level %v, want nominal", r.w.Level())
	}
	h := r.w.Health()
	if h.Raises == 0 || h.Drops != 3 {
		t.Fatalf("transitions raises=%d drops=%d, want raises>0 drops=3", h.Raises, h.Drops)
	}
}

func TestWatchdogRSSDimension(t *testing.T) {
	r := newRig(Config{RSSLimit: 1 << 30, Settle: 2})
	r.rss = 512 << 20
	r.tick()
	if got := r.w.Level(); got != Nominal {
		t.Fatalf("at half the RSS limit: level %v, want nominal", got)
	}
	r.rss = 1200 << 20 // 1.17× limit
	r.tick()
	if got := r.w.Level(); got != Shedding {
		t.Fatalf("at 1.17x RSS limit: level %v, want shedding", got)
	}
	if h := r.w.Health(); h.RSS != 1200<<20 {
		t.Fatalf("health RSS %d, want %d", h.RSS, uint64(1200<<20))
	}
}

func TestWatchdogMaxOfDimensions(t *testing.T) {
	// CPU calm, RSS hot: the hotter dimension wins.
	r := newRig(Config{CPULimit: 0.5, RSSLimit: 1 << 30, Settle: 2})
	r.cpuBusy = 0.1
	r.rss = 1400 << 20 // 1.37× limit → Critical
	r.tick()           // baseline CPU; RSS already counted
	if got := r.w.Level(); got != Critical {
		t.Fatalf("hot RSS, calm CPU: level %v, want critical", got)
	}
}

func TestWatchdogReaderErrorHoldsLastReading(t *testing.T) {
	r := newRig(Config{CPULimit: 0.5, Settle: 2})
	r.tick()
	r.cpuBusy = 0.7 // util 1.4 → Critical
	r.tick()
	if r.w.Level() != Critical {
		t.Fatalf("setup: level %v, want critical", r.w.Level())
	}
	// Reader starts failing: the last (hot) reading must hold — a
	// failing reader must not read as recovery.
	r.cpuErr = errors.New("proc unreadable")
	for i := 0; i < 5; i++ {
		r.tick()
	}
	if got := r.w.Level(); got != Critical {
		t.Fatalf("reader failing: level %v, want critical held", got)
	}
	if errs := r.w.Health().SampleErrs; errs != 5 {
		t.Fatalf("sample errors %d, want 5", errs)
	}
	// Reader recovers with calm values: normal decay resumes.
	r.cpuErr = nil
	r.cpuBusy = 0.05
	for i := 0; i < 7; i++ {
		r.tick()
	}
	if got := r.w.Level(); got != Nominal {
		t.Fatalf("after recovery: level %v, want nominal", got)
	}
}

func TestWatchdogStartStopNoLeak(t *testing.T) {
	r := newRig(Config{CPULimit: 0.5, Interval: time.Millisecond})
	r.w.Start()
	r.w.Start() // idempotent
	time.Sleep(5 * time.Millisecond)
	r.w.Stop()
	r.w.Stop() // idempotent
	// Stop without Start must not hang.
	w2 := New(Config{CPULimit: 0.5})
	w2.Stop()
}

func TestWatchdogRecoveryHint(t *testing.T) {
	w := New(Config{CPULimit: 0.5, Interval: 2 * time.Second, Settle: 3})
	if got := w.RecoveryHint(); got != 6*time.Second {
		t.Fatalf("recovery hint %v, want 6s", got)
	}
}

func TestLevelStrings(t *testing.T) {
	for lvl, want := range map[Level]string{
		Nominal: "nominal", Degraded: "degraded", Shedding: "shedding",
		Critical: "critical", Level(42): "unknown",
	} {
		if lvl.String() != want {
			t.Fatalf("Level(%d).String() = %q, want %q", lvl, lvl.String(), want)
		}
	}
}

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if !(Config{CPULimit: 0.5}).Enabled() || !(Config{RSSLimit: 1}).Enabled() {
		t.Fatal("configured limit not reported enabled")
	}
}

func TestProcStatParsers(t *testing.T) {
	// A comm with spaces and a ')' — the adversarial case for stat
	// parsing; utime=150 stime=50 ticks → 2s at USER_HZ=100.
	stat := "1234 (my (weird) proc) S 1 1 1 0 -1 4194304 100 0 0 0 150 50 0 0 20 0 8 0 12345 1000000 500 18446744073709551615"
	d, err := parseProcStatCPU(stat)
	if err != nil {
		t.Fatalf("parse stat: %v", err)
	}
	if d != 2*time.Second {
		t.Fatalf("cpu time %v, want 2s", d)
	}
	if _, err := parseProcStatCPU("garbage"); err == nil {
		t.Fatal("malformed stat accepted")
	}
	if _, err := parseProcStatCPU("1 (x) S 1 2 3"); err == nil {
		t.Fatal("short stat accepted")
	}

	rss, err := parseProcStatmRSS("9999 250 30 40 0 60 0", 4096)
	if err != nil {
		t.Fatalf("parse statm: %v", err)
	}
	if rss != 250*4096 {
		t.Fatalf("rss %d, want %d", rss, 250*4096)
	}
	if _, err := parseProcStatmRSS("1", 4096); err == nil {
		t.Fatal("short statm accepted")
	}
}

func TestProcReadersLive(t *testing.T) {
	// Smoke test against the real /proc on Linux; skip where absent.
	cpu, err := ProcCPU()
	if err != nil {
		t.Skipf("no procfs: %v", err)
	}
	if cpu < 0 {
		t.Fatalf("negative cpu time %v", cpu)
	}
	rss, err := ProcRSS()
	if err != nil {
		t.Fatalf("ProcRSS after ProcCPU worked: %v", err)
	}
	if rss == 0 {
		t.Fatal("zero RSS for a running process")
	}
}
