package watchdog

import (
	"math"
	"testing"
)

func TestParseCPUMax(t *testing.T) {
	cases := []struct {
		in    string
		quota float64
		ok    bool
		err   bool
	}{
		{"max 100000\n", 0, false, false}, // unlimited
		{"max\n", 0, false, false},        // unlimited, period omitted
		{"200000 100000\n", 2.0, true, false},
		{"50000 100000\n", 0.5, true, false},
		{"150000 100000", 1.5, true, false}, // no trailing newline
		{"250000\n", 2.5, true, false},      // default period
		{"", 0, false, true},
		{"banana 100000\n", 0, false, true},
		{"100000 banana\n", 0, false, true},
		{"0 100000\n", 0, false, true},
		{"100000 0\n", 0, false, true},
		{"1 2 3\n", 0, false, true},
	}
	for _, tc := range cases {
		q, ok, err := parseCPUMax(tc.in)
		if (err != nil) != tc.err {
			t.Errorf("parseCPUMax(%q): err %v, want err=%v", tc.in, err, tc.err)
			continue
		}
		if ok != tc.ok || math.Abs(q-tc.quota) > 1e-12 {
			t.Errorf("parseCPUMax(%q) = (%v, %v), want (%v, %v)", tc.in, q, ok, tc.quota, tc.ok)
		}
	}
}

func TestAutoCPULimit(t *testing.T) {
	quotaOf := func(q float64, ok bool) func() (float64, bool) {
		return func() (float64, bool) { return q, ok }
	}
	cases := []struct {
		name     string
		headroom float64
		quota    func() (float64, bool)
		cores    int
		want     float64
	}{
		// Quotaed at 2 of 16 cores: the limit tracks the throttle point.
		{"quota-2-of-16", 0.85, quotaOf(2, true), 16, 0.85 * 2.0 / 16},
		// No cgroup quota: the full machine scaled by headroom.
		{"no-quota", 0.85, quotaOf(0, false), 8, 0.85},
		// A quota above the machine's cores cannot raise the budget.
		{"quota-above-cores", 0.85, quotaOf(32, true), 4, 0.85},
		// Fractional quota (half a core on a 4-core host).
		{"fractional", 0.8, quotaOf(0.5, true), 4, 0.8 * 0.5 / 4},
		// Out-of-range headroom falls back to the serving default.
		{"bad-headroom", -1, quotaOf(0, false), 8, 0.85},
		{"headroom-above-1", 1.5, quotaOf(0, false), 8, 0.85},
	}
	for _, tc := range cases {
		if got := autoCPULimit(tc.headroom, tc.quota, tc.cores); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: autoCPULimit = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestCPUQuotaDoesNotPanic exercises the real reader on whatever host runs
// the suite: any (value, ok) answer is acceptable, but a present quota
// must be positive.
func TestCPUQuotaDoesNotPanic(t *testing.T) {
	q, ok := CPUQuota()
	if ok && q <= 0 {
		t.Fatalf("CPUQuota reported a non-positive quota %v", q)
	}
}
