package watchdog

import (
	"sync"
	"time"
)

// clientCap bounds how many per-client token buckets a RateLimiter
// retains: beyond it the least recently touched bucket is evicted (that
// client's next request starts a fresh, full bucket). It exists so a
// front end fed a stream of never-repeating client identities cannot grow
// the limiter without bound — the same containment discipline as the
// batch engine's scaling cache.
const clientCap = 4096

// RateLimiter is a per-client token-bucket admission limiter: each client
// earns rate tokens per second up to a burst ceiling, and every admitted
// request spends one. It answers in O(1) with no background goroutine
// (buckets refill lazily on access) and is safe for concurrent use.
//
// The limiter is the fairness half of priority admission: the watchdog
// sheds by how hot the *process* is, the limiter by how greedy one
// *client* is — so a single runaway caller saturating the queue cannot
// starve everyone else into shed territory.
type RateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time // last refill; doubles as the LRU recency stamp
}

// NewRateLimiter builds a limiter granting rate tokens per second with
// the given burst ceiling (<= 0 means max(2·rate, 1)). now is the clock;
// nil means time.Now. A rate <= 0 disables limiting: Allow always grants.
func NewRateLimiter(rate float64, burst int, now func() time.Time) *RateLimiter {
	if now == nil {
		now = time.Now
	}
	b := float64(burst)
	if burst <= 0 {
		b = 2 * rate
		if b < 1 {
			b = 1
		}
	}
	return &RateLimiter{rate: rate, burst: b, now: now, buckets: make(map[string]*bucket)}
}

// Allow spends one token from client's bucket. When the bucket is empty
// it returns false and the wait until one token will have accrued — the
// Retry-After a 429 response carries.
func (l *RateLimiter) Allow(client string) (ok bool, retryAfter time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[client]
	if b == nil {
		if len(l.buckets) >= clientCap {
			l.evictOldest()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	} else {
		b.tokens += l.rate * now.Sub(b.last).Seconds()
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// evictOldest drops the least recently touched bucket; called with mu
// held. Linear scan — eviction only happens past clientCap distinct
// clients, where one O(n) pass per new client is still trivial next to
// the matching work each admitted request buys.
func (l *RateLimiter) evictOldest() {
	var victim string
	var oldest time.Time
	first := true
	for c, b := range l.buckets {
		if first || b.last.Before(oldest) {
			victim, oldest, first = c, b.last, false
		}
	}
	delete(l.buckets, victim)
}

// Clients returns how many per-client buckets are live (for metrics).
func (l *RateLimiter) Clients() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
