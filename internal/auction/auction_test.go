package auction

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/par"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// randWeighted builds a seeded random weighted bipartite graph with about
// deg edges per row. skew switches the weight law from uniform (0,1] to a
// heavy-tailed Pareto.
func randWeighted(t *testing.T, n, m, deg int, seed uint64, skew bool) *sparse.CSR {
	t.Helper()
	rng := xrand.New(seed)
	var entries []sparse.Coord
	for i := 0; i < n; i++ {
		for k := 0; k < deg; k++ {
			j := rng.Intn(m)
			w := 1 - rng.Float64() // uniform in (0,1]
			if skew {
				w = rng.Pareto(1, 1.2)
			}
			entries = append(entries, sparse.Coord{I: int32(i), J: int32(j), V: w})
		}
	}
	a, err := sparse.FromCOO(n, m, entries, true)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// rankDeficient builds a graph whose structural rank is far below
// min(n,m): most rows see only the first few columns, so the auction's
// reset/cascade at the final phase is actually exercised.
func rankDeficient(t *testing.T, n, m int, seed uint64) *sparse.CSR {
	t.Helper()
	rng := xrand.New(seed)
	var entries []sparse.Coord
	cols := m / 4
	if cols < 2 {
		cols = 2
	}
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			entries = append(entries, sparse.Coord{
				I: int32(i), J: int32(rng.Intn(cols)), V: 1 - rng.Float64(),
			})
		}
	}
	a, err := sparse.FromCOO(n, m, entries, true)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func checkValid(t *testing.T, a *sparse.CSR, res Result) {
	t.Helper()
	mt := res.Matching
	size := 0
	for i := range mt.RowMate {
		j := mt.RowMate[i]
		if j == exact.NIL {
			continue
		}
		size++
		if mt.ColMate[j] != int32(i) {
			t.Fatalf("mate arrays disagree at row %d", i)
		}
		if !hasEdge(a, i, j) {
			t.Fatalf("matched pair (%d,%d) is not an edge", i, j)
		}
	}
	if size != mt.Size {
		t.Fatalf("Size=%d but %d rows matched", mt.Size, size)
	}
	w := MatchedWeight(a, mt)
	if math.Abs(w-res.Weight) > 1e-9*(1+math.Abs(w)) {
		t.Fatalf("Weight=%v but recomputed %v", res.Weight, w)
	}
}

// TestAuctionQualityOracle proves the (1−ε) contract against the exact
// oracle across uniform, skewed and rank-deficient families and several
// epsilons, and checks the reported DualBound really bounds the optimum.
func TestAuctionQualityOracle(t *testing.T) {
	type family struct {
		name string
		gen  func(seed uint64) *sparse.CSR
	}
	families := []family{
		{"uniform", func(s uint64) *sparse.CSR { return randWeighted(t, 60, 50, 4, s, false) }},
		{"skewed", func(s uint64) *sparse.CSR { return randWeighted(t, 50, 60, 4, s, true) }},
		{"rankdef", func(s uint64) *sparse.CSR { return rankDeficient(t, 60, 60, s) }},
	}
	for _, fam := range families {
		for _, eps := range []float64{0.5, 0.1, 0.02} {
			for seed := uint64(1); seed <= 8; seed++ {
				a := fam.gen(seed)
				at := a.Transpose()
				opt := Options{Epsilon: eps}
				res, err := Run(a, at, opt, seed, nil)
				if err != nil {
					t.Fatalf("%s eps=%v seed=%d: %v", fam.name, eps, seed, err)
				}
				checkValid(t, a, res)
				optW, _, err := Oracle(a)
				if err != nil {
					t.Fatal(err)
				}
				if res.Weight < (1-eps)*optW-1e-9 {
					t.Errorf("%s eps=%v seed=%d: weight %v < (1-eps)*opt %v (opt %v)",
						fam.name, eps, seed, res.Weight, (1-eps)*optW, optW)
				}
				if res.DualBound < optW-1e-9 {
					t.Errorf("%s eps=%v seed=%d: DualBound %v below optimum %v",
						fam.name, eps, seed, res.DualBound, optW)
				}
				if res.Weight > res.DualBound+1e-9 {
					t.Errorf("%s eps=%v seed=%d: weight %v exceeds DualBound %v",
						fam.name, eps, seed, res.Weight, res.DualBound)
				}
			}
		}
	}
}

// TestAuctionDeterminismWidths pins bit-identity of the full result
// across pool widths 1, 2 and 4 at several seeds, on graphs large enough
// that the bidding loop actually fans out.
func TestAuctionDeterminismWidths(t *testing.T) {
	for _, skew := range []bool{false, true} {
		a := randWeighted(t, 3000, 2800, 4, 42, skew)
		at := a.Transpose()
		for seed := uint64(1); seed <= 3; seed++ {
			var ref Result
			for wi, width := range []int{1, 2, 4} {
				pool := par.NewPool(width)
				opt := Options{Epsilon: 0.1, Workers: width, Pool: pool}
				res, err := Run(a, at, opt, seed, nil)
				pool.Close()
				if err != nil {
					t.Fatal(err)
				}
				if wi == 0 {
					ref = res
					checkValid(t, a, res)
					continue
				}
				if res.Weight != ref.Weight || res.Rounds != ref.Rounds {
					t.Fatalf("width %d seed %d: weight/rounds (%v,%d) != width-1 (%v,%d)",
						width, seed, res.Weight, res.Rounds, ref.Weight, ref.Rounds)
				}
				for i := range ref.Matching.RowMate {
					if res.Matching.RowMate[i] != ref.Matching.RowMate[i] {
						t.Fatalf("width %d seed %d: RowMate[%d] differs", width, seed, i)
					}
				}
			}
		}
	}
}

// TestAuctionSeededTieBreaks checks that distinct seeds can reach
// distinct matchings on a tie-heavy instance (all weights equal) while
// every seed preserves validity — the property ensembles rely on.
func TestAuctionSeededTieBreaks(t *testing.T) {
	var entries []sparse.Coord
	n := 40
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			entries = append(entries, sparse.Coord{I: int32(i), J: int32((i + k*7) % n), V: 1})
		}
	}
	a, err := sparse.FromCOO(n, n, entries, true)
	if err != nil {
		t.Fatal(err)
	}
	at := a.Transpose()
	seen := map[string]bool{}
	for seed := uint64(1); seed <= 6; seed++ {
		res, err := Run(a, at, Options{Epsilon: 0.2}, seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkValid(t, a, res)
		key := ""
		for _, j := range res.Matching.RowMate {
			key += string(rune(j + 2))
		}
		seen[key] = true
	}
	if len(seen) < 2 {
		t.Error("six seeds produced a single matching on a tie-heavy instance; tie-breaking is not seeded")
	}
}

// TestAuctionPatternFallback runs the auction on a pattern (unweighted)
// graph: every edge counts 1.0, so Weight must equal Size and the result
// must be maximal.
func TestAuctionPatternFallback(t *testing.T) {
	var entries []sparse.Coord
	for i := 0; i < 30; i++ {
		entries = append(entries, sparse.Coord{I: int32(i), J: int32(i)})
		entries = append(entries, sparse.Coord{I: int32(i), J: int32((i + 1) % 30)})
	}
	a, err := sparse.FromCOO(30, 30, entries, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(a, a.Transpose(), Options{Epsilon: 0.1}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, a, res)
	if res.Weight != float64(res.Matching.Size) {
		t.Fatalf("pattern graph: Weight %v != Size %d", res.Weight, res.Matching.Size)
	}
	if res.Matching.Size != 30 {
		t.Fatalf("perfect matching exists but got size %d", res.Matching.Size)
	}
}

// TestAuctionMaximal: no unmatched row may share an edge with an
// unmatched column (positive weights make such a pair strictly
// improving, and the drop-out rule forbids it).
func TestAuctionMaximal(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		a := rankDeficient(t, 80, 80, seed)
		res, err := Run(a, a.Transpose(), Options{Epsilon: 0.3}, seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.Matching.RowMate {
			if res.Matching.RowMate[i] != exact.NIL {
				continue
			}
			for _, j := range a.Row(i) {
				if res.Matching.ColMate[j] == exact.NIL {
					t.Fatalf("seed %d: unmatched row %d adjacent to unmatched col %d", seed, i, j)
				}
			}
		}
	}
}

// TestAuctionPrepareFinish checks the ensemble warm-start split: Finish
// from clones of one Prepare state matches the one-shot Run bit for bit
// at the same seed.
func TestAuctionPrepareFinish(t *testing.T) {
	a := randWeighted(t, 200, 180, 4, 7, false)
	at := a.Transpose()
	opt := Options{Epsilon: 0.1}
	ws := &Workspace{}
	st, epsAbs, err := Prepare(a, at, opt, ws)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		one, err := Run(a, at, opt, seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		wsF := &Workspace{}
		got, err := Finish(a, at, opt, seed, epsAbs, st.Clone(), wsF)
		if err != nil {
			t.Fatal(err)
		}
		if got.Weight != one.Weight {
			t.Fatalf("seed %d: Prepare+Finish weight %v != Run %v", seed, got.Weight, one.Weight)
		}
		for i := range one.Matching.RowMate {
			if got.Matching.RowMate[i] != one.Matching.RowMate[i] {
				t.Fatalf("seed %d: RowMate[%d] differs from one-shot run", seed, i)
			}
		}
	}
}

// TestAuctionRepair mutates a graph and repairs the maintained state,
// checking validity and the creation-time quality bound on the mutated
// graph.
func TestAuctionRepair(t *testing.T) {
	a := randWeighted(t, 50, 50, 4, 3, false)
	at := a.Transpose()
	opt := Options{Epsilon: 0.1}
	ws := &Workspace{}
	st, epsAbs, err := Prepare(a, at, opt, ws)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Finish(a, at, opt, 1, epsAbs, st, ws); err != nil {
		t.Fatal(err)
	}
	// Delete every third matched edge and add fresh heavy edges.
	var entries []sparse.Coord
	for i := 0; i < a.RowsN; i++ {
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			if j := a.Idx[p]; !(st.RowMate[i] == j && i%3 == 0) {
				entries = append(entries, sparse.Coord{I: int32(i), J: j, V: a.Val[p]})
			}
		}
	}
	rng := xrand.New(99)
	for k := 0; k < 20; k++ {
		entries = append(entries, sparse.Coord{
			I: int32(rng.Intn(50)), J: int32(rng.Intn(50)), V: 2,
		})
	}
	b, err := sparse.FromCOO(50, 50, entries, true)
	if err != nil {
		t.Fatal(err)
	}
	bt := b.Transpose()
	res, err := Repair(b, bt, opt, 2, epsAbs, st, ws)
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, b, res)
	optW, _, err := Oracle(b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight < optW-float64(res.Matching.Size)*epsAbs-1e-9 {
		t.Errorf("repair: weight %v below opt %v − |M|·ε_abs", res.Weight, optW)
	}
}

// TestAuctionWeightValidation rejects non-positive and non-finite
// weights.
func TestAuctionWeightValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		a, err := sparse.New(1, 1, []int{0, 1}, []int32{0}, []float64{bad})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(a, a.Transpose(), Options{Epsilon: 0.1}, 1, nil); err == nil {
			t.Errorf("weight %v accepted", bad)
		}
	}
	// Epsilon domain.
	a, _ := sparse.New(1, 1, []int{0, 1}, []int32{0}, []float64{1})
	for _, eps := range []float64{0, 1, -0.5, 2} {
		if _, err := Run(a, a.Transpose(), Options{Epsilon: eps}, 1, nil); err == nil {
			t.Errorf("epsilon %v accepted", eps)
		}
	}
}

// TestAuctionOracleSelfCheck cross-checks the Hungarian oracle against
// brute-force enumeration on tiny instances.
func TestAuctionOracleSelfCheck(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		a := randWeighted(t, 5, 5, 2, seed, seed%2 == 0)
		want := bruteForce(a)
		got, mt, err := Oracle(a)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("seed %d: oracle %v != brute force %v", seed, got, want)
		}
		if w := MatchedWeight(a, mt); math.Abs(w-got) > 1e-9 {
			t.Fatalf("seed %d: oracle matching weight %v != reported %v", seed, w, got)
		}
	}
}

// bruteForce enumerates all matchings of a tiny graph by recursion over
// rows.
func bruteForce(a *sparse.CSR) float64 {
	used := make([]bool, a.ColsN)
	var rec func(i int) float64
	rec = func(i int) float64 {
		if i == a.RowsN {
			return 0
		}
		best := rec(i + 1) // leave row i unmatched
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			j := a.Idx[p]
			if used[j] {
				continue
			}
			used[j] = true
			if w := weightAt(a, p) + rec(i+1); w > best {
				best = w
			}
			used[j] = false
		}
		return best
	}
	return rec(0)
}
