// Package auction implements the ε-scaling auction algorithm for
// approximate maximum-weight bipartite matching (Bertsekas' auction with
// price scaling, parallelized in the style of Sathe–Schenk–Burkhart).
//
// The algorithm maintains a price p[j] per column and repeatedly lets
// unassigned rows bid for their most profitable column. With bid
// increments of at least ε_abs the final matching M and prices satisfy
// ε-complementary-slackness, which yields the quality contract this
// package is built around:
//
//	weight(M) ≥ opt − |M|·ε_abs ≥ (1−ε)·opt
//
// where ε_abs = ε·Wmax/min(rows,cols) and opt is the maximum matched
// weight. The second inequality uses opt ≥ Wmax, which holds because a
// single heaviest edge is itself a matching. Every run also reports
// DualBound — the value Σp_j + Σr_i of a feasible LP dual built from the
// final prices — so callers can certify weight(M)/opt ≥ weight(M)/DualBound
// without an exact solve.
//
// # Determinism
//
// Bidding rounds are Jacobi-style: every queued row computes its bid
// against the same pre-round prices into a private per-row slot (this is
// the parallel region, fanned out over a worker pool), then the bids are
// reconciled serially in queue order. Bid computation is a pure function
// of (row, prices, seed, round), so results are bit-identical at any pool
// width. Seeded tie-breaking uses a per-(row,round) indexed SplitMix64
// stream, never worker-local state.
package auction

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/exact"
	"repro/internal/par"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// ErrWeights reports a weight outside the supported domain. The
// (1−ε)-approximation contract needs strictly positive finite weights:
// zero or negative weights break the opt ≥ Wmax step of the bound and
// NaN/Inf poison price arithmetic.
var ErrWeights = errors.New("auction: weights must be positive and finite")

// ErrOptions reports an invalid Options value.
var ErrOptions = errors.New("auction: invalid options")

// Options configures a run.
type Options struct {
	// Epsilon is the relative approximation slack in (0,1): the matched
	// weight is guaranteed ≥ (1−ε)·optimal.
	Epsilon float64
	// Workers caps the bidding-phase parallelism; <=1 runs serially.
	Workers int
	// Pool optionally supplies the worker pool for bidding rounds. Nil
	// runs on a transient pool of Workers width.
	Pool *par.Pool
}

// State is the mutable auction state: column prices plus the current
// matching. Prepare produces a warm State; Finish and Repair advance one
// to a final matching. Candidates of an ensemble each clone the shared
// warm State and finish independently.
type State struct {
	Prices  []float64
	RowMate []int32
	ColMate []int32
}

// Clone returns a deep copy of the state.
func (st *State) Clone() *State {
	return &State{
		Prices:  append([]float64(nil), st.Prices...),
		RowMate: append([]int32(nil), st.RowMate...),
		ColMate: append([]int32(nil), st.ColMate...),
	}
}

// NewState returns an empty state (zero prices, nothing matched) for an
// n×m graph.
func NewState(n, m int) *State {
	st := &State{
		Prices:  make([]float64, m),
		RowMate: make([]int32, n),
		ColMate: make([]int32, m),
	}
	for i := range st.RowMate {
		st.RowMate[i] = exact.NIL
	}
	for j := range st.ColMate {
		st.ColMate[j] = exact.NIL
	}
	return st
}

// Result reports one finished auction.
type Result struct {
	// Matching is the computed matching; maximal on the positive-weight
	// edge set (no unmatched row shares an edge with an unmatched column).
	Matching *exact.Matching
	// Weight is the total weight of Matching (for pattern graphs, every
	// edge counts 1.0, so Weight == Size).
	Weight float64
	// Rounds is the total number of bidding rounds across all phases.
	Rounds int
	// Phases is the number of ε-scaling phases run.
	Phases int
	// EpsilonAbs is the absolute slack of the final phase; the matching
	// satisfies weight ≥ opt − Size·EpsilonAbs.
	EpsilonAbs float64
	// DualBound is the value of a feasible dual solution built from the
	// final prices: a certified upper bound on the optimal matched weight.
	// At termination it is also ≤ Weight + Size·EpsilonAbs, so the
	// certified ratio Weight/DualBound is itself ≥ (1−ε)-tight.
	DualBound float64
}

// Workspace holds the reusable scratch buffers of a run. The zero value
// is ready to use; reuse across runs avoids reallocation.
type Workspace struct {
	bidCol []int32   // per-row bid target this round, or -1
	bidVal []float64 // per-row bid price
	queue  []int32   // active (unassigned, still bidding) rows
	next   []int32
	colQ   []int32 // cascade worklist of columns to price-reset
	reset  []bool  // cascade visited marks, len m
	rounds int
	phases int
}

func (ws *Workspace) grow(n, m int) {
	if cap(ws.bidCol) < n {
		ws.bidCol = make([]int32, n)
		ws.bidVal = make([]float64, n)
		ws.queue = make([]int32, 0, n)
		ws.next = make([]int32, 0, n)
	}
	ws.bidCol = ws.bidCol[:n]
	ws.bidVal = ws.bidVal[:n]
	if cap(ws.reset) < m {
		ws.reset = make([]bool, m)
		ws.colQ = make([]int32, 0, m)
	}
	ws.reset = ws.reset[:m]
}

// Validate checks the weight domain: strictly positive, finite values.
// Pattern graphs (nil Val) pass trivially. Returns the maximum weight.
func Validate(a *sparse.CSR) (wmax float64, err error) {
	if a.Val == nil {
		if len(a.Idx) > 0 {
			wmax = 1
		}
		return wmax, nil
	}
	for _, v := range a.Val {
		if !(v > 0) || math.IsInf(v, 1) {
			return 0, fmt.Errorf("%w: got %v", ErrWeights, v)
		}
		if v > wmax {
			wmax = v
		}
	}
	return wmax, nil
}

// EpsilonAbs maps the relative contract ε to the absolute per-edge slack
// of the final phase: ε·wmax/min(n,m). With at most min(n,m) matched
// edges the total slack is ≤ ε·wmax ≤ ε·opt.
func EpsilonAbs(eps, wmax float64, n, m int) float64 {
	minSide := n
	if m < n {
		minSide = m
	}
	if minSide < 1 {
		minSide = 1
	}
	return eps * wmax / float64(minSide)
}

// weightAt returns the weight of the p-th stored edge (1.0 for pattern
// graphs).
func weightAt(a *sparse.CSR, p int) float64 {
	if a.Val == nil {
		return 1
	}
	return a.Val[p]
}

// Prepare runs the coarse ε-scaling phases — every phase except the
// final one — and then normalizes the state for the final slack: matched
// pairs violating ε-CS at epsAbs are unmatched and every unmatched
// column's price is reset to zero (with the cascade that reset may
// trigger). The returned state is a deterministic, seed-independent warm
// start shared by all ensemble candidates.
func Prepare(a, at *sparse.CSR, opt Options, ws *Workspace) (*State, float64, error) {
	if !(opt.Epsilon > 0 && opt.Epsilon < 1) {
		return nil, 0, fmt.Errorf("%w: Epsilon %v outside (0,1)", ErrOptions, opt.Epsilon)
	}
	wmax, err := Validate(a)
	if err != nil {
		return nil, 0, err
	}
	n, m := a.RowsN, a.ColsN
	ws.grow(n, m)
	ws.rounds, ws.phases = 0, 0
	st := NewState(n, m)
	if len(a.Idx) == 0 {
		return st, 0, nil
	}
	epsFinal := EpsilonAbs(opt.Epsilon, wmax, n, m)
	// Coarse phases: slack starts near wmax/2 and shrinks by 4× per
	// phase. The matching and prices carry across phases as a warm start;
	// only the final phase (run by Finish) needs the exact ε-CS invariant,
	// which normalize restores below.
	for eps := wmax / 2; eps > epsFinal; eps /= 4 {
		runPhase(a, st, eps, 0, false, opt, ws)
		ws.phases++
	}
	normalize(a, at, st, epsFinal, ws)
	return st, epsFinal, nil
}

// Finish runs the final, seeded phase at the given absolute slack and
// returns the completed result. st must satisfy the final-phase
// preconditions (as produced by Prepare, or by Repair's normalization):
// matched pairs ε-CS-consistent at epsAbs and unmatched columns at price
// zero. st is advanced in place; the returned Matching aliases st's mate
// arrays.
func Finish(a, at *sparse.CSR, opt Options, seed uint64, epsAbs float64, st *State, ws *Workspace) (Result, error) {
	if !(opt.Epsilon > 0 && opt.Epsilon < 1) {
		return Result{}, fmt.Errorf("%w: Epsilon %v outside (0,1)", ErrOptions, opt.Epsilon)
	}
	n, m := a.RowsN, a.ColsN
	ws.grow(n, m)
	if len(a.Idx) > 0 {
		runPhase(a, st, epsAbs, seed, true, opt, ws)
		ws.phases++
	}
	mt := &exact.Matching{RowMate: st.RowMate, ColMate: st.ColMate}
	var weight float64
	for i := 0; i < n; i++ {
		j := st.RowMate[i]
		if j == exact.NIL {
			continue
		}
		mt.Size++
		weight += edgeWeight(a, i, j)
	}
	return Result{
		Matching:   mt,
		Weight:     weight,
		Rounds:     ws.rounds,
		Phases:     ws.phases,
		EpsilonAbs: epsAbs,
		DualBound:  dualBound(a, st),
	}, nil
}

// Run is the one-shot entry: Prepare then Finish on a fresh state.
func Run(a, at *sparse.CSR, opt Options, seed uint64, ws *Workspace) (Result, error) {
	if ws == nil {
		ws = &Workspace{}
	}
	st, epsAbs, err := Prepare(a, at, opt, ws)
	if err != nil {
		return Result{}, err
	}
	return Finish(a, at, opt, seed, epsAbs, st, ws)
}

// Repair re-establishes the final-phase invariants on a mutated graph and
// re-auctions the unassigned rows: matched pairs whose edge vanished or
// whose ε-CS no longer holds are dropped, the given touched columns and
// all unmatched columns are price-reset (with cascade), and a final
// seeded phase runs at epsAbs. This is the dynamic-session path: st is
// the maintained state, epsAbs the session's creation-time slack, and the
// guarantee weight ≥ opt − |M|·epsAbs is relative to that slack.
func Repair(a, at *sparse.CSR, opt Options, seed uint64, epsAbs float64, st *State, ws *Workspace) (Result, error) {
	n, m := a.RowsN, a.ColsN
	ws.grow(n, m)
	ws.rounds, ws.phases = 0, 0
	// The graph may have grown: extend the state to the new shape.
	for len(st.Prices) < m {
		st.Prices = append(st.Prices, 0)
		st.ColMate = append(st.ColMate, exact.NIL)
	}
	for len(st.RowMate) < n {
		st.RowMate = append(st.RowMate, exact.NIL)
	}
	// Drop matched pairs whose edge no longer exists (deleted or, for a
	// shrunk graph, out of range).
	for i := 0; i < n; i++ {
		j := st.RowMate[i]
		if j == exact.NIL {
			continue
		}
		if int(j) >= m || !hasEdge(a, i, j) {
			st.RowMate[i] = exact.NIL
			if int(j) < m {
				st.ColMate[j] = exact.NIL
			}
		}
	}
	normalize(a, at, st, epsAbs, ws)
	return Finish(a, at, opt, seed, epsAbs, st, ws)
}

// edgeWeight returns w_ij for an edge known to exist.
func edgeWeight(a *sparse.CSR, i int, j int32) float64 {
	s, e := a.Ptr[i], a.Ptr[i+1]
	for p := s; p < e; p++ {
		if a.Idx[p] == j {
			return weightAt(a, p)
		}
	}
	return 0
}

func hasEdge(a *sparse.CSR, i int, j int32) bool {
	for _, k := range a.Idx[a.Ptr[i]:a.Ptr[i+1]] {
		if k == j {
			return true
		}
	}
	return false
}

// normalize restores the final-phase preconditions at slack epsAbs:
// every unmatched column gets price zero and every matched pair
// satisfies w_ij − p_j ≥ max_k(w_ik − p_k) − epsAbs. Lowering a column
// price can create new ε-CS violations on adjacent rows, so violators
// are unmatched and their columns queued — a cascade that resets each
// column at most once and therefore terminates in O(nnz).
func normalize(a, at *sparse.CSR, st *State, epsAbs float64, ws *Workspace) {
	n, m := a.RowsN, a.ColsN
	ws.colQ = ws.colQ[:0]
	for j := range ws.reset {
		ws.reset[j] = false
	}
	for j := 0; j < m; j++ {
		if st.ColMate[j] == exact.NIL && st.Prices[j] != 0 {
			st.Prices[j] = 0
			ws.reset[j] = true
			ws.colQ = append(ws.colQ, int32(j))
		}
	}
	// Initial sweep: the slack may have tightened since the pairs were
	// matched, so every matched row is checked once up front.
	for i := 0; i < n; i++ {
		checkCS(a, st, epsAbs, i, ws)
	}
	for len(ws.colQ) > 0 {
		j := ws.colQ[len(ws.colQ)-1]
		ws.colQ = ws.colQ[:len(ws.colQ)-1]
		// Rows adjacent to a reset column gained surplus there; their
		// matched edges may now violate ε-CS.
		for _, i := range at.Row(int(j)) {
			checkCS(a, st, epsAbs, int(i), ws)
		}
	}
}

// checkCS unmatches row i if its matched edge violates ε-CS at epsAbs,
// resetting and queueing the freed column. Two conditions must hold: the
// relative one (within epsAbs of the row's best surplus) and the absolute
// one (surplus ≥ −epsAbs). The absolute check matters because coarse
// phases bid with far larger slacks, so a pair matched early can carry a
// deeply negative surplus — an overpriced column — into the final phase;
// both the (1−ε) guarantee and the DualBound tightness
// (DualBound ≤ weight + |M|·epsAbs) need every surviving surplus ≥ −epsAbs.
func checkCS(a *sparse.CSR, st *State, epsAbs float64, i int, ws *Workspace) {
	j := st.RowMate[i]
	if j == exact.NIL {
		return
	}
	have := edgeWeight(a, i, j) - st.Prices[j]
	best := math.Inf(-1)
	for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
		if s := weightAt(a, p) - st.Prices[a.Idx[p]]; s > best {
			best = s
		}
	}
	if have >= best-epsAbs && have >= -epsAbs {
		return
	}
	st.RowMate[i] = exact.NIL
	st.ColMate[j] = exact.NIL
	if !ws.reset[j] {
		st.Prices[j] = 0
		ws.reset[j] = true
		ws.colQ = append(ws.colQ, j)
	}
}

// runPhase auctions all currently unassigned rows at slack epsAbs until
// every one is either matched or priced out (no positive surplus left).
// Each round is a parallel Jacobi bid computation over the queue followed
// by a serial reconciliation in queue order, so the outcome is a pure
// function of the inputs regardless of worker count.
func runPhase(a *sparse.CSR, st *State, epsAbs float64, seed uint64, seeded bool, opt Options, ws *Workspace) {
	n := a.RowsN
	ws.queue = ws.queue[:0]
	for i := 0; i < n; i++ {
		if st.RowMate[i] == exact.NIL && a.Ptr[i+1] > a.Ptr[i] {
			ws.queue = append(ws.queue, int32(i))
		}
	}
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	pool := opt.Pool
	if pool == nil && workers > 1 {
		pool = par.NewPool(workers)
		defer pool.Close()
	}
	base := xrand.Base(seed)
	round := 0
	for len(ws.queue) > 0 {
		q := ws.queue
		bid := func(lo, hi int) {
			var rng xrand.SplitMix64
			for qi := lo; qi < hi; qi++ {
				i := int(q[qi])
				if seeded {
					// One indexed stream per (row, round): deterministic
					// under any schedule, distinct across rounds.
					rng.SetIndexed(base, i+round*n)
				}
				computeBid(a, st, epsAbs, i, seeded, &rng, ws)
			}
		}
		if pool == nil || len(q) < 2*par.DefaultChunk {
			bid(0, len(q))
		} else {
			pool.For(len(q), workers, par.Dynamic, par.DefaultChunk, func(_, lo, hi int) {
				bid(lo, hi)
			})
		}
		// Serial reconcile in queue order: deterministic acceptance, and
		// later bidders see earlier same-round price rises (their stale
		// bids are rejected and re-queued).
		ws.next = ws.next[:0]
		for _, i := range q {
			j := ws.bidCol[i]
			if j < 0 {
				continue // priced out: no positive surplus remains
			}
			v := ws.bidVal[i]
			if v <= st.Prices[j] {
				ws.next = append(ws.next, i) // stale bid; retry next round
				continue
			}
			st.Prices[j] = v
			if owner := st.ColMate[j]; owner != exact.NIL {
				st.RowMate[owner] = exact.NIL
				ws.next = append(ws.next, owner)
			}
			st.ColMate[j] = i
			st.RowMate[int(i)] = j
		}
		ws.queue, ws.next = ws.next, ws.queue
		ws.rounds++
		round++
	}
}

// computeBid fills ws.bidCol/bidVal for row i against the current prices:
// the target is the best-surplus column (ties broken by lowest index, or
// by seeded reservoir sampling when seeded), and the bid raises its price
// to forfeit all but the second-best surplus, plus epsAbs.
func computeBid(a *sparse.CSR, st *State, epsAbs float64, i int, seeded bool, rng *xrand.SplitMix64, ws *Workspace) {
	best, second := math.Inf(-1), math.Inf(-1)
	bestCol := int32(-1)
	ties := 1
	for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
		j := a.Idx[p]
		s := weightAt(a, p) - st.Prices[j]
		switch {
		case s > best:
			second = best
			best, bestCol = s, j
			ties = 1
		case s == best:
			second = best
			if seeded {
				// Reservoir selection among tied best columns: each tie
				// survives with probability 1/ties, uniformly.
				ties++
				if rng.Intn(ties) == 0 {
					bestCol = j
				}
			}
		case s > second:
			second = s
		}
	}
	if !(best > 0) {
		ws.bidCol[i] = -1
		return
	}
	// Forfeit margin: any s ≥ second keeps ε-CS; flooring at zero bounds
	// single-candidate price jumps by the surplus itself.
	s := second
	if !(s > 0) {
		s = 0
	}
	ws.bidCol[i] = bestCol
	ws.bidVal[i] = st.Prices[bestCol] + (best - s) + epsAbs
}

// dualBound evaluates the feasible dual (p, r) with
// r_i = max(0, max_j(w_ij − p_j)): an upper bound on the optimal matched
// weight by LP weak duality, valid for any price vector.
func dualBound(a *sparse.CSR, st *State) float64 {
	var sum float64
	for _, p := range st.Prices {
		sum += p
	}
	for i := 0; i < a.RowsN; i++ {
		var r float64
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			if s := weightAt(a, p) - st.Prices[a.Idx[p]]; s > r {
				r = s
			}
		}
		sum += r
	}
	return sum
}

// MatchedWeight sums the weights of the matched edges of mt on a.
func MatchedWeight(a *sparse.CSR, mt *exact.Matching) float64 {
	var w float64
	for i := 0; i < a.RowsN && i < len(mt.RowMate); i++ {
		if j := mt.RowMate[i]; j != exact.NIL {
			w += edgeWeight(a, i, j)
		}
	}
	return w
}
