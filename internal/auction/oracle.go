package auction

import (
	"fmt"
	"math"

	"repro/internal/exact"
	"repro/internal/sparse"
)

// oracleCap bounds the dense oracle's padded dimension: the solver is
// O(N³) time and O(N²) memory, meant for test and small-instance quality
// certification only.
const oracleCap = 2048

// Oracle computes the exact maximum-weight matching of a by the Hungarian
// algorithm with potentials on the zero-padded square dense matrix.
// Missing edges get weight zero; since real weights are strictly
// positive, zero-weight assignments in the square solution are simply
// dropped, which makes the result the optimal (not necessarily perfect)
// matching. Intended for tests and small-instance certification; returns
// an error above oracleCap.
func Oracle(a *sparse.CSR) (float64, *exact.Matching, error) {
	n, m := a.RowsN, a.ColsN
	nn := n
	if m > nn {
		nn = m
	}
	if nn > oracleCap {
		return 0, nil, fmt.Errorf("auction: oracle dimension %d exceeds cap %d", nn, oracleCap)
	}
	if _, err := Validate(a); err != nil {
		return 0, nil, err
	}
	// Dense cost matrix, 1-indexed, minimizing −w (i.e. maximizing w).
	cost := make([]float64, (nn+1)*(nn+1))
	at := func(i, j int) int { return i*(nn+1) + j }
	for i := 0; i < n; i++ {
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			cost[at(i+1, int(a.Idx[p])+1)] = -weightAt(a, p)
		}
	}
	u := make([]float64, nn+1)
	v := make([]float64, nn+1)
	p := make([]int, nn+1)   // p[j] = row assigned to column j
	way := make([]int, nn+1) // alternating-path back-pointers
	minv := make([]float64, nn+1)
	used := make([]bool, nn+1)
	for i := 1; i <= nn; i++ {
		p[0] = i
		j0 := 0
		for j := range minv {
			minv[j] = math.Inf(1)
			used[j] = false
		}
		for {
			used[j0] = true
			i0, delta, j1 := p[j0], math.Inf(1), -1
			for j := 1; j <= nn; j++ {
				if used[j] {
					continue
				}
				cur := cost[at(i0, j)] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= nn; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	mt := exact.NewMatching(n, m)
	var weight float64
	for j := 1; j <= m; j++ {
		i := p[j]
		if i < 1 || i > n {
			continue
		}
		w := -cost[at(i, j)]
		if w <= 0 {
			continue // padded cell: row i is really unmatched
		}
		mt.RowMate[i-1] = int32(j - 1)
		mt.ColMate[j-1] = int32(i - 1)
		mt.Size++
		weight += w
	}
	return weight, mt, nil
}
