// Package buf holds the one grow-on-demand slice helper the session
// workspaces share, so the growth policy lives in a single place.
package buf

// Grow returns s resized to length n, reusing its backing array when the
// capacity suffices and allocating a fresh one otherwise. Contents are
// unspecified; callers that need initialized memory overwrite it.
func Grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
