package servehttp

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	bipartite "repro"
)

// postJSONHeaders is postJSON with extra request headers (X-Client).
func postJSONHeaders(t *testing.T, url string, body any, headers map[string]string) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, decoded
}

// Fault injection at the HTTP layer: a synthetic CPU reader reports
// whatever load the test dials in (busyMilli thousandths of total
// capacity), the watchdog samples it on a fast real interval, and the
// test drives the service through overload and recovery — asserting the
// wire contract (503/429 + Retry-After, the "degraded" response field)
// rather than the library types the root suite covers.

// waitFor polls cond and fails the test after a generous timeout.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// newProtectedServer builds the production mux over a Server whose
// watchdog believes the synthetic CPU signal: cumulative CPU time is
// modeled as busyMilli/1000 of capacity over the whole process lifetime,
// so raising busyMilli spikes the sampled fraction within one interval
// and zeroing it reads as calm.
func newProtectedServer(t *testing.T, busyMilli *atomic.Int64, cfg bipartite.ServerConfig) (*httptest.Server, *bipartite.Server) {
	t.Helper()
	start := time.Now()
	cores := runtime.NumCPU()
	cfg.Watchdog.ReadCPU = func() (time.Duration, error) {
		elapsed := time.Since(start)
		return time.Duration(float64(elapsed) * float64(cores) * float64(busyMilli.Load()) / 1000), nil
	}
	srv := bipartite.NewServerConfig(&bipartite.Options{ScalingIterations: 2, Workers: 1}, cfg)
	h := NewHandler(srv, Config{MaxGraphs: 8, MaxBody: 1 << 20})
	ts := httptest.NewServer(NewMux(h))
	return ts, srv
}

// TestProtectHTTPShedAndRecover is the service-level acceptance gate:
// under injected overload matchserve sheds with 503 + Retry-After while
// high-priority requests are served degraded (with the provenance field
// on the wire), and once the load clears it serves everything at full
// quality again — without leaking goroutines.
func TestProtectHTTPShedAndRecover(t *testing.T) {
	baseline := runtime.NumGoroutine()
	var busy atomic.Int64
	ts, srv := newProtectedServer(t, &busy, bipartite.ServerConfig{
		MaxBatch: 16,
		Watchdog: bipartite.WatchdogConfig{
			CPULimit: 0.5,
			Interval: 2 * time.Millisecond,
			Settle:   2,
		},
	})
	id := registerRing(t, ts, 64)

	// Nominal: served, no degradation marker on the wire.
	resp, body := postJSON(t, ts.URL+"/match", map[string]any{
		"graph": id, "algorithm": "twosided", "refine": "exact", "seed": 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nominal /match: status %d body %v", resp.StatusCode, body)
	}
	if _, present := body["degraded"]; present {
		t.Fatalf("nominal response carries degraded=%v", body["degraded"])
	}

	// Inject overload: 1.8× capacity against a 0.5 limit. The watchdog
	// samples it within a few 2ms intervals.
	busy.Store(1800)
	waitFor(t, "watchdog to reach critical", func() bool {
		return srv.Health().Level == bipartite.ShedCritical
	})

	// Normal priority: shed with 503 and a Retry-After hint.
	resp, body = postJSON(t, ts.URL+"/match", map[string]any{
		"graph": id, "algorithm": "twosided", "seed": 2,
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed /match: status %d body %v, want 503", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("shed 503 Retry-After %q, want a positive hint", ra)
	}
	if body["error"] == "" {
		t.Fatal("shed 503 carries no error body")
	}

	// High priority: served, but degraded — and the wire says how.
	resp, body = postJSON(t, ts.URL+"/match", map[string]any{
		"graph": id, "algorithm": "twosided", "refine": "exact", "seed": 3, "priority": "high",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("high-priority /match under overload: status %d body %v", resp.StatusCode, body)
	}
	if body["degraded"] != "refine:exact->none" {
		t.Fatalf("degraded field %v, want refine:exact->none", body["degraded"])
	}
	if size := int(body["size"].(float64)); size < 52 {
		t.Fatalf("degraded matching size %d, below the heuristic quality floor", size)
	}

	// Recovery: calm readings decay the ladder back to nominal.
	busy.Store(0)
	waitFor(t, "watchdog to recover", func() bool {
		return srv.Health().Level == bipartite.ShedNominal
	})
	resp, body = postJSON(t, ts.URL+"/match", map[string]any{
		"graph": id, "algorithm": "twosided", "refine": "exact", "seed": 4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery /match: status %d body %v", resp.StatusCode, body)
	}
	if _, present := body["degraded"]; present {
		t.Fatalf("post-recovery response still degraded: %v", body["degraded"])
	}

	// The observability surfaces report the incident.
	resp, body = getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	wd, ok := body["watchdog"].(map[string]any)
	if !ok {
		t.Fatalf("/metrics has no watchdog section: %v", body)
	}
	if wd["level"] != "nominal" {
		t.Fatalf("watchdog level %v, want nominal after recovery", wd["level"])
	}
	if int(body["shed"].(float64)) < 1 || int(body["degraded"].(float64)) < 1 {
		t.Fatalf("metrics shed=%v degraded=%v, want both >= 1", body["shed"], body["degraded"])
	}
	promResp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	promBytes, err := io.ReadAll(promResp.Body)
	promResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	prom := string(promBytes)
	for _, series := range []string{
		"matchserve_shed_total", "matchserve_degraded_total",
		"matchserve_would_miss_total", "matchserve_rate_limited_total",
		"matchserve_watchdog_level", "matchserve_watchdog_utilization",
	} {
		if !strings.Contains(prom, series) {
			t.Errorf("prom exposition missing %s", series)
		}
	}

	ts.Close()
	srv.Close()
	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline
	})
}

// TestProtectHTTPRateLimit429: the per-client bucket answers the greedy
// client 429 + Retry-After, keyed by the X-Client header; other clients
// pass.
func TestProtectHTTPRateLimit429(t *testing.T) {
	var busy atomic.Int64
	ts, srv := newProtectedServer(t, &busy, bipartite.ServerConfig{
		MaxBatch:      16,
		RatePerClient: 1,
		RateBurst:     1,
	})
	defer srv.Close()
	defer ts.Close()
	id := registerRing(t, ts, 32)

	post := func(client string) (*http.Response, map[string]any) {
		t.Helper()
		req := map[string]any{"graph": id, "algorithm": "karpsipser", "seed": 1}
		resp, body := postJSONHeaders(t, ts.URL+"/match", req, map[string]string{"X-Client": client})
		return resp, body
	}
	if resp, body := post("alice"); resp.StatusCode != http.StatusOK {
		t.Fatalf("first alice request: status %d body %v", resp.StatusCode, body)
	}
	resp, body := post("alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second alice request: status %d body %v, want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 Retry-After %q, want a positive hint", ra)
	}
	if resp, body := post("bob"); resp.StatusCode != http.StatusOK {
		t.Fatalf("bob caught in alice's bucket: status %d body %v", resp.StatusCode, body)
	}
}

// TestProtectHTTPBadPriority: an unknown priority is a 400, before any
// kernel runs.
func TestProtectHTTPBadPriority(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxGraphs: 4, MaxBody: 1 << 20})
	id := registerRing(t, ts, 16)
	resp, body := postJSON(t, ts.URL+"/match", map[string]any{
		"graph": id, "algorithm": "twosided", "priority": "urgent",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad priority: status %d body %v, want 400", resp.StatusCode, body)
	}
}
