package servehttp

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// End-to-end coverage of the weighted wire surface: weighted graph
// registration, "algorithm":"auction" with "epsilon", the
// matched_weight/epsilon/rounds provenance, and weighted PATCH batches
// with maintained_weight.

// registerWeighted registers a small weighted diagonal-plus-extras graph
// and returns its id.
func registerWeighted(t *testing.T, url string) string {
	t.Helper()
	resp, body := postJSON(t, url+"/graph", map[string]any{
		"rows": 4, "cols": 4,
		"edges":   [][2]int{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {0, 1}, {1, 0}},
		"weights": []float64{4, 3, 2, 1, 0.5, 0.5},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("weighted registration: status %d body %v", resp.StatusCode, body)
	}
	id, _ := body["id"].(string)
	if id == "" {
		t.Fatalf("no id in %v", body)
	}
	return id
}

func TestMatchServeAuction(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxGraphs: 8, MaxBody: 1 << 20})
	id := registerWeighted(t, ts.URL)

	resp, body := postJSON(t, ts.URL+"/match", map[string]any{
		"graph": id, "algorithm": "auction", "epsilon": 0.05, "seed": 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("auction match: status %d body %v", resp.StatusCode, body)
	}
	// Optimal is the full diagonal: 4+3+2+1 = 10; ε=0.05 guarantees ≥ 9.5.
	w, _ := body["matched_weight"].(float64)
	if w < 9.5 {
		t.Fatalf("matched_weight %v < (1-eps)*10", w)
	}
	if eps, _ := body["epsilon"].(float64); eps != 0.05 {
		t.Fatalf("epsilon provenance %v, want 0.05", eps)
	}
	if r, _ := body["rounds"].(float64); r < 1 {
		t.Fatalf("rounds provenance %v, want >= 1", r)
	}
	if sz, _ := body["size"].(float64); sz != 4 {
		t.Fatalf("size %v, want 4", sz)
	}

	// Cardinality responses must not leak weighted provenance.
	resp, body = postJSON(t, ts.URL+"/match", map[string]any{
		"graph": id, "algorithm": "twosided", "refine": "exact",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("twosided on weighted graph: status %d body %v", resp.StatusCode, body)
	}
	if _, ok := body["matched_weight"]; ok {
		t.Fatalf("cardinality response carries matched_weight: %v", body)
	}

	// Inline weighted graph with an ensemble.
	resp, body = postJSON(t, ts.URL+"/match", map[string]any{
		"rows": 2, "cols": 2, "edges": [][2]int{{0, 0}, {0, 1}, {1, 0}},
		"weights": []float64{2, 1, 1}, "algorithm": "auction", "best_of": 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline weighted: status %d body %v", resp.StatusCode, body)
	}
	if w, _ := body["matched_weight"].(float64); w < 2*0.95 {
		t.Fatalf("inline matched_weight %v < 1.9", w)
	}
	if c, _ := body["candidates_run"].(float64); c != 3 {
		t.Fatalf("candidates_run %v, want 3", c)
	}
}

func TestMatchServeAuctionBadSpecs(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxGraphs: 8, MaxBody: 1 << 20})
	id := registerWeighted(t, ts.URL)
	bad := []map[string]any{
		{"graph": id, "algorithm": "auction", "epsilon": 1.5},
		{"graph": id, "algorithm": "auction", "epsilon": -0.1},
		{"graph": id, "algorithm": "auction", "refine": "exact"},
		{"graph": id, "algorithm": "twosided", "epsilon": 0.1},
		{"rows": 2, "cols": 2, "edges": [][2]int{{0, 0}}, "weights": []float64{1, 2}, "algorithm": "auction"},
		{"rows": 2, "cols": 2, "edges": [][2]int{{0, 0}}, "weights": []float64{-1}, "algorithm": "auction"},
	}
	for i, req := range bad {
		resp, body := postJSON(t, ts.URL+"/match", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad spec %d (%v): status %d body %v, want 400", i, req, resp.StatusCode, body)
		}
	}
}

func TestMatchServeWeightedPatch(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxGraphs: 8, MaxBody: 1 << 20})
	id := registerWeighted(t, ts.URL)

	// First weighted patch: replace the weight-1 diagonal edge with a
	// heavy off-diagonal one. The auction session maintains the weight.
	resp, body := patchJSON(t, ts.URL+"/graph/"+id, map[string]any{
		"insert":  [][2]int{{3, 3}},
		"weights": []float64{10},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("weighted patch: status %d body %v", resp.StatusCode, body)
	}
	w, ok := body["maintained_weight"].(float64)
	if !ok {
		t.Fatalf("no maintained_weight in %v", body)
	}
	// New optimum: 4+3+2+10 = 19 at the session's default epsilon.
	if w < 19*0.9 {
		t.Fatalf("maintained_weight %v after upgrade, want >= 17.1", w)
	}
	if ms, _ := body["maintained_size"].(float64); ms != 4 {
		t.Fatalf("maintained_size %v, want 4", ms)
	}

	// Weight/insert length mismatch is a 400 with nothing applied.
	resp, _ = patchJSON(t, ts.URL+"/graph/"+id, map[string]any{
		"insert":  [][2]int{{0, 2}, {0, 3}},
		"weights": []float64{1},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched weights: status %d, want 400", resp.StatusCode)
	}

	// A later /match sees the mutated weighted snapshot.
	resp, body = postJSON(t, ts.URL+"/match", map[string]any{
		"graph": id, "algorithm": "auction", "epsilon": 0.05,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match after patch: status %d body %v", resp.StatusCode, body)
	}
	if mw, _ := body["matched_weight"].(float64); mw < 19*0.95 {
		t.Fatalf("post-patch matched_weight %v < 18.05", mw)
	}

	// Weighted insert on an unweighted graph's exact session is a 400.
	respReg, regBody := postJSON(t, ts.URL+"/graph", map[string]any{
		"rows": 2, "cols": 2, "edges": [][2]int{{0, 0}, {1, 1}},
	})
	if respReg.StatusCode != http.StatusOK {
		t.Fatalf("pattern registration failed: %v", regBody)
	}
	pid := regBody["id"].(string)
	resp, _ = patchJSON(t, ts.URL+"/graph/"+pid, map[string]any{
		"insert": [][2]int{{0, 1}}, "weights": []float64{2},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("weighted patch on pattern graph: status %d, want 400", resp.StatusCode)
	}
}

// FuzzMatchServeWeightedDecode fuzzes the weighted wire surface: inline
// weighted graph specs with epsilon on /match, and weighted mutation
// batches on PATCH — the decoders and the auction spec/weight validation
// must answer arbitrary bodies with a clean status.
func FuzzMatchServeWeightedDecode(f *testing.F) {
	mux, _ := fuzzMux(f)
	// A weighted registered graph so PATCH exercises the auction session.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/graph",
		bytes.NewReader([]byte(`{"rows":4,"cols":4,"edges":[[0,0],[1,1],[2,2],[3,3]],"weights":[4,3,2,1]}`))))
	if rec.Code != http.StatusOK {
		f.Fatalf("weighted seed graph: status %d body %s", rec.Code, rec.Body)
	}
	var reg struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &reg); err != nil {
		f.Fatal(err)
	}
	wid := reg.ID

	f.Add([]byte(`{"graph":"`+wid+`","algorithm":"auction","epsilon":0.1,"seed":3}`), true)
	f.Add([]byte(`{"rows":2,"cols":2,"edges":[[0,0],[1,1]],"weights":[2,1],"algorithm":"auction"}`), true)
	f.Add([]byte(`{"rows":2,"cols":2,"edges":[[0,0]],"weights":[1,2],"algorithm":"auction"}`), true)
	f.Add([]byte(`{"rows":2,"cols":2,"edges":[[0,0]],"weights":[-5],"algorithm":"auction"}`), true)
	f.Add([]byte(`{"graph":"`+wid+`","algorithm":"auction","epsilon":2}`), true)
	f.Add([]byte(`{"graph":"`+wid+`","algorithm":"auction","best_of":3}`), true)
	f.Add([]byte(`{"insert":[[0,1]],"weights":[2.5]}`), false)
	f.Add([]byte(`{"insert":[[0,1],[1,0]],"weights":[1]}`), false)
	f.Add([]byte(`{"insert":[[0,1]],"weights":[null]}`), false)
	f.Add([]byte(`{"weights":"bogus"}`), false)
	f.Fuzz(func(t *testing.T, body []byte, match bool) {
		rec := httptest.NewRecorder()
		if match {
			mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/match", bytes.NewReader(body)))
		} else {
			mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPatch, "/graph/"+wid, bytes.NewReader(body)))
		}
		if !statusAllowed(rec.Code) {
			t.Fatalf("weighted request answered %d (match=%v body %q)", rec.Code, match, body)
		}
	})
}
