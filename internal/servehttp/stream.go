package servehttp

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"strconv"
)

// This file is the writer side of the serving loop: a hand-rolled
// streaming JSON encoder for match responses. A matching's row_mate array
// is the bulk of every response body — up to one int per graph row — and
// encoding/json builds the entire document in memory before the first
// byte reaches the socket, so a handful of concurrent large responses
// used to hold full response buffers alive at once. The streaming encoder
// writes through one fixed-size bufio buffer instead: per-connection
// memory is flat in the matching size, and the first bytes hit the wire
// while the tail of the array is still being formatted.
//
// The output is byte-compatible with encoding/json marshaling of the same
// matchResponse values (field order, omitempty, string escaping, the
// Encoder's trailing newline) — pinned by TestStreamMatchesEncodingJSON —
// so clients cannot tell the encoders apart.

// streamEnc appends JSON tokens to one buffered writer, latching the
// first write error (later writes become no-ops, the caller logs once).
type streamEnc struct {
	w   *bufio.Writer
	err error
}

func (e *streamEnc) raw(s string) {
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

func (e *streamEnc) int(v int64) {
	if e.err == nil {
		var buf [20]byte
		_, e.err = e.w.Write(strconv.AppendInt(buf[:0], v, 10))
	}
}

func (e *streamEnc) uint(v uint64) {
	if e.err == nil {
		var buf [20]byte
		_, e.err = e.w.Write(strconv.AppendUint(buf[:0], v, 10))
	}
}

func (e *streamEnc) bool(v bool) {
	if v {
		e.raw("true")
	} else {
		e.raw("false")
	}
}

// value falls back to encoding/json for the scalar types whose encoding
// has nontrivial rules — strings (escaping, HTML-safe by default) and
// floats (shortest-representation with exponent-range fixups). These are
// a few bytes per response; the streaming win is the row_mate array,
// which never comes through here.
func (e *streamEnc) value(v any) {
	if e.err != nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		e.err = err
		return
	}
	_, e.err = e.w.Write(b)
}

// mates streams a row_mate array without materializing it as JSON: nil
// encodes as null (the error-response shape), like encoding/json.
func (e *streamEnc) mates(v []int32) {
	if v == nil {
		e.raw("null")
		return
	}
	e.raw("[")
	for i, m := range v {
		if i > 0 {
			e.raw(",")
		}
		e.int(int64(m))
	}
	e.raw("]")
}

// matchResponse writes one response object, field-for-field the shape
// encoding/json gives the matchResponse struct.
func (e *streamEnc) matchResponse(mr *matchResponse) {
	e.raw(`{"size":`)
	e.int(int64(mr.Size))
	e.raw(`,"rows":`)
	e.int(int64(mr.Rows))
	e.raw(`,"cols":`)
	e.int(int64(mr.Cols))
	e.raw(`,"row_mate":`)
	e.mates(mr.RowMate)
	e.raw(`,"winner_seed":`)
	e.uint(mr.WinnerSeed)
	e.raw(`,"candidates_run":`)
	e.int(int64(mr.CandidatesRun))
	e.raw(`,"heuristic_size":`)
	e.int(int64(mr.HeuristicSize))
	e.raw(`,"refined":`)
	e.bool(mr.Refined)
	if mr.RefinedWith != "" {
		e.raw(`,"refined_with":`)
		e.value(mr.RefinedWith)
	}
	if mr.MatchedWeight != 0 {
		e.raw(`,"matched_weight":`)
		e.value(mr.MatchedWeight)
	}
	if mr.Epsilon != 0 {
		e.raw(`,"epsilon":`)
		e.value(mr.Epsilon)
	}
	if mr.Rounds != 0 {
		e.raw(`,"rounds":`)
		e.int(int64(mr.Rounds))
	}
	if mr.Degraded != "" {
		e.raw(`,"degraded":`)
		e.value(mr.Degraded)
	}
	if mr.Ms != 0 {
		e.raw(`,"ms":`)
		e.value(mr.Ms)
	}
	if mr.Error != "" {
		e.raw(`,"error":`)
		e.value(mr.Error)
	}
	e.raw("}")
}

// writeMatchStream streams one /match response. The trailing newline
// matches json.Encoder, which writeJSON used here before.
func writeMatchStream(w http.ResponseWriter, code int, mr *matchResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	e := &streamEnc{w: bufio.NewWriter(w)}
	e.matchResponse(mr)
	e.raw("\n")
	if e.err == nil {
		e.err = e.w.Flush()
	}
	if e.err != nil {
		log.Printf("matchserve: write: %v", e.err)
	}
}

// writeBatchStream streams a /match/batch envelope, honoring the client's
// Accept-Encoding: batch envelopes (thousands of row_mate entries of
// repetitive JSON) compress an order of magnitude, so gzip is offered
// where the payloads are large. The gzip writer slots between the bufio
// buffer and the socket, so compression composes with streaming — neither
// path ever holds the whole document.
func writeBatchStream(w http.ResponseWriter, r *http.Request, code int, out []matchResponse, msVal float64) {
	w.Header().Set("Content-Type", "application/json")
	var sink io.Writer = w
	var zw *gzip.Writer
	if acceptsGzip(r.Header.Get("Accept-Encoding")) {
		w.Header().Set("Content-Encoding", "gzip")
		zw = gzip.NewWriter(w)
		sink = zw
	}
	w.WriteHeader(code)
	e := &streamEnc{w: bufio.NewWriter(sink)}
	// "ms" leads, as it did when the envelope was a map (encoding/json
	// sorts map keys); it is already known — the batch has run by the time
	// anything is written.
	e.raw(`{"ms":`)
	e.value(msVal)
	e.raw(`,"responses":[`)
	for i := range out {
		if i > 0 {
			e.raw(",")
		}
		e.matchResponse(&out[i])
	}
	e.raw("]}\n")
	if e.err == nil {
		e.err = e.w.Flush()
	}
	if e.err != nil {
		log.Printf("matchserve: write: %v", e.err)
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			log.Printf("matchserve: gzip close: %v", err)
		}
	}
}
