package servehttp

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// patchJSON issues a PATCH with a JSON body and decodes the JSON reply.
func patchJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPatch, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, decoded
}

// snapshotOf reads the registry's current graph pointer for id.
func snapshotOf(h *Handler, id string) any {
	h.mu.Lock()
	defer h.mu.Unlock()
	if e := h.graphs[id]; e != nil {
		return e.g
	}
	return nil
}

// TestMatchServePatch is the wire-level gate of the dynamic sessions: a
// registered graph absorbs mutation batches through PATCH /graph/{id},
// the response carries the maintenance provenance (maintained_size is the
// mutated graph's structural rank), and subsequent /match requests are
// served from the mutated snapshot.
func TestMatchServePatch(t *testing.T) {
	ts, h := newTestServer(t, Config{MaxGraphs: 8, MaxBody: 1 << 20})
	id := registerRing(t, ts, 16) // perfect matching of size 16

	before := snapshotOf(h, id)

	// Isolate row 0 (both its ring edges): structural rank drops to 15,
	// one matched pair is freed, the batch triggers a scaling touch-up.
	resp, body := patchJSON(t, ts.URL+"/graph/"+id, map[string]any{
		"delete": [][2]int{{0, 0}, {0, 1}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PATCH: status %d body %v", resp.StatusCode, body)
	}
	if int(body["deleted"].(float64)) != 2 || int(body["maintained_size"].(float64)) != 15 {
		t.Fatalf("PATCH body %v, want deleted=2 maintained_size=15", body)
	}
	if int(body["freed"].(float64)) < 1 {
		t.Fatalf("PATCH freed %v, want >= 1 (a matched edge died)", body["freed"])
	}
	if body["rescaled"] != true {
		t.Fatalf("PATCH rescaled %v, want true (dirty batch on a scaling algorithm)", body["rescaled"])
	}
	if int(body["edges"].(float64)) != 30 {
		t.Fatalf("PATCH edges %v, want 30", body["edges"])
	}
	if after := snapshotOf(h, id); after == before {
		t.Fatal("dirty PATCH kept the registry snapshot — stale scaling would be served")
	}

	// /match now runs on the mutated snapshot: exact size is 15, not 16.
	resp, body = postJSON(t, ts.URL+"/match", map[string]any{
		"graph": id, "algorithm": "twosided", "refine": "exact", "seed": 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/match after PATCH: status %d body %v", resp.StatusCode, body)
	}
	if int(body["size"].(float64)) != 15 {
		t.Fatalf("/match size %v on mutated graph, want 15", body["size"])
	}

	// Re-inserting the deleted edge re-augments incrementally.
	resp, body = patchJSON(t, ts.URL+"/graph/"+id, map[string]any{
		"insert": [][2]int{{0, 0}},
	})
	if resp.StatusCode != http.StatusOK || int(body["maintained_size"].(float64)) != 16 {
		t.Fatalf("re-insert PATCH: status %d body %v, want maintained_size=16", resp.StatusCode, body)
	}
	if int(body["augments"].(float64)) < 1 {
		t.Fatalf("re-insert augments %v, want >= 1", body["augments"])
	}

	// A neutral batch (insert a present edge, delete an absent one) applies
	// nothing and keeps the snapshot pointer — warm scalings survive.
	mid := snapshotOf(h, id)
	resp, body = patchJSON(t, ts.URL+"/graph/"+id, map[string]any{
		"insert": [][2]int{{0, 0}},
		"delete": [][2]int{{0, 3}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("neutral PATCH: status %d body %v", resp.StatusCode, body)
	}
	if int(body["inserted"].(float64)) != 0 || int(body["deleted"].(float64)) != 0 || body["rescaled"] != false {
		t.Fatalf("neutral PATCH body %v, want nothing applied, no rescale", body)
	}
	if after := snapshotOf(h, id); after != mid {
		t.Fatal("neutral PATCH churned the registry snapshot")
	}

	// Full service continues: exact match back at 16.
	resp, body = postJSON(t, ts.URL+"/match", map[string]any{
		"graph": id, "algorithm": "twosided", "refine": "exact", "seed": 3,
	})
	if resp.StatusCode != http.StatusOK || int(body["size"].(float64)) != 16 {
		t.Fatalf("/match after repair: status %d size %v, want 16", resp.StatusCode, body["size"])
	}
}

// TestMatchServePatchErrors pins the failure statuses: unknown id 404,
// out-of-range endpoints 400 with the batch atomically rejected, malformed
// JSON 400.
func TestMatchServePatchErrors(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxGraphs: 8, MaxBody: 1 << 20})
	id := registerRing(t, ts, 8)

	resp, body := patchJSON(t, ts.URL+"/graph/nope", map[string]any{
		"insert": [][2]int{{0, 0}},
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d body %v, want 404", resp.StatusCode, body)
	}

	// Out-of-range endpoint: whole batch rejected, nothing applied.
	resp, body = patchJSON(t, ts.URL+"/graph/"+id, map[string]any{
		"insert": [][2]int{{0, 2}, {3, 99}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range: status %d body %v, want 400", resp.StatusCode, body)
	}
	if errMsg, _ := body["error"].(string); !strings.Contains(errMsg, "mutation") {
		t.Fatalf("out-of-range error %q, want invalid-mutation text", errMsg)
	}
	resp, body = patchJSON(t, ts.URL+"/graph/"+id, map[string]any{})
	if resp.StatusCode != http.StatusOK || int(body["edges"].(float64)) != 16 {
		t.Fatalf("after rejected batch: status %d edges %v, want the untouched 16", resp.StatusCode, body["edges"])
	}

	raw, err := http.NewRequest(http.MethodPatch, ts.URL+"/graph/"+id, strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	rresp, err := http.DefaultClient.Do(raw)
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: status %d, want 400", rresp.StatusCode)
	}
}
