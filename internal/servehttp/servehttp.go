// Package servehttp is the HTTP/JSON layer of the matching service: the
// handler, routes, wire types, graph registry and metrics behind
// cmd/matchserve. It lives in an importable package (rather than in the
// command) so the cluster integration suite and cmd/matchrouter's tests
// can boot real replicas in-process with net/http/httptest — the exact
// production routing, admission control and wire encoding, minus the
// listener. See the cmd/matchserve package documentation for the wire
// contract.
package servehttp

import (
	"compress/gzip"
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	bipartite "repro"
	"repro/internal/metrics"
)

// Config is the HTTP layer's tuning, split from cmd/matchserve's flags
// so tests and the cluster suite construct handlers directly.
type Config struct {
	MaxGraphs int           // registry size before LRU eviction; 0 = unbounded
	MaxBody   int64         // request body cap in bytes; 0 = unbounded
	Timeout   time.Duration // default per-request deadline; 0 = none
}

// graphEntry is one registered graph plus its position in the LRU list.
// The dynamic session is created lazily by the first PATCH; from then on
// g always aliases the session's current snapshot, so /match requests
// observe every applied mutation batch.
type graphEntry struct {
	id   string
	g    *bipartite.Graph
	sess *bipartite.DynSession // non-nil once the graph was first patched
	elem *list.Element         // into handler.lru; front = most recently used
}

// handler owns the matching server, the LRU graph registry and the
// latency metrics.
type Handler struct {
	srv *bipartite.Server
	cfg Config
	met *metrics.Registry

	mu        sync.Mutex
	graphs    map[string]*graphEntry
	lru       *list.List // of *graphEntry
	evictions atomic.Int64
	nextID    atomic.Int64
}

func NewHandler(srv *bipartite.Server, cfg Config) *Handler {
	return &Handler{
		srv:    srv,
		cfg:    cfg,
		met:    metrics.NewRegistry(),
		graphs: make(map[string]*graphEntry),
		lru:    list.New(),
	}
}

// Close shuts the underlying batching server down: in-flight batches
// finish, later submissions fail fast. The handler is not usable after.
func (h *Handler) Close() { h.srv.Close() }

// NewMux wires the handler's routes; extracted from the command so
// httptest can serve the exact production routing.
func NewMux(h *Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /graph", h.handleGraph)
	mux.HandleFunc("GET /graph/{id}", h.handleGraphGet)
	mux.HandleFunc("DELETE /graph/{id}", h.handleGraphDelete)
	mux.HandleFunc("PATCH /graph/{id}", h.handleGraphPatch)
	mux.HandleFunc("POST /match", h.handleMatch)
	mux.HandleFunc("POST /match/batch", h.handleBatch)
	mux.HandleFunc("GET /healthz", h.handleHealthz)
	mux.HandleFunc("GET /stats", h.handleStats)
	mux.HandleFunc("GET /metrics", h.handleMetrics)
	return mux
}

// handleHealthz is the replica's health probe. Beyond liveness it reports
// the watchdog's shedding level and the registry size, which is what the
// cluster router's membership probes feed on: a replica answering
// "critical" stays a member (its graphs are still owned) but the router
// backs off fan-out work it would only shed.
func (h *Handler) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h.mu.Lock()
	graphs := len(h.graphs)
	h.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"level":  h.srv.Health().Level.String(),
		"graphs": graphs,
	})
}

// decodeBody JSON-decodes a size-capped request body into v, translating
// the body-cap overflow into its dedicated status.
func (h *Handler) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := r.Body
	if h.cfg.MaxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, h.cfg.MaxBody)
	}
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

// graphSpec is an inline graph definition. Weights, when present, must
// carry one strictly positive finite value per edge; the graph is then
// weighted and AlgAuction maximizes the matched weight on it.
type graphSpec struct {
	Rows    int       `json:"rows"`
	Cols    int       `json:"cols"`
	Edges   [][2]int  `json:"edges"`
	Weights []float64 `json:"weights,omitempty"`
}

// maxWireDim caps a wire graph's rows/cols. Graph construction allocates
// O(rows) regardless of the edge count, so without a cap a tiny body like
// {"rows":1000000000,"cols":1,"edges":[]} forces a multi-gigabyte
// allocation past every body-size limit (found by the PATCH/match
// decoder fuzz targets).
const maxWireDim = 4 << 20

func (s *graphSpec) build() (*bipartite.Graph, error) {
	if s.Rows <= 0 || s.Cols <= 0 {
		return nil, fmt.Errorf("rows and cols must be positive, got %dx%d", s.Rows, s.Cols)
	}
	if s.Rows > maxWireDim || s.Cols > maxWireDim {
		return nil, fmt.Errorf("rows and cols are capped at %d, got %dx%d", maxWireDim, s.Rows, s.Cols)
	}
	if len(s.Weights) > 0 {
		return bipartite.FromWeightedEdges(s.Rows, s.Cols, s.Edges, s.Weights)
	}
	return bipartite.FromEdges(s.Rows, s.Cols, s.Edges)
}

// matchRequest is one /match body: a registered graph id or an inline
// graph, plus the declarative spec fields (algorithm, seed, refinement,
// ensemble, target) and an optional per-request deadline. "op" is the
// deprecated pre-Spec alias of "algorithm".
type matchRequest struct {
	graphSpec
	GraphID    string  `json:"graph"`
	Op         string  `json:"op"` // deprecated alias of Algorithm
	Algorithm  string  `json:"algorithm"`
	Seed       uint64  `json:"seed"`
	Refine     string  `json:"refine"`
	BestOf     int     `json:"best_of"`
	Target     float64 `json:"target"`
	Sequential bool    `json:"sequential"`
	// SeedOffset/SeedCount restrict a best_of ensemble to a sub-range of
	// its seed interval — the cluster router's fan-out primitive (see
	// Spec.SeedOffset). Validated with the rest of the Spec.
	SeedOffset int `json:"seed_offset"`
	SeedCount  int `json:"seed_count"`
	// Epsilon is AlgAuction's relative slack: matched weight within
	// (1−ε)·optimal. 0 means the library default; only valid with
	// "algorithm":"auction".
	Epsilon   float64 `json:"epsilon"`
	TimeoutMs int64   `json:"timeout_ms"`
	// Priority ranks the request for admission under load: "low" is shed
	// first when the watchdog reports the process hot, "high" last; ""
	// means "normal".
	Priority string `json:"priority"`
}

// spec translates the wire fields into a validated bipartite.Spec.
func (mr *matchRequest) spec() (bipartite.Spec, error) {
	algName := mr.Algorithm
	if algName == "" {
		algName = mr.Op
	} else if mr.Op != "" && mr.Op != mr.Algorithm {
		return bipartite.Spec{}, fmt.Errorf("op %q and algorithm %q disagree (op is the deprecated alias; set only algorithm)", mr.Op, mr.Algorithm)
	}
	alg, err := bipartite.ParseAlgorithm(algName)
	if err != nil {
		return bipartite.Spec{}, err
	}
	ref, err := bipartite.ParseRefinement(mr.Refine)
	if err != nil {
		return bipartite.Spec{}, err
	}
	spec := bipartite.Spec{
		Algorithm:  alg,
		Seed:       mr.Seed,
		Ensemble:   mr.BestOf,
		Refine:     ref,
		Target:     mr.Target,
		Sequential: mr.Sequential,
		SeedOffset: mr.SeedOffset,
		SeedCount:  mr.SeedCount,
		Epsilon:    mr.Epsilon,
	}
	if err := spec.Validate(); err != nil {
		return bipartite.Spec{}, err
	}
	return spec, nil
}

// matchResponse is the writer-side shape of one served matching. The
// provenance fields surface how the engine arrived at the matching:
// which ensemble seed won, how many candidates actually ran (a target or
// the ensemble-aware refinement may stop the sweep early), the winner's
// pre-refinement size, and whether a refinement stage ran at all.
type matchResponse struct {
	Size    int     `json:"size"`
	Rows    int     `json:"rows"`
	Cols    int     `json:"cols"`
	RowMate []int32 `json:"row_mate"`
	// Provenance: always present on successful responses (zero-valued on
	// errors, alongside the zero size/rows/cols).
	WinnerSeed    uint64 `json:"winner_seed"`
	CandidatesRun int    `json:"candidates_run"`
	HeuristicSize int    `json:"heuristic_size"`
	Refined       bool   `json:"refined"`
	// RefinedWith names the refinement engine that actually ran ("exact",
	// "pushrelabel" or "graft" — "refine":"exact" auto-selects the parallel
	// graft engine on large instances). Absent when no refinement ran.
	RefinedWith string `json:"refined_with,omitempty"`
	// Weighted provenance, present only on "algorithm":"auction" responses:
	// the matched weight the auction maximized, the resolved epsilon of its
	// (1−ε)·optimal guarantee, and the bidding rounds it ran.
	MatchedWeight float64 `json:"matched_weight,omitempty"`
	Epsilon       float64 `json:"epsilon,omitempty"`
	Rounds        int     `json:"rounds,omitempty"`
	// Degraded, when present, records the self-protection downgrades the
	// server applied before running the Spec (e.g.
	// "refine:exact->none,best_of:8->2"): the matching still carries the
	// paper's heuristic quality bound, but not whatever the full Spec
	// guaranteed. Absent when the Spec ran exactly as requested.
	Degraded string `json:"degraded,omitempty"`
	// Ms is the wall-clock of a single /match; batch responses omit it
	// and report one batch-wide "ms" in the envelope instead (the
	// requests ran concurrently, so no per-request wall-clock exists).
	Ms    float64 `json:"ms,omitempty"`
	Error string  `json:"error,omitempty"`
}

// lookup returns the registered graph and marks it most recently used.
func (h *Handler) lookup(id string) *bipartite.Graph {
	h.mu.Lock()
	defer h.mu.Unlock()
	e := h.graphs[id]
	if e == nil {
		return nil
	}
	h.lru.MoveToFront(e.elem)
	return e.g
}

// resolve turns a wire request into a library request carrying ctx (plus
// the request's own deadline, if any), the parsed priority and the
// submitting client's identity. It returns the context's cancel (never
// nil) which the caller must invoke once the response is written.
func (h *Handler) resolve(ctx context.Context, mr *matchRequest, client string) (bipartite.Request, context.CancelFunc, error) {
	nop := context.CancelFunc(func() {})
	spec, err := mr.spec()
	if err != nil {
		return bipartite.Request{}, nop, err
	}
	prio, err := bipartite.ParsePriority(mr.Priority)
	if err != nil {
		return bipartite.Request{}, nop, err
	}
	var g *bipartite.Graph
	if mr.GraphID != "" {
		if g = h.lookup(mr.GraphID); g == nil {
			return bipartite.Request{}, nop, fmt.Errorf("unknown graph %q", mr.GraphID)
		}
	} else {
		if g, err = mr.build(); err != nil {
			return bipartite.Request{}, nop, err
		}
	}
	cancel := nop
	timeout := h.cfg.Timeout
	if mr.TimeoutMs > 0 {
		timeout = time.Duration(mr.TimeoutMs) * time.Millisecond
	}
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	return bipartite.Request{Graph: g, Spec: spec, Ctx: ctx, Priority: prio, Client: client}, cancel, nil
}

// clientOf identifies the submitter for per-client rate limiting: the
// X-Client header when the caller names itself, the connection's remote
// host otherwise — so an anonymous flood from one address still lands in
// one bucket instead of bypassing the limiter.
func clientOf(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// maxWireID caps a client-chosen graph id's length: ids are ring keys and
// registry map keys, so an unbounded one is an amplification vector.
const maxWireID = 128

func (h *Handler) handleGraph(w http.ResponseWriter, r *http.Request) {
	var body struct {
		graphSpec
		// ID, when set, registers (or replaces — the upsert is what lets a
		// cluster router migrate and replicate graphs under stable ids) the
		// graph under the client's name instead of a server-generated one.
		ID string `json:"id"`
	}
	if !h.decodeBody(w, r, &body) {
		return
	}
	g, err := body.build()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id := body.ID
	if id == "" {
		id = "g" + strconv.FormatInt(h.nextID.Add(1), 10)
	} else if len(id) > maxWireID {
		writeError(w, http.StatusBadRequest, fmt.Errorf("graph id exceeds %d bytes", maxWireID))
		return
	}
	h.mu.Lock()
	if old, ok := h.graphs[id]; ok {
		// Upsert: the replacement drops the old snapshot, its dynamic
		// session and its cached scaling — exactly like an eviction, minus
		// the counter.
		h.lru.Remove(old.elem)
		delete(h.graphs, id)
		h.srv.DropGraph(old.g)
	}
	// LRU eviction instead of rejection: a full registry stays writable,
	// and cold graphs pay the cost (their next use re-registers). Each
	// eviction also drops the engine's cached scaling for the graph, so
	// the registry and the scale cache share one lifetime.
	for h.cfg.MaxGraphs > 0 && len(h.graphs) >= h.cfg.MaxGraphs {
		victim := h.lru.Back().Value.(*graphEntry)
		h.lru.Remove(victim.elem)
		delete(h.graphs, victim.id)
		h.evictions.Add(1)
		h.srv.DropGraph(victim.g)
	}
	e := &graphEntry{id: id, g: g}
	e.elem = h.lru.PushFront(e)
	h.graphs[id] = e
	h.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"id": id, "rows": g.Rows(), "cols": g.Cols(), "edges": g.Edges(),
	})
}

// handleGraphGet exports a registered graph in the POST /graph wire shape
// (edge list plus weights when the graph is weighted), so a router can
// migrate a graph to its new ring owner after a rebalance — or replicate
// it for ensemble fan-out — without keeping its own copy of every
// registered graph.
func (h *Handler) handleGraphGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	h.mu.Lock()
	e, ok := h.graphs[id]
	var g *bipartite.Graph
	if ok {
		h.lru.MoveToFront(e.elem)
		g = e.g
	}
	h.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown graph %q", id))
		return
	}
	rows, cols, ptr, idx := g.CSR()
	edges := make([][2]int, 0, len(idx))
	for i := 0; i < rows; i++ {
		for p := ptr[i]; p < ptr[i+1]; p++ {
			edges = append(edges, [2]int{i, int(idx[p])})
		}
	}
	reply := map[string]any{"id": id, "rows": rows, "cols": cols, "edges": edges}
	if weights := g.Weights(); weights != nil {
		reply["weights"] = weights
	}
	writeJSON(w, http.StatusOK, reply)
}

func (h *Handler) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	h.mu.Lock()
	e, ok := h.graphs[id]
	if ok {
		h.lru.Remove(e.elem)
		delete(h.graphs, id)
	}
	h.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown graph %q", id))
		return
	}
	h.srv.DropGraph(e.g) // evict the cached scaling along with the graph
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// patchRequest is one PATCH /graph/{id} body: a batch of edge mutations.
// Deletes apply before inserts; the batch is atomic (an out-of-range
// endpoint rejects the whole batch with nothing applied). Weights, when
// present, carry one weight per inserted edge and require the target
// graph to be weighted (its maintained matching is then the auction's);
// inserting into a weighted graph without weights defaults each new edge
// to weight 1.
type patchRequest struct {
	Insert  [][2]int  `json:"insert"`
	Delete  [][2]int  `json:"delete"`
	Weights []float64 `json:"weights,omitempty"`
}

func (h *Handler) handleGraphPatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var pr patchRequest
	if !h.decodeBody(w, r, &pr) {
		return
	}
	h.mu.Lock()
	e, ok := h.graphs[id]
	if !ok {
		h.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown graph %q", id))
		return
	}
	h.lru.MoveToFront(e.elem)
	if e.sess == nil {
		// First mutation: open a dynamic session on the registered graph —
		// an exact cardinality session for pattern graphs (the maintained
		// matching tracks the structural rank), an auction session for
		// weighted ones (the maintained matching tracks the matched weight
		// within the creation-time (1−ε) slack). From here on the entry
		// serves the session's snapshots.
		spec := bipartite.Spec{Refine: bipartite.RefineExact}
		if e.g.Weighted() {
			spec = bipartite.Spec{Algorithm: bipartite.AlgAuction}
		}
		sess, err := e.g.NewDynSession(spec, nil)
		if err != nil {
			h.mu.Unlock()
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		e.sess = sess
	}
	var res *bipartite.DynResult
	var err error
	if len(pr.Weights) > 0 {
		if len(pr.Weights) != len(pr.Insert) {
			h.mu.Unlock()
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("%d weights for %d inserted edges", len(pr.Weights), len(pr.Insert)))
			return
		}
		ins := make([]bipartite.WeightedEdge, len(pr.Insert))
		for k, ed := range pr.Insert {
			ins[k] = bipartite.WeightedEdge{Row: ed[0], Col: ed[1], Weight: pr.Weights[k]}
		}
		res, err = e.sess.ApplyWeighted(ins, pr.Delete)
	} else {
		res, err = e.sess.Apply(pr.Insert, pr.Delete)
	}
	if err != nil {
		h.mu.Unlock()
		code := http.StatusBadRequest
		if !errors.Is(err, bipartite.ErrInvalidMutation) {
			code = http.StatusInternalServerError
		}
		writeError(w, code, err)
		return
	}
	old := e.g
	cur := e.sess.Snapshot()
	auction := e.sess.Auction()
	swapped := cur != old
	if swapped {
		e.g = cur
	}
	h.mu.Unlock()
	if swapped {
		// The registry now serves the mutated snapshot; the engine's cached
		// scaling of the stale one dies with it (a neutral batch keeps the
		// snapshot pointer, so warm scalings survive no-op patches).
		h.srv.DropGraph(old)
	}
	reply := map[string]any{
		"id": id, "rows": cur.Rows(), "cols": cur.Cols(), "edges": cur.Edges(),
		"inserted": res.Inserted, "deleted": res.Deleted, "freed": res.Freed,
		"augments": res.Augments, "rescaled": res.Rescaled,
		"maintained_size": res.MaintainedSize,
	}
	if auction {
		reply["maintained_weight"] = res.MaintainedWeight
	}
	writeJSON(w, http.StatusOK, reply)
}

func (h *Handler) handleMatch(w http.ResponseWriter, r *http.Request) {
	var mr matchRequest
	if !h.decodeBody(w, r, &mr) {
		return
	}
	req, cancel, err := h.resolve(r.Context(), &mr, clientOf(r))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	start := time.Now()
	resp := h.srv.Match(req)
	elapsed := time.Since(start)
	if resp.Err != nil {
		// Failures don't feed the per-op histograms: microsecond 503
		// rejections under overload would drag p50/p99 toward zero
		// exactly when an operator reads /metrics to diagnose the
		// incident. They get their own error series instead.
		h.met.Histogram("errors").Observe(elapsed)
		writeErrorRetry(w, statusOf(resp.Err), resp.Err, retryAfterOf(resp.Err))
		return
	}
	h.met.Histogram(req.Spec.Algorithm.String()).Observe(elapsed)
	wire := toWire(resp, elapsed)
	writeMatchStream(w, http.StatusOK, &wire)
}

// gzipBody reads decompressed bytes while Close releases both the gzip
// stream and the underlying request body.
type gzipBody struct {
	zr   *gzip.Reader
	body io.ReadCloser
}

func (b gzipBody) Read(p []byte) (int, error) { return b.zr.Read(p) }
func (b gzipBody) Close() error {
	err := b.zr.Close()
	if berr := b.body.Close(); err == nil {
		err = berr
	}
	return err
}

// gzipContentEncoding reports whether the request body is gzip-encoded
// ("gzip" or its historic alias "x-gzip"; substring matching would also
// claim encodings that merely mention gzip).
func gzipContentEncoding(r *http.Request) bool {
	switch strings.ToLower(strings.TrimSpace(r.Header.Get("Content-Encoding"))) {
	case "gzip", "x-gzip":
		return true
	}
	return false
}

// acceptsGzip parses the Accept-Encoding header: gzip is acceptable only
// if listed (or wildcarded) with a non-zero q-value — "gzip;q=0" is an
// RFC 9110 refusal, not an opt-in, so substring matching would hand those
// clients a body they declared they cannot decode.
func acceptsGzip(header string) bool {
	for _, part := range strings.Split(header, ",") {
		fields := strings.Split(part, ";")
		coding := strings.ToLower(strings.TrimSpace(fields[0]))
		if coding != "gzip" && coding != "x-gzip" && coding != "*" {
			continue
		}
		q := 1.0
		for _, p := range fields[1:] {
			p = strings.TrimSpace(p)
			if v, ok := strings.CutPrefix(p, "q="); ok {
				if parsed, err := strconv.ParseFloat(v, 64); err == nil {
					q = parsed
				}
			}
		}
		if q > 0 {
			return true
		}
	}
	return false
}

func (h *Handler) handleBatch(w http.ResponseWriter, r *http.Request) {
	// Optional gzip request envelope. The gzip layer sits *under* the
	// decodeBody size cap, so -maxbody bounds the decompressed bytes — a
	// tiny compressed bomb cannot smuggle an oversized batch past the cap.
	if gzipContentEncoding(r) {
		zr, err := gzip.NewReader(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("gzip request body: %w", err))
			return
		}
		r.Body = gzipBody{zr: zr, body: r.Body}
	}
	var body struct {
		Requests []matchRequest `json:"requests"`
	}
	if !h.decodeBody(w, r, &body) {
		return
	}
	// Per-request resolution errors are reported in-band so one bad entry
	// does not fail the batch — and only the entries that resolved are
	// submitted, so malformed ones never occupy bounded admission-queue
	// slots or engine dispatch.
	out := make([]matchResponse, len(body.Requests))
	reqs := make([]bipartite.Request, 0, len(body.Requests))
	slots := make([]int, 0, len(body.Requests))
	client := clientOf(r)
	for i := range body.Requests {
		req, cancel, err := h.resolve(r.Context(), &body.Requests[i], client)
		defer cancel()
		if err != nil {
			out[i] = toWire(bipartite.Response{Err: err}, 0)
			continue
		}
		reqs = append(reqs, req)
		slots = append(slots, i)
	}
	start := time.Now()
	resps := h.srv.MatchBatch(reqs)
	elapsed := time.Since(start)
	h.met.Histogram("batch").Observe(elapsed)
	for k, resp := range resps {
		out[slots[k]] = toWire(resp, 0)
	}
	writeBatchStream(w, r, http.StatusOK, out, float64(elapsed.Microseconds())/1000)
}

// statsMap assembles the counter set shared by /stats and /metrics. The
// self-protection counters ride along: shed / would_miss / rate_limited
// count typed admission rejections, degraded counts requests answered
// with a downgraded Spec.
func (h *Handler) statsMap() map[string]any {
	st := h.srv.Stats()
	h.mu.Lock()
	graphs := len(h.graphs)
	h.mu.Unlock()
	return map[string]any{
		"requests": st.Requests, "batches": st.Batches, "rejected": st.Rejected,
		"shed": st.Shed, "would_miss": st.WouldMiss, "rate_limited": st.RateLimited,
		"degraded": st.Degraded,
		"graphs":   graphs, "evictions": h.evictions.Load(),
	}
}

// watchdogMap is the /metrics JSON view of the watchdog's state: the
// shedding level plus the raw CPU/RSS samples and the utilization score
// the level thresholds apply to. An unprotected server reports nominal
// with zero samples.
func (h *Handler) watchdogMap() map[string]any {
	hs := h.srv.Health()
	return map[string]any{
		"level":       hs.Level.String(),
		"cpu":         hs.CPU,
		"rss_bytes":   hs.RSSBytes,
		"utilization": hs.Utilization,
	}
}

func (h *Handler) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, h.statsMap())
}

// opMetrics is the wire shape of one op's latency summary.
type opMetrics struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsProm(r) {
		h.writePromMetrics(w)
		return
	}
	ops := make(map[string]opMetrics)
	for name, s := range h.met.Snapshots() {
		ops[name] = opMetrics{
			Count:  s.Count,
			MeanMs: ms(s.Mean),
			P50Ms:  ms(s.P50),
			P90Ms:  ms(s.P90),
			P99Ms:  ms(s.P99),
			MaxMs:  ms(s.Max),
		}
	}
	body := h.statsMap()
	body["ops"] = ops
	body["watchdog"] = h.watchdogMap()
	writeJSON(w, http.StatusOK, body)
}

// wantsProm content-negotiates the /metrics format: an explicit
// ?format=prom wins, otherwise a text/plain or OpenMetrics Accept header
// (what Prometheus scrapers send) selects the text exposition format and
// everything else keeps the JSON body.
func wantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

// writePromMetrics renders the counters and per-op latency histograms in
// the Prometheus text exposition format (version 0.0.4), reusing the same
// internal/metrics snapshots the JSON body reports: cumulative buckets in
// seconds with the log2 upper bounds, plus _sum and _count per series.
func (h *Handler) writePromMetrics(w http.ResponseWriter) {
	st := h.srv.Stats()
	h.mu.Lock()
	graphs := len(h.graphs)
	h.mu.Unlock()

	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("matchserve_requests_total", "Requests served by the batch engine.", st.Requests)
	counter("matchserve_batches_total", "Pool-wide regions the requests were served in.", st.Batches)
	counter("matchserve_rejected_total", "Submissions refused with 503 at admission.", st.Rejected)
	counter("matchserve_shed_total", "Submissions refused by watchdog priority shedding.", st.Shed)
	counter("matchserve_would_miss_total", "Submissions refused because their deadline could not be met.", st.WouldMiss)
	counter("matchserve_rate_limited_total", "Submissions refused by the per-client rate limit.", st.RateLimited)
	counter("matchserve_degraded_total", "Requests served with a downgraded Spec.", st.Degraded)
	counter("matchserve_graph_evictions_total", "Graphs evicted from the LRU registry.", h.evictions.Load())
	fmt.Fprintf(&b, "# HELP matchserve_graphs Registered graphs.\n# TYPE matchserve_graphs gauge\nmatchserve_graphs %d\n", graphs)

	hs := h.srv.Health()
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge("matchserve_watchdog_level", "Shedding level (0 nominal, 1 degraded, 2 shedding, 3 critical).", float64(hs.Level))
	gauge("matchserve_watchdog_cpu", "Latest CPU sample as a fraction of total capacity.", hs.CPU)
	gauge("matchserve_watchdog_rss_bytes", "Latest resident set size in bytes.", float64(hs.RSSBytes))
	gauge("matchserve_watchdog_utilization", "Shedding score: max(cpu/limit, rss/limit).", hs.Utilization)

	snaps := h.met.Snapshots()
	names := make([]string, 0, len(snaps))
	for name := range snaps {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic scrape order
	const hist = "matchserve_request_duration_seconds"
	fmt.Fprintf(&b, "# HELP %s Latency of served requests by operation.\n# TYPE %s histogram\n", hist, hist)
	for _, name := range names {
		s := snaps[name]
		cum := uint64(0)
		for k := 0; k < metrics.NumBuckets; k++ {
			cum += s.Buckets[k]
			le := "+Inf"
			if k < metrics.NumBuckets-1 {
				le = strconv.FormatFloat(metrics.BucketUpperBound(k).Seconds(), 'g', -1, 64)
			}
			fmt.Fprintf(&b, "%s_bucket{op=%q,le=%q} %d\n", hist, name, le, cum)
		}
		fmt.Fprintf(&b, "%s_sum{op=%q} %g\n", hist, name, s.Sum.Seconds())
		fmt.Fprintf(&b, "%s_count{op=%q} %d\n", hist, name, s.Count)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if _, err := io.WriteString(w, b.String()); err != nil {
		log.Printf("matchserve: write: %v", err)
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// statusOf maps a serving error to its HTTP status: back-pressure and
// watchdog shedding are 503 (retry later — the *server* is the problem),
// a doomed deadline or an exceeded per-client rate is 429 (the *request*
// is the problem: resubmit later or with a looser deadline), an expired
// deadline 504, a client-abandoned request 499 (the nginx convention),
// anything else 500. retryAfterOf supplies the Retry-After the 429/503
// responses carry.
func statusOf(err error) int {
	switch {
	case errors.Is(err, bipartite.ErrOverloaded), errors.Is(err, bipartite.ErrShed):
		return http.StatusServiceUnavailable
	case errors.Is(err, bipartite.ErrWouldMiss), errors.Is(err, bipartite.ErrRateLimited):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	default:
		return http.StatusInternalServerError
	}
}

// retryAfterOf extracts the admission layer's Retry-After hint: how long
// until the shedding level can have decayed, the backlog drained, or one
// rate-limit token accrued. Zero means the error carries no hint (no
// Retry-After header is written).
func retryAfterOf(err error) time.Duration {
	var shed *bipartite.ShedError
	if errors.As(err, &shed) {
		return shed.RetryAfter
	}
	var miss *bipartite.WouldMissError
	if errors.As(err, &miss) {
		return miss.RetryAfter
	}
	var rate *bipartite.RateLimitError
	if errors.As(err, &rate) {
		return rate.RetryAfter
	}
	return 0
}

// writeErrorRetry is writeError plus the Retry-After header (in whole
// seconds, rounded up so "250ms" does not truncate to an immediate
// retry).
func writeErrorRetry(w http.ResponseWriter, code int, err error, retry time.Duration) {
	if retry > 0 {
		secs := int64((retry + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeError(w, code, err)
}

func toWire(resp bipartite.Response, d time.Duration) matchResponse {
	if resp.Err != nil {
		return matchResponse{Error: resp.Err.Error()}
	}
	out := matchResponse{
		Size:          resp.Matching.Size,
		Rows:          len(resp.Matching.RowMate),
		Cols:          len(resp.Matching.ColMate),
		RowMate:       resp.Matching.RowMate,
		WinnerSeed:    resp.WinnerSeed,
		CandidatesRun: resp.Candidates,
		HeuristicSize: resp.HeuristicSize,
		Refined:       resp.Refined,
		MatchedWeight: resp.MatchedWeight,
		Epsilon:       resp.Epsilon,
		Rounds:        resp.Rounds,
		Degraded:      resp.Degraded,
		Ms:            float64(d.Microseconds()) / 1000,
	}
	if resp.Refined {
		out.RefinedWith = resp.RefinedWith.String()
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("matchserve: write: %v", err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
