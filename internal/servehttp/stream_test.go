package servehttp

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// The streaming encoder's only contract is "indistinguishable from
// encoding/json": these tests pin byte equality against json.Encoder for
// every field-presence combination the handlers can produce, so any drift
// in field order, omitempty behavior, escaping, or float formatting fails
// loudly instead of silently changing the wire format.

func streamCases() map[string]matchResponse {
	return map[string]matchResponse{
		"full": {
			Size: 3, Rows: 4, Cols: 5, RowMate: []int32{0, -1, 2, 4},
			WinnerSeed: 18446744073709551615, CandidatesRun: 8, HeuristicSize: 2,
			Refined: true, RefinedWith: "graft", Ms: 1.234567,
		},
		"refined-exact": {
			Size: 3, Rows: 3, Cols: 3, RowMate: []int32{0, 1, 2},
			WinnerSeed: 1, CandidatesRun: 1, HeuristicSize: 2,
			Refined: true, RefinedWith: "exact", Ms: 0.5,
		},
		"degraded": {
			Size: 2, Rows: 2, Cols: 2, RowMate: []int32{1, 0},
			WinnerSeed: 7, CandidatesRun: 2, HeuristicSize: 2,
			Degraded: "refine:exact->none,best_of:8->2", Ms: 0.001,
		},
		"error": {
			RowMate: nil, Error: `spec: <bad> "refine" & more`,
		},
		"auction": {
			Size: 3, Rows: 3, Cols: 4, RowMate: []int32{0, 1, 2},
			WinnerSeed: 9, CandidatesRun: 4, HeuristicSize: 3,
			MatchedWeight: 2.718281828459045, Epsilon: 0.05, Rounds: 17, Ms: 0.75,
		},
		"auction-degraded": {
			Size: 2, Rows: 2, Cols: 2, RowMate: []int32{1, 0},
			WinnerSeed: 3, CandidatesRun: 1, HeuristicSize: 2,
			MatchedWeight: 1.5, Epsilon: 0.1, Rounds: 2,
			Degraded: "best_of:8->2", Ms: 0.25,
		},
		"empty-mates": {
			Size: 0, Rows: 0, Cols: 0, RowMate: []int32{},
		},
		"zero-ms-omitted": {
			Size: 1, Rows: 1, Cols: 1, RowMate: []int32{0}, Ms: 0,
		},
	}
}

func encodingJSON(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStreamMatchesEncodingJSON(t *testing.T) {
	for name, mr := range streamCases() {
		t.Run(name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			writeMatchStream(rec, http.StatusOK, &mr)
			got := rec.Body.Bytes()
			want := encodingJSON(t, &mr)
			if !bytes.Equal(got, want) {
				t.Errorf("stream encoding diverges from encoding/json\n got: %s\nwant: %s", got, want)
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type %q", ct)
			}
			// The stream must also round-trip through the decoder.
			var back matchResponse
			if err := json.Unmarshal(got, &back); err != nil {
				t.Fatalf("stream output does not parse: %v", err)
			}
		})
	}
}

// batchEnvelope mirrors the streamed /match/batch document for the
// encoding/json reference bytes.
type batchEnvelope struct {
	Ms        float64         `json:"ms"`
	Responses []matchResponse `json:"responses"`
}

func TestStreamBatchEnvelope(t *testing.T) {
	cases := streamCases()
	out := []matchResponse{cases["full"], cases["error"], cases["degraded"]}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/match/batch", nil)
	writeBatchStream(rec, req, http.StatusOK, out, 12.5)
	want := encodingJSON(t, batchEnvelope{Ms: 12.5, Responses: out})
	if got := rec.Body.Bytes(); !bytes.Equal(got, want) {
		t.Errorf("batch stream diverges from encoding/json\n got: %s\nwant: %s", got, want)
	}
}

func TestStreamBatchGzip(t *testing.T) {
	out := []matchResponse{streamCases()["full"]}

	plainRec := httptest.NewRecorder()
	writeBatchStream(plainRec, httptest.NewRequest(http.MethodPost, "/match/batch", nil),
		http.StatusOK, out, 3.25)

	zreq := httptest.NewRequest(http.MethodPost, "/match/batch", nil)
	zreq.Header.Set("Accept-Encoding", "gzip")
	zrec := httptest.NewRecorder()
	writeBatchStream(zrec, zreq, http.StatusOK, out, 3.25)

	if ce := zrec.Header().Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("Content-Encoding %q, want gzip", ce)
	}
	zr, err := gzip.NewReader(zrec.Body)
	if err != nil {
		t.Fatal(err)
	}
	inflated, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inflated, plainRec.Body.Bytes()) {
		t.Errorf("gzip stream inflates to different bytes\n got: %s\nwant: %s", inflated, plainRec.Body.Bytes())
	}
}
