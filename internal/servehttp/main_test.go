package servehttp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	bipartite "repro"
)

// newTestServer spins up the production mux on an httptest server.
func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Handler) {
	t.Helper()
	srv := bipartite.NewServerConfig(&bipartite.Options{ScalingIterations: 5, Workers: 1},
		bipartite.ServerConfig{MaxBatch: 16})
	h := NewHandler(srv, cfg)
	ts := httptest.NewServer(NewMux(h))
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts, h
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, decoded
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, decoded
}

// registerRing registers an n-cycle graph (perfect matching n) and returns
// its id.
func registerRing(t *testing.T, ts *httptest.Server, n int) string {
	t.Helper()
	edges := make([][2]int, 0, 2*n)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, i}, [2]int{i, (i + 1) % n})
	}
	resp, body := postJSON(t, ts.URL+"/graph", map[string]any{
		"rows": n, "cols": n, "edges": edges,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d body %v", resp.StatusCode, body)
	}
	return body["id"].(string)
}

func TestMatchServeEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxGraphs: 8, MaxBody: 1 << 20})
	id := registerRing(t, ts, 64)

	// Single match by registered id. Karp–Sipser is exact on the ring
	// (degree ≤ 2 everywhere), so the size must be the full 64.
	resp, body := postJSON(t, ts.URL+"/match", map[string]any{
		"graph": id, "op": "karpsipser", "seed": 7,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/match: status %d body %v", resp.StatusCode, body)
	}
	if int(body["size"].(float64)) != 64 {
		t.Fatalf("/match size %v, want 64 (Karp–Sipser is exact on the ring)", body["size"])
	}
	if len(body["row_mate"].([]any)) != 64 {
		t.Fatalf("row_mate length %d, want 64", len(body["row_mate"].([]any)))
	}
	// The TwoSided heuristic on the same graph: valid but not necessarily
	// perfect — assert the conjectured quality floor instead.
	resp, body = postJSON(t, ts.URL+"/match", map[string]any{
		"graph": id, "op": "twosided", "seed": 7,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/match twosided: status %d body %v", resp.StatusCode, body)
	}
	if size := int(body["size"].(float64)); size < 52 || size > 64 { // 52 ≈ 0.81·64
		t.Fatalf("/match twosided size %d, want within [52, 64]", size)
	}

	// Inline graph, one-sided.
	resp, body = postJSON(t, ts.URL+"/match", map[string]any{
		"rows": 3, "cols": 3,
		"edges": [][2]int{{0, 0}, {1, 1}, {2, 2}},
		"op":    "onesided", "seed": 1,
	})
	if resp.StatusCode != http.StatusOK || int(body["size"].(float64)) != 3 {
		t.Fatalf("inline /match: status %d body %v", resp.StatusCode, body)
	}

	// Batch: mixed ops, one bad entry reported in-band.
	resp, body = postJSON(t, ts.URL+"/match/batch", map[string]any{
		"requests": []map[string]any{
			{"graph": id, "op": "karpsipser", "seed": 1},
			{"graph": "nope", "op": "twosided"},
			{"graph": id, "op": "karpsipser", "seed": 2},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/match/batch: status %d body %v", resp.StatusCode, body)
	}
	responses := body["responses"].([]any)
	if len(responses) != 3 {
		t.Fatalf("%d batch responses, want 3", len(responses))
	}
	if errMsg, _ := responses[1].(map[string]any)["error"].(string); !strings.Contains(errMsg, "unknown graph") {
		t.Fatalf("bad entry error %q, want unknown graph", errMsg)
	}
	for _, k := range []int{0, 2} {
		if int(responses[k].(map[string]any)["size"].(float64)) != 64 {
			t.Fatalf("batch response %d size %v, want 64", k, responses[k].(map[string]any)["size"])
		}
	}

	// Stats reflect the traffic.
	resp, body = getJSON(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats: status %d", resp.StatusCode)
	}
	if int(body["graphs"].(float64)) != 1 {
		t.Fatalf("stats graphs %v, want 1", body["graphs"])
	}
	if int(body["requests"].(float64)) < 5 {
		t.Fatalf("stats requests %v, want >= 5", body["requests"])
	}

	// Metrics: per-op histograms exist with the right counts.
	resp, body = getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	ops := body["ops"].(map[string]any)
	two := ops["twosided"].(map[string]any)
	if int(two["count"].(float64)) != 1 {
		t.Fatalf("twosided count %v, want 1 (single matches only)", two["count"])
	}
	if int(ops["karpsipser"].(map[string]any)["count"].(float64)) != 1 {
		t.Fatalf("karpsipser count %v, want 1", ops["karpsipser"].(map[string]any)["count"])
	}
	if _, ok := two["p99_ms"]; !ok {
		t.Fatal("twosided metrics missing p99_ms")
	}
	if int(ops["batch"].(map[string]any)["count"].(float64)) != 1 {
		t.Fatalf("batch count %v, want 1", ops["batch"].(map[string]any)["count"])
	}

	// Healthz.
	resp, body = getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("/healthz: %d %v", resp.StatusCode, body)
	}
}

func TestMatchServeOversizeBodyRejected(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxGraphs: 8, MaxBody: 256})
	edges := make([][2]int, 600) // JSON far beyond 256 bytes
	for i := range edges {
		edges[i] = [2]int{i % 20, (i + 1) % 20}
	}
	resp, body := postJSON(t, ts.URL+"/graph", map[string]any{
		"rows": 20, "cols": 20, "edges": edges,
	})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize /graph: status %d body %v, want 413", resp.StatusCode, body)
	}
	if errMsg, _ := body["error"].(string); !strings.Contains(errMsg, "exceeds") {
		t.Fatalf("oversize error %q", errMsg)
	}
	// /match is capped too.
	resp, _ = postJSON(t, ts.URL+"/match", map[string]any{
		"rows": 20, "cols": 20, "edges": edges, "op": "twosided",
	})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize /match: status %d, want 413", resp.StatusCode)
	}
	// A small body still passes after rejections.
	if id := registerRing(t, ts, 8); id == "" {
		t.Fatal("small registration failed after oversize rejections")
	}
}

// TestMatchServeRegistryLRUEviction: registering past -maxgraphs evicts
// the least recently used graph instead of rejecting the registration; a
// lookup refreshes recency.
func TestMatchServeRegistryLRUEviction(t *testing.T) {
	ts, h := newTestServer(t, Config{MaxGraphs: 3, MaxBody: 1 << 20})
	id1 := registerRing(t, ts, 8)
	id2 := registerRing(t, ts, 9)
	id3 := registerRing(t, ts, 10)

	// Touch id1 so id2 becomes the LRU victim.
	if resp, _ := postJSON(t, ts.URL+"/match", map[string]any{"graph": id1, "seed": 1}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warming %s failed", id1)
	}
	id4 := registerRing(t, ts, 11)

	_, stats := getJSON(t, ts.URL+"/stats")
	if int(stats["graphs"].(float64)) != 3 {
		t.Fatalf("registry holds %v graphs, want 3 (the cap)", stats["graphs"])
	}
	if int(stats["evictions"].(float64)) != 1 {
		t.Fatalf("evictions %v, want 1", stats["evictions"])
	}
	// id2 evicted; id1, id3, id4 alive.
	resp, body := postJSON(t, ts.URL+"/match", map[string]any{"graph": id2, "seed": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("evicted graph served: status %d body %v", resp.StatusCode, body)
	}
	for _, id := range []string{id1, id3, id4} {
		if resp, _ := postJSON(t, ts.URL+"/match", map[string]any{"graph": id, "seed": 1}); resp.StatusCode != http.StatusOK {
			t.Fatalf("surviving graph %s not served", id)
		}
	}

	// Explicit DELETE still works and frees a slot.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/graph/"+id3, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", dresp.StatusCode)
	}
	h.mu.Lock()
	n, lruLen := len(h.graphs), h.lru.Len()
	h.mu.Unlock()
	if n != 2 || lruLen != 2 {
		t.Fatalf("after delete: map %d lru %d, want 2/2 (map and LRU in sync)", n, lruLen)
	}
}

// TestMatchServeDeadline: a per-request timeout_ms that cannot be met
// maps to 504; an explicitly pre-expired context path is covered by the
// library tests, so here the wire-level contract is what's asserted.
func TestMatchServeDeadline(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxGraphs: 4, MaxBody: 64 << 20, Timeout: time.Minute})
	// A deadline of 1ms on a large inline graph: resolution (decode+build)
	// happens before the clock starts mattering for admission, and the
	// kernels abort at their first checkpoint past the deadline. Use a
	// graph big enough that scaling cannot finish in 1ms.
	n := 200000
	edges := make([][2]int, 0, 3*n)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, i}, [2]int{i, (i + 1) % n}, [2]int{i, (i + 7919) % n})
	}
	resp, body := postJSON(t, ts.URL+"/match", map[string]any{
		"rows": n, "cols": n, "edges": edges, "op": "twosided", "timeout_ms": 1,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline-doomed /match: status %d body %v, want 504", resp.StatusCode, body)
	}
	if errMsg, _ := body["error"].(string); !strings.Contains(errMsg, "deadline") {
		t.Fatalf("deadline error %q", errMsg)
	}
}

// TestMatchServeUnknownOpAndBadJSON: malformed requests map to 400.
func TestMatchServeUnknownOpAndBadJSON(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxGraphs: 4, MaxBody: 1 << 20})
	id := registerRing(t, ts, 8)
	resp, _ := postJSON(t, ts.URL+"/match", map[string]any{"graph": id, "op": "magic"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown op: status %d, want 400", resp.StatusCode)
	}
	raw, err := http.Post(ts.URL+"/match", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: status %d, want 400", raw.StatusCode)
	}
}

// TestStatusOf pins the error→status mapping.
func TestStatusOf(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{bipartite.ErrOverloaded, http.StatusServiceUnavailable},
		{fmt.Errorf("wrapped: %w", bipartite.ErrOverloaded), http.StatusServiceUnavailable},
		{fmt.Errorf("boom"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := statusOf(c.err); got != c.want {
			t.Errorf("statusOf(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
