package servehttp

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestMatchServeSpecFields drives the declarative spec fields end to end:
// algorithm selection beyond the legacy ops, exact refinement reaching the
// ring's perfect matching, and best-of ensembles.
func TestMatchServeSpecFields(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxGraphs: 8, MaxBody: 1 << 20})
	id := registerRing(t, ts, 64)

	// cheap-vertex alone is a 1/2-approximation; refined it must hit the
	// ring's sprank of 64 exactly — and the provenance fields must report
	// the refinement: one candidate, the requested seed, and a heuristic
	// size no larger than the refined one.
	resp, body := postJSON(t, ts.URL+"/match", map[string]any{
		"graph": id, "algorithm": "cheap-vertex", "seed": 3, "refine": "exact",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/match refine: status %d body %v", resp.StatusCode, body)
	}
	if int(body["size"].(float64)) != 64 {
		t.Fatalf("refined size %v, want 64 (sprank of the ring)", body["size"])
	}
	if body["refined"] != true {
		t.Fatalf("refined run lacks the provenance flag: %v", body)
	}
	if int(body["winner_seed"].(float64)) != 3 || int(body["candidates_run"].(float64)) != 1 {
		t.Fatalf("single-run provenance (%v, %v) want (3, 1)", body["winner_seed"], body["candidates_run"])
	}
	if hs := int(body["heuristic_size"].(float64)); hs > 64 || hs < 1 {
		t.Fatalf("heuristic_size %d outside (0, 64]", hs)
	}

	// The push-relabel refinement family is reachable over the wire and
	// reaches the same maximum.
	resp, body = postJSON(t, ts.URL+"/match", map[string]any{
		"graph": id, "algorithm": "cheap-vertex", "seed": 3, "refine": "pushrelabel",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/match pushrelabel: status %d body %v", resp.StatusCode, body)
	}
	if int(body["size"].(float64)) != 64 || body["refined"] != true {
		t.Fatalf("pushrelabel-refined response %v, want size 64 refined", body)
	}

	// A best-of-8 ensemble with a target: valid request, sane response,
	// ensemble provenance on the wire. The sequential variant must agree
	// exactly (the library gates bit-identity; here we pin the wire).
	ensembleReq := map[string]any{
		"graph": id, "algorithm": "twosided", "seed": 1, "best_of": 8, "target": 0.9,
	}
	resp, body = postJSON(t, ts.URL+"/match", ensembleReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/match ensemble: status %d body %v", resp.StatusCode, body)
	}
	if size := int(body["size"].(float64)); size < 52 || size > 64 {
		t.Fatalf("ensemble size %d outside [52, 64]", size)
	}
	if ws := int(body["winner_seed"].(float64)); ws < 1 || ws > 8 {
		t.Fatalf("ensemble winner_seed %d outside [1, 8]", ws)
	}
	cand := int(body["candidates_run"].(float64))
	if cand < 1 || cand > 8 {
		t.Fatalf("ensemble candidates_run %d outside [1, 8]", cand)
	}
	if body["refined"] != false {
		t.Fatalf("unrefined ensemble reports refined = %v, want false", body["refined"])
	}
	ensembleReq["sequential"] = true
	resp, seqBody := postJSON(t, ts.URL+"/match", ensembleReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/match sequential ensemble: status %d body %v", resp.StatusCode, seqBody)
	}
	if seqBody["size"] != body["size"] || seqBody["winner_seed"] != body["winner_seed"] ||
		seqBody["candidates_run"] != body["candidates_run"] {
		t.Fatalf("sequential ensemble drifted from the default: %v vs %v", seqBody, body)
	}

	// The extended algorithms are reachable over the wire.
	for _, alg := range []string{"karpsipser-parallel", "cheap-edge", "onesided"} {
		resp, body = postJSON(t, ts.URL+"/match", map[string]any{
			"graph": id, "algorithm": alg, "seed": 5,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/match %s: status %d body %v", alg, resp.StatusCode, body)
		}
	}

	// "op" still works as a deprecated alias, including in batches.
	resp, body = postJSON(t, ts.URL+"/match/batch", map[string]any{
		"requests": []map[string]any{
			{"graph": id, "op": "karpsipser", "seed": 7},
			{"graph": id, "algorithm": "twosided", "seed": 7, "refine": "exact"},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/match/batch: status %d body %v", resp.StatusCode, body)
	}
	rs := body["responses"].([]any)
	if len(rs) != 2 {
		t.Fatalf("batch responses %d, want 2", len(rs))
	}
	if size := int(rs[1].(map[string]any)["size"].(float64)); size != 64 {
		t.Fatalf("batched refined size %d, want 64", size)
	}
}

// TestMatchServeSpecInvalid pins the precise-400 contract: every
// malformed spec field is rejected before any kernel runs, with the error
// in the body.
func TestMatchServeSpecInvalid(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxGraphs: 8, MaxBody: 1 << 20})
	id := registerRing(t, ts, 16)

	cases := []struct {
		name string
		req  map[string]any
	}{
		{"unknown algorithm", map[string]any{"graph": id, "algorithm": "simulated-annealing"}},
		{"unknown refine", map[string]any{"graph": id, "refine": "approximately"}},
		{"negative best_of", map[string]any{"graph": id, "best_of": -3}},
		{"target above 1", map[string]any{"graph": id, "target": 1.5}},
		{"negative target", map[string]any{"graph": id, "target": -0.1}},
		{"op/algorithm conflict", map[string]any{"graph": id, "op": "onesided", "algorithm": "twosided"}},
		{"unknown graph", map[string]any{"graph": "g999", "algorithm": "twosided"}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/match", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d body %v, want 400", tc.name, resp.StatusCode, body)
		}
		if body["error"] == nil || body["error"].(string) == "" {
			t.Fatalf("%s: 400 without an error body: %v", tc.name, body)
		}
	}

	// In a batch, a bad spec fails only its own slot.
	resp, body := postJSON(t, ts.URL+"/match/batch", map[string]any{
		"requests": []map[string]any{
			{"graph": id, "algorithm": "nope"},
			{"graph": id, "algorithm": "twosided", "seed": 2},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with one bad spec: status %d body %v", resp.StatusCode, body)
	}
	rs := body["responses"].([]any)
	if errStr, _ := rs[0].(map[string]any)["error"].(string); errStr == "" {
		t.Fatalf("bad batch entry did not carry an error: %v", rs[0])
	}
	if size := int(rs[1].(map[string]any)["size"].(float64)); size <= 0 {
		t.Fatalf("good batch entry failed alongside the bad one: %v", rs[1])
	}
}

// TestMatchServeBatchGzip round-trips a gzip-encoded batch: compressed
// request envelope in, compressed response envelope out, bit-for-bit
// equal to the identity-encoded exchange.
func TestMatchServeBatchGzip(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxGraphs: 8, MaxBody: 1 << 20})
	id := registerRing(t, ts, 32)

	payload := map[string]any{
		"requests": []map[string]any{
			{"graph": id, "algorithm": "twosided", "seed": 1},
			{"graph": id, "algorithm": "karpsipser", "seed": 2},
		},
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}

	// Reference exchange: no compression anywhere.
	plainResp, plainBody := postJSON(t, ts.URL+"/match/batch", payload)
	if plainResp.StatusCode != http.StatusOK {
		t.Fatalf("plain batch: status %d", plainResp.StatusCode)
	}

	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/match/batch", &zbuf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Content-Encoding", "gzip")
	// Setting Accept-Encoding explicitly disables the transport's
	// transparent decompression, so the wire bytes stay observable.
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gzip batch: status %d", resp.StatusCode)
	}
	if ce := resp.Header.Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("response Content-Encoding %q, want gzip", ce)
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatalf("response is not valid gzip: %v", err)
	}
	var gzBody map[string]any
	if err := json.NewDecoder(zr).Decode(&gzBody); err != nil {
		t.Fatal(err)
	}
	plainJSON, _ := json.Marshal(plainBody["responses"])
	gzJSON, _ := json.Marshal(gzBody["responses"])
	if !bytes.Equal(plainJSON, gzJSON) {
		t.Fatalf("gzip responses differ from identity responses:\n%s\nvs\n%s", gzJSON, plainJSON)
	}

	// A corrupt gzip body is a 400, not a hang or a 500.
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/match/batch", strings.NewReader("not gzip at all"))
	req2.Header.Set("Content-Encoding", "gzip")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt gzip: status %d, want 400", resp2.StatusCode)
	}
}

// TestMatchServeMetricsProm scrapes /metrics in Prometheus text format —
// via the query parameter and via content negotiation — and checks the
// histogram and counter series are well formed.
func TestMatchServeMetricsProm(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxGraphs: 8, MaxBody: 1 << 20})
	id := registerRing(t, ts, 32)
	for s := 1; s <= 3; s++ {
		resp, body := postJSON(t, ts.URL+"/match", map[string]any{
			"graph": id, "algorithm": "twosided", "seed": s,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/match: status %d body %v", resp.StatusCode, body)
		}
	}

	fetch := func(url string, hdr map[string]string) string {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", url, resp.StatusCode)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("%s: content type %q, want text/plain", url, ct)
		}
		return string(raw)
	}

	byQuery := fetch(ts.URL+"/metrics?format=prom", nil)
	byAccept := fetch(ts.URL+"/metrics", map[string]string{"Accept": "text/plain"})
	for _, text := range []string{byQuery, byAccept} {
		for _, want := range []string{
			"# TYPE matchserve_request_duration_seconds histogram",
			`matchserve_request_duration_seconds_bucket{op="twosided",le="+Inf"} 3`,
			`matchserve_request_duration_seconds_count{op="twosided"} 3`,
			"# TYPE matchserve_requests_total counter",
			"matchserve_requests_total 3",
			"# TYPE matchserve_graphs gauge",
			"matchserve_graphs 1",
		} {
			if !strings.Contains(text, want) {
				t.Fatalf("prom output missing %q:\n%s", want, text)
			}
		}
	}

	// Cumulative buckets must be monotone and end at the count.
	lines := strings.Split(byQuery, "\n")
	last := int64(-1)
	for _, ln := range lines {
		if !strings.HasPrefix(ln, `matchserve_request_duration_seconds_bucket{op="twosided"`) {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(ln[strings.LastIndex(ln, " ")+1:], "%d", &v); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", ln, err)
		}
		if v < last {
			t.Fatalf("non-monotone cumulative buckets at %q", ln)
		}
		last = v
	}
	if last != 3 {
		t.Fatalf("last cumulative bucket %d, want 3", last)
	}

	// The JSON body stays the default.
	resp, body := getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK || body["ops"] == nil {
		t.Fatalf("JSON metrics: status %d body %v", resp.StatusCode, body)
	}
}

// TestMatchServeDeleteDropsGraph: DELETE evicts the registry entry (the
// id stops resolving); the engine-side scale-cache drop it triggers is
// gated in the library's TestSpecServerDropGraph.
func TestMatchServeDeleteDropsGraph(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxGraphs: 8, MaxBody: 1 << 20})
	id := registerRing(t, ts, 16)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/graph/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	postResp, body := postJSON(t, ts.URL+"/match", map[string]any{"graph": id, "algorithm": "twosided"})
	if postResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("match after delete: status %d body %v, want 400", postResp.StatusCode, body)
	}
}
