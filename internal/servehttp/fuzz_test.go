package servehttp

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	bipartite "repro"
)

// The native fuzz targets drive the production mux with arbitrary JSON
// bodies — the decoders, the spec translation, and the graph/mutation
// validation must answer every input with a clean status, never a panic,
// an unbounded allocation, or a hung kernel. CI smoke-runs each target
// for a few seconds on every push; `go test -fuzz FuzzMatchServe... `
// runs them open-endedly.

// fuzzMux builds a handler on a small, tightly bounded server: a short
// default deadline bounds kernel work on adversarial-but-valid specs
// (e.g. huge best_of ensembles), and a small body cap bounds decode work.
func fuzzMux(f *testing.F) (*http.ServeMux, string) {
	f.Helper()
	srv := bipartite.NewServerConfig(&bipartite.Options{ScalingIterations: 2, Workers: 1},
		bipartite.ServerConfig{MaxBatch: 4})
	h := NewHandler(srv, Config{MaxGraphs: 4, MaxBody: 1 << 14, Timeout: 2 * time.Second})
	mux := NewMux(h)
	f.Cleanup(srv.Close)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/graph",
		strings.NewReader(`{"rows":5,"cols":5,"edges":[[0,0],[1,1],[2,2],[3,3],[4,4],[0,1],[1,2]]}`)))
	if rec.Code != http.StatusOK {
		f.Fatalf("seed graph registration: status %d body %s", rec.Code, rec.Body)
	}
	var reg struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &reg); err != nil {
		f.Fatal(err)
	}
	return mux, reg.ID
}

// statusAllowed is the closed set of statuses the service may answer a
// syntactically arbitrary request with; anything else (or a panic, which
// ServeHTTP would propagate here) fails the target.
func statusAllowed(code int) bool {
	switch code {
	case http.StatusOK, http.StatusBadRequest, http.StatusNotFound,
		http.StatusRequestEntityTooLarge, http.StatusTooManyRequests,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// FuzzMatchServePatchDecode fuzzes the PATCH /graph/{id} decoder and the
// mutation validation behind it. The graph is shared across inputs, so
// the session also absorbs every accepted batch — a long fuzz run doubles
// as a soak test of the incremental maintenance.
func FuzzMatchServePatchDecode(f *testing.F) {
	mux, id := fuzzMux(f)
	f.Add([]byte(`{"insert":[[0,1]],"delete":[[0,0]]}`))
	f.Add([]byte(`{"insert":[[9,9]]}`))
	f.Add([]byte(`{"delete":[[0,0],[0,0],[4,4]]}`))
	f.Add([]byte(`{"insert":null,"delete":null}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"insert":[[0]]}`))
	f.Add([]byte(`{"insert":[[-1,2]]}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPatch, "/graph/"+id, bytes.NewReader(body)))
		if !statusAllowed(rec.Code) {
			t.Fatalf("PATCH answered %d (body %q)", rec.Code, body)
		}
		if rec.Code != http.StatusOK {
			return
		}
		// Accepted batches must report a coherent maintained state.
		var out struct {
			Rows, Cols, Edges, MaintainedSize int `json:"-"`
		}
		var m map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
			t.Fatalf("200 PATCH reply not JSON: %v (%q)", err, rec.Body.Bytes())
		}
		out.Rows, out.Cols = int(m["rows"].(float64)), int(m["cols"].(float64))
		out.Edges, out.MaintainedSize = int(m["edges"].(float64)), int(m["maintained_size"].(float64))
		if out.MaintainedSize > out.Rows || out.MaintainedSize > out.Cols || out.MaintainedSize > out.Edges {
			t.Fatalf("impossible maintained_size %d for %dx%d graph with %d edges",
				out.MaintainedSize, out.Rows, out.Cols, out.Edges)
		}
	})
}

// FuzzMatchServeMatchDecode fuzzes the /match decoder: the spec
// translation, the inline graph builder (with its wire dimension cap) and
// the registered-graph path.
func FuzzMatchServeMatchDecode(f *testing.F) {
	mux, id := fuzzMux(f)
	f.Add([]byte(`{"graph":"` + id + `","algorithm":"twosided","seed":7}`))
	f.Add([]byte(`{"graph":"` + id + `","refine":"exact","best_of":4}`))
	f.Add([]byte(`{"rows":3,"cols":3,"edges":[[0,0],[1,1],[2,2]],"algorithm":"onesided"}`))
	f.Add([]byte(`{"rows":1000000000,"cols":1,"edges":[]}`))
	f.Add([]byte(`{"graph":"nope"}`))
	f.Add([]byte(`{"algorithm":"magic"}`))
	f.Add([]byte(`{"best_of":-3}`))
	f.Add([]byte(`{"graph":"` + id + `","timeout_ms":1}`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, body []byte) {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/match", bytes.NewReader(body)))
		if !statusAllowed(rec.Code) {
			t.Fatalf("/match answered %d (body %q)", rec.Code, body)
		}
	})
}

// TestMatchServeWireDimCap pins the fuzz-found guard: a tiny body asking
// for a gigantic vertex set is a 400, not a multi-gigabyte allocation.
func TestMatchServeWireDimCap(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxGraphs: 4, MaxBody: 1 << 20})
	resp, body := postJSON(t, ts.URL+"/graph", map[string]any{
		"rows": 1_000_000_000, "cols": 1, "edges": [][2]int{},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("giant rows: status %d body %v, want 400", resp.StatusCode, body)
	}
	if errMsg, _ := body["error"].(string); !strings.Contains(errMsg, "capped") {
		t.Fatalf("giant rows error %q, want the cap message", errMsg)
	}
	resp, _ = postJSON(t, ts.URL+"/match", map[string]any{
		"rows": 1, "cols": 1_000_000_000, "edges": [][2]int{}, "algorithm": "twosided",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("giant cols inline: status %d, want 400", resp.StatusCode)
	}
}
