// Package dm computes the Dulmage–Mendelsohn decomposition of a bipartite
// graph. The paper's §3.3 uses it to explain how doubly stochastic scaling
// behaves on matrices without perfect matchings: entries in the
// off-diagonal "*" blocks (which can never belong to a maximum matching)
// are driven to zero by the scaling iteration, which is exactly why the
// heuristics remain effective on deficient matrices.
//
// The coarse decomposition splits rows and columns into the horizontal
// (H), square (S) and vertical (V) parts; the fine decomposition refines S
// into its fully indecomposable diagonal blocks via strongly connected
// components of the matching-contracted digraph.
package dm

import (
	"repro/internal/exact"
	"repro/internal/sparse"
)

// Part identifies the coarse block a vertex belongs to.
type Part int8

const (
	// PartH is the horizontal block (more columns than rows; all its rows
	// are matched).
	PartH Part = iota
	// PartS is the square block with a perfect matching.
	PartS
	// PartV is the vertical block (more rows than columns; all its
	// columns are matched).
	PartV
)

// Coarse is the coarse Dulmage–Mendelsohn decomposition.
type Coarse struct {
	RowPart []Part // len RowsN
	ColPart []Part // len ColsN
	// Counts per part.
	HR, HC, SR, SC, VR, VC int
	// Matching is the maximum matching the decomposition was built from.
	Matching *exact.Matching
}

// Decompose computes the coarse decomposition from a maximum matching
// (computed internally when mt is nil). at must be the transpose of a.
func Decompose(a, at *sparse.CSR, mt *exact.Matching) *Coarse {
	if mt == nil {
		mt = exact.HopcroftKarp(a, nil)
	}
	n, m := a.RowsN, a.ColsN
	c := &Coarse{
		RowPart:  make([]Part, n),
		ColPart:  make([]Part, m),
		Matching: mt,
	}
	for i := range c.RowPart {
		c.RowPart[i] = PartS
	}
	for j := range c.ColPart {
		c.ColPart[j] = PartS
	}

	// H: columns reachable by alternating paths from unmatched columns
	// (col -> any row -> matched col), plus the rows met on the way.
	colSeen := make([]bool, m)
	rowSeen := make([]bool, n)
	queue := make([]int32, 0)
	for j := 0; j < m; j++ {
		if mt.ColMate[j] == exact.NIL {
			colSeen[j] = true
			queue = append(queue, int32(j))
		}
	}
	for qh := 0; qh < len(queue); qh++ {
		j := queue[qh]
		for p := at.Ptr[j]; p < at.Ptr[j+1]; p++ {
			i := at.Idx[p]
			if rowSeen[i] {
				continue
			}
			rowSeen[i] = true
			j2 := mt.RowMate[i] // must exist: otherwise M was not maximum
			if j2 != exact.NIL && !colSeen[j2] {
				colSeen[j2] = true
				queue = append(queue, j2)
			}
		}
	}
	for j := 0; j < m; j++ {
		if colSeen[j] {
			c.ColPart[j] = PartH
		}
	}
	for i := 0; i < n; i++ {
		if rowSeen[i] {
			c.RowPart[i] = PartH
		}
	}

	// V: rows reachable by alternating paths from unmatched rows
	// (row -> any col -> matched row), plus the columns met on the way.
	for j := range colSeen {
		colSeen[j] = false
	}
	for i := range rowSeen {
		rowSeen[i] = false
	}
	queue = queue[:0]
	for i := 0; i < n; i++ {
		if mt.RowMate[i] == exact.NIL {
			rowSeen[i] = true
			queue = append(queue, int32(i))
		}
	}
	for qh := 0; qh < len(queue); qh++ {
		i := queue[qh]
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			j := a.Idx[p]
			if colSeen[j] {
				continue
			}
			colSeen[j] = true
			i2 := mt.ColMate[j]
			if i2 != exact.NIL && !rowSeen[i2] {
				rowSeen[i2] = true
				queue = append(queue, i2)
			}
		}
	}
	for i := 0; i < n; i++ {
		if rowSeen[i] {
			c.RowPart[i] = PartV
		}
	}
	for j := 0; j < m; j++ {
		if colSeen[j] {
			c.ColPart[j] = PartV
		}
	}

	for i := 0; i < n; i++ {
		switch c.RowPart[i] {
		case PartH:
			c.HR++
		case PartS:
			c.SR++
		default:
			c.VR++
		}
	}
	for j := 0; j < m; j++ {
		switch c.ColPart[j] {
		case PartH:
			c.HC++
		case PartS:
			c.SC++
		default:
			c.VC++
		}
	}
	return c
}

// CheckBlockStructure verifies the defining zero-block invariants of the
// decomposition on the matrix: with rows ordered (H,S,V) and columns
// ordered (H,S,V) there are no entries in S×H, V×H or V×S. It returns the
// number of violations (zero for a correct decomposition).
func (c *Coarse) CheckBlockStructure(a *sparse.CSR) int {
	bad := 0
	for i := 0; i < a.RowsN; i++ {
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			j := a.Idx[p]
			rp, cp := c.RowPart[i], c.ColPart[j]
			if (rp == PartS && cp == PartH) ||
				(rp == PartV && cp == PartH) ||
				(rp == PartV && cp == PartS) {
				bad++
			}
		}
	}
	return bad
}

// Fine refines the square part into fully indecomposable blocks: the
// strongly connected components of the digraph whose nodes are the matched
// pairs (i, mate(i)) of S and whose arcs follow the off-matching entries.
// It returns the block id of every S-row's matched pair, the number of
// blocks, and nil block ids for rows outside S.
func (c *Coarse) Fine(a *sparse.CSR) (blockOfRow []int32, blocks int) {
	n := a.RowsN
	blockOfRow = make([]int32, n)
	for i := range blockOfRow {
		blockOfRow[i] = -1
	}
	// Tarjan SCC, iterative, over S-rows; the node of row i is i itself
	// (standing for the pair (i, RowMate[i])). Arc i -> ColMate[j] for
	// every entry j of row i inside S.
	const undef = int32(-1)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = undef
	}
	var stack []int32
	var next int32
	type frame struct {
		v   int32
		arc int
	}
	var callStack []frame

	strongconnect := func(root int32) {
		callStack = append(callStack[:0], frame{v: root, arc: a.Ptr[root]})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			v := f.v
			advanced := false
			for f.arc < a.Ptr[v+1] {
				j := a.Idx[f.arc]
				f.arc++
				if c.ColPart[j] != PartS {
					continue
				}
				w := c.Matching.ColMate[j]
				if w == exact.NIL || c.RowPart[w] != PartS {
					continue
				}
				if index[w] == undef {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w, arc: a.Ptr[w]})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is done: pop, propagate lowlink, emit SCC if root.
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := &callStack[len(callStack)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					blockOfRow[w] = int32(blocks)
					if w == v {
						break
					}
				}
				blocks++
			}
		}
	}

	for i := int32(0); int(i) < n; i++ {
		if c.RowPart[i] == PartS && index[i] == undef {
			strongconnect(i)
		}
	}
	return blockOfRow, blocks
}
