package dm

import (
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/scale"
	"repro/internal/sparse"
)

// TestScalingKillsStarBlocks verifies the paper's §3.3 claim: on a matrix
// without total support, Sinkhorn-Knopp drives the entries that cannot
// belong to any maximum matching (the off-diagonal "*" blocks of the DM
// block-triangular form) toward zero, while entries inside the blocks
// stay bounded away from zero. This is the mechanism that lets the
// heuristics ignore useless edges on deficient inputs.
func TestScalingKillsStarBlocks(t *testing.T) {
	// Build [[S1, *], [0, S2]] where S1, S2 are fully indecomposable and
	// the * block couples them. * entries are in no perfect matching.
	n1, n2 := 40, 60
	entries := gen.FullyIndecomposable(n1, 0, 1).ToCOO()
	for _, e := range gen.FullyIndecomposable(n2, 0, 2).ToCOO() {
		entries = append(entries, sparse.Coord{I: e.I + int32(n1), J: e.J + int32(n1)})
	}
	// Coupling entries in the upper-right block.
	for k := 0; k < 25; k++ {
		entries = append(entries, sparse.Coord{I: int32(k % n1), J: int32(n1 + (7*k)%n2)})
	}
	a, err := sparse.FromCOO(n1+n2, n1+n2, entries, false)
	if err != nil {
		t.Fatal(err)
	}
	at := a.Transpose()
	if exact.Sprank(a) != n1+n2 {
		t.Fatal("construction should have a perfect matching")
	}

	res, err := scale.SinkhornKnopp(a, at, scale.Options{MaxIters: 2000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	var maxStar, minBlock float64
	minBlock = 1e300
	for i := 0; i < a.RowsN; i++ {
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			j := int(a.Idx[p])
			s := scale.Entry(a, res.DR, res.DC, i, p)
			inStar := i < n1 && j >= n1
			if inStar {
				if s > maxStar {
					maxStar = s
				}
			} else if s < minBlock {
				minBlock = s
			}
		}
	}
	if maxStar > 0.05*minBlock {
		t.Fatalf("star-block entries not vanishing: max*=%.3g vs min block=%.3g",
			maxStar, minBlock)
	}
}

// TestScalingIdentifiesMatchableEntries is the same phenomenon end to end:
// on a sprank-deficient matrix the fine DM blocks of the square part
// receive all the probability mass, so the heuristics' choices concentrate
// on matchable edges.
func TestScalingSquarePartGetsMass(t *testing.T) {
	a := gen.ERAvgDeg(300, 300, 2, 9) // deficient
	at := a.Transpose()
	c := Decompose(a, at, nil)
	if c.SR == 0 || c.HR+c.VR == 0 {
		t.Skip("instance not mixed enough")
	}
	res, err := scale.SinkhornKnopp(a, at, scale.Options{MaxIters: 500, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// For a row in S, the mass on edges that leave the S x S block should
	// be small relative to the row total (those edges cannot be in a
	// maximum matching when they point into H-columns... they can point
	// into V? S-rows only see S and V... by the block structure S rows
	// have entries in S and H* is excluded. Entries from S-rows to
	// V-columns do not exist; to H-columns they are in the "*" region).
	var inS, outS float64
	for i := 0; i < a.RowsN; i++ {
		if c.RowPart[i] != PartS {
			continue
		}
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			s := scale.Entry(a, res.DR, res.DC, i, p)
			if c.ColPart[a.Idx[p]] == PartS {
				inS += s
			} else {
				outS += s
			}
		}
	}
	if inS == 0 {
		t.Skip("no S-to-S mass")
	}
	if outS > 0.02*inS {
		t.Fatalf("mass escaping the square part: out=%.3g in=%.3g", outS, inS)
	}
}
