package dm

import (
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/sparse"
)

func decompose(t *testing.T, a *sparse.CSR) *Coarse {
	t.Helper()
	return Decompose(a, a.Transpose(), nil)
}

func TestPerfectMatchingIsAllSquare(t *testing.T) {
	a := gen.FullyIndecomposable(100, 2, 3)
	c := decompose(t, a)
	if c.HR != 0 || c.HC != 0 || c.VR != 0 || c.VC != 0 {
		t.Fatalf("perfect-matching matrix has H/V parts: %+v", c)
	}
	if c.SR != 100 || c.SC != 100 {
		t.Fatalf("square part %d/%d want 100/100", c.SR, c.SC)
	}
	if bad := c.CheckBlockStructure(a); bad != 0 {
		t.Fatalf("%d block violations", bad)
	}
}

func TestWideMatrixIsHorizontal(t *testing.T) {
	// 2 rows x 5 cols, all ones: everything in H.
	grid := [][]int{
		{1, 1, 1, 1, 1},
		{1, 1, 1, 1, 1},
	}
	a := sparse.FromDense(grid)
	c := Decompose(a, a.Transpose(), nil)
	if c.HR != 2 || c.HC != 5 {
		t.Fatalf("H part %d rows %d cols; want 2/5", c.HR, c.HC)
	}
	if c.CheckBlockStructure(a) != 0 {
		t.Fatal("block violations")
	}
}

func TestTallMatrixIsVertical(t *testing.T) {
	grid := [][]int{
		{1, 1},
		{1, 1},
		{1, 1},
		{1, 1},
	}
	a := sparse.FromDense(grid)
	c := Decompose(a, a.Transpose(), nil)
	if c.VR != 4 || c.VC != 2 {
		t.Fatalf("V part %d rows %d cols; want 4/2", c.VR, c.VC)
	}
}

func TestMixedBlocksKnownExample(t *testing.T) {
	// Block upper-triangular by construction:
	// rows 0-1 x cols 0-2 horizontal (2x3 full),
	// rows 2-3 x cols 3-4 square (identity),
	// rows 4-6 x col 5 vertical (3x1 full).
	grid := [][]int{
		{1, 1, 1, 0, 1, 0}, // H row (may also touch later cols)
		{1, 1, 1, 0, 0, 0},
		{0, 0, 0, 1, 0, 1}, // S rows
		{0, 0, 0, 0, 1, 0},
		{0, 0, 0, 0, 0, 1}, // V rows
		{0, 0, 0, 0, 0, 1},
		{0, 0, 0, 0, 0, 1},
	}
	a := sparse.FromDense(grid)
	c := Decompose(a, a.Transpose(), nil)
	if c.HR != 2 || c.HC != 3 {
		t.Fatalf("H = %dx%d want 2x3", c.HR, c.HC)
	}
	if c.SR != 2 || c.SC != 2 {
		t.Fatalf("S = %dx%d want 2x2", c.SR, c.SC)
	}
	if c.VR != 3 || c.VC != 1 {
		t.Fatalf("V = %dx%d want 3x1", c.VR, c.VC)
	}
	if bad := c.CheckBlockStructure(a); bad != 0 {
		t.Fatalf("%d block violations", bad)
	}
}

func TestBlockInvariantsRandom(t *testing.T) {
	f := func(seed uint64, r8, c8, d uint8) bool {
		rows := int(r8)%60 + 1
		cols := int(c8)%60 + 1
		nnz := (int(d)%4 + 1) * rows
		a := gen.ER(rows, cols, nnz, seed)
		c := Decompose(a, a.Transpose(), nil)
		if c.CheckBlockStructure(a) != 0 {
			return false
		}
		// Part sizes are consistent.
		if c.HR+c.SR+c.VR != rows || c.HC+c.SC+c.VC != cols {
			return false
		}
		// S is square and perfectly matched; H has more cols than rows
		// unless empty; V more rows than cols unless empty.
		if c.SR != c.SC {
			return false
		}
		if c.HR > 0 || c.HC > 0 {
			if c.HC <= c.HR {
				return false
			}
		}
		if c.VR > 0 || c.VC > 0 {
			if c.VR <= c.VC {
				return false
			}
		}
		// Every S row and H row is matched; every V column is matched.
		for i := 0; i < rows; i++ {
			if c.RowPart[i] != PartV && c.Matching.RowMate[i] == exact.NIL {
				return false
			}
		}
		for j := 0; j < cols; j++ {
			if c.ColPart[j] != PartH && c.Matching.ColMate[j] == exact.NIL {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchedPairsStayInSamePart(t *testing.T) {
	f := func(seed uint64) bool {
		a := gen.ER(50, 50, 120, seed)
		c := Decompose(a, a.Transpose(), nil)
		for i := 0; i < 50; i++ {
			j := c.Matching.RowMate[i]
			if j == exact.NIL {
				continue
			}
			if c.RowPart[i] != c.ColPart[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFineSingleBlockForFullyIndecomposable(t *testing.T) {
	a := gen.FullyIndecomposable(80, 0, 1) // identity + cycle shift: one block
	c := decompose(t, a)
	_, blocks := c.Fine(a)
	if blocks != 1 {
		t.Fatalf("fully indecomposable matrix split into %d blocks", blocks)
	}
}

func TestFineBlockDiagonal(t *testing.T) {
	// Two independent fully indecomposable blocks on the diagonal.
	b1 := gen.FullyIndecomposable(10, 0, 1)
	entries := b1.ToCOO()
	for _, e := range gen.FullyIndecomposable(15, 0, 2).ToCOO() {
		entries = append(entries, sparse.Coord{I: e.I + 10, J: e.J + 10})
	}
	a, err := sparse.FromCOO(25, 25, entries, false)
	if err != nil {
		t.Fatal(err)
	}
	c := decompose(t, a)
	blockOf, blocks := c.Fine(a)
	if blocks != 2 {
		t.Fatalf("expected 2 fine blocks, got %d", blocks)
	}
	// Rows of the same diagonal block must share a block id.
	for i := 1; i < 10; i++ {
		if blockOf[i] != blockOf[0] {
			t.Fatalf("rows 0 and %d in different blocks", i)
		}
	}
	for i := 11; i < 25; i++ {
		if blockOf[i] != blockOf[10] {
			t.Fatalf("rows 10 and %d in different blocks", i)
		}
	}
	if blockOf[0] == blockOf[10] {
		t.Fatal("independent blocks merged")
	}
}

func TestFineIdentityIsNBlocks(t *testing.T) {
	a := gen.Identity(12)
	c := decompose(t, a)
	_, blocks := c.Fine(a)
	if blocks != 12 {
		t.Fatalf("identity should give 12 singleton blocks, got %d", blocks)
	}
}

func TestFineSkipsNonSquarePart(t *testing.T) {
	grid := [][]int{
		{1, 1, 1}, // H
		{0, 0, 1},
	}
	a := sparse.FromDense(grid)
	c := Decompose(a, a.Transpose(), nil)
	blockOf, _ := c.Fine(a)
	for i, b := range blockOf {
		if c.RowPart[i] != PartS && b != -1 {
			t.Fatalf("row %d outside S got block %d", i, b)
		}
	}
}

func TestDecomposeWithProvidedMatching(t *testing.T) {
	a := gen.ER(40, 40, 100, 5)
	mt := exact.HopcroftKarp(a, nil)
	c := Decompose(a, a.Transpose(), mt)
	if c.Matching != mt {
		t.Fatal("provided matching not used")
	}
	if c.CheckBlockStructure(a) != 0 {
		t.Fatal("block violations with provided matching")
	}
}

func TestBadKSIsAllSquare(t *testing.T) {
	a := gen.BadKS(64, 8)
	c := decompose(t, a)
	if c.SR != 64 || c.SC != 64 {
		t.Fatalf("BadKS should be all square, got S=%dx%d", c.SR, c.SC)
	}
}
