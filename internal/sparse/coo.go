package sparse

import (
	"fmt"
	"sort"
)

// Coord is a single (row, column) coordinate, optionally weighted.
type Coord struct {
	I, J int32
	V    float64
}

// FromCOO builds a CSR from coordinate entries, sorting them and removing
// duplicates (keeping the last value for a duplicate coordinate, like most
// assembly conventions). Entries out of range yield an error.
func FromCOO(rows, cols int, entries []Coord, weighted bool) (*CSR, error) {
	for _, e := range entries {
		if e.I < 0 || int(e.I) >= rows || e.J < 0 || int(e.J) >= cols {
			return nil, fmt.Errorf("%w: entry (%d,%d) outside %dx%d", ErrInvalid, e.I, e.J, rows, cols)
		}
	}
	sorted := append([]Coord(nil), entries...)
	sort.Slice(sorted, func(x, y int) bool {
		if sorted[x].I != sorted[y].I {
			return sorted[x].I < sorted[y].I
		}
		return sorted[x].J < sorted[y].J
	})
	// Dedupe in place, last value wins.
	w := 0
	for r := 0; r < len(sorted); r++ {
		if w > 0 && sorted[w-1].I == sorted[r].I && sorted[w-1].J == sorted[r].J {
			sorted[w-1].V = sorted[r].V
			continue
		}
		sorted[w] = sorted[r]
		w++
	}
	sorted = sorted[:w]

	a := &CSR{RowsN: rows, ColsN: cols}
	a.Ptr = make([]int, rows+1)
	for _, e := range sorted {
		a.Ptr[e.I+1]++
	}
	for i := 0; i < rows; i++ {
		a.Ptr[i+1] += a.Ptr[i]
	}
	a.Idx = make([]int32, len(sorted))
	if weighted {
		a.Val = make([]float64, len(sorted))
	}
	for p, e := range sorted {
		a.Idx[p] = e.J
		if weighted {
			a.Val[p] = e.V
		}
	}
	return a, nil
}

// ToCOO returns the coordinate entries of the matrix in row-major order.
func (a *CSR) ToCOO() []Coord {
	out := make([]Coord, 0, a.NNZ())
	for i := 0; i < a.RowsN; i++ {
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			c := Coord{I: int32(i), J: a.Idx[p], V: 1}
			if a.Val != nil {
				c.V = a.Val[p]
			}
			out = append(out, c)
		}
	}
	return out
}

// FromDense builds a pattern CSR from a dense 0/1 grid; handy in tests.
func FromDense(grid [][]int) *CSR {
	rows := len(grid)
	cols := 0
	if rows > 0 {
		cols = len(grid[0])
	}
	var entries []Coord
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if grid[i][j] != 0 {
				entries = append(entries, Coord{I: int32(i), J: int32(j)})
			}
		}
	}
	a, err := FromCOO(rows, cols, entries, false)
	if err != nil {
		panic(err) // impossible: indices constructed in range
	}
	return a
}
