// Package sparse provides the compressed sparse row/column matrix
// structures that represent bipartite graphs throughout the library.
//
// A bipartite graph G = (VR ∪ VC, E) is stored as the sparse pattern of its
// biadjacency matrix A: rows correspond to VR, columns to VC, and a_ij != 0
// iff (r_i, c_j) ∈ E. Algorithms that need both orientations (scaling,
// Karp–Sipser, Hopcroft–Karp) take the matrix together with its transpose,
// which callers typically obtain once via Transpose and reuse.
package sparse

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/par"
)

// CSR is a sparse matrix in compressed sparse row format. Val is optional:
// a nil Val means a 0/1 pattern matrix, which is what the matching
// heuristics operate on; scaling accepts general nonnegative values.
type CSR struct {
	RowsN int     // number of rows (|VR|)
	ColsN int     // number of columns (|VC|)
	Ptr   []int   // row pointers, len RowsN+1
	Idx   []int32 // column indices, len NNZ
	Val   []float64
}

// ErrInvalid reports a structurally invalid matrix.
var ErrInvalid = errors.New("sparse: invalid matrix")

// New constructs a CSR from raw components and validates it.
func New(rows, cols int, ptr []int, idx []int32, val []float64) (*CSR, error) {
	a := &CSR{RowsN: rows, ColsN: cols, Ptr: ptr, Idx: idx, Val: val}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// NNZ returns the number of stored entries (edges).
func (a *CSR) NNZ() int { return len(a.Idx) }

// Degree returns the number of entries in row i.
func (a *CSR) Degree(i int) int { return a.Ptr[i+1] - a.Ptr[i] }

// Row returns the column indices of row i as a sub-slice (not a copy).
func (a *CSR) Row(i int) []int32 { return a.Idx[a.Ptr[i]:a.Ptr[i+1]] }

// RowVal returns the values of row i, or nil for pattern matrices.
func (a *CSR) RowVal(i int) []float64 {
	if a.Val == nil {
		return nil
	}
	return a.Val[a.Ptr[i]:a.Ptr[i+1]]
}

// Validate checks structural invariants: monotone pointers, in-range
// indices, matching array lengths.
func (a *CSR) Validate() error {
	if a.RowsN < 0 || a.ColsN < 0 {
		return fmt.Errorf("%w: negative dimension %dx%d", ErrInvalid, a.RowsN, a.ColsN)
	}
	if len(a.Ptr) != a.RowsN+1 {
		return fmt.Errorf("%w: len(Ptr)=%d want %d", ErrInvalid, len(a.Ptr), a.RowsN+1)
	}
	if a.Ptr[0] != 0 {
		return fmt.Errorf("%w: Ptr[0]=%d want 0", ErrInvalid, a.Ptr[0])
	}
	if a.Ptr[a.RowsN] != len(a.Idx) {
		return fmt.Errorf("%w: Ptr[n]=%d want len(Idx)=%d", ErrInvalid, a.Ptr[a.RowsN], len(a.Idx))
	}
	if a.Val != nil && len(a.Val) != len(a.Idx) {
		return fmt.Errorf("%w: len(Val)=%d want %d", ErrInvalid, len(a.Val), len(a.Idx))
	}
	for i := 0; i < a.RowsN; i++ {
		if a.Ptr[i] > a.Ptr[i+1] {
			return fmt.Errorf("%w: Ptr not monotone at row %d", ErrInvalid, i)
		}
	}
	for _, j := range a.Idx {
		if j < 0 || int(j) >= a.ColsN {
			return fmt.Errorf("%w: column index %d out of range [0,%d)", ErrInvalid, j, a.ColsN)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (a *CSR) Clone() *CSR {
	b := &CSR{RowsN: a.RowsN, ColsN: a.ColsN}
	b.Ptr = append([]int(nil), a.Ptr...)
	b.Idx = append([]int32(nil), a.Idx...)
	if a.Val != nil {
		b.Val = append([]float64(nil), a.Val...)
	}
	return b
}

// Transpose returns Aᵀ (the CSC view of A) built with a counting sort. The
// result has sorted indices within each row. Workers > 1 parallelizes the
// scatter phase over rows of the result.
func (a *CSR) Transpose() *CSR {
	t := &CSR{RowsN: a.ColsN, ColsN: a.RowsN}
	t.Ptr = make([]int, a.ColsN+1)
	t.Idx = make([]int32, len(a.Idx))
	if a.Val != nil {
		t.Val = make([]float64, len(a.Val))
	}
	// Count column degrees.
	for _, j := range a.Idx {
		t.Ptr[j+1]++
	}
	for j := 0; j < a.ColsN; j++ {
		t.Ptr[j+1] += t.Ptr[j]
	}
	// Scatter. next[j] is the write cursor for output row j.
	next := make([]int, a.ColsN)
	copy(next, t.Ptr[:a.ColsN])
	for i := 0; i < a.RowsN; i++ {
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			j := a.Idx[p]
			q := next[j]
			next[j]++
			t.Idx[q] = int32(i)
			if a.Val != nil {
				t.Val[q] = a.Val[p]
			}
		}
	}
	return t
}

// SortRows sorts the column indices (and values) within every row.
// Generators and I/O produce sorted rows already; this is exposed for
// matrices assembled by hand.
func (a *CSR) SortRows() {
	par.For(a.RowsN, 0, par.Dynamic, 256, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			s, e := a.Ptr[i], a.Ptr[i+1]
			if a.Val == nil {
				idx := a.Idx[s:e]
				sort.Slice(idx, func(x, y int) bool { return idx[x] < idx[y] })
				continue
			}
			idx := a.Idx[s:e]
			val := a.Val[s:e]
			ord := make([]int, len(idx))
			for k := range ord {
				ord[k] = k
			}
			sort.Slice(ord, func(x, y int) bool { return idx[ord[x]] < idx[ord[y]] })
			ni := make([]int32, len(idx))
			nv := make([]float64, len(val))
			for k, o := range ord {
				ni[k] = idx[o]
				nv[k] = val[o]
			}
			copy(idx, ni)
			copy(val, nv)
		}
	})
}

// HasSortedRows reports whether every row's indices are strictly
// increasing (sorted and duplicate-free).
func (a *CSR) HasSortedRows() bool {
	for i := 0; i < a.RowsN; i++ {
		for p := a.Ptr[i] + 1; p < a.Ptr[i+1]; p++ {
			if a.Idx[p-1] >= a.Idx[p] {
				return false
			}
		}
	}
	return true
}

// Equal reports structural (and value) equality.
func (a *CSR) Equal(b *CSR) bool {
	if a.RowsN != b.RowsN || a.ColsN != b.ColsN || len(a.Idx) != len(b.Idx) {
		return false
	}
	for i := range a.Ptr {
		if a.Ptr[i] != b.Ptr[i] {
			return false
		}
	}
	for i := range a.Idx {
		if a.Idx[i] != b.Idx[i] {
			return false
		}
	}
	if (a.Val == nil) != (b.Val == nil) {
		return false
	}
	if a.Val != nil {
		for i := range a.Val {
			if a.Val[i] != b.Val[i] {
				return false
			}
		}
	}
	return true
}

// MaxDegree returns the largest row degree.
func (a *CSR) MaxDegree() int {
	m := 0
	for i := 0; i < a.RowsN; i++ {
		if d := a.Degree(i); d > m {
			m = d
		}
	}
	return m
}

// AvgDegree returns the mean row degree.
func (a *CSR) AvgDegree() float64 {
	if a.RowsN == 0 {
		return 0
	}
	return float64(a.NNZ()) / float64(a.RowsN)
}

// DegreeVariance returns the variance of the row degrees; the paper uses
// it to explain load-imbalance effects (torso1, audikw_1).
func (a *CSR) DegreeVariance() float64 {
	if a.RowsN == 0 {
		return 0
	}
	mean := a.AvgDegree()
	var ss float64
	for i := 0; i < a.RowsN; i++ {
		d := float64(a.Degree(i)) - mean
		ss += d * d
	}
	return ss / float64(a.RowsN)
}

// EmptyRows returns the number of rows with no entries.
func (a *CSR) EmptyRows() int {
	c := 0
	for i := 0; i < a.RowsN; i++ {
		if a.Degree(i) == 0 {
			c++
		}
	}
	return c
}

// PermuteRows returns the matrix with rows reordered so that new row i is
// old row perm[i]. perm must be a permutation of [0, RowsN).
func (a *CSR) PermuteRows(perm []int32) (*CSR, error) {
	if len(perm) != a.RowsN {
		return nil, fmt.Errorf("%w: perm length %d want %d", ErrInvalid, len(perm), a.RowsN)
	}
	b := &CSR{RowsN: a.RowsN, ColsN: a.ColsN}
	b.Ptr = make([]int, a.RowsN+1)
	for i := 0; i < a.RowsN; i++ {
		b.Ptr[i+1] = b.Ptr[i] + a.Degree(int(perm[i]))
	}
	b.Idx = make([]int32, len(a.Idx))
	if a.Val != nil {
		b.Val = make([]float64, len(a.Val))
	}
	for i := 0; i < a.RowsN; i++ {
		src := int(perm[i])
		copy(b.Idx[b.Ptr[i]:b.Ptr[i+1]], a.Row(src))
		if a.Val != nil {
			copy(b.Val[b.Ptr[i]:b.Ptr[i+1]], a.RowVal(src))
		}
	}
	return b, nil
}

// PermuteCols returns the matrix with columns relabeled so that old column
// j becomes perm[j]. Rows are re-sorted afterwards.
func (a *CSR) PermuteCols(perm []int32) (*CSR, error) {
	if len(perm) != a.ColsN {
		return nil, fmt.Errorf("%w: perm length %d want %d", ErrInvalid, len(perm), a.ColsN)
	}
	b := a.Clone()
	for p, j := range b.Idx {
		b.Idx[p] = perm[j]
	}
	b.SortRows()
	return b, nil
}

// String renders small matrices as a dense 0/1 grid for debugging and
// summarizes large ones.
func (a *CSR) String() string {
	if a.RowsN > 16 || a.ColsN > 16 {
		return fmt.Sprintf("CSR{%dx%d, nnz=%d}", a.RowsN, a.ColsN, a.NNZ())
	}
	out := fmt.Sprintf("CSR %dx%d nnz=%d\n", a.RowsN, a.ColsN, a.NNZ())
	for i := 0; i < a.RowsN; i++ {
		row := make([]byte, a.ColsN)
		for k := range row {
			row[k] = '.'
		}
		for _, j := range a.Row(i) {
			row[j] = '1'
		}
		out += string(row) + "\n"
	}
	return out
}
