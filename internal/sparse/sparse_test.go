package sparse

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func randomCSR(seed uint64, rows, cols, nnz int) *CSR {
	rng := xrand.New(seed)
	entries := make([]Coord, nnz)
	for k := range entries {
		entries[k] = Coord{I: int32(rng.Intn(rows)), J: int32(rng.Intn(cols))}
	}
	a, err := FromCOO(rows, cols, entries, false)
	if err != nil {
		panic(err)
	}
	return a
}

func TestNewValidates(t *testing.T) {
	if _, err := New(2, 2, []int{0, 1, 2}, []int32{0, 1}, nil); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	cases := []struct {
		name string
		rows int
		cols int
		ptr  []int
		idx  []int32
		val  []float64
	}{
		{"short ptr", 2, 2, []int{0, 1}, []int32{0}, nil},
		{"ptr0 nonzero", 2, 2, []int{1, 1, 2}, []int32{0, 1}, nil},
		{"ptr end mismatch", 2, 2, []int{0, 1, 3}, []int32{0, 1}, nil},
		{"non-monotone", 2, 2, []int{0, 2, 1}, []int32{0, 1}, nil},
		{"index range", 2, 2, []int{0, 1, 2}, []int32{0, 5}, nil},
		{"negative index", 2, 2, []int{0, 1, 2}, []int32{0, -1}, nil},
		{"val length", 2, 2, []int{0, 1, 2}, []int32{0, 1}, []float64{1}},
		{"negative dims", -1, 2, []int{0}, nil, nil},
	}
	for _, c := range cases {
		if _, err := New(c.rows, c.cols, c.ptr, c.idx, c.val); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestFromCOODedupe(t *testing.T) {
	entries := []Coord{{0, 1, 1}, {0, 1, 5}, {1, 0, 2}, {0, 0, 3}}
	a, err := FromCOO(2, 2, entries, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 3 {
		t.Fatalf("nnz = %d want 3 after dedupe", a.NNZ())
	}
	// Duplicate (0,1) keeps the last value.
	found := false
	for p := a.Ptr[0]; p < a.Ptr[1]; p++ {
		if a.Idx[p] == 1 {
			found = true
			if a.Val[p] != 5 {
				t.Fatalf("dedupe kept value %v want 5", a.Val[p])
			}
		}
	}
	if !found {
		t.Fatal("entry (0,1) missing")
	}
}

func TestFromCOORejectsOutOfRange(t *testing.T) {
	if _, err := FromCOO(2, 2, []Coord{{5, 0, 0}}, false); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	if _, err := FromCOO(2, 2, []Coord{{0, -1, 0}}, false); err == nil {
		t.Fatal("negative column accepted")
	}
}

func TestFromCOOSortedRows(t *testing.T) {
	a := randomCSR(1, 50, 60, 400)
	if !a.HasSortedRows() {
		t.Fatal("FromCOO output not sorted")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64, r8, c8 uint8, n16 uint16) bool {
		rows := int(r8)%40 + 1
		cols := int(c8)%40 + 1
		nnz := int(n16) % (rows * cols)
		a := randomCSR(seed, rows, cols, nnz)
		tt := a.Transpose().Transpose()
		return a.Equal(tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposePreservesEdges(t *testing.T) {
	a := randomCSR(7, 30, 40, 200)
	at := a.Transpose()
	if at.RowsN != a.ColsN || at.ColsN != a.RowsN || at.NNZ() != a.NNZ() {
		t.Fatal("transpose shape/nnz mismatch")
	}
	// Every edge must appear transposed.
	edges := map[[2]int32]bool{}
	for _, c := range a.ToCOO() {
		edges[[2]int32{c.I, c.J}] = true
	}
	for _, c := range at.ToCOO() {
		if !edges[[2]int32{c.J, c.I}] {
			t.Fatalf("edge (%d,%d) in transpose but (%d,%d) not in original", c.I, c.J, c.J, c.I)
		}
	}
}

func TestTransposeWeighted(t *testing.T) {
	a, err := FromCOO(2, 3, []Coord{{0, 1, 2.5}, {1, 0, -1}, {1, 2, 7}}, true)
	if err != nil {
		t.Fatal(err)
	}
	at := a.Transpose()
	for _, c := range at.ToCOO() {
		var want float64
		for _, o := range a.ToCOO() {
			if o.I == c.J && o.J == c.I {
				want = o.V
			}
		}
		if c.V != want {
			t.Fatalf("transposed value (%d,%d)=%v want %v", c.I, c.J, c.V, want)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	a := randomCSR(3, 10, 10, 30)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone differs")
	}
	b.Idx[0] = (b.Idx[0] + 1) % int32(b.ColsN)
	if a.Equal(b) && a.Idx[0] == b.Idx[0] {
		t.Fatal("clone shares storage")
	}
}

func TestSortRows(t *testing.T) {
	a := &CSR{RowsN: 2, ColsN: 5, Ptr: []int{0, 3, 5}, Idx: []int32{4, 0, 2, 3, 1}}
	a.SortRows()
	if !a.HasSortedRows() {
		t.Fatalf("rows not sorted: %v", a.Idx)
	}
}

func TestSortRowsWeighted(t *testing.T) {
	a := &CSR{RowsN: 1, ColsN: 4, Ptr: []int{0, 3}, Idx: []int32{3, 0, 2}, Val: []float64{30, 0, 20}}
	a.SortRows()
	want := []int32{0, 2, 3}
	wantV := []float64{0, 20, 30}
	for k := range want {
		if a.Idx[k] != want[k] || a.Val[k] != wantV[k] {
			t.Fatalf("sorted row = %v / %v", a.Idx, a.Val)
		}
	}
}

func TestDegreeStats(t *testing.T) {
	a := FromDense([][]int{
		{1, 1, 1, 1},
		{1, 0, 0, 0},
		{0, 0, 0, 0},
	})
	if a.Degree(0) != 4 || a.Degree(1) != 1 || a.Degree(2) != 0 {
		t.Fatal("degrees wrong")
	}
	if a.MaxDegree() != 4 {
		t.Fatal("max degree wrong")
	}
	if a.EmptyRows() != 1 {
		t.Fatal("empty rows wrong")
	}
	if got := a.AvgDegree(); got != 5.0/3.0 {
		t.Fatalf("avg degree %v", got)
	}
	if a.DegreeVariance() <= 0 {
		t.Fatal("variance should be positive for skewed degrees")
	}
}

func TestPermuteRows(t *testing.T) {
	a := FromDense([][]int{
		{1, 0, 0},
		{0, 1, 0},
		{0, 0, 1},
	})
	b, err := a.PermuteRows([]int32{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := FromDense([][]int{
		{0, 0, 1},
		{1, 0, 0},
		{0, 1, 0},
	})
	if !b.Equal(want) {
		t.Fatalf("permuted:\n%v\nwant:\n%v", b, want)
	}
	if _, err := a.PermuteRows([]int32{0}); err == nil {
		t.Fatal("bad perm length accepted")
	}
}

func TestPermuteCols(t *testing.T) {
	a := FromDense([][]int{
		{1, 1, 0},
		{0, 0, 1},
	})
	// old column j -> perm[j]: 0->2, 1->0, 2->1
	b, err := a.PermuteCols([]int32{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := FromDense([][]int{
		{1, 0, 1},
		{0, 1, 0},
	})
	if !b.Equal(want) {
		t.Fatalf("permuted:\n%v\nwant:\n%v", b, want)
	}
	if _, err := a.PermuteCols([]int32{0}); err == nil {
		t.Fatal("bad perm length accepted")
	}
}

func TestPermutationRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		a := randomCSR(seed, 20, 20, 80)
		p := rng.Perm(20)
		inv := make([]int32, 20)
		for i, v := range p {
			inv[v] = int32(i)
		}
		b, err := a.PermuteRows(p)
		if err != nil {
			return false
		}
		c, err := b.PermuteRows(inv)
		if err != nil {
			return false
		}
		return c.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	a := FromDense([][]int{{1, 0}, {0, 1}})
	s := a.String()
	if !strings.Contains(s, "1.") || !strings.Contains(s, ".1") {
		t.Fatalf("unexpected rendering:\n%s", s)
	}
	big := randomCSR(1, 100, 100, 10)
	if !strings.Contains(big.String(), "nnz=") {
		t.Fatal("large matrix should summarize")
	}
}

func TestToCOORoundTrip(t *testing.T) {
	a := randomCSR(9, 25, 35, 120)
	b, err := FromCOO(25, 35, a.ToCOO(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("COO round trip changed matrix")
	}
}

func TestRowValNilForPattern(t *testing.T) {
	a := randomCSR(2, 5, 5, 5)
	if a.RowVal(0) != nil {
		t.Fatal("pattern matrix should have nil RowVal")
	}
}
