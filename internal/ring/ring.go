// Package ring implements the consistent-hash ring that shards the
// cluster's graph registry across matchserve replicas: 64-bit hashed
// virtual nodes give each replica many small arcs of the key space,
// bounded-load placement keeps any one replica from owning more than a
// configurable factor of its fair share, and every placement decision is
// a pure function of the (membership, key set) pair — never of insertion
// order, map iteration, or wall clock — so two routers (or one router
// restarted) that see the same members and keys agree on every owner.
//
// Rebalancing is deterministic and minimal by construction: assignments
// are recomputed by walking the keys in sorted order from each key's own
// ring position, so a membership change moves only the keys whose arc
// changed hands (plus the few that spill when the capacity bound shifts)
// — on an N→N+1 change roughly K/(N+1) of K keys, never a full reshuffle.
package ring

import (
	"fmt"
	"math"
	"sort"
)

// Defaults for New when the caller passes zero values.
const (
	// DefaultVNodes is the virtual-node count per member: 64 arcs smooth
	// the per-member share to within a few percent of fair while keeping
	// the point array small enough to rebuild on every membership change.
	DefaultVNodes = 64
	// DefaultLoadFactor bounds any member's key count at 1.25× its fair
	// share ceil(K/N) — the classic consistent-hashing-with-bounded-loads
	// factor: tight enough that one hot arc cannot absorb the registry,
	// loose enough that placements rarely spill past their first choice.
	DefaultLoadFactor = 1.25
)

// hash64 hashes s with 64-bit FNV-1a and finishes with a full-avalanche
// mix. The combination is stable across processes, Go versions and
// architectures, which is what makes ring placement restart-deterministic
// (hash/maphash trades that away for seeds). The finalizer matters: raw
// FNV diffuses a trailing-byte change weakly into the high bits that
// dominate ring ordering, so the near-identical "node#0".."node#63" vnode
// names would otherwise collapse into a few giant arcs.
func hash64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	// MurmurHash3 fmix64.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// point is one virtual node: a position on the 64-bit ring owned by a
// member. Points sort by (hash, node) so even a hash collision between
// two members' vnodes resolves the same way everywhere.
type point struct {
	hash uint64
	node string
}

// Ring is the sharding state: the current membership's vnode points plus
// the deterministic key→member assignment. It is not goroutine-safe; the
// router guards it with its own mutex.
type Ring struct {
	vnodes int
	factor float64

	nodes  map[string]bool
	points []point

	keys   map[string]bool
	assign map[string]string // key → owning node, rebuilt by rebalance
	moved  int               // keys whose owner changed on the last rebalance
}

// New returns an empty ring. vnodes <= 0 and factor <= 1 fall back to the
// defaults.
func New(vnodes int, factor float64) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if factor <= 1 {
		factor = DefaultLoadFactor
	}
	return &Ring{
		vnodes: vnodes,
		factor: factor,
		nodes:  make(map[string]bool),
		keys:   make(map[string]bool),
		assign: make(map[string]string),
	}
}

// AddNode adds a member and rebalances. Adding a present member is a
// no-op. Returns the number of keys whose owner changed.
func (r *Ring) AddNode(node string) int {
	if r.nodes[node] {
		return 0
	}
	r.nodes[node] = true
	r.rebuildPoints()
	return r.rebalance()
}

// RemoveNode removes a member and rebalances; its keys are reassigned to
// the surviving members. Removing an absent member is a no-op. Returns
// the number of keys whose owner changed.
func (r *Ring) RemoveNode(node string) int {
	if !r.nodes[node] {
		return 0
	}
	delete(r.nodes, node)
	r.rebuildPoints()
	return r.rebalance()
}

// Has reports whether node is a current member.
func (r *Ring) Has(node string) bool { return r.nodes[node] }

// Nodes returns the membership, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AddKey registers a key and returns its owner. The whole assignment is
// recomputed by the deterministic sorted-order walk, so the resulting
// placement is a pure function of the (membership, key set) pair — the
// same keys added in any order, on any router, land identically (the
// determinism tests pin this; K stays registry-sized, so the O(K log V)
// rebuild is cheap). Adding a present key returns its current owner
// unchanged. With no members the key is parked unassigned ("") and
// placed by the next membership change.
func (r *Ring) AddKey(key string) string {
	if r.keys[key] {
		return r.assign[key]
	}
	r.keys[key] = true
	if len(r.nodes) == 0 {
		r.assign[key] = ""
		return ""
	}
	r.rebalance()
	return r.assign[key]
}

// RemoveKey drops a key. Remaining assignments are untouched — removing
// load never forces a move.
func (r *Ring) RemoveKey(key string) {
	if !r.keys[key] {
		return
	}
	delete(r.keys, key)
	delete(r.assign, key)
}

// Owner returns key's assigned member, or "" when the key is unknown or
// the ring is empty. Unregistered keys get no implicit placement —
// Locate gives the membership walk for those.
func (r *Ring) Owner(key string) string { return r.assign[key] }

// Locate returns the unbounded first-choice member for an arbitrary key
// (the plain consistent-hash walk, ignoring load), or "" on an empty
// ring. Useful for stateless spreading of keys that are not registry
// entries, e.g. inline one-shot requests.
func (r *Ring) Locate(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(hash64(key))].node
}

// Keys returns the number of registered keys.
func (r *Ring) Keys() int { return len(r.keys) }

// Moved returns how many keys changed owner on the most recent
// rebalance — the number the rebalancing tests bound.
func (r *Ring) Moved() int { return r.moved }

// Assignments returns a copy of the key→owner map.
func (r *Ring) Assignments() map[string]string {
	out := make(map[string]string, len(r.assign))
	for k, v := range r.assign {
		out[k] = v
	}
	return out
}

// Loads returns the per-member key counts.
func (r *Ring) Loads() map[string]int {
	out := make(map[string]int, len(r.nodes))
	for n := range r.nodes {
		out[n] = 0
	}
	for _, n := range r.assign {
		if n != "" {
			out[n]++
		}
	}
	return out
}

// Capacity returns the current bounded-load ceiling per member:
// ceil(factor · K / N), at least 1. Zero members means zero capacity.
func (r *Ring) Capacity() int {
	n := len(r.nodes)
	if n == 0 {
		return 0
	}
	c := int(math.Ceil(r.factor * float64(len(r.keys)) / float64(n)))
	if c < 1 {
		c = 1
	}
	return c
}

// rebuildPoints recomputes the vnode point array from the membership.
// Vnode v of node n hashes "n#v"; the array sorts by (hash, node).
func (r *Ring) rebuildPoints() {
	r.points = r.points[:0]
	for n := range r.nodes {
		for v := 0; v < r.vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// search returns the index of the first point at or clockwise of hash,
// wrapping past the top of the ring.
func (r *Ring) search(hash uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hash })
	if i == len(r.points) {
		return 0
	}
	return i
}

// rebalance recomputes the whole assignment deterministically: keys in
// sorted order, each walking the ring from its own hash to the first
// member below the bounded-load capacity. Keys whose walk lands on their
// current owner stay put, which is what keeps membership changes minimal;
// the sorted order makes the spill decisions identical on every router
// and restart. Returns (and records) how many keys changed owner.
func (r *Ring) rebalance() int {
	if len(r.nodes) == 0 {
		moved := 0
		for k := range r.assign {
			if r.assign[k] != "" {
				moved++
			}
			r.assign[k] = ""
		}
		r.moved = moved
		return moved
	}
	keys := make([]string, 0, len(r.keys))
	for k := range r.keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	capacity := r.Capacity()
	loads := make(map[string]int, len(r.nodes))
	next := make(map[string]string, len(keys))
	moved := 0
	for _, k := range keys {
		start := r.search(hash64(k))
		owner := ""
		for off := 0; off < len(r.points); off++ {
			n := r.points[(start+off)%len(r.points)].node
			if loads[n] < capacity {
				owner = n
				break
			}
		}
		if owner == "" {
			// Every member at capacity can only happen transiently (capacity
			// is ≥ K/N by construction); fall back to the unbounded walk
			// rather than leaving the key unowned.
			owner = r.points[start].node
		}
		loads[owner]++
		next[k] = owner
		if r.assign[k] != owner {
			moved++
		}
	}
	r.assign = next
	r.moved = moved
	return moved
}
