package ring

import (
	"fmt"
	"math"
	"testing"
)

// seededKeys returns K deterministic graph-id-shaped keys.
func seededKeys(k int) []string {
	keys := make([]string, k)
	for i := range keys {
		keys[i] = fmt.Sprintf("c%d", i+1)
	}
	return keys
}

func buildRing(t *testing.T, nodes []string, keys []string) *Ring {
	t.Helper()
	r := New(0, 0)
	for _, n := range nodes {
		r.AddNode(n)
	}
	for _, k := range keys {
		if owner := r.AddKey(k); owner == "" {
			t.Fatalf("key %s left unassigned", k)
		}
	}
	return r
}

func nodeNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("replica-%d", i)
	}
	return names
}

// countMoved compares two assignment snapshots.
func countMoved(before, after map[string]string) int {
	moved := 0
	for k, owner := range before {
		if after[k] != owner {
			moved++
		}
	}
	return moved
}

// TestRingRebalanceBound is the satellite gate: on replica add/remove the
// number of reassigned keys is bounded by ceil(K/N) plus vnode slack —
// a membership change must never reshuffle the registry.
func TestRingRebalanceBound(t *testing.T) {
	const K = 240
	keys := seededKeys(K)
	for _, n := range []int{2, 3, 4, 6} {
		r := buildRing(t, nodeNames(n), keys)
		fair := int(math.Ceil(float64(K) / float64(n)))
		// Vnode slack: bounded-load spills and arc jitter move a few keys
		// beyond the fair share on top of the arc that changed hands.
		slack := K / 10

		before := r.Assignments()
		added := fmt.Sprintf("replica-%d", n)
		moved := r.AddNode(added)
		if got := countMoved(before, r.Assignments()); got != moved {
			t.Fatalf("N=%d add: Moved()=%d but snapshots differ by %d", n, moved, got)
		}
		if moved > fair+slack {
			t.Errorf("N=%d->%d add moved %d keys, want <= ceil(K/N)+slack = %d",
				n, n+1, moved, fair+slack)
		}
		// The new replica must actually take ownership of an arc.
		if r.Loads()[added] == 0 {
			t.Errorf("N=%d add: new replica owns no keys", n)
		}

		before = r.Assignments()
		lost := before
		moved = r.RemoveNode(added)
		// Removing the replica must move exactly the keys it owned, plus
		// bounded spill when the capacity ceiling shifts.
		owned := 0
		for _, o := range lost {
			if o == added {
				owned++
			}
		}
		if moved < owned {
			t.Errorf("N=%d remove moved %d keys, but the removed replica owned %d", n, moved, owned)
		}
		if moved > owned+slack {
			t.Errorf("N=%d remove moved %d keys, want <= owned(%d)+slack(%d)", n, moved, owned, slack)
		}
	}
}

// TestRingPlacementDeterministic pins the restart/width invariance: the
// assignment is a pure function of (membership, key set), independent of
// the order nodes and keys were added — so two router processes (or one
// restarted) agree on every owner.
func TestRingPlacementDeterministic(t *testing.T) {
	keys := seededKeys(120)
	nodes := nodeNames(3)

	a := buildRing(t, nodes, keys)

	// Reversed insertion order, nodes interleaved after some keys.
	b := New(0, 0)
	for i := len(keys) - 1; i >= len(keys)/2; i-- {
		b.AddKey(keys[i])
	}
	for _, n := range nodes {
		b.AddNode(n)
	}
	for i := len(keys)/2 - 1; i >= 0; i-- {
		b.AddKey(keys[i])
	}

	ab, bb := a.Assignments(), b.Assignments()
	if len(ab) != len(bb) {
		t.Fatalf("assignment sizes differ: %d vs %d", len(ab), len(bb))
	}
	for k, owner := range ab {
		if bb[k] != owner {
			t.Fatalf("key %s: owner %q vs %q under different insertion orders", k, owner, bb[k])
		}
	}

	// A remove/re-add round trip restores the identical assignment.
	snapshot := a.Assignments()
	a.RemoveNode(nodes[1])
	a.AddNode(nodes[1])
	for k, owner := range snapshot {
		if got := a.Owner(k); got != owner {
			t.Fatalf("key %s: owner %q after re-add, want %q", k, got, owner)
		}
	}
}

// TestRingBoundedLoad pins the bounded-load contract: no member ever owns
// more than ceil(factor·K/N) keys.
func TestRingBoundedLoad(t *testing.T) {
	keys := seededKeys(200)
	for _, n := range []int{1, 2, 3, 5} {
		r := buildRing(t, nodeNames(n), keys)
		capacity := r.Capacity()
		for node, load := range r.Loads() {
			if load > capacity {
				t.Errorf("N=%d: %s owns %d keys beyond capacity %d", n, node, load, capacity)
			}
		}
	}
}

// TestRingEdgeCases covers the empty-membership parking, key removal and
// unknown-key lookups.
func TestRingEdgeCases(t *testing.T) {
	r := New(8, 1.25)
	if got := r.AddKey("orphan"); got != "" {
		t.Fatalf("empty ring assigned %q", got)
	}
	if r.Owner("orphan") != "" || r.Locate("anything") != "" {
		t.Fatal("empty ring must resolve to no owner")
	}
	r.AddNode("a")
	if got := r.Owner("orphan"); got != "a" {
		t.Fatalf("parked key not placed on first member: %q", got)
	}
	if got := r.Locate("anything"); got != "a" {
		t.Fatalf("Locate on 1-node ring: %q", got)
	}
	if r.AddNode("a") != 0 {
		t.Fatal("re-adding a member must be a no-op")
	}
	r.RemoveKey("orphan")
	if r.Owner("orphan") != "" || r.Keys() != 0 {
		t.Fatal("removed key still assigned")
	}
	r.RemoveKey("orphan") // absent: no-op
	if r.RemoveNode("ghost") != 0 {
		t.Fatal("removing an absent member must be a no-op")
	}
	r.RemoveNode("a")
	if len(r.Nodes()) != 0 {
		t.Fatal("membership not empty")
	}
}
