package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the public-domain splitmix64.c.
	r := NewSplitMix64(0)
	want := []uint64{
		0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F,
	}
	for k, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("splitmix64[%d] = %#x want %#x", k, got, w)
		}
	}
}

func TestXoshiroDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds coincided %d/1000 times", same)
	}
}

func TestStreamsAreDecorrelated(t *testing.T) {
	s0, s1 := NewStream(7, 0), NewStream(7, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if s0.Uint64() == s1.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("worker streams coincided %d/1000 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		o := r.Float64Open()
		if o <= 0 || o > 1 {
			t.Fatalf("Float64Open out of (0,1]: %v", o)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(99)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnBoundsAndUniformity(t *testing.T) {
	r := New(5)
	const buckets = 10
	const draws = 100000
	var hist [buckets]int
	for i := 0; i < draws; i++ {
		v := r.Intn(buckets)
		if v < 0 || v >= buckets {
			t.Fatalf("Intn out of range: %d", v)
		}
		hist[v]++
	}
	for b, c := range hist {
		if math.Abs(float64(c)-draws/buckets) > 0.1*draws/buckets {
			t.Fatalf("bucket %d count %d deviates >10%% from %d", b, c, draws/buckets)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnOne(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if r.Intn(1) != 0 {
			t.Fatal("Intn(1) != 0")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, sz uint8) bool {
		n := int(sz)%200 + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || int(v) >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(11)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset sum: %d != %d", got, sum)
	}
}

func TestParetoRespectsMinimum(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(2.0, 1.5); v < 2.0 {
			t.Fatalf("Pareto below minimum: %v", v)
		}
	}
}

func TestExpFloat64Positive(t *testing.T) {
	r := New(17)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1.0) > 0.02 {
		t.Fatalf("ExpFloat64 mean %v too far from 1", mean)
	}
}

func TestMul64MatchesBigMultiplication(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via 32-bit split arithmetic done a second, independent way.
		a0, a1 := a&0xFFFFFFFF, a>>32
		b0, b1 := b&0xFFFFFFFF, b>>32
		lolo := a0 * b0
		mid1 := a1 * b0
		mid2 := a0 * b1
		carry := (lolo>>32 + mid1&0xFFFFFFFF + mid2&0xFFFFFFFF) >> 32
		wantHi := a1*b1 + mid1>>32 + mid2>>32 + carry
		wantLo := a * b
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000003)
	}
	_ = sink
}
