// Package xrand implements small, fast, deterministic pseudo-random number
// generators for the randomized matching heuristics. Each parallel worker
// gets its own independent stream derived from (seed, worker id), so runs
// are reproducible for a fixed seed regardless of scheduling, and there is
// no shared RNG state to contend on.
package xrand

import "math"

// SplitMix64 is the splitmix64 generator of Steele, Lea and Flood. It is
// used both directly and to seed Xoshiro256 streams.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *SplitMix64) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *SplitMix64) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1].
func (r *SplitMix64) Float64Open() float64 {
	return 1.0 - r.Float64()
}

// Intn returns a uniform value in [0, n); it panics if n <= 0.
func (r *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	bound := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			v = r.Uint64()
			hi, lo = mul64(v, bound)
		}
	}
	return int(hi)
}

// Base mixes a user seed into a base value for Indexed streams.
func Base(seed uint64) uint64 {
	return NewSplitMix64(seed).Uint64()
}

// Indexed returns an independent deterministic generator for element i of
// a parallel loop: the stream depends only on (base, i), never on
// scheduling, so parallel randomized loops give identical results for
// every worker count and loop schedule. base should come from Base.
func Indexed(base uint64, i int) SplitMix64 {
	var r SplitMix64
	r.SetIndexed(base, i)
	return r
}

// SetIndexed resets r in place to the stream Indexed(base, i) would
// return. Hot loops hoist one SplitMix64 variable out of the loop and
// reseed it per element, so no fresh generator value has to be
// constructed (or escape to the heap) on every iteration.
func (r *SplitMix64) SetIndexed(base uint64, i int) {
	r.state = base ^ (uint64(i)+1)*0x9E3779B97F4A7C15
}

// Xoshiro256 implements xoshiro256++, a fast all-purpose generator with a
// 2^256-1 period. The zero value is invalid; use New or NewStream.
type Xoshiro256 struct {
	s0, s1, s2, s3 uint64
}

// New returns a Xoshiro256 seeded from seed via splitmix64, as recommended
// by the xoshiro authors.
func New(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	x := &Xoshiro256{s0: sm.Uint64(), s1: sm.Uint64(), s2: sm.Uint64(), s3: sm.Uint64()}
	if x.s0|x.s1|x.s2|x.s3 == 0 {
		x.s0 = 1 // the all-zero state is a fixed point; avoid it
	}
	return x
}

// NewStream returns an independent generator for the given worker id under
// a common base seed. Streams for different ids are decorrelated by mixing
// the id through splitmix64 before seeding.
func NewStream(seed uint64, worker int) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	base := sm.Uint64()
	mix := NewSplitMix64(base ^ (0x9E3779B97F4A7C15 * (uint64(worker) + 1)))
	x := &Xoshiro256{s0: mix.Uint64(), s1: mix.Uint64(), s2: mix.Uint64(), s3: mix.Uint64()}
	if x.s0|x.s1|x.s2|x.s3 == 0 {
		x.s0 = 1
	}
	return x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next pseudo-random 64-bit value.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s0+x.s3, 23) + x.s0
	t := x.s1 << 17
	x.s2 ^= x.s0
	x.s3 ^= x.s1
	x.s1 ^= x.s2
	x.s0 ^= x.s3
	x.s2 ^= t
	x.s3 = rotl(x.s3, 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1]; useful for drawing from
// half-open intervals (0, total] as in the paper's sampling step.
func (x *Xoshiro256) Float64Open() float64 {
	return 1.0 - x.Float64()
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	v := x.Uint64()
	hi, lo := mul64(v, bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			v = x.Uint64()
			hi, lo = mul64(v, bound)
		}
	}
	return int(hi)
}

// Int31n returns a uniform int32 in [0, n).
func (x *Xoshiro256) Int31n(n int32) int32 {
	return int32(x.Intn(int(n)))
}

// Perm returns a random permutation of [0, n) as int32 values.
func (x *Xoshiro256) Perm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using swap, mirroring
// math/rand's API.
func (x *Xoshiro256) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		swap(i, j)
	}
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (x *Xoshiro256) ExpFloat64() float64 {
	return -math.Log(x.Float64Open())
}

// Pareto returns a Pareto(alpha) sample with minimum xm (heavy-tailed
// degree distributions for the power-law generator).
func (x *Xoshiro256) Pareto(xm, alpha float64) float64 {
	return xm / math.Pow(x.Float64Open(), 1.0/alpha)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0 := a & mask32
	a1 := a >> 32
	b0 := b & mask32
	b1 := b >> 32
	t := a1*b0 + (a0*b0)>>32
	lo1 := t & mask32
	hi1 := t >> 32
	lo1 += a0 * b1
	hi = a1*b1 + hi1 + lo1>>32
	lo = a * b
	return hi, lo
}
