package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/par"
)

// TestSessionReuseBitIdentical runs one Session through many seeds and
// rebinds and checks every call reproduces the one-shot functions — bit
// for bit at one worker; by size at parallel widths, where the kernel's
// per-edge pairing is scheduling-dependent (for the one-shot path too).
func TestSessionReuseBitIdentical(t *testing.T) {
	a := gen.ERAvgDeg(1200, 1400, 4, 11)
	b := gen.PowerLaw(900, 2, 1.8, 200, 7) // different shape: forces regrow
	at, bt := a.Transpose(), b.Transpose()

	for _, w := range []int{1, 4} {
		opt := Options{Workers: w, Policy: par.Dynamic, KSPolicy: par.Guided}
		_, scA := scaledSK(t, a, 5)
		_, scB := scaledSK(t, b, 5)

		s := NewSession(a, at, opt)
		s.SetScaling(scA.DR, scA.DC, scA.RSum, scA.CSum)
		for _, seed := range []uint64{1, 7, 7, 42} {
			o := opt
			o.Seed, o.RowTotals, o.ColTotals = seed, scA.RSum, scA.CSum
			want := TwoSided(a, at, scA.DR, scA.DC, o)
			got := s.TwoSided(seed)
			if w == 1 {
				cmpI32s(t, "session match", got.Match[:len(want.Match)], want.Match)
			}
			if got.Matching.Size != want.Matching.Size {
				t.Fatalf("w=%d seed=%d: session size %d one-shot %d",
					w, seed, got.Matching.Size, want.Matching.Size)
			}
		}

		// Rebind to a different graph, then back: buffers are recycled but
		// results must still match fresh runs.
		s.Rebind(b, bt)
		s.SetScaling(scB.DR, scB.DC, scB.RSum, scB.CSum)
		o := opt
		o.Seed, o.RowTotals, o.ColTotals = 3, scB.RSum, scB.CSum
		want := TwoSided(b, bt, scB.DR, scB.DC, o)
		got := s.TwoSided(3)
		if w == 1 {
			cmpI32s(t, "rebound match", got.Match[:len(want.Match)], want.Match)
		}
		if got.Matching.Size != want.Matching.Size {
			t.Fatalf("w=%d rebound: session size %d one-shot %d",
				w, got.Matching.Size, want.Matching.Size)
		}

		// OneSided at one worker is fully deterministic: compare cmatch.
		if w == 1 {
			s.Rebind(a, at)
			s.SetScaling(scA.DR, scA.DC, scA.RSum, scA.CSum)
			o := opt
			o.Seed, o.RowTotals = 9, scA.RSum
			wantC, wantSize := OneSided(a, scA.DR, scA.DC, o)
			gotC, gotSize := s.OneSided(9)
			cmpI32s(t, "session cmatch", gotC[:len(wantC)], wantC)
			if gotSize != wantSize {
				t.Fatalf("one-sided size %d want %d", gotSize, wantSize)
			}
			mt, _ := s.OneSidedMatching(9)
			if mt.Size != wantSize {
				t.Fatalf("decoded one-sided size %d want %d", mt.Size, wantSize)
			}
		}
	}
}
