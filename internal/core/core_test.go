package core

import (
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/scale"
	"repro/internal/sparse"
)

func opts(workers int, seed uint64) Options {
	return Options{Workers: workers, Policy: par.Dynamic, Chunk: 64, KSPolicy: par.Guided, Seed: seed}
}

func scaled(t testing.TB, a *sparse.CSR, iters int) (*sparse.CSR, []float64, []float64) {
	t.Helper()
	at := a.Transpose()
	res, err := scale.SinkhornKnopp(a, at, scale.Options{MaxIters: iters, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return at, res.DR, res.DC
}

// componentCycleCount verifies Lemma 1: each connected component of the
// choice graph has at most one simple cycle, i.e. edges <= vertices.
func componentCycleCount(t *testing.T, g *ChoiceGraph) {
	t.Helper()
	nm := g.N + g.M
	// Union-find over the undirected choice edges.
	parent := make([]int32, nm)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) { parent[find(a)] = find(b) }

	type edge struct{ u, v int32 }
	seen := map[edge]bool{}
	var edges []edge
	for u := 0; u < nm; u++ {
		v := g.Choice[u]
		if int(v) == u {
			continue
		}
		a, b := int32(u), v
		if a > b {
			a, b = b, a
		}
		if !seen[edge{a, b}] {
			seen[edge{a, b}] = true
			edges = append(edges, edge{a, b})
		}
	}
	for _, e := range edges {
		union(e.u, e.v)
	}
	vcount := map[int32]int{}
	ecount := map[int32]int{}
	for u := 0; u < nm; u++ {
		vcount[find(int32(u))]++
	}
	for _, e := range edges {
		ecount[find(e.u)]++
	}
	for root, ec := range ecount {
		if ec > vcount[root] {
			t.Fatalf("component of %d has %d edges > %d vertices (more than one cycle)",
				root, ec, vcount[root])
		}
	}
}

func TestChoiceGraphLemma1(t *testing.T) {
	f := func(seed uint64, d uint8) bool {
		a := gen.ERAvgDeg(300, 300, float64(d%5)+1, seed)
		at, dr, dc := scaled(t, a, 3)
		o := opts(4, seed+1)
		r := SampleRowChoices(a, dr, dc, o)
		c := SampleColChoices(at, dr, dc, o)
		g := NewChoiceGraph(a.RowsN, a.ColsN, r, c)
		componentCycleCount(t, g)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleRowChoicesValidity(t *testing.T) {
	a := gen.ERAvgDeg(500, 400, 4, 3)
	at, dr, dc := scaled(t, a, 2)
	r := SampleRowChoices(a, dr, dc, opts(3, 7))
	if len(r) != a.RowsN {
		t.Fatal("length mismatch")
	}
	for i, j := range r {
		if a.Degree(i) == 0 {
			if j != NIL {
				t.Fatalf("empty row %d chose %d", i, j)
			}
			continue
		}
		found := false
		for _, c := range a.Row(i) {
			if c == j {
				found = true
			}
		}
		if !found {
			t.Fatalf("row %d chose non-neighbor %d", i, j)
		}
	}
	c := SampleColChoices(at, dr, dc, opts(3, 7))
	for j, i := range c {
		if at.Degree(j) == 0 {
			if i != NIL {
				t.Fatalf("empty col %d chose %d", j, i)
			}
			continue
		}
		found := false
		for _, rr := range at.Row(j) {
			if rr == i {
				found = true
			}
		}
		if !found {
			t.Fatalf("col %d chose non-neighbor %d", j, i)
		}
	}
}

func TestSamplingDeterministicAcrossWorkerCounts(t *testing.T) {
	a := gen.ERAvgDeg(1000, 1000, 4, 5)
	_, dr, dc := scaled(t, a, 2)
	base := SampleRowChoices(a, dr, dc, opts(1, 99))
	for _, w := range []int{2, 4, 8} {
		got := SampleRowChoices(a, dr, dc, opts(w, 99))
		for i := range base {
			if base[i] != got[i] {
				t.Fatalf("row %d choice differs between 1 and %d workers", i, w)
			}
		}
	}
}

func TestSamplingFollowsScaledDistribution(t *testing.T) {
	// One row with extreme scaling skew: dc = (1, epsilon). The row must
	// almost always choose column 0.
	a := sparse.FromDense([][]int{{1, 1}})
	dr := []float64{1}
	dc := []float64{1, 1e-9}
	count0 := 0
	for s := uint64(0); s < 200; s++ {
		o := opts(1, s+1)
		r := SampleRowChoices(a, dr, dc, o)
		if r[0] == 0 {
			count0++
		}
	}
	if count0 < 199 {
		t.Fatalf("skewed sampling chose col 0 only %d/200 times", count0)
	}
}

func TestSamplingUniformWithoutScaling(t *testing.T) {
	// Without scaling vectors the choice is uniform over the row.
	a := sparse.FromDense([][]int{{1, 1, 1, 1}})
	counts := make([]int, 4)
	for s := uint64(0); s < 4000; s++ {
		r := SampleRowChoices(a, nil, nil, opts(1, s+1))
		counts[r[0]]++
	}
	for j, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("column %d chosen %d/4000 times; expected ≈1000", j, c)
		}
	}
}

// --- KarpSipserMT ----------------------------------------------------------

// handGraph builds a ChoiceGraph directly from rchoice/cchoice.
func handGraph(n, m int, rchoice, cchoice []int32) *ChoiceGraph {
	return NewChoiceGraph(n, m, rchoice, cchoice)
}

func ksSize(g *ChoiceGraph, workers int) int {
	match := KarpSipserMT(g, opts(workers, 1))
	return DecodeMatch(g, match).Size
}

func TestKarpSipserMTTwoClique(t *testing.T) {
	// Row 0 and column 0 choose each other: one matched pair.
	g := handGraph(1, 1, []int32{0}, []int32{0})
	if got := ksSize(g, 1); got != 1 {
		t.Fatalf("2-clique matched %d want 1", got)
	}
}

func TestKarpSipserMTChain(t *testing.T) {
	// r0->c0, c0->r1, r1->c1, c1->r2, r2->c2, c2->r2? Build a path:
	// rchoice = [0,1,2], cchoice = [1,2,2]. Edges: (r0,c0),(r1,c0),(r1,c1),
	// (r2,c1),(r2,c2) — a path with 6 vertices, maximum matching 3.
	g := handGraph(3, 3, []int32{0, 1, 2}, []int32{1, 2, 2})
	want := exact.HopcroftKarp(g.ToCSR(), nil).Size
	if got := ksSize(g, 1); got != want {
		t.Fatalf("chain matched %d want %d", got, want)
	}
}

func TestKarpSipserMTCycle(t *testing.T) {
	// 4-cycle: r0->c0, c0->r1, r1->c1, c1->r0. Max matching 2.
	g := handGraph(2, 2, []int32{0, 1}, []int32{1, 0}) // cchoice[j]=row chosen by col j
	if got := ksSize(g, 1); got != 2 {
		t.Fatalf("cycle matched %d want 2", got)
	}
}

func TestKarpSipserMTIsolated(t *testing.T) {
	g := handGraph(2, 2, []int32{0, NIL}, []int32{0, NIL})
	if got := ksSize(g, 1); got != 1 {
		t.Fatalf("isolated handling matched %d want 1", got)
	}
}

// TestKarpSipserMTExactness is the central property test: on 1-out graphs
// built by TwoSidedMatch sampling, KarpSipserMT must equal Hopcroft–Karp
// (Lemmas 1–3 made executable), for every worker count.
func TestKarpSipserMTExactness(t *testing.T) {
	workersList := []int{1, 2, 4, 8}
	for seed := uint64(1); seed <= 30; seed++ {
		n := 100 + int(seed)*37
		a := gen.ERAvgDeg(n, n, float64(seed%5+1), seed)
		at, dr, dc := scaled(t, a, 2)
		o := opts(2, seed)
		r := SampleRowChoices(a, dr, dc, o)
		c := SampleColChoices(at, dr, dc, o)
		g := NewChoiceGraph(a.RowsN, a.ColsN, r, c)
		want := exact.HopcroftKarp(g.ToCSR(), nil).Size
		for _, w := range workersList {
			got := ksSize(g, w)
			if got != want {
				t.Fatalf("seed %d workers %d: KarpSipserMT %d != HopcroftKarp %d",
					seed, w, got, want)
			}
		}
	}
}

func TestKarpSipserMTExactnessQuick(t *testing.T) {
	f := func(seed uint64, d uint8, w uint8) bool {
		a := gen.ERAvgDeg(200, 200, float64(d%6)+1, seed)
		at, dr, dc := scaled(t, a, 1)
		o := opts(int(w)%4+1, seed^0xABCDEF)
		r := SampleRowChoices(a, dr, dc, o)
		c := SampleColChoices(at, dr, dc, o)
		g := NewChoiceGraph(a.RowsN, a.ColsN, r, c)
		want := exact.HopcroftKarp(g.ToCSR(), nil).Size
		return ksSize(g, int(w)%4+1) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKarpSipserMTMatchingIsValid(t *testing.T) {
	a := gen.ERAvgDeg(800, 700, 3, 13)
	at, dr, dc := scaled(t, a, 2)
	o := opts(8, 21)
	r := SampleRowChoices(a, dr, dc, o)
	c := SampleColChoices(at, dr, dc, o)
	g := NewChoiceGraph(a.RowsN, a.ColsN, r, c)
	match := KarpSipserMT(g, o)
	// Mutual consistency over all vertices.
	for u, v := range match {
		if v == NIL {
			continue
		}
		if match[v] != int32(u) {
			t.Fatalf("match[%d]=%d but match[%d]=%d", u, v, v, match[v])
		}
		// Matched pairs must be choice edges.
		if g.Choice[u] != v && g.Choice[v] != int32(u) {
			t.Fatalf("pair (%d,%d) is not a choice edge", u, v)
		}
		// Bipartiteness: one endpoint per side.
		uRow := u < g.N
		vRow := int(v) < g.N
		if uRow == vRow {
			t.Fatalf("pair (%d,%d) within one side", u, v)
		}
	}
	mt := DecodeMatch(g, match)
	if mt.Size == 0 {
		t.Fatal("empty matching on dense-enough graph")
	}
}

func TestKarpSipserMTAdversarialChoices(t *testing.T) {
	// Many columns pointing at one row and vice versa: the kernel must
	// still terminate with a valid matching for any worker count.
	n, m := 50, 50
	r := make([]int32, n)
	c := make([]int32, m)
	for i := range r {
		r[i] = 0 // every row chooses column 0
	}
	for j := range c {
		c[j] = 1 // every column chooses row 1
	}
	g := handGraph(n, m, r, c)
	for _, w := range []int{1, 2, 4} {
		match := KarpSipserMT(g, opts(w, 5))
		for u, v := range match {
			if v != NIL && match[v] != int32(u) {
				t.Fatalf("workers %d: inconsistent match", w)
			}
		}
		mt := DecodeMatch(g, match)
		want := exact.HopcroftKarp(g.ToCSR(), nil).Size
		if mt.Size != want {
			t.Fatalf("workers %d: star graph matched %d want %d", w, mt.Size, want)
		}
	}
}

// --- OneSided / TwoSided ----------------------------------------------------

func TestOneSidedValidMatching(t *testing.T) {
	a := gen.ERAvgDeg(600, 500, 4, 3)
	_, dr, dc := scaled(t, a, 5)
	cmatch, size := OneSided(a, dr, dc, opts(4, 17))
	if len(cmatch) != a.ColsN {
		t.Fatal("cmatch length")
	}
	rowUsed := map[int32]bool{}
	count := 0
	for j, i := range cmatch {
		if i == NIL {
			continue
		}
		count++
		if rowUsed[i] {
			t.Fatalf("row %d matched to multiple columns", i)
		}
		rowUsed[i] = true
		found := false
		for _, c := range a.Row(int(i)) {
			if int(c) == j {
				found = true
			}
		}
		if !found {
			t.Fatalf("cmatch pair (%d,%d) is not an edge", i, j)
		}
	}
	if count != size {
		t.Fatalf("size %d but %d slots filled", size, count)
	}
}

func TestOneSidedGuaranteeOnFullMatrix(t *testing.T) {
	// On the all-ones matrix the bound is essentially tight: expected
	// matched fraction -> 1 - 1/e ≈ 0.632. Check a generous window.
	n := 4000
	a := gen.Full(n)
	_, dr, dc := scaled(t, a, 1)
	_, size := OneSided(a, dr, dc, opts(4, 7))
	frac := float64(size) / float64(n)
	if frac < 0.61 || frac > 0.66 {
		t.Fatalf("full-matrix one-sided fraction %v want ≈0.632", frac)
	}
}

func TestOneSidedBeatsGuaranteeOnTotalSupport(t *testing.T) {
	for _, extras := range []int{1, 2, 4} {
		a := gen.FullyIndecomposable(3000, extras, uint64(extras))
		_, dr, dc := scaled(t, a, 10)
		worst := 1.0
		for seed := uint64(1); seed <= 3; seed++ {
			_, size := OneSided(a, dr, dc, opts(4, seed))
			if q := float64(size) / 3000.0; q < worst {
				worst = q
			}
		}
		if worst < 0.632 {
			t.Fatalf("extras=%d: one-sided quality %v below the 0.632 guarantee", extras, worst)
		}
	}
}

func TestTwoSidedConjectureOnTotalSupport(t *testing.T) {
	for _, extras := range []int{1, 2, 4} {
		a := gen.FullyIndecomposable(3000, extras, uint64(100+extras))
		at, dr, dc := scaled(t, a, 10)
		worst := 1.0
		for seed := uint64(1); seed <= 3; seed++ {
			res := TwoSided(a, at, dr, dc, opts(4, seed))
			if q := float64(res.Matching.Size) / 3000.0; q < worst {
				worst = q
			}
		}
		if worst < 0.86 {
			t.Fatalf("extras=%d: two-sided quality %v below the 0.866 conjecture", extras, worst)
		}
	}
}

func TestTwoSidedOnFullMatrixMatchesConjecture(t *testing.T) {
	// The supporting evidence for Conjecture 1: on the all-ones matrix
	// the 1-out graph's maximum matching is ≈ 2(1-ρ)n ≈ 0.866n.
	n := 4000
	a := gen.Full(n)
	at, dr, dc := scaled(t, a, 1)
	res := TwoSided(a, at, dr, dc, opts(4, 11))
	frac := float64(res.Matching.Size) / float64(n)
	if frac < 0.85 || frac > 0.885 {
		t.Fatalf("full-matrix two-sided fraction %v want ≈0.866", frac)
	}
}

func TestTwoSidedMatchingValid(t *testing.T) {
	a := gen.ERAvgDeg(700, 800, 3, 31)
	at, dr, dc := scaled(t, a, 3)
	res := TwoSided(a, at, dr, dc, opts(6, 3))
	mt := res.Matching
	for i, j := range mt.RowMate {
		if j == NIL {
			continue
		}
		if mt.ColMate[j] != int32(i) {
			t.Fatalf("inconsistent pair (%d,%d)", i, j)
		}
		found := false
		for _, c := range a.Row(i) {
			if c == j {
				found = true
			}
		}
		if !found {
			t.Fatalf("matched non-edge (%d,%d)", i, j)
		}
	}
}

func TestTwoSidedSizeDeterministicAcrossWorkers(t *testing.T) {
	a := gen.ERAvgDeg(1000, 1000, 4, 41)
	at, dr, dc := scaled(t, a, 2)
	sizes := map[int]bool{}
	for _, w := range []int{1, 2, 4, 8} {
		res := TwoSided(a, at, dr, dc, opts(w, 55))
		sizes[res.Matching.Size] = true
	}
	if len(sizes) != 1 {
		t.Fatalf("matching size varies with worker count: %v", sizes)
	}
}

func TestTwoSidedBetterThanOneSided(t *testing.T) {
	// On total-support instances two-sided should dominate one-sided
	// (0.866 vs 0.632 asymptotics).
	a := gen.FullyIndecomposable(5000, 2, 61)
	at, dr, dc := scaled(t, a, 5)
	_, oneSize := OneSided(a, dr, dc, opts(4, 5))
	res := TwoSided(a, at, dr, dc, opts(4, 5))
	if res.Matching.Size <= oneSize {
		t.Fatalf("two-sided %d not better than one-sided %d", res.Matching.Size, oneSize)
	}
}

func TestChoiceGraphToCSR(t *testing.T) {
	g := handGraph(2, 2, []int32{0, 1}, []int32{1, 0})
	a := g.ToCSR()
	if a.RowsN != 2 || a.ColsN != 2 {
		t.Fatal("shape")
	}
	// Edges: (0,0),(1,1) from rows; cchoice c0->r1 => (1,0), c1->r0 => (0,1).
	if a.NNZ() != 4 {
		t.Fatalf("nnz %d want 4", a.NNZ())
	}
}

func TestCMatchToMatching(t *testing.T) {
	cm := []int32{2, NIL, 0}
	mt := CMatchToMatching(3, cm)
	if mt.Size != 2 || mt.RowMate[2] != 0 || mt.RowMate[0] != 2 {
		t.Fatalf("decode wrong: %+v", mt)
	}
}

func TestEmptyMatrixHeuristics(t *testing.T) {
	a, _ := sparse.FromCOO(10, 10, nil, false)
	at := a.Transpose()
	cmatch, size := OneSided(a, nil, nil, opts(2, 1))
	if size != 0 {
		t.Fatal("one-sided matched on empty matrix")
	}
	for _, v := range cmatch {
		if v != NIL {
			t.Fatal("cmatch not NIL on empty matrix")
		}
	}
	res := TwoSided(a, at, nil, nil, opts(2, 1))
	if res.Matching.Size != 0 {
		t.Fatal("two-sided matched on empty matrix")
	}
}
