package core

import (
	"repro/internal/buf"
	"repro/internal/exact"
	"repro/internal/par"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// Session is the reusable-workspace form of the matching pipeline: it is
// bound to one matrix (and its transpose) and owns every buffer the
// OneSided and TwoSided kernels touch — choice arrays, the ChoiceGraph,
// the match/mark/deg arrays of Algorithm 4, the cmatch array and the
// decoded matching — plus the parallel loop bodies themselves, built once
// at construction. Repeated calls therefore perform no steady-state
// allocations: a call sets the per-call RNG bases, dispatches the prebuilt
// bodies on the (recycled) loop runtime, and decodes into the resident
// matching. Results are bit-identical to the one-shot functions — which
// are themselves thin wrappers over a throwaway Session — wherever those
// are deterministic: everywhere at one worker; choices, sizes and
// scaling-derived state at any width (the parallel kernels' per-edge
// pairing depends on CAS claim order, session or not).
//
// The returned Result/Matching/choice slices alias the session and are
// only valid until the next call on the same Session (or Rebind); callers
// that need to retain a result copy it out. A Session is not safe for
// concurrent use — concurrency comes from running many sessions side by
// side on a shared pool (see the batch layer in the public package).
type Session struct {
	a, at *sparse.CSR
	opt   Options
	pool  *par.Pool
	chunk int

	// Scaling state for the current matrix; see SetScaling.
	dr, dc     []float64
	rtot, ctot []float64

	// Per-call RNG bases, written before the bodies are dispatched.
	rbase, cbase, obase uint64

	// cancel, when non-nil, is the cooperative cancellation hook: every
	// parallel region polls it between chunks (par.ForCancel) and the
	// pipeline polls it between regions. See SetCancel.
	cancel func() bool

	rchoice, cchoice []int32
	cg               ChoiceGraph
	match, mark, deg []int32
	twoSidedSized    bool // the six buffers above are sized for (a, at)
	cmatch           []int32

	// Alias-method sampling tables (Options.Alias); stale until the next
	// ensureAlias after Rebind or SetScaling.
	aliasA, aliasAT aliasTable
	aliasBuilt      bool
	matching        exact.Matching
	result          Result

	sampleBoth func(w, lo, hi int)
	oneSided   func(w, lo, hi int)
	ksInit     func(w, lo, hi int)
	ksLink     func(w, lo, hi int)
	ksPhase1   func(w, lo, hi int)
	ksPhase2   func(w, lo, hi int)
}

// NewSession binds a session to the matrix a and its transpose at. The
// pool, worker count and scheduling policies are pinned from opt at
// construction (opt.Seed and the totals are ignored here; seeds are per
// call and scaling state is set with SetScaling).
func NewSession(a, at *sparse.CSR, opt Options) *Session {
	s := &Session{opt: opt, pool: opt.pool(), chunk: opt.chunk()}
	// The bodies read the session fields at execution time, so one set of
	// closures survives Rebind, SetScaling and per-call reseeding.
	//
	// Row and column sampling fuse into one region over [0, n+m): the two
	// loops are independent (disjoint outputs, RNG streams keyed by the
	// element index), so a single dispatch interleaves them freely — the
	// columns of a row-imbalanced instance fill the bubbles of the row
	// loop and vice versa — and the sampled choices are identical to
	// running them back to back.
	s.sampleBoth = func(_, lo, hi int) {
		n := s.a.RowsN
		if lo < n {
			rhi := hi
			if rhi > n {
				rhi = n
			}
			if s.aliasBuilt {
				aliasSampleRange(s.a, &s.aliasA, s.rbase, s.rchoice, lo, rhi)
			} else {
				sampleRange(s.a, s.dc, s.rtot, s.rbase, s.rchoice, lo, rhi)
			}
		}
		if hi > n {
			clo := lo - n
			if clo < 0 {
				clo = 0
			}
			if s.aliasBuilt {
				aliasSampleRange(s.at, &s.aliasAT, s.cbase, s.cchoice, clo, hi-n)
			} else {
				sampleRange(s.at, s.dr, s.ctot, s.cbase, s.cchoice, clo, hi-n)
			}
		}
	}
	s.oneSided = func(_, lo, hi int) {
		if s.aliasBuilt {
			aliasOneSidedRange(s.a, &s.aliasA, s.obase, s.cmatch, lo, hi)
		} else {
			oneSidedRange(s.a, s.dc, s.rtot, s.obase, s.cmatch, lo, hi)
		}
	}
	s.ksInit = func(_, lo, hi int) { ksInitRange(s.match, s.mark, s.deg, lo, hi) }
	s.ksLink = func(_, lo, hi int) { ksLinkRange(s.cg.Choice, s.mark, s.deg, lo, hi) }
	s.ksPhase1 = func(_, lo, hi int) { ksPhase1Range(s.cg.Choice, s.match, s.mark, s.deg, lo, hi) }
	s.ksPhase2 = func(_, lo, hi int) { ksPhase2Range(s.cg.Choice, s.match, s.cg.N, lo, hi) }
	s.Rebind(a, at)
	return s
}

// Rebind points the session at a different matrix, growing the workspaces
// as needed (shrinking never reallocates, so cycling through same-shaped
// graphs is allocation-free after the first). The TwoSided-only buffers
// (choice arrays, choice graph, match/mark/deg) are sized lazily on the
// first TwoSided call, so a session used only for OneSided — including the
// one inside the one-shot wrapper — never pays the ~4·(n+m) words they
// cost. Scaling state is cleared; call SetScaling before the next matching
// call that needs it.
func (s *Session) Rebind(a, at *sparse.CSR) {
	s.a, s.at = a, at
	n, m := a.RowsN, a.ColsN
	s.cg.N, s.cg.M = n, m
	s.twoSidedSized = false
	s.cmatch = buf.Grow(s.cmatch, m)
	s.matching.RowMate = buf.Grow(s.matching.RowMate, n)
	s.matching.ColMate = buf.Grow(s.matching.ColMate, m)
	s.matching.Size = 0
	s.SetScaling(nil, nil, nil, nil)
}

// ensureTwoSided sizes the TwoSided-only workspaces for the bound matrix.
func (s *Session) ensureTwoSided() {
	if s.twoSidedSized {
		return
	}
	n, m := s.a.RowsN, s.a.ColsN
	s.rchoice = buf.Grow(s.rchoice, n)
	s.cchoice = buf.Grow(s.cchoice, m)
	s.cg.Choice = buf.Grow(s.cg.Choice, n+m)
	s.match = buf.Grow(s.match, n+m)
	s.mark = buf.Grow(s.mark, n+m)
	s.deg = buf.Grow(s.deg, n+m)
	s.twoSidedSized = true
}

// SetCancel installs (or clears, with nil) the session's cooperative
// cancellation hook. While set, TwoSided and OneSided poll it at chunk
// granularity inside every parallel region and between regions; once it
// reports true the running call abandons its remaining work and returns
// nil. The hook must be cheap, safe for concurrent use and monotone —
// once it reports true it must keep reporting true, as a context's Err
// does — because the pipeline re-polls it at checkpoints to decide whether
// earlier regions ran to completion. A canceled call leaves the
// session workspaces in an undefined but reusable state — the next call
// rewrites them from scratch.
func (s *Session) SetCancel(cancel func() bool) { s.cancel = cancel }

// canceled reports whether the session's cancellation hook has fired.
func (s *Session) canceled() bool { return s.cancel != nil && s.cancel() }

// SetScaling installs the scaling vectors (nil for uniform sampling) and,
// optionally, the precomputed row/column sampling totals for the bound
// matrix. The slices are retained, not copied, so a scaling workspace that
// rewrites them in place keeps feeding the session without further calls.
func (s *Session) SetScaling(dr, dc, rowTotals, colTotals []float64) {
	s.dr, s.dc = dr, dc
	s.rtot, s.ctot = rowTotals, colTotals
	s.aliasBuilt = false // tables bake the scaling in; rebuild on next use
}

// Matrix returns the matrix the session is currently bound to.
func (s *Session) Matrix() *sparse.CSR { return s.a }

// TwoSided runs TwoSidedMatch (Algorithm 3) with the given seed on the
// bound matrix, reusing every workspace. See TwoSided for the algorithm
// and Session for the aliasing contract of the returned Result. If the
// session's cancellation hook (SetCancel) fires mid-run, the call returns
// nil and no result is produced.
func (s *Session) TwoSided(seed uint64) *Result {
	if s.canceled() {
		return nil
	}
	s.ensureTwoSided()
	s.ensureAlias()
	s.rbase = xrand.Base(seed)
	s.cbase = xrand.Base(seed ^ colSeedSalt)
	s.pool.ForCancel(s.a.RowsN+s.at.RowsN, s.opt.Workers, s.opt.Policy, s.chunk, s.cancel, s.sampleBoth)
	if s.canceled() {
		return nil
	}
	buildChoiceInto(&s.cg, s.rchoice, s.cchoice)

	nm := s.cg.N + s.cg.M
	w, pol := s.opt.Workers, s.opt.KSPolicy
	s.pool.ForCancel(nm, w, pol, s.chunk, s.cancel, s.ksInit)
	s.pool.ForCancel(nm, w, pol, s.chunk, s.cancel, s.ksLink)
	s.pool.ForCancel(nm, w, pol, s.chunk, s.cancel, s.ksPhase1)
	s.pool.ForCancel(s.cg.M, w, pol, s.chunk, s.cancel, s.ksPhase2)
	// One checkpoint after the kernel regions suffices: a hook that fired
	// inside any of them left later regions partially run, so the decoded
	// state below would be garbage either way.
	if s.canceled() {
		return nil
	}

	decodeMatchInto(&s.cg, s.match, &s.matching)
	s.result = Result{Match: s.match, Matching: &s.matching, Graph: &s.cg}
	return &s.result
}

// OneSided runs OneSidedMatch (Algorithm 2) with the given seed on the
// bound matrix. It returns the session-owned cmatch array and the matching
// cardinality; see OneSided for the concurrency semantics. If the
// session's cancellation hook (SetCancel) fires mid-run, the call returns
// (nil, 0).
func (s *Session) OneSided(seed uint64) ([]int32, int) {
	if s.canceled() {
		return nil, 0
	}
	s.ensureAlias()
	s.obase = xrand.Base(seed)
	for j := range s.cmatch {
		s.cmatch[j] = NIL
	}
	s.pool.ForCancel(s.a.RowsN, s.opt.Workers, s.opt.Policy, s.chunk, s.cancel, s.oneSided)
	if s.canceled() {
		return nil, 0
	}
	size := 0
	for _, i := range s.cmatch {
		if i != NIL {
			size++
		}
	}
	return s.cmatch, size
}

// OneSidedMatching is OneSided decoded into the session-owned row/column
// matching (nil on cancellation, like OneSided).
func (s *Session) OneSidedMatching(seed uint64) (*exact.Matching, int) {
	cmatch, size := s.OneSided(seed)
	if cmatch == nil {
		return nil, 0
	}
	cmatchInto(cmatch, &s.matching)
	return &s.matching, size
}
