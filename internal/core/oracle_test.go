package core

import (
	"testing"

	"repro/internal/exact"
	"repro/internal/xrand"
)

// TestKarpSipserMTExhaustiveTiny enumerates EVERY possible choice graph on
// small bipartite vertex sets and checks KarpSipserMT against Hopcroft-
// Karp on each. This covers all 2-clique / chain / cycle / in-one /
// out-one interactions exhaustively rather than probabilistically.
func TestKarpSipserMTExhaustiveTiny(t *testing.T) {
	for n := 1; n <= 3; n++ {
		for m := 1; m <= 3; m++ {
			// Row u chooses a column in [0,m); column j a row in [0,n).
			rch := make([]int32, n)
			cch := make([]int32, m)
			var rec func(pos int)
			total := 0
			rec = func(pos int) {
				if pos == n+m {
					total++
					g := NewChoiceGraph(n, m, rch, cch)
					want := exact.HopcroftKarp(g.ToCSR(), nil).Size
					for _, w := range []int{1, 2} {
						match := KarpSipserMT(g, opts(w, 1))
						got := DecodeMatch(g, match).Size
						if got != want {
							t.Fatalf("n=%d m=%d rch=%v cch=%v workers=%d: got %d want %d",
								n, m, rch, cch, w, got, want)
						}
					}
					return
				}
				if pos < n {
					for j := int32(0); j < int32(m); j++ {
						rch[pos] = j
						rec(pos + 1)
					}
					return
				}
				for i := int32(0); i < int32(n); i++ {
					cch[pos-n] = i
					rec(pos + 1)
				}
			}
			rec(0)
			if n == 3 && m == 3 && total != 27*27 {
				t.Fatalf("enumeration covered %d cases, want %d", total, 27*27)
			}
		}
	}
}

// TestKarpSipserMTExhaustiveWithNIL covers partial choice graphs (empty
// rows/columns produce NIL choices).
func TestKarpSipserMTExhaustiveWithNIL(t *testing.T) {
	n, m := 2, 2
	vals := []int32{NIL, 0, 1}
	rch := make([]int32, n)
	cch := make([]int32, m)
	for _, a := range vals {
		for _, b := range vals {
			for _, c := range vals {
				for _, d := range vals {
					rch[0], rch[1] = a, b
					cch[0], cch[1] = c, d
					g := NewChoiceGraph(n, m, rch, cch)
					want := exact.HopcroftKarp(g.ToCSR(), nil).Size
					got := DecodeMatch(g, KarpSipserMT(g, opts(2, 1))).Size
					if got != want {
						t.Fatalf("rch=[%d %d] cch=[%d %d]: got %d want %d",
							a, b, c, d, got, want)
					}
				}
			}
		}
	}
}

// TestKarpSipserMTRandomFunctionalStress hits larger random choice arrays
// (not necessarily from scaled sampling) at high worker counts.
func TestKarpSipserMTRandomFunctionalStress(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 40; trial++ {
		n := 50 + rng.Intn(400)
		m := 50 + rng.Intn(400)
		rch := make([]int32, n)
		cch := make([]int32, m)
		for i := range rch {
			rch[i] = int32(rng.Intn(m))
		}
		for j := range cch {
			cch[j] = int32(rng.Intn(n))
		}
		g := NewChoiceGraph(n, m, rch, cch)
		want := exact.HopcroftKarp(g.ToCSR(), nil).Size
		for _, w := range []int{1, 3, 8, 16} {
			got := DecodeMatch(g, KarpSipserMT(g, opts(w, uint64(trial)))).Size
			if got != want {
				t.Fatalf("trial %d workers %d: got %d want %d", trial, w, got, want)
			}
		}
	}
}
