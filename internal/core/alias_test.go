package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/sparse"
)

// TestAliasBuildOncePerGraph proves the counter gate: one Session draws
// alias samples across many seeds and only ever builds its tables once,
// rebuilding exactly once more after Rebind and after SetScaling.
func TestAliasBuildOncePerGraph(t *testing.T) {
	var builds atomic.Int64
	hook := func() { builds.Add(1) }
	aliasBuildHook.Store(&hook)
	defer aliasBuildHook.Store(nil)

	a := gen.ERAvgDeg(500, 500, 4, 3)
	at := a.Transpose()
	opt := Options{Workers: 1, Policy: par.Dynamic, KSPolicy: par.Guided, Alias: true}
	s := NewSession(a, at, opt)
	for seed := uint64(1); seed <= 10; seed++ {
		s.TwoSided(seed)
		s.OneSided(seed)
	}
	if got := builds.Load(); got != 1 {
		t.Fatalf("10 sampling calls built alias tables %d times; want 1", got)
	}

	b := gen.ERAvgDeg(400, 600, 3, 9)
	s.Rebind(b, b.Transpose())
	s.TwoSided(1)
	s.TwoSided(2)
	if got := builds.Load(); got != 2 {
		t.Fatalf("after Rebind: %d builds; want 2", got)
	}

	_, sc := scaledSK(t, b, 3)
	s.SetScaling(sc.DR, sc.DC, sc.RSum, sc.CSum)
	s.OneSided(1)
	s.OneSided(2)
	if got := builds.Load(); got != 3 {
		t.Fatalf("after SetScaling: %d builds; want 3", got)
	}
}

// TestAliasDeterministicAcrossWorkerCounts pins the alias kernels'
// bit-identity across worker counts — per-vertex indexed RNG streams, so
// the schedule cannot leak in.
func TestAliasDeterministicAcrossWorkerCounts(t *testing.T) {
	a := gen.ERAvgDeg(2000, 2000, 5, 17)
	at := a.Transpose()
	var ref []int32
	for _, w := range []int{1, 2, 4} {
		opt := Options{Workers: w, Policy: par.Dynamic, KSPolicy: par.Guided, Alias: true}
		s := NewSession(a, at, opt)
		s.TwoSided(7)
		choices := append([]int32(nil), s.rchoice[:a.RowsN]...)
		if w == 1 {
			ref = choices
			continue
		}
		for i := range ref {
			if choices[i] != ref[i] {
				t.Fatalf("w=%d: rchoice[%d] differs from width 1", w, i)
			}
		}
	}
}

// TestAliasFollowsScaledDistribution mirrors the prefix-walk kernel's
// distribution gate: with dc skewed to (1, 1e-9) the alias draw must
// almost always pick column 0, proving the tables bake the scaling in.
func TestAliasFollowsScaledDistribution(t *testing.T) {
	a := sparse.FromDense([][]int{{1, 1}})
	at := a.Transpose()
	dr := []float64{1}
	dc := []float64{1, 1e-9}
	count0 := 0
	for seed := uint64(1); seed <= 200; seed++ {
		s := NewSession(a, at, Options{Workers: 1, Policy: par.Dynamic, KSPolicy: par.Guided, Alias: true})
		s.SetScaling(dr, dc, nil, nil)
		cmatch, _ := s.OneSided(seed)
		if cmatch[0] == 0 {
			count0++
		}
	}
	if count0 < 199 {
		t.Fatalf("alias sampling chose col 0 only %d/200 times", count0)
	}
}

// TestAliasUniformDistribution: without scaling the alias draw is uniform
// over the row, like the default kernel.
func TestAliasUniformDistribution(t *testing.T) {
	a := sparse.FromDense([][]int{{1, 1, 1, 1}})
	at := a.Transpose()
	counts := make([]int, 4)
	s := NewSession(a, at, Options{Workers: 1, Policy: par.Dynamic, KSPolicy: par.Guided, Alias: true})
	// cmatch is column-indexed; count which column got claimed per seed.
	for seed := uint64(1); seed <= 4000; seed++ {
		cm, _ := s.OneSided(seed)
		for j := range cm {
			if cm[j] != NIL {
				counts[j]++
			}
		}
	}
	for j, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("column %d chosen %d/4000 times; expected ≈1000", j, c)
		}
	}
}

// TestAliasMatchesExpectedSizes: alias sampling preserves the heuristics'
// quality on a mid-sized instance (sizes within a few percent of the
// default kernels' — same distribution, different stream consumption).
func TestAliasMatchesExpectedSizes(t *testing.T) {
	a := gen.ERAvgDeg(3000, 3000, 5, 23)
	at := a.Transpose()
	base := NewSession(a, at, Options{Workers: 2, Policy: par.Dynamic, KSPolicy: par.Guided})
	alias := NewSession(a, at, Options{Workers: 2, Policy: par.Dynamic, KSPolicy: par.Guided, Alias: true})
	rb := base.TwoSided(5)
	ra := alias.TwoSided(5)
	lo := rb.Matching.Size * 95 / 100
	hi := rb.Matching.Size * 105 / 100
	if ra.Matching.Size < lo || ra.Matching.Size > hi {
		t.Fatalf("alias TwoSided size %d outside ±5%% of default %d", ra.Matching.Size, rb.Matching.Size)
	}
}
