package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/scale"
	"repro/internal/sparse"
)

func scaledSK(t *testing.T, a *sparse.CSR, iters int) (*sparse.CSR, *scale.Result) {
	t.Helper()
	at := a.Transpose()
	res, err := scale.SinkhornKnopp(a, at, scale.Options{MaxIters: iters, Workers: 4, Policy: par.Dynamic})
	if err != nil {
		t.Fatal(err)
	}
	return at, res
}

func cmpI32s(t *testing.T, what string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for k := range got {
		if got[k] != want[k] {
			t.Fatalf("%s: index %d differs: %d vs %d", what, k, got[k], want[k])
		}
	}
}

// TestSamplingWithTotalsBitIdentical pins the fused fast path: feeding the
// scaling stage's exported row/column totals into the samplers must
// reproduce the exact choices of the on-the-fly sum, for every worker
// count and policy — the totals are the same floating-point values the
// sum pass would recompute. The full TwoSided match array is compared at
// one worker only: at parallel widths the Karp–Sipser pairing depends on
// CAS claim order (the size does not — the kernel is exact on the
// deterministic choice graph).
func TestSamplingWithTotalsBitIdentical(t *testing.T) {
	mats := map[string]*sparse.CSR{
		"er": gen.ERAvgDeg(1500, 1500, 5, 21),
		"pl": gen.PowerLaw(1200, 2, 1.8, 300, 5),
	}
	for name, a := range mats {
		at, sc := scaledSK(t, a, 5)
		for _, w := range []int{1, 2, 4, 9} {
			for _, pol := range []par.Policy{par.Static, par.Dynamic, par.Guided} {
				plain := Options{Workers: w, Policy: pol, Chunk: 128, KSPolicy: par.Guided, Seed: 7}
				fast := plain
				fast.RowTotals, fast.ColTotals = sc.RSum, sc.CSum

				cmpI32s(t, name+" row choices",
					SampleRowChoices(a, sc.DR, sc.DC, fast),
					SampleRowChoices(a, sc.DR, sc.DC, plain))
				cmpI32s(t, name+" col choices",
					SampleColChoices(at, sc.DR, sc.DC, fast),
					SampleColChoices(at, sc.DR, sc.DC, plain))

				rf := TwoSided(a, at, sc.DR, sc.DC, fast)
				rp := TwoSided(a, at, sc.DR, sc.DC, plain)
				if w == 1 {
					cmpI32s(t, name+" two-sided match", rf.Match, rp.Match)
				}
				if rf.Matching.Size != rp.Matching.Size {
					t.Fatalf("%s: fused size %d vs plain %d", name, rf.Matching.Size, rp.Matching.Size)
				}
			}
		}
	}
}

// TestTwoSidedDeterministicAcrossPoolsAndWorkers asserts what holds at
// every worker count, policy and pool width under a fixed seed: the
// matching size is identical (the kernel is exact on the deterministic
// choice graph), and single-worker runs reproduce the full match array
// bit for bit even when dispatched on wide pools. The per-edge pairing at
// parallel widths is scheduling-dependent (CAS claim order) and is
// deliberately not compared.
func TestTwoSidedDeterministicAcrossPoolsAndWorkers(t *testing.T) {
	a := gen.FullyIndecomposable(2000, 3, 13)
	at, sc := scaledSK(t, a, 5)
	base := Options{Workers: 1, Policy: par.Dynamic, KSPolicy: par.Guided, Seed: 17,
		RowTotals: sc.RSum, ColTotals: sc.CSum}
	want := TwoSided(a, at, sc.DR, sc.DC, base)
	for _, width := range []int{2, 5} {
		pool := par.NewPool(width)
		for _, w := range []int{1, 2, 4, 16} {
			for _, pol := range []par.Policy{par.Static, par.Dynamic, par.Guided} {
				opt := base
				opt.Workers, opt.Policy, opt.Pool = w, pol, pool
				got := TwoSided(a, at, sc.DR, sc.DC, opt)
				if w == 1 {
					cmpI32s(t, "match", got.Match, want.Match)
				}
				if got.Matching.Size != want.Matching.Size {
					t.Fatalf("width=%d w=%d %v: size %d want %d",
						width, w, pol, got.Matching.Size, want.Matching.Size)
				}
			}
		}
		pool.Close()
	}
}

// TestOneSidedSizeStableAcrossPools: OneSided's conflict resolution is
// last-write-wins and therefore scheduling-dependent at >1 workers, but
// the sampled choice of every row is deterministic — so the set of chosen
// columns, and hence the matching size, is identical however the loop is
// scheduled.
func TestOneSidedSizeStableAcrossPools(t *testing.T) {
	a := gen.ERAvgDeg(3000, 3000, 6, 2)
	_, sc := scaledSK(t, a, 5)
	base := Options{Workers: 1, Policy: par.Dynamic, Seed: 5, RowTotals: sc.RSum}
	_, want := OneSided(a, sc.DR, sc.DC, base)
	pool := par.NewPool(3)
	defer pool.Close()
	for _, w := range []int{1, 3, 8} {
		for _, pol := range []par.Policy{par.Static, par.Dynamic, par.Guided} {
			opt := base
			opt.Workers, opt.Policy, opt.Pool = w, pol, pool
			if _, size := OneSided(a, sc.DR, sc.DC, opt); size != want {
				t.Fatalf("w=%d %v: size %d want %d", w, pol, size, want)
			}
		}
	}
}

// TestConcurrentMatchingOnSharedPool runs whole TwoSided calls from
// several goroutines against one pool; every caller must land the same
// matching size as the solo run (the pairing is scheduling-dependent at
// parallel widths). Under -race this exercises the dispatch path end to
// end.
func TestConcurrentMatchingOnSharedPool(t *testing.T) {
	a := gen.ERAvgDeg(1000, 1000, 5, 31)
	at, sc := scaledSK(t, a, 3)
	pool := par.NewPool(4)
	defer pool.Close()
	opt := Options{Workers: 4, Policy: par.Dynamic, KSPolicy: par.Guided, Seed: 3,
		Pool: pool, RowTotals: sc.RSum, ColTotals: sc.CSum}
	want := TwoSided(a, at, sc.DR, sc.DC, opt)
	const callers = 6
	results := make([]*Result, callers)
	done := make(chan int, callers)
	for c := 0; c < callers; c++ {
		go func(c int) {
			results[c] = TwoSided(a, at, sc.DR, sc.DC, opt)
			done <- c
		}(c)
	}
	for range [callers]struct{}{} {
		<-done
	}
	for c, r := range results {
		if r.Matching.Size != want.Matching.Size {
			t.Fatalf("caller %d: size %d want %d", c, r.Matching.Size, want.Matching.Size)
		}
	}
}
