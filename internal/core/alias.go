package core

import (
	"sync/atomic"

	"repro/internal/sparse"
	"repro/internal/xrand"
)

// Walker alias tables for the sampling kernels: after an O(deg) per-row
// build, each draw is O(1) — one uniform slot pick plus one coin flip —
// instead of the O(deg) prefix walk of sampleRow. The tables depend on
// the matrix and its scaling vectors, so the session invalidates them on
// Rebind and SetScaling and rebuilds lazily (once per bound graph) on the
// next sampling call. Opt-in via Options.Alias: the two-draw consumption
// of the per-vertex RNG stream makes seeded choices differ from (while
// being distributed identically to) the prefix-walk kernels'.

// aliasBuildHook, when set, is invoked once per alias-table build — the
// test seam that proves the build is counter-gated to once per graph.
var aliasBuildHook atomic.Pointer[func()]

// aliasTable holds the per-edge alias slots of one matrix side. Slot p
// (an absolute CSR edge position) is picked uniformly within its row;
// the draw keeps p with probability prob[p] and otherwise takes the
// aliased position alt[p] of the same row.
type aliasTable struct {
	prob []float64
	alt  []int32
}

// build fills the table for matrix a weighted by dc (the column-side
// scaling factors; nil for uniform). Per row, Walker's small/large
// pairing runs over the row's edges in place: probabilities are
// normalized to mean 1 (p_k = w_k·deg/total), each small slot is topped
// up by a large one, and every slot ends with alt set. Degenerate rows
// (total ≤ 0) fall back to uniform slots, mirroring sampleRow.
func (t *aliasTable) build(a *sparse.CSR, dc []float64) {
	nnz := len(a.Idx)
	if cap(t.prob) < nnz {
		t.prob = make([]float64, nnz)
		t.alt = make([]int32, nnz)
	}
	t.prob = t.prob[:nnz]
	t.alt = t.alt[:nnz]
	var small, large []int32
	for i := 0; i < a.RowsN; i++ {
		s, e := a.Ptr[i], a.Ptr[i+1]
		deg := e - s
		if deg == 0 {
			continue
		}
		var total float64
		for p := s; p < e; p++ {
			total += weight(a, dc, p)
		}
		if total <= 0 {
			for p := s; p < e; p++ {
				t.prob[p] = 1
				t.alt[p] = int32(p)
			}
			continue
		}
		scale := float64(deg) / total
		small, large = small[:0], large[:0]
		for p := s; p < e; p++ {
			t.prob[p] = weight(a, dc, p) * scale
			if t.prob[p] < 1 {
				small = append(small, int32(p))
			} else {
				large = append(large, int32(p))
			}
		}
		for len(small) > 0 && len(large) > 0 {
			sm := small[len(small)-1]
			small = small[:len(small)-1]
			lg := large[len(large)-1]
			t.alt[sm] = lg
			// The large slot donates 1−prob[sm] of its mass to top the
			// small slot up to exactly 1.
			t.prob[lg] -= 1 - t.prob[sm]
			if t.prob[lg] < 1 {
				large = large[:len(large)-1]
				small = append(small, lg)
			}
		}
		// Round-off leftovers saturate at probability 1 (alias unused).
		for _, p := range small {
			t.prob[p] = 1
			t.alt[p] = p
		}
		for _, p := range large {
			t.prob[p] = 1
			t.alt[p] = p
		}
	}
}

// sampleRowAlias draws one entry of row i from the prebuilt table: a
// uniform slot pick plus one coin flip, O(1) per draw.
func sampleRowAlias(a *sparse.CSR, t *aliasTable, i int, rng *xrand.SplitMix64) int32 {
	s, e := a.Ptr[i], a.Ptr[i+1]
	if s == e {
		return NIL
	}
	p := s + rng.Intn(e-s)
	if rng.Float64() < t.prob[p] {
		return a.Idx[p]
	}
	return a.Idx[t.alt[p]]
}

// aliasSampleRange is sampleRange's alias-table counterpart: per-row
// indexed RNG streams keep the draws bit-identical at any worker count.
func aliasSampleRange(a *sparse.CSR, t *aliasTable, base uint64, choice []int32, lo, hi int) {
	var rng xrand.SplitMix64
	for i := lo; i < hi; i++ {
		rng.SetIndexed(base, i)
		choice[i] = sampleRowAlias(a, t, i, &rng)
	}
}

// aliasOneSidedRange is oneSidedRange's alias-table counterpart.
func aliasOneSidedRange(a *sparse.CSR, t *aliasTable, base uint64, cmatch []int32, lo, hi int) {
	var rng xrand.SplitMix64
	for i := lo; i < hi; i++ {
		rng.SetIndexed(base, i)
		j := sampleRowAlias(a, t, i, &rng)
		if j != NIL {
			atomic.StoreInt32(&cmatch[j], int32(i))
		}
	}
}

// ensureAlias builds the session's alias tables if Options.Alias is set
// and they are stale (first sampling call after NewSession, Rebind or
// SetScaling). Called from the serial prologue of the sampling entry
// points, never from inside a parallel region.
func (s *Session) ensureAlias() {
	if !s.opt.Alias || s.aliasBuilt {
		return
	}
	if hook := aliasBuildHook.Load(); hook != nil {
		(*hook)()
	}
	s.aliasA.build(s.a, s.dc)
	s.aliasAT.build(s.at, s.dr)
	s.aliasBuilt = true
}
