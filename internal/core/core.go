// Package core implements the paper's two matching heuristics and their
// specialized parallel Karp–Sipser kernel:
//
//   - OneSided (Algorithm 2, OneSidedMatch): every row samples one column
//     with probability proportional to the doubly stochastic scaling of
//     the matrix; concurrent writes into cmatch are last-write-wins and
//     still define a valid matching of expected size ≥ (1-1/e)·n.
//   - TwoSided (Algorithm 3, TwoSidedMatch): rows and columns both sample,
//     the ≤2n chosen edges form a "1-out" graph on which Karp–Sipser is
//     exact (every component has at most one cycle, Lemma 1).
//   - KarpSipserMT (Algorithm 4): the two-phase parallel Karp–Sipser for
//     1-out graphs, synchronizing only through compare-and-swap on the
//     match array and fetch-and-add on the degree array.
package core

import (
	"sync/atomic"

	"repro/internal/exact"
	"repro/internal/par"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// NIL marks an unmatched vertex / empty slot.
const NIL = int32(-1)

// Options configures the heuristics.
type Options struct {
	// Workers is the parallel width; <= 0 means the pool width.
	Workers int
	// Policy schedules the sampling loops; the paper uses (dynamic,512)
	// for sampling and (guided) for KarpSipserMT (see KSPolicy).
	Policy par.Policy
	// Chunk is the scheduling chunk; <= 0 means par.DefaultChunk.
	Chunk int
	// KSPolicy schedules the KarpSipserMT phases.
	KSPolicy par.Policy
	// Seed drives the per-worker RNG streams.
	Seed uint64
	// Pool is the worker pool every parallel region dispatches to; nil
	// means the process-wide par.Default pool. Passing the pool the
	// scaling stage used keeps one resident worker set hot across the
	// whole matching call.
	Pool *par.Pool
	// RowTotals and ColTotals, when non-nil, are the precomputed scaled
	// row and column sampling denominators (scale.Result.RSum / CSum):
	// RowTotals[i] = Σ_j a_ij·dc[j], ColTotals[j] = Σ_i dr[i]·a_ij.
	// With them each sample is a single prefix walk over the row instead
	// of a sum pass plus a walk pass; sampled choices are bit-identical
	// either way because the scaling row pass accumulates the very same
	// products in the very same order. Nil means sampling sums on the
	// fly (the uniform / 0-iteration configurations).
	RowTotals, ColTotals []float64
	// Alias switches the per-vertex neighbor draw to O(1) alias-method
	// tables, built once per bound graph (and rebuilt after SetScaling)
	// in O(nnz). Seeded choices differ from the default prefix-walk
	// kernels' — the alias draw consumes two RNG values per vertex — but
	// follow the same distribution; see Session.ensureAlias.
	Alias bool
}

func (o Options) pool() *par.Pool {
	if o.Pool != nil {
		return o.Pool
	}
	return par.Default()
}

func (o Options) chunk() int {
	if o.Chunk <= 0 {
		return par.DefaultChunk
	}
	return o.Chunk
}

// colSeedSalt decorrelates the column-side RNG streams from the row side.
const colSeedSalt = 0x5DEECE66D

// sampleRange draws the choices of rows [lo, hi): per-row RNG streams
// keyed by the row index mean no shared state, and the sampled choices are
// identical for any worker count and scheduling policy under a fixed seed.
// It is the shared loop body of the one-shot samplers and the Session.
func sampleRange(a *sparse.CSR, d, tot []float64, base uint64, choice []int32, lo, hi int) {
	var rng xrand.SplitMix64
	for i := lo; i < hi; i++ {
		rng.SetIndexed(base, i)
		choice[i] = sampleRow(a, d, i, tot, &rng)
	}
}

// SampleRowChoices draws, for every row i of a, a column j ∈ A_i* with
// probability s_ij / Σ_k s_ik where s_ij = dr[i]·a_ij·dc[j] (the paper's
// probability density function in Algorithms 2 and 3). Rows with no
// entries get NIL. dr or dc may be nil for uniform sampling (the
// "0 scaling iterations" configuration).
func SampleRowChoices(a *sparse.CSR, dr, dc []float64, opt Options) []int32 {
	choice := make([]int32, a.RowsN)
	base := xrand.Base(opt.Seed)
	tot := opt.RowTotals
	opt.pool().For(a.RowsN, opt.Workers, opt.Policy, opt.chunk(), func(_, lo, hi int) {
		sampleRange(a, dc, tot, base, choice, lo, hi)
	})
	return choice
}

// SampleColChoices is the column-side counterpart operating on the
// transpose at: for every column j it draws a row i ∈ A_*j with probability
// s_ij / Σ_k s_kj.
func SampleColChoices(at *sparse.CSR, dr, dc []float64, opt Options) []int32 {
	choice := make([]int32, at.RowsN)
	base := xrand.Base(opt.Seed ^ colSeedSalt)
	tot := opt.ColTotals
	opt.pool().For(at.RowsN, opt.Workers, opt.Policy, opt.chunk(), func(_, lo, hi int) {
		sampleRange(at, dr, tot, base, choice, lo, hi)
	})
	return choice
}

// sampleRow draws one entry of row i proportionally to dr[i]*v*dc[j].
// Since dr[i] is a common factor it cancels; only dc weights matter within
// the row. A draw r ∈ (0, rowsum] is materialized by walking the prefix
// sums, exactly as described under Algorithm 2. When tot carries the
// precomputed row sums (exported by the scaling row pass) the sum pass is
// skipped entirely and the draw is a single prefix walk.
func sampleRow(a *sparse.CSR, dc []float64, i int, tot []float64, rng *xrand.SplitMix64) int32 {
	s, e := a.Ptr[i], a.Ptr[i+1]
	if s == e {
		return NIL
	}
	var total float64
	if tot != nil {
		total = tot[i]
	} else {
		for p := s; p < e; p++ {
			total += weight(a, dc, p)
		}
	}
	if total <= 0 {
		// Degenerate scaling (all weights zero): fall back to uniform.
		return a.Idx[s+rng.Intn(e-s)]
	}
	r := rng.Float64Open() * total
	acc := 0.0
	for p := s; p < e; p++ {
		acc += weight(a, dc, p)
		if acc >= r {
			return a.Idx[p]
		}
	}
	return a.Idx[e-1] // guard against round-off
}

func weight(a *sparse.CSR, dc []float64, p int) float64 {
	w := 1.0
	if a.Val != nil {
		w = a.Val[p]
	}
	if dc != nil {
		w *= dc[a.Idx[p]]
	}
	return w
}

// oneSidedRange is the shared loop body of OneSided: rows [lo, hi) sample
// one column each and claim it with a last-write-wins atomic store.
func oneSidedRange(a *sparse.CSR, d, tot []float64, base uint64, cmatch []int32, lo, hi int) {
	var rng xrand.SplitMix64
	for i := lo; i < hi; i++ {
		rng.SetIndexed(base, i)
		j := sampleRow(a, d, i, tot, &rng)
		if j != NIL {
			atomic.StoreInt32(&cmatch[j], int32(i))
		}
	}
}

// OneSided runs OneSidedMatch (Algorithm 2) given the matrix and its
// scaling vectors. It returns the cmatch array (cmatch[j] = row matched to
// column j, or NIL) and the matching cardinality. The concurrent
// last-write-wins stores of the paper are implemented with atomic stores,
// so the heuristic is race-free at any worker count without any locking or
// conflict resolution.
func OneSided(a *sparse.CSR, dr, dc []float64, opt Options) ([]int32, int) {
	n, m := a.RowsN, a.ColsN
	cmatch := make([]int32, m)
	for j := range cmatch {
		cmatch[j] = NIL
	}
	base := xrand.Base(opt.Seed)
	tot := opt.RowTotals
	opt.pool().For(n, opt.Workers, opt.Policy, opt.chunk(), func(_, lo, hi int) {
		oneSidedRange(a, dc, tot, base, cmatch, lo, hi)
	})
	size := 0
	for _, i := range cmatch {
		if i != NIL {
			size++
		}
	}
	return cmatch, size
}

// ChoiceGraph is the 1-out subgraph built by TwoSidedMatch: vertex u in
// [0, N) is row u, vertex N+j is column j, and Choice[u] is the single
// neighbor u sampled. The edge set of the graph is
// {{u, Choice[u]}} ∪ {{Choice[v], v}}, at most N+M edges.
type ChoiceGraph struct {
	N, M   int
	Choice []int32 // len N+M; Choice[u] is a vertex id in the opposite side
}

// NewChoiceGraph assembles a choice graph from row choices (column indices)
// and column choices (row indices), converting them to vertex ids. Rows or
// columns with NIL choices (empty rows/columns) point to themselves, which
// KarpSipserMT treats as isolated.
func NewChoiceGraph(n, m int, rchoice, cchoice []int32) *ChoiceGraph {
	g := &ChoiceGraph{N: n, M: m, Choice: make([]int32, n+m)}
	buildChoiceInto(g, rchoice, cchoice)
	return g
}

// buildChoiceInto fills g.Choice (already sized N+M) from the per-side
// choice arrays; the reusable half of NewChoiceGraph.
func buildChoiceInto(g *ChoiceGraph, rchoice, cchoice []int32) {
	n, m := g.N, g.M
	for i := 0; i < n; i++ {
		if rchoice[i] == NIL {
			g.Choice[i] = int32(i) // self loop = isolated
		} else {
			g.Choice[i] = int32(n) + rchoice[i]
		}
	}
	for j := 0; j < m; j++ {
		if cchoice[j] == NIL {
			g.Choice[n+j] = int32(n + j)
		} else {
			g.Choice[n+j] = cchoice[j]
		}
	}
}

// ToCSR materializes the choice graph as a bipartite CSR (rows × cols)
// containing the union of the chosen edges. Used by tests to compare
// KarpSipserMT against an exact algorithm, and by the fine-grained
// structure analysis.
func (g *ChoiceGraph) ToCSR() *sparse.CSR {
	entries := make([]sparse.Coord, 0, g.N+g.M)
	for u := 0; u < g.N; u++ {
		v := g.Choice[u]
		if int(v) != u {
			entries = append(entries, sparse.Coord{I: int32(u), J: v - int32(g.N)})
		}
	}
	for j := 0; j < g.M; j++ {
		v := g.Choice[g.N+j]
		if int(v) != g.N+j {
			entries = append(entries, sparse.Coord{I: v, J: int32(j)})
		}
	}
	a, err := sparse.FromCOO(g.N, g.M, entries, false)
	if err != nil {
		panic("core: choice graph produced invalid CSR: " + err.Error())
	}
	return a
}

// KarpSipserMT runs Algorithm 4 on a choice graph and returns the match
// array over the N+M vertex ids. On graphs built by TwoSidedMatch the
// result is a maximum matching of the choice graph (Lemmas 1–3). All
// cross-thread communication happens through atomics: a compare-and-swap
// claims a neighbor, a fetch-and-add tracks the residual degree, so the
// heuristic needs no locks, no vertex lists and no conflict queues.
func KarpSipserMT(g *ChoiceGraph, opt Options) []int32 {
	nm := g.N + g.M
	match := make([]int32, nm)
	mark := make([]int32, nm)
	deg := make([]int32, nm)
	pool := opt.pool()
	workers := opt.Workers
	pol := opt.KSPolicy
	chunk := opt.chunk()

	pool.For(nm, workers, pol, chunk, func(_, lo, hi int) {
		ksInitRange(match, mark, deg, lo, hi)
	})
	pool.For(nm, workers, pol, chunk, func(_, lo, hi int) {
		ksLinkRange(g.Choice, mark, deg, lo, hi)
	})
	pool.For(nm, workers, pol, chunk, func(_, lo, hi int) {
		ksPhase1Range(g.Choice, match, mark, deg, lo, hi)
	})
	pool.For(g.M, workers, pol, chunk, func(_, lo, hi int) {
		ksPhase2Range(g.Choice, match, g.N, lo, hi)
	})
	return match
}

// ksInitRange seeds the per-vertex state of Algorithm 4.
func ksInitRange(match, mark, deg []int32, lo, hi int) {
	for u := lo; u < hi; u++ {
		mark[u] = 1
		deg[u] = 1
		match[u] = NIL
	}
}

// ksLinkRange accounts the in-edges: vertices that were chosen by someone
// are not out-one candidates, and each in-edge beyond the vertex's own
// out-edge bumps its degree.
func ksLinkRange(choice, mark, deg []int32, lo, hi int) {
	for u := lo; u < hi; u++ {
		v := choice[u]
		if int(v) == u {
			continue // isolated vertex: no edge at all
		}
		atomic.StoreInt32(&mark[v], 0)
		if int(choice[v]) != u {
			atomic.AddInt32(&deg[v], 1)
		}
	}
}

// ksPhase1Range is Phase 1 of Algorithm 4: consume out-one vertices,
// following each chain of newly created out-one vertices without any list
// (Lemma 4: consuming an out-one vertex creates at most one new one).
func ksPhase1Range(choice, match, mark, deg []int32, lo, hi int) {
	for u := lo; u < hi; u++ {
		if atomic.LoadInt32(&mark[u]) != 1 || int(choice[u]) == u {
			continue
		}
		curr := int32(u)
		for curr != NIL {
			nbr := choice[curr]
			if nbr == curr {
				break // chain ran into an isolated (self-loop) vertex
			}
			if atomic.CompareAndSwapInt32(&match[nbr], NIL, curr) {
				atomic.StoreInt32(&match[curr], nbr)
				next := choice[nbr]
				if int(next) != int(nbr) && atomic.LoadInt32(&match[next]) == NIL &&
					atomic.AddInt32(&deg[next], -1) == 1 {
					// We performed the last consumption before next
					// became out-one: continue the chain with it.
					curr = next
					continue
				}
			}
			// Either the neighbor was claimed by another thread (the
			// competing matching decision wins, ours is dropped), or
			// the chain ended.
			curr = NIL
		}
	}
}

// ksPhase2Range is Phase 2 of Algorithm 4 over columns [lo, hi): the
// residual graph is a disjoint union of simple cycles, 2-cliques and
// isolated vertices (Lemma 3); the column-side choice edges of each cycle
// form a maximum matching of it, so a single parallel sweep over column
// vertices finishes the job. The CAS never fails on valid choice graphs;
// it is kept so that adversarial inputs still yield a valid (if not
// maximum) matching.
func ksPhase2Range(choice, match []int32, n, lo, hi int) {
	for j := lo; j < hi; j++ {
		u := int32(n + j)
		v := choice[u]
		if v == u {
			continue
		}
		if atomic.LoadInt32(&match[u]) == NIL && atomic.LoadInt32(&match[v]) == NIL {
			if atomic.CompareAndSwapInt32(&match[v], NIL, u) {
				atomic.StoreInt32(&match[u], v)
			}
		}
	}
}

// Result is the outcome of TwoSided.
type Result struct {
	// Match is the vertex-indexed match array of the choice graph
	// (length N+M; see ChoiceGraph).
	Match []int32
	// Matching is the same matching in row/column form.
	Matching *exact.Matching
	// Graph is the sampled 1-out graph, exposed for analysis.
	Graph *ChoiceGraph
}

// TwoSided runs TwoSidedMatch (Algorithm 3): sample row and column
// choices from the scaled matrix, then match the resulting 1-out graph
// exactly with KarpSipserMT. The two sampling loops are independent
// (disjoint outputs, RNG streams keyed by element index), so they fuse
// into a single parallel region — the columns of a row-imbalanced
// instance fill the bubbles of the row loop and vice versa. Results are
// identical to running them back to back.
func TwoSided(a, at *sparse.CSR, dr, dc []float64, opt Options) *Result {
	s := NewSession(a, at, opt)
	s.SetScaling(dr, dc, opt.RowTotals, opt.ColTotals)
	return s.TwoSided(opt.Seed)
}

// DecodeMatch converts a vertex-indexed match array into row/column form,
// validating mutual consistency (u matched to v implies v matched to u).
func DecodeMatch(g *ChoiceGraph, match []int32) *exact.Matching {
	mt := exact.NewMatching(g.N, g.M)
	decodeMatchInto(g, match, mt)
	return mt
}

// decodeMatchInto is DecodeMatch writing into a caller-owned matching of
// the right shape (it is fully reset first).
func decodeMatchInto(g *ChoiceGraph, match []int32, mt *exact.Matching) {
	mt.Size = 0
	for j := range mt.ColMate {
		mt.ColMate[j] = NIL
	}
	for u := 0; u < g.N; u++ {
		v := match[u]
		if v == NIL || match[v] != int32(u) {
			mt.RowMate[u] = NIL
			continue
		}
		mt.RowMate[u] = v - int32(g.N)
		mt.ColMate[v-int32(g.N)] = int32(u)
		mt.Size++
	}
}

// CMatchToMatching converts a OneSided cmatch array into row/column form.
func CMatchToMatching(n int, cmatch []int32) *exact.Matching {
	mt := exact.NewMatching(n, len(cmatch))
	cmatchInto(cmatch, mt)
	return mt
}

// cmatchInto is CMatchToMatching writing into a caller-owned matching of
// the right shape (it is fully reset first).
func cmatchInto(cmatch []int32, mt *exact.Matching) {
	mt.Size = 0
	for i := range mt.RowMate {
		mt.RowMate[i] = NIL
	}
	for j, i := range cmatch {
		if i != NIL {
			mt.ColMate[j] = i
			mt.RowMate[i] = int32(j)
			mt.Size++
		} else {
			mt.ColMate[j] = NIL
		}
	}
}
