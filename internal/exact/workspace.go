package exact

import "repro/internal/sparse"

// Workspace holds the reusable state of the incremental refiners — the
// refiner structs themselves plus the backing store of the matching they
// hold — so a caller that refines repeatedly (a Matcher session, the
// ensemble engine) constructs refiners allocation-free once the buffers
// have grown to the graph's shape.
//
// One refiner is live per workspace at a time: constructing a new refiner
// on the workspace invalidates the previous one and the matching it held.
type Workspace struct {
	hk    HKRefiner
	pr    PRRefiner
	graft GraftRefiner
	mt    Matching
}

// matching resets the workspace-backed matching to a copy of init (nil
// means empty) at shape n×m and returns it.
func (ws *Workspace) matching(n, m int, init *Matching) *Matching {
	mt := &ws.mt
	mt.RowMate = growInt32(mt.RowMate, n)
	mt.ColMate = growInt32(mt.ColMate, m)
	if init != nil {
		copy(mt.RowMate, init.RowMate)
		copy(mt.ColMate, init.ColMate)
		mt.Size = init.Size
		return mt
	}
	for i := range mt.RowMate {
		mt.RowMate[i] = NIL
	}
	for j := range mt.ColMate {
		mt.ColMate[j] = NIL
	}
	mt.Size = 0
	return mt
}

// NewHKRefinerWs is NewHKRefiner on a reusable Workspace: the search
// arrays and the held matching live in ws, so repeated constructions on
// same-shaped graphs allocate nothing. The returned refiner (and its
// Matching) are valid until the workspace's next construction.
func NewHKRefinerWs(a *sparse.CSR, init *Matching, ws *Workspace) *HKRefiner {
	n := a.RowsN
	r := &ws.hk
	r.a = a
	r.mt = ws.matching(n, a.ColsN, init)
	r.dist = growInt32(r.dist, n)
	r.queue = r.queue[:0]
	r.arc = growInt(r.arc, n)
	r.stack = r.stack[:0]
	r.done = false
	return r
}

// NewPRRefinerWs is NewPRRefiner on a reusable Workspace, with the same
// reuse contract as NewHKRefinerWs.
func NewPRRefinerWs(a *sparse.CSR, init *Matching, ws *Workspace) *PRRefiner {
	n, m := a.RowsN, a.ColsN
	r := &ws.pr
	r.a = a
	r.mt = ws.matching(n, m, init)
	r.limit = int32(n + m + 1)
	r.psi = growInt32(r.psi, m)
	for j := range r.psi {
		r.psi[j] = 0
	}
	r.stack = r.stack[:0]
	for i := n - 1; i >= 0; i-- {
		if r.mt.RowMate[i] == NIL && a.Degree(i) > 0 {
			r.stack = append(r.stack, int32(i))
		}
	}
	return r
}

// growInt32 returns s resized to n, reallocating only on capacity growth.
// Contents are unspecified; callers initialize what they read.
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growUint64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		s = make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}
