package exact

import "repro/internal/sparse"

// PRRefiner is the incremental form of the push-relabel / auction scheme:
// the matching, the column labels and the active-row stack, advanced a
// bounded number of bids at a time. The held matching is valid between
// steps and its size is monotone (a bid either evicts — size unchanged —
// or claims a free column), so callers can interleave bounded Step calls
// with other work and stop as soon as the size crosses a bound, exactly
// like HKRefiner.
type PRRefiner struct {
	a  *sparse.CSR
	mt *Matching

	// Label cap: an augmenting path alternates rows and columns and visits
	// each column at most once, so any column reachable by one has label
	// < n+m+1. Labels at or above the cap mean "unreachable".
	limit int32
	psi   []int32
	// Active rows: LIFO stack (order does not affect correctness).
	stack []int32
}

// NewPRRefiner prepares an incremental push-relabel run on a, warm-started
// from init (nil means the empty matching; init is copied, not mutated, and
// not retained).
func NewPRRefiner(a *sparse.CSR, init *Matching) *PRRefiner {
	return NewPRRefinerWs(a, init, &Workspace{})
}

// Matching returns the refiner's current matching. It is owned by the
// refiner until Step can no longer improve it; callers that mutate it must
// not call Step again.
func (r *PRRefiner) Matching() *Matching { return r.mt }

// Size returns the current matching cardinality.
func (r *PRRefiner) Size() int { return r.mt.Size }

// Done reports whether the matching is provably maximum (no active row
// remains: every free row's neighbors are all label-capped).
func (r *PRRefiner) Done() bool { return len(r.stack) == 0 }

// Step processes up to budget active rows — each pops the stack, bids for
// its cheapest neighbor column and raises that column's label — and reports
// whether active rows remain. A false return means the matching is maximum;
// the refiner stays in that state.
func (r *PRRefiner) Step(budget int) bool {
	a, mt := r.a, r.mt
	for ; budget > 0 && len(r.stack) > 0; budget-- {
		row := r.stack[len(r.stack)-1]
		r.stack = r.stack[:len(r.stack)-1]
		if mt.RowMate[row] != NIL {
			continue
		}
		// Find the cheapest and second-cheapest neighbor labels.
		var c1 int32 = -1
		min1, min2 := r.limit, r.limit
		for p := a.Ptr[row]; p < a.Ptr[row+1]; p++ {
			c := a.Idx[p]
			if r.psi[c] < min1 {
				min2 = min1
				min1 = r.psi[c]
				c1 = c
			} else if r.psi[c] < min2 {
				min2 = r.psi[c]
			}
		}
		if c1 < 0 || min1 >= r.limit {
			continue // row cannot be matched in any maximum matching
		}
		// Evict the current mate (it becomes active again) and take c1.
		if prev := mt.ColMate[c1]; prev != NIL {
			mt.RowMate[prev] = NIL
			r.stack = append(r.stack, prev)
		} else {
			mt.Size++
		}
		mt.RowMate[row] = c1
		mt.ColMate[c1] = row
		// Auction price update: one above the second-best alternative.
		r.psi[c1] = min2 + 1
	}
	return len(r.stack) > 0
}

// Run advances the refiner to the maximum matching and returns it.
func (r *PRRefiner) Run() *Matching {
	n := r.a.RowsN
	if n < 1 {
		n = 1
	}
	for r.Step(n) {
	}
	return r.mt
}

// PushRelabel computes a maximum matching with the push-relabel / auction
// scheme used by the GPU and multicore maximum-transversal codes the paper
// cites (Kaya–Langguth–Manne–Uçar 2013; Deveci et al. 2013). Each free
// row "bids" for its cheapest (lowest-label) neighbor column, evicting the
// column's current mate, and the column's label rises to one above the
// row's second-cheapest alternative. A row whose cheapest neighbor label
// reaches the cap provably has no augmenting path left and stays free.
//
// It is the third independent exact algorithm in this package (after
// Hopcroft–Karp and MC21); the test suite cross-checks all three. It is
// the one-shot form of PRRefiner.
func PushRelabel(a *sparse.CSR, init *Matching) *Matching {
	return NewPRRefiner(a, init).Run()
}
