package exact

import "repro/internal/sparse"

// PushRelabel computes a maximum matching with the push-relabel / auction
// scheme used by the GPU and multicore maximum-transversal codes the paper
// cites (Kaya–Langguth–Manne–Uçar 2013; Deveci et al. 2013). Each free
// row "bids" for its cheapest (lowest-label) neighbor column, evicting the
// column's current mate, and the column's label rises to one above the
// row's second-cheapest alternative. A row whose cheapest neighbor label
// reaches the cap provably has no augmenting path left and stays free.
//
// It is the third independent exact algorithm in this package (after
// Hopcroft–Karp and MC21); the test suite cross-checks all three.
func PushRelabel(a *sparse.CSR, init *Matching) *Matching {
	n, m := a.RowsN, a.ColsN
	mt := NewMatching(n, m)
	if init != nil {
		copy(mt.RowMate, init.RowMate)
		copy(mt.ColMate, init.ColMate)
		mt.Size = init.Size
	}

	// Label cap: an augmenting path alternates rows and columns and visits
	// each column at most once, so any column reachable by one has label
	// < n+m+1. Labels at or above the cap mean "unreachable".
	limit := int32(n + m + 1)
	psi := make([]int32, m)

	// Active rows: LIFO stack (order does not affect correctness).
	stack := make([]int32, 0, n)
	for i := n - 1; i >= 0; i-- {
		if mt.RowMate[i] == NIL && a.Degree(i) > 0 {
			stack = append(stack, int32(i))
		}
	}

	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if mt.RowMate[r] != NIL {
			continue
		}
		// Find the cheapest and second-cheapest neighbor labels.
		var c1 int32 = -1
		min1, min2 := limit, limit
		for p := a.Ptr[r]; p < a.Ptr[r+1]; p++ {
			c := a.Idx[p]
			if psi[c] < min1 {
				min2 = min1
				min1 = psi[c]
				c1 = c
			} else if psi[c] < min2 {
				min2 = psi[c]
			}
		}
		if c1 < 0 || min1 >= limit {
			continue // row cannot be matched in any maximum matching
		}
		// Evict the current mate (it becomes active again) and take c1.
		if prev := mt.ColMate[c1]; prev != NIL {
			mt.RowMate[prev] = NIL
			stack = append(stack, prev)
		} else {
			mt.Size++
		}
		mt.RowMate[r] = c1
		mt.ColMate[c1] = r
		// Auction price update: one above the second-best alternative.
		psi[c1] = min2 + 1
	}
	return mt
}
