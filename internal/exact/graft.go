package exact

import (
	"sync/atomic"

	"repro/internal/par"
	"repro/internal/sparse"
)

// GraftRefiner is the parallel augmenting-path engine: a multi-source BFS
// in the style of Azad et al.'s MS-BFS-Graft, reshaped so that its result
// is a deterministic function of (graph, warm start) at any pool width.
//
// Each exposed (unmatched) row roots an alternating-search tree. A Phase
// grows all trees together, level-synchronously, over the frontier arrays
// QF/QFnext: every frontier row scans its columns, matched columns are
// claimed for exactly one tree, and the claimed column's mate row joins
// that tree and enters the next frontier. Unmatched columns are not
// claimed — they are recorded as augmenting-leaf candidates of every tree
// that reaches them, which is what makes commit-time conflicts possible
// and keeps trees from starving each other of free columns.
//
// Determinism at any width comes from three rules:
//
//  1. Claims are resolved by atomic minimum on the claiming row index, so
//     the owner of every column is the smallest frontier row that reaches
//     it in that level — independent of worker schedule.
//  2. Leaf candidates are resolved by atomic minimum on the packed
//     (column, row) pair, so each tree's candidate augmenting edge is the
//     lexicographically smallest one its frontier level saw.
//  3. The reconciliation pass commits the discovered augmenting paths
//     serially, in fixed root-row-index order. A root whose leaf column
//     was taken by an earlier commit is a conflict loser and is re-queued;
//     the losers then resolve in batched rounds — one shared row sweep
//     recomputes every loser tree's smallest remaining candidate by the
//     same atomic minima, and the losers commit in root order again.
//
// Between phases the forests are recycled rather than rebuilt — the tree
// grafting. Augmented trees release their vertices; trees that found no
// path keep their entire alternating structure, and the released vertices
// are grafted onto the survivors instead of re-running BFS from the roots.
// With a transpose installed (SetTranspose) the next phase's frontier is
// seeded from exactly the surviving-tree rows adjacent to the columns the
// last reconciliation released — the proper graft step, whose per-phase
// cost is proportional to the released neighborhood. Without one the
// frontier conservatively re-seeds from all surviving tree rows. Either
// way each phase restores the invariant that every forest covers all
// vertices alternating-reachable from its root, so a phase that augments
// nothing proves no free column is reachable from any exposed row, i.e.
// the matching is maximum.
//
// The held matching is valid between phases and its size is monotone, so
// GraftRefiner composes with the ensemble engine exactly like HKRefiner.
type GraftRefiner struct {
	a  *sparse.CSR
	at *sparse.CSR // optional transpose; enables released-column frontier seeding
	mt *Matching

	pool   *par.Pool
	width  int
	cancel func() bool

	rowRoot []int32  // tree of each row; NIL = in no tree
	colRoot []int32  // tree of each (claimed, matched) column; NIL = unclaimed
	parent  []int32  // parent[j] = tree row that claimed column j
	claim   []int32  // per-level claim staging; claimFree when idle
	leaf    []uint64 // leaf[r] = packed (col, row) candidate of root r; leafNone unset

	qf, qfNext []int32   // current and next row frontier
	bufRows    [][]int32 // per-worker staging for qfNext
	bufCols    [][]int32 // per-worker staging of newly claimed columns
	bufPend    [][]int32 // per-worker staging for pending
	newCols    []int32   // concatenated bufCols of the current level

	// expand, adopt and the relook variants are the parallel passes as
	// prebuilt loop bodies (they read qf/newCols through the receiver), so
	// a phase dispatches them without allocating per-level closures — the
	// refiner stays inside the Matcher's steady-state allocation budget.
	expand, adopt, relook, relookC func(w, lo, hi int)

	exposed  []int32 // still-unmatched roots, ascending row order
	requeue  []int32 // conflict losers of the current commit pass
	reqMark  []bool  // requeue membership, live only inside reconcile
	dead     []int32 // roots augmented this phase (trees to release)
	deadMark []bool

	released []int32 // columns freed for re-claiming by the last reconcile
	pending  []int32 // adopted rows not yet expanded (their tree held a candidate)
	seedMark []bool  // row dedup for the seeded frontier build
	first    bool    // next Phase is the first (frontier = the exposed roots)

	done bool
}

const (
	// claimFree marks an unclaimed slot in the claim array; it compares
	// greater than every row index, so the atomic-minimum claim never has
	// to special-case it.
	claimFree = int32(inf)
	// leafNone marks a root without a leaf candidate; it compares greater
	// than every packed (col, row) pair.
	leafNone = ^uint64(0)
	// graftChunk is the scheduling grain of the BFS passes: small enough
	// to balance skewed row degrees, large enough to amortize the claim
	// polling.
	graftChunk = 64
	// graftParMin is the smallest per-level work that fans out across the
	// pool; below it the dispatch overhead exceeds the scan.
	graftParMin = 512
)

func packLeaf(col, row int32) uint64 { return uint64(uint32(col))<<32 | uint64(uint32(row)) }

// NewGraftRefiner prepares a graft run on a, warm-started from init (nil
// means the empty matching; init is copied, not mutated, and not
// retained). The refiner runs sequentially until SetParallel is called.
func NewGraftRefiner(a *sparse.CSR, init *Matching) *GraftRefiner {
	return NewGraftRefinerWs(a, init, &Workspace{})
}

// NewGraftRefinerWs is NewGraftRefiner on a reusable Workspace: all search
// arrays and the held matching live in ws, so repeated constructions on
// same-shaped graphs allocate nothing. The returned refiner (and its
// Matching) are valid until the workspace's next construction.
func NewGraftRefinerWs(a *sparse.CSR, init *Matching, ws *Workspace) *GraftRefiner {
	n, m := a.RowsN, a.ColsN
	r := &ws.graft
	r.a = a
	r.at = nil
	r.mt = ws.matching(n, m, init)
	r.pool, r.width, r.cancel = nil, 1, nil
	r.rowRoot = growInt32(r.rowRoot, n)
	r.colRoot = growInt32(r.colRoot, m)
	r.parent = growInt32(r.parent, m)
	r.claim = growInt32(r.claim, m)
	r.leaf = growUint64(r.leaf, n)
	r.reqMark = growBool(r.reqMark, n)
	r.deadMark = growBool(r.deadMark, n)
	r.seedMark = growBool(r.seedMark, n)
	r.released = r.released[:0]
	r.pending = r.pending[:0]
	r.first = true
	for i := range r.rowRoot {
		r.rowRoot[i] = NIL
	}
	for j := range r.colRoot {
		r.colRoot[j] = NIL
		r.claim[j] = claimFree
	}
	r.exposed = r.exposed[:0]
	for i := 0; i < n; i++ {
		if r.mt.RowMate[i] == NIL && a.Degree(i) > 0 {
			r.exposed = append(r.exposed, int32(i))
			r.rowRoot[i] = int32(i)
		}
	}
	r.done = false
	if r.expand == nil {
		r.expand = r.expandLevel
		r.adopt = r.adoptLevel
		r.relook = r.relookRows
		r.relookC = r.relookCols
	}
	return r
}

// SetParallel hands the refiner a pool to fan its BFS passes across. The
// result is bit-identical at every width (including the sequential width
// 1), so the width can change between phases — the ensemble engine runs
// consume-time phases at width 1 inside its own parallel region and
// re-widens for the completion sweep.
func (r *GraftRefiner) SetParallel(pool *par.Pool, width int) {
	r.pool, r.width = pool, width
}

// SetTranspose hands the refiner Aᵀ, switching the phases after the first
// to released-column frontier seeding: only surviving-tree rows adjacent
// to a column the previous reconciliation freed re-enter the BFS, instead
// of the whole surviving forest. The matching found with a transpose may
// differ from the one found without (both are maximum), but for a fixed
// configuration the result is still bit-identical at every pool width.
func (r *GraftRefiner) SetTranspose(at *sparse.CSR) { r.at = at }

// SetCancel installs a cooperative cancellation hook, polled between BFS
// chunks and levels like the heuristic kernels' hooks. After a cancel the
// held matching is still valid (possibly not maximum) but Phase makes no
// further progress; callers discard the run, as with every canceled
// kernel.
func (r *GraftRefiner) SetCancel(cancel func() bool) { r.cancel = cancel }

// Matching returns the refiner's current matching. It is owned by the
// refiner until Phase can no longer improve it; callers that mutate it
// must not call Phase again.
func (r *GraftRefiner) Matching() *Matching { return r.mt }

// Size returns the current matching cardinality.
func (r *GraftRefiner) Size() int { return r.mt.Size }

// Done reports whether the matching is provably maximum (a phase found no
// augmenting path).
func (r *GraftRefiner) Done() bool { return r.done }

func (r *GraftRefiner) stop() bool { return r.cancel != nil && r.cancel() }

// parFor runs body over [0, n) — across the pool when one is installed
// and the level is large enough, inline otherwise. Bodies only use
// order-independent writes (atomic minima, per-worker buffers, exclusive
// slots), so the two paths produce identical state.
func (r *GraftRefiner) parFor(n int, body func(w, lo, hi int)) {
	if r.pool == nil || r.width <= 1 || n < graftParMin {
		body(0, 0, n)
		return
	}
	r.pool.ForCancel(n, r.width, par.Dynamic, graftChunk, r.cancel, body)
}

// Phase runs one graft round — frontier construction over the surviving
// forests, the level-synchronous multi-source BFS, and the deterministic
// reconciliation pass — and reports whether the matching may still be
// improvable. A false return means the matching is maximum; the refiner
// stays in that state.
func (r *GraftRefiner) Phase() bool {
	if r.done {
		return false
	}
	if len(r.exposed) == 0 {
		r.done = true
		return false
	}
	if r.stop() {
		return true
	}
	r.growBufs()

	// Frontier. With a transpose, phases after the first seed from
	// exactly the surviving-tree rows adjacent to a released column —
	// everything else a survivor neighbors was already claimed or ruled
	// out by an earlier phase. Otherwise every row of a surviving tree
	// re-expands (on the first phase that is just the exposed roots);
	// owned columns short-circuit, so the rescan is cheap per edge.
	for _, root := range r.exposed {
		r.leaf[root] = leafNone
	}
	qf := r.qf[:0]
	if r.first || r.at == nil {
		for i, root := range r.rowRoot {
			if root != NIL {
				qf = append(qf, int32(i))
			}
		}
	} else {
		at := r.at
		for _, j := range r.released {
			for p := at.Ptr[j]; p < at.Ptr[j+1]; p++ {
				if i := at.Idx[p]; r.rowRoot[i] != NIL && !r.seedMark[i] {
					r.seedMark[i] = true
					qf = append(qf, i)
				}
			}
		}
		// Pending growth points of surviving trees re-enter the frontier:
		// a tree that held a leaf candidate stopped enqueueing adopted
		// mates, so if it lost the commit it is not yet closed under
		// alternating reachability — these rows are where it resumes.
		for _, i := range r.pending {
			if r.rowRoot[i] != NIL && !r.seedMark[i] {
				r.seedMark[i] = true
				qf = append(qf, i)
			}
		}
		for _, i := range qf {
			r.seedMark[i] = false
		}
	}
	r.qf = qf
	r.released = r.released[:0]
	r.pending = r.pending[:0]
	r.first = false

	for len(r.qf) > 0 && !r.stop() {
		// Pass 1 — expand: every frontier row scans its columns, claiming
		// matched unclaimed columns by atomic row minimum and folding
		// unmatched columns into its tree's leaf candidate.
		r.parFor(len(r.qf), r.expand)
		// Pass 2 — adopt: each newly claimed column joins its winner's
		// tree together with its mate row; the mate enters the next
		// frontier unless the tree already holds a leaf candidate (it is
		// about to augment — or lose and regrow next phase).
		newCols := r.newCols[:0]
		for w := range r.bufCols {
			newCols = append(newCols, r.bufCols[w]...)
			r.bufCols[w] = r.bufCols[w][:0]
		}
		r.newCols = newCols
		r.parFor(len(newCols), r.adopt)
		qfNext := r.qfNext[:0]
		for w := range r.bufRows {
			qfNext = append(qfNext, r.bufRows[w]...)
			r.bufRows[w] = r.bufRows[w][:0]
		}
		for w := range r.bufPend {
			r.pending = append(r.pending, r.bufPend[w]...)
			r.bufPend[w] = r.bufPend[w][:0]
		}
		r.qf, r.qfNext = qfNext, r.qf[:0]
	}
	if r.stop() {
		return true // partial forests are valid; the caller discards the run
	}

	aug := r.reconcile()
	r.releaseDead()
	if aug == 0 {
		// A phase without augmentations found no leaf candidate, which
		// also means no tree stopped early — so no new pending rows. If
		// older pending rows of surviving trees remain, those trees are
		// not yet closed and must keep growing; otherwise the forests
		// jointly cover everything alternating-reachable from the exposed
		// rows and the matching is maximum.
		if r.at != nil {
			for _, i := range r.pending {
				if r.rowRoot[i] != NIL {
					return true
				}
			}
		}
		r.done = true
		return false
	}
	return true
}

// expandLevel is the first pass of one BFS level, over r.qf: frontier
// rows claim their matched, unclaimed neighbor columns by atomic row
// minimum (the first claimer stages the column for the adopt pass) and
// fold unmatched neighbors into their tree's leaf candidate by atomic
// (column, row) minimum. Both resolutions are order-free, which is what
// makes the level's outcome independent of worker schedule.
func (r *GraftRefiner) expandLevel(w, lo, hi int) {
	a, mt, qf := r.a, r.mt, r.qf
	buf := r.bufCols[w]
	for idx := lo; idx < hi; idx++ {
		i := qf[idx]
		root := r.rowRoot[i]
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			j := a.Idx[p]
			if r.colRoot[j] != NIL {
				continue // claimed this level or owned by a surviving tree
			}
			if mt.ColMate[j] == NIL {
				leafMin(&r.leaf[root], packLeaf(j, i))
				continue
			}
			if claimMin(&r.claim[j], i) {
				buf = append(buf, j)
			}
		}
	}
	r.bufCols[w] = buf
}

// adoptLevel is the second pass of one BFS level, over r.newCols: each
// claimed column joins its winning row's tree together with its mate row,
// and the mate enters the next frontier unless the tree already holds a
// leaf candidate (it is about to augment — or lose and regrow next
// phase). A skipped mate is recorded as a pending growth point: if its
// tree survives reconciliation, the tree is not closed under alternating
// reachability until that row expands, so a later phase must re-seed it.
// Every column here is touched by exactly one iteration, so the writes
// are exclusive.
func (r *GraftRefiner) adoptLevel(w, lo, hi int) {
	mt, newCols := r.mt, r.newCols
	buf := r.bufRows[w]
	pend := r.bufPend[w]
	for idx := lo; idx < hi; idx++ {
		j := newCols[idx]
		i := r.claim[j]
		r.claim[j] = claimFree
		root := r.rowRoot[i]
		r.parent[j] = i
		r.colRoot[j] = root
		i2 := mt.ColMate[j]
		r.rowRoot[i2] = root
		if atomic.LoadUint64(&r.leaf[root]) == leafNone {
			buf = append(buf, i2)
		} else {
			pend = append(pend, i2)
		}
	}
	r.bufRows[w] = buf
	r.bufPend[w] = pend
}

// reconcile commits the concurrently discovered augmenting paths in fixed
// root-row-index order. Winners augment along their parent chain; a root
// whose candidate column an earlier commit already matched is a conflict
// loser and is re-queued. Losers resolve in batched rounds: one joint
// sweep over the rows recomputes every re-queued tree's smallest
// remaining (column, row) candidate — atomic minima, so the sweep is
// order-free and parallel — then the losers commit in root order again.
// Each round either augments at least one loser (the first re-queued
// root holding a candidate always finds its column still free) or ends
// the loop, so the rounds terminate. Roots left without a candidate keep
// their tree for the next phase. Returns the number of augmentations.
func (r *GraftRefiner) reconcile() int {
	aug := 0
	requeue := r.requeue[:0]
	r.dead = r.dead[:0]
	for _, root := range r.exposed {
		lp := r.leaf[root]
		if lp == leafNone {
			continue
		}
		j, i := int32(lp>>32), int32(uint32(lp))
		if r.mt.ColMate[j] != NIL {
			requeue = append(requeue, root)
			continue
		}
		r.augment(i, j)
		r.dead = append(r.dead, root)
		aug++
	}
	for len(requeue) > 0 {
		for _, root := range requeue {
			r.leaf[root] = leafNone
			r.reqMark[root] = true
		}
		if r.at != nil {
			r.parFor(r.a.ColsN, r.relookC)
		} else {
			r.parFor(r.a.RowsN, r.relook)
		}
		for _, root := range requeue {
			r.reqMark[root] = false
		}
		// In-place filter: next reuses requeue's backing array, writing
		// only positions already read.
		next := requeue[:0]
		for _, root := range requeue {
			lp := r.leaf[root]
			if lp == leafNone {
				continue // no reachable free column left; regrow next phase
			}
			j, i := int32(lp>>32), int32(uint32(lp))
			if r.mt.ColMate[j] != NIL {
				next = append(next, root)
				continue
			}
			r.augment(i, j)
			r.dead = append(r.dead, root)
			aug++
		}
		requeue = next
	}
	r.requeue = requeue
	return aug
}

// augment flips the alternating path that runs from tree row i — taking
// free column j — up to i's root: every tree row entered through its
// matched column, so RowMate links walk toward the root and parent links
// recover the claiming rows. The terminal column j turns matched and
// unowned, so it joins the released list for the next phase's seeding.
func (r *GraftRefiner) augment(i, j int32) {
	mt := r.mt
	r.released = append(r.released, j)
	for {
		next := mt.RowMate[i]
		mt.RowMate[i] = j
		mt.ColMate[j] = i
		if next == NIL {
			break // reached the exposed root
		}
		j = next
		i = r.parent[j]
	}
	mt.Size++
}

// relookRows is one loser-round sweep as a prebuilt parallel loop body:
// every row belonging to a re-queued tree re-offers its free-column edges
// as leaf candidates via atomic minima. One shared pass serves all losers
// at once — the per-loser tree walk this replaces cost a full row scan
// per conflict, which dominated dense-conflict phases.
func (r *GraftRefiner) relookRows(w, lo, hi int) {
	a, mt := r.a, r.mt
	for i := lo; i < hi; i++ {
		root := r.rowRoot[i]
		if root == NIL || !r.reqMark[root] {
			continue
		}
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			if j := a.Idx[p]; mt.ColMate[j] == NIL {
				leafMin(&r.leaf[root], packLeaf(j, int32(i)))
			}
		}
	}
}

// relookCols is relookRows from the column side, used when a transpose is
// installed: only the free columns scan their rows, which bounds the
// sweep by the free-column neighborhood instead of the whole row set. The
// edge set visited — every (re-queued tree row, free column) edge — and
// therefore every atomic minimum is identical to relookRows'.
func (r *GraftRefiner) relookCols(w, lo, hi int) {
	at, mt := r.at, r.mt
	for j := lo; j < hi; j++ {
		if mt.ColMate[j] != NIL {
			continue
		}
		for p := at.Ptr[j]; p < at.Ptr[j+1]; p++ {
			i := at.Idx[p]
			if root := r.rowRoot[i]; root != NIL && r.reqMark[root] {
				leafMin(&r.leaf[root], packLeaf(int32(j), i))
			}
		}
	}
}

// releaseDead frees the vertices of augmented trees (their alternating
// structure is stale once the matching flipped inside them) and drops the
// augmented roots from the exposed list. Surviving trees keep everything —
// that is the graft.
func (r *GraftRefiner) releaseDead() {
	if len(r.dead) == 0 {
		return
	}
	for _, root := range r.dead {
		r.deadMark[root] = true
	}
	for i, root := range r.rowRoot {
		if root != NIL && r.deadMark[root] {
			r.rowRoot[i] = NIL
		}
	}
	for j, root := range r.colRoot {
		if root != NIL && r.deadMark[root] {
			r.colRoot[j] = NIL
			r.released = append(r.released, int32(j))
		}
	}
	exposed := r.exposed[:0]
	for _, root := range r.exposed {
		if !r.deadMark[root] {
			exposed = append(exposed, root)
		}
	}
	r.exposed = exposed
	for _, root := range r.dead {
		r.deadMark[root] = false
	}
}

// growBufs sizes the per-worker staging buffers to the current width.
func (r *GraftRefiner) growBufs() {
	w := r.width
	if w < 1 {
		w = 1
	}
	for len(r.bufRows) < w {
		r.bufRows = append(r.bufRows, nil)
	}
	for len(r.bufCols) < w {
		r.bufCols = append(r.bufCols, nil)
	}
	for len(r.bufPend) < w {
		r.bufPend = append(r.bufPend, nil)
	}
}

// Run advances the refiner to the maximum matching (or until canceled)
// and returns the held matching.
func (r *GraftRefiner) Run() *Matching {
	for !r.stop() && r.Phase() {
	}
	return r.mt
}

// MSBFSGraft computes a maximum matching with the multi-source BFS +
// grafting engine, fanned out across pool at the given width (nil pool or
// width <= 1 runs sequentially; the result is bit-identical either way).
// init may be nil or a warm-start matching (copied, not mutated). It is
// the one-shot form of GraftRefiner.
func MSBFSGraft(a *sparse.CSR, init *Matching, pool *par.Pool, width int, cancel func() bool) *Matching {
	r := NewGraftRefiner(a, init)
	r.SetParallel(pool, width)
	r.SetCancel(cancel)
	return r.Run()
}

// claimMin lowers *p to row i by atomic minimum and reports whether this
// call was the first claim (the transition away from claimFree) — the
// caller that sees true stages the column for the adopt pass, exactly
// once.
func claimMin(p *int32, i int32) bool {
	for {
		cur := atomic.LoadInt32(p)
		if cur <= i {
			return false
		}
		if atomic.CompareAndSwapInt32(p, cur, i) {
			return cur == claimFree
		}
	}
}

// leafMin lowers *p to v by atomic minimum.
func leafMin(p *uint64, v uint64) {
	for {
		cur := atomic.LoadUint64(p)
		if cur <= v {
			return
		}
		if atomic.CompareAndSwapUint64(p, cur, v) {
			return
		}
	}
}
