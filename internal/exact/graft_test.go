package exact

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// randomInit builds a valid greedy partial matching of a, seeded — the
// warm-start shape the refiners see in production.
func randomInit(a *sparse.CSR, seed uint64) *Matching {
	rng := xrand.New(seed)
	mt := NewMatching(a.RowsN, a.ColsN)
	for i := 0; i < a.RowsN; i++ {
		if rng.Float64() < 0.3 || a.Degree(i) == 0 {
			continue
		}
		p := a.Ptr[i] + rng.Intn(a.Degree(i))
		j := a.Idx[p]
		if mt.ColMate[j] == NIL {
			mt.RowMate[i] = j
			mt.ColMate[j] = int32(i)
			mt.Size++
		}
	}
	return mt
}

func TestGraftMatchesOracleSmall(t *testing.T) {
	f := func(seed uint64, r8, c8, d uint8) bool {
		rows := int(r8)%10 + 1
		cols := int(c8)%10 + 1
		nnz := int(d) % (rows*cols + 1)
		a := gen.ER(rows, cols, nnz, seed)
		want := bruteForce(a)
		mt := MSBFSGraft(a, nil, nil, 1, nil)
		checkMatching(t, a, mt)
		if mt.Size != want {
			t.Logf("graft wrong on seed=%d %dx%d nnz=%d: got %d want %d", seed, rows, cols, nnz, mt.Size, want)
			return false
		}
		mt = MSBFSGraft(a, randomInit(a, seed), nil, 1, nil)
		checkMatching(t, a, mt)
		if mt.Size != want {
			t.Logf("warm graft wrong on seed=%d %dx%d nnz=%d: got %d want %d", seed, rows, cols, nnz, mt.Size, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// adversarialFamilies are the instance families the oracle cross-check
// sweeps: the ones built to stress augmenting-path engines (rank
// deficiency, long thin augmenting paths, degree skew) plus the existing
// stress generators.
func adversarialFamilies(seed uint64) map[string]*sparse.CSR {
	return map[string]*sparse.CSR{
		"rankdef":  gen.RankDeficient(600, 60, 4, seed),
		"longthin": gen.LongThinPath(1200),
		"skew":     gen.SkewedDegree(700, 500, 5, 3, seed),
		"badks":    gen.BadKS(256, 8),
		"er":       gen.ERAvgDeg(800, 800, 3, seed),
		"powerlaw": gen.PowerLaw(600, 1, 2.3, 64, seed),
	}
}

// TestGraftOracleCrossCheck is the satellite oracle gate: on every
// adversarial family × seed, the graft engine, Hopcroft–Karp and the
// structural rank all agree — cold and warm-started.
func TestGraftOracleCrossCheck(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		for name, a := range adversarialFamilies(seed) {
			sprank := Sprank(a)
			cold := MSBFSGraft(a, nil, nil, 1, nil)
			checkMatching(t, a, cold)
			if cold.Size != sprank {
				t.Fatalf("%s seed %d: graft %d != sprank %d", name, seed, cold.Size, sprank)
			}
			warm := MSBFSGraft(a, randomInit(a, seed), nil, 1, nil)
			checkMatching(t, a, warm)
			if warm.Size != sprank {
				t.Fatalf("%s seed %d: warm graft %d != sprank %d", name, seed, warm.Size, sprank)
			}
		}
	}
}

// TestGraftBitIdenticalAcrossWidths is the determinism gate of the
// engine: the refined matching — not just its size — is the same at
// width 1 (the sequential reference) and at every pool width, for cold
// and warm starts across families and seeds.
func TestGraftBitIdenticalAcrossWidths(t *testing.T) {
	pools := map[int]*par.Pool{2: par.NewPool(2), 3: par.NewPool(3), 8: par.NewPool(8)}
	defer func() {
		for _, p := range pools {
			p.Close()
		}
	}()
	for seed := uint64(1); seed <= 3; seed++ {
		for name, a := range adversarialFamilies(seed) {
			for _, init := range []*Matching{nil, randomInit(a, seed)} {
				ref := MSBFSGraft(a, init, nil, 1, nil)
				for width, pool := range pools {
					got := MSBFSGraft(a, init, pool, width, nil)
					if got.Size != ref.Size {
						t.Fatalf("%s seed %d width %d: size %d != sequential %d", name, seed, width, got.Size, ref.Size)
					}
					for i := range ref.RowMate {
						if got.RowMate[i] != ref.RowMate[i] {
							t.Fatalf("%s seed %d width %d: RowMate[%d] = %d != sequential %d",
								name, seed, width, i, got.RowMate[i], ref.RowMate[i])
						}
					}
					for j := range ref.ColMate {
						if got.ColMate[j] != ref.ColMate[j] {
							t.Fatalf("%s seed %d width %d: ColMate[%d] = %d != sequential %d",
								name, seed, width, j, got.ColMate[j], ref.ColMate[j])
						}
					}
				}
			}
		}
	}
}

// TestGraftIncremental verifies the Phase-at-a-time contract the ensemble
// engine relies on: the held matching is valid between phases, its size
// is monotone, and Done flips exactly when Phase reports no progress.
func TestGraftIncremental(t *testing.T) {
	a := gen.RankDeficient(400, 40, 3, 7)
	r := NewGraftRefiner(a, nil)
	prev := 0
	for phases := 0; ; phases++ {
		more := r.Phase()
		validRefinerMatching(t, a, r.Matching())
		if r.Size() < prev {
			t.Fatalf("size shrank: %d -> %d", prev, r.Size())
		}
		prev = r.Size()
		if !more {
			if !r.Done() {
				t.Fatal("Phase returned false but Done is false")
			}
			break
		}
		if phases > a.RowsN {
			t.Fatal("phase loop did not terminate")
		}
	}
	if want := Sprank(a); r.Size() != want {
		t.Fatalf("final size %d != sprank %d", r.Size(), want)
	}
	if r.Phase() {
		t.Fatal("Phase after Done reported progress")
	}
}

func TestGraftWarmStartNotMutated(t *testing.T) {
	a := gen.FullyIndecomposable(300, 2, 5)
	init := NewMatching(300, 300)
	for i := 0; i < 150; i++ {
		init.RowMate[i] = int32(i)
		init.ColMate[i] = int32(i)
		init.Size++
	}
	mt := MSBFSGraft(a, init, nil, 1, nil)
	checkMatching(t, a, mt)
	if mt.Size != 300 {
		t.Fatalf("warm-started graft size %d want 300", mt.Size)
	}
	if init.Size != 150 {
		t.Fatal("warm start mutated")
	}
}

func TestGraftRectangularAndDegenerate(t *testing.T) {
	cases := []*sparse.CSR{
		gen.ER(40, 90, 200, 3),
		gen.ER(90, 40, 200, 3),
		gen.Identity(50),
		gen.LongThinPath(3),
		sparse.FromDense([][]int{{0, 0}, {0, 0}}), // empty
		{RowsN: 0, ColsN: 0, Ptr: []int{0}},
	}
	for k, a := range cases {
		mt := MSBFSGraft(a, nil, nil, 1, nil)
		checkMatching(t, a, mt)
		if want := Sprank(a); mt.Size != want {
			t.Fatalf("case %d: graft %d != sprank %d", k, mt.Size, want)
		}
	}
}

// TestGraftWorkspaceReuse runs the refiner repeatedly on one Workspace —
// the Matcher session pattern — and checks the runs stay identical to a
// fresh construction.
func TestGraftWorkspaceReuse(t *testing.T) {
	ws := &Workspace{}
	for seed := uint64(1); seed <= 4; seed++ {
		a := gen.RankDeficient(300, 30, 3, seed)
		init := randomInit(a, seed)
		got := NewGraftRefinerWs(a, init, ws).Run()
		want := MSBFSGraft(a, init, nil, 1, nil)
		if got.Size != want.Size {
			t.Fatalf("seed %d: ws size %d != fresh %d", seed, got.Size, want.Size)
		}
		for i := range want.RowMate {
			if got.RowMate[i] != want.RowMate[i] {
				t.Fatalf("seed %d: ws RowMate[%d] differs", seed, i)
			}
		}
	}
}

func TestGraftCancel(t *testing.T) {
	a := gen.ERAvgDeg(2000, 2000, 4, 9)
	r := NewGraftRefiner(a, nil)
	r.SetCancel(func() bool { return true })
	mt := r.Run()
	validRefinerMatching(t, a, mt)
	if r.Done() {
		t.Fatal("canceled run claims a proven-maximum matching")
	}
	// A canceled-then-resumed refiner is not a supported state, but the
	// held matching must still be a valid (partial) matching.
	if mt.Size != 0 {
		t.Fatalf("cancel-before-first-phase grew the matching to %d", mt.Size)
	}
}

// TestGraftTransposeSeeding covers the released-column frontier mode: with
// Aᵀ installed the engine must still reach the structural rank on every
// adversarial family, stay bit-identical across pool widths, and reuse a
// workspace cleanly after a transpose-mode run (SetTranspose must not
// leak into the next construction).
func TestGraftTransposeSeeding(t *testing.T) {
	pools := map[int]*par.Pool{2: par.NewPool(2), 5: par.NewPool(5)}
	defer func() {
		for _, p := range pools {
			p.Close()
		}
	}()
	ws := &Workspace{}
	for seed := uint64(1); seed <= 3; seed++ {
		for name, a := range adversarialFamilies(seed) {
			at := a.Transpose()
			sprank := Sprank(a)
			for _, init := range []*Matching{nil, randomInit(a, seed)} {
				r := NewGraftRefinerWs(a, init, ws)
				r.SetTranspose(at)
				ref := r.Run()
				checkMatching(t, a, ref)
				if ref.Size != sprank {
					t.Fatalf("%s seed %d: transpose graft %d != sprank %d", name, seed, ref.Size, sprank)
				}
				refRow := append([]int32(nil), ref.RowMate...)
				refCol := append([]int32(nil), ref.ColMate...)
				for width, pool := range pools {
					r := NewGraftRefinerWs(a, init, ws)
					r.SetTranspose(at)
					r.SetParallel(pool, width)
					got := r.Run()
					for i := range refRow {
						if got.RowMate[i] != refRow[i] {
							t.Fatalf("%s seed %d width %d: RowMate[%d] = %d != sequential %d",
								name, seed, width, i, got.RowMate[i], refRow[i])
						}
					}
					for j := range refCol {
						if got.ColMate[j] != refCol[j] {
							t.Fatalf("%s seed %d width %d: ColMate[%d] = %d != sequential %d",
								name, seed, width, j, got.ColMate[j], refCol[j])
						}
					}
				}
				// A follow-up construction on the same workspace without a
				// transpose must behave exactly like a fresh full-rescan run.
				plain := NewGraftRefinerWs(a, init, ws).Run()
				want := MSBFSGraft(a, init, nil, 1, nil)
				if plain.Size != want.Size {
					t.Fatalf("%s seed %d: post-transpose ws run %d != fresh %d", name, seed, plain.Size, want.Size)
				}
				for i := range want.RowMate {
					if plain.RowMate[i] != want.RowMate[i] {
						t.Fatalf("%s seed %d: post-transpose ws RowMate[%d] differs", name, seed, i)
					}
				}
			}
		}
	}
}
