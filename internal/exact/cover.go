package exact

import "repro/internal/sparse"

// MinVertexCover extracts a minimum vertex cover from a maximum matching
// via König's theorem: with Z the set of vertices reachable by alternating
// paths from unmatched rows, the cover is (rows ∉ Z) ∪ (columns ∈ Z), and
// |cover| = |matching|.
//
// Because every edge must be covered and no cover can be smaller than a
// matching, a returned cover whose size equals mt.Size is a *certificate*
// that mt is maximum — the test suite uses it to certify the exact solvers
// without trusting a second matching algorithm.
func MinVertexCover(a *sparse.CSR, mt *Matching) (rowInCover, colInCover []bool, size int) {
	n, m := a.RowsN, a.ColsN
	rowZ := make([]bool, n)
	colZ := make([]bool, m)
	queue := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if mt.RowMate[i] == NIL {
			rowZ[i] = true
			queue = append(queue, int32(i))
		}
	}
	for qh := 0; qh < len(queue); qh++ {
		i := queue[qh]
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			j := a.Idx[p]
			if colZ[j] {
				continue
			}
			colZ[j] = true
			i2 := mt.ColMate[j]
			// j must be matched: an unmatched j here would complete an
			// augmenting path, contradicting maximality. Guard anyway so
			// non-maximum inputs yield a (non-certifying) cover attempt.
			if i2 != NIL && !rowZ[i2] {
				rowZ[i2] = true
				queue = append(queue, i2)
			}
		}
	}
	rowInCover = make([]bool, n)
	colInCover = make([]bool, m)
	for i := 0; i < n; i++ {
		if !rowZ[i] {
			rowInCover[i] = true
			size++
		}
	}
	for j := 0; j < m; j++ {
		if colZ[j] {
			colInCover[j] = true
			size++
		}
	}
	return rowInCover, colInCover, size
}

// VerifyCover checks that (rowInCover, colInCover) touches every edge of
// a; it returns the number of uncovered edges (0 for a valid cover).
func VerifyCover(a *sparse.CSR, rowInCover, colInCover []bool) int {
	bad := 0
	for i := 0; i < a.RowsN; i++ {
		if rowInCover[i] {
			continue
		}
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			if !colInCover[a.Idx[p]] {
				bad++
			}
		}
	}
	return bad
}

// Certify returns true iff mt is provably a maximum matching of a: it
// must be a valid matching and the König cover built from it must cover
// every edge with exactly mt.Size vertices.
func Certify(a *sparse.CSR, mt *Matching) bool {
	// Validity.
	seen := 0
	for i, j := range mt.RowMate {
		if j == NIL {
			continue
		}
		if j < 0 || int(j) >= a.ColsN || mt.ColMate[j] != int32(i) {
			return false
		}
		ok := false
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			if a.Idx[p] == j {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
		seen++
	}
	if seen != mt.Size {
		return false
	}
	rows, cols, size := MinVertexCover(a, mt)
	return size == mt.Size && VerifyCover(a, rows, cols) == 0
}
