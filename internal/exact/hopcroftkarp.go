// Package exact implements exact maximum-cardinality bipartite matching
// algorithms. The heuristics are measured against these: the quality of a
// matching M is |M| / sprank(A), where sprank is the maximum matching
// cardinality computed here.
//
// Two algorithms are provided: Hopcroft–Karp (O(√n·τ) worst case) and an
// MC21-style single-path augmenting DFS with cheap-assignment lookahead
// (the classic "maximum transversal" algorithm). Both accept a warm-start
// matching, which is exactly how the paper motivates cheap heuristics: as
// jump-start routines for exact solvers.
package exact

import (
	"math"

	"repro/internal/sparse"
)

// NIL marks an unmatched vertex in match arrays.
const NIL = int32(-1)

const inf = int32(math.MaxInt32)

// Matching holds a row->col and col->row matching pair.
type Matching struct {
	RowMate []int32 // RowMate[i] = matched column of row i, or NIL
	ColMate []int32 // ColMate[j] = matched row of column j, or NIL
	Size    int
}

// NewMatching returns an empty matching for an n×m matrix.
func NewMatching(n, m int) *Matching {
	rm := make([]int32, n)
	cm := make([]int32, m)
	for i := range rm {
		rm[i] = NIL
	}
	for j := range cm {
		cm[j] = NIL
	}
	return &Matching{RowMate: rm, ColMate: cm}
}

// FromRowMate reconstructs a Matching (including ColMate and Size) from a
// row->col array; entries out of range are treated as unmatched.
func FromRowMate(rowMate []int32, m int) *Matching {
	mt := NewMatching(len(rowMate), m)
	for i, j := range rowMate {
		if j >= 0 && int(j) < m {
			mt.RowMate[i] = j
			mt.ColMate[j] = int32(i)
			mt.Size++
		}
	}
	return mt
}

// HKRefiner is the incremental form of Hopcroft–Karp: a warm-start
// matching plus the BFS/DFS workspaces, advanced one phase at a time. Each
// Phase augments along a maximal set of vertex-disjoint shortest
// augmenting paths, so the held matching grows monotonically and is a
// valid matching between phases — callers can interleave phases with other
// work (the ensemble engine interleaves them with candidate arrivals) and
// stop as soon as the size crosses a bound, or run to the maximum.
type HKRefiner struct {
	a  *sparse.CSR
	mt *Matching

	dist  []int32
	queue []int32
	// Iterative DFS state: stack of rows and per-row arc cursors.
	arc   []int
	stack []int32

	done bool
}

// NewHKRefiner prepares an incremental Hopcroft–Karp run on a, warm-started
// from init (nil means the empty matching; init is copied, not mutated, and
// not retained).
func NewHKRefiner(a *sparse.CSR, init *Matching) *HKRefiner {
	return NewHKRefinerWs(a, init, &Workspace{})
}

// Matching returns the refiner's current matching. It is owned by the
// refiner until Phase can no longer improve it; callers that mutate it must
// not call Phase again.
func (r *HKRefiner) Matching() *Matching { return r.mt }

// Size returns the current matching cardinality.
func (r *HKRefiner) Size() int { return r.mt.Size }

// Done reports whether the matching is provably maximum (a phase found no
// augmenting path).
func (r *HKRefiner) Done() bool { return r.done }

// Phase runs one Hopcroft–Karp phase — a BFS layering followed by a
// maximal wave of vertex-disjoint shortest augmenting paths — and reports
// whether the matching may still be improvable. A false return means the
// matching is maximum; the refiner stays in that state.
func (r *HKRefiner) Phase() bool {
	if r.done {
		return false
	}
	a, mt, n := r.a, r.mt, r.a.RowsN
	dist := r.dist
	// BFS phase: layer rows by alternating distance from free rows.
	queue := r.queue[:0]
	for i := 0; i < n; i++ {
		if mt.RowMate[i] == NIL {
			dist[i] = 0
			queue = append(queue, int32(i))
		} else {
			dist[i] = inf
		}
	}
	found := false
	for qh := 0; qh < len(queue); qh++ {
		i := queue[qh]
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			j := a.Idx[p]
			i2 := mt.ColMate[j]
			if i2 == NIL {
				found = true
				continue
			}
			if dist[i2] == inf {
				dist[i2] = dist[i] + 1
				queue = append(queue, i2)
			}
		}
	}
	r.queue = queue
	if !found {
		r.done = true
		return false
	}
	// DFS phase: find a maximal set of vertex-disjoint shortest
	// augmenting paths along the layering.
	arc := r.arc
	for i := 0; i < n; i++ {
		arc[i] = a.Ptr[i]
	}
	stack := r.stack
	for s := 0; s < n; s++ {
		if mt.RowMate[s] != NIL || dist[s] != 0 {
			continue
		}
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			advanced := false
			for arc[i] < a.Ptr[i+1] {
				p := arc[i]
				arc[i]++
				j := a.Idx[p]
				i2 := mt.ColMate[j]
				if i2 == NIL {
					// Augment along the stack; mark the rows used so
					// paths in this phase stay vertex-disjoint.
					for k := len(stack) - 1; k >= 0; k-- {
						row := stack[k]
						pj := mt.RowMate[row]
						mt.RowMate[row] = j
						mt.ColMate[j] = row
						dist[row] = inf
						j = pj
					}
					mt.Size++
					stack = stack[:0]
					advanced = true
					break
				}
				if dist[i2] == dist[i]+1 {
					stack = append(stack, i2)
					advanced = true
					break
				}
			}
			if !advanced {
				dist[i] = inf // dead end: prune for this phase
				stack = stack[:len(stack)-1]
			}
		}
	}
	r.stack = stack
	return true
}

// Run advances the refiner to the maximum matching and returns it.
func (r *HKRefiner) Run() *Matching {
	for r.Phase() {
	}
	return r.mt
}

// HopcroftKarp computes a maximum matching of the bipartite graph given by
// a. init may be nil or a valid warm-start matching (it is copied, not
// mutated). The returned matching is maximum regardless of the warm start;
// a good warm start only reduces the number of phases. It is the one-shot
// form of HKRefiner.
func HopcroftKarp(a *sparse.CSR, init *Matching) *Matching {
	return NewHKRefiner(a, init).Run()
}

// Sprank returns the maximum matching cardinality (structural rank) of a.
func Sprank(a *sparse.CSR) int {
	return HopcroftKarp(a, nil).Size
}

// Quality returns |size| / sprank as used throughout the experiments; it
// returns 1 for an empty matrix.
func Quality(size, sprank int) float64 {
	if sprank == 0 {
		return 1
	}
	return float64(size) / float64(sprank)
}
