package exact

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/sparse"
)

// validRefinerMatching checks mt is internally consistent and every matched
// pair is an edge of a — the invariant both refiners promise to hold
// between incremental advances.
func validRefinerMatching(t *testing.T, a *sparse.CSR, mt *Matching) {
	t.Helper()
	size := 0
	for i, j := range mt.RowMate {
		if j == NIL {
			continue
		}
		if mt.ColMate[j] != int32(i) {
			t.Fatalf("row %d -> col %d but col %d -> row %d", i, j, j, mt.ColMate[j])
		}
		found := false
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			if a.Idx[p] == j {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("matched pair (%d,%d) is not an edge", i, j)
		}
		size++
	}
	if size != mt.Size {
		t.Fatalf("size %d but %d matched rows", mt.Size, size)
	}
}

// TestHKRefinerIncremental drives Hopcroft–Karp one phase at a time and
// checks the matching is valid and monotone between phases, reaches the
// same maximum as the one-shot call, and that Done/Phase agree at the end.
func TestHKRefinerIncremental(t *testing.T) {
	for _, seed := range []uint64{1, 5, 9} {
		a := gen.ER(400, 400, 2000, seed)
		want := HopcroftKarp(a, nil).Size

		r := NewHKRefiner(a, nil)
		phases, prev := 0, 0
		for r.Phase() {
			phases++
			validRefinerMatching(t, a, r.Matching())
			if r.Size() < prev {
				t.Fatalf("seed %d: size shrank %d -> %d", seed, prev, r.Size())
			}
			prev = r.Size()
			if phases > 400 {
				t.Fatalf("seed %d: refiner did not converge", seed)
			}
		}
		if !r.Done() {
			t.Fatalf("seed %d: Phase returned false but Done is false", seed)
		}
		if r.Phase() {
			t.Fatalf("seed %d: Phase after done reported progress", seed)
		}
		if r.Size() != want {
			t.Fatalf("seed %d: incremental %d != one-shot %d", seed, r.Size(), want)
		}
	}
}

// TestPRRefinerBoundedSteps drives push-relabel in tiny step budgets and
// checks validity, monotone size and agreement with the one-shot calls.
func TestPRRefinerBoundedSteps(t *testing.T) {
	for _, seed := range []uint64{2, 6, 10} {
		a := gen.ER(300, 320, 1500, seed)
		want := HopcroftKarp(a, nil).Size

		r := NewPRRefiner(a, nil)
		prev, steps := 0, 0
		for r.Step(7) {
			steps++
			if steps%50 == 0 {
				validRefinerMatching(t, a, r.Matching())
			}
			if r.Size() < prev {
				t.Fatalf("seed %d: size shrank %d -> %d", seed, prev, r.Size())
			}
			prev = r.Size()
			if steps > 1_000_000 {
				t.Fatalf("seed %d: refiner did not converge", seed)
			}
		}
		if !r.Done() {
			t.Fatalf("seed %d: Step returned false but Done is false", seed)
		}
		validRefinerMatching(t, a, r.Matching())
		if r.Size() != want {
			t.Fatalf("seed %d: incremental PR %d != HK %d", seed, r.Size(), want)
		}
	}
}

// TestRefinersWarmStart: both refiners warm-started from a partial matching
// keep every guarantee — and the one-shot wrappers (which now delegate to
// them) agree with each other.
func TestRefinersWarmStart(t *testing.T) {
	for _, seed := range []uint64{3, 7} {
		a := gen.ER(350, 350, 1700, seed)
		// Build a greedy warm start.
		init := NewMatching(a.RowsN, a.ColsN)
		for i := 0; i < a.RowsN; i++ {
			for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
				j := a.Idx[p]
				if init.ColMate[j] == NIL {
					init.RowMate[i] = j
					init.ColMate[j] = int32(i)
					init.Size++
					break
				}
			}
		}
		want := HopcroftKarp(a, nil).Size
		hk := HopcroftKarp(a, init)
		pr := PushRelabel(a, init)
		if hk.Size != want || pr.Size != want {
			t.Fatalf("seed %d: warm-started HK %d / PR %d != maximum %d", seed, hk.Size, pr.Size, want)
		}
		if init.Size > want {
			t.Fatalf("seed %d: warm start larger than maximum", seed)
		}
		validRefinerMatching(t, a, hk)
		validRefinerMatching(t, a, pr)
	}
}
