package exact

import "repro/internal/sparse"

// MC21 computes a maximum matching with row-by-row augmenting DFS plus the
// classic cheap-assignment lookahead (Duff's MC21 algorithm). It is the
// second independent exact implementation, used to cross-check
// Hopcroft–Karp, and — because it augments one free row at a time — it is
// the natural consumer of a warm-start matching: only rows left unmatched
// by the heuristic trigger a search.
func MC21(a *sparse.CSR, init *Matching) *Matching {
	n, m := a.RowsN, a.ColsN
	mt := NewMatching(n, m)
	if init != nil {
		copy(mt.RowMate, init.RowMate)
		copy(mt.ColMate, init.ColMate)
		mt.Size = init.Size
	}

	// lookahead[i]: next unexplored arc for the cheap scan of row i.
	lookahead := make([]int, n)
	for i := range lookahead {
		lookahead[i] = a.Ptr[i]
	}
	visited := make([]int32, m) // stamp of the last search that saw column j
	for j := range visited {
		visited[j] = -1
	}
	arc := make([]int, n)
	rowStack := make([]int32, 0, 64)
	colStack := make([]int32, 0, 64)

	for s := 0; s < n; s++ {
		if mt.RowMate[s] != NIL {
			continue
		}
		stamp := int32(s)
		rowStack = append(rowStack[:0], int32(s))
		colStack = colStack[:0]
		arc[s] = a.Ptr[s]
		augmented := false
		for len(rowStack) > 0 && !augmented {
			i := rowStack[len(rowStack)-1]
			// Cheap scan: try to find a free column immediately.
			for lookahead[i] < a.Ptr[i+1] {
				j := a.Idx[lookahead[i]]
				lookahead[i]++
				if mt.ColMate[j] == NIL {
					// Augment: match (i, j) and shift along the stack.
					colStack = append(colStack, j)
					for k := len(rowStack) - 1; k >= 0; k-- {
						r := rowStack[k]
						c := colStack[k]
						mt.RowMate[r] = c
						mt.ColMate[c] = r
					}
					mt.Size++
					augmented = true
					break
				}
			}
			if augmented {
				break
			}
			// Deep scan: follow a matched column not seen this search.
			advanced := false
			for arc[i] < a.Ptr[i+1] {
				p := arc[i]
				arc[i]++
				j := a.Idx[p]
				if visited[j] == stamp {
					continue
				}
				visited[j] = stamp
				i2 := mt.ColMate[j]
				// i2 != NIL here: free columns are consumed by the cheap
				// scan before the deep scan can reach them only if the
				// cheap cursor already passed them, so check anyway.
				if i2 == NIL {
					colStack = append(colStack, j)
					for k := len(rowStack) - 1; k >= 0; k-- {
						r := rowStack[k]
						c := colStack[k]
						mt.RowMate[r] = c
						mt.ColMate[c] = r
					}
					mt.Size++
					augmented = true
					break
				}
				colStack = append(colStack, j)
				rowStack = append(rowStack, i2)
				arc[i2] = a.Ptr[i2]
				advanced = true
				break
			}
			if !advanced && !augmented {
				rowStack = rowStack[:len(rowStack)-1]
				if len(colStack) > 0 {
					colStack = colStack[:len(colStack)-1]
				}
			}
		}
	}
	return mt
}

// Augment completes an arbitrary (possibly partial) matching to a maximum
// one using MC21 and reports how many augmenting-path searches were needed
// (the number of rows that were still free). This quantifies the value of
// a heuristic jump-start.
func Augment(a *sparse.CSR, init *Matching) (mt *Matching, freeRows int) {
	if init == nil {
		init = NewMatching(a.RowsN, a.ColsN)
	}
	for i := 0; i < a.RowsN; i++ {
		if init.RowMate[i] == NIL {
			freeRows++
		}
	}
	return MC21(a, init), freeRows
}
