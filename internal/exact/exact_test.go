package exact

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

func checkMatching(t *testing.T, a *sparse.CSR, mt *Matching) {
	t.Helper()
	size := 0
	for i, j := range mt.RowMate {
		if j == NIL {
			continue
		}
		size++
		if mt.ColMate[j] != int32(i) {
			t.Fatalf("inconsistent mates: row %d -> col %d -> row %d", i, j, mt.ColMate[j])
		}
		found := false
		for _, c := range a.Row(i) {
			if c == j {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("matched non-edge (%d,%d)", i, j)
		}
	}
	if size != mt.Size {
		t.Fatalf("size field %d but %d matched rows", mt.Size, size)
	}
}

func TestHopcroftKarpSmallKnown(t *testing.T) {
	cases := []struct {
		grid [][]int
		want int
	}{
		{[][]int{{1}}, 1},
		{[][]int{{0}}, 0},
		{[][]int{{1, 1}, {1, 0}}, 2},
		{[][]int{{1, 1, 0}, {1, 0, 0}, {0, 1, 0}}, 2}, // col 2 empty
		{[][]int{ // classic 4x4 with perfect matching
			{1, 1, 0, 0},
			{0, 1, 1, 0},
			{0, 0, 1, 1},
			{1, 0, 0, 1},
		}, 4},
		{[][]int{ // star: one column shared by all rows
			{1, 0},
			{1, 0},
			{1, 0},
		}, 1},
	}
	for k, c := range cases {
		a := sparse.FromDense(c.grid)
		mt := HopcroftKarp(a, nil)
		checkMatching(t, a, mt)
		if mt.Size != c.want {
			t.Errorf("case %d: size %d want %d", k, mt.Size, c.want)
		}
	}
}

func TestMC21SmallKnown(t *testing.T) {
	a := sparse.FromDense([][]int{
		{1, 1, 0, 0},
		{0, 1, 1, 0},
		{0, 0, 1, 1},
		{1, 0, 0, 1},
	})
	mt := MC21(a, nil)
	checkMatching(t, a, mt)
	if mt.Size != 4 {
		t.Fatalf("MC21 size %d want 4", mt.Size)
	}
}

func TestHopcroftKarpEqualsMC21(t *testing.T) {
	f := func(seed uint64, r8, c8 uint8, dens uint8) bool {
		rows := int(r8)%50 + 1
		cols := int(c8)%50 + 1
		nnz := int(dens) % (rows*cols + 1)
		a := gen.ER(rows, cols, nnz, seed)
		hk := HopcroftKarp(a, nil)
		mc := MC21(a, nil)
		return hk.Size == mc.Size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchingsAreValid(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		a := gen.ER(80, 70, 400, seed)
		checkMatching(t, a, HopcroftKarp(a, nil))
		checkMatching(t, a, MC21(a, nil))
	}
}

func TestKoenigBoundOnKnownFamilies(t *testing.T) {
	// Families with known sprank.
	if got := Sprank(gen.Identity(33)); got != 33 {
		t.Fatalf("identity sprank %d", got)
	}
	if got := Sprank(gen.Full(17)); got != 17 {
		t.Fatalf("full sprank %d", got)
	}
	if got := Sprank(gen.Band(40, 0, 1)); got != 40 {
		t.Fatalf("band sprank %d", got)
	}
	if got := Sprank(gen.BadKS(64, 8)); got != 64 {
		t.Fatalf("badks sprank %d", got)
	}
	// A block of 3 rows sharing only 2 columns caps the matching.
	a := sparse.FromDense([][]int{
		{1, 1, 0, 0},
		{1, 1, 0, 0},
		{1, 1, 0, 0},
		{0, 0, 1, 1},
	})
	if got := Sprank(a); got != 3 {
		t.Fatalf("deficient sprank %d want 3", got)
	}
}

func TestWarmStartPreservedAndCompleted(t *testing.T) {
	a := gen.FullyIndecomposable(500, 2, 3)
	// Warm start: match the diagonal of the first half.
	init := NewMatching(500, 500)
	for i := 0; i < 250; i++ {
		init.RowMate[i] = int32(i)
		init.ColMate[i] = int32(i)
		init.Size++
	}
	hk := HopcroftKarp(a, init)
	checkMatching(t, a, hk)
	if hk.Size != 500 {
		t.Fatalf("warm-started HK size %d want 500", hk.Size)
	}
	mc := MC21(a, init)
	checkMatching(t, a, mc)
	if mc.Size != 500 {
		t.Fatalf("warm-started MC21 size %d want 500", mc.Size)
	}
	// Warm start must not be mutated.
	if init.Size != 250 || init.RowMate[0] != 0 {
		t.Fatal("warm start mutated")
	}
}

func TestWarmStartCannotLowerResult(t *testing.T) {
	f := func(seed uint64) bool {
		a := gen.ER(60, 60, 240, seed)
		plain := HopcroftKarp(a, nil)
		// Adversarial warm start: greedy first-fit.
		init := NewMatching(60, 60)
		for i := 0; i < 60; i++ {
			for _, j := range a.Row(i) {
				if init.ColMate[j] == NIL {
					init.RowMate[i] = j
					init.ColMate[j] = int32(i)
					init.Size++
					break
				}
			}
		}
		warm := HopcroftKarp(a, init)
		return warm.Size == plain.Size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAugmentCountsFreeRows(t *testing.T) {
	a := gen.Identity(10)
	init := NewMatching(10, 10)
	for i := 0; i < 4; i++ {
		init.RowMate[i] = int32(i)
		init.ColMate[i] = int32(i)
		init.Size++
	}
	mt, free := Augment(a, init)
	if free != 6 {
		t.Fatalf("free rows %d want 6", free)
	}
	if mt.Size != 10 {
		t.Fatalf("augmented size %d want 10", mt.Size)
	}
	mt2, free2 := Augment(a, nil)
	if free2 != 10 || mt2.Size != 10 {
		t.Fatalf("nil-init augment: free %d size %d", free2, mt2.Size)
	}
}

func TestFromRowMate(t *testing.T) {
	rm := []int32{2, NIL, 0}
	mt := FromRowMate(rm, 3)
	if mt.Size != 2 {
		t.Fatalf("size %d", mt.Size)
	}
	if mt.ColMate[2] != 0 || mt.ColMate[0] != 2 || mt.ColMate[1] != NIL {
		t.Fatalf("colmate %v", mt.ColMate)
	}
}

func TestQualityHelper(t *testing.T) {
	if Quality(5, 10) != 0.5 {
		t.Fatal("quality wrong")
	}
	if Quality(0, 0) != 1 {
		t.Fatal("empty matrix quality should be 1")
	}
}

func TestRectangularMatrices(t *testing.T) {
	// Wide and tall shapes.
	wide := gen.ER(30, 90, 300, 5)
	tall := gen.ER(90, 30, 300, 5)
	hkW := HopcroftKarp(wide, nil)
	hkT := HopcroftKarp(tall, nil)
	checkMatching(t, wide, hkW)
	checkMatching(t, tall, hkT)
	if hkW.Size > 30 || hkT.Size > 30 {
		t.Fatal("matching exceeds min(rows,cols)")
	}
	if hkW.Size != MC21(wide, nil).Size || hkT.Size != MC21(tall, nil).Size {
		t.Fatal("HK and MC21 disagree on rectangular instance")
	}
}

func TestPathGraphPerfectMatching(t *testing.T) {
	// Bipartite path r0-c0-r1-c1-...: perfect matching exists.
	n := 100
	entries := []sparse.Coord{}
	for i := 0; i < n; i++ {
		entries = append(entries, sparse.Coord{I: int32(i), J: int32(i)})
		if i+1 < n {
			entries = append(entries, sparse.Coord{I: int32(i + 1), J: int32(i)})
		}
	}
	a, err := sparse.FromCOO(n, n, entries, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := HopcroftKarp(a, nil).Size; got != n {
		t.Fatalf("path matching %d want %d", got, n)
	}
}

func TestLargeSparseAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := xrand.New(1)
	for trial := 0; trial < 5; trial++ {
		n := 2000 + rng.Intn(2000)
		a := gen.ERAvgDeg(n, n, 3, uint64(trial)*7+1)
		hk := HopcroftKarp(a, nil)
		mc := MC21(a, nil)
		checkMatching(t, a, hk)
		if hk.Size != mc.Size {
			t.Fatalf("n=%d: HK %d != MC21 %d", n, hk.Size, mc.Size)
		}
	}
}
