package exact

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/sparse"
)

// bruteForce computes the exact maximum matching size by exponential
// search over column subsets (memoized on (row, used-column bitmask)).
// Only usable for cols <= 20; it is the ground-truth oracle for the three
// polynomial algorithms.
func bruteForce(a *sparse.CSR) int {
	if a.ColsN > 20 {
		panic("bruteForce: too many columns")
	}
	memo := map[uint64]int{}
	var rec func(i int, used uint32) int
	rec = func(i int, used uint32) int {
		if i == a.RowsN {
			return 0
		}
		key := uint64(i)<<32 | uint64(used)
		if v, ok := memo[key]; ok {
			return v
		}
		best := rec(i+1, used) // leave row i unmatched
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			j := a.Idx[p]
			if used&(1<<uint(j)) == 0 {
				if v := 1 + rec(i+1, used|1<<uint(j)); v > best {
					best = v
				}
			}
		}
		memo[key] = best
		return best
	}
	return rec(0, 0)
}

func TestBruteForceOracleKnown(t *testing.T) {
	a := sparse.FromDense([][]int{
		{1, 1, 0},
		{1, 0, 0},
		{0, 1, 0},
	})
	if got := bruteForce(a); got != 2 {
		t.Fatalf("oracle %d want 2", got)
	}
	if got := bruteForce(gen.Identity(8)); got != 8 {
		t.Fatalf("oracle identity %d", got)
	}
}

// TestAllSolversMatchOracle compares Hopcroft–Karp, MC21 and PushRelabel
// against exhaustive search on thousands of small random instances.
func TestAllSolversMatchOracle(t *testing.T) {
	f := func(seed uint64, r8, c8, d uint8) bool {
		rows := int(r8)%10 + 1
		cols := int(c8)%10 + 1
		nnz := int(d) % (rows*cols + 1)
		a := gen.ER(rows, cols, nnz, seed)
		want := bruteForce(a)
		if HopcroftKarp(a, nil).Size != want {
			t.Logf("HK wrong on seed=%d %dx%d nnz=%d", seed, rows, cols, nnz)
			return false
		}
		if MC21(a, nil).Size != want {
			t.Logf("MC21 wrong on seed=%d %dx%d nnz=%d", seed, rows, cols, nnz)
			return false
		}
		if PushRelabel(a, nil).Size != want {
			t.Logf("PushRelabel wrong on seed=%d %dx%d nnz=%d", seed, rows, cols, nnz)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPushRelabelMatchesHKOnLargerInstances(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		n := 500 + int(seed)*100
		a := gen.ERAvgDeg(n, n, float64(seed%5)+1, seed)
		hk := HopcroftKarp(a, nil)
		pr := PushRelabel(a, nil)
		checkMatching(t, a, pr)
		if pr.Size != hk.Size {
			t.Fatalf("seed %d: PushRelabel %d != HK %d", seed, pr.Size, hk.Size)
		}
	}
}

func TestPushRelabelRectangularAndDeficient(t *testing.T) {
	cases := []*sparse.CSR{
		gen.ER(40, 90, 200, 3),
		gen.ER(90, 40, 200, 3),
		gen.BadKS(64, 8),
		gen.Identity(50),
		sparse.FromDense([][]int{{0, 0}, {0, 0}}), // empty
	}
	for k, a := range cases {
		pr := PushRelabel(a, nil)
		checkMatching(t, a, pr)
		if pr.Size != HopcroftKarp(a, nil).Size {
			t.Fatalf("case %d: sizes differ", k)
		}
	}
}

func TestPushRelabelWarmStart(t *testing.T) {
	a := gen.FullyIndecomposable(400, 2, 7)
	init := NewMatching(400, 400)
	for i := 0; i < 200; i++ {
		init.RowMate[i] = int32(i)
		init.ColMate[i] = int32(i)
		init.Size++
	}
	pr := PushRelabel(a, init)
	checkMatching(t, a, pr)
	if pr.Size != 400 {
		t.Fatalf("warm-started push-relabel size %d want 400", pr.Size)
	}
	if init.Size != 200 {
		t.Fatal("warm start mutated")
	}
}
