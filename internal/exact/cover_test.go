package exact

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/sparse"
)

func TestKoenigCertificateOnRandomInstances(t *testing.T) {
	f := func(seed uint64, r8, c8, d uint8) bool {
		rows := int(r8)%60 + 1
		cols := int(c8)%60 + 1
		nnz := (int(d) % 6) * rows
		a := gen.ER(rows, cols, nnz, seed)
		for _, mt := range []*Matching{
			HopcroftKarp(a, nil), MC21(a, nil), PushRelabel(a, nil),
		} {
			if !Certify(a, mt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKoenigCertificateLarge(t *testing.T) {
	a := gen.ERAvgDeg(100000, 100000, 4, 7)
	mt := HopcroftKarp(a, nil)
	if !Certify(a, mt) {
		t.Fatal("Hopcroft-Karp result failed certification on large instance")
	}
}

func TestCertifyRejectsNonMaximum(t *testing.T) {
	a := gen.FullyIndecomposable(100, 1, 3)
	// A maximal-but-not-maximum matching: greedy first fit often leaves
	// augmenting paths on this family; force one by leaving a row out.
	mt := HopcroftKarp(a, nil)
	if mt.Size != 100 {
		t.Fatal("setup: expected perfect matching")
	}
	// Remove one pair: still valid, no longer maximum.
	j := mt.RowMate[0]
	mt.RowMate[0] = NIL
	mt.ColMate[j] = NIL
	mt.Size--
	if Certify(a, mt) {
		t.Fatal("non-maximum matching certified")
	}
}

func TestCertifyRejectsCorrupt(t *testing.T) {
	a := gen.Identity(10)
	mt := HopcroftKarp(a, nil)
	bad := NewMatching(10, 10)
	copy(bad.RowMate, mt.RowMate)
	copy(bad.ColMate, mt.ColMate)
	bad.Size = mt.Size
	bad.RowMate[0] = 5 // not an edge, and inconsistent with ColMate
	if Certify(a, bad) {
		t.Fatal("corrupt matching certified")
	}
	short := NewMatching(10, 10)
	short.Size = 3 // size lies
	if Certify(a, short) {
		t.Fatal("size-lying matching certified")
	}
}

func TestCoverOnDeficientKnown(t *testing.T) {
	// 3 rows share 2 columns: max matching 2, min cover = the 2 columns.
	a := sparse.FromDense([][]int{
		{1, 1},
		{1, 1},
		{1, 1},
	})
	mt := HopcroftKarp(a, nil)
	rows, cols, size := MinVertexCover(a, mt)
	if size != 2 {
		t.Fatalf("cover size %d want 2", size)
	}
	if VerifyCover(a, rows, cols) != 0 {
		t.Fatal("cover invalid")
	}
	if !cols[0] || !cols[1] {
		t.Fatal("expected the two columns to form the cover")
	}
}

func TestCoverEmptyGraph(t *testing.T) {
	a, _ := sparse.FromCOO(4, 4, nil, false)
	mt := HopcroftKarp(a, nil)
	rows, cols, size := MinVertexCover(a, mt)
	if size != 0 || VerifyCover(a, rows, cols) != 0 {
		t.Fatal("empty graph should have empty cover")
	}
}
