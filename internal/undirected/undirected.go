// Package undirected extends the paper's heuristics to general (non-
// bipartite) graphs — the future-work direction announced in the paper's
// conclusion ("the algorithms and results extend naturally").
//
// The TwoSidedMatch analog for an undirected graph G samples one neighbor
// per vertex from a symmetry-preserving doubly stochastic scaling of G's
// adjacency matrix, giving a "1-out" subgraph in which every component
// again has at most one cycle (n vertices, ≤ n distinct edges). Karp–
// Sipser is exact on such pseudoforests, but unlike the bipartite case the
// surviving cycles can be odd, so the second phase walks each cycle and
// matches alternating edges instead of using the bipartite column-side
// trick.
package undirected

import (
	"errors"
	"math"
	"sync/atomic"

	"repro/internal/par"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// NIL marks an unmatched vertex.
const NIL = int32(-1)

// ErrNotSymmetric reports an adjacency structure that is not symmetric.
var ErrNotSymmetric = errors.New("undirected: adjacency pattern not symmetric")

// Graph is an undirected graph stored as a symmetric sparse adjacency
// pattern (both (u,v) and (v,u) present; self loops ignored for matching).
type Graph struct {
	A *sparse.CSR
}

// New validates that a is square and symmetric and wraps it.
func New(a *sparse.CSR) (*Graph, error) {
	if a.RowsN != a.ColsN {
		return nil, ErrNotSymmetric
	}
	if !a.Equal(a.Transpose()) {
		return nil, ErrNotSymmetric
	}
	return &Graph{A: a}, nil
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.A.RowsN }

// Options mirrors core.Options for the undirected kernels.
type Options struct {
	Workers int
	Policy  par.Policy
	Chunk   int
	Seed    uint64
}

func (o Options) chunk() int {
	if o.Chunk <= 0 {
		return par.DefaultChunk
	}
	return o.Chunk
}

// ScaleSymmetric computes a single scaling vector d such that s_ij =
// d[i]·a_ij·d[j] approaches symmetric doubly stochastic form, using the
// symmetry-preserving iteration of Knight, Ruiz and Uçar (each step
// divides d by the square root of the current row sums). It returns d and
// the final error max_i |rowsum_i − 1|.
func ScaleSymmetric(a *sparse.CSR, iters, workers int) ([]float64, float64) {
	n := a.RowsN
	d := make([]float64, n)
	for i := range d {
		d[i] = 1
	}
	rsum := make([]float64, n)
	compute := func() {
		par.For(n, workers, par.Dynamic, par.DefaultChunk, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				s := 0.0
				for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
					v := 1.0
					if a.Val != nil {
						v = a.Val[p]
					}
					s += d[i] * v * d[a.Idx[p]]
				}
				rsum[i] = s
			}
		})
	}
	for it := 0; it < iters; it++ {
		compute()
		par.For(n, workers, par.Dynamic, par.DefaultChunk, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				if rsum[i] > 0 {
					d[i] /= math.Sqrt(rsum[i])
				}
			}
		})
	}
	compute()
	err := 0.0
	for i := 0; i < n; i++ {
		if a.Ptr[i] < a.Ptr[i+1] {
			if e := math.Abs(rsum[i] - 1); e > err {
				err = e
			}
		}
	}
	return d, err
}

// SampleChoices draws one neighbor per vertex with probability
// proportional to the scaled entries (d may be nil for uniform). Isolated
// vertices and vertices whose only neighbor is themselves get NIL.
func SampleChoices(a *sparse.CSR, d []float64, opt Options) []int32 {
	n := a.RowsN
	choice := make([]int32, n)
	base := xrand.Base(opt.Seed)
	par.For(n, opt.Workers, opt.Policy, opt.chunk(), func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			rng := xrand.Indexed(base, u)
			choice[u] = sampleNeighbor(a, d, u, &rng)
		}
	})
	return choice
}

func sampleNeighbor(a *sparse.CSR, d []float64, u int, rng *xrand.SplitMix64) int32 {
	s, e := a.Ptr[u], a.Ptr[u+1]
	total := 0.0
	for p := s; p < e; p++ {
		if int(a.Idx[p]) == u {
			continue // never choose a self loop
		}
		total += weight(a, d, p)
	}
	if total <= 0 {
		return NIL
	}
	r := rng.Float64Open() * total
	acc := 0.0
	last := NIL
	for p := s; p < e; p++ {
		if int(a.Idx[p]) == u {
			continue
		}
		acc += weight(a, d, p)
		last = a.Idx[p]
		if acc >= r {
			return a.Idx[p]
		}
	}
	return last
}

func weight(a *sparse.CSR, d []float64, p int) float64 {
	w := 1.0
	if a.Val != nil {
		w = a.Val[p]
	}
	if d != nil {
		w *= d[a.Idx[p]]
	}
	return w
}

// KarpSipser1Out computes a maximum matching of the 1-out subgraph defined
// by choice (choice[u] = NIL for isolated vertices). Phase 1 is the same
// lock-free out-one chain consumption as the bipartite KarpSipserMT; the
// residual graph is a disjoint union of cycles and 2-cliques, which a
// cycle-walking second phase matches optimally ((len-1)/2 edges on odd
// cycles, len/2 on even ones).
func KarpSipser1Out(choice []int32, opt Options) []int32 {
	n := len(choice)
	match := make([]int32, n)
	mark := make([]int32, n)
	deg := make([]int32, n)

	par.For(n, opt.Workers, opt.Policy, opt.chunk(), func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			match[u] = NIL
			mark[u] = 1
			deg[u] = 1
		}
	})
	par.For(n, opt.Workers, opt.Policy, opt.chunk(), func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			v := choice[u]
			if v == NIL || int(v) == u {
				continue
			}
			atomic.StoreInt32(&mark[v], 0)
			if choice[v] != int32(u) {
				atomic.AddInt32(&deg[v], 1)
			}
		}
	})

	// Phase 1: out-one chains, identical to the bipartite kernel.
	par.For(n, opt.Workers, opt.Policy, opt.chunk(), func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			if atomic.LoadInt32(&mark[u]) != 1 || choice[u] == NIL || int(choice[u]) == u {
				continue
			}
			curr := int32(u)
			for curr != NIL {
				nbr := choice[curr]
				if nbr == NIL || nbr == curr {
					break // chain ran into a vertex with no out-edge
				}
				if atomic.CompareAndSwapInt32(&match[nbr], NIL, curr) {
					atomic.StoreInt32(&match[curr], nbr)
					next := choice[nbr]
					if next != NIL && next != nbr &&
						atomic.LoadInt32(&match[next]) == NIL &&
						atomic.AddInt32(&deg[next], -1) == 1 {
						curr = next
						continue
					}
				}
				curr = NIL
			}
		}
	})

	// Phase 2: remaining unmatched vertices lie on pure choice-cycles
	// (u -> choice[u] -> ... -> u, all unmatched). Walk each cycle once,
	// matching alternating edges; odd cycles leave exactly one vertex
	// free. Sequential: total cycle mass is tiny (O(sqrt(n)) expected on
	// random 1-out graphs), and correctness is the priority here.
	visited := make([]bool, n)
	for u := 0; u < n; u++ {
		if match[u] != NIL || visited[u] || choice[u] == NIL || int(choice[u]) == u {
			continue
		}
		// Collect the chain u -> choice[u] -> ... until it closes on
		// itself (a cycle, possibly with a tail for adversarial inputs)
		// or dies at a matched/foreign vertex.
		cyc := []int32{int32(u)}
		pos := map[int32]int{int32(u): 0}
		visited[u] = true
		v := choice[u]
		start := -1
		for {
			if v == NIL || match[v] != NIL {
				break // dead end: the tail stays free
			}
			if p, ok := pos[v]; ok {
				start = p // chain closed: cyc[start:] is the cycle
				break
			}
			if visited[v] {
				break // joins an earlier walk's tail
			}
			visited[v] = true
			pos[v] = len(cyc)
			cyc = append(cyc, v)
			v = choice[v]
		}
		if start < 0 {
			continue
		}
		ring := cyc[start:]
		for k := 0; k+1 < len(ring); k += 2 {
			match[ring[k]] = ring[k+1]
			match[ring[k+1]] = ring[k]
		}
	}
	return match
}

// Result is the outcome of Match.
type Result struct {
	Match    []int32 // match[u] = partner of u, or NIL
	Size     int     // number of matched edges
	Choices  []int32 // the sampled 1-out structure, for analysis
	ScaleErr float64
}

// Match runs the undirected 1-out heuristic: symmetric scaling, neighbor
// sampling, exact Karp–Sipser on the sampled pseudoforest.
func (g *Graph) Match(scalingIters int, opt Options) *Result {
	var d []float64
	var errv float64
	if scalingIters > 0 {
		d, errv = ScaleSymmetric(g.A, scalingIters, opt.Workers)
	}
	choices := SampleChoices(g.A, d, opt)
	match := KarpSipser1Out(choices, opt)
	size := 0
	for u, v := range match {
		if v != NIL && int(v) > u {
			size++
		}
	}
	return &Result{Match: match, Size: size, Choices: choices, ScaleErr: errv}
}

// Validate checks that match is a valid matching of g: mutual partners
// joined by actual edges, no self-matches.
func (g *Graph) Validate(match []int32) error {
	if len(match) != g.N() {
		return errors.New("undirected: match length mismatch")
	}
	for u, v := range match {
		if v == NIL {
			continue
		}
		if int(v) == u {
			return errors.New("undirected: self-matched vertex")
		}
		if v < 0 || int(v) >= g.N() || match[v] != int32(u) {
			return errors.New("undirected: partners not mutual")
		}
		found := false
		for _, w := range g.A.Row(u) {
			if w == v {
				found = true
				break
			}
		}
		if !found {
			return errors.New("undirected: matched pair is not an edge")
		}
	}
	return nil
}
