package undirected

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

func opts(workers int, seed uint64) Options {
	return Options{Workers: workers, Policy: par.Dynamic, Chunk: 64, Seed: seed}
}

// randomUndirected builds a symmetric ER pattern without self loops.
func randomUndirected(n int, avgDeg float64, seed uint64) *Graph {
	rng := xrand.New(seed)
	m := int(avgDeg * float64(n) / 2)
	entries := make([]sparse.Coord, 0, 2*m)
	for k := 0; k < m; k++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		entries = append(entries, sparse.Coord{I: u, J: v}, sparse.Coord{I: v, J: u})
	}
	a, err := sparse.FromCOO(n, n, entries, false)
	if err != nil {
		panic(err)
	}
	g, err := New(a)
	if err != nil {
		panic(err)
	}
	return g
}

// bruteMax computes the exact maximum matching of a small general graph
// via bitmask DP — the oracle for KarpSipser1Out exactness.
func bruteMax(n int, adj [][]int32) int {
	memo := make(map[uint32]int)
	var rec func(mask uint32) int
	rec = func(mask uint32) int {
		if mask == 0 {
			return 0
		}
		if v, ok := memo[mask]; ok {
			return v
		}
		// Lowest set vertex.
		u := 0
		for mask&(1<<uint(u)) == 0 {
			u++
		}
		best := rec(mask &^ (1 << uint(u))) // u unmatched
		for _, v := range adj[u] {
			if mask&(1<<uint(v)) != 0 && int(v) != u {
				if got := 1 + rec(mask&^(1<<uint(u))&^(1<<uint(v))); got > best {
					best = got
				}
			}
		}
		memo[mask] = best
		return best
	}
	return rec(uint32(1)<<uint(n) - 1)
}

// choiceAdj converts a choice array to the adjacency of the 1-out graph.
func choiceAdj(choice []int32) [][]int32 {
	n := len(choice)
	adj := make([][]int32, n)
	add := func(u, v int32) {
		for _, w := range adj[u] {
			if w == v {
				return
			}
		}
		adj[u] = append(adj[u], v)
	}
	for u, v := range choice {
		if v != NIL && int(v) != u {
			add(int32(u), v)
			add(v, int32(u))
		}
	}
	return adj
}

func matchSize(match []int32) int {
	s := 0
	for u, v := range match {
		if v != NIL && int(v) > u {
			s++
		}
	}
	return s
}

func TestNewRejectsAsymmetric(t *testing.T) {
	a := sparse.FromDense([][]int{{0, 1}, {0, 0}})
	if _, err := New(a); err == nil {
		t.Fatal("asymmetric pattern accepted")
	}
	b := sparse.FromDense([][]int{{0, 1, 0}, {1, 0, 0}})
	if _, err := New(b); err == nil {
		t.Fatal("non-square pattern accepted")
	}
}

// TestKarpSipser1OutExactOnRandomChoices is the undirected analog of the
// bipartite exactness test: the kernel must match the bitmask-DP maximum
// on random functional (1-out) graphs, at several worker counts.
func TestKarpSipser1OutExactOnRandomChoices(t *testing.T) {
	f := func(seed uint64, w uint8) bool {
		rng := xrand.New(seed)
		n := 3 + rng.Intn(16) // oracle limit
		choice := make([]int32, n)
		for u := range choice {
			v := rng.Intn(n)
			if v == u {
				choice[u] = NIL
			} else {
				choice[u] = int32(v)
			}
		}
		match := KarpSipser1Out(choice, opts(int(w)%4+1, seed))
		// Validity: mutual partners along choice edges.
		for u, v := range match {
			if v == NIL {
				continue
			}
			if match[v] != int32(u) {
				return false
			}
			if choice[u] != v && choice[v] != int32(u) {
				return false
			}
		}
		return matchSize(match) == bruteMax(n, choiceAdj(choice))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestKarpSipser1OutHandlesOddCycles(t *testing.T) {
	// A directed 5-cycle of choices: maximum matching is 2.
	choice := []int32{1, 2, 3, 4, 0}
	match := KarpSipser1Out(choice, opts(1, 1))
	if matchSize(match) != 2 {
		t.Fatalf("5-cycle matched %d want 2", matchSize(match))
	}
	// Even 6-cycle: perfect matching 3.
	choice = []int32{1, 2, 3, 4, 5, 0}
	match = KarpSipser1Out(choice, opts(2, 1))
	if matchSize(match) != 3 {
		t.Fatalf("6-cycle matched %d want 3", matchSize(match))
	}
}

func TestKarpSipser1OutTwoClique(t *testing.T) {
	choice := []int32{1, 0, NIL}
	match := KarpSipser1Out(choice, opts(1, 1))
	if match[0] != 1 || match[1] != 0 || match[2] != NIL {
		t.Fatalf("2-clique mishandled: %v", match)
	}
}

func TestScaleSymmetricConverges(t *testing.T) {
	g := randomUndirected(500, 6, 3)
	d, err := ScaleSymmetric(g.A, 200, 2)
	if err > 0.05 {
		t.Fatalf("symmetric scaling error %v", err)
	}
	for _, v := range d {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("bad scaling factor %v", v)
		}
	}
}

func TestMatchValidAndDecent(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		g := randomUndirected(5000, 5, seed)
		res := g.Match(5, opts(4, seed))
		if err := g.Validate(res.Match); err != nil {
			t.Fatal(err)
		}
		// On ER graphs with avg degree 5 the maximum matching covers
		// almost all vertices; the 1-out heuristic should land well above
		// the bipartite conjecture's neighborhood.
		frac := 2 * float64(res.Size) / float64(g.N())
		if frac < 0.70 {
			t.Fatalf("matched fraction %v too low", frac)
		}
	}
}

func TestMatchPerfectGraphClasses(t *testing.T) {
	// Even cycle graph C_n: perfect matching exists; heuristic is exact on
	// its own 1-out sample, so it matches at least ~86% in practice. We
	// only require validity plus a sane fraction here, and exactness of
	// the kernel is covered by the oracle test.
	n := 1000
	entries := make([]sparse.Coord, 0, 2*n)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		entries = append(entries, sparse.Coord{I: int32(i), J: int32(j)},
			sparse.Coord{I: int32(j), J: int32(i)})
	}
	a, _ := sparse.FromCOO(n, n, entries, false)
	g, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	res := g.Match(3, opts(3, 7))
	if err := g.Validate(res.Match); err != nil {
		t.Fatal(err)
	}
	if frac := 2 * float64(res.Size) / float64(n); frac < 0.6 {
		t.Fatalf("cycle graph fraction %v", frac)
	}
}

func TestMatchSizeDeterministicAcrossWorkers(t *testing.T) {
	g := randomUndirected(3000, 4, 11)
	sizes := map[int]bool{}
	for _, w := range []int{1, 2, 4, 8} {
		res := g.Match(3, opts(w, 42))
		sizes[res.Size] = true
	}
	if len(sizes) != 1 {
		t.Fatalf("size varies with workers: %v", sizes)
	}
}

func TestMeshMatching(t *testing.T) {
	// 2-D mesh adjacency is symmetric; even side has a perfect matching.
	a := gen.Mesh2D(40, 40)
	g, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	res := g.Match(5, opts(4, 5))
	if err := g.Validate(res.Match); err != nil {
		t.Fatal(err)
	}
	if frac := 2 * float64(res.Size) / float64(g.N()); frac < 0.7 {
		t.Fatalf("mesh fraction %v", frac)
	}
}

func TestSampleChoicesSkipSelfLoops(t *testing.T) {
	// Vertex 0 has a self loop and one real neighbor.
	entries := []sparse.Coord{{I: 0, J: 0}, {I: 0, J: 1}, {I: 1, J: 0}}
	a, _ := sparse.FromCOO(2, 2, entries, false)
	for seed := uint64(1); seed < 50; seed++ {
		c := SampleChoices(a, nil, opts(1, seed))
		if c[0] != 1 {
			t.Fatalf("self loop sampled: %v", c[0])
		}
	}
}

func TestIsolatedVerticesStayNIL(t *testing.T) {
	a, _ := sparse.FromCOO(4, 4, []sparse.Coord{{I: 0, J: 1}, {I: 1, J: 0}}, false)
	c := SampleChoices(a, nil, opts(2, 1))
	if c[2] != NIL || c[3] != NIL {
		t.Fatalf("isolated vertices sampled: %v", c)
	}
	match := KarpSipser1Out(c, opts(2, 1))
	if match[2] != NIL || match[3] != NIL {
		t.Fatal("isolated vertices matched")
	}
}
