// Package metrics provides lock-free latency histograms for the serving
// stack: fixed log-spaced buckets, atomic counters, and quantile
// estimation from the bucket boundaries. Observation is a few atomic adds
// — cheap enough to sit on every request's hot path — and snapshots are
// wait-free reads, so a /metrics endpoint never stalls the serving loop.
//
// The buckets double per step (bucket k covers [2^(k-1), 2^k) microseconds,
// bucket 0 everything below 1µs), which bounds the relative error of a
// reported quantile by the bucket width: the estimate returned is the
// geometric midpoint of the bucket the quantile falls in, within ~1.42× of
// the true value. That resolution is the standard trade for a histogram
// whose memory (a few hundred bytes) and update cost are constant no
// matter how many observations arrive.
package metrics

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// nBuckets spans [1µs, 2^39µs ≈ 6.4 days) with doubling buckets — wide
// enough that no matching request ever lands outside it.
const nBuckets = 40

// NumBuckets is the number of histogram buckets a Snapshot carries —
// exporters (the Prometheus text endpoint) iterate over it.
const NumBuckets = nBuckets

// BucketUpperBound returns the inclusive upper bound of bucket k on the
// microsecond-truncated latencies the histogram records: bucket k holds
// truncated values in [2^(k-1), 2^k), i.e. integer microsecond counts up
// to 2^k − 1, which is exactly the bound Prometheus's inclusive `le`
// semantics need. The last bucket is the overflow bucket; exporters
// render its bound as +Inf.
func BucketUpperBound(k int) time.Duration {
	if k < 0 {
		k = 0
	}
	if k >= nBuckets {
		k = nBuckets - 1
	}
	return time.Duration(uint64(1)<<uint(k)-1) * time.Microsecond
}

// Histogram is a fixed-bucket latency histogram safe for concurrent use.
// The zero value is ready.
type Histogram struct {
	count   atomic.Uint64
	sumNs   atomic.Uint64
	maxNs   atomic.Uint64
	buckets [nBuckets]atomic.Uint64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	k := bits.Len64(uint64(us)) // us in [2^(k-1), 2^k)
	if k >= nBuckets {
		k = nBuckets - 1
	}
	return k
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNs.Add(uint64(d.Nanoseconds()))
	h.buckets[bucketOf(d)].Add(1)
	for {
		old := h.maxNs.Load()
		if uint64(d.Nanoseconds()) <= old || h.maxNs.CompareAndSwap(old, uint64(d.Nanoseconds())) {
			return
		}
	}
}

// Snapshot is a point-in-time summary of a Histogram.
type Snapshot struct {
	Count uint64
	Sum   time.Duration // total observed latency (Prometheus _sum)
	Mean  time.Duration
	Max   time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	// Buckets are the per-bucket counts (not cumulative); bucket k covers
	// latencies up to BucketUpperBound(k), the last bucket everything
	// beyond. Exporters accumulate them into Prometheus's cumulative form.
	Buckets [NumBuckets]uint64
}

// bucketMid returns the representative latency of bucket k: the geometric
// midpoint of its bounds (√2·2^(k-1) µs), 0.5µs for the sub-microsecond
// bucket.
func bucketMid(k int) time.Duration {
	if k == 0 {
		return 500 * time.Nanosecond
	}
	us := math.Sqrt2 * float64(uint64(1)<<(k-1))
	return time.Duration(us * float64(time.Microsecond))
}

// Snapshot summarizes the histogram. Concurrent Observes may or may not be
// included; the counts used for the quantiles are read once, so the
// summary is internally consistent to within the in-flight updates.
func (h *Histogram) Snapshot() Snapshot {
	var counts [nBuckets]uint64
	total := uint64(0)
	for k := range counts {
		counts[k] = h.buckets[k].Load()
		total += counts[k]
	}
	s := Snapshot{
		Count:   h.count.Load(),
		Sum:     time.Duration(h.sumNs.Load()),
		Max:     time.Duration(h.maxNs.Load()),
		Buckets: counts,
	}
	if total == 0 {
		return s
	}
	s.Mean = time.Duration(h.sumNs.Load() / total)
	quantile := func(p float64) time.Duration {
		// The smallest bucket whose cumulative count reaches p·total.
		want := uint64(math.Ceil(p * float64(total)))
		if want < 1 {
			want = 1
		}
		cum := uint64(0)
		for k := range counts {
			cum += counts[k]
			if cum >= want {
				return bucketMid(k)
			}
		}
		return bucketMid(nBuckets - 1)
	}
	s.P50 = quantile(0.50)
	s.P90 = quantile(0.90)
	s.P99 = quantile(0.99)
	return s
}

// Counter is a monotone atomic event counter. The zero value is ready.
// It is the exported-state primitive the serving stack's self-protection
// layer publishes through: shed decisions, degraded responses, watchdog
// level transitions — events whose totals a /metrics scrape reports as
// Prometheus counters.
type Counter struct{ n atomic.Uint64 }

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Get returns the current total.
func (c *Counter) Get() uint64 { return c.n.Load() }

// Gauge is an atomic float64 gauge — a last-written-value cell for
// continuously resampled quantities (CPU fraction, resident set size,
// utilization). Set and Get are single atomic word operations, so a
// sampler can publish at any rate without coordinating with scrapers.
// The zero value is ready and reads 0.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Get returns the gauge's current value.
func (g *Gauge) Get() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry is a named set of histograms, created on first use — one per
// operation the server tracks. Safe for concurrent use; lookups after
// creation are a read-locked map hit.
type Registry struct {
	mu    sync.RWMutex
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{hists: make(map[string]*Histogram)}
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshots summarizes every histogram in the registry, keyed by name.
// Histograms with no observations yet are included (Count 0), so an
// endpoint shows every tracked operation from its first scrape.
func (r *Registry) Snapshots() map[string]Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]Snapshot, len(r.hists))
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	return out
}
