package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 1},                // [1µs, 2µs)
		{3 * time.Microsecond, 2},            // [2µs, 4µs)
		{time.Millisecond, 10},               // 1000µs in [512, 1024)µs
		{time.Second, 20},                    // 1e6µs in [2^19, 2^20)µs
		{100 * 24 * time.Hour, nBuckets - 1}, // clamped
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestSnapshotQuantiles feeds a known distribution and checks the
// quantile estimates land in the right buckets (the documented ~1.42×
// resolution of the doubling buckets).
func TestSnapshotQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast samples at 1ms, 9 at 10ms, 1 at 100ms.
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(10 * time.Millisecond)
	}
	h.Observe(100 * time.Millisecond)

	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count %d, want 100", s.Count)
	}
	if s.Max != 100*time.Millisecond {
		t.Fatalf("max %v, want 100ms", s.Max)
	}
	wantMean := (90*time.Millisecond + 9*10*time.Millisecond + 100*time.Millisecond) / 100
	if s.Mean != wantMean {
		t.Fatalf("mean %v, want %v", s.Mean, wantMean)
	}
	// Each estimate must sit within one doubling bucket of the true value.
	within := func(name string, got, truth time.Duration) {
		t.Helper()
		lo, hi := truth/2, 2*truth
		if got < lo || got > hi {
			t.Errorf("%s = %v, want within [%v, %v]", name, got, lo, hi)
		}
	}
	within("p50", s.P50, time.Millisecond)
	within("p90", s.P90, time.Millisecond)
	within("p99", s.P99, 10*time.Millisecond)
}

func TestSnapshotEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Mean != 0 || s.P50 != 0 || s.P99 != 0 || s.Max != 0 {
		t.Fatalf("non-zero snapshot of empty histogram: %+v", s)
	}
}

// TestConcurrentObserve hammers one histogram from many goroutines; run
// under -race this is the data-race gate, and the final count must see
// every observation.
func TestConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w+1) * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count %d, want %d", s.Count, workers*per)
	}
	if s.Max != workers*time.Millisecond {
		t.Fatalf("max %v, want %v", s.Max, workers*time.Millisecond)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("twosided")
	if r.Histogram("twosided") != a {
		t.Fatal("second lookup returned a different histogram")
	}
	a.Observe(time.Millisecond)
	r.Histogram("onesided") // tracked but never observed
	snaps := r.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("%d snapshots, want 2", len(snaps))
	}
	if snaps["twosided"].Count != 1 {
		t.Fatalf("twosided count %d, want 1", snaps["twosided"].Count)
	}
	if snaps["onesided"].Count != 0 {
		t.Fatalf("onesided count %d, want 0", snaps["onesided"].Count)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Get() != 0 {
		t.Fatalf("zero-value counter reads %d", c.Get())
	}
	c.Inc()
	c.Add(4)
	if c.Get() != 5 {
		t.Fatalf("counter %d, want 5", c.Get())
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Get() != 5+8*1000 {
		t.Fatalf("counter %d after concurrent adds, want %d", c.Get(), 5+8*1000)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Get() != 0 {
		t.Fatalf("zero-value gauge reads %v", g.Get())
	}
	g.Set(0.875)
	if g.Get() != 0.875 {
		t.Fatalf("gauge %v, want 0.875", g.Get())
	}
	g.Set(-3.5)
	if g.Get() != -3.5 {
		t.Fatalf("gauge %v, want -3.5", g.Get())
	}
}
