package dyngraph

import (
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/sparse"
)

// mirror is the oracle's trivial edge-set representation.
type mirror map[[2]int]bool

func (m mirror) csr(rows, cols int) *sparse.CSR {
	coords := make([]sparse.Coord, 0, len(m))
	for e := range m {
		coords = append(coords, sparse.Coord{I: int32(e[0]), J: int32(e[1])})
	}
	a, err := sparse.FromCOO(rows, cols, coords, false)
	if err != nil {
		panic(err)
	}
	return a
}

// TestDynGraphMutations drives random insert/delete traffic against a
// map-based mirror and checks adjacency consistency plus CSR snapshots.
func TestDynGraphMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const rows, cols = 37, 29
	g := New(rows, cols)
	ref := mirror{}
	for step := 0; step < 4000; step++ {
		i, j := rng.Intn(rows), rng.Intn(cols)
		if rng.Intn(2) == 0 {
			want := !ref[[2]int{i, j}]
			if got := g.Insert(i, j); got != want {
				t.Fatalf("step %d: Insert(%d,%d) = %v, want %v", step, i, j, got, want)
			}
			ref[[2]int{i, j}] = true
		} else {
			want := ref[[2]int{i, j}]
			if got := g.Delete(i, j); got != want {
				t.Fatalf("step %d: Delete(%d,%d) = %v, want %v", step, i, j, got, want)
			}
			delete(ref, [2]int{i, j})
		}
		if g.Edges() != len(ref) {
			t.Fatalf("step %d: Edges() = %d, want %d", step, g.Edges(), len(ref))
		}
	}
	for e := range ref {
		if !g.Has(e[0], e[1]) {
			t.Fatalf("edge %v missing", e)
		}
	}
	// Both adjacency sides must agree with the mirror, sorted and deduped.
	total := 0
	for i := 0; i < rows; i++ {
		adj := g.RowAdj(i)
		for k, j := range adj {
			if k > 0 && adj[k-1] >= j {
				t.Fatalf("row %d adjacency not strictly sorted: %v", i, adj)
			}
			if !ref[[2]int{i, int(j)}] {
				t.Fatalf("row %d has phantom edge to col %d", i, j)
			}
			total++
		}
	}
	if total != len(ref) {
		t.Fatalf("row adjacency holds %d edges, want %d", total, len(ref))
	}
	colTotal := 0
	for j := 0; j < cols; j++ {
		adj := g.ColAdj(j)
		for k, i := range adj {
			if k > 0 && adj[k-1] >= i {
				t.Fatalf("col %d adjacency not strictly sorted: %v", j, adj)
			}
			if !ref[[2]int{int(i), j}] {
				t.Fatalf("col %d has phantom edge to row %d", j, i)
			}
			colTotal++
		}
	}
	if colTotal != len(ref) {
		t.Fatalf("col adjacency holds %d edges, want %d", colTotal, len(ref))
	}
	// The CSR snapshot must be a valid, equal pattern.
	snap := g.CSR()
	if err := snap.Validate(); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}
	if snap.NNZ() != len(ref) {
		t.Fatalf("snapshot has %d edges, want %d", snap.NNZ(), len(ref))
	}
	for i := 0; i < rows; i++ {
		for _, j := range snap.Row(i) {
			if !ref[[2]int{i, int(j)}] {
				t.Fatalf("snapshot phantom edge (%d,%d)", i, j)
			}
		}
	}
}

// TestRepairerComplete checks that HK phases over the mutable adjacency
// reach the exact sprank after arbitrary mutation histories.
func TestRepairerComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := gen.ERAvgDeg(60, 55, 3.0, 11)
	g := FromCSR(a)
	rep := NewRepairer(g)
	mt := exact.NewMatching(g.Rows(), g.Cols())
	rep.Complete(mt)
	if want := exact.Sprank(a); mt.Size != want {
		t.Fatalf("initial Complete: size %d, want sprank %d", mt.Size, want)
	}
	for batch := 0; batch < 30; batch++ {
		for k := 0; k < 8; k++ {
			i, j := rng.Intn(g.Rows()), rng.Intn(g.Cols())
			if rng.Intn(2) == 0 {
				g.Insert(i, j)
			} else if g.Delete(i, j) {
				if mt.RowMate[i] == int32(j) {
					mt.RowMate[i], mt.ColMate[j] = exact.NIL, exact.NIL
					mt.Size--
				}
			}
		}
		rep.Complete(mt)
		if want := exact.Sprank(g.CSR()); mt.Size != want {
			t.Fatalf("batch %d: size %d, want sprank %d", batch, mt.Size, want)
		}
	}
}

// TestRepairerAugmentSingleSource checks the targeted row/col DFS: a
// deleted matched edge is repairable from either freed endpoint when an
// augmenting path exists.
func TestRepairerAugmentSingleSource(t *testing.T) {
	// Path graph: rows i adjacent to cols i and i+1 — every deletion of a
	// matched edge leaves an augmenting path along the diagonal.
	a := gen.LongThinPath(12)
	g := FromCSR(a)
	rep := NewRepairer(g)
	mt := exact.NewMatching(g.Rows(), g.Cols())
	if rep.AugmentRow(mt, 50) {
		t.Fatal("out-of-range row must not augment")
	}
	rep.Complete(mt)
	want := exact.Sprank(a)
	if mt.Size != want {
		t.Fatalf("size %d, want %d", mt.Size, want)
	}
	// Delete the matched edge of row 5; re-augment from the freed row.
	j := mt.RowMate[5]
	g.Delete(5, int(j))
	mt.RowMate[5], mt.ColMate[j] = exact.NIL, exact.NIL
	mt.Size--
	if !rep.AugmentRow(mt, 5) && !rep.AugmentCol(mt, j) {
		// Depending on the path orientation one of the two sides finds
		// the augmenting path; at least one must when sprank allows.
		if got, want := mt.Size, exact.Sprank(g.CSR()); got < want {
			t.Fatalf("targeted repair failed: size %d, sprank %d", got, want)
		}
	}
	if got, want := mt.Size, exact.Sprank(g.CSR()); got != want {
		t.Fatalf("after targeted repair: size %d, want sprank %d", got, want)
	}
	if rep.AugmentRow(mt, 5) {
		t.Fatal("matched source must return false")
	}
}
