// Package dyngraph holds the mutable form of a bipartite graph and the
// augmentation engine that repairs a matching after edge mutations. It
// backs the public DynSession: where the immutable CSR Graph is built
// once and matched many times, a dyngraph.Graph absorbs batched edge
// inserts and deletes in O(deg) each and re-exports an immutable CSR
// snapshot on demand — so the maintained matching is repaired against
// the live adjacency and only the serving/oracle paths pay for a
// rebuild.
//
// Both sides of the adjacency are kept (sorted column lists per row and
// sorted row lists per column) because repair augments from whichever
// side a mutation exposed: a deleted matched edge frees one row and one
// column, and the augmenting search must be able to start from either.
package dyngraph

import (
	"sort"

	"repro/internal/sparse"
)

// Graph is a mutable bipartite graph: rows[i] is the sorted column
// adjacency of row i, cols[j] the sorted row adjacency of column j. The
// two views are kept consistent by Insert/Delete. Methods are not safe
// for concurrent use; the owning session serializes access.
type Graph struct {
	rows  [][]int32
	cols  [][]int32
	edges int
}

// New returns an empty n×m mutable graph.
func New(n, m int) *Graph {
	return &Graph{rows: make([][]int32, n), cols: make([][]int32, m)}
}

// FromCSR builds a mutable graph from an immutable CSR pattern (rows
// must be sorted, as package sparse guarantees). The CSR is copied, not
// retained.
func FromCSR(a *sparse.CSR) *Graph {
	g := New(a.RowsN, a.ColsN)
	// Column degrees first, so each adjacency list is one exact allocation.
	cdeg := make([]int, a.ColsN)
	for _, j := range a.Idx {
		cdeg[j]++
	}
	for j := range g.cols {
		if cdeg[j] > 0 {
			g.cols[j] = make([]int32, 0, cdeg[j])
		}
	}
	for i := 0; i < a.RowsN; i++ {
		row := a.Idx[a.Ptr[i]:a.Ptr[i+1]]
		if len(row) > 0 {
			g.rows[i] = append(make([]int32, 0, len(row)), row...)
		}
		for _, j := range row {
			g.cols[j] = append(g.cols[j], int32(i))
		}
	}
	g.edges = a.NNZ()
	return g
}

// Rows returns the number of row vertices.
func (g *Graph) Rows() int { return len(g.rows) }

// Cols returns the number of column vertices.
func (g *Graph) Cols() int { return len(g.cols) }

// Edges returns the current edge count.
func (g *Graph) Edges() int { return g.edges }

// RowAdj returns the sorted column adjacency of row i (shared slice; do
// not modify, invalidated by the next mutation).
func (g *Graph) RowAdj(i int) []int32 { return g.rows[i] }

// ColAdj returns the sorted row adjacency of column j (shared slice; do
// not modify, invalidated by the next mutation).
func (g *Graph) ColAdj(j int) []int32 { return g.cols[j] }

// Has reports whether edge (i, j) is present.
func (g *Graph) Has(i, j int) bool {
	adj := g.rows[i]
	k := search(adj, int32(j))
	return k < len(adj) && adj[k] == int32(j)
}

// Insert adds edge (i, j) and reports whether the graph changed (false
// when the edge was already present). Indices must be in range — the
// session validates whole batches before applying any of them.
func (g *Graph) Insert(i, j int) bool {
	rows, ok := insertSorted(g.rows[i], int32(j))
	if !ok {
		return false
	}
	g.rows[i] = rows
	g.cols[j], _ = insertSorted(g.cols[j], int32(i))
	g.edges++
	return true
}

// Delete removes edge (i, j) and reports whether the graph changed
// (false when the edge was absent).
func (g *Graph) Delete(i, j int) bool {
	rows, ok := deleteSorted(g.rows[i], int32(j))
	if !ok {
		return false
	}
	g.rows[i] = rows
	g.cols[j], _ = deleteSorted(g.cols[j], int32(i))
	g.edges--
	return true
}

// CSR exports the current pattern as a fresh immutable CSR snapshot
// (O(rows+edges)); the snapshot does not alias the mutable adjacency.
func (g *Graph) CSR() *sparse.CSR {
	n := len(g.rows)
	ptr := make([]int, n+1)
	idx := make([]int32, 0, g.edges)
	for i, row := range g.rows {
		idx = append(idx, row...)
		ptr[i+1] = len(idx)
	}
	a, err := sparse.New(n, len(g.cols), ptr, idx, nil)
	if err != nil {
		// Unreachable: the adjacency invariants (sorted, in-range, dedup)
		// are maintained by Insert/Delete.
		panic("dyngraph: invalid snapshot: " + err.Error())
	}
	return a
}

func search(adj []int32, v int32) int {
	return sort.Search(len(adj), func(k int) bool { return adj[k] >= v })
}

// insertSorted inserts v into the sorted slice, reporting false when v
// was already present.
func insertSorted(adj []int32, v int32) ([]int32, bool) {
	k := search(adj, v)
	if k < len(adj) && adj[k] == v {
		return adj, false
	}
	adj = append(adj, 0)
	copy(adj[k+1:], adj[k:])
	adj[k] = v
	return adj, true
}

// deleteSorted removes v from the sorted slice, reporting false when v
// was absent.
func deleteSorted(adj []int32, v int32) ([]int32, bool) {
	k := search(adj, v)
	if k >= len(adj) || adj[k] != v {
		return adj, false
	}
	copy(adj[k:], adj[k+1:])
	return adj[:len(adj)-1], true
}
