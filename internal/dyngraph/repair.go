package dyngraph

import (
	"math"

	"repro/internal/exact"
)

const inf = int32(math.MaxInt32)

// Repairer augments a matching over the mutable adjacency — the repair
// primitive of dynamic sessions. It offers two granularities:
//
//   - AugmentRow/AugmentCol run one single-source augmenting DFS (Kuhn's
//     algorithm) from an exposed vertex — the targeted repair of
//     heuristic sessions, which re-augments only from the endpoints a
//     mutation batch freed or exposed.
//   - Complete runs Hopcroft–Karp phases (a BFS layering plus a maximal
//     wave of vertex-disjoint shortest augmenting paths) until the
//     matching is provably maximum — the repair of exact sessions, warm:
//     after a batch of b deletions at most b augmenting paths exist, so
//     the phase count is bounded by the batch, not the graph.
//
// All searches are sequential and scan adjacencies in sorted order, so a
// repair is a pure function of (adjacency, matching, seed vertex) — the
// determinism the differential fuzz oracle gates across pool widths.
// The workspaces are reused across calls; a Repairer is bound to one
// Graph and is not safe for concurrent use.
type Repairer struct {
	g *Graph

	// Kuhn DFS state: stack of vertices, per-vertex arc cursors, and
	// epoch-stamped visited marks (no clearing between calls).
	stack []int32
	arcR  []int // per-row cursor into rows[i]
	arcC  []int // per-col cursor into cols[j]
	seenR []int32
	seenC []int32
	epoch int32

	// Hopcroft–Karp phase state.
	dist  []int32
	queue []int32
}

// NewRepairer prepares a repair engine over g.
func NewRepairer(g *Graph) *Repairer {
	n, m := g.Rows(), g.Cols()
	return &Repairer{
		g:     g,
		arcR:  make([]int, n),
		arcC:  make([]int, m),
		seenR: make([]int32, n),
		seenC: make([]int32, m),
		dist:  make([]int32, n),
	}
}

func (r *Repairer) nextEpoch() {
	r.epoch++
	if r.epoch == math.MaxInt32 {
		for i := range r.seenR {
			r.seenR[i] = 0
		}
		for j := range r.seenC {
			r.seenC[j] = 0
		}
		r.epoch = 1
	}
}

// AugmentRow runs one augmenting DFS from row s and reports whether the
// matching grew. A matched (or out-of-range) source returns false
// immediately, so callers seed it straight from mutation endpoints.
func (r *Repairer) AugmentRow(mt *exact.Matching, s int32) bool {
	if int(s) >= r.g.Rows() || mt.RowMate[s] != exact.NIL {
		return false
	}
	r.nextEpoch()
	stack := append(r.stack[:0], s)
	r.arcR[s] = 0
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		adj := r.g.rows[u]
		advanced := false
		for r.arcR[u] < len(adj) {
			j := adj[r.arcR[u]]
			r.arcR[u]++
			if r.seenC[j] == r.epoch {
				continue
			}
			r.seenC[j] = r.epoch
			u2 := mt.ColMate[j]
			if u2 == exact.NIL {
				// Augment along the stack; RowMate recovers each
				// predecessor's previous column.
				for k := len(stack) - 1; k >= 0; k-- {
					row := stack[k]
					pj := mt.RowMate[row]
					mt.RowMate[row] = j
					mt.ColMate[j] = row
					j = pj
				}
				mt.Size++
				r.stack = stack[:0]
				return true
			}
			stack = append(stack, u2)
			r.arcR[u2] = 0
			advanced = true
			break
		}
		if !advanced {
			stack = stack[:len(stack)-1]
		}
	}
	r.stack = stack[:0]
	return false
}

// AugmentCol runs one augmenting DFS from column s — the mirror of
// AugmentRow over the column-side adjacency.
func (r *Repairer) AugmentCol(mt *exact.Matching, s int32) bool {
	if int(s) >= r.g.Cols() || mt.ColMate[s] != exact.NIL {
		return false
	}
	r.nextEpoch()
	stack := append(r.stack[:0], s)
	r.arcC[s] = 0
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		adj := r.g.cols[u]
		advanced := false
		for r.arcC[u] < len(adj) {
			i := adj[r.arcC[u]]
			r.arcC[u]++
			if r.seenR[i] == r.epoch {
				continue
			}
			r.seenR[i] = r.epoch
			u2 := mt.RowMate[i]
			if u2 == exact.NIL {
				for k := len(stack) - 1; k >= 0; k-- {
					col := stack[k]
					pi := mt.ColMate[col]
					mt.ColMate[col] = i
					mt.RowMate[i] = col
					i = pi
				}
				mt.Size++
				r.stack = stack[:0]
				return true
			}
			stack = append(stack, u2)
			r.arcC[u2] = 0
			advanced = true
			break
		}
		if !advanced {
			stack = stack[:len(stack)-1]
		}
	}
	r.stack = stack[:0]
	return false
}

// Complete advances mt to a maximum matching of the current adjacency
// with Hopcroft–Karp phases and returns the number of augmenting paths
// applied. Warm-started from a near-maximum matching it typically needs
// one phase of work plus one to prove maximality.
func (r *Repairer) Complete(mt *exact.Matching) int {
	before := mt.Size
	for r.phase(mt) {
	}
	return mt.Size - before
}

// phase runs one Hopcroft–Karp phase over the mutable adjacency — the
// exact.HKRefiner phase reading rows[i] slices instead of CSR rows —
// and reports whether the matching may still be improvable.
func (r *Repairer) phase(mt *exact.Matching) bool {
	g, n := r.g, r.g.Rows()
	dist := r.dist
	queue := r.queue[:0]
	for i := 0; i < n; i++ {
		if mt.RowMate[i] == exact.NIL {
			dist[i] = 0
			queue = append(queue, int32(i))
		} else {
			dist[i] = inf
		}
	}
	found := false
	for qh := 0; qh < len(queue); qh++ {
		i := queue[qh]
		for _, j := range g.rows[i] {
			i2 := mt.ColMate[j]
			if i2 == exact.NIL {
				found = true
				continue
			}
			if dist[i2] == inf {
				dist[i2] = dist[i] + 1
				queue = append(queue, i2)
			}
		}
	}
	r.queue = queue
	if !found {
		return false
	}
	arc := r.arcR
	for i := 0; i < n; i++ {
		arc[i] = 0
	}
	stack := r.stack
	for s := 0; s < n; s++ {
		if mt.RowMate[s] != exact.NIL || dist[s] != 0 {
			continue
		}
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			adj := g.rows[i]
			advanced := false
			for arc[i] < len(adj) {
				j := adj[arc[i]]
				arc[i]++
				i2 := mt.ColMate[j]
				if i2 == exact.NIL {
					for k := len(stack) - 1; k >= 0; k-- {
						row := stack[k]
						pj := mt.RowMate[row]
						mt.RowMate[row] = j
						mt.ColMate[j] = row
						dist[row] = inf
						j = pj
					}
					mt.Size++
					stack = stack[:0]
					advanced = true
					break
				}
				if dist[i2] == dist[i]+1 {
					stack = append(stack, i2)
					advanced = true
					break
				}
			}
			if !advanced {
				dist[i] = inf
				stack = stack[:len(stack)-1]
			}
		}
	}
	r.stack = stack
	return true
}
