package scale

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/sparse"
)

func TestSkewAwareMatchesStandardOnLightMatrices(t *testing.T) {
	// No heavy rows: results must be bit-identical to SinkhornKnopp.
	a := gen.ERAvgDeg(2000, 2000, 4, 3)
	at := a.Transpose()
	std, err := SinkhornKnopp(a, at, Options{MaxIters: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	skew, err := SinkhornKnoppSkewAware(a, at, Options{MaxIters: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range std.DR {
		if std.DR[i] != skew.DR[i] {
			t.Fatalf("dr[%d] differs: %v vs %v", i, std.DR[i], skew.DR[i])
		}
	}
	for j := range std.DC {
		if std.DC[j] != skew.DC[j] {
			t.Fatalf("dc[%d] differs", j)
		}
	}
	if std.Err != skew.Err || std.Iters != skew.Iters {
		t.Fatal("metadata differs")
	}
}

// heavyRowMatrix returns a matrix whose row 0 has every column (degree n,
// far above HeavyThreshold for n chosen below) plus a sparse remainder.
func heavyRowMatrix(n int, seed uint64) *sparse.CSR {
	entries := make([]sparse.Coord, 0, 4*n)
	for j := 0; j < n; j++ {
		entries = append(entries, sparse.Coord{I: 0, J: int32(j)})
		entries = append(entries, sparse.Coord{I: int32(j), J: int32(j)})
		entries = append(entries, sparse.Coord{I: int32(j), J: int32((j + 1) % n)})
	}
	a, err := sparse.FromCOO(n, n, entries, false)
	if err != nil {
		panic(err)
	}
	return a
}

func TestSkewAwareHeavyRowCorrectness(t *testing.T) {
	n := HeavyThreshold + 100 // row 0 and column-sums become heavy work
	a := heavyRowMatrix(n, 1)
	at := a.Transpose()
	std, err := SinkhornKnopp(a, at, Options{MaxIters: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	skew, err := SinkhornKnoppSkewAware(a, at, Options{MaxIters: 3, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Parallel summation reassociates floating point; allow tiny slack.
	for i := 0; i < n; i++ {
		if d := math.Abs(std.DR[i]-skew.DR[i]) / std.DR[i]; d > 1e-9 {
			t.Fatalf("dr[%d] relative diff %v", i, d)
		}
	}
	if math.Abs(std.Err-skew.Err) > 1e-9*(1+std.Err) {
		t.Fatalf("errors diverge: %v vs %v", std.Err, skew.Err)
	}
}

func TestSkewAwareDeterministicAcrossWorkers(t *testing.T) {
	n := HeavyThreshold + 50
	a := heavyRowMatrix(n, 2)
	at := a.Transpose()
	base, err := SinkhornKnoppSkewAware(a, at, Options{MaxIters: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, 8} {
		got, err := SinkhornKnoppSkewAware(a, at, Options{MaxIters: 2, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		// Heavy-row partial sums use worker-count-dependent boundaries, so
		// only require near-equality here; scheduling within a fixed
		// worker count is exercised by running twice.
		again, err := SinkhornKnoppSkewAware(a, at, Options{MaxIters: 2, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		for i := range got.DR {
			if got.DR[i] != again.DR[i] {
				t.Fatalf("workers=%d: non-deterministic dr[%d]", w, i)
			}
			if math.Abs(got.DR[i]-base.DR[i])/base.DR[i] > 1e-9 {
				t.Fatalf("workers=%d: dr[%d] far from base", w, i)
			}
		}
	}
}

func TestSkewAwareShapeMismatch(t *testing.T) {
	a := gen.Identity(4)
	b := gen.Identity(5)
	if _, err := SinkhornKnoppSkewAware(a, b, Options{MaxIters: 1}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
