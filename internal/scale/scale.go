// Package scale implements doubly stochastic matrix scaling. The matching
// heuristics use the scaled entries s_ij = dr[i]·a_ij·dc[j] as probability
// densities for choosing edges (paper §2.2 and Algorithm 1).
//
// Two methods are provided: the parallel Sinkhorn–Knopp iteration (ScaleSK,
// Algorithm 1 in the paper), and the Ruiz equilibration iteration reviewed
// in §2.2 for comparison. Both produce scaling vectors dr, dc rather than
// materializing the scaled matrix.
//
// The fixed-iteration-count configuration the experiments use (Tol <= 0)
// runs a fused Sinkhorn–Knopp loop that touches the matrix twice per
// iteration instead of three times: the scaling-error sweep is folded into
// the next iteration's column pass (the column sums it needs are the same
// sums the error is defined over), the initial error sweep doubles as the
// first column pass, and one deferred sweep after the loop settles the
// final error. The fused loop reports the exact same Err and History
// values, measured at the same points, as the classic
// column/row/error-sweep formulation — only the number of passes over the
// matrix changes. It also exports the per-row and per-column scaled sums
// of the final vectors (Result.RSum, Result.CSum), which are precisely the
// sampling denominators Algorithms 2 and 3 need, so sampling can skip its
// own sum pass over the matrix.
package scale

import (
	"errors"
	"math"

	"repro/internal/buf"
	"repro/internal/par"
	"repro/internal/sparse"
)

// Options configures a scaling run.
type Options struct {
	// MaxIters bounds the number of iterations. Zero iterations leaves
	// dr = dc = 1, i.e., uniform sampling (the "0 iterations" rows of
	// Tables 1 and 2).
	MaxIters int
	// Tol stops the iteration once the scaling error (max |colsum-1|)
	// drops below it. Tol <= 0 disables the convergence check so that
	// exactly MaxIters iterations run, as the experiments require; this
	// is also the configuration that takes the fused two-sweep loop.
	Tol float64
	// Workers is the parallel width; <= 0 means the pool width.
	Workers int
	// Policy is the loop scheduling policy; the paper uses (dynamic,512).
	Policy par.Policy
	// Chunk is the scheduling chunk size; <= 0 means par.DefaultChunk.
	Chunk int
	// Pool is the worker pool the scaling sweeps are dispatched to; nil
	// means the process-wide par.Default pool. Callers that run scaling,
	// sampling and matching back to back pass one pool through all of
	// them.
	Pool *par.Pool
	// Ws, when non-nil, supplies reusable buffers for the fused
	// fixed-iteration path (Tol <= 0): the Result returned aliases the
	// workspace and is valid only until the workspace's next run. The
	// convergence-checked, Ruiz and skew-aware paths ignore it.
	Ws *Workspace
	// Cancel, when non-nil, is a cooperative cancellation hook polled
	// between matrix sweeps (once or twice per iteration). When it reports
	// true the run aborts with ErrCanceled; the scaling state accumulated
	// so far is discarded. The serving layer derives it from the request's
	// context deadline.
	Cancel func() bool
}

// canceled reports whether the run's cancellation hook has fired.
func (o Options) canceled() bool { return o.Cancel != nil && o.Cancel() }

// ErrCanceled reports a scaling run aborted by its Options.Cancel hook.
var ErrCanceled = errors.New("scale: canceled")

// Workspace owns the vectors of the fused fixed-iteration Sinkhorn–Knopp
// loop (scaling vectors, row/column sums, error history) so matcher
// sessions can rescale same-shaped matrices without reallocating. Buffers
// grow on demand and are reused as-is when large enough; the zero value is
// ready to use.
type Workspace struct {
	dr, dc, rsum, csum []float64
	history            []float64
	res                Result
}

// buffers sizes the workspace for an n×m run of at most iters iterations
// and returns the result header (scaling vectors reset to 1) plus the
// column- and row-sum buffers.
func (ws *Workspace) buffers(n, m, iters int) (*Result, []float64, []float64) {
	ws.dr = buf.Grow(ws.dr, n)
	ws.dc = buf.Grow(ws.dc, m)
	ws.csum = buf.Grow(ws.csum, m)
	ws.rsum = buf.Grow(ws.rsum, n)
	if cap(ws.history) < iters+2 {
		ws.history = make([]float64, 0, iters+2)
	}
	for i := range ws.dr {
		ws.dr[i] = 1
	}
	for j := range ws.dc {
		ws.dc[j] = 1
	}
	ws.res = Result{DR: ws.dr, DC: ws.dc, History: ws.history[:0]}
	return &ws.res, ws.csum, ws.rsum
}

func (o Options) pool() *par.Pool {
	if o.Pool != nil {
		return o.Pool
	}
	return par.Default()
}

func (o Options) chunkOrDefault() int {
	if o.Chunk <= 0 {
		return par.DefaultChunk
	}
	return o.Chunk
}

// Result carries the scaling vectors and convergence information.
type Result struct {
	DR, DC []float64
	// Iters is the number of iterations actually performed.
	Iters int
	// Err is the scaling error after the final iteration: the maximum
	// absolute difference between a column sum of the scaled matrix and
	// one. Before any iteration it is measured on the unscaled matrix.
	Err float64
	// History records the error measured at the start of each iteration,
	// History[0] being the unscaled error (n-1 for a matrix with a full
	// column, as noted in the paper).
	History []float64
	// RSum and CSum are the raw scaled sums of the final vectors:
	// RSum[i] = Σ_j a_ij·DC[j] and CSum[j] = Σ_i DR[i]·a_ij, zero for
	// empty rows/columns. These are bit-for-bit the row and column
	// sampling totals of Algorithms 2 and 3 (the common factor DR[i],
	// resp. DC[j], cancels inside one row, resp. column), so the
	// sampling kernels reuse them instead of re-summing the matrix.
	// They are nil when the convergence-checked (Tol > 0) path runs,
	// and RSum is nil after zero iterations.
	RSum, CSum []float64
}

// ErrShape reports mismatched matrix/transpose arguments.
var ErrShape = errors.New("scale: transpose shape mismatch")

// SinkhornKnopp runs Algorithm 1 (ScaleSK) on a, whose transpose at must be
// supplied (both orientations are needed: column sums walk columns, row
// sums walk rows). Val == nil treats entries as 1. Rows or columns with no
// entries keep their scaling factor (their sums are reported as 0 and the
// error reflects it), matching the paper's treatment of structurally
// deficient matrices where irrelevant entries drift to zero.
func SinkhornKnopp(a, at *sparse.CSR, opt Options) (*Result, error) {
	if a.RowsN != at.ColsN || a.ColsN != at.RowsN {
		return nil, ErrShape
	}
	n, m := a.RowsN, a.ColsN
	if opt.canceled() {
		return nil, ErrCanceled
	}
	if opt.Tol > 0 {
		// The convergence check needs the error of an iteration before
		// deciding whether to run the next one, which forces the classic
		// dedicated error sweep per iteration.
		res := &Result{DR: ones(n), DC: ones(m)}
		if err := sinkhornKnoppTol(a, at, opt, res); err != nil {
			return nil, err
		}
		return res, nil
	}

	p := opt.pool()
	chunk := opt.chunkOrDefault()
	var res *Result
	var csum, rsum []float64
	if opt.Ws != nil {
		res, csum, rsum = opt.Ws.buffers(n, m, opt.MaxIters)
	} else {
		res = &Result{DR: ones(n), DC: ones(m)}
		csum = make([]float64, m)
		if opt.MaxIters > 0 {
			rsum = make([]float64, n)
		}
	}

	// The initial error sweep already computes Σ_i dr[i]·a_ij for every
	// column — the exact sums the first column pass needs — so the first
	// column pass degenerates to inverting them.
	res.Err = colSumsAndError(at, res.DR, res.DC, csum, false, p, opt.Workers, opt.Policy, chunk)
	res.History = append(res.History, res.Err)
	if opt.MaxIters <= 0 {
		res.CSum = csum
		return res, nil
	}

	// Row pass: dr[i] <- 1 / Σ_{j in Ai*} a_ij*dc[j]. The last iteration
	// keeps the raw sums: they are the row sampling totals.
	rowPass := func(rsumOut []float64) {
		p.For(n, opt.Workers, opt.Policy, chunk, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				s, e := a.Ptr[i], a.Ptr[i+1]
				sum := 0.0
				if a.Val == nil {
					for q := s; q < e; q++ {
						sum += res.DC[a.Idx[q]]
					}
				} else {
					for q := s; q < e; q++ {
						sum += res.DC[a.Idx[q]] * a.Val[q]
					}
				}
				if rsumOut != nil {
					rsumOut[i] = sum
				}
				if sum > 0 {
					res.DR[i] = 1.0 / sum
				}
			}
		})
	}
	rsumIfLast := func(it int) []float64 {
		if it == opt.MaxIters-1 {
			return rsum
		}
		return nil
	}
	// Iteration 0: the column pass reuses the sums of the initial sweep,
	// so it degenerates to inverting them: dc[j] <- 1/csum[j].
	p.For(m, opt.Workers, opt.Policy, chunk, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			if csum[j] > 0 {
				res.DC[j] = 1.0 / csum[j]
			}
		}
	})
	rowPass(rsumIfLast(0))
	res.Iters++
	for it := 1; it < opt.MaxIters; it++ {
		if opt.canceled() {
			return nil, ErrCanceled
		}
		// Fused column pass: the fresh column sums determine both the
		// error of the state entering this iteration (the previous
		// iteration's result, measured against the not-yet-updated dc)
		// and the new dc.
		err := colSumsAndError(at, res.DR, res.DC, nil, true, p, opt.Workers, opt.Policy, chunk)
		res.History = append(res.History, err)
		rowPass(rsumIfLast(it))
		res.Iters++
	}
	// Deferred final sweep: the error of the last iteration, and the
	// column sampling totals of the final vectors.
	res.Err = colSumsAndError(at, res.DR, res.DC, csum, false, p, opt.Workers, opt.Policy, chunk)
	res.History = append(res.History, res.Err)
	res.RSum = rsum
	res.CSum = csum
	return res, nil
}

// sinkhornKnoppTol is the classic three-sweep loop used when a convergence
// tolerance is set. It reports the same Err/History as the fused loop for
// the iterations it runs, but leaves RSum/CSum nil.
func sinkhornKnoppTol(a, at *sparse.CSR, opt Options, res *Result) error {
	p := opt.pool()
	chunk := opt.chunkOrDefault()
	n, m := a.RowsN, a.ColsN

	res.Err = colSumsAndError(at, res.DR, res.DC, nil, false, p, opt.Workers, opt.Policy, chunk)
	res.History = append(res.History, res.Err)
	for it := 0; it < opt.MaxIters; it++ {
		if res.Err <= opt.Tol {
			break
		}
		if opt.canceled() {
			return ErrCanceled
		}
		// Column pass: dc[j] <- 1 / sum_{i in A*j} dr[i]*a_ij.
		p.For(m, opt.Workers, opt.Policy, chunk, func(_, lo, hi int) {
			for j := lo; j < hi; j++ {
				csum := 0.0
				s, e := at.Ptr[j], at.Ptr[j+1]
				if at.Val == nil {
					for q := s; q < e; q++ {
						csum += res.DR[at.Idx[q]]
					}
				} else {
					for q := s; q < e; q++ {
						csum += res.DR[at.Idx[q]] * at.Val[q]
					}
				}
				if csum > 0 {
					res.DC[j] = 1.0 / csum
				}
			}
		})
		// Row pass: dr[i] <- 1 / sum_{j in Ai*} a_ij*dc[j].
		p.For(n, opt.Workers, opt.Policy, chunk, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				rsum := 0.0
				s, e := a.Ptr[i], a.Ptr[i+1]
				if a.Val == nil {
					for q := s; q < e; q++ {
						rsum += res.DC[a.Idx[q]]
					}
				} else {
					for q := s; q < e; q++ {
						rsum += res.DC[a.Idx[q]] * a.Val[q]
					}
				}
				if rsum > 0 {
					res.DR[i] = 1.0 / rsum
				}
			}
		})
		res.Iters++
		res.Err = colSumsAndError(at, res.DR, res.DC, nil, false, p, opt.Workers, opt.Policy, chunk)
		res.History = append(res.History, res.Err)
	}
	return nil
}

// Ruiz runs the Ruiz equilibration iteration: every step scales rows and
// columns simultaneously by the inverse square roots of their current sums.
// It converges to the same doubly stochastic limit but, as Knight, Ruiz and
// Uçar observed, more slowly than Sinkhorn–Knopp on unsymmetric matrices —
// the ablation benchmark demonstrates exactly that.
func Ruiz(a, at *sparse.CSR, opt Options) (*Result, error) {
	if a.RowsN != at.ColsN || a.ColsN != at.RowsN {
		return nil, ErrShape
	}
	p := opt.pool()
	chunk := opt.chunkOrDefault()
	n, m := a.RowsN, a.ColsN
	res := &Result{DR: ones(n), DC: ones(m)}
	rsum := make([]float64, n)
	csum := make([]float64, m)

	res.Err = colSumsAndError(at, res.DR, res.DC, nil, false, p, opt.Workers, opt.Policy, chunk)
	res.History = append(res.History, res.Err)
	for it := 0; it < opt.MaxIters; it++ {
		if opt.Tol > 0 && res.Err <= opt.Tol {
			break
		}
		if opt.canceled() {
			return nil, ErrCanceled
		}
		p.For(n, opt.Workers, opt.Policy, chunk, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				s := 0.0
				for q := a.Ptr[i]; q < a.Ptr[i+1]; q++ {
					v := 1.0
					if a.Val != nil {
						v = a.Val[q]
					}
					s += res.DR[i] * v * res.DC[a.Idx[q]]
				}
				rsum[i] = s
			}
		})
		p.For(m, opt.Workers, opt.Policy, chunk, func(_, lo, hi int) {
			for j := lo; j < hi; j++ {
				s := 0.0
				for q := at.Ptr[j]; q < at.Ptr[j+1]; q++ {
					v := 1.0
					if at.Val != nil {
						v = at.Val[q]
					}
					s += res.DR[at.Idx[q]] * v * res.DC[j]
				}
				csum[j] = s
			}
		})
		p.For(n, opt.Workers, opt.Policy, chunk, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				if rsum[i] > 0 {
					res.DR[i] /= math.Sqrt(rsum[i])
				}
			}
		})
		p.For(m, opt.Workers, opt.Policy, chunk, func(_, lo, hi int) {
			for j := lo; j < hi; j++ {
				if csum[j] > 0 {
					res.DC[j] /= math.Sqrt(csum[j])
				}
			}
		})
		res.Iters++
		res.Err = colSumsAndError(at, res.DR, res.DC, nil, false, p, opt.Workers, opt.Policy, chunk)
		res.History = append(res.History, res.Err)
	}
	return res, nil
}

// ColError computes the scaling error of (dr, dc) on the matrix with
// transpose at: max over columns of |sum_i dr[i]*a_ij*dc[j] - 1|. This is
// the quantity reported in Tables 1 and 3.
func ColError(at *sparse.CSR, dr, dc []float64, workers int) float64 {
	return colSumsAndError(at, dr, dc, nil, false, par.Default(), workers, par.Dynamic, par.DefaultChunk)
}

// RowError is the row-side counterpart of ColError (max |rowsum-1|),
// computed on the matrix itself.
func RowError(a *sparse.CSR, dr, dc []float64, workers int) float64 {
	return colSumsAndError(a, dc, dr, nil, false, par.Default(), workers, par.Dynamic, par.DefaultChunk)
}

// colSumsAndError walks the columns once and returns
// max_j |sum_j·dc[j] - 1| — the scaling error, measured against the dc the
// columns enter the sweep with. Two optional outputs ride along on the
// same pass: sums, when non-nil, receives the raw weighted column sums
// Σ_i dr[i]·a_ij (the sampling totals / next-pass inputs), and invert
// additionally updates dc[j] to the inverted fresh sum — which turns the
// sweep into one fused column pass of the fixed-iteration loop (the error
// it reports is exactly the scaling error of the previous iteration's
// result, because it is measured before dc is touched). One kernel thus
// serves the error measurement, the totals export and the fused column
// pass; the bit-identity between the fused and classic paths holds because
// every caller accumulates through this single body, and
// TestFusedMatchesClassicReference fails if the order ever drifts.
func colSumsAndError(at *sparse.CSR, dr, dc []float64, sums []float64, invert bool,
	p *par.Pool, workers int, policy par.Policy, chunk int) float64 {
	m := at.RowsN
	return p.ReduceFloat64(m, workers, policy, chunk, 0,
		func(_, lo, hi int, acc float64) float64 {
			for j := lo; j < hi; j++ {
				csum := 0.0
				s, e := at.Ptr[j], at.Ptr[j+1]
				if at.Val == nil {
					for q := s; q < e; q++ {
						csum += dr[at.Idx[q]]
					}
				} else {
					for q := s; q < e; q++ {
						csum += dr[at.Idx[q]] * at.Val[q]
					}
				}
				if sums != nil {
					sums[j] = csum
				}
				if d := math.Abs(csum*dc[j] - 1.0); d > acc {
					acc = d
				}
				if invert && csum > 0 {
					dc[j] = 1.0 / csum
				}
			}
			return acc
		}, math.Max)
}

// Entry returns the scaled entry dr[i]*v*dc[j] for the p-th stored entry of
// row i. It is a convenience for tests and debugging.
func Entry(a *sparse.CSR, dr, dc []float64, i, p int) float64 {
	v := 1.0
	if a.Val != nil {
		v = a.Val[p]
	}
	return dr[i] * v * dc[a.Idx[p]]
}

func ones(n int) []float64 {
	d := make([]float64, n)
	for i := range d {
		d[i] = 1
	}
	return d
}
