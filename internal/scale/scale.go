// Package scale implements doubly stochastic matrix scaling. The matching
// heuristics use the scaled entries s_ij = dr[i]·a_ij·dc[j] as probability
// densities for choosing edges (paper §2.2 and Algorithm 1).
//
// Two methods are provided: the parallel Sinkhorn–Knopp iteration (ScaleSK,
// Algorithm 1 in the paper), and the Ruiz equilibration iteration reviewed
// in §2.2 for comparison. Both produce scaling vectors dr, dc rather than
// materializing the scaled matrix.
package scale

import (
	"errors"
	"math"

	"repro/internal/par"
	"repro/internal/sparse"
)

// Options configures a scaling run.
type Options struct {
	// MaxIters bounds the number of iterations. Zero iterations leaves
	// dr = dc = 1, i.e., uniform sampling (the "0 iterations" rows of
	// Tables 1 and 2).
	MaxIters int
	// Tol stops the iteration once the scaling error (max |colsum-1|)
	// drops below it. Tol <= 0 disables the convergence check so that
	// exactly MaxIters iterations run, as the experiments require.
	Tol float64
	// Workers is the parallel width; <= 0 means GOMAXPROCS.
	Workers int
	// Policy is the loop scheduling policy; the paper uses (dynamic,512).
	Policy par.Policy
	// Chunk is the scheduling chunk size; <= 0 means par.DefaultChunk.
	Chunk int
}

// Result carries the scaling vectors and convergence information.
type Result struct {
	DR, DC []float64
	// Iters is the number of iterations actually performed.
	Iters int
	// Err is the scaling error after the final iteration: the maximum
	// absolute difference between a column sum of the scaled matrix and
	// one. Before any iteration it is measured on the unscaled matrix.
	Err float64
	// History records the error measured at the start of each iteration,
	// History[0] being the unscaled error (n-1 for a matrix with a full
	// column, as noted in the paper).
	History []float64
}

// ErrShape reports mismatched matrix/transpose arguments.
var ErrShape = errors.New("scale: transpose shape mismatch")

// SinkhornKnopp runs Algorithm 1 (ScaleSK) on a, whose transpose at must be
// supplied (both orientations are needed: column sums walk columns, row
// sums walk rows). Val == nil treats entries as 1. Rows or columns with no
// entries keep their scaling factor (their sums are reported as 0 and the
// error reflects it), matching the paper's treatment of structurally
// deficient matrices where irrelevant entries drift to zero.
func SinkhornKnopp(a, at *sparse.CSR, opt Options) (*Result, error) {
	if a.RowsN != at.ColsN || a.ColsN != at.RowsN {
		return nil, ErrShape
	}
	workers := par.Workers(opt.Workers)
	chunk := opt.Chunk
	if chunk <= 0 {
		chunk = par.DefaultChunk
	}
	n, m := a.RowsN, a.ColsN
	res := &Result{DR: ones(n), DC: ones(m)}

	res.Err = colError(at, res.DR, res.DC, workers, opt.Policy, chunk)
	res.History = append(res.History, res.Err)
	for it := 0; it < opt.MaxIters; it++ {
		if opt.Tol > 0 && res.Err <= opt.Tol {
			break
		}
		// Column pass: dc[j] <- 1 / sum_{i in A*j} dr[i]*a_ij.
		par.For(m, workers, opt.Policy, chunk, func(_, lo, hi int) {
			for j := lo; j < hi; j++ {
				csum := 0.0
				s, e := at.Ptr[j], at.Ptr[j+1]
				if at.Val == nil {
					for p := s; p < e; p++ {
						csum += res.DR[at.Idx[p]]
					}
				} else {
					for p := s; p < e; p++ {
						csum += res.DR[at.Idx[p]] * at.Val[p]
					}
				}
				if csum > 0 {
					res.DC[j] = 1.0 / csum
				}
			}
		})
		// Row pass: dr[i] <- 1 / sum_{j in Ai*} a_ij*dc[j].
		par.For(n, workers, opt.Policy, chunk, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				rsum := 0.0
				s, e := a.Ptr[i], a.Ptr[i+1]
				if a.Val == nil {
					for p := s; p < e; p++ {
						rsum += res.DC[a.Idx[p]]
					}
				} else {
					for p := s; p < e; p++ {
						rsum += res.DC[a.Idx[p]] * a.Val[p]
					}
				}
				if rsum > 0 {
					res.DR[i] = 1.0 / rsum
				}
			}
		})
		res.Iters++
		res.Err = colError(at, res.DR, res.DC, workers, opt.Policy, chunk)
		res.History = append(res.History, res.Err)
	}
	return res, nil
}

// Ruiz runs the Ruiz equilibration iteration: every step scales rows and
// columns simultaneously by the inverse square roots of their current sums.
// It converges to the same doubly stochastic limit but, as Knight, Ruiz and
// Uçar observed, more slowly than Sinkhorn–Knopp on unsymmetric matrices —
// the ablation benchmark demonstrates exactly that.
func Ruiz(a, at *sparse.CSR, opt Options) (*Result, error) {
	if a.RowsN != at.ColsN || a.ColsN != at.RowsN {
		return nil, ErrShape
	}
	workers := par.Workers(opt.Workers)
	chunk := opt.Chunk
	if chunk <= 0 {
		chunk = par.DefaultChunk
	}
	n, m := a.RowsN, a.ColsN
	res := &Result{DR: ones(n), DC: ones(m)}
	rsum := make([]float64, n)
	csum := make([]float64, m)

	res.Err = colError(at, res.DR, res.DC, workers, opt.Policy, chunk)
	res.History = append(res.History, res.Err)
	for it := 0; it < opt.MaxIters; it++ {
		if opt.Tol > 0 && res.Err <= opt.Tol {
			break
		}
		par.For(n, workers, opt.Policy, chunk, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				s := 0.0
				for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
					v := 1.0
					if a.Val != nil {
						v = a.Val[p]
					}
					s += res.DR[i] * v * res.DC[a.Idx[p]]
				}
				rsum[i] = s
			}
		})
		par.For(m, workers, opt.Policy, chunk, func(_, lo, hi int) {
			for j := lo; j < hi; j++ {
				s := 0.0
				for p := at.Ptr[j]; p < at.Ptr[j+1]; p++ {
					v := 1.0
					if at.Val != nil {
						v = at.Val[p]
					}
					s += res.DR[at.Idx[p]] * v * res.DC[j]
				}
				csum[j] = s
			}
		})
		par.For(n, workers, opt.Policy, chunk, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				if rsum[i] > 0 {
					res.DR[i] /= math.Sqrt(rsum[i])
				}
			}
		})
		par.For(m, workers, opt.Policy, chunk, func(_, lo, hi int) {
			for j := lo; j < hi; j++ {
				if csum[j] > 0 {
					res.DC[j] /= math.Sqrt(csum[j])
				}
			}
		})
		res.Iters++
		res.Err = colError(at, res.DR, res.DC, workers, opt.Policy, chunk)
		res.History = append(res.History, res.Err)
	}
	return res, nil
}

// ColError computes the scaling error of (dr, dc) on the matrix with
// transpose at: max over columns of |sum_i dr[i]*a_ij*dc[j] - 1|. This is
// the quantity reported in Tables 1 and 3.
func ColError(at *sparse.CSR, dr, dc []float64, workers int) float64 {
	return colError(at, dr, dc, par.Workers(workers), par.Dynamic, par.DefaultChunk)
}

// RowError is the row-side counterpart of ColError (max |rowsum-1|),
// computed on the matrix itself.
func RowError(a *sparse.CSR, dr, dc []float64, workers int) float64 {
	return colError(a, dc, dr, par.Workers(workers), par.Dynamic, par.DefaultChunk)
}

func colError(at *sparse.CSR, dr, dc []float64, workers int, policy par.Policy, chunk int) float64 {
	m := at.RowsN
	return par.ReduceFloat64(m, workers, policy, chunk, 0,
		func(_, lo, hi int, acc float64) float64 {
			for j := lo; j < hi; j++ {
				csum := 0.0
				for p := at.Ptr[j]; p < at.Ptr[j+1]; p++ {
					v := 1.0
					if at.Val != nil {
						v = at.Val[p]
					}
					csum += dr[at.Idx[p]] * v
				}
				if d := math.Abs(csum*dc[j] - 1.0); d > acc {
					acc = d
				}
			}
			return acc
		}, math.Max)
}

// Entry returns the scaled entry dr[i]*v*dc[j] for the p-th stored entry of
// row i. It is a convenience for tests and debugging.
func Entry(a *sparse.CSR, dr, dc []float64, i, p int) float64 {
	v := 1.0
	if a.Val != nil {
		v = a.Val[p]
	}
	return dr[i] * v * dc[a.Idx[p]]
}

func ones(n int) []float64 {
	d := make([]float64, n)
	for i := range d {
		d[i] = 1
	}
	return d
}
