package scale

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/sparse"
)

// referenceSK is the textbook three-sweep Sinkhorn–Knopp loop (column
// pass, row pass, dedicated error sweep), written sequentially. The fused
// production loop must reproduce it bit for bit.
func referenceSK(a, at *sparse.CSR, iters int) *Result {
	n, m := a.RowsN, a.ColsN
	res := &Result{DR: ones(n), DC: ones(m)}
	colErr := func() float64 {
		worst := 0.0
		for j := 0; j < m; j++ {
			csum := 0.0
			for p := at.Ptr[j]; p < at.Ptr[j+1]; p++ {
				v := 1.0
				if at.Val != nil {
					v = at.Val[p]
				}
				csum += res.DR[at.Idx[p]] * v
			}
			if d := math.Abs(csum*res.DC[j] - 1.0); d > worst {
				worst = d
			}
		}
		return worst
	}
	res.Err = colErr()
	res.History = append(res.History, res.Err)
	for it := 0; it < iters; it++ {
		for j := 0; j < m; j++ {
			csum := 0.0
			for p := at.Ptr[j]; p < at.Ptr[j+1]; p++ {
				v := 1.0
				if at.Val != nil {
					v = at.Val[p]
				}
				csum += res.DR[at.Idx[p]] * v
			}
			if csum > 0 {
				res.DC[j] = 1.0 / csum
			}
		}
		for i := 0; i < n; i++ {
			rsum := 0.0
			for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
				v := 1.0
				if a.Val != nil {
					v = a.Val[p]
				}
				rsum += v * res.DC[a.Idx[p]]
			}
			if rsum > 0 {
				res.DR[i] = 1.0 / rsum
			}
		}
		res.Iters++
		res.Err = colErr()
		res.History = append(res.History, res.Err)
	}
	return res
}

func fusedTestMatrices() map[string]*sparse.CSR {
	return map[string]*sparse.CSR{
		"er":     gen.ERAvgDeg(800, 800, 5, 3),
		"fi":     gen.FullyIndecomposable(500, 2, 9),
		"pl":     gen.PowerLaw(600, 2, 1.7, 200, 4),
		"ragged": gen.ERAvgDeg(300, 700, 3, 8),
	}
}

// TestFusedMatchesClassicReference pins the fused two-sweep loop to the
// classic three-sweep formulation: identical DR, DC, Err and History for
// every worker count and policy.
func TestFusedMatchesClassicReference(t *testing.T) {
	for name, a := range fusedTestMatrices() {
		at := a.Transpose()
		for _, iters := range []int{0, 1, 2, 5} {
			want := referenceSK(a, at, iters)
			for _, w := range []int{1, 3, 8} {
				for _, pol := range []par.Policy{par.Static, par.Dynamic, par.Guided} {
					got, err := SinkhornKnopp(a, at, Options{MaxIters: iters, Workers: w, Policy: pol, Chunk: 64})
					if err != nil {
						t.Fatal(err)
					}
					if got.Iters != want.Iters || got.Err != want.Err {
						t.Fatalf("%s iters=%d w=%d %v: got (iters=%d err=%v) want (iters=%d err=%v)",
							name, iters, w, pol, got.Iters, got.Err, want.Iters, want.Err)
					}
					cmpF64s(t, name+" DR", got.DR, want.DR)
					cmpF64s(t, name+" DC", got.DC, want.DC)
					cmpF64s(t, name+" History", got.History, want.History)
				}
			}
		}
	}
}

// TestExportedSumsMatchFreshSweeps checks that RSum and CSum are
// bit-identical to sums recomputed from the final vectors — they are the
// sampling totals the matching kernels rely on.
func TestExportedSumsMatchFreshSweeps(t *testing.T) {
	for name, a := range fusedTestMatrices() {
		at := a.Transpose()
		res, err := SinkhornKnopp(a, at, Options{MaxIters: 4, Workers: 4, Policy: par.Dynamic})
		if err != nil {
			t.Fatal(err)
		}
		if res.RSum == nil || res.CSum == nil {
			t.Fatalf("%s: fused run did not export RSum/CSum", name)
		}
		for i := 0; i < a.RowsN; i++ {
			sum := 0.0
			for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
				v := 1.0
				if a.Val != nil {
					v = a.Val[p]
				}
				sum += res.DC[a.Idx[p]] * v
			}
			if res.RSum[i] != sum {
				t.Fatalf("%s: RSum[%d] = %v, fresh sum %v", name, i, res.RSum[i], sum)
			}
		}
		for j := 0; j < a.ColsN; j++ {
			sum := 0.0
			for p := at.Ptr[j]; p < at.Ptr[j+1]; p++ {
				v := 1.0
				if at.Val != nil {
					v = at.Val[p]
				}
				sum += res.DR[at.Idx[p]] * v
			}
			if res.CSum[j] != sum {
				t.Fatalf("%s: CSum[%d] = %v, fresh sum %v", name, j, res.CSum[j], sum)
			}
		}
	}
}

// TestTolPathStillConverges pins the convergence-checked variant: it must
// stop early, leave the totals nil, and agree with the fused path on the
// iterations it shares.
func TestTolPathStillConverges(t *testing.T) {
	a := gen.FullyIndecomposable(400, 3, 5)
	at := a.Transpose()
	tol, _ := SinkhornKnopp(a, at, Options{MaxIters: 200, Tol: 1e-3, Workers: 4, Policy: par.Dynamic})
	if tol.Err > 1e-3 {
		t.Fatalf("Tol run did not converge: err %v after %d iters", tol.Err, tol.Iters)
	}
	if tol.Iters >= 200 {
		t.Fatalf("Tol run never stopped early (%d iters)", tol.Iters)
	}
	if tol.RSum != nil || tol.CSum != nil {
		t.Fatal("Tol run unexpectedly exported sampling totals")
	}
	fused, _ := SinkhornKnopp(a, at, Options{MaxIters: tol.Iters, Workers: 4, Policy: par.Dynamic})
	cmpF64s(t, "tol-vs-fused DR", tol.DR, fused.DR)
	cmpF64s(t, "tol-vs-fused DC", tol.DC, fused.DC)
	cmpF64s(t, "tol-vs-fused History", tol.History, fused.History)
}

// TestScalingOnCallerOwnedPool runs the fused loop on an explicit pool and
// checks the result is identical to the default pool's.
func TestScalingOnCallerOwnedPool(t *testing.T) {
	a := gen.ERAvgDeg(500, 500, 4, 6)
	at := a.Transpose()
	want, _ := SinkhornKnopp(a, at, Options{MaxIters: 5, Workers: 4, Policy: par.Guided})
	pool := par.NewPool(4)
	defer pool.Close()
	got, _ := SinkhornKnopp(a, at, Options{MaxIters: 5, Workers: 4, Policy: par.Guided, Pool: pool})
	cmpF64s(t, "pool DR", got.DR, want.DR)
	cmpF64s(t, "pool DC", got.DC, want.DC)
	cmpF64s(t, "pool RSum", got.RSum, want.RSum)
	cmpF64s(t, "pool CSum", got.CSum, want.CSum)
}

// TestWorkspaceReuseBitIdentical runs the fused loop repeatedly through one
// shared Workspace — across differently shaped matrices, forcing regrows —
// and checks every run is bit-identical to a workspace-free run.
func TestWorkspaceReuseBitIdentical(t *testing.T) {
	ws := &Workspace{}
	for name, a := range fusedTestMatrices() {
		at := a.Transpose()
		for _, iters := range []int{0, 3, 5} {
			opt := Options{MaxIters: iters, Workers: 4, Policy: par.Dynamic}
			want, err := SinkhornKnopp(a, at, opt)
			if err != nil {
				t.Fatal(err)
			}
			opt.Ws = ws
			for run := 0; run < 3; run++ {
				got, err := SinkhornKnopp(a, at, opt)
				if err != nil {
					t.Fatal(err)
				}
				if got.Iters != want.Iters || got.Err != want.Err {
					t.Fatalf("%s iters=%d run=%d: got (iters=%d err=%v) want (iters=%d err=%v)",
						name, iters, run, got.Iters, got.Err, want.Iters, want.Err)
				}
				cmpF64s(t, name+" ws DR", got.DR, want.DR)
				cmpF64s(t, name+" ws DC", got.DC, want.DC)
				cmpF64s(t, name+" ws History", got.History, want.History)
				if iters > 0 {
					cmpF64s(t, name+" ws RSum", got.RSum, want.RSum)
					cmpF64s(t, name+" ws CSum", got.CSum, want.CSum)
				}
			}
		}
	}
}

func cmpF64s(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for k := range got {
		if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
			t.Fatalf("%s: index %d differs: %v vs %v", what, k, got[k], want[k])
		}
	}
}
