package scale

import (
	"sort"

	"repro/internal/par"
	"repro/internal/sparse"
)

// The paper's §2.2 notes that "in case of skewness in degree
// distributions, one [can] assign multiple threads to a single row with
// many nonzeros" to improve the parallel performance of ScaleSK. This file
// implements that optimization: rows/columns whose degree exceeds
// HeavyThreshold are summed with a nested parallel reduction while the
// remaining light rows go through the ordinary parallel-for.

// HeavyThreshold is the degree above which a row or column is processed
// with a nested parallel reduction.
const HeavyThreshold = 1 << 15

// SinkhornKnoppSkewAware behaves exactly like SinkhornKnopp (same
// results, bit for bit) but splits very heavy rows and columns across all
// workers, which removes the load-imbalance tail on power-law instances
// like torso1.
func SinkhornKnoppSkewAware(a, at *sparse.CSR, opt Options) (*Result, error) {
	if a.RowsN != at.ColsN || a.ColsN != at.RowsN {
		return nil, ErrShape
	}
	pl := opt.pool()
	workers := opt.Workers
	chunk := opt.chunkOrDefault()
	n, m := a.RowsN, a.ColsN
	res := &Result{DR: ones(n), DC: ones(m)}

	heavyCols := heavyIndices(at)
	lightCols := lightIndices(at, heavyCols)
	heavyRows := heavyIndices(a)
	lightRows := lightIndices(a, heavyRows)

	res.Err = colSumsAndError(at, res.DR, res.DC, nil, false, pl, workers, opt.Policy, chunk)
	res.History = append(res.History, res.Err)
	for it := 0; it < opt.MaxIters; it++ {
		if opt.Tol > 0 && res.Err <= opt.Tol {
			break
		}
		if opt.canceled() {
			return nil, ErrCanceled
		}
		// Light columns: one worker per chunk of columns.
		pl.For(len(lightCols), workers, opt.Policy, chunk, func(_, lo, hi int) {
			for k := lo; k < hi; k++ {
				j := lightCols[k]
				csum := rowSumWeighted(at, int(j), res.DR)
				if csum > 0 {
					res.DC[j] = 1.0 / csum
				}
			}
		})
		// Heavy columns: all workers per column.
		for _, j := range heavyCols {
			csum := parallelRowSum(at, int(j), res.DR, pl, workers)
			if csum > 0 {
				res.DC[j] = 1.0 / csum
			}
		}
		pl.For(len(lightRows), workers, opt.Policy, chunk, func(_, lo, hi int) {
			for k := lo; k < hi; k++ {
				i := lightRows[k]
				rsum := rowSumWeighted(a, int(i), res.DC)
				if rsum > 0 {
					res.DR[i] = 1.0 / rsum
				}
			}
		})
		for _, i := range heavyRows {
			rsum := parallelRowSum(a, int(i), res.DC, pl, workers)
			if rsum > 0 {
				res.DR[i] = 1.0 / rsum
			}
		}
		res.Iters++
		res.Err = colSumsAndError(at, res.DR, res.DC, nil, false, pl, workers, opt.Policy, chunk)
		res.History = append(res.History, res.Err)
	}
	return res, nil
}

func heavyIndices(a *sparse.CSR) []int32 {
	var heavy []int32
	for i := 0; i < a.RowsN; i++ {
		if a.Degree(i) > HeavyThreshold {
			heavy = append(heavy, int32(i))
		}
	}
	return heavy
}

func lightIndices(a *sparse.CSR, heavy []int32) []int32 {
	isHeavy := func(i int32) bool {
		k := sort.Search(len(heavy), func(k int) bool { return heavy[k] >= i })
		return k < len(heavy) && heavy[k] == i
	}
	light := make([]int32, 0, a.RowsN-len(heavy))
	for i := 0; i < a.RowsN; i++ {
		if !isHeavy(int32(i)) {
			light = append(light, int32(i))
		}
	}
	return light
}

// rowSumWeighted sums d over the entries of row i (sequential).
func rowSumWeighted(a *sparse.CSR, i int, d []float64) float64 {
	s, e := a.Ptr[i], a.Ptr[i+1]
	sum := 0.0
	if a.Val == nil {
		for p := s; p < e; p++ {
			sum += d[a.Idx[p]]
		}
		return sum
	}
	for p := s; p < e; p++ {
		sum += d[a.Idx[p]] * a.Val[p]
	}
	return sum
}

// parallelRowSum splits one very long row across all workers. The partial
// sums are combined in deterministic (worker-index) order over fixed
// boundaries, so the floating-point result is independent of scheduling
// (though it may differ from the purely sequential sum by round-off;
// callers who need bit-equality with SinkhornKnopp use one worker).
func parallelRowSum(a *sparse.CSR, i int, d []float64, pl *par.Pool, workers int) float64 {
	s, e := a.Ptr[i], a.Ptr[i+1]
	span := e - s
	workers = pl.Workers(workers)
	if span < HeavyThreshold || workers == 1 {
		return rowSumWeighted(a, i, d)
	}
	parts := make([]float64, workers)
	pl.Do(workers, func(w int) {
		lo := s + w*span/workers
		hi := s + (w+1)*span/workers
		sum := 0.0
		if a.Val == nil {
			for p := lo; p < hi; p++ {
				sum += d[a.Idx[p]]
			}
		} else {
			for p := lo; p < hi; p++ {
				sum += d[a.Idx[p]] * a.Val[p]
			}
		}
		parts[w] = sum
	})
	total := 0.0
	for _, p := range parts {
		total += p
	}
	return total
}
