package scale

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/sparse"
)

func run(t *testing.T, a *sparse.CSR, iters int, workers int) *Result {
	t.Helper()
	res, err := SinkhornKnopp(a, a.Transpose(), Options{MaxIters: iters, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func rowColSums(a *sparse.CSR, dr, dc []float64) (rows, cols []float64) {
	rows = make([]float64, a.RowsN)
	cols = make([]float64, a.ColsN)
	for i := 0; i < a.RowsN; i++ {
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			v := 1.0
			if a.Val != nil {
				v = a.Val[p]
			}
			s := dr[i] * v * dc[a.Idx[p]]
			rows[i] += s
			cols[a.Idx[p]] += s
		}
	}
	return rows, cols
}

func TestIdentityScalesImmediately(t *testing.T) {
	a := gen.Identity(10)
	res := run(t, a, 1, 1)
	rows, cols := rowColSums(a, res.DR, res.DC)
	for i := range rows {
		if math.Abs(rows[i]-1) > 1e-12 || math.Abs(cols[i]-1) > 1e-12 {
			t.Fatalf("identity not doubly stochastic after 1 iter: row %v col %v", rows[i], cols[i])
		}
	}
}

func TestFullMatrixScalesToUniform(t *testing.T) {
	n := 8
	a := gen.Full(n)
	res := run(t, a, 1, 2)
	// The doubly stochastic scaling of the all-ones matrix is s_ij = 1/n.
	for i := 0; i < n; i++ {
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			if s := Entry(a, res.DR, res.DC, i, p); math.Abs(s-1.0/float64(n)) > 1e-12 {
				t.Fatalf("s[%d][%d] = %v want %v", i, a.Idx[p], s, 1.0/float64(n))
			}
		}
	}
}

func TestConvergenceOnTotalSupport(t *testing.T) {
	a := gen.FullyIndecomposable(200, 2, 3)
	res := run(t, a, 200, 4)
	if res.Err > 1e-6 {
		t.Fatalf("did not converge: err %v after %d iters", res.Err, res.Iters)
	}
	rows, cols := rowColSums(a, res.DR, res.DC)
	for i := range rows {
		if math.Abs(rows[i]-1) > 1e-5 {
			t.Fatalf("row %d sum %v", i, rows[i])
		}
	}
	for j := range cols {
		if math.Abs(cols[j]-1) > 1e-5 {
			t.Fatalf("col %d sum %v", j, cols[j])
		}
	}
}

func TestRowSumsAreOneAfterEachIteration(t *testing.T) {
	// Sinkhorn-Knopp normalizes rows second, so row sums are exactly one
	// (modulo round-off) after every iteration.
	a := gen.ERAvgDeg(300, 300, 4, 11)
	res := run(t, a, 3, 3)
	rows, _ := rowColSums(a, res.DR, res.DC)
	for i := range rows {
		if rows[i] != 0 && math.Abs(rows[i]-1) > 1e-9 {
			t.Fatalf("row %d sum %v after row-normalizing iteration", i, rows[i])
		}
	}
}

func TestErrorHistoryDecreasesOnTotalSupport(t *testing.T) {
	a := gen.FullyIndecomposable(500, 1, 17)
	res := run(t, a, 30, 2)
	if len(res.History) != res.Iters+1 {
		t.Fatalf("history length %d want %d", len(res.History), res.Iters+1)
	}
	if res.History[len(res.History)-1] >= res.History[0] {
		t.Fatalf("error did not decrease: %v -> %v", res.History[0], res.History[len(res.History)-1])
	}
}

func TestUnscaledErrorIsMaxDegreeMinusOne(t *testing.T) {
	// Before scaling dr=dc=1, so a column's sum is its degree; the matrix
	// with a full column has initial error n-1 as the paper notes.
	n := 50
	a := gen.BadKS(n, 2)
	res := run(t, a, 0, 1)
	if res.Err != float64(n-1) {
		t.Fatalf("unscaled error %v want %v", res.Err, float64(n-1))
	}
	if res.Iters != 0 {
		t.Fatalf("0 iterations requested but ran %d", res.Iters)
	}
}

func TestZeroIterationsLeavesOnes(t *testing.T) {
	a := gen.ERAvgDeg(100, 100, 3, 5)
	res := run(t, a, 0, 1)
	for _, v := range res.DR {
		if v != 1 {
			t.Fatal("dr touched with 0 iterations")
		}
	}
	for _, v := range res.DC {
		if v != 1 {
			t.Fatal("dc touched with 0 iterations")
		}
	}
}

func TestToleranceStopsEarly(t *testing.T) {
	a := gen.FullyIndecomposable(300, 2, 7)
	res, err := SinkhornKnopp(a, a.Transpose(), Options{MaxIters: 1000, Tol: 1e-3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters == 1000 {
		t.Fatal("tolerance did not stop the iteration")
	}
	if res.Err > 1e-3 {
		t.Fatalf("stopped with error %v above tolerance", res.Err)
	}
}

func TestWorkersProduceIdenticalScaling(t *testing.T) {
	a := gen.ERAvgDeg(400, 400, 5, 23)
	at := a.Transpose()
	base, err := SinkhornKnopp(a, at, Options{MaxIters: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		res, err := SinkhornKnopp(a, at, Options{MaxIters: 8, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		for i := range base.DR {
			if base.DR[i] != res.DR[i] {
				t.Fatalf("dr[%d] differs between 1 and %d workers", i, w)
			}
		}
		for j := range base.DC {
			if base.DC[j] != res.DC[j] {
				t.Fatalf("dc[%d] differs between 1 and %d workers", j, w)
			}
		}
	}
}

func TestShapeMismatchRejected(t *testing.T) {
	a := gen.Identity(4)
	b := gen.Identity(5)
	if _, err := SinkhornKnopp(a, b, Options{MaxIters: 1}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if _, err := Ruiz(a, b, Options{MaxIters: 1}); err == nil {
		t.Fatal("shape mismatch accepted by Ruiz")
	}
}

func TestEmptyRowsAndColsSurvive(t *testing.T) {
	// A matrix with an empty row and column: scaling must not divide by
	// zero and must leave their factors finite.
	a, err := sparse.FromCOO(3, 3, []sparse.Coord{{I: 0, J: 0}, {I: 1, J: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, a, 5, 1)
	for _, v := range append(append([]float64{}, res.DR...), res.DC...) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite scaling factor %v", v)
		}
	}
}

func TestRuizConvergesOnTotalSupport(t *testing.T) {
	a := gen.FullyIndecomposable(200, 2, 29)
	res, err := Ruiz(a, a.Transpose(), Options{MaxIters: 300, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err > 1e-4 {
		t.Fatalf("Ruiz did not converge: err %v", res.Err)
	}
}

func TestRuizSlowerThanSinkhornKnopp(t *testing.T) {
	// Knight–Ruiz–Uçar: SK converges faster on unsymmetric matrices.
	// Compare the error after the same number of iterations on a
	// total-support instance (deficient ones pin both errors at 1 because
	// of empty columns).
	a := gen.FullyIndecomposable(500, 3, 31)
	at := a.Transpose()
	sk, err := SinkhornKnopp(a, at, Options{MaxIters: 10, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rz, err := Ruiz(a, at, Options{MaxIters: 10, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sk.Err > rz.Err {
		t.Fatalf("expected SK error <= Ruiz error after 10 iters; got SK=%v Ruiz=%v", sk.Err, rz.Err)
	}
}

func TestWeightedMatrixScaling(t *testing.T) {
	a, err := sparse.FromCOO(2, 2, []sparse.Coord{
		{I: 0, J: 0, V: 4}, {I: 0, J: 1, V: 1}, {I: 1, J: 0, V: 1}, {I: 1, J: 1, V: 4}}, true)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, a, 100, 1)
	rows, cols := rowColSums(a, res.DR, res.DC)
	for i := range rows {
		if math.Abs(rows[i]-1) > 1e-8 || math.Abs(cols[i]-1) > 1e-8 {
			t.Fatalf("weighted scaling row %v col %v", rows[i], cols[i])
		}
	}
}

func TestColErrorMatchesDirectComputation(t *testing.T) {
	f := func(seed uint64) bool {
		a := gen.ERAvgDeg(60, 60, 3, seed)
		at := a.Transpose()
		res, err := SinkhornKnopp(a, at, Options{MaxIters: 2, Workers: 1})
		if err != nil {
			return false
		}
		_, cols := rowColSums(a, res.DR, res.DC)
		want := 0.0
		for j, s := range cols {
			d := math.Abs(s - 1)
			if at.Ptr[j] == at.Ptr[j+1] {
				d = 1 // empty column contributes |0*dc-1| = 1
			}
			if d > want {
				want = d
			}
		}
		got := ColError(at, res.DR, res.DC, 2)
		return math.Abs(got-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRowErrorSymmetric(t *testing.T) {
	a := gen.FullyIndecomposable(100, 1, 41)
	at := a.Transpose()
	res, err := SinkhornKnopp(a, at, Options{MaxIters: 50, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e := RowError(a, res.DR, res.DC, 1); e > 1e-6 {
		t.Fatalf("row error %v after convergence", e)
	}
}
