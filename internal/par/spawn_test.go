package par

import (
	"sync"
	"sync/atomic"
)

// forSpawn is the pre-pool loop runtime: it spawns fresh goroutines and a
// WaitGroup on every call. It lives in the test binary only, as the
// baseline that BenchmarkForOverhead measures the pool dispatch against
// and as an executable record of the semantics the pool preserves.
func forSpawn(n, workers int, policy Policy, chunk int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if workers == 1 {
		body(0, 0, n)
		return
	}
	switch policy {
	case Dynamic:
		var next int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for {
					lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
					if lo >= n {
						return
					}
					hi := lo + chunk
					if hi > n {
						hi = n
					}
					body(w, lo, hi)
				}
			}(w)
		}
		wg.Wait()
	case Guided:
		var next int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for {
					cur := atomic.LoadInt64(&next)
					remaining := int64(n) - cur
					if remaining <= 0 {
						return
					}
					size := remaining / int64(2*workers)
					if size < int64(chunk) {
						size = int64(chunk)
					}
					if size > remaining {
						size = remaining
					}
					if atomic.CompareAndSwapInt64(&next, cur, cur+size) {
						body(w, int(cur), int(cur+size))
					}
				}
			}(w)
		}
		wg.Wait()
	default: // Static
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				lo := w * n / workers
				hi := (w + 1) * n / workers
				if lo < hi {
					body(w, lo, hi)
				}
			}(w)
		}
		wg.Wait()
	}
}
