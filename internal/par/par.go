// Package par provides an OpenMP-like parallel-for runtime on top of a
// persistent worker pool. It supports the three loop scheduling policies
// used by the paper's OpenMP implementation (static, dynamic and guided)
// so that the experiments can reproduce the same work-distribution
// behaviour: (dynamic,512) for the scaling and sampling loops, (guided)
// for KarpSipserMT.
//
// Parallel regions do not spawn goroutines: they are dispatched to parked
// workers of a Pool (see its documentation for the runtime design and
// lifecycle). The package-level For, Do, ReduceFloat64 and ReduceInt64
// use the process-wide Default pool; callers that want an isolated or
// width-limited set of workers create their own Pool with NewPool and use
// the identically-named methods, reusing the one pool across scaling,
// sampling and both Karp–Sipser phases.
package par

import "runtime"

// Policy selects how loop iterations are distributed over workers.
type Policy int

const (
	// Static splits the iteration space into one contiguous block per
	// worker. No synchronization during the loop; best for uniform work.
	Static Policy = iota
	// Dynamic hands out fixed-size chunks from a shared counter; workers
	// grab the next chunk when they finish one. Equivalent to OpenMP
	// schedule(dynamic,chunk).
	Dynamic
	// Guided hands out exponentially shrinking chunks, each roughly
	// remaining/(2*workers) but never below the chunk parameter.
	// Equivalent to OpenMP schedule(guided,chunk).
	Guided
)

// String returns the OpenMP-style name of the policy.
func (p Policy) String() string {
	switch p {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return "unknown"
	}
}

// DefaultChunk is the chunk size used when the caller passes chunk <= 0.
// It matches the (dynamic,512) OpenMP schedule used by the paper.
const DefaultChunk = 512

// Workers normalizes a requested worker count: values <= 0 mean
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For executes body over the half-open range [0, n) using the given number
// of worker slots and scheduling policy, dispatched to the Default pool.
// body receives the worker id (0-based, dense in [0, workers)) and a
// sub-range [lo, hi) to process. It returns once all iterations are done.
// A non-positive worker count uses the pool width; a non-positive chunk
// uses DefaultChunk. With a single worker the loop runs inline, which
// keeps sequential baselines free of any dispatch overhead.
func For(n, workers int, policy Policy, chunk int, body func(worker, lo, hi int)) {
	Default().For(n, workers, policy, chunk, body)
}

// Do runs fn once per worker id in [0, workers) concurrently on the
// Default pool and waits for all of them. It is the building block for
// loops that need per-worker state such as RNG streams.
func Do(workers int, fn func(worker int)) {
	Default().Do(workers, fn)
}

// ReduceFloat64 runs a parallel-for on the Default pool and combines one
// float64 partial result per worker with combine (which must be
// associative and commutative). identity is the initial value of every
// partial accumulator.
func ReduceFloat64(n, workers int, policy Policy, chunk int, identity float64,
	body func(worker, lo, hi int, acc float64) float64,
	combine func(a, b float64) float64) float64 {
	return Default().ReduceFloat64(n, workers, policy, chunk, identity, body, combine)
}

// ReduceInt64 is ReduceFloat64 for int64 accumulators.
func ReduceInt64(n, workers int, policy Policy, chunk int, identity int64,
	body func(worker, lo, hi int, acc int64) int64,
	combine func(a, b int64) int64) int64 {
	return Default().ReduceInt64(n, workers, policy, chunk, identity, body, combine)
}
