// Package par provides an OpenMP-like parallel-for runtime on top of
// goroutines. It supports the three loop scheduling policies used by the
// paper's OpenMP implementation (static, dynamic and guided) so that the
// experiments can reproduce the same work-distribution behaviour:
// (dynamic,512) for the scaling and sampling loops, (guided) for
// KarpSipserMT.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Policy selects how loop iterations are distributed over workers.
type Policy int

const (
	// Static splits the iteration space into one contiguous block per
	// worker. No synchronization during the loop; best for uniform work.
	Static Policy = iota
	// Dynamic hands out fixed-size chunks from a shared counter; workers
	// grab the next chunk when they finish one. Equivalent to OpenMP
	// schedule(dynamic,chunk).
	Dynamic
	// Guided hands out exponentially shrinking chunks, each roughly
	// remaining/(2*workers) but never below the chunk parameter.
	// Equivalent to OpenMP schedule(guided,chunk).
	Guided
)

// String returns the OpenMP-style name of the policy.
func (p Policy) String() string {
	switch p {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return "unknown"
	}
}

// DefaultChunk is the chunk size used when the caller passes chunk <= 0.
// It matches the (dynamic,512) OpenMP schedule used by the paper.
const DefaultChunk = 512

// Workers normalizes a requested worker count: values <= 0 mean
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For executes body over the half-open range [0, n) using the given number
// of workers and scheduling policy. body receives the worker id (0-based)
// and a sub-range [lo, hi) to process. It returns once all iterations are
// done. A non-positive worker count uses GOMAXPROCS; a non-positive chunk
// uses DefaultChunk. With a single worker the loop runs inline, which keeps
// sequential baselines free of goroutine overhead.
func For(n, workers int, policy Policy, chunk int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if workers == 1 {
		body(0, 0, n)
		return
	}
	switch policy {
	case Static:
		staticFor(n, workers, body)
	case Dynamic:
		dynamicFor(n, workers, chunk, body)
	case Guided:
		guidedFor(n, workers, chunk, body)
	default:
		staticFor(n, workers, body)
	}
}

func staticFor(n, workers int, body func(worker, lo, hi int)) {
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo := w * n / workers
			hi := (w + 1) * n / workers
			if lo < hi {
				body(w, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

func dynamicFor(n, workers, chunk int, body func(worker, lo, hi int)) {
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				body(w, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

func guidedFor(n, workers, minChunk int, body func(worker, lo, hi int)) {
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				for {
					cur := atomic.LoadInt64(&next)
					remaining := int64(n) - cur
					if remaining <= 0 {
						return
					}
					size := remaining / int64(2*workers)
					if size < int64(minChunk) {
						size = int64(minChunk)
					}
					if size > remaining {
						size = remaining
					}
					if atomic.CompareAndSwapInt64(&next, cur, cur+size) {
						body(w, int(cur), int(cur+size))
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// Do runs fn once per worker id in [0, workers) concurrently and waits for
// all of them. It is the building block for loops that need per-worker
// state such as RNG streams.
func Do(workers int, fn func(worker int)) {
	workers = Workers(workers)
	if workers == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// ReduceFloat64 runs a parallel-for and combines one float64 partial result
// per worker with combine (which must be associative and commutative).
// identity is the initial value of every partial accumulator.
func ReduceFloat64(n, workers int, policy Policy, chunk int, identity float64,
	body func(worker, lo, hi int, acc float64) float64,
	combine func(a, b float64) float64) float64 {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	parts := make([]float64, workers)
	for i := range parts {
		parts[i] = identity
	}
	For(n, workers, policy, chunk, func(w, lo, hi int) {
		parts[w] = body(w, lo, hi, parts[w])
	})
	out := identity
	for _, p := range parts {
		out = combine(out, p)
	}
	return out
}

// ReduceInt64 is ReduceFloat64 for int64 accumulators.
func ReduceInt64(n, workers int, policy Policy, chunk int, identity int64,
	body func(worker, lo, hi int, acc int64) int64,
	combine func(a, b int64) int64) int64 {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	parts := make([]int64, workers)
	for i := range parts {
		parts[i] = identity
	}
	For(n, workers, policy, chunk, func(w, lo, hi int) {
		parts[w] = body(w, lo, hi, parts[w])
	})
	out := identity
	for _, p := range parts {
		out = combine(out, p)
	}
	return out
}
