package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func coverageCheck(t *testing.T, n, workers int, policy Policy, chunk int) {
	t.Helper()
	seen := make([]int32, n)
	For(n, workers, policy, chunk, func(w, lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("policy %v: bad range [%d,%d) for n=%d", policy, lo, hi, n)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("policy %v n=%d workers=%d chunk=%d: index %d covered %d times",
				policy, n, workers, chunk, i, c)
		}
	}
}

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, policy := range []Policy{Static, Dynamic, Guided} {
		for _, n := range []int{0, 1, 2, 7, 100, 1023, 4096} {
			for _, workers := range []int{1, 2, 3, 8, 33} {
				for _, chunk := range []int{1, 3, 64, 512} {
					coverageCheck(t, n, workers, policy, chunk)
				}
			}
		}
	}
}

func TestForCoverageProperty(t *testing.T) {
	f := func(n uint16, workers uint8, pol uint8, chunk uint8) bool {
		nn := int(n) % 5000
		w := int(workers)%16 + 1
		p := Policy(pol % 3)
		c := int(chunk)%100 + 1
		seen := make([]int32, nn)
		For(nn, w, p, c, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for _, v := range seen {
			if v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestForSingleWorkerRunsInline(t *testing.T) {
	calls := 0
	For(100, 1, Dynamic, 10, func(w, lo, hi int) {
		calls++
		if w != 0 || lo != 0 || hi != 100 {
			t.Fatalf("single worker got (%d, %d, %d)", w, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("expected exactly one inline call, got %d", calls)
	}
}

func TestForWorkerIDsInRange(t *testing.T) {
	const workers = 7
	For(10000, workers, Guided, 16, func(w, lo, hi int) {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d out of range", w)
		}
	})
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	For(0, 4, Static, 1, func(_, _, _ int) { called = true })
	For(-5, 4, Static, 1, func(_, _, _ int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(0) < 1 {
		t.Fatal("Workers(0) must be positive")
	}
	if Workers(-3) < 1 {
		t.Fatal("Workers(-3) must be positive")
	}
	if Workers(5) != 5 {
		t.Fatalf("Workers(5) = %d", Workers(5))
	}
}

func TestDoRunsEachWorkerOnce(t *testing.T) {
	const workers = 9
	var counts [workers]int32
	Do(workers, func(w int) { atomic.AddInt32(&counts[w], 1) })
	for w, c := range counts {
		if c != 1 {
			t.Fatalf("worker %d ran %d times", w, c)
		}
	}
}

func TestReduceFloat64Sum(t *testing.T) {
	const n = 12345
	got := ReduceFloat64(n, 8, Dynamic, 64, 0,
		func(_, lo, hi int, acc float64) float64 {
			for i := lo; i < hi; i++ {
				acc += float64(i)
			}
			return acc
		}, func(a, b float64) float64 { return a + b })
	want := float64(n*(n-1)) / 2
	if got != want {
		t.Fatalf("sum = %v want %v", got, want)
	}
}

func TestReduceFloat64Max(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	got := ReduceFloat64(len(vals), 4, Guided, 2, 0,
		func(_, lo, hi int, acc float64) float64 {
			for i := lo; i < hi; i++ {
				if vals[i] > acc {
					acc = vals[i]
				}
			}
			return acc
		}, func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		})
	if got != 9 {
		t.Fatalf("max = %v want 9", got)
	}
}

func TestReduceInt64Count(t *testing.T) {
	got := ReduceInt64(1000, 6, Static, 1, 0,
		func(_, lo, hi int, acc int64) int64 { return acc + int64(hi-lo) },
		func(a, b int64) int64 { return a + b })
	if got != 1000 {
		t.Fatalf("count = %d want 1000", got)
	}
}

func TestPolicyString(t *testing.T) {
	cases := map[Policy]string{Static: "static", Dynamic: "dynamic", Guided: "guided", Policy(99): "unknown"}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("Policy(%d).String() = %q want %q", p, p.String(), want)
		}
	}
}

func TestGuidedChunksShrink(t *testing.T) {
	// With one worker inline execution hides chunking; use 2 workers and
	// record chunk sizes — the first observed chunk must be larger than
	// the minimum for a big enough range.
	var maxChunk int64
	For(100000, 2, Guided, 4, func(_, lo, hi int) {
		sz := int64(hi - lo)
		for {
			old := atomic.LoadInt64(&maxChunk)
			if sz <= old || atomic.CompareAndSwapInt64(&maxChunk, old, sz) {
				break
			}
		}
	})
	if maxChunk <= 4 {
		t.Fatalf("guided scheduling never produced a large chunk (max %d)", maxChunk)
	}
}

func BenchmarkForDynamic(b *testing.B) {
	data := make([]float64, 1<<20)
	for i := range data {
		data[i] = float64(i)
	}
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		ReduceFloat64(len(data), 0, Dynamic, 512, 0,
			func(_, lo, hi int, acc float64) float64 {
				for i := lo; i < hi; i++ {
					acc += data[i]
				}
				return acc
			}, func(a, b float64) float64 { return a + b })
	}
}
