//go:build race

package par

// raceEnabled reports whether the race detector is compiled in; the
// allocation gates are skipped under -race because the instrumentation
// itself allocates.
const raceEnabled = true
