package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a persistent set of worker goroutines that For, Do and the
// reductions dispatch loop bodies to. Creating goroutines and tearing them
// down on every parallel region (the classic Go idiom) costs a goroutine
// spawn plus a WaitGroup wake per worker per call; the matching heuristics
// issue dozens of parallel regions per run (scaling sweeps, sampling,
// Karp–Sipser phases), so that overhead lands squarely on the critical
// path. A Pool parks its workers on per-worker channels instead: a
// parallel region is one channel send per helper and one receive to
// collect the region, roughly an order of magnitude cheaper than a spawn.
//
// A Pool of width w owns w-1 resident workers; the goroutine that calls
// For/Do always executes slot 0 inline, so a width-1 pool runs everything
// sequentially with zero synchronization (the inline fast path). Slots
// beyond the resident width are queued and served as workers free up,
// which keeps any requested worker count correct — physical parallelism
// is simply capped at the pool width.
//
// Pools are safe for concurrent use: independent parallel regions issued
// from different goroutines share the workers, and a round-robin cursor
// spreads their helper slots across the pool. While a region's issuer
// waits for its helpers it steals back tasks that no worker has claimed
// yet and runs them inline, so a region always completes even when every
// resident worker is busy — including regions issued from inside another
// region's body, though such nesting shares rather than multiplies the
// pool's physical parallelism.
//
// The zero value is not usable; use NewPool, or the process-wide Default
// pool that the package-level functions dispatch to.
type Pool struct {
	width int
	chans []chan task
	rr    atomic.Uint32
	once  sync.Once // guards Close
}

// task is one helper slot of a parallel region.
type task struct {
	run  func(slot int)
	slot int
	g    *group
}

// group tracks the helper slots of one region. pending counts helpers
// still running; the worker that finishes last signals done. Groups are
// recycled through a sync.Pool so a steady state of parallel regions
// allocates only the body closure.
type group struct {
	pending atomic.Int64
	done    chan struct{}
}

var groupPool = sync.Pool{New: func() any { return &group{done: make(chan struct{}, 1)} }}

// loopState is the recycled per-region scheduling state of a parallel for.
// The three policy runners are closures built once per loopState that read
// the state's fields, so a steady stream of parallel regions whose bodies
// are themselves long-lived (the session workspaces of the matching
// pipeline) dispatches with zero allocations: For fills in the fields,
// hands a prebuilt runner to dispatch, and returns the state to the arena.
// A loopState is exclusively owned between Get and Put — dispatch only
// returns after every slot has finished — so the runners never observe a
// torn state.
type loopState struct {
	next    atomic.Int64
	n       int
	chunk   int
	workers int
	body    func(worker, lo, hi int)
	// cancel, when non-nil, is polled between chunk claims (and between
	// chunk-sized steps of a static block): once it reports true, no new
	// chunk is started. Iterations already in flight complete — the hook is
	// cooperative, not preemptive — so a canceled loop leaves its outputs
	// partially written and the caller must discard them.
	cancel func() bool

	runDynamic func(slot int)
	runGuided  func(slot int)
	runStatic  func(slot int)
}

var loopPool = sync.Pool{New: func() any {
	l := &loopState{}
	l.runDynamic = func(slot int) {
		for {
			if l.cancel != nil && l.cancel() {
				return
			}
			lo := int(l.next.Add(int64(l.chunk))) - l.chunk
			if lo >= l.n {
				return
			}
			hi := lo + l.chunk
			if hi > l.n {
				hi = l.n
			}
			l.body(slot, lo, hi)
		}
	}
	l.runGuided = func(slot int) {
		for {
			if l.cancel != nil && l.cancel() {
				return
			}
			cur := l.next.Load()
			remaining := int64(l.n) - cur
			if remaining <= 0 {
				return
			}
			size := remaining / int64(2*l.workers)
			if size < int64(l.chunk) {
				size = int64(l.chunk)
			}
			if size > remaining {
				size = remaining
			}
			if l.next.CompareAndSwap(cur, cur+size) {
				l.body(slot, int(cur), int(cur+size))
			}
		}
	}
	l.runStatic = func(slot int) {
		lo := slot * l.n / l.workers
		hi := (slot + 1) * l.n / l.workers
		if lo >= hi {
			return
		}
		if l.cancel == nil {
			l.body(slot, lo, hi)
			return
		}
		// Cancellable static blocks step in chunk-sized pieces so the hook
		// gets polled at the same granularity as the dynamic policies. The
		// body sees the same (worker, lo, hi) partitioning semantics.
		for ; lo < hi; lo += l.chunk {
			if l.cancel() {
				return
			}
			end := lo + l.chunk
			if end > hi {
				end = hi
			}
			l.body(slot, lo, end)
		}
	}
	return l
}}

// scratchF64 and scratchI64 recycle the per-slot partial-result slices of
// the reductions, for the same reason loopPool exists: reductions run on
// the hot path of every scaling sweep.
var (
	scratchF64 = sync.Pool{New: func() any { return new([]float64) }}
	scratchI64 = sync.Pool{New: func() any { return new([]int64) }}
)

func (g *group) finish() {
	if g.pending.Add(-1) == 0 {
		g.done <- struct{}{}
	}
}

// runTask executes one helper slot and always signals its group, even if
// the body panics and someone up the stack recovers — otherwise a single
// panicking region would wedge every later region sharing the group's
// issuer or, on a shared server pool, an unrelated request's wait.
func runTask(t task) {
	defer t.g.finish()
	t.run(t.slot)
}

// spinRounds bounds the cooperative polling both sides do before parking
// on their channel. Parallel regions in the matching pipeline arrive
// back-to-back (scaling sweeps, then sampling, then two Karp–Sipser
// phases), so a short yield-poll window lets workers catch the next
// region and the caller catch the last finisher without paying a
// scheduler park/wake, while idle pools still quiesce after a few
// microseconds. Gosched (not a busy spin) keeps the poll cooperative on
// machines where workers time-share a core.
const spinRounds = 64

// recvSpin polls ch with yields before falling back to a blocking
// receive.
func recvSpin(ch chan task) (task, bool) {
	for i := 0; i < spinRounds; i++ {
		select {
		case t, ok := <-ch:
			return t, ok
		default:
			runtime.Gosched()
		}
	}
	t, ok := <-ch
	return t, ok
}

// wait blocks until every helper slot of the group has finished,
// yield-polling the countdown before parking on the done channel. The
// receive always happens — the last finisher's send is what resets the
// channel for the group's next reuse.
func (g *group) wait() {
	for i := 0; i < spinRounds && g.pending.Load() != 0; i++ {
		runtime.Gosched()
	}
	<-g.done
}

// NewPool returns a pool of the given parallel width: width-1 resident
// workers plus the calling goroutine. A non-positive width means
// GOMAXPROCS. Call Close when the pool is no longer needed; the Default
// pool must not be closed.
func NewPool(width int) *Pool {
	width = Workers(width)
	p := &Pool{width: width, chans: make([]chan task, width-1)}
	for i := range p.chans {
		ch := make(chan task, 4)
		p.chans[i] = ch
		go func() {
			for {
				t, ok := recvSpin(ch)
				if !ok {
					return
				}
				runTask(t)
			}
		}()
	}
	return p
}

// Width returns the parallel width the pool was created with (resident
// workers + 1 for the caller).
func (p *Pool) Width() int { return p.width }

// Close releases the resident workers. It must not be called while a
// parallel region is in flight or issued afterwards, and is idempotent.
func (p *Pool) Close() {
	p.once.Do(func() {
		for _, ch := range p.chans {
			close(ch)
		}
	})
}

// Workers normalizes a requested worker count against the pool: values
// <= 0 mean the pool width.
func (p *Pool) Workers(n int) int {
	if n <= 0 {
		return p.width
	}
	return n
}

// dispatch runs run(slot) for every slot in [0, slots), slot 0 on the
// calling goroutine and the rest on pool workers. With no resident
// workers the slots run inline in order, which is exactly the
// time-sliced schedule a width-limited machine would produce.
func (p *Pool) dispatch(slots int, run func(slot int)) {
	nw := len(p.chans)
	if slots <= 1 || nw == 0 {
		for s := 0; s < slots; s++ {
			run(s)
		}
		return
	}
	g := groupPool.Get().(*group)
	g.pending.Store(int64(slots - 1))
	// Reduce the cursor modulo nw while still unsigned: a plain
	// int(p.rr.Add(1)-1) goes negative on 32-bit platforms once the
	// counter wraps, and Go's % would then produce a negative index.
	start := int((p.rr.Add(1) - 1) % uint32(nw))
	sent := slots - 1
	if sent > nw {
		sent = nw
	}
	for s := 1; s < slots; s++ {
		t := task{run: run, slot: s, g: g}
		select {
		case p.chans[(start+s-1)%nw] <- t:
		default:
			// The worker's queue is full — the pool is saturated by
			// concurrent or nested regions. Never block on the send: the
			// issuer is the one goroutine guaranteed to be making
			// progress, so it runs the slot inline. (A blocking send
			// here could deadlock a nested region once every resident
			// worker is itself an issuer stuck mid-send.)
			runTask(t)
		}
	}
	run(0)
	// Help while waiting: steal back tasks that are still queued (no
	// worker has claimed them yet) and run them on this goroutine. On a
	// machine narrower than the requested width — or when the workers are
	// busy with another region — this turns the handoff into plain
	// function calls instead of scheduler wakes, and it lets a region
	// issued from inside another region complete even if every resident
	// worker is occupied.
	for g.pending.Load() != 0 {
		stole := false
		for k := 0; k < sent; k++ {
			select {
			case t, ok := <-p.chans[(start+k)%nw]:
				if ok {
					runTask(t)
					stole = true
				}
			default:
			}
		}
		if !stole {
			break
		}
	}
	g.wait()
	groupPool.Put(g)
}

// For executes body over the half-open range [0, n) on the pool using the
// given number of worker slots and scheduling policy; see the package
// function For for the full contract.
func (p *Pool) For(n, workers int, policy Policy, chunk int, body func(worker, lo, hi int)) {
	p.ForCancel(n, workers, policy, chunk, nil, body)
}

// ForCancel is For with a cooperative cancellation hook: cancel (when
// non-nil) is polled between chunks on every worker, and once it reports
// true no further chunk is started — the region returns early with the
// remaining iterations never run. Chunks already executing finish normally,
// so outputs of a canceled loop are partial and must be discarded by the
// caller. A nil cancel is exactly For. The hook must be safe for concurrent
// use and cheap (it is called once per chunk, not per iteration).
func (p *Pool) ForCancel(n, workers int, policy Policy, chunk int, cancel func() bool, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = p.Workers(workers)
	if workers > n {
		workers = n
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if workers == 1 {
		if cancel == nil {
			body(0, 0, n)
			return
		}
		// The inline width-1 fast path polls at the same chunk granularity
		// as the parallel policies — this is the path the serving layer's
		// width-1 session arenas run, so deadline checks must reach it.
		for lo := 0; lo < n; lo += chunk {
			if cancel() {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			body(0, lo, hi)
		}
		return
	}
	l := loopPool.Get().(*loopState)
	l.next.Store(0)
	l.n, l.chunk, l.workers, l.body, l.cancel = n, chunk, workers, body, cancel
	switch policy {
	case Dynamic:
		p.dispatch(workers, l.runDynamic)
	case Guided:
		p.dispatch(workers, l.runGuided)
	default: // Static
		p.dispatch(workers, l.runStatic)
	}
	l.body, l.cancel = nil, nil // don't pin the caller's closures in the arena
	loopPool.Put(l)
}

// Do runs fn once per worker id in [0, workers) on the pool and waits for
// all of them; see the package function Do.
func (p *Pool) Do(workers int, fn func(worker int)) {
	workers = p.Workers(workers)
	if workers == 1 {
		fn(0)
		return
	}
	p.dispatch(workers, fn)
}

// ReduceFloat64 runs a parallel-for on the pool and combines one float64
// partial result per worker slot; see the package function ReduceFloat64.
func (p *Pool) ReduceFloat64(n, workers int, policy Policy, chunk int, identity float64,
	body func(worker, lo, hi int, acc float64) float64,
	combine func(a, b float64) float64) float64 {
	workers = p.Workers(workers)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	sp := scratchF64.Get().(*[]float64)
	if cap(*sp) < workers {
		*sp = make([]float64, workers)
	}
	parts := (*sp)[:workers]
	for i := range parts {
		parts[i] = identity
	}
	p.For(n, workers, policy, chunk, func(w, lo, hi int) {
		parts[w] = body(w, lo, hi, parts[w])
	})
	out := identity
	for _, part := range parts {
		out = combine(out, part)
	}
	scratchF64.Put(sp)
	return out
}

// ReduceInt64 is ReduceFloat64 for int64 accumulators.
func (p *Pool) ReduceInt64(n, workers int, policy Policy, chunk int, identity int64,
	body func(worker, lo, hi int, acc int64) int64,
	combine func(a, b int64) int64) int64 {
	workers = p.Workers(workers)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	sp := scratchI64.Get().(*[]int64)
	if cap(*sp) < workers {
		*sp = make([]int64, workers)
	}
	parts := (*sp)[:workers]
	for i := range parts {
		parts[i] = identity
	}
	p.For(n, workers, policy, chunk, func(w, lo, hi int) {
		parts[w] = body(w, lo, hi, parts[w])
	})
	out := identity
	for _, part := range parts {
		out = combine(out, part)
	}
	scratchI64.Put(sp)
	return out
}

var (
	defaultMu   sync.Mutex
	defaultPool atomic.Pointer[Pool]
)

// Default returns the process-wide pool, sized to runtime.GOMAXPROCS. The
// package-level For, Do and reductions dispatch to it. It must never be
// closed.
//
// The width tracks runtime.GOMAXPROCS: when a call observes a changed
// value, a fresh pool of the new width is built and published, and later
// calls use it. The previous default is retired, not closed — regions
// already in flight on it complete normally, and its workers stay parked
// for the life of the process (a handful of idle goroutines per resize;
// GOMAXPROCS changes are rare). Callers that hold a pool across a resize
// simply keep the old width, so sessions pin their parallel width at
// construction.
func Default() *Pool {
	want := Workers(0)
	if p := defaultPool.Load(); p != nil && p.width == want {
		return p
	}
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if p := defaultPool.Load(); p != nil && p.width == want {
		return p
	}
	p := NewPool(want)
	defaultPool.Store(p)
	return p
}
