package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolForCoversAllIndicesOnce(t *testing.T) {
	for _, width := range []int{1, 2, 4, 9} {
		p := NewPool(width)
		for _, policy := range []Policy{Static, Dynamic, Guided} {
			for _, n := range []int{0, 1, 7, 1023, 4096} {
				for _, workers := range []int{0, 1, 3, 8, 33} {
					seen := make([]int32, n)
					p.For(n, workers, policy, 64, func(w, lo, hi int) {
						for i := lo; i < hi; i++ {
							atomic.AddInt32(&seen[i], 1)
						}
					})
					for i, c := range seen {
						if c != 1 {
							t.Fatalf("width=%d policy=%v n=%d workers=%d: index %d covered %d times",
								width, policy, n, workers, i, c)
						}
					}
				}
			}
		}
		p.Close()
	}
}

func TestPoolWorkersDefaultToWidth(t *testing.T) {
	p := NewPool(5)
	defer p.Close()
	if p.Width() != 5 {
		t.Fatalf("Width() = %d want 5", p.Width())
	}
	maxID := int32(-1)
	p.For(100000, 0, Static, 1, func(w, _, _ int) {
		for {
			old := atomic.LoadInt32(&maxID)
			if int32(w) <= old || atomic.CompareAndSwapInt32(&maxID, old, int32(w)) {
				break
			}
		}
	})
	if maxID != 4 {
		t.Fatalf("workers<=0 on width-5 pool used max worker id %d, want 4", maxID)
	}
}

func TestPoolDoRunsEachWorkerOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const workers = 9
	var counts [workers]int32
	p.Do(workers, func(w int) { atomic.AddInt32(&counts[w], 1) })
	for w, c := range counts {
		if c != 1 {
			t.Fatalf("worker %d ran %d times", w, c)
		}
	}
}

// TestPoolConcurrentForStress hammers one shared pool with parallel
// regions from many goroutines at once; under -race this doubles as the
// memory-model check for the dispatch/completion handoff.
func TestPoolConcurrentForStress(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const (
		goroutines = 8
		rounds     = 50
		n          = 2048
	)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			policy := Policy(g % 3)
			for r := 0; r < rounds; r++ {
				seen := make([]int32, n)
				p.For(n, 1+g%5, policy, 16, func(_, lo, hi int) {
					for i := lo; i < hi; i++ {
						seen[i]++
					}
				})
				for i, c := range seen {
					if c != 1 {
						t.Errorf("goroutine %d round %d: index %d covered %d times", g, r, i, c)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPoolSurvivesPanicInIssuerSlot: a panic escaping a body slot run by
// the issuer (slot 0) unwinds through dispatch to the caller; helper
// slots still signal their group via the deferred finish, so the pool
// keeps serving later regions instead of wedging.
func TestPoolSurvivesPanicInIssuerSlot(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the issuer's caller")
			}
		}()
		p.For(100, 4, Static, 1, func(w, _, _ int) {
			if w == 0 {
				panic("boom")
			}
		})
	}()
	var n atomic.Int64
	p.For(1000, 4, Dynamic, 16, func(_, lo, hi int) { n.Add(int64(hi - lo)) })
	if n.Load() != 1000 {
		t.Fatalf("pool wedged after recovered panic: covered %d of 1000", n.Load())
	}
}

// TestPoolNestedRegionsComplete pins the no-deadlock guarantee for
// regions issued from inside another region's body: every slot of the
// outer Do issues a full inner For on the same pool. With blocking task
// sends this configuration wedges permanently (all issuers stuck
// mid-send, nobody draining); the non-blocking send + steal-back design
// must complete it.
func TestPoolNestedRegionsComplete(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	const outer, innerN = 8, 64
	var total atomic.Int64
	for round := 0; round < 20; round++ {
		total.Store(0)
		p.Do(outer, func(_ int) {
			p.For(innerN, outer, Dynamic, 4, func(_, lo, hi int) {
				total.Add(int64(hi - lo))
			})
		})
		if got := total.Load(); got != outer*innerN {
			t.Fatalf("round %d: nested regions covered %d iterations, want %d", round, got, outer*innerN)
		}
	}
}

// TestPoolReduceMatchesSequential checks reductions on a caller-owned pool
// against the sequential answer.
func TestPoolReduceMatchesSequential(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	const n = 12345
	got := p.ReduceFloat64(n, 3, Dynamic, 64, 0,
		func(_, lo, hi int, acc float64) float64 {
			for i := lo; i < hi; i++ {
				acc += float64(i)
			}
			return acc
		}, func(a, b float64) float64 { return a + b })
	if want := float64(n*(n-1)) / 2; got != want {
		t.Fatalf("sum = %v want %v", got, want)
	}
	cnt := p.ReduceInt64(n, 0, Guided, 16, 0,
		func(_, lo, hi int, acc int64) int64 { return acc + int64(hi-lo) },
		func(a, b int64) int64 { return a + b })
	if cnt != n {
		t.Fatalf("count = %d want %d", cnt, n)
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(4)
	p.For(100, 4, Static, 1, func(_, _, _ int) {})
	p.Close()
	p.Close()
}

// TestPoolForMatchesSpawn checks that pool dispatch and the retained
// spawn-per-call baseline partition the iteration space identically for
// the static policy (the only policy with a scheduling-independent
// assignment of ranges to worker ids).
func TestPoolForMatchesSpawn(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n, workers = 1000, 4
	collect := func(f func(int, int, Policy, int, func(int, int, int))) map[int][2]int {
		var mu sync.Mutex
		got := map[int][2]int{}
		f(n, workers, Static, 0, func(w, lo, hi int) {
			mu.Lock()
			got[w] = [2]int{lo, hi}
			mu.Unlock()
		})
		return got
	}
	a := collect(p.For)
	b := collect(forSpawn)
	if len(a) != len(b) {
		t.Fatalf("pool assigned %d ranges, spawn %d", len(a), len(b))
	}
	for w, r := range b {
		if a[w] != r {
			t.Fatalf("worker %d: pool range %v, spawn range %v", w, a[w], r)
		}
	}
}

// BenchmarkForOverhead measures the pure dispatch cost of a parallel
// region (empty body) for the pooled runtime against the historical
// spawn-per-call runtime. The matching pipeline issues dozens of regions
// per call, so this delta is on the critical path.
func BenchmarkForOverhead(b *testing.B) {
	body := func(_, _, _ int) {}
	for _, workers := range []int{2, 4, 8} {
		p := NewPool(workers)
		b.Run("pool/w="+itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.For(workers*512, workers, Static, 512, body)
			}
		})
		b.Run("spawn/w="+itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				forSpawn(workers*512, workers, Static, 512, body)
			}
		})
		p.Close()
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
