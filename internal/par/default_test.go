package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestDefaultTracksGOMAXPROCS pins the ROADMAP item: the default pool's
// width follows runtime.GOMAXPROCS instead of freezing at first use.
func TestDefaultTracksGOMAXPROCS(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	if w := Default().Width(); w != orig {
		t.Fatalf("default width %d, GOMAXPROCS %d", w, orig)
	}

	next := orig + 2
	runtime.GOMAXPROCS(next)
	p := Default()
	if p.Width() != next {
		t.Fatalf("after resize: default width %d, want %d", p.Width(), next)
	}
	// The resized pool must actually run regions at the new width.
	var count atomic.Int64
	p.For(10_000, 0, Dynamic, 64, func(_, lo, hi int) {
		count.Add(int64(hi - lo))
	})
	if count.Load() != 10_000 {
		t.Fatalf("resized pool covered %d of 10000 iterations", count.Load())
	}

	// Shrinking is tracked too, and repeated calls at a stable width reuse
	// the same pool.
	runtime.GOMAXPROCS(orig)
	p1, p2 := Default(), Default()
	if p1 != p2 {
		t.Fatal("stable GOMAXPROCS rebuilt the default pool")
	}
	if p1.Width() != orig {
		t.Fatalf("after shrink: width %d want %d", p1.Width(), orig)
	}
}

// TestForSteadyStateAllocFree pins the loop-state arena: dispatching a
// parallel region whose body closure is long-lived performs zero
// allocations at steady state, which is what the matcher sessions build
// their per-call allocation budget on.
func TestForSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed under -race")
	}
	p := NewPool(4)
	defer p.Close()
	sink := make([]int32, 4096)
	body := func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			sink[i]++
		}
	}
	for _, policy := range []Policy{Static, Dynamic, Guided} {
		policy := policy
		allocs := testing.AllocsPerRun(50, func() {
			p.For(len(sink), 4, policy, 256, body)
		})
		if allocs > 0 {
			t.Errorf("policy %v: %.1f allocs per region, want 0", policy, allocs)
		}
	}
}

// TestReduceSteadyStateAllocs pins the scratch arena for reductions: the
// only steady-state allocation left is the wrapper closure adapting the
// reduce body to the plain loop body.
func TestReduceSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed under -race")
	}
	p := NewPool(4)
	defer p.Close()
	data := make([]float64, 8192)
	for i := range data {
		data[i] = float64(i % 7)
	}
	body := func(_, lo, hi int, acc float64) float64 {
		for i := lo; i < hi; i++ {
			acc += data[i]
		}
		return acc
	}
	allocs := testing.AllocsPerRun(50, func() {
		p.ReduceFloat64(len(data), 4, Dynamic, 256, 0, body, func(a, b float64) float64 { return a + b })
	})
	if allocs > 1 {
		t.Errorf("ReduceFloat64: %.1f allocs per call, want <= 1", allocs)
	}
}
