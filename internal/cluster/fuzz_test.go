package cluster_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
)

var (
	fuzzOnce sync.Once
	fuzzMux  *http.ServeMux
)

// fuzzRouter builds one router over an empty fleet: no replica is
// reachable, so every well-formed request terminates quickly (503/404)
// and the decode layer sees the full fuzz surface. Shared across fuzz
// iterations, like a long-lived router process.
func fuzzRouter() *http.ServeMux {
	fuzzOnce.Do(func() {
		c := cluster.New(nil, cluster.Options{
			MaxRetries: 1, RetryBase: time.Microsecond, RetryMax: time.Microsecond, HedgeDelay: -1,
		})
		fuzzMux = cluster.NewRouterMux(cluster.NewRouter(c, 1<<12))
	})
	return fuzzMux
}

// FuzzRouterDecode throws arbitrary bodies at every router endpoint. The
// router must never panic and must answer from the closed status set of
// its error surface — anything else means a decode or routing path leaked
// an unclassified failure.
func FuzzRouterDecode(f *testing.F) {
	f.Add(byte(0), []byte(`{"rows":2,"cols":2,"edges":[[0,0],[1,1]]}`))
	f.Add(byte(0), []byte(`{"id":"fz","rows":1,"cols":1,"edges":[[0,0]],"weights":[2.5]}`))
	f.Add(byte(1), []byte(`{"graph":"fz","algorithm":"twosided","seed":7,"best_of":4}`))
	f.Add(byte(1), []byte(`{"rows":1,"cols":1,"edges":[[0,0]],"algorithm":"auction","epsilon":0.01}`))
	f.Add(byte(2), []byte(`{"requests":[{"graph":"fz"},{"rows":1,"cols":1,"edges":[[0,0]]}]}`))
	f.Add(byte(3), []byte(`{"insert":[[0,1]],"delete":[[0,0]]}`))
	f.Add(byte(3), []byte(`{"insert":[[0,1]],"weights":[1.5]}`))
	f.Add(byte(4), []byte(``))
	f.Add(byte(5), []byte(``))
	f.Add(byte(1), []byte(`{not json`))
	f.Add(byte(2), []byte(`{"requests":`))
	f.Add(byte(0), bytes.Repeat([]byte(`9`), 1<<13)) // over the 4KiB body cap
	f.Add(byte(1), []byte(`{"graph":"fz","seed":-1,"best_of":1e99}`))

	allowed := map[int]bool{
		http.StatusOK:                    true,
		http.StatusBadRequest:            true,
		http.StatusNotFound:              true,
		http.StatusRequestEntityTooLarge: true,
		http.StatusTooManyRequests:       true,
		http.StatusInternalServerError:   true,
		http.StatusBadGateway:            true,
		http.StatusServiceUnavailable:    true,
		http.StatusGatewayTimeout:        true,
	}

	f.Fuzz(func(t *testing.T, op byte, body []byte) {
		mux := fuzzRouter()
		var method, path string
		switch op % 6 {
		case 0:
			method, path = http.MethodPost, "/graph"
		case 1:
			method, path = http.MethodPost, "/match"
		case 2:
			method, path = http.MethodPost, "/match/batch"
		case 3:
			method, path = http.MethodPatch, "/graph/fz"
		case 4:
			method, path = http.MethodGet, "/graph/fz"
		case 5:
			method, path = http.MethodDelete, "/graph/fz"
		}
		req := httptest.NewRequest(method, path, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if !allowed[rec.Code] {
			t.Fatalf("%s %s with %d-byte body: status %d outside the error surface", method, path, len(body), rec.Code)
		}
	})
}
