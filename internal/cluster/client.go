package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	bipartite "repro"
	"repro/internal/metrics"
	"repro/internal/ring"
)

// ErrNoReplicas is returned when no configured replica is currently a
// ring member — nothing is reachable to serve the request.
var ErrNoReplicas = errors.New("cluster: no healthy replicas")

// Options tunes the Client. The zero value is usable.
type Options struct {
	// VNodes and LoadFactor configure the consistent-hash ring; zero
	// values take the ring package defaults.
	VNodes     int
	LoadFactor float64
	// HTTPClient is the transport to the replicas; nil uses a client with
	// a 30s overall timeout.
	HTTPClient *http.Client
	// MaxRetries bounds the retry attempts after the first try of a
	// retryable request; 0 means 4.
	MaxRetries int
	// RetryBase seeds the exponential backoff (base·2^attempt plus up to
	// one base of jitter); 0 means 10ms.
	RetryBase time.Duration
	// RetryMax caps one backoff sleep, Retry-After hints included; 0
	// means 2s.
	RetryMax time.Duration
	// HedgeDelay is how long a single /match may run before an identical
	// hedge request is fired at another replica holding the graph. 0
	// derives the delay from the observed p99 match latency (with a 25ms
	// floor while the histogram is cold); negative disables hedging.
	HedgeDelay time.Duration
	// FanOut caps how many replicas a best-of-K ensemble fans out across;
	// 0 means every healthy replica (never more than K).
	FanOut int
}

func (o Options) maxRetries() int {
	if o.MaxRetries == 0 {
		return 4
	}
	return o.MaxRetries
}

func (o Options) retryBase() time.Duration {
	if o.RetryBase == 0 {
		return 10 * time.Millisecond
	}
	return o.RetryBase
}

func (o Options) retryMax() time.Duration {
	if o.RetryMax == 0 {
		return 2 * time.Second
	}
	return o.RetryMax
}

// Client routes matching traffic across a fleet of matchserve replicas
// sharded by graph id on a bounded-load consistent-hash ring. It is safe
// for concurrent use.
type Client struct {
	opt Options
	hc  *http.Client
	met *metrics.Registry

	mu      sync.Mutex
	ring    *ring.Ring
	urls    []string                   // configured replicas, sorted
	down    map[string]bool            // passively/actively detected unhealthy
	level   map[string]string          // last probed watchdog level
	holders map[string]map[string]bool // graph id → replicas holding a copy
	payload map[string][]byte          // graph id → last registration body (migration fallback)
	stale   map[string]bool            // graph id → payload predates a PATCH

	nextID     atomic.Int64
	retries    atomic.Int64
	hedges     atomic.Int64
	hedgeWins  atomic.Int64
	migrations atomic.Int64
	failovers  atomic.Int64
	fanouts    atomic.Int64
}

// New builds a Client over the given replica base URLs (e.g.
// "http://10.0.0.3:8480"). All replicas start as ring members; call
// Probe to reconcile membership with reality.
func New(urls []string, opt Options) *Client {
	hc := opt.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	c := &Client{
		opt:     opt,
		hc:      hc,
		met:     metrics.NewRegistry(),
		ring:    ring.New(opt.VNodes, opt.LoadFactor),
		down:    make(map[string]bool),
		level:   make(map[string]string),
		holders: make(map[string]map[string]bool),
		payload: make(map[string][]byte),
		stale:   make(map[string]bool),
	}
	seen := make(map[string]bool)
	for _, u := range urls {
		u = strings.TrimRight(u, "/")
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		c.urls = append(c.urls, u)
		c.ring.AddNode(u)
	}
	sort.Strings(c.urls)
	return c
}

// Stats is a point-in-time snapshot of the Client's routing counters.
type Stats struct {
	Replicas   int // configured
	Healthy    int // current ring members
	Keys       int // registered graph ids
	Moved      int // keys moved by the last rebalance
	Retries    int64
	Hedges     int64
	HedgeWins  int64
	Migrations int64
	Failovers  int64
	FanOuts    int64
}

func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Replicas:   len(c.urls),
		Healthy:    len(c.ring.Nodes()),
		Keys:       c.ring.Keys(),
		Moved:      c.ring.Moved(),
		Retries:    c.retries.Load(),
		Hedges:     c.hedges.Load(),
		HedgeWins:  c.hedgeWins.Load(),
		Migrations: c.migrations.Load(),
		Failovers:  c.failovers.Load(),
		FanOuts:    c.fanouts.Load(),
	}
}

// OwnerOf returns the ring owner of a registered graph id, or "" when
// the id is unknown or no replica is healthy.
func (c *Client) OwnerOf(id string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Owner(id)
}

// Members returns the current ring membership (healthy replicas).
func (c *Client) Members() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Nodes()
}

// Levels returns the last probed watchdog level per healthy replica.
func (c *Client) Levels() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.level))
	for u, l := range c.level {
		if !c.down[u] {
			out[u] = l
		}
	}
	return out
}

// Probe checks every configured replica's /healthz and reconciles ring
// membership: answering replicas (re)join, silent ones leave and their
// keys rebalance deterministically onto the survivors. Returns the
// healthy count. Probing is cheap enough to run every second or two;
// between probes, request failures mark replicas down passively.
func (c *Client) Probe(ctx context.Context) int {
	c.mu.Lock()
	urls := append([]string(nil), c.urls...)
	c.mu.Unlock()
	type verdict struct {
		url     string
		healthy bool
		level   string
	}
	verdicts := make([]verdict, len(urls))
	var wg sync.WaitGroup
	for i, u := range urls {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			v := verdict{url: u}
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, u+"/healthz", nil)
			if err == nil {
				if resp, err := c.hc.Do(req); err == nil {
					var hz healthzReply
					if resp.StatusCode == http.StatusOK &&
						json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&hz) == nil {
						v.healthy, v.level = true, hz.Level
					}
					resp.Body.Close()
				}
			}
			verdicts[i] = v
		}(i, u)
	}
	wg.Wait()
	healthy := 0
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, v := range verdicts {
		if v.healthy {
			healthy++
			delete(c.down, v.url)
			c.level[v.url] = v.level
			c.ring.AddNode(v.url)
		} else {
			c.down[v.url] = true
			c.ring.RemoveNode(v.url)
		}
	}
	return healthy
}

// markDown passively removes a replica that failed to answer; the next
// successful Probe readmits it. Keys rebalance immediately so retries
// already have a surviving owner to fail over to.
func (c *Client) markDown(url string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.down[url] {
		c.down[url] = true
		c.ring.RemoveNode(url)
		// The dead replica's copies are unreachable; forget them so
		// migration sources and hedge targets skip it.
		for _, hs := range c.holders {
			delete(hs, url)
		}
	}
}

// RegisterGraph registers a graph on its ring owner and returns its id
// (gs.ID when the caller chose one, a generated "c<n>" otherwise). The
// registration body is retained as the migration fallback of last resort,
// so the graph survives even its sole holder dying.
func (c *Client) RegisterGraph(ctx context.Context, gs GraphSpec) (string, error) {
	id := gs.ID
	if id == "" {
		id = "c" + strconv.FormatInt(c.nextID.Add(1), 10)
		gs.ID = id
	}
	body, err := json.Marshal(gs)
	if err != nil {
		return "", err
	}
	c.mu.Lock()
	c.ring.AddKey(id)
	c.payload[id] = body
	delete(c.stale, id)
	c.holders[id] = make(map[string]bool)
	c.mu.Unlock()
	if _, err := c.placeOnOwner(ctx, id); err != nil {
		return "", err
	}
	return id, nil
}

// DeleteGraph drops a graph from every replica holding it and from the
// ring. Unknown ids return false.
func (c *Client) DeleteGraph(ctx context.Context, id string) (bool, error) {
	c.mu.Lock()
	hs, known := c.holders[id]
	targets := make([]string, 0, len(hs))
	for u := range hs {
		targets = append(targets, u)
	}
	sort.Strings(targets)
	delete(c.holders, id)
	delete(c.payload, id)
	delete(c.stale, id)
	c.ring.RemoveKey(id)
	c.mu.Unlock()
	if !known {
		return false, nil
	}
	var firstErr error
	for _, u := range targets {
		req, err := http.NewRequestWithContext(ctx, http.MethodDelete, u+"/graph/"+id, nil)
		if err != nil {
			continue
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			c.markDown(u) // best effort: a dead replica's copy dies with it
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound && firstErr == nil {
			firstErr = fmt.Errorf("cluster: delete %s on %s: status %d", id, u, resp.StatusCode)
		}
	}
	return true, firstErr
}

// owner resolves the graph's current ring owner.
func (c *Client) owner(id string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.holders[id]; !ok {
		return "", fmt.Errorf("cluster: unknown graph %q", id)
	}
	o := c.ring.Owner(id)
	if o == "" {
		return "", ErrNoReplicas
	}
	return o, nil
}

// placeOnOwner makes sure the graph's ring owner holds a copy, migrating
// one over if needed, and returns the owner.
func (c *Client) placeOnOwner(ctx context.Context, id string) (string, error) {
	o, err := c.owner(id)
	if err != nil {
		return "", err
	}
	if err := c.ensureHolder(ctx, id, o); err != nil {
		return "", err
	}
	return o, nil
}

// ensureHolder replicates the graph onto node if it does not already hold
// it: exported from a live holder (which captures every PATCH applied so
// far), or re-registered from the retained registration body when no
// holder survives. The upsert-by-id POST makes concurrent migrations
// converge on the same copy.
func (c *Client) ensureHolder(ctx context.Context, id, node string) error {
	c.mu.Lock()
	hs, known := c.holders[id]
	if !known {
		c.mu.Unlock()
		return fmt.Errorf("cluster: unknown graph %q", id)
	}
	if hs[node] {
		c.mu.Unlock()
		return nil
	}
	sources := make([]string, 0, len(hs))
	for u := range hs {
		if !c.down[u] {
			sources = append(sources, u)
		}
	}
	sort.Strings(sources)
	body := c.payload[id]
	c.mu.Unlock()

	var exported []byte
	for _, src := range sources {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, src+"/graph/"+id, nil)
		if err != nil {
			continue
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			c.markDown(src)
			continue
		}
		b, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && resp.StatusCode == http.StatusOK {
			exported = b
			break
		}
	}
	if exported == nil {
		if body == nil {
			return fmt.Errorf("cluster: graph %q has no live holder and no retained registration", id)
		}
		exported = body // pre-PATCH fallback; see stale
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node+"/graph", bytes.NewReader(exported))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		c.markDown(node)
		return err
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: replicate %s to %s: status %d: %s", id, node, resp.StatusCode, strings.TrimSpace(string(b)))
	}
	c.migrations.Add(1)
	c.mu.Lock()
	if hs, ok := c.holders[id]; ok {
		hs[node] = true
	}
	c.mu.Unlock()
	return nil
}

// liveHolders returns the healthy replicas currently holding the graph.
func (c *Client) liveHolders(id string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.holders[id]))
	for u := range c.holders[id] {
		if !c.down[u] {
			out = append(out, u)
		}
	}
	sort.Strings(out)
	return out
}

// retryable reports whether an HTTP status is worth retrying elsewhere or
// later: 503 is the replica protecting itself (overload, shedding), 429
// the admission layer rating the request down — both come with Retry-After
// hints and both succeed on retry once pressure decays.
func retryableStatus(code int) bool {
	return code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests
}

// replicaError is a non-2xx replica answer, carrying the status and any
// Retry-After hint so the retry loop can honor it.
type replicaError struct {
	status     int
	retryAfter time.Duration
	body       string
}

func (e *replicaError) Error() string {
	return fmt.Sprintf("replica status %d: %s", e.status, e.body)
}

// post sends one JSON POST and decodes a MatchResponse, classifying
// failures for the retry loop: a transport error (replica unreachable —
// the caller marks it down), or a replicaError with status and
// Retry-After.
func (c *Client) post(ctx context.Context, url string, body []byte) (MatchResponse, error) {
	var out MatchResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		re := &replicaError{status: resp.StatusCode, body: strings.TrimSpace(string(b))}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.ParseInt(ra, 10, 64); err == nil && secs >= 0 {
				re.retryAfter = time.Duration(secs) * time.Second
			}
		}
		return out, re
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("cluster: decode %s: %w", url, err)
	}
	return out, nil
}

// backoff sleeps the exponential-backoff-with-jitter delay for attempt a,
// floored at the replica's Retry-After hint and capped at RetryMax;
// returns false if ctx expires first.
func (c *Client) backoff(ctx context.Context, a int, hint time.Duration) bool {
	base := c.opt.retryBase()
	d := base << a
	if d > c.opt.retryMax() {
		d = c.opt.retryMax()
	}
	d += time.Duration(rand.Int63n(int64(base) + 1)) // full-jitter tail breaks retry synchrony
	if hint > d {
		d = hint
	}
	if d > c.opt.retryMax() {
		d = c.opt.retryMax()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// hedgeDelay resolves the hedging trigger: the configured delay, or the
// observed p99 single-match latency once enough samples exist (25ms floor
// while the histogram is cold, 1ms floor always — a hedge should never
// race the common case).
func (c *Client) hedgeDelay() time.Duration {
	if c.opt.HedgeDelay != 0 {
		return c.opt.HedgeDelay
	}
	s := c.met.Histogram("match").Snapshot()
	if s.Count < 16 {
		return 25 * time.Millisecond
	}
	d := s.P99
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// Match routes one match request. Registered graphs go to their ring
// owner (migrating the graph there first when a rebalance moved the key);
// inline graphs spread statelessly over the members by seed. Fan-out
// eligible ensembles (best_of > 1, no refinement or target, no explicit
// sub-range) split across the healthy replicas and reduce; everything
// else runs as a single routed request with retry, backoff and hedging.
func (c *Client) Match(ctx context.Context, mr MatchRequest) (MatchResponse, error) {
	if mr.fanEligible() {
		c.mu.Lock()
		n := len(c.ring.Nodes())
		c.mu.Unlock()
		if n > 1 {
			return c.fanMatch(ctx, mr)
		}
	}
	return c.singleMatch(ctx, mr)
}

// route resolves where a single request should run: the graph's owner
// (placed there first) for registered graphs, a seed-spread member for
// inline ones.
func (c *Client) route(ctx context.Context, mr *MatchRequest) (string, error) {
	if mr.Graph != "" {
		return c.placeOnOwner(ctx, mr.Graph)
	}
	c.mu.Lock()
	node := c.ring.Locate("inline/" + mr.Algorithm + "/" + strconv.FormatUint(mr.Seed, 16))
	c.mu.Unlock()
	if node == "" {
		return "", ErrNoReplicas
	}
	return node, nil
}

// singleMatch is the routed request with the full defensive loop:
// per-attempt routing (so a failover lands on the key's new owner),
// hedging against a second holder, Retry-After-honoring backoff.
func (c *Client) singleMatch(ctx context.Context, mr MatchRequest) (MatchResponse, error) {
	body, err := json.Marshal(&mr)
	if err != nil {
		return MatchResponse{}, err
	}
	var lastErr error
	for a := 0; a <= c.opt.maxRetries(); a++ {
		if a > 0 {
			c.retries.Add(1)
		}
		node, err := c.route(ctx, &mr)
		if err != nil {
			if errors.Is(err, ErrNoReplicas) && a < c.opt.maxRetries() && c.backoff(ctx, a, 0) {
				lastErr = err
				continue
			}
			return MatchResponse{}, err
		}
		start := time.Now()
		resp, node, err := c.hedged(ctx, &mr, node, body)
		if err == nil {
			c.met.Histogram("match").Observe(time.Since(start))
			resp.Replica = node
			return resp, nil
		}
		lastErr = err
		var re *replicaError
		switch {
		case errors.As(err, &re):
			if !retryableStatus(re.status) {
				return MatchResponse{}, err
			}
			if !c.backoff(ctx, a, re.retryAfter) {
				return MatchResponse{}, ctx.Err()
			}
		case ctx.Err() != nil:
			return MatchResponse{}, ctx.Err()
		default:
			// Transport failure: the replica is gone. Mark it down — the
			// ring rebalances its keys — and retry immediately against the
			// new owner; no backoff, the failure was not load.
			c.markDown(node)
			c.failovers.Add(1)
		}
	}
	return MatchResponse{}, fmt.Errorf("cluster: match failed after %d attempts: %w", c.opt.maxRetries()+1, lastErr)
}

// hedged sends the request to node and, once the hedge delay passes with
// no answer, fires one identical request at another live holder of the
// graph; the first success wins and the loser is canceled. Safe because
// /match is a pure function of (graph, spec) — both answers are
// bit-identical, only the latency differs. Returns the answering node.
func (c *Client) hedged(ctx context.Context, mr *MatchRequest, node string, body []byte) (MatchResponse, string, error) {
	delay := c.hedgeDelay()
	if delay < 0 {
		resp, err := c.post(ctx, node+"/match", body)
		return resp, node, err
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type answer struct {
		resp MatchResponse
		node string
		err  error
	}
	ch := make(chan answer, 2)
	send := func(n string) {
		resp, err := c.post(hctx, n+"/match", body)
		ch <- answer{resp: resp, node: n, err: err}
	}
	go send(node)
	inflight := 1
	t := time.NewTimer(delay)
	defer t.Stop()
	var firstErr error
	for {
		select {
		case <-t.C:
			if second := c.hedgeTarget(mr, node); second != "" {
				c.hedges.Add(1)
				inflight++
				go send(second)
			}
		case a := <-ch:
			inflight--
			if a.err == nil {
				if a.node != node {
					c.hedgeWins.Add(1)
				}
				return a.resp, a.node, nil
			}
			if firstErr == nil || a.node == node {
				firstErr = a.err
			}
			if a.err != nil && !isReplicaError(a.err) && hctx.Err() == nil {
				c.markDown(a.node)
			}
			if inflight == 0 {
				return MatchResponse{}, node, firstErr
			}
		case <-ctx.Done():
			return MatchResponse{}, node, ctx.Err()
		}
	}
}

func isReplicaError(err error) bool {
	var re *replicaError
	return errors.As(err, &re)
}

// hedgeTarget picks the hedge's second replica: a live holder of the
// graph other than the primary (replicating on the hedge path would add
// latency exactly when we are trying to hide it), or for inline requests
// any other member.
func (c *Client) hedgeTarget(mr *MatchRequest, primary string) string {
	if mr.Graph != "" {
		for _, u := range c.liveHolders(mr.Graph) {
			if u != primary {
				return u
			}
		}
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, u := range c.ring.Nodes() {
		if u != primary {
			return u
		}
	}
	return ""
}

// fanMatch splits a best-of-K ensemble into contiguous seed sub-ranges
// across the healthy replicas, runs each slice as a routed single request
// (so every slice gets the same retry/hedge/failover protection), and
// reduces the sub-range winners with the library's rule — strict
// improvement on the objective in seed order, which keeps ties on the
// smallest winner seed. Sub-range winners report absolute seeds and each
// candidate is a pure function of (graph, algorithm, seed), so the
// reduction is bit-identical to the full sweep on one replica.
func (c *Client) fanMatch(ctx context.Context, mr MatchRequest) (MatchResponse, error) {
	members := c.Members()
	if len(members) == 0 {
		return MatchResponse{}, ErrNoReplicas
	}
	n := len(members)
	if c.opt.FanOut > 0 && n > c.opt.FanOut {
		n = c.opt.FanOut
	}
	if n > mr.BestOf {
		n = mr.BestOf
	}
	if n <= 1 {
		return c.singleMatch(ctx, mr)
	}
	// Replicate the graph to every participating replica up front; a
	// replica we cannot place the graph on simply drops out of the split.
	if mr.Graph != "" {
		placed := members[:0:0]
		for _, u := range members {
			if err := c.ensureHolder(ctx, mr.Graph, u); err == nil {
				placed = append(placed, u)
			}
		}
		if len(placed) == 0 {
			// No replica could take a copy (e.g. the sole holder just died
			// and no registration is retained): fall back to the routed
			// single path, which reports the precise error.
			return c.singleMatch(ctx, mr)
		}
		members = placed
		if len(members) < n {
			n = len(members)
		}
		if n == 1 {
			return c.singleMatch(ctx, mr)
		}
	}
	K := mr.BestOf
	per, extra := K/n, K%n
	type part struct {
		resp MatchResponse
		err  error
	}
	parts := make([]part, n)
	var wg sync.WaitGroup
	start := time.Now()
	off := 0
	for p := 0; p < n; p++ {
		count := per
		if p < extra {
			count++
		}
		sub := mr
		sub.SeedOffset, sub.SeedCount = off, count
		off += count
		wg.Add(1)
		go func(p int, sub MatchRequest, preferred string) {
			defer wg.Done()
			// Prefer the replica the slice was planned for; fall back to the
			// generic routed path (owner + failover) when it died mid-flight.
			body, err := json.Marshal(&sub)
			if err == nil {
				if resp, perr := c.post(ctx, preferred+"/match", body); perr == nil {
					resp.Replica = preferred
					parts[p] = part{resp: resp}
					return
				} else if !isReplicaError(perr) && ctx.Err() == nil {
					c.markDown(preferred)
					c.failovers.Add(1)
				}
			}
			resp, rerr := c.singleMatch(ctx, sub)
			parts[p] = part{resp: resp, err: rerr}
		}(p, sub, members[p%len(members)])
	}
	wg.Wait()
	weighted := mr.weighted()
	var out MatchResponse
	have := false
	candidates := 0
	for p := range parts {
		if parts[p].err != nil {
			return MatchResponse{}, fmt.Errorf("cluster: fan-out slice %d: %w", p, parts[p].err)
		}
		r := parts[p].resp
		candidates += r.CandidatesRun
		improved := !have
		if have {
			if weighted {
				improved = r.MatchedWeight > out.MatchedWeight
			} else {
				improved = r.Size > out.Size
			}
		}
		if improved {
			keep := r
			out = keep
			have = true
		}
	}
	out.CandidatesRun = candidates
	out.Ms = float64(time.Since(start).Microseconds()) / 1000
	c.fanouts.Add(1)
	return out, nil
}

// MatchBatch routes a batch: fan-out eligible entries run as fanned
// ensembles, the rest group into one sub-batch per owning replica. A
// sub-batch whose replica dies mid-flight is recovered entry by entry
// through the routed single path, so one replica failure costs latency,
// never answers. In-band retryable rejections (the replica shed an entry
// inside an otherwise successful envelope) are retried the same way.
// Responses come back in request order.
func (c *Client) MatchBatch(ctx context.Context, reqs []MatchRequest) []MatchResponse {
	out := make([]MatchResponse, len(reqs))
	groups := make(map[string][]int)
	var fanIdx []int
	for i := range reqs {
		if reqs[i].fanEligible() {
			fanIdx = append(fanIdx, i)
			continue
		}
		node, err := c.route(ctx, &reqs[i])
		if err != nil {
			out[i] = MatchResponse{Error: err.Error()}
			continue
		}
		groups[node] = append(groups[node], i)
	}
	var wg sync.WaitGroup
	for _, i := range fanIdx {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Match(ctx, reqs[i])
			if err != nil {
				resp = MatchResponse{Error: err.Error()}
			}
			out[i] = resp
		}(i)
	}
	for node, idxs := range groups {
		wg.Add(1)
		go func(node string, idxs []int) {
			defer wg.Done()
			c.subBatch(ctx, node, reqs, idxs, out)
		}(node, idxs)
	}
	wg.Wait()
	return out
}

// subBatch sends one per-replica sub-batch and recovers failed entries
// individually.
func (c *Client) subBatch(ctx context.Context, node string, reqs []MatchRequest, idxs []int, out []MatchResponse) {
	env := batchRequestEnvelope{Requests: make([]MatchRequest, len(idxs))}
	for k, i := range idxs {
		env.Requests[k] = reqs[i]
	}
	body, err := json.Marshal(&env)
	redo := idxs // entries to re-route individually (redo)
	if err == nil {
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost, node+"/match/batch", bytes.NewReader(body))
		if rerr == nil {
			req.Header.Set("Content-Type", "application/json")
			resp, derr := c.hc.Do(req)
			if derr != nil {
				if ctx.Err() == nil {
					// The replica died with the whole sub-batch in flight:
					// mark it down and redo below.
					c.markDown(node)
					c.failovers.Add(1)
				}
			} else {
				var be batchResponseEnvelope
				decodeErr := json.NewDecoder(resp.Body).Decode(&be)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK && decodeErr == nil && len(be.Responses) == len(idxs) {
					redo = redo[:0]
					for k, i := range idxs {
						r := be.Responses[k]
						r.Replica = node
						if r.Error != "" && retryableReplicaMessage(r.Error) {
							redo = append(redo, i)
							continue
						}
						out[i] = r
					}
				}
				// Non-200 envelopes (503 admission, 413, …) leave redo as
				// the full index set: every entry re-routes individually.
			}
		}
	}
	var wg sync.WaitGroup
	for _, i := range redo {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.retries.Add(1)
			resp, err := c.singleMatch(ctx, reqs[i])
			if err != nil {
				resp = MatchResponse{Error: err.Error()}
			}
			out[i] = resp
		}(i)
	}
	wg.Wait()
}

// retryableReplicaMessage classifies an in-band batch entry error: the
// engine's admission errors travel as strings inside a 200 envelope, so
// the Client matches them against the library's own error texts (same
// module, same strings) rather than guessing.
func retryableReplicaMessage(msg string) bool {
	return strings.Contains(msg, bipartite.ErrOverloaded.Error()) ||
		strings.Contains(msg, bipartite.ErrShed.Error()) ||
		strings.Contains(msg, bipartite.ErrRateLimited.Error())
}

// Patch forwards a PATCH /graph/{id} body to the graph's owner and
// returns the replica's status code and response body verbatim. PATCH
// mutates state, so the Client is deliberately conservative: it retries
// only 503 rejections (the replica refused at admission, nothing was
// applied) and transport errors where the connection could not be opened;
// after a successful apply the other holders' copies are stale, so they
// are invalidated and the next fan-out re-replicates from the owner.
func (c *Client) Patch(ctx context.Context, id string, body []byte) (int, []byte, error) {
	var lastErr error
	for a := 0; a <= c.opt.maxRetries(); a++ {
		if a > 0 {
			c.retries.Add(1)
		}
		owner, err := c.placeOnOwner(ctx, id)
		if err != nil {
			if errors.Is(err, ErrNoReplicas) && a < c.opt.maxRetries() && c.backoff(ctx, a, 0) {
				lastErr = err
				continue
			}
			return 0, nil, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPatch, owner+"/graph/"+id, bytes.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return 0, nil, ctx.Err()
			}
			c.markDown(owner)
			c.failovers.Add(1)
			lastErr = err
			continue
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && a < c.opt.maxRetries() {
			hint := time.Duration(0)
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, perr := strconv.ParseInt(ra, 10, 64); perr == nil {
					hint = time.Duration(secs) * time.Second
				}
			}
			if !c.backoff(ctx, a, hint) {
				return 0, nil, ctx.Err()
			}
			lastErr = fmt.Errorf("cluster: patch %s: status 503", id)
			continue
		}
		if resp.StatusCode == http.StatusOK {
			c.mu.Lock()
			c.stale[id] = true // the retained registration predates this PATCH
			c.holders[id] = map[string]bool{owner: true}
			c.mu.Unlock()
		}
		return resp.StatusCode, b, nil
	}
	return 0, nil, fmt.Errorf("cluster: patch %s failed: %w", id, lastErr)
}

// ExportGraph proxies GET /graph/{id} from a live holder.
func (c *Client) ExportGraph(ctx context.Context, id string) (int, []byte, error) {
	holders := c.liveHolders(id)
	if len(holders) == 0 {
		if _, err := c.placeOnOwner(ctx, id); err != nil {
			return 0, nil, err
		}
		holders = c.liveHolders(id)
	}
	var lastErr error
	for _, u := range holders {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u+"/graph/"+id, nil)
		if err != nil {
			return 0, nil, err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			c.markDown(u)
			lastErr = err
			continue
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, b, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: unknown graph %q", id)
	}
	return 0, nil, lastErr
}
