package cluster_test

import (
	"context"
	"testing"
	"time"

	bipartite "repro"
	"repro/internal/cluster"
)

// TestClusterChaosReplicaKill is the chaos gate: a replica is killed with
// a batch in flight on it, and not one client request may fail — the
// sub-batch transport failure must fail over entry by entry onto the
// survivors, migrating the dead replica's graph from the retained
// registration (its sole holder just died). Afterwards the ring must
// converge on the two survivors and keep serving, fan-out included.
func TestClusterChaosReplicaKill(t *testing.T) {
	f := newFleet(t, 3, cluster.Options{HedgeDelay: -1, MaxRetries: 4, RetryBase: 2 * time.Millisecond})
	ctx := context.Background()

	// A graph big enough that a 32-entry batch at Workers:1 outlives the
	// kill delay below; if the machine races through it anyway, the
	// deterministic post-kill phases still exercise the failover path.
	g := bipartite.RandomER(2500, 2500, 6, 3)
	edges := edgesOf(g)
	id, err := f.client.RegisterGraph(ctx, cluster.GraphSpec{Rows: 2500, Cols: 2500, Edges: edges})
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	victim := f.client.OwnerOf(id)
	base := f.client.Stats()

	const B = 32
	reqs := make([]cluster.MatchRequest, B)
	for i := range reqs {
		reqs[i] = cluster.MatchRequest{Graph: id, Algorithm: "twosided", Seed: uint64(i + 1)}
	}
	done := make(chan []cluster.MatchResponse, 1)
	go func() { done <- f.client.MatchBatch(ctx, reqs) }()
	time.Sleep(30 * time.Millisecond)
	f.kill(f.indexOf(victim))
	out := <-done

	// The zero-failure gate: every in-flight request completed, in order,
	// despite its serving replica dying under it.
	if len(out) != B {
		t.Fatalf("batch: %d responses for %d requests", len(out), B)
	}
	for i, r := range out {
		if r.Error != "" {
			t.Fatalf("entry %d failed during the kill: %s", i, r.Error)
		}
		if r.Size <= 0 || r.Rows != 2500 || r.WinnerSeed != uint64(i+1) {
			t.Fatalf("entry %d: size=%d rows=%d winner=%d (want winner %d)", i, r.Size, r.Rows, r.WinnerSeed, i+1)
		}
	}

	// Deterministic failover: the victim may still be a ring member (no
	// probe has run), so a fresh match must hit it, mark it down, migrate
	// the graph onto the new owner and answer from there.
	resp, err := f.client.Match(ctx, cluster.MatchRequest{Graph: id, Algorithm: "twosided", Seed: 99})
	if err != nil {
		t.Fatalf("match after kill: %v", err)
	}
	if resp.Size <= 0 || resp.Replica == victim {
		t.Fatalf("match after kill: size=%d replica=%s (victim %s)", resp.Size, resp.Replica, victim)
	}
	st := f.client.Stats()
	if st.Failovers == base.Failovers {
		t.Fatalf("no failover recorded across the kill")
	}
	if st.Migrations == base.Migrations {
		t.Fatalf("the victim's graph was never migrated to a survivor")
	}

	// The ring converges on the survivors.
	if healthy := f.client.Probe(ctx); healthy != 2 {
		t.Fatalf("probe after kill: %d healthy, want 2", healthy)
	}
	if members := f.client.Members(); len(members) != 2 {
		t.Fatalf("members after probe: %v", members)
	}
	if owner := f.client.OwnerOf(id); owner == "" || owner == victim {
		t.Fatalf("graph owned by %q after convergence", owner)
	}

	// The degraded fleet still fans out, and still bit-identically.
	got, err := f.client.Match(ctx, cluster.MatchRequest{Graph: id, Algorithm: "twosided", Seed: 5, BestOf: 8})
	if err != nil {
		t.Fatalf("fanned match on degraded fleet: %v", err)
	}
	ref, err := g.Match(bipartite.Spec{Algorithm: bipartite.AlgTwoSided, Seed: 5, Ensemble: 8}, engineOpts())
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	if got.Size != ref.Matching.Size || got.WinnerSeed != ref.WinnerSeed || got.CandidatesRun != 8 {
		t.Fatalf("degraded fan-out: size=%d winner=%d candidates=%d; reference size=%d winner=%d",
			got.Size, got.WinnerSeed, got.CandidatesRun, ref.Matching.Size, ref.WinnerSeed)
	}

	// New registrations keep working on the survivors.
	id2, err := f.client.RegisterGraph(ctx, cluster.GraphSpec{Rows: 40, Cols: 40, Edges: [][2]int{{0, 0}, {1, 1}, {2, 2}}})
	if err != nil {
		t.Fatalf("register after kill: %v", err)
	}
	if resp, err := f.client.Match(ctx, cluster.MatchRequest{Graph: id2, Algorithm: "twosided"}); err != nil || resp.Size != 3 {
		t.Fatalf("match on post-kill registration: size=%d err=%v", resp.Size, err)
	}
}
