package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Router is the HTTP front end over a Client: the same wire surface as
// one matchserve replica (graph registry CRUD, /match, /match/batch),
// served by the whole fleet. cmd/matchrouter wraps it behind a listener;
// the cluster integration suite serves it with httptest.
type Router struct {
	c *Client

	// maxBody caps request bodies; 0 = unbounded.
	maxBody int64

	requests atomic.Int64
	errors   atomic.Int64
}

// NewRouter wraps a Client. maxBody caps request bodies in bytes (0 =
// unbounded).
func NewRouter(c *Client, maxBody int64) *Router {
	return &Router{c: c, maxBody: maxBody}
}

// Client returns the routing SDK the router serves.
func (rt *Router) Client() *Client { return rt.c }

// NewRouterMux wires the router's routes.
func NewRouterMux(rt *Router) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /graph", rt.handleGraph)
	mux.HandleFunc("GET /graph/{id}", rt.handleGraphGet)
	mux.HandleFunc("DELETE /graph/{id}", rt.handleGraphDelete)
	mux.HandleFunc("PATCH /graph/{id}", rt.handleGraphPatch)
	mux.HandleFunc("POST /match", rt.handleMatch)
	mux.HandleFunc("POST /match/batch", rt.handleBatch)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /stats", rt.handleStats)
	return mux
}

func (rt *Router) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body := r.Body
	if rt.maxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, rt.maxBody)
	}
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			rt.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		rt.writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func (rt *Router) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("matchrouter: write: %v", err)
	}
}

func (rt *Router) writeError(w http.ResponseWriter, code int, err error) {
	rt.errors.Add(1)
	rt.writeJSON(w, code, map[string]string{"error": err.Error()})
}

// statusOfClientErr maps Client errors to router statuses: no reachable
// replica is the router's own 503 (the fleet equivalent of admission
// back-pressure), an unknown graph 404, a replica's terminal answer keeps
// its status, anything else is a 502 — the router could not get an answer
// out of the fleet.
func statusOfClientErr(err error) int {
	var re *replicaError
	switch {
	case errors.Is(err, ErrNoReplicas):
		return http.StatusServiceUnavailable
	case errors.As(err, &re):
		return re.status
	case strings.Contains(err.Error(), "unknown graph"):
		return http.StatusNotFound
	default:
		return http.StatusBadGateway
	}
}

func (rt *Router) handleGraph(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	var gs GraphSpec
	if !rt.decode(w, r, &gs) {
		return
	}
	id, err := rt.c.RegisterGraph(r.Context(), gs)
	if err != nil {
		rt.writeError(w, statusOfClientErr(err), err)
		return
	}
	rt.writeJSON(w, http.StatusOK, map[string]any{
		"id": id, "rows": gs.Rows, "cols": gs.Cols, "edges": len(gs.Edges),
	})
}

func (rt *Router) handleGraphGet(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	code, body, err := rt.c.ExportGraph(r.Context(), r.PathValue("id"))
	if err != nil {
		rt.writeError(w, statusOfClientErr(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
}

func (rt *Router) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	id := r.PathValue("id")
	known, err := rt.c.DeleteGraph(r.Context(), id)
	if !known {
		rt.writeError(w, http.StatusNotFound, fmt.Errorf("unknown graph %q", id))
		return
	}
	if err != nil {
		rt.writeError(w, http.StatusBadGateway, err)
		return
	}
	rt.writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (rt *Router) handleGraphPatch(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	body := r.Body
	if rt.maxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, rt.maxBody)
	}
	raw, err := readAllChecked(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			rt.writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		rt.writeError(w, http.StatusBadRequest, err)
		return
	}
	code, reply, err := rt.c.Patch(r.Context(), r.PathValue("id"), raw)
	if err != nil {
		rt.writeError(w, statusOfClientErr(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(reply)
}

func (rt *Router) handleMatch(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	var mr MatchRequest
	if !rt.decode(w, r, &mr) {
		return
	}
	resp, err := rt.c.Match(r.Context(), mr)
	if err != nil {
		rt.writeError(w, statusOfClientErr(err), err)
		return
	}
	rt.writeJSON(w, http.StatusOK, &resp)
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	var env batchRequestEnvelope
	if !rt.decode(w, r, &env) {
		return
	}
	start := time.Now()
	out := rt.c.MatchBatch(r.Context(), env.Requests)
	rt.writeJSON(w, http.StatusOK, batchResponseEnvelope{
		Ms:        float64(time.Since(start).Microseconds()) / 1000,
		Responses: out,
	})
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := rt.c.Stats()
	status := "ok"
	code := http.StatusOK
	if st.Healthy == 0 {
		// No backing replica: the router is up but cannot serve, which is
		// what a load balancer in front of several routers needs to see.
		status, code = "degraded", http.StatusServiceUnavailable
	}
	rt.writeJSON(w, code, map[string]any{
		"status":   status,
		"replicas": st.Replicas,
		"healthy":  st.Healthy,
		"levels":   rt.c.Levels(),
	})
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	st := rt.c.Stats()
	rt.writeJSON(w, http.StatusOK, map[string]any{
		"requests":   rt.requests.Load(),
		"errors":     rt.errors.Load(),
		"replicas":   st.Replicas,
		"healthy":    st.Healthy,
		"members":    rt.c.Members(),
		"graphs":     st.Keys,
		"moved":      st.Moved,
		"retries":    st.Retries,
		"hedges":     st.Hedges,
		"hedge_wins": st.HedgeWins,
		"migrations": st.Migrations,
		"failovers":  st.Failovers,
		"fanouts":    st.FanOuts,
	})
}

// readAllChecked reads the whole body, surfacing the MaxBytesReader
// overflow as its typed error.
func readAllChecked(r io.Reader) ([]byte, error) {
	return io.ReadAll(r)
}
