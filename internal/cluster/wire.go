// Package cluster is the client side of cluster-scale serving: a
// consistent-hash routing SDK (Client) plus the thin HTTP front end
// (Router, NewMux) that cmd/matchrouter wraps. A fleet of matchserve
// replicas, each running the internal/servehttp handler, is sharded by
// graph id on an internal/ring bounded-load ring; the Client places every
// registered graph on its ring owner, routes /match, /match/batch and
// PATCH traffic there, and repairs the placement when membership changes
// — migrating graphs to their new owners lazily, via the replicas' GET
// /graph/{id} export, the first time a request needs them.
//
// The Client is defensive the way the replicas are: retryable rejections
// (503 admission/shedding, 429 rate or deadline admission) are retried
// with exponential backoff plus jitter, honoring the Retry-After the
// replica attached; replicas that stop answering are passively marked
// down (and actively re-probed via /healthz), their keys deterministically
// rebalanced onto the survivors; and slow single matches are hedged — a
// second identical request fired at another replica holding the graph
// after a p99-derived delay, first answer wins, which is safe because
// /match is a pure function of (graph, spec).
//
// Ensemble fan-out is the throughput half: a best-of-K request splits
// into disjoint seed sub-ranges (Spec.SeedOffset/SeedCount) across the
// healthy replicas, each replica sweeps its slice against its own shared
// scaling, and the Client reduces the sub-range winners with the
// library's own strict-improvement/smallest-seed rule — so the reduced
// winner, mates and provenance are bit-identical to one replica (or one
// process) running the full sweep.
package cluster

// GraphSpec is the registration wire shape shared with the replicas'
// POST /graph and GET /graph/{id}: an edge list plus optional weights,
// optionally under a caller-chosen id (the upsert form the Client uses to
// migrate and replicate graphs under stable ids).
type GraphSpec struct {
	ID      string    `json:"id,omitempty"`
	Rows    int       `json:"rows"`
	Cols    int       `json:"cols"`
	Edges   [][2]int  `json:"edges"`
	Weights []float64 `json:"weights,omitempty"`
}

// MatchRequest mirrors the replicas' /match body: a registered graph id
// or an inline graph, plus the declarative Spec fields on the wire.
type MatchRequest struct {
	GraphSpec
	Graph      string  `json:"graph,omitempty"`
	Op         string  `json:"op,omitempty"`
	Algorithm  string  `json:"algorithm,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	Refine     string  `json:"refine,omitempty"`
	BestOf     int     `json:"best_of,omitempty"`
	Target     float64 `json:"target,omitempty"`
	Sequential bool    `json:"sequential,omitempty"`
	SeedOffset int     `json:"seed_offset,omitempty"`
	SeedCount  int     `json:"seed_count,omitempty"`
	Epsilon    float64 `json:"epsilon,omitempty"`
	TimeoutMs  int64   `json:"timeout_ms,omitempty"`
	Priority   string  `json:"priority,omitempty"`
}

// fanEligible reports whether the request is a full-range ensemble the
// Client may split into seed sub-ranges: early-stopping machinery
// (refinement, a target) consumes seeds serially and cannot be split —
// except under the auction, whose ensembles never stop early but which
// rejects refine/target anyway, so the one rule covers both.
func (mr *MatchRequest) fanEligible() bool {
	return mr.BestOf > 1 && mr.SeedCount == 0 && mr.SeedOffset == 0 &&
		(mr.Refine == "" || mr.Refine == "none") && mr.Target == 0
}

// weighted reports whether the winner objective is matched weight (the
// auction) rather than cardinality.
func (mr *MatchRequest) weighted() bool {
	return mr.Algorithm == "auction" || mr.Op == "auction"
}

// MatchResponse mirrors the replicas' /match response, with one
// router-side provenance addition: Replica names the member that produced
// the matching (for a fanned-out ensemble, the one whose sub-range won).
type MatchResponse struct {
	Size          int     `json:"size"`
	Rows          int     `json:"rows"`
	Cols          int     `json:"cols"`
	RowMate       []int32 `json:"row_mate"`
	WinnerSeed    uint64  `json:"winner_seed"`
	CandidatesRun int     `json:"candidates_run"`
	HeuristicSize int     `json:"heuristic_size"`
	Refined       bool    `json:"refined"`
	RefinedWith   string  `json:"refined_with,omitempty"`
	MatchedWeight float64 `json:"matched_weight,omitempty"`
	Epsilon       float64 `json:"epsilon,omitempty"`
	Rounds        int     `json:"rounds,omitempty"`
	Degraded      string  `json:"degraded,omitempty"`
	Ms            float64 `json:"ms,omitempty"`
	Error         string  `json:"error,omitempty"`
	Replica       string  `json:"replica,omitempty"`
}

// batchEnvelope is the /match/batch request and response envelope.
type batchRequestEnvelope struct {
	Requests []MatchRequest `json:"requests"`
}

type batchResponseEnvelope struct {
	Ms        float64         `json:"ms"`
	Responses []MatchResponse `json:"responses"`
}

// healthzReply is the replicas' GET /healthz body.
type healthzReply struct {
	Status string `json:"status"`
	Level  string `json:"level"`
	Graphs int    `json:"graphs"`
}
