// Cluster integration suite: real servehttp replicas behind the routing
// SDK and the router front end, all in-process via httptest. The fleet
// helper boots N replicas with the same engine options the bit-identity
// tests use for their single-process reference, so wire answers and
// library answers are comparable field by field.
package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	bipartite "repro"
	"repro/internal/cluster"
	"repro/internal/servehttp"
)

// engineOpts are the replica engine options; reference runs in the
// bit-identity tests must use the same values.
func engineOpts() *bipartite.Options {
	return &bipartite.Options{ScalingIterations: 5, Workers: 1}
}

type fleet struct {
	t        *testing.T
	urls     []string
	servers  []*httptest.Server
	handlers []*servehttp.Handler
	client   *cluster.Client
	router   *httptest.Server

	wg sync.WaitGroup // background kills in flight
}

func newFleet(t *testing.T, n int, opt cluster.Options) *fleet {
	t.Helper()
	f := &fleet{t: t}
	for i := 0; i < n; i++ {
		srv := bipartite.NewServerConfig(engineOpts(), bipartite.ServerConfig{MaxBatch: 64})
		h := servehttp.NewHandler(srv, servehttp.Config{MaxGraphs: 256, MaxBody: 64 << 20})
		ts := httptest.NewServer(servehttp.NewMux(h))
		f.servers = append(f.servers, ts)
		f.handlers = append(f.handlers, h)
		f.urls = append(f.urls, ts.URL)
	}
	f.client = cluster.New(f.urls, opt)
	f.router = httptest.NewServer(cluster.NewRouterMux(cluster.NewRouter(f.client, 8<<20)))
	t.Cleanup(func() {
		f.router.Close()
		for i, ts := range f.servers {
			if ts != nil {
				ts.Close()
				f.handlers[i].Close()
			}
		}
		f.wg.Wait()
	})
	return f
}

// kill makes replica i unreachable the way a crash is: the listener
// stops accepting and every open connection is severed mid-flight. The
// blocking teardown (Close waits for in-flight handlers) runs in the
// background so the test can keep driving traffic.
func (f *fleet) kill(i int) {
	ts := f.servers[i]
	if ts == nil {
		return
	}
	f.servers[i] = nil
	ts.CloseClientConnections()
	f.wg.Add(1)
	go func(h *servehttp.Handler) {
		defer f.wg.Done()
		ts.Close()
		h.Close()
	}(f.handlers[i])
}

func (f *fleet) indexOf(url string) int {
	for i, u := range f.urls {
		if u == url {
			return i
		}
	}
	f.t.Fatalf("unknown replica url %q", url)
	return -1
}

// replicaGraphs asks replica i's own /healthz how many graphs it holds.
func (f *fleet) replicaGraphs(i int) int {
	f.t.Helper()
	resp, err := http.Get(f.urls[i] + "/healthz")
	if err != nil {
		f.t.Fatalf("healthz %s: %v", f.urls[i], err)
	}
	defer resp.Body.Close()
	var hz struct {
		Graphs int `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		f.t.Fatalf("healthz decode: %v", err)
	}
	return hz.Graphs
}

// edgesOf exports a graph's pattern as the wire edge list, in CSR order
// (so a weighted registration can align weights with Graph.Weights()).
func edgesOf(g *bipartite.Graph) [][2]int {
	rows, _, ptr, idx := g.CSR()
	out := make([][2]int, 0, ptr[rows])
	for i := 0; i < rows; i++ {
		for p := ptr[i]; p < ptr[i+1]; p++ {
			out = append(out, [2]int{i, int(idx[p])})
		}
	}
	return out
}

// do sends one JSON request and returns the status and raw body.
func do(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, raw
}

func decodeInto(t *testing.T, raw []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
}

// registerVia registers a graph through the router and returns its id.
func registerVia(t *testing.T, routerURL string, gs cluster.GraphSpec) string {
	t.Helper()
	code, raw := do(t, http.MethodPost, routerURL+"/graph", gs)
	if code != http.StatusOK {
		t.Fatalf("register: status %d: %s", code, raw)
	}
	var reply struct {
		ID string `json:"id"`
	}
	decodeInto(t, raw, &reply)
	if reply.ID == "" {
		t.Fatalf("register: empty id: %s", raw)
	}
	return reply.ID
}

// TestClusterRoutingAndRegistry drives the full wire surface through the
// router: sharded registration, routed matches with provenance, export,
// PATCH forwarding, delete, and the error statuses.
func TestClusterRoutingAndRegistry(t *testing.T) {
	f := newFleet(t, 3, cluster.Options{HedgeDelay: -1})
	g := bipartite.RandomER(40, 40, 3, 7)
	edges := edgesOf(g)

	const n = 24
	ids := make([]string, n)
	for i := range ids {
		ids[i] = registerVia(t, f.router.URL, cluster.GraphSpec{Rows: 40, Cols: 40, Edges: edges})
	}

	// Bounded-load sharding spreads 24 keys over 3 replicas: every
	// replica owns some, none owns more than the capacity bound.
	byOwner := make(map[string]int)
	for _, id := range ids {
		owner := f.client.OwnerOf(id)
		if owner == "" {
			t.Fatalf("graph %s has no owner", id)
		}
		byOwner[owner]++
	}
	if len(byOwner) != 3 {
		t.Fatalf("keys landed on %d of 3 replicas: %v", len(byOwner), byOwner)
	}
	for u, c := range byOwner {
		if c > 10 { // ceil(1.25*24/3)
			t.Fatalf("replica %s owns %d keys, above the bounded-load cap", u, c)
		}
	}

	// Routed match: answered by the graph's ring owner, with provenance.
	for _, id := range ids[:6] {
		code, raw := do(t, http.MethodPost, f.router.URL+"/match",
			cluster.MatchRequest{Graph: id, Algorithm: "twosided", Seed: 7})
		if code != http.StatusOK {
			t.Fatalf("match %s: status %d: %s", id, code, raw)
		}
		var mr cluster.MatchResponse
		decodeInto(t, raw, &mr)
		if mr.Size <= 0 || mr.Rows != 40 || mr.Cols != 40 || mr.WinnerSeed != 7 {
			t.Fatalf("match %s: size=%d rows=%d cols=%d winner=%d", id, mr.Size, mr.Rows, mr.Cols, mr.WinnerSeed)
		}
		if mr.Replica != f.client.OwnerOf(id) {
			t.Fatalf("match %s answered by %s, owner is %s", id, mr.Replica, f.client.OwnerOf(id))
		}
	}

	// Export via the router round-trips the registration.
	code, raw := do(t, http.MethodGet, f.router.URL+"/graph/"+ids[0], nil)
	if code != http.StatusOK {
		t.Fatalf("export: status %d: %s", code, raw)
	}
	var exp cluster.GraphSpec
	decodeInto(t, raw, &exp)
	if exp.Rows != 40 || exp.Cols != 40 || len(exp.Edges) != len(edges) {
		t.Fatalf("export: %dx%d with %d edges, want 40x40 with %d", exp.Rows, exp.Cols, len(exp.Edges), len(edges))
	}

	// PATCH forwards to the owner and the export reflects the mutation.
	before := len(exp.Edges)
	code, raw = do(t, http.MethodPatch, f.router.URL+"/graph/"+ids[0],
		map[string]any{"insert": [][2]int{{0, 39}, {39, 0}}})
	if code != http.StatusOK {
		t.Fatalf("patch: status %d: %s", code, raw)
	}
	code, raw = do(t, http.MethodGet, f.router.URL+"/graph/"+ids[0], nil)
	if code != http.StatusOK {
		t.Fatalf("export after patch: status %d", code)
	}
	decodeInto(t, raw, &exp)
	if len(exp.Edges) <= before-2 || len(exp.Edges) > before+2 {
		t.Fatalf("export after patch: %d edges, want about %d+2", len(exp.Edges), before)
	}

	// Delete drops the graph everywhere; afterwards it is unknown.
	code, raw = do(t, http.MethodDelete, f.router.URL+"/graph/"+ids[1], nil)
	if code != http.StatusOK {
		t.Fatalf("delete: status %d: %s", code, raw)
	}
	code, _ = do(t, http.MethodPost, f.router.URL+"/match",
		cluster.MatchRequest{Graph: ids[1], Algorithm: "twosided"})
	if code != http.StatusNotFound {
		t.Fatalf("match after delete: status %d, want 404", code)
	}

	// Error surface: unknown graph 404, malformed body 400, healthz ok.
	if code, _ = do(t, http.MethodPost, f.router.URL+"/match",
		cluster.MatchRequest{Graph: "no-such-graph"}); code != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d, want 404", code)
	}
	resp, err := http.Post(f.router.URL+"/match", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatalf("bad json: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: status %d, want 400", resp.StatusCode)
	}
	code, raw = do(t, http.MethodGet, f.router.URL+"/healthz", nil)
	if code != http.StatusOK || !bytes.Contains(raw, []byte(`"healthy":3`)) {
		t.Fatalf("healthz: status %d body %s", code, raw)
	}

	// Batch through the router: mixed registered entries come back in
	// order, each answered by its owner.
	var reqs []cluster.MatchRequest
	for _, id := range ids[2:8] {
		reqs = append(reqs, cluster.MatchRequest{Graph: id, Algorithm: "twosided", Seed: 3})
	}
	code, raw = do(t, http.MethodPost, f.router.URL+"/match/batch", map[string]any{"requests": reqs})
	if code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", code, raw)
	}
	var env struct {
		Responses []cluster.MatchResponse `json:"responses"`
	}
	decodeInto(t, raw, &env)
	if len(env.Responses) != len(reqs) {
		t.Fatalf("batch: %d responses for %d requests", len(env.Responses), len(reqs))
	}
	for i, r := range env.Responses {
		if r.Error != "" || r.Size <= 0 || r.WinnerSeed != 3 {
			t.Fatalf("batch entry %d: err=%q size=%d winner=%d", i, r.Error, r.Size, r.WinnerSeed)
		}
		if r.Replica != f.client.OwnerOf(reqs[i].Graph) {
			t.Fatalf("batch entry %d answered by %s, owner is %s", i, r.Replica, f.client.OwnerOf(reqs[i].Graph))
		}
	}
}

// TestClusterRebalanceMigration kills a replica and checks the ring's
// deterministic rebalance plus the lazy migration path: every graph keeps
// a live owner, the dead replica's graphs move (and only about that
// many), and matching each graph afterwards succeeds by migrating it —
// from the retained registration, since its sole holder died.
func TestClusterRebalanceMigration(t *testing.T) {
	f := newFleet(t, 3, cluster.Options{HedgeDelay: -1, RetryBase: 2 * time.Millisecond})
	ctx := context.Background()
	g := bipartite.RandomER(60, 60, 3, 5)
	edges := edgesOf(g)

	const n = 30
	ids := make([]string, n)
	ownersBefore := make(map[string]string, n)
	for i := range ids {
		id, err := f.client.RegisterGraph(ctx, cluster.GraphSpec{Rows: 60, Cols: 60, Edges: edges})
		if err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
		ids[i] = id
		ownersBefore[id] = f.client.OwnerOf(id)
	}
	base := f.client.Stats()

	// Kill the replica owning the most keys.
	victim, victimKeys := "", 0
	byOwner := make(map[string]int)
	for _, id := range ids {
		byOwner[ownersBefore[id]]++
	}
	for u, c := range byOwner {
		if c > victimKeys {
			victim, victimKeys = u, c
		}
	}
	f.kill(f.indexOf(victim))
	if healthy := f.client.Probe(ctx); healthy != 2 {
		t.Fatalf("probe after kill: %d healthy, want 2", healthy)
	}

	moved := 0
	for _, id := range ids {
		owner := f.client.OwnerOf(id)
		if owner == "" || owner == victim {
			t.Fatalf("graph %s owned by %q after kill of %s", id, owner, victim)
		}
		if owner != ownersBefore[id] {
			moved++
		}
	}
	if moved < victimKeys {
		t.Fatalf("only %d keys moved, the victim owned %d", moved, victimKeys)
	}
	if slack := n / 5; moved > victimKeys+slack {
		t.Fatalf("%d keys moved for a victim owning %d (slack %d): rebalance not minimal", moved, victimKeys, slack)
	}

	// Every graph still matches; the victim's graphs migrate on first use.
	for _, id := range ids {
		resp, err := f.client.Match(ctx, cluster.MatchRequest{Graph: id, Algorithm: "twosided", Seed: 9})
		if err != nil {
			t.Fatalf("match %s after rebalance: %v", id, err)
		}
		if resp.Size <= 0 || resp.Replica == victim {
			t.Fatalf("match %s: size=%d replica=%s", id, resp.Size, resp.Replica)
		}
	}
	st := f.client.Stats()
	if migrated := st.Migrations - base.Migrations; migrated < int64(victimKeys) {
		t.Fatalf("%d migrations after kill, want at least the victim's %d keys", migrated, victimKeys)
	}
	if st.Healthy != 2 || st.Moved == 0 {
		t.Fatalf("stats after kill: healthy=%d moved=%d", st.Healthy, st.Moved)
	}
}

// fakeReplica is a scripted matchserve stand-in for the retry and hedge
// tests: healthy on /healthz, with a caller-chosen /match behaviour.
func fakeReplica(t *testing.T, match http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"status":"ok","level":"nominal","graphs":0}`)
	})
	mux.HandleFunc("POST /match", match)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

const cannedMatch = `{"size":1,"rows":1,"cols":1,"row_mate":[0],"winner_seed":1,"candidates_run":1,"heuristic_size":1}`

// TestClusterRetryAfterHonored scripts a replica that sheds the first
// request with a 503 + Retry-After: 1 and accepts the second: the client
// must succeed, and must not have come back before the advertised delay.
func TestClusterRetryAfterHonored(t *testing.T) {
	if testing.Short() {
		t.Skip("sleeps for the Retry-After interval")
	}
	var calls int
	var mu sync.Mutex
	ts := fakeReplica(t, func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"error":"server overloaded"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, cannedMatch)
	})
	c := cluster.New([]string{ts.URL}, cluster.Options{
		MaxRetries: 3, RetryBase: time.Millisecond, HedgeDelay: -1,
	})
	start := time.Now()
	resp, err := c.Match(context.Background(), cluster.MatchRequest{
		GraphSpec: cluster.GraphSpec{Rows: 1, Cols: 1, Edges: [][2]int{{0, 0}}},
		Algorithm: "twosided",
	})
	if err != nil {
		t.Fatalf("match: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retried after %v, before the 1s Retry-After", elapsed)
	}
	if resp.Size != 1 || c.Stats().Retries < 1 {
		t.Fatalf("size=%d retries=%d", resp.Size, c.Stats().Retries)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 2 {
		t.Fatalf("replica saw %d calls, want 2", calls)
	}
}

// TestClusterHedging pairs a pathologically slow replica with a fast one:
// requests landing on the slow primary must be rescued by the hedge well
// under the slow replica's latency, and the hedge counters must show it.
func TestClusterHedging(t *testing.T) {
	const slowFor = 2 * time.Second
	slow := fakeReplica(t, func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		select {
		case <-time.After(slowFor):
		case <-r.Context().Done():
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, cannedMatch)
	})
	fast := fakeReplica(t, func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, cannedMatch)
	})
	c := cluster.New([]string{slow.URL, fast.URL}, cluster.Options{
		MaxRetries: 1, RetryBase: time.Millisecond, HedgeDelay: 25 * time.Millisecond,
	})
	// Inline requests spread over the members by seed; across 24 seeds
	// both replicas serve as primary with near certainty.
	for seed := uint64(0); seed < 24; seed++ {
		start := time.Now()
		resp, err := c.Match(context.Background(), cluster.MatchRequest{
			GraphSpec: cluster.GraphSpec{Rows: 1, Cols: 1, Edges: [][2]int{{0, 0}}},
			Algorithm: "twosided", Seed: seed,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if elapsed := time.Since(start); elapsed >= slowFor {
			t.Fatalf("seed %d took %v: hedge never rescued the slow primary", seed, elapsed)
		}
		if resp.Size != 1 {
			t.Fatalf("seed %d: size %d", seed, resp.Size)
		}
	}
	st := c.Stats()
	if st.Hedges < 1 || st.HedgeWins < 1 {
		t.Fatalf("hedges=%d hedgeWins=%d: no request was hedged onto the fast replica", st.Hedges, st.HedgeWins)
	}
}
