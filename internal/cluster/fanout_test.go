package cluster_test

import (
	"net/http"
	"reflect"
	"testing"

	bipartite "repro"
	"repro/internal/cluster"
)

// TestClusterFanOutBitIdentity is the acceptance gate of the fan-out
// path: a best-of-32 ensemble split across 3 replicas as seed sub-ranges
// and reduced by the router must be bit-identical — winner seed, size,
// mates, provenance — to one process running the full 32-candidate sweep
// with the library directly.
func TestClusterFanOutBitIdentity(t *testing.T) {
	f := newFleet(t, 3, cluster.Options{HedgeDelay: -1})
	g := bipartite.RandomER(400, 380, 4, 11)
	edges := edgesOf(g)
	const K = 32
	const seed = 100

	for _, alg := range []struct {
		wire string
		lib  bipartite.Algorithm
	}{
		{"twosided", bipartite.AlgTwoSided},
		{"onesided", bipartite.AlgOneSided},
		{"karpsipser", bipartite.AlgKarpSipser},
	} {
		t.Run(alg.wire, func(t *testing.T) {
			id := registerVia(t, f.router.URL, cluster.GraphSpec{Rows: 400, Cols: 380, Edges: edges})
			code, raw := do(t, http.MethodPost, f.router.URL+"/match",
				cluster.MatchRequest{Graph: id, Algorithm: alg.wire, Seed: seed, BestOf: K})
			if code != http.StatusOK {
				t.Fatalf("fanned match: status %d: %s", code, raw)
			}
			var got cluster.MatchResponse
			decodeInto(t, raw, &got)

			ref, err := g.Match(bipartite.Spec{Algorithm: alg.lib, Seed: seed, Ensemble: K}, engineOpts())
			if err != nil {
				t.Fatalf("reference sweep: %v", err)
			}
			if got.Size != ref.Matching.Size || got.WinnerSeed != ref.WinnerSeed ||
				got.HeuristicSize != ref.HeuristicSize || got.CandidatesRun != K {
				t.Fatalf("fanned best-of-%d: size=%d winner=%d heuristic=%d candidates=%d; reference size=%d winner=%d heuristic=%d",
					K, got.Size, got.WinnerSeed, got.HeuristicSize, got.CandidatesRun,
					ref.Matching.Size, ref.WinnerSeed, ref.HeuristicSize)
			}
			if !reflect.DeepEqual(got.RowMate, ref.Matching.RowMate) {
				t.Fatalf("fanned best-of-%d: row_mate differs from the single-process sweep", K)
			}
		})
	}

	// The split really happened: the graphs were replicated to every
	// member for the sub-ranges, and the fan-out counter moved.
	if st := f.client.Stats(); st.FanOuts < 3 {
		t.Fatalf("fanouts=%d, want one per algorithm", st.FanOuts)
	}
	for i := range f.urls {
		if n := f.replicaGraphs(i); n == 0 {
			t.Fatalf("replica %d holds no graphs: the ensembles did not fan out", i)
		}
	}
}

// TestClusterFanOutBitIdentityAuction is the weighted half of the gate:
// the auction's best-of-32 over bidding seeds fans out the same way
// (every replica's sub-range finishes from the identical seed-free
// scaling phase), and the reduced winner must carry the exact matched
// weight, winner seed and mates of the single-process ensemble.
func TestClusterFanOutBitIdentityAuction(t *testing.T) {
	f := newFleet(t, 3, cluster.Options{HedgeDelay: -1})
	pattern := bipartite.RandomER(150, 150, 5, 17)
	edges := edgesOf(pattern)
	weights := make([]float64, len(edges))
	for k := range weights {
		weights[k] = 1 + float64((k*2654435761)%1000)/100 // deterministic, strictly positive
	}
	g, err := bipartite.FromWeightedEdges(150, 150, edges, weights)
	if err != nil {
		t.Fatalf("weighted graph: %v", err)
	}
	const K = 32
	const seed = 100

	id := registerVia(t, f.router.URL, cluster.GraphSpec{Rows: 150, Cols: 150, Edges: edges, Weights: weights})
	code, raw := do(t, http.MethodPost, f.router.URL+"/match",
		cluster.MatchRequest{Graph: id, Algorithm: "auction", Seed: seed, BestOf: K})
	if code != http.StatusOK {
		t.Fatalf("fanned auction: status %d: %s", code, raw)
	}
	var got cluster.MatchResponse
	decodeInto(t, raw, &got)

	ref, err := g.Match(bipartite.Spec{Algorithm: bipartite.AlgAuction, Seed: seed, Ensemble: K}, engineOpts())
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	if got.MatchedWeight != ref.MatchedWeight || got.WinnerSeed != ref.WinnerSeed ||
		got.Size != ref.Matching.Size || got.CandidatesRun != K || got.Epsilon != ref.Epsilon {
		t.Fatalf("fanned auction best-of-%d: weight=%v winner=%d size=%d candidates=%d eps=%v; reference weight=%v winner=%d size=%d eps=%v",
			K, got.MatchedWeight, got.WinnerSeed, got.Size, got.CandidatesRun, got.Epsilon,
			ref.MatchedWeight, ref.WinnerSeed, ref.Matching.Size, ref.Epsilon)
	}
	if !reflect.DeepEqual(got.RowMate, ref.Matching.RowMate) {
		t.Fatalf("fanned auction: row_mate differs from the single-process sweep")
	}
}
