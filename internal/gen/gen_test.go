package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/sparse"
)

func validate(t *testing.T, a *sparse.CSR) {
	t.Helper()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.HasSortedRows() {
		t.Fatal("rows not sorted/deduped")
	}
}

func TestFull(t *testing.T) {
	a := Full(5)
	validate(t, a)
	if a.NNZ() != 25 {
		t.Fatalf("nnz = %d", a.NNZ())
	}
	for i := 0; i < 5; i++ {
		if a.Degree(i) != 5 {
			t.Fatalf("row %d degree %d", i, a.Degree(i))
		}
	}
	if exact.Sprank(a) != 5 {
		t.Fatal("full matrix must have full sprank")
	}
}

func TestIdentity(t *testing.T) {
	a := Identity(7)
	validate(t, a)
	if a.NNZ() != 7 || exact.Sprank(a) != 7 {
		t.Fatal("identity wrong")
	}
	for i := 0; i < 7; i++ {
		if a.Row(i)[0] != int32(i) {
			t.Fatal("identity off-diagonal")
		}
	}
}

func TestERDeterministicAndBounded(t *testing.T) {
	a := ER(100, 120, 500, 42)
	b := ER(100, 120, 500, 42)
	validate(t, a)
	if !a.Equal(b) {
		t.Fatal("same seed produced different matrices")
	}
	c := ER(100, 120, 500, 43)
	if a.Equal(c) {
		t.Fatal("different seeds produced identical matrices")
	}
	if a.NNZ() > 500 {
		t.Fatalf("nnz %d exceeds requested", a.NNZ())
	}
	if a.NNZ() < 450 { // dedupe removes only ~2% at this density
		t.Fatalf("nnz %d lost too many to dedupe", a.NNZ())
	}
}

func TestERAvgDegClose(t *testing.T) {
	a := ERAvgDeg(1000, 1000, 4, 7)
	validate(t, a)
	if d := a.AvgDegree(); d < 3.8 || d > 4.0 {
		t.Fatalf("avg degree %v want ≈4", d)
	}
}

func TestBadKSStructure(t *testing.T) {
	n, k := 64, 4
	h := n / 2
	a := BadKS(n, k)
	validate(t, a)
	if a.RowsN != n || a.ColsN != n {
		t.Fatal("shape wrong")
	}
	// R1×C1 block full.
	for i := 0; i < h; i++ {
		row := a.Row(i)
		cnt := 0
		for _, j := range row {
			if int(j) < h {
				cnt++
			}
		}
		if cnt != h {
			t.Fatalf("row %d has %d entries in C1, want %d", i, cnt, h)
		}
	}
	// R2×C2 empty.
	for i := h; i < n; i++ {
		for _, j := range a.Row(i) {
			if int(j) >= h && i-h != int(j)-h {
				t.Fatalf("entry (%d,%d) in R2×C2", i, j)
			}
		}
	}
	// Last k rows of R1 are completely full.
	for i := h - k; i < h; i++ {
		if a.Degree(i) != n {
			t.Fatalf("row %d degree %d want %d (full)", i, a.Degree(i), n)
		}
	}
	// Perfect matching exists (the two diagonals).
	if exact.Sprank(a) != n {
		t.Fatalf("sprank %d want %d", exact.Sprank(a), n)
	}
}

func TestBadKSDegreeOneOnlyForKLessEqualOne(t *testing.T) {
	// k=1: column h-1 is full but rows h..n-1 have degree... check via
	// the paper's claim: for k<=1 Karp-Sipser phase 1 consumes the graph;
	// for k>1 there must be no degree-one vertex at all.
	a := BadKS(32, 2)
	at := a.Transpose()
	for i := 0; i < a.RowsN; i++ {
		if a.Degree(i) == 1 {
			t.Fatalf("row %d has degree one with k=2", i)
		}
	}
	for j := 0; j < at.RowsN; j++ {
		if at.Degree(j) == 1 {
			t.Fatalf("col %d has degree one with k=2", j)
		}
	}
}

func TestBadKSPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { BadKS(33, 2) },
		func() { BadKS(10, 6) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGrid2DStructure(t *testing.T) {
	a := Grid2D(4, 5)
	validate(t, a)
	if a.RowsN != 20 {
		t.Fatal("size wrong")
	}
	// Interior vertex degree 5, corner degree 3.
	if a.Degree(0) != 3 {
		t.Fatalf("corner degree %d", a.Degree(0))
	}
	if a.Degree(1*5+1) != 5 {
		t.Fatalf("interior degree %d", a.Degree(6))
	}
	if exact.Sprank(a) != 20 {
		t.Fatal("grid with diagonal must have full sprank")
	}
}

func TestGrid3DStencils(t *testing.T) {
	a := Grid3D(3, 3, 3, false)
	validate(t, a)
	center := (1*3+1)*3 + 1
	if a.Degree(center) != 7 {
		t.Fatalf("7-point center degree %d", a.Degree(center))
	}
	b := Grid3D(3, 3, 3, true)
	validate(t, b)
	if b.Degree(center) != 27 {
		t.Fatalf("27-point center degree %d", b.Degree(center))
	}
	if exact.Sprank(b) != 27 {
		t.Fatal("3d grid must have full sprank")
	}
}

func TestMesh2DStructure(t *testing.T) {
	a := Mesh2D(6, 6)
	validate(t, a)
	if a.Degree(0) != 2 {
		t.Fatalf("corner degree %d want 2", a.Degree(0))
	}
	if a.Degree(7) != 4 {
		t.Fatalf("interior degree %d want 4", a.Degree(7))
	}
	if !a.Equal(a.Transpose()) {
		t.Fatal("mesh not symmetric")
	}
	if exact.Sprank(a) != 36 {
		t.Fatal("even mesh must have a perfect matching")
	}
}

func TestRoadLikeDegreeAndSymmetry(t *testing.T) {
	a := RoadLike(10000, 2.1, 5)
	validate(t, a)
	d := a.AvgDegree()
	if d < 1.8 || d > 2.4 {
		t.Fatalf("avg degree %v want ≈2.1", d)
	}
	// Symmetric pattern.
	if !a.Equal(a.Transpose()) {
		t.Fatal("road network pattern not symmetric")
	}
	// Thinned grids are slightly sprank-deficient.
	sp := exact.Sprank(a)
	if sp == a.RowsN {
		t.Fatal("expected some deficiency in thinned grid")
	}
	if float64(sp) < 0.7*float64(a.RowsN) {
		t.Fatalf("sprank/n = %v unexpectedly low", float64(sp)/float64(a.RowsN))
	}
}

func TestPowerLawSkewAndSupport(t *testing.T) {
	a := PowerLaw(2000, 2, 1.1, 500, 9)
	validate(t, a)
	if a.DegreeVariance() < 4*a.AvgDegree() {
		t.Fatalf("power law variance %v too small vs mean %v", a.DegreeVariance(), a.AvgDegree())
	}
	// Diagonal is included, so sprank is full.
	if exact.Sprank(a) != 2000 {
		t.Fatal("power law with diagonal must have full sprank")
	}
}

func TestBandOffsets(t *testing.T) {
	a := Band(6, 0, -1, 1)
	validate(t, a)
	if a.Degree(0) != 2 || a.Degree(3) != 3 {
		t.Fatalf("band degrees %d %d", a.Degree(0), a.Degree(3))
	}
	if exact.Sprank(a) != 6 {
		t.Fatal("tridiagonal must have full sprank")
	}
}

func TestFullyIndecomposableHasTotalSupportCore(t *testing.T) {
	f := func(seed uint64, sz uint8) bool {
		n := int(sz)%100 + 2
		a := FullyIndecomposable(n, 1, seed)
		return exact.Sprank(a) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKKTLikeStructure(t *testing.T) {
	a := KKTLike(300, 100, 2, 13)
	validate(t, a)
	if a.RowsN != 400 {
		t.Fatal("size wrong")
	}
	if !a.Equal(a.Transpose()) {
		t.Fatal("KKT pattern must be symmetric")
	}
	// Bottom-right block empty.
	for i := 300; i < 400; i++ {
		for _, j := range a.Row(i) {
			if int(j) >= 300 {
				t.Fatalf("entry (%d,%d) in zero block", i, j)
			}
		}
	}
}

func TestKOutWalkupTheorem(t *testing.T) {
	// Walkup 1980: 1-out bipartite graphs have max matching ≈ 0.866n
	// (they do NOT have perfect matchings asymptotically); 2-out graphs
	// have perfect matchings almost surely.
	n := 4000
	one := KOut(n, 1, 11)
	validate(t, one)
	frac := float64(exact.Sprank(one)) / float64(n)
	if frac < 0.85 || frac > 0.89 {
		t.Fatalf("1-out matching fraction %v want ≈0.866", frac)
	}
	two := KOut(n, 2, 11)
	validate(t, two)
	if sp := exact.Sprank(two); sp != n {
		t.Fatalf("2-out graph deficient: %d/%d (Walkup says perfect whp)", sp, n)
	}
	if deg := two.AvgDegree(); deg < 3.5 || deg > 4.0 {
		t.Fatalf("2-out degree %v want just under 4", deg)
	}
}

func TestKOutDenseFallback(t *testing.T) {
	a := KOut(3, 5, 1) // k >= n: complete bipartite graph
	if a.NNZ() != 9 {
		t.Fatalf("k>=n should give the complete graph, nnz=%d", a.NNZ())
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	type mk func() *sparse.CSR
	cases := map[string]mk{
		"roadlike": func() *sparse.CSR { return RoadLike(500, 2.2, 3) },
		"powerlaw": func() *sparse.CSR { return PowerLaw(200, 2, 1.5, 50, 3) },
		"fi":       func() *sparse.CSR { return FullyIndecomposable(100, 2, 3) },
		"kkt":      func() *sparse.CSR { return KKTLike(80, 20, 1, 3) },
		"er":       func() *sparse.CSR { return ER(100, 100, 300, 3) },
	}
	for name, f := range cases {
		if !f().Equal(f()) {
			t.Errorf("%s not deterministic", name)
		}
	}
}
